GO ?= go

.PHONY: check vet staticcheck build test race bench bench-engine bench-throughput bench-hybrid examples examples-run fuzz chaos farm

# check is the tier-1 gate: everything CI runs.
check: vet staticcheck build test race

vet:
	$(GO) vet ./...

# staticcheck runs when installed (CI always installs it); locally:
#   go install honnef.co/go/tools/cmd/staticcheck@latest
staticcheck:
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./... ; \
	else \
		echo "staticcheck not installed; skipping" ; \
	fi

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# bench runs every experiment benchmark once at reduced scale, then the
# engine microbenchmarks.
bench: bench-engine
	$(GO) test -run xxx -bench . -benchtime 1x .

# bench-engine records the DES scheduling and PDES dispatch benchmarks in
# benchstat format. BENCH_engine.json is the committed trajectory point;
# compare a working tree against it with
#   benchstat BENCH_engine.json <(make -s bench-engine)
bench-engine:
	$(GO) test -run xxx -bench 'BenchmarkEngine|BenchmarkSharded' -benchmem \
		./internal/des ./internal/pdes | tee BENCH_engine.json

# bench-throughput tracks the simulator hot path (the "scalable" claim):
# the policy variant must stay within a few percent of the base rate.
bench-throughput:
	$(GO) test -run xxx -bench 'BenchmarkSimulatorEventRate' -benchtime 5x .

# bench-hybrid records the hybrid-fidelity speedup benchmark: simulated
# users per wall-clock second at full DES vs. sampled fidelity.
# BENCH_hybrid.json is the committed trajectory point.
bench-hybrid:
	$(GO) test -run xxx -bench 'BenchmarkHybridFidelity' -benchtime 1x . | tee BENCH_hybrid.json

examples:
	$(GO) build ./examples/...

# examples-run smoke-runs every example under its -max-wall wall-clock
# watchdog, so CI catches examples that regress into hangs or panics, not
# just compile breaks. powermanager is excluded from the smoke: it
# legitimately needs several minutes of wall-clock (three 240-virtual-
# second DVFS convergence sweeps); run it by hand when touching power.
EXAMPLES_MAX_WALL ?= 2m
examples-run: examples
	@set -e; for d in examples/*/; do \
		name=$$(basename $$d); \
		if [ "$$name" = "powermanager" ]; then \
			echo "skip $$name (long-running; run manually)"; continue; \
		fi; \
		echo "run $$name (-max-wall $(EXAMPLES_MAX_WALL))"; \
		$(GO) run ./$$d -max-wall $(EXAMPLES_MAX_WALL) >/dev/null; \
	done

# fuzz exercises every config-loader fuzz target for FUZZTIME each. CI runs
# this as a short smoke; leave a target running longer locally with e.g.
#   make fuzz FUZZTIME=5m
FUZZTIME ?= 10s
fuzz:
	$(GO) test ./internal/config -run xxx -fuzz FuzzMachines -fuzztime $(FUZZTIME)
	$(GO) test ./internal/config -run xxx -fuzz FuzzFaults -fuzztime $(FUZZTIME)
	$(GO) test ./internal/config -run xxx -fuzz FuzzControl -fuzztime $(FUZZTIME)
	$(GO) test ./internal/config -run xxx -fuzz FuzzGraph -fuzztime $(FUZZTIME)
	$(GO) test ./internal/config -run xxx -fuzz FuzzClient -fuzztime $(FUZZTIME)
	$(GO) test ./internal/config -run xxx -fuzz FuzzPath -fuzztime $(FUZZTIME)
	$(GO) test ./internal/config -run xxx -fuzz FuzzService -fuzztime $(FUZZTIME)
	$(GO) test ./internal/config -run xxx -fuzz FuzzSessions -fuzztime $(FUZZTIME)
	$(GO) test ./internal/farm -run xxx -fuzz FuzzFarmJournal -fuzztime $(FUZZTIME)

# chaos runs a short seeded fault-schedule search against the metastable
# config as a smoke (CI runs this); findings land in a throwaway corpus so
# the committed one only changes deliberately. Exit 3 (findings exist) is
# expected on this intentionally fragile config. A second short search
# runs in hybrid mode against the robust config, where any finding —
# including a cross-fidelity fingerprint divergence — is a hard failure.
# Longer local hunts:
#   make chaos CHAOS_TRIALS=200 CHAOS_MAX_WALL=10m
CHAOS_TRIALS ?= 3
CHAOS_MAX_WALL ?= 2m
chaos:
	@out=$$(mktemp -d); \
	$(GO) build -o $$out/uqsim-chaos ./cmd/uqsim-chaos || exit 1; \
	$$out/uqsim-chaos -config configs/metastable -trials $(CHAOS_TRIALS) \
		-seed 1 -corpus $$out/corpus -max-wall $(CHAOS_MAX_WALL); rc=$$?; \
	if [ $$rc -ne 0 ] && [ $$rc -ne 3 ]; then rm -rf $$out; exit $$rc; fi; \
	$$out/uqsim-chaos -config configs/robust -fidelity hybrid -sample-rate 0.25 \
		-trials $(CHAOS_TRIALS) -seed 1 -corpus $$out/corpus-hybrid \
		-max-wall $(CHAOS_MAX_WALL); rc=$$?; \
	rm -rf $$out; \
	if [ $$rc -ne 0 ]; then echo "hybrid-mode chaos search must stay clean"; exit $$rc; fi

# farm smoke-tests the fault-tolerant experiment farm end to end: a small
# sweep fanned out across FARM_WORKERS crash-recovering workers with the
# built-in chaos monkey SIGKILLing one of them mid-run. The requeued job
# retries, and the merged CSV must be byte-identical to a serial
# uqsim-sweep of the same grid — the farm's determinism contract. If the
# campaign is interrupted (exit 1) it finishes with -resume first.
FARM_WORKERS ?= 4
FARM_FROM ?= 18000
FARM_TO ?= 26000
FARM_STEP ?= 2000
farm:
	@out=$$(mktemp -d); \
	$(GO) build -o $$out/uqsim-farm ./cmd/uqsim-farm || exit 1; \
	$(GO) build -o $$out/uqsim-sweep ./cmd/uqsim-sweep || exit 1; \
	$$out/uqsim-farm -config configs/twotier \
		-from $(FARM_FROM) -to $(FARM_TO) -step $(FARM_STEP) \
		-workers $(FARM_WORKERS) -kill-workers 1 -seed 7 -q \
		-spool $$out/spool; rc=$$?; \
	if [ $$rc -eq 1 ]; then \
		echo "farm: campaign interrupted; resuming"; \
		$$out/uqsim-farm -config configs/twotier \
			-from $(FARM_FROM) -to $(FARM_TO) -step $(FARM_STEP) \
			-workers $(FARM_WORKERS) -resume -q -spool $$out/spool \
			|| { rm -rf $$out; exit 1; }; \
	elif [ $$rc -ne 0 ]; then rm -rf $$out; exit $$rc; fi; \
	$$out/uqsim-farm -audit -spool $$out/spool >/dev/null \
		|| { rm -rf $$out; echo "farm: journal audit failed"; exit 1; }; \
	$$out/uqsim-sweep -config configs/twotier \
		-from $(FARM_FROM) -to $(FARM_TO) -step $(FARM_STEP) -csv \
		> $$out/serial.csv || { rm -rf $$out; exit 1; }; \
	cmp -s $$out/spool/merged.csv $$out/serial.csv; rc=$$?; \
	rm -rf $$out; \
	if [ $$rc -ne 0 ]; then \
		echo "farm: merged CSV diverged from serial sweep"; exit 1; \
	fi; \
	echo "farm: merged CSV byte-identical to serial sweep"
