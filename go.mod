module uqsim

go 1.22
