// Fault injection: kill an instance of a replicated service under load,
// crash and recover a whole machine, and watch per-edge resilience policies
// (attempt timeouts, backoff retries, a circuit breaker) and queue-length
// load shedding absorb the damage. The same seed and fault plan always
// reproduce the same run, so availability incidents become regression
// tests.
package main

import (
	"flag"
	"fmt"
	"os"

	"uqsim"
)

// build assembles a two-machine service (one 1-core instance per machine,
// ≈1000 QPS capacity each) driven at qps.
func build(qps float64) *uqsim.Sim {
	s := uqsim.New(uqsim.Options{Seed: 7})
	s.AddMachine("m0", 4, uqsim.DefaultFreqSpec)
	s.AddMachine("m1", 4, uqsim.DefaultFreqSpec)
	if _, err := s.Deploy(
		uqsim.SingleStageService("api", uqsim.Exponential(uqsim.Millisecond)),
		uqsim.RoundRobin,
		uqsim.Placement{Machine: "m0", Cores: 1},
		uqsim.Placement{Machine: "m1", Cores: 1},
	); err != nil {
		panic(err)
	}
	if err := s.SetTopology(uqsim.LinearTopology("main", "api")); err != nil {
		panic(err)
	}
	s.SetClient(uqsim.ClientConfig{Pattern: uqsim.ConstantRate(qps)})
	return s
}

func report(label string, rep *uqsim.Report) {
	leaked := int64(rep.Arrivals) -
		int64(rep.Completions+rep.Timeouts+rep.Shed+rep.Dropped) -
		int64(rep.InFlight)
	fmt.Printf("%-22s goodput=%5.0f qps  p99=%8.3f ms  retries=%-5d shed=%-5d dropped=%-5d leaked=%d\n",
		label, rep.GoodputQPS, rep.Latency.P99().Millis(),
		rep.Retries, rep.Shed, rep.Dropped, leaked)
	if ec := rep.Errors["api"]; ec != nil {
		fmt.Printf("%-22s api call errors: timeouts=%d dropped=%d breaker_open=%d\n",
			"", ec.Timeouts, ec.Dropped, ec.BreakerOpen)
	}
}

func main() {
	maxWall := flag.Duration("max-wall", 0, "stop after this much wall-clock time, report partial results, exit nonzero")
	flag.Parse()
	wd := uqsim.StartWatchdog(*maxWall)
	defer func() {
		if wd.Interrupted() {
			fmt.Fprintf(os.Stderr, "%s: interrupted (%s)\n", "faultinjection", wd.Reason())
			os.Exit(1)
		}
	}()

	// The incident: machine m1 crashes at t=2s and stays dark for 500ms,
	// taking one of the two api instances (and its in-flight work) with it.
	plan := uqsim.FaultPlan{Events: []uqsim.FaultEvent{
		{At: 2 * uqsim.Second, Kind: uqsim.CrashMachine, Machine: "m1"},
		{At: 2*uqsim.Second + 500*uqsim.Millisecond, Kind: uqsim.RecoverMachine, Machine: "m1"},
	}}

	// Unprotected: requests in flight on m1 at the crash die, and their
	// callers hear nothing until the client gives up.
	s := build(1200)
	if err := s.InstallFaults(plan); err != nil {
		panic(err)
	}
	rep, err := s.Run(uqsim.Second, 4*uqsim.Second)
	if err != nil {
		panic(err)
	}
	report("unprotected", rep)

	// Guarded: a per-edge policy retries dead attempts against the healthy
	// survivor after jittered exponential backoff, and a breaker fails
	// calls fast if the edge's error rate spikes.
	s = build(1200)
	if err := s.SetServicePolicy("api", uqsim.ResiliencePolicy{
		Timeout:       50 * uqsim.Millisecond,
		MaxRetries:    3,
		BackoffBase:   5 * uqsim.Millisecond,
		BackoffJitter: 0.5,
		Breaker:       &uqsim.BreakerSpec{ErrorThreshold: 0.5, Window: 20, Cooldown: 100 * uqsim.Millisecond},
	}); err != nil {
		panic(err)
	}
	if err := s.InstallFaults(plan); err != nil {
		panic(err)
	}
	if rep, err = s.Run(uqsim.Second, 4*uqsim.Second); err != nil {
		panic(err)
	}
	report("retries+breaker", rep)

	// Overload is a different failure mode: at 2× capacity an unbounded
	// queue grows forever, so bound it and shed the excess instead.
	s = build(4000)
	if err := s.SetMaxQueue("api", 64); err != nil {
		panic(err)
	}
	if rep, err = s.Run(uqsim.Second, 4*uqsim.Second); err != nil {
		panic(err)
	}
	report("2x-load shed-at-64", rep)
}
