// Tail at scale: reproduce the paper's Fig. 14 study (after Dean &
// Barroso, "The Tail at Scale"): a request fans out to every server in a
// cluster and completes when the last response arrives. A small fraction
// of 10×-slow servers comes to dominate the p99 as the cluster grows.
package main

import (
	"flag"
	"fmt"
	"os"

	"uqsim"
)

func main() {
	maxWall := flag.Duration("max-wall", 0, "stop after this much wall-clock time, report partial results, exit nonzero")
	flag.Parse()
	wd := uqsim.StartWatchdog(*maxWall)
	defer func() {
		if wd.Interrupted() {
			fmt.Fprintf(os.Stderr, "%s: interrupted (%s)\n", "tailatscale", wd.Reason())
			os.Exit(1)
		}
	}()

	fmt.Println("tail at scale: full fan-out, exp(1ms) leaves, slow leaves run 10× slower")
	fmt.Printf("%-9s", "servers")
	slowFracs := []float64{0, 0.01, 0.05, 0.10}
	for _, f := range slowFracs {
		fmt.Printf("  p99@%.0f%%slow", f*100)
	}
	fmt.Println(" (ms)")

	for _, n := range []int{5, 10, 50, 100, 500, 1000} {
		fmt.Printf("%-9d", n)
		for _, f := range slowFracs {
			s, err := uqsim.TailAtScale(uqsim.TailAtScaleConfig{
				Seed:         1,
				QPS:          50,
				Servers:      n,
				SlowFraction: f,
			})
			if err != nil {
				panic(err)
			}
			// Light load, long window: the tail comes from the slow
			// machines, not queueing.
			rep, err := s.Run(0, 20*uqsim.Second)
			if err != nil {
				panic(err)
			}
			fmt.Printf("  %12.2f", rep.Latency.P99().Millis())
		}
		fmt.Println()
	}
	fmt.Println("\npaper: for clusters ≥100 servers, 1% slow machines dominate the tail")
}
