// Tracing: the microservices-debugging story the paper motivates. Run the
// Social Network application near its saturation point, trace a sample of
// requests, and print the waterfalls of the slowest ones — the critical
// span shows which tier caused the tail.
package main

import (
	"flag"
	"fmt"
	"os"

	"uqsim"
)

func main() {
	maxWall := flag.Duration("max-wall", 0, "stop after this much wall-clock time, report partial results, exit nonzero")
	flag.Parse()
	wd := uqsim.StartWatchdog(*maxWall)
	defer func() {
		if wd.Interrupted() {
			fmt.Fprintf(os.Stderr, "%s: interrupted (%s)\n", "tracing", wd.Reason())
			os.Exit(1)
		}
	}()

	s, err := uqsim.SocialNetwork(uqsim.SocialNetworkConfig{
		Seed:    1,
		QPS:     3500,
		Network: true,
	})
	if err != nil {
		panic(err)
	}
	tr := uqsim.NewTracer(4) // record every 4th request
	uqsim.AttachTracer(s, tr)

	rep, err := s.Run(300*uqsim.Millisecond, 2*uqsim.Second)
	if err != nil {
		panic(err)
	}
	fmt.Printf("social network @3.5k QPS: p50=%v p99=%v (%d requests, %d traced)\n\n",
		rep.Latency.P50(), rep.Latency.P99(), rep.Completions, len(tr.Traces()))

	fmt.Println("three slowest traced requests:")
	for _, r := range tr.Slowest(3) {
		fmt.Println(r.Waterfall())
		if crit, ok := r.CriticalSpan(); ok {
			fmt.Printf("  → critical tier: %s (%v of %v end-to-end)\n\n",
				crit.Service, crit.Residence(), r.Latency())
		}
	}

	// Aggregate the critical tier across all traces: which microservice
	// most often dominates the tail?
	counts := map[string]int{}
	for _, r := range tr.Traces() {
		if crit, ok := r.CriticalSpan(); ok {
			counts[crit.Service]++
		}
	}
	fmt.Println("critical-tier frequency across traces:")
	for svc, n := range counts {
		fmt.Printf("  %-12s %d\n", svc, n)
	}
}
