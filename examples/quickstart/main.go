// Quickstart: build and run the paper's two-tier NGINX→memcached
// application with µqSim's public API, sweep the offered load, and print
// the load–latency curve — the experiment behind Fig. 5.
package main

import (
	"flag"
	"fmt"
	"os"

	"uqsim"
)

func main() {
	maxWall := flag.Duration("max-wall", 0, "stop after this much wall-clock time, report partial results, exit nonzero")
	flag.Parse()
	wd := uqsim.StartWatchdog(*maxWall)
	defer func() {
		if wd.Interrupted() {
			fmt.Fprintf(os.Stderr, "%s: interrupted (%s)\n", "quickstart", wd.Reason())
			os.Exit(1)
		}
	}()

	fmt.Println("two-tier NGINX(8p) → memcached(4t), http/1.1 blocking, shared interrupt cores")
	fmt.Printf("%-12s %-12s %-10s %-10s %-10s\n",
		"offered_qps", "goodput_qps", "mean_ms", "p50_ms", "p99_ms")
	for _, qps := range []float64{5000, 10000, 20000, 30000, 40000, 50000, 60000, 70000} {
		s, err := uqsim.TwoTier(uqsim.TwoTierConfig{
			Seed:             1,
			QPS:              qps,
			NginxCores:       8,
			MemcachedThreads: 4,
			Network:          true,
		})
		if err != nil {
			panic(err)
		}
		rep, err := s.Run(200*uqsim.Millisecond, uqsim.Second)
		if err != nil {
			panic(err)
		}
		fmt.Printf("%-12.0f %-12.0f %-10.3f %-10.3f %-10.3f\n",
			qps, rep.GoodputQPS,
			rep.Latency.Mean().Millis(),
			rep.Latency.P50().Millis(),
			rep.Latency.P99().Millis())
	}

	// The same simulator also runs hand-built topologies; here is a
	// minimal custom service to show the builder API.
	s := uqsim.New(uqsim.Options{Seed: 7})
	s.AddMachine("m0", 8, uqsim.DefaultFreqSpec)
	if _, err := s.Deploy(
		uqsim.SingleStageService("api", uqsim.Exponential(100*uqsim.Microsecond)),
		uqsim.RoundRobin,
		uqsim.Placement{Machine: "m0", Cores: 2},
	); err != nil {
		panic(err)
	}
	if err := s.SetTopology(uqsim.LinearTopology("main", "api")); err != nil {
		panic(err)
	}
	s.SetClient(uqsim.ClientConfig{Pattern: uqsim.ConstantRate(10000)})
	rep, err := s.Run(uqsim.Second/5, uqsim.Second)
	if err != nil {
		panic(err)
	}
	fmt.Printf("\ncustom M/M/2 service at 10k QPS: mean=%v p99=%v\n",
		rep.Latency.Mean(), rep.Latency.P99())
}
