// Multi-region failover: a geo-replicated store spans east, west, and
// eu with the client homed in east, then the whole east region crashes
// over the diurnal peak. Nearest-healthy-region routing shifts the
// traffic to west on its own; the acts differ in what happens to the
// spillover. Naive deep retries turn the saturated survivor into a
// retry storm whose reads stay stale for the entire outage, while the
// mitigated run — capped retries, breaker, CoDel-LIFO, and the control
// plane's region failover promoting west after a drain grace — bounds
// both the goodput dip and the stale window.
package main

import (
	"flag"
	"fmt"
	"math"
	"os"

	"uqsim"
)

const (
	warmup = 300 * uqsim.Millisecond
	dur    = 2 * uqsim.Second
	crash  = warmup + dur/5   // outage start
	heal   = warmup + 3*dur/5 // outage end
	base   = 800.0            // diurnal midline QPS
	amp    = 300.0            // diurnal swing
)

// build assembles the three-region store: east holds two cores (sized
// for the full peak), west and eu one each, so a failed-over peak
// saturates the survivors. WAN distances order west (5ms) before eu
// (40ms) from east, and the store replicates with 30ms of lag.
func build(faulted bool, clientRetries int) *uqsim.Sim {
	s := uqsim.New(uqsim.Options{Seed: 42})
	s.AddMachine("e0", 4, uqsim.FreqSpec{})
	s.AddMachine("w0", 4, uqsim.FreqSpec{})
	s.AddMachine("eu0", 4, uqsim.FreqSpec{})
	geo, err := s.SetGeography([]uqsim.Region{
		{Name: "east", Machines: []string{"e0"}},
		{Name: "west", Machines: []string{"w0"}},
		{Name: "eu", Machines: []string{"eu0"}},
	})
	if err != nil {
		panic(err)
	}
	geo.SetDefaultWAN(uqsim.WANLink{Latency: 30 * uqsim.Millisecond})
	if err := geo.SetLink("east", "west", uqsim.WANLink{Latency: 5 * uqsim.Millisecond}); err != nil {
		panic(err)
	}
	if err := geo.SetLink("east", "eu", uqsim.WANLink{Latency: 40 * uqsim.Millisecond}); err != nil {
		panic(err)
	}
	must(s.Deploy(uqsim.SingleStageService("store", uqsim.Exponential(uqsim.Millisecond)),
		uqsim.RoundRobin,
		uqsim.Placement{Machine: "e0", Cores: 2},
		uqsim.Placement{Machine: "w0", Cores: 1},
		uqsim.Placement{Machine: "eu0", Cores: 1}))
	if err := s.SetReplication("store", uqsim.ReplicationSpec{Lag: 30 * uqsim.Millisecond}); err != nil {
		panic(err)
	}
	if err := s.SetTopology(uqsim.LinearTopology("main", "store")); err != nil {
		panic(err)
	}
	// Phase the diurnal cycle so its peak lands mid-outage.
	mid := float64(crash+heal) / 2
	s.SetClient(uqsim.ClientConfig{
		Region: "east",
		Pattern: uqsim.Diurnal{
			Base: base, Amplitude: amp, Period: dur,
			Phase: math.Pi/2 - 2*math.Pi*mid/float64(dur),
		},
		Timeout:    100 * uqsim.Millisecond,
		MaxRetries: clientRetries,
	})
	if faulted {
		if err := s.InstallFaults(uqsim.FaultPlan{Events: []uqsim.FaultEvent{
			{At: crash, Kind: uqsim.CrashDomain, Domain: "east"},
			{At: heal, Kind: uqsim.RecoverDomain, Domain: "east"},
		}}); err != nil {
			panic(err)
		}
	}
	return s
}

func must(_ any, err error) {
	if err != nil {
		panic(err)
	}
}

func report(label string, rep *uqsim.Report) {
	leaked := int64(rep.Arrivals) -
		int64(rep.Completions+rep.Timeouts+rep.Shed+rep.Dropped+rep.DeadlineExpired+rep.Unreachable) -
		int64(rep.InFlight)
	fmt.Printf("%-22s goodput=%5.0f qps  p99=%8.3f ms  xregion=%-6d stale=%-6d retries=%-6d leaked=%d\n",
		label, rep.GoodputQPS, rep.Latency.P99().Millis(),
		rep.CrossRegionCalls, rep.StaleReads, rep.Retries, leaked)
}

func main() {
	maxWall := flag.Duration("max-wall", 0, "stop after this much wall-clock time, report partial results, exit nonzero")
	flag.Parse()
	wd := uqsim.StartWatchdog(*maxWall)

	// Act 1 — no fault: the east-homed client is served entirely in
	// region, so cross-region and stale counters stay at zero.
	s := build(false, 1)
	rep, err := s.Run(warmup, dur)
	if err != nil {
		panic(err)
	}
	report("no-fault", rep)

	// Act 2 — east dies with naive spillover handling: deep retry
	// budgets at the client and the store edge, FIFO queues, no control
	// plane. Every failed-over read is stale (nothing ever promotes
	// west) and the retry storm outlives the heal.
	s = build(true, 8)
	if err := s.SetServicePolicy("store", uqsim.ResiliencePolicy{
		Timeout: 50 * uqsim.Millisecond, MaxRetries: 6,
		BackoffBase: uqsim.Millisecond, BackoffJitter: 0.5,
	}); err != nil {
		panic(err)
	}
	if rep, err = s.Run(warmup, dur); err != nil {
		panic(err)
	}
	report("naive-region-loss", rep)

	// Act 3 — the same outage with the mitigations: capped retries,
	// breaker, CoDel-LIFO, and the control plane detecting the region
	// loss and promoting west after the drain grace. The stale window
	// shrinks to detection + drain + replication lag, and the survivors
	// shed what they cannot serve instead of melting down.
	s = build(true, 1)
	if err := s.SetServicePolicy("store", uqsim.ResiliencePolicy{
		Timeout: 50 * uqsim.Millisecond, MaxRetries: 1,
		BackoffBase: 20 * uqsim.Millisecond, BackoffJitter: 0.5,
		Breaker: &uqsim.BreakerSpec{ErrorThreshold: 0.5, Window: 20, Cooldown: 100 * uqsim.Millisecond},
	}); err != nil {
		panic(err)
	}
	if err := s.SetQueueDiscipline("store", uqsim.QueueDiscipline{
		Kind: uqsim.QueueCoDelLIFO, Target: 5 * uqsim.Millisecond,
	}); err != nil {
		panic(err)
	}
	plane, err := uqsim.AttachControl(s, uqsim.ControlConfig{
		Detector: &uqsim.DetectorConfig{Period: 5 * uqsim.Millisecond},
		RegionFailover: &uqsim.RegionFailoverConfig{
			CheckInterval: 5 * uqsim.Millisecond,
			DrainDelay:    20 * uqsim.Millisecond,
		},
	})
	if err != nil {
		panic(err)
	}
	if rep, err = s.Run(warmup, dur); err != nil {
		panic(err)
	}
	plane.Stop()
	report("mitigated-region-loss", rep)
	st := plane.Stats()
	fmt.Printf("%-22s region losses=%d failovers=%d restores=%d\n",
		"", st.RegionLosses, st.RegionFailovers, st.RegionRestores)
	if dep, ok := s.Deployment("store"); ok {
		if at, promoted := dep.PromotedAt("west"); promoted {
			fmt.Printf("%-22s west promoted %.0f ms after the crash\n", "", (at - crash).Millis())
		}
	}

	if wd.Interrupted() {
		fmt.Fprintf(os.Stderr, "regionloss: interrupted (%s)\n", wd.Reason())
		os.Exit(1)
	}
}
