// Self-healing control plane: the simulated cluster detects its own
// failures and repairs them, all inside virtual time. An instance crash is
// caught by phi-accrual heartbeat monitoring and failed over onto a machine
// with free cores; a frequency-degraded ("gray") instance is ejected from
// load balancing when its latency quantile drifts from its peers; a load
// step is absorbed by a reactive autoscaler. Every control action is an
// ordinary simulation event, so runs are reproducible bit for bit.
package main

import (
	"flag"
	"fmt"
	"os"

	"uqsim"
)

// build assembles one service with an exponential 1ms request cost and one
// instance per machine, driven open-loop at qps.
func build(qps float64, nMachines, machineCores, instCores int) *uqsim.Sim {
	s := uqsim.New(uqsim.Options{Seed: 11})
	var placements []uqsim.Placement
	for i := 0; i < nMachines; i++ {
		m := fmt.Sprintf("m%d", i)
		s.AddMachine(m, machineCores, uqsim.DefaultFreqSpec)
		placements = append(placements, uqsim.Placement{Machine: m, Cores: instCores})
	}
	if _, err := s.Deploy(
		uqsim.SingleStageService("api", uqsim.Exponential(uqsim.Millisecond)),
		uqsim.RoundRobin, placements...,
	); err != nil {
		panic(err)
	}
	if err := s.SetTopology(uqsim.LinearTopology("main", "api")); err != nil {
		panic(err)
	}
	s.SetClient(uqsim.ClientConfig{Pattern: uqsim.ConstantRate(qps)})
	return s
}

func report(label string, rep *uqsim.Report, st *uqsim.ControlStats) {
	fmt.Printf("%-28s goodput=%5.0f qps  p99=%8.3f ms",
		label, rep.GoodputQPS, rep.Latency.P99().Millis())
	if st != nil {
		fmt.Printf("  [detected=%d failovers=%d ejected=%d scale-ups=%d]",
			st.Detections, st.Failovers, st.Ejections, st.ScaleUps)
	}
	fmt.Println()
}

func main() {
	maxWall := flag.Duration("max-wall", 0, "stop after this much wall-clock time, report partial results, exit nonzero")
	flag.Parse()
	wd := uqsim.StartWatchdog(*maxWall)
	defer func() {
		if wd.Interrupted() {
			fmt.Fprintf(os.Stderr, "%s: interrupted (%s)\n", "selfhealing", wd.Reason())
			os.Exit(1)
		}
	}()

	// Incident 1: an instance dies at t=1.5s and never comes back. Without
	// the control plane the survivor runs saturated for the rest of the run.
	kill := uqsim.FaultPlan{Events: []uqsim.FaultEvent{
		{At: 1500 * uqsim.Millisecond, Kind: uqsim.KillInstance, Service: "api", Instance: 0},
	}}

	s := build(1600, 2, 2, 1)
	if err := s.InstallFaults(kill); err != nil {
		panic(err)
	}
	rep, err := s.Run(uqsim.Second, 3*uqsim.Second)
	if err != nil {
		panic(err)
	}
	report("crash, no control", rep, nil)

	// With heartbeats + failover: the detector notices the silent instance
	// within a few periods, and a replacement is started on whichever
	// machine has free cores after a 20ms restart delay.
	s = build(1600, 2, 2, 1)
	if err := s.InstallFaults(kill); err != nil {
		panic(err)
	}
	plane, err := uqsim.AttachControl(s, uqsim.ControlConfig{
		Detector: &uqsim.DetectorConfig{Period: 5 * uqsim.Millisecond},
		Failover: &uqsim.FailoverConfig{RestartDelay: 20 * uqsim.Millisecond},
	})
	if err != nil {
		panic(err)
	}
	if rep, err = s.Run(uqsim.Second, 3*uqsim.Second); err != nil {
		panic(err)
	}
	report("crash, detect+failover", rep, plane.Stats())
	plane.Stop()

	// Incident 2: a gray failure — m1 is silently clocked down to its
	// minimum frequency, so its instance answers every request, just 2×
	// slower. Heartbeats cannot see this; latency-quantile ejection can.
	gray := uqsim.FaultPlan{Events: []uqsim.FaultEvent{
		{At: 0, Kind: uqsim.DegradeFreq, Machine: "m1", FreqMHz: uqsim.DefaultFreqSpec.MinMHz},
	}}

	s = build(1200, 2, 2, 2)
	if err := s.InstallFaults(gray); err != nil {
		panic(err)
	}
	if rep, err = s.Run(uqsim.Second, 3*uqsim.Second); err != nil {
		panic(err)
	}
	report("gray failure, no control", rep, nil)

	s = build(1200, 2, 2, 2)
	if err := s.InstallFaults(gray); err != nil {
		panic(err)
	}
	plane, err = uqsim.AttachControl(s, uqsim.ControlConfig{
		Ejection: &uqsim.EjectionConfig{
			Interval:  50 * uqsim.Millisecond,
			Probation: uqsim.Second,
		},
	})
	if err != nil {
		panic(err)
	}
	uqsim.WireEjection(s, plane)
	if rep, err = s.Run(uqsim.Second, 3*uqsim.Second); err != nil {
		panic(err)
	}
	report("gray failure, ejection", rep, plane.Stats())
	plane.Stop()

	// Incident 3: demand outgrows provisioning — 1600 QPS against a single
	// 1-core replica (≈1000 QPS capacity). The fixed deployment collapses;
	// a reactive autoscaler grows the service up to its replica cap.
	s = build(1600, 1, 4, 1)
	if rep, err = s.Run(uqsim.Second, 3*uqsim.Second); err != nil {
		panic(err)
	}
	report("overload, fixed replica", rep, nil)

	s = build(1600, 1, 4, 1)
	plane, err = uqsim.AttachControl(s, uqsim.ControlConfig{
		Autoscale: []uqsim.AutoscaleConfig{{
			Service: "api", Min: 1, Max: 3,
			TargetUtilization: 0.6,
			Interval:          50 * uqsim.Millisecond,
		}},
	})
	if err != nil {
		panic(err)
	}
	if rep, err = s.Run(uqsim.Second, 3*uqsim.Second); err != nil {
		panic(err)
	}
	report("overload, autoscale", rep, plane.Stats())
	plane.Stop()
}
