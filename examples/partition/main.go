// Network fault domains: partition a two-machine service so cross-machine
// calls fail fast as unreachable, degrade a link into a lossy "gray" one
// that retries absorb, and crash a whole rack with a staggered burst. A
// monitor records the network-fault counters and the rack's live fraction
// as time series, so the blast radius of each act is visible in the data.
package main

import (
	"flag"
	"fmt"
	"os"

	"uqsim"
)

// build assembles a frontend→backend chain split across two machines, so
// every backend call crosses the m0→m1 network path.
func build(qps float64) *uqsim.Sim {
	s := uqsim.New(uqsim.Options{Seed: 21})
	s.AddMachine("m0", 4, uqsim.DefaultFreqSpec)
	s.AddMachine("m1", 4, uqsim.DefaultFreqSpec)
	must(s.Deploy(uqsim.SingleStageService("front", uqsim.Deterministic(float64(100*uqsim.Microsecond))),
		uqsim.RoundRobin, uqsim.Placement{Machine: "m0", Cores: 2}))
	must(s.Deploy(uqsim.SingleStageService("backend", uqsim.Exponential(uqsim.Millisecond)),
		uqsim.RoundRobin, uqsim.Placement{Machine: "m1", Cores: 2}))
	if err := s.SetTopology(uqsim.LinearTopology("main", "front", "backend")); err != nil {
		panic(err)
	}
	s.SetClient(uqsim.ClientConfig{Pattern: uqsim.ConstantRate(qps)})
	return s
}

func must(_ any, err error) {
	if err != nil {
		panic(err)
	}
}

func report(label string, s *uqsim.Sim, rep *uqsim.Report) {
	leaked := int64(rep.Arrivals) -
		int64(rep.Completions+rep.Timeouts+rep.Shed+rep.Dropped+rep.DeadlineExpired+rep.Unreachable) -
		int64(rep.InFlight)
	fmt.Printf("%-18s goodput=%5.0f qps  p99=%7.3f ms  unreachable=%-5d linkdrops=%-5d retries=%-5d leaked=%d\n",
		label, rep.GoodputQPS, rep.Latency.P99().Millis(),
		s.Net().Unreachable(), rep.LinkDrops, rep.Retries, leaked)
}

func main() {
	maxWall := flag.Duration("max-wall", 0, "stop after this much wall-clock time, report partial results, exit nonzero")
	flag.Parse()
	wd := uqsim.StartWatchdog(*maxWall)
	defer func() {
		if wd.Interrupted() {
			fmt.Fprintf(os.Stderr, "%s: interrupted (%s)\n", "partition", wd.Reason())
			os.Exit(1)
		}
	}()

	// Act 1 — a 300ms symmetric partition between the machines. Cross-
	// machine dispatch fails fast (no timeout wait), so the cut shows up
	// as unreachable attempts, not as a latency cliff.
	s := build(1000)
	if err := s.InstallFaults(uqsim.FaultPlan{Events: []uqsim.FaultEvent{{
		At: uqsim.Second, Until: uqsim.Second + 300*uqsim.Millisecond,
		Kind: uqsim.PartitionStart, GroupA: []string{"m0"}, GroupB: []string{"m1"},
	}}}); err != nil {
		panic(err)
	}
	rep, err := s.Run(uqsim.Second/2, 2*uqsim.Second)
	if err != nil {
		panic(err)
	}
	report("partition", s, rep)

	// Act 2 — the same cut, but the frontend→backend edge retries with
	// backoff. Attempts during the cut still die, yet most requests
	// outlive it: retries land after the heal.
	s = build(1000)
	if err := s.SetServicePolicy("backend", uqsim.ResiliencePolicy{
		Timeout:       50 * uqsim.Millisecond,
		MaxRetries:    4,
		BackoffBase:   80 * uqsim.Millisecond,
		BackoffJitter: 0.3,
	}); err != nil {
		panic(err)
	}
	if err := s.InstallFaults(uqsim.FaultPlan{Events: []uqsim.FaultEvent{{
		At: uqsim.Second, Until: uqsim.Second + 300*uqsim.Millisecond,
		Kind: uqsim.PartitionStart, GroupA: []string{"m0"}, GroupB: []string{"m1"},
	}}}); err != nil {
		panic(err)
	}
	if rep, err = s.Run(uqsim.Second/2, 2*uqsim.Second); err != nil {
		panic(err)
	}
	report("partition+retry", s, rep)

	// Act 3 — no clean cut, just a lossy link: 15% of m0→m1 messages
	// vanish. Gray failures are the ones detectors miss; here retries
	// turn the loss into latency instead of errors.
	s = build(1000)
	if err := s.SetServicePolicy("backend", uqsim.ResiliencePolicy{
		Timeout:     20 * uqsim.Millisecond,
		MaxRetries:  3,
		BackoffBase: uqsim.Millisecond,
	}); err != nil {
		panic(err)
	}
	if err := s.InstallFaults(uqsim.FaultPlan{Events: []uqsim.FaultEvent{{
		At: uqsim.Second, Kind: uqsim.SetLink, Src: "m0", Dst: "m1", Drop: 0.15,
	}}}); err != nil {
		panic(err)
	}
	if rep, err = s.Run(uqsim.Second/2, 2*uqsim.Second); err != nil {
		panic(err)
	}
	report("gray-link", s, rep)

	// Act 4 — a rack failure: m1 and m2 share a failure domain, and the
	// domain crashes as a correlated burst (10ms apart), then recovers.
	// The monitor samples the rack's live fraction alongside the
	// network-fault counters; a crash surfaces as dropped in-flight work
	// in the report, while unreachable stays zero — that counter belongs
	// to partitions, where the machines are alive but cut off.
	s = build(1000)
	s.AddMachine("m2", 4, uqsim.DefaultFreqSpec)
	if _, err := s.Deploy(uqsim.SingleStageService("spare", uqsim.Exponential(uqsim.Millisecond)),
		uqsim.RoundRobin, uqsim.Placement{Machine: "m2", Cores: 1}); err != nil {
		panic(err)
	}
	if err := s.SetDomains([]uqsim.FailureDomain{{Name: "rack0", Machines: []string{"m1", "m2"}}}); err != nil {
		panic(err)
	}
	if err := s.InstallFaults(uqsim.FaultPlan{Events: []uqsim.FaultEvent{
		{At: uqsim.Second, Kind: uqsim.CrashDomain, Domain: "rack0", Stagger: 10 * uqsim.Millisecond},
		{At: uqsim.Second + 400*uqsim.Millisecond, Kind: uqsim.RecoverDomain, Domain: "rack0", Stagger: 10 * uqsim.Millisecond},
	}}); err != nil {
		panic(err)
	}
	mon := uqsim.NewMonitor(s, 100*uqsim.Millisecond)
	unreach, _, _ := mon.WatchNet("net", s.Net())
	rackUp := mon.WatchGauge("rack0.up", func(uqsim.Time) float64 { return s.DomainUp("rack0") })
	mon.Start()
	if rep, err = s.Run(uqsim.Second/2, 2*uqsim.Second); err != nil {
		panic(err)
	}
	report("rack-crash", s, rep)
	fmt.Printf("%-18s dropped=%d  unreachable-series-final=%.0f\n",
		"", rep.Dropped, last(unreach.Points()))
	fmt.Println("\nrack0 live fraction over time:")
	for _, p := range rackUp.Points() {
		fmt.Printf("  t=%5.0fms  rack0.up=%.1f\n", p.T.Millis(), p.V)
	}
}

func last(pts []uqsim.TimeSeriesPoint) float64 {
	if len(pts) == 0 {
		return 0
	}
	return pts[len(pts)-1].V
}
