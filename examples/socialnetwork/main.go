// Social network: the paper's end-to-end microservices application
// (Fig. 11/12b). A Thrift frontend fans out to User and Post services in
// parallel, synchronizes their responses, optionally resolves embedded
// media, and replies; each backend tier caches in memcached and persists
// in MongoDB (with blocking disk I/O on a shared spindle pool).
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"uqsim"
)

func main() {
	maxWall := flag.Duration("max-wall", 0, "stop after this much wall-clock time, report partial results, exit nonzero")
	flag.Parse()
	wd := uqsim.StartWatchdog(*maxWall)
	defer func() {
		if wd.Interrupted() {
			fmt.Fprintf(os.Stderr, "%s: interrupted (%s)\n", "socialnetwork", wd.Reason())
			os.Exit(1)
		}
	}()

	fmt.Println("social network: frontend → {user, post} → media, memcached+MongoDB per tier")
	fmt.Printf("%-12s %-12s %-10s %-10s %-10s\n",
		"offered_qps", "goodput_qps", "mean_ms", "p50_ms", "p99_ms")
	var last *uqsim.Report
	for _, qps := range []float64{500, 1000, 2000, 3000, 4000, 5000} {
		s, err := uqsim.SocialNetwork(uqsim.SocialNetworkConfig{
			Seed:         1,
			QPS:          qps,
			CacheHitProb: 0.85,
			MediaProb:    0.5,
			Network:      true,
		})
		if err != nil {
			panic(err)
		}
		rep, err := s.Run(300*uqsim.Millisecond, uqsim.Second)
		if err != nil {
			panic(err)
		}
		fmt.Printf("%-12.0f %-12.0f %-10.3f %-10.3f %-10.3f\n",
			qps, rep.GoodputQPS,
			rep.Latency.Mean().Millis(),
			rep.Latency.P50().Millis(),
			rep.Latency.P99().Millis())
		last = rep
	}

	// Per-tier breakdown at the highest load: which microservice
	// dominates the end-to-end latency?
	fmt.Println("\nper-tier residence at 5k QPS:")
	var tiers []string
	for name := range last.PerTier {
		tiers = append(tiers, name)
	}
	sort.Strings(tiers)
	for _, name := range tiers {
		h := last.PerTier[name]
		fmt.Printf("  %-12s requests=%-8d mean=%-10v p99=%v\n",
			name, h.Count(), h.Mean(), h.P99())
	}
}
