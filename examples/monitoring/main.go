// Monitoring: watch queue buildup as a diurnal load sweeps across the
// two-tier application's capacity — the back-pressure view of the
// simulator. The monitor samples every instance's queue length and core
// utilization on a fixed virtual-time cadence.
package main

import (
	"flag"
	"fmt"
	"os"

	"uqsim"
)

func main() {
	maxWall := flag.Duration("max-wall", 0, "stop after this much wall-clock time, report partial results, exit nonzero")
	flag.Parse()
	wd := uqsim.StartWatchdog(*maxWall)
	defer func() {
		if wd.Interrupted() {
			fmt.Fprintf(os.Stderr, "%s: interrupted (%s)\n", "monitoring", wd.Reason())
			os.Exit(1)
		}
	}()

	s, err := uqsim.TwoTier(uqsim.TwoTierConfig{
		Seed: 1,
		Pattern: uqsim.Diurnal{
			Base:      45000,
			Amplitude: 35000,
			Period:    8 * uqsim.Second,
			Floor:     2000,
		},
		Network: true,
	})
	if err != nil {
		panic(err)
	}

	mon := uqsim.NewMonitor(s, 250*uqsim.Millisecond)
	for _, name := range []string{"nginx", "memcached"} {
		dep, ok := s.Deployment(name)
		if !ok {
			panic("missing deployment " + name)
		}
		for _, in := range dep.Instances {
			mon.Watch(in.Name, in)
		}
	}
	mon.Start()

	if _, err := s.Run(0, 8*uqsim.Second); err != nil {
		panic(err)
	}

	// The diurnal peak (80k QPS) exceeds the ~70k capacity: NGINX queues
	// build through the peak and drain afterwards.
	fmt.Println("t_s    nginx_qlen  nginx_util  memcached_qlen  memcached_util")
	ng := mon.AllSeries()[0]
	mc := mon.AllSeries()[1]
	for i := 0; i < ng.QueueLen.Len(); i += 2 {
		fmt.Printf("%-6.2f %-11.0f %-11.3f %-15.0f %-14.3f\n",
			ng.QueueLen.Points()[i].T.Seconds(),
			ng.QueueLen.Points()[i].V,
			ng.Util.Points()[i].V,
			mc.QueueLen.Points()[i].V,
			mc.Util.Points()[i].V,
		)
	}
	fmt.Printf("\npeak queue lengths: %v\n", mon.PeakQueueLen())
}
