// Power manager: run the paper's Algorithm 1 — a QoS-aware DVFS controller
// that learns per-tier latency targets from an end-to-end tail-latency QoS
// — against the two-tier application under a diurnal load (Fig. 15/16,
// Table III). Each decision interval simulates 240 virtual seconds (eight
// diurnal periods), so the slowest controller also converges to the QoS
// boundary; expect a few minutes of wall-clock time.
package main

import (
	"flag"
	"fmt"
	"os"

	"uqsim"
)

func main() {
	maxWall := flag.Duration("max-wall", 0, "stop after this much wall-clock time, report partial results, exit nonzero")
	flag.Parse()
	wd := uqsim.StartWatchdog(*maxWall)
	defer func() {
		if wd.Interrupted() {
			fmt.Fprintf(os.Stderr, "%s: interrupted (%s)\n", "powermanager", wd.Reason())
			os.Exit(1)
		}
	}()

	const target = 5 * uqsim.Millisecond
	fmt.Printf("2-tier app, diurnal load, %v p99 QoS target\n\n", target)
	fmt.Printf("%-20s %-16s %-15s %-8s\n",
		"decision_interval", "violation_rate", "mean_freq_mhz", "cycles")

	for _, interval := range []uqsim.Time{
		100 * uqsim.Millisecond,
		500 * uqsim.Millisecond,
		uqsim.Second,
	} {
		s, err := uqsim.TwoTier(uqsim.TwoTierConfig{
			Seed: 1,
			Pattern: uqsim.Diurnal{
				Base:      25000,
				Amplitude: 20000,
				Period:    30 * uqsim.Second,
				Floor:     2000,
			},
			Network: true,
		})
		if err != nil {
			panic(err)
		}
		tiers, err := uqsim.TiersOf(s, "nginx", "memcached")
		if err != nil {
			panic(err)
		}
		mgr, err := uqsim.NewPowerManager(s, uqsim.PowerConfig{
			Target:   target,
			Interval: interval,
			Seed:     1,
		}, tiers)
		if err != nil {
			panic(err)
		}
		s.OnRequestDone = mgr.Observe
		mgr.Start()
		if _, err := s.Run(0, 240*uqsim.Second); err != nil {
			panic(err)
		}
		fmt.Printf("%-20v %-16s %-15.0f %-8d\n",
			interval.Duration(),
			fmt.Sprintf("%.1f%%", 100*mgr.ViolationRate()),
			mgr.MeanFrequency(),
			mgr.Cycles())
	}

	fmt.Println("\npaper Table III (simulated): 0.6% / 2.2% / 5.0% for 0.1s / 0.5s / 1s")
	fmt.Println("the mean frequency shows the energy saving against the 2600 MHz nominal")
}
