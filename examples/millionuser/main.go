// Million-user hybrid fidelity: drive the simulator with a session
// population (journeys of think→request steps, plus a flash crowd) instead
// of a bare arrival rate, then split the engine's fidelity — a sampled
// foreground of users runs through the full discrete-event core while the
// rest flow through a fluid M/M/k background tier that injects queueing
// wait into the sampled requests. The same cluster that takes seconds of
// wall clock per simulated second at full fidelity carries a million-user
// population in a fraction of it, with tail latency within the sampling
// noise of the exact run.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"uqsim"
)

// build assembles the scenario: users walk a two-step browse journey
// (1s mean think per step) against one 10ms exponential service tier with
// enough cores for rho ≈ 0.6 at the base population.
func build(users, cores int, hc *uqsim.HybridConfig) *uqsim.Sim {
	s := uqsim.New(uqsim.Options{Seed: 42})
	s.AddMachine("m0", cores, uqsim.DefaultFreqSpec)
	if _, err := s.Deploy(
		uqsim.SingleStageService("front", uqsim.Exponential(10*uqsim.Millisecond)),
		uqsim.RoundRobin,
		uqsim.Placement{Machine: "m0", Cores: cores},
	); err != nil {
		panic(err)
	}
	if err := s.SetTopology(uqsim.LinearTopology("main", "front")); err != nil {
		panic(err)
	}
	s.SetClient(uqsim.ClientConfig{Sessions: &uqsim.SessionConfig{
		Users: users,
		Journeys: []uqsim.Journey{{
			Name:   "browse",
			Weight: 1,
			Steps: []uqsim.SessionStep{
				{Tree: 0, Think: uqsim.Exponential(uqsim.Second)},
				{Tree: 0, Think: uqsim.Exponential(uqsim.Second)},
			},
		}},
		// A flash crowd doubles the population for a stretch mid-run.
		Crowds: []uqsim.FlashCrowd{{
			At:       4 * uqsim.Second,
			Extra:    users,
			RampUp:   uqsim.Second,
			Hold:     2 * uqsim.Second,
			RampDown: uqsim.Second,
		}},
	}})
	if hc != nil {
		s.SetHybrid(*hc)
	}
	return s
}

func main() {
	maxWall := flag.Duration("max-wall", 0, "stop after this much wall-clock time, report partial results, exit nonzero")
	flag.Parse()
	wd := uqsim.StartWatchdog(*maxWall)
	defer func() {
		if wd.Interrupted() {
			fmt.Fprintf(os.Stderr, "%s: interrupted (%s)\n", "millionuser", wd.Reason())
			os.Exit(1)
		}
	}()

	const (
		baseUsers = 242
		baseCores = 4
		warm      = 2 * uqsim.Second
		dur       = 10 * uqsim.Second
	)
	fmt.Println("session population, two-step browse journey, flash crowd at t=4s")
	fmt.Printf("%-22s %-10s %-8s %-8s %-12s %-10s\n",
		"fidelity", "users", "p50_ms", "p99_ms", "bg_arrivals", "wall")

	row := func(label string, users, cores int, hc *uqsim.HybridConfig) float64 {
		s := build(users, cores, hc)
		start := time.Now()
		rep, err := s.Run(warm, dur)
		if err != nil {
			panic(err)
		}
		wall := time.Since(start)
		if rep.BackgroundArrivals != rep.BackgroundCompletions+rep.BackgroundShed {
			panic("background conservation violated")
		}
		fmt.Printf("%-22s %-10d %-8.3f %-8.3f %-12d %-10s\n",
			label, users,
			rep.Latency.P50().Millis(), rep.Latency.P99().Millis(),
			rep.BackgroundArrivals, wall.Round(time.Millisecond))
		return float64(users) * dur.Seconds() / wall.Seconds()
	}

	fullRate := row("full", baseUsers, baseCores, nil)
	row("hybrid p=0.1", baseUsers, baseCores, &uqsim.HybridConfig{SampleRate: 0.1})

	// The same engine, a million users: the deployment scales with the
	// population and the sample rate shrinks so the simulated foreground
	// stays the size of the full-fidelity baseline.
	const bigUsers = 1_000_000
	grow := bigUsers / baseUsers
	bigRate := row("hybrid 1M users", bigUsers, baseCores*grow,
		&uqsim.HybridConfig{SampleRate: float64(baseUsers) / bigUsers})

	fmt.Printf("\nsimulated user-seconds per wall-clock second: full %.0f, million-user hybrid %.0f (%.0f×)\n",
		fullRate, bigRate, bigRate/fullRate)
}
