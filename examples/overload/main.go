// Graceful degradation under overload: the same 20ms latency objective
// expressed two ways at 1.5× saturation. As a client timeout, the backlog
// outgrows the caller's patience, the server burns its cores on requests
// nobody is waiting for, and goodput collapses. As a propagated deadline
// budget with CoDel-governed adaptive-LIFO admission and a latency-quantile
// hedge, expired work is cancelled before it wastes service, fresh requests
// are served first, and goodput holds at capacity with every response
// inside the budget.
package main

import (
	"flag"
	"fmt"
	"os"

	"uqsim"
)

const (
	slo      = 20 * uqsim.Millisecond
	capacity = 2000 // two 1-core instances × ≈1000 QPS each
)

// build assembles the shared substrate: one service with exponential 1ms
// request cost on two 1-core instances, driven open-loop at qps.
func build(qps float64) *uqsim.Sim {
	s := uqsim.New(uqsim.Options{Seed: 7})
	s.AddMachine("m0", 4, uqsim.DefaultFreqSpec)
	s.AddMachine("m1", 4, uqsim.DefaultFreqSpec)
	if _, err := s.Deploy(
		uqsim.SingleStageService("api", uqsim.Exponential(uqsim.Millisecond)),
		uqsim.RoundRobin,
		uqsim.Placement{Machine: "m0", Cores: 1},
		uqsim.Placement{Machine: "m1", Cores: 1},
	); err != nil {
		panic(err)
	}
	if err := s.SetTopology(uqsim.LinearTopology("main", "api")); err != nil {
		panic(err)
	}
	return s
}

func report(label string, rep *uqsim.Report) {
	leaked := int64(rep.Arrivals) -
		int64(rep.Completions+rep.Timeouts+rep.DeadlineExpired+rep.Shed+rep.Dropped) -
		int64(rep.InFlight)
	fmt.Printf("%-30s goodput=%5.0f qps  p99=%7.3f ms  timeouts=%-5d deadline=%-5d hedges=%-4d wasted=%-5d canceled=%-5d leaked=%d\n",
		label, rep.GoodputQPS, rep.Latency.P99().Millis(),
		rep.Timeouts, rep.DeadlineExpired, rep.HedgesIssued,
		rep.WastedWork, rep.CanceledWork, leaked)
}

func main() {
	maxWall := flag.Duration("max-wall", 0, "stop after this much wall-clock time, report partial results, exit nonzero")
	flag.Parse()
	wd := uqsim.StartWatchdog(*maxWall)
	defer func() {
		if wd.Interrupted() {
			fmt.Fprintf(os.Stderr, "%s: interrupted (%s)\n", "overload", wd.Reason())
			os.Exit(1)
		}
	}()

	qps := 1.5 * capacity
	fmt.Printf("offered load %.0f QPS against ≈%d QPS capacity, SLO %v\n\n", qps, capacity, slo)

	// Baseline: the SLO lives only in the client, which abandons requests
	// older than 20ms. The server has no idea — it serves the FIFO queue
	// in arrival order, mostly requests whose callers are long gone.
	s := build(qps)
	s.SetClient(uqsim.ClientConfig{
		Pattern: uqsim.ConstantRate(qps),
		Timeout: slo,
	})
	rep, err := s.Run(uqsim.Second, 4*uqsim.Second)
	if err != nil {
		panic(err)
	}
	report("fifo + client timeout", rep)

	// Graceful: the same 20ms carried as a deadline budget with the
	// request. Expiry cancels queued work everywhere in the subtree;
	// adaptive LIFO serves the freshest (still-live) work first while the
	// queue is stale; a p95 hedge races a backup on the other instance
	// when the primary is slow.
	s = build(qps)
	s.SetClient(uqsim.ClientConfig{
		Pattern: uqsim.ConstantRate(qps),
		Budget:  uqsim.Deterministic(float64(slo)),
	})
	if err := s.SetQueueDiscipline("api", uqsim.QueueDiscipline{
		Kind:   uqsim.QueueCoDelLIFO,
		Target: 5 * uqsim.Millisecond,
	}); err != nil {
		panic(err)
	}
	if err := s.SetServicePolicy("api", uqsim.ResiliencePolicy{
		Hedge: &uqsim.HedgeSpec{Quantile: 0.95, MinSamples: 32},
	}); err != nil {
		panic(err)
	}
	if rep, err = s.Run(uqsim.Second, 4*uqsim.Second); err != nil {
		panic(err)
	}
	report("deadline + codel-lifo + hedge", rep)
}
