package uqsim

// Benchmark harness: one benchmark per table and figure of the paper's
// evaluation section (each regenerates the experiment at reduced scale;
// run `go run ./cmd/uqsim-experiments all` for the full-scale sweeps), an
// ablation bench per DESIGN.md design decision, and simulator-throughput
// benchmarks backing the "scalable" claim.

import (
	"testing"

	"uqsim/internal/experiments"
)

// benchScale shrinks each experiment's windows/sweeps so a benchmark
// iteration stays in the hundreds of milliseconds.
const benchScale = 0.08

func benchExperiment(b *testing.B, id string) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Run(id, experiments.Opts{Seed: 1, Scale: benchScale}); err != nil {
			b.Fatal(err)
		}
	}
}

// ---- paper figures and tables ----

func BenchmarkFig05TwoTier(b *testing.B)       { benchExperiment(b, "fig5") }
func BenchmarkFig06ThreeTier(b *testing.B)     { benchExperiment(b, "fig6") }
func BenchmarkFig08LoadBalancing(b *testing.B) { benchExperiment(b, "fig8") }
func BenchmarkFig10Fanout(b *testing.B)        { benchExperiment(b, "fig10") }
func BenchmarkFig12aThrift(b *testing.B)       { benchExperiment(b, "fig12a") }
func BenchmarkFig12bSocialNetwork(b *testing.B) {
	benchExperiment(b, "fig12b")
}
func BenchmarkFig13BigHouse(b *testing.B)    { benchExperiment(b, "fig13") }
func BenchmarkFig14TailAtScale(b *testing.B) { benchExperiment(b, "fig14") }
func BenchmarkFig15Diurnal(b *testing.B)     { benchExperiment(b, "fig15") }
func BenchmarkFig16PowerTrace(b *testing.B)  { benchExperiment(b, "fig16") }
func BenchmarkTab3PowerViolations(b *testing.B) {
	benchExperiment(b, "table3")
}

// ---- validation & extensions ----

func BenchmarkValidationSuite(b *testing.B)  { benchExperiment(b, "validation") }
func BenchmarkExtTimeouts(b *testing.B)      { benchExperiment(b, "ext-timeouts") }
func BenchmarkExtEmergentCache(b *testing.B) { benchExperiment(b, "ext-cache") }
func BenchmarkScalability(b *testing.B)      { benchExperiment(b, "scalability") }
func BenchmarkResilience(b *testing.B)       { benchExperiment(b, "resilience") }
func BenchmarkOverload(b *testing.B)         { benchExperiment(b, "overload") }

// ---- DESIGN.md ablations ----

func BenchmarkAblationNoBatching(b *testing.B) { benchExperiment(b, "ablation-batching") }
func BenchmarkAblationNoNetproc(b *testing.B)  { benchExperiment(b, "ablation-netproc") }
func BenchmarkAblationNoBlocking(b *testing.B) { benchExperiment(b, "ablation-blocking") }
func BenchmarkAblationLBPolicies(b *testing.B) { benchExperiment(b, "ablation-lb") }

// ---- simulator throughput ----

// BenchmarkSimulatorEventRate measures how many simulated requests per
// wall-clock second the two-tier model sustains (each request is ~14
// discrete events across stages, netproc, and pools).
func BenchmarkSimulatorEventRate(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s, err := TwoTier(TwoTierConfig{Seed: uint64(i + 1), QPS: 40000, Network: true})
		if err != nil {
			b.Fatal(err)
		}
		rep, err := s.Run(0, Second)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(rep.Completions), "req/op")
		b.ReportMetric(float64(s.Engine().Processed()), "events/op")
	}
}

// BenchmarkSimulatorEventRateWithPolicies is BenchmarkSimulatorEventRate
// with a resilience policy guarding every memcached edge, measuring the
// per-call cost of the attempt/timeout machinery on the hot path. The
// timeout is far above the healthy p99, so no retries fire — this isolates
// policy bookkeeping from fault handling.
func BenchmarkSimulatorEventRateWithPolicies(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s, err := TwoTier(TwoTierConfig{Seed: uint64(i + 1), QPS: 40000, Network: true})
		if err != nil {
			b.Fatal(err)
		}
		if err := s.SetServicePolicy("memcached", ResiliencePolicy{
			Timeout: Second, MaxRetries: 2, BackoffBase: Millisecond,
		}); err != nil {
			b.Fatal(err)
		}
		rep, err := s.Run(0, Second)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(rep.Completions), "req/op")
		b.ReportMetric(float64(s.Engine().Processed()), "events/op")
	}
}

// BenchmarkSimulatorEventRateWithHedging measures the cost of hedged
// dispatch on the hot path: an 8-way load-balanced cluster with a p95
// quantile hedge on the leaf edge, so every call pays the per-edge
// latency sampling and hedge-timer arm/cancel, and the ~5% of calls whose
// backup actually fires pay the race bookkeeping too.
func BenchmarkSimulatorEventRateWithHedging(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s, err := LoadBalanced(ScaleOutConfig{Seed: uint64(i + 1), QPS: 20000, Servers: 8})
		if err != nil {
			b.Fatal(err)
		}
		if err := s.SetServicePolicy("nginx", ResiliencePolicy{
			Hedge: &HedgeSpec{Quantile: 0.95, MinSamples: 64},
		}); err != nil {
			b.Fatal(err)
		}
		rep, err := s.Run(0, Second)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(rep.Completions), "req/op")
		b.ReportMetric(float64(rep.HedgesIssued), "hedges/op")
		b.ReportMetric(float64(s.Engine().Processed()), "events/op")
	}
}

// BenchmarkSimulatorLargeFanout measures a 500-leaf fan-out cluster — the
// "scales beyond testbed sizes" use case.
func BenchmarkSimulatorLargeFanout(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s, err := TailAtScale(TailAtScaleConfig{
			Seed: uint64(i + 1), QPS: 50, Servers: 500, SlowFraction: 0.01,
		})
		if err != nil {
			b.Fatal(err)
		}
		rep, err := s.Run(0, 2*Second)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(rep.Completions), "req/op")
	}
}
