// Package uqsim is a scalable, validated queueing-network simulator for
// interactive microservices — a Go implementation of µqSim (Zhang, Gan,
// Delimitrou: "µqSim: Enabling Accurate and Scalable Simulation for
// Interactive Microservices", ISPASS 2019).
//
// µqSim models each microservice as a set of execution stages
// (queue–consumer pairs with epoll/socket batching semantics), composes
// microservices into dependency graphs with fan-out, fan-in
// synchronization and connection-level blocking, and simulates request
// flow across a cluster of DVFS-capable machines with shared
// network-interrupt processing.
//
// # Quick start
//
//	s := uqsim.New(uqsim.Options{Seed: 1})
//	s.AddMachine("m0", 16, uqsim.DefaultFreqSpec)
//	s.Deploy(uqsim.SingleStageService("api", uqsim.Exponential(100*uqsim.Microsecond)),
//		uqsim.RoundRobin, uqsim.Placement{Machine: "m0", Cores: 2})
//	s.SetTopology(uqsim.LinearTopology("main", "api"))
//	s.SetClient(uqsim.ClientConfig{Pattern: uqsim.ConstantRate(5000)})
//	rep, _ := s.Run(uqsim.Second/5, uqsim.Second)
//	fmt.Println(rep.Latency.P99())
//
// Prebuilt models of the paper's applications (NGINX, memcached, MongoDB,
// Apache Thrift, a Social Network) and builders for each of its
// experiments live in the Scenario functions (TwoTier, ThreeTier,
// LoadBalanced, Fanout, ThriftHello, SocialNetwork, TailAtScale).
// A JSON front-end mirroring the paper's Table I inputs is available via
// LoadConfig.
package uqsim

import (
	"time"

	"uqsim/internal/apps"
	"uqsim/internal/cache"
	"uqsim/internal/chaos"
	"uqsim/internal/cli"
	"uqsim/internal/cluster"
	"uqsim/internal/config"
	"uqsim/internal/control"
	"uqsim/internal/des"
	"uqsim/internal/dist"
	"uqsim/internal/farm"
	"uqsim/internal/fault"
	"uqsim/internal/graph"
	"uqsim/internal/hybrid"
	"uqsim/internal/monitor"
	"uqsim/internal/netfault"
	"uqsim/internal/pdes"
	"uqsim/internal/power"
	"uqsim/internal/service"
	"uqsim/internal/sim"
	"uqsim/internal/stats"
	"uqsim/internal/trace"
	"uqsim/internal/workload"
)

// ---- core simulation types ----

// Sim is one assembled simulation; see sim.Sim.
type Sim = sim.Sim

// Options seeds a simulation's random streams.
type Options = sim.Options

// Report is the outcome of a run.
type Report = sim.Report

// InstanceReport summarizes one instance after a run.
type InstanceReport = sim.InstanceReport

// ClientConfig describes the workload source.
type ClientConfig = sim.ClientConfig

// NetworkConfig models per-machine interrupt processing.
type NetworkConfig = sim.NetworkConfig

// Placement pins an instance onto a machine.
type Placement = sim.Placement

// Policy selects instance load balancing.
type Policy = sim.Policy

// Load-balancing policies.
const (
	RoundRobin  = sim.RoundRobin
	Random      = sim.Random
	LeastLoaded = sim.LeastLoaded
)

// New creates an empty simulation.
func New(opts Options) *Sim { return sim.New(opts) }

// ---- virtual time ----

// Time is virtual time in nanoseconds.
type Time = des.Time

// Time units.
const (
	Nanosecond  = des.Nanosecond
	Microsecond = des.Microsecond
	Millisecond = des.Millisecond
	Second      = des.Second
)

// ---- simulation engines ----

// Scheduler is the event-scheduling surface model code sees (Now, At,
// After, Post, Cancel).
type Scheduler = des.Scheduler

// Runner is a complete engine: a Scheduler that can also drive the event
// loop. Options.Engine accepts any Runner; nil selects the sequential
// engine.
type Runner = des.Runner

// NewParallelEngine returns the conservative parallel engine configured
// as a coordinator for a full Sim: it executes the exact deterministic
// event order of the sequential engine, so results are bit-identical for
// the same seed. Pass it as Options.Engine. The JSON front-end's
// machines.json "engine": {"workers": N} section is equivalent.
func NewParallelEngine(workers int) Runner {
	return pdes.New(pdes.Options{LPs: 1, Workers: workers, Lookahead: Millisecond})
}

// ShardedCluster is the LP-decomposed fan-out cluster model: machines are
// partitioned across logical processes and simulated in parallel
// lookahead windows, with cross-LP messages merged deterministically so
// every worker count reproduces the same trace.
type ShardedCluster = pdes.ShardedCluster

// ShardedClusterConfig parameterizes a ShardedCluster.
type ShardedClusterConfig = pdes.ShardedClusterConfig

// ShardReport is the outcome of a ShardedCluster run.
type ShardReport = pdes.ShardReport

// NewShardedCluster assembles the sharded fan-out model.
func NewShardedCluster(cfg ShardedClusterConfig) (*ShardedCluster, error) {
	return pdes.NewShardedCluster(cfg)
}

// ---- cluster ----

// FreqSpec is a machine's DVFS range.
type FreqSpec = cluster.FreqSpec

// DefaultFreqSpec matches the paper's Xeon E5-2660 v3 (1.2–2.6 GHz).
var DefaultFreqSpec = cluster.DefaultFreqSpec

// ---- multi-region geography ----

// Region groups machines (directly or by rack) into one geographic
// failure and latency domain; install with Sim.SetGeography.
type Region = cluster.Region

// WANLink is the latency/bandwidth cost of one inter-region hop.
type WANLink = cluster.WANLink

// Geography is the installed region map: WAN link configuration,
// nearest-region ordering, and machine→region lookups.
type Geography = cluster.Geography

// ReplicationSpec declares a deployment geo-replicated across regions
// with asynchronous replication lag; install with Sim.SetReplication.
// Reads served by a non-promoted remote region within the lag window
// count as stale (Report.StaleReads).
type ReplicationSpec = sim.ReplicationSpec

// ---- service models ----

// Blueprint describes a microservice's internal architecture.
type Blueprint = service.Blueprint

// StageSpec is one execution stage.
type StageSpec = service.StageSpec

// PathSpec is one execution path through stages.
type PathSpec = service.PathSpec

// Execution models.
const (
	ModelSimple   = service.ModelSimple
	ModelThreaded = service.ModelThreaded
)

// SingleStageService builds a one-stage FIFO microservice.
func SingleStageService(name string, cost Sampler) *Blueprint {
	return service.SingleStage(name, cost)
}

// ---- distributions ----

// Sampler draws values (durations in ns) from a distribution.
type Sampler = dist.Sampler

// Deterministic returns a point-mass sampler.
func Deterministic(v float64) Sampler { return dist.NewDeterministic(v) }

// Exponential returns an exponential sampler with the given mean (ns; the
// Time units compose naturally: Exponential(100*uqsim.Microsecond)).
func Exponential(mean Time) Sampler { return dist.NewExponential(float64(mean)) }

// Erlang returns an Erlang-k sampler with the given overall mean.
func Erlang(k int, mean Time) Sampler { return dist.NewErlang(k, float64(mean)) }

// LogNormal returns a lognormal sampler from real-space moments.
func LogNormal(mean, stddev Time) Sampler {
	return dist.LogNormalFromMoments(float64(mean), float64(stddev))
}

// ---- topology ----

// Topology is the inter-microservice description.
type Topology = graph.Topology

// TreeNode is one inter-service path node.
type TreeNode = graph.Node

// Tree is one weighted path tree.
type Tree = graph.Tree

// ConnPool declares a connection pool.
type ConnPool = graph.ConnPool

// LinearTopology builds a pipeline through the named services.
func LinearTopology(name string, services ...string) *Topology {
	return graph.Linear(name, services...)
}

// ---- workload ----

// Pattern yields a time-varying arrival rate.
type Pattern = workload.Pattern

// ConstantRate is a fixed QPS target.
type ConstantRate = workload.ConstantRate

// Diurnal is a sinusoidal load pattern.
type Diurnal = workload.Diurnal

// Burst is a two-state Markov-modulated (ON/OFF) load pattern.
type Burst = workload.Burst

// Arrival processes.
const (
	Poisson = workload.Poisson
	Uniform = workload.Uniform
)

// ---- session-based user flows ----

// SessionConfig drives the client with a population of journey-walking
// users instead of a bare arrival rate; set it as ClientConfig.Sessions.
// The population is a first-class signal: phased ramps, flash crowds, and
// on/off bursty users compose into the offered load.
type SessionConfig = workload.SessionConfig

// Journey is a weighted multi-step user flow (browse → search → buy).
type Journey = workload.Journey

// SessionStep is one step of a journey: think, then issue a request tree.
type SessionStep = workload.SessionStep

// PopPhase is one knot of the piecewise-linear population envelope.
type PopPhase = workload.PopPhase

// FlashCrowd superimposes a transient trapezoid of extra users.
type FlashCrowd = workload.FlashCrowd

// OnOff makes every user alternate active and silent periods.
type OnOff = workload.OnOff

// ---- hybrid fidelity ----

// HybridConfig splits the workload into a sampled foreground simulated at
// full discrete-event fidelity and a fluid background carried as per-epoch
// M/M/k equilibria that inject queueing wait into sampled requests;
// install with Sim.SetHybrid. SampleRate 1.0 is bit-identical to full
// fidelity; smaller rates trade per-request variance for the capacity to
// carry million-user populations. Report.BackgroundArrivals/
// BackgroundCompletions/BackgroundShed account the fluid tier's traffic.
type HybridConfig = hybrid.Config

// ---- measurements ----

// LatencyHist is a log-binned latency histogram with quantile queries.
type LatencyHist = stats.LatencyHist

// TimeSeries records (virtual time, value) pairs.
type TimeSeries = stats.TimeSeries

// TimeSeriesPoint is one (virtual time, value) observation.
type TimeSeriesPoint = stats.Point

// ---- configuration front-end ----

// ConfigSetup is a simulation assembled from JSON configs.
type ConfigSetup = config.Setup

// LoadConfig reads machines.json, service.json, graph.json, path.json, and
// client.json from dir (the paper's Table I inputs), plus the optional
// faults.json and control.json.
func LoadConfig(dir string) (*ConfigSetup, error) { return config.LoadDir(dir) }

// ---- prebuilt application models ----

// Application blueprints from the paper's evaluation.
var (
	// MemcachedModel is the paper's Listing 1 memcached.
	MemcachedModel = apps.Memcached
	// NginxModel is the NGINX webserver/proxy model.
	NginxModel = apps.Nginx
	// MongoDBModel is the multi-threaded, disk-blocking MongoDB model.
	MongoDBModel = apps.MongoDB
	// ThriftServerModel is an Apache Thrift RPC server model.
	ThriftServerModel = apps.ThriftServer
	// DefaultNetwork is the calibrated interrupt-processing model.
	DefaultNetwork = apps.DefaultNetwork
)

// ---- prebuilt experiment scenarios ----

// Scenario configurations (see the apps package for field semantics).
type (
	TwoTierConfig       = apps.TwoTierConfig
	ThreeTierConfig     = apps.ThreeTierConfig
	ScaleOutConfig      = apps.ScaleOutConfig
	ThriftHelloConfig   = apps.ThriftHelloConfig
	SocialNetworkConfig = apps.SocialNetworkConfig
	TailAtScaleConfig   = apps.TailAtScaleConfig
)

// CachedTwoTierConfig parameterizes the emergent-cache scenario, where the
// cache-hit probability is derived from a real LRU over Zipf-popular keys
// instead of being configured.
type CachedTwoTierConfig = apps.CachedTwoTierConfig

// LRUCache is the live cache of a CachedTwoTier scenario.
type LRUCache = cache.LRU

// CachedTwoTier assembles the emergent-cache two-tier scenario; read the
// returned cache's HitRatio after the run.
func CachedTwoTier(cfg CachedTwoTierConfig) (*Sim, *LRUCache, error) {
	return apps.CachedTwoTier(cfg)
}

// Scenario builders for the paper's experiments.
func TwoTier(cfg TwoTierConfig) (*Sim, error)             { return apps.TwoTier(cfg) }
func ThreeTier(cfg ThreeTierConfig) (*Sim, error)         { return apps.ThreeTier(cfg) }
func LoadBalanced(cfg ScaleOutConfig) (*Sim, error)       { return apps.LoadBalanced(cfg) }
func Fanout(cfg ScaleOutConfig) (*Sim, error)             { return apps.Fanout(cfg) }
func ThriftHello(cfg ThriftHelloConfig) (*Sim, error)     { return apps.ThriftHello(cfg) }
func SocialNetwork(cfg SocialNetworkConfig) (*Sim, error) { return apps.SocialNetwork(cfg) }
func TailAtScale(cfg TailAtScaleConfig) (*Sim, error)     { return apps.TailAtScale(cfg) }

// ---- fault injection & resilience ----

// FaultPlan is a deterministic schedule of fault events; install with
// Sim.InstallFaults after deployments and topology exist.
type FaultPlan = fault.Plan

// FaultEvent is one scheduled fault action.
type FaultEvent = fault.Event

// Fault kinds.
const (
	CrashMachine    = fault.CrashMachine
	RecoverMachine  = fault.RecoverMachine
	KillInstance    = fault.KillInstance
	RestartInstance = fault.RestartInstance
	DegradeFreq     = fault.DegradeFreq
	EdgeLatency     = fault.EdgeLatency
	CrashDomain     = fault.CrashDomain
	RecoverDomain   = fault.RecoverDomain
	PartitionStart  = fault.PartitionStart
	SetLink         = fault.SetLink
)

// FailureDomain groups machines that fail together (a rack, a power
// feed); declare with Sim.SetDomains, then crash and recover the whole
// group with CrashDomain/RecoverDomain fault events. Sim.DomainUp reports
// the live fraction of a domain's machines.
type FailureDomain = netfault.Domain

// NetState carries a simulation's network-fault state and its
// attempt-level counters (Unreachable, LinkDrops, LinkDups); read it via
// Sim.Net. It satisfies the monitor's NetSource, so
// Monitor.WatchNet(name, s.Net()) records the counters as time series.
type NetState = netfault.State

// ResiliencePolicy guards RPC edges with attempt timeouts, backoff retries,
// and circuit breaking; install with Sim.SetServicePolicy or
// Sim.SetNodePolicy. Queue-length load shedding is Sim.SetMaxQueue.
type ResiliencePolicy = fault.Policy

// BreakerSpec configures a ResiliencePolicy's circuit breaker.
type BreakerSpec = fault.BreakerSpec

// HedgeSpec configures a ResiliencePolicy's hedged (backup) requests:
// after a fixed delay or an observed latency quantile, a second attempt
// races on a different healthy instance and the first response wins.
type HedgeSpec = fault.HedgeSpec

// QueueDiscipline selects a service's per-instance entry-queue overload
// behavior beyond plain FIFO; install with Sim.SetQueueDiscipline.
type QueueDiscipline = fault.QueueDiscipline

// Queue discipline kinds.
const (
	QueueFIFO      = fault.QueueFIFO
	QueueCoDel     = fault.QueueCoDel
	QueueLIFO      = fault.QueueLIFO
	QueueCoDelLIFO = fault.QueueCoDelLIFO
)

// ErrorCounts breaks down failed call attempts per target service (see
// Report.Errors).
type ErrorCounts = sim.ErrorCounts

// ---- monitoring ----

// Monitor samples per-instance queue lengths, in-flight counts, and core
// utilization on a virtual-time cadence.
type Monitor = monitor.Monitor

// MonitorSeries holds one watched instance's sampled time series.
type MonitorSeries = monitor.Series

// NewMonitor creates a monitor on the simulation's engine sampling every
// interval of virtual time. Watch instances (e.g. from
// Sim.Deployment(name).Instances) before Run, then Start it.
func NewMonitor(s *Sim, interval Time) *Monitor {
	return monitor.New(s.Engine(), interval)
}

// ---- request tracing ----

// Tracer samples requests and reconstructs per-request execution
// waterfalls (which tier on the critical path was slow).
type Tracer = trace.Tracer

// TraceRequest is one traced request with its spans.
type TraceRequest = trace.Request

// TraceSpan is one path-node execution within a traced request.
type TraceSpan = trace.Span

// NewTracer creates a tracer recording one of every sampleEvery requests.
func NewTracer(sampleEvery int) *Tracer { return trace.New(sampleEvery) }

// AttachTracer wires a tracer into a simulation's job/request hooks.
// Attach before Run; it replaces any previously installed hooks.
func AttachTracer(s *Sim, t *Tracer) {
	s.OnJobDone = t.OnJobDone
	s.OnRequestDone = t.OnRequestDone
}

// ---- self-healing control plane ----

// ControlPlane closes the detect→decide→act loop inside the simulation:
// heartbeat failure detection, outlier ejection, failover, and reactive
// autoscaling, all as ordinary simulation events.
type ControlPlane = control.Plane

// ControlConfig selects and parameterizes the control loops.
type ControlConfig = control.Config

// DetectorConfig parameterizes phi-accrual heartbeat failure detection.
type DetectorConfig = control.DetectorConfig

// EjectionConfig parameterizes per-instance outlier ejection.
type EjectionConfig = control.EjectionConfig

// FailoverConfig parameterizes replacement of detected-dead instances.
type FailoverConfig = control.FailoverConfig

// RegionFailoverConfig parameterizes region-loss failover: when every
// tracked instance in a region is declared dead, the plane waits out a
// drain grace and then promotes the nearest healthy replica region of
// each geo-replicated deployment. Requires a Detector and a Geography.
type RegionFailoverConfig = control.RegionFailoverConfig

// AutoscaleConfig parameterizes one service's reactive autoscaler.
type AutoscaleConfig = control.AutoscaleConfig

// ControlStats counts every action a control plane took.
type ControlStats = control.Stats

// AttachControl wires a control plane into a simulation before Run. With
// ejection configured, also set s.OnCallResult = plane.ObserveCall (or use
// WireEjection). Call plane.Stop() after Run to quiesce the control loops.
func AttachControl(s *Sim, cfg ControlConfig) (*ControlPlane, error) {
	return control.Attach(s, cfg)
}

// WireEjection points the simulation's call-result hook at the plane's
// ejection observer, replacing any previously installed hook.
func WireEjection(s *Sim, p *ControlPlane) { s.OnCallResult = p.ObserveCall }

// ---- power management ----

// PowerManager runs the paper's Algorithm 1 QoS-aware DVFS controller.
type PowerManager = power.Manager

// PowerConfig parameterizes the controller.
type PowerConfig = power.Config

// PowerTier is one controllable tier.
type PowerTier = power.Tier

// NewPowerManager creates a controller; wire mgr.Observe to
// Sim.OnRequestDone and call mgr.Start before Run.
func NewPowerManager(s *Sim, cfg PowerConfig, tiers []*PowerTier) (*PowerManager, error) {
	return power.New(s.Engine(), cfg, tiers)
}

// TiersOf builds PowerTiers from named deployments of s.
func TiersOf(s *Sim, names ...string) ([]*PowerTier, error) {
	var tiers []*PowerTier
	for _, name := range names {
		dep, ok := s.Deployment(name)
		if !ok {
			return nil, &UnknownDeploymentError{Name: name}
		}
		tier := &PowerTier{Name: name}
		for _, in := range dep.Instances {
			tier.Allocs = append(tier.Allocs, in.Alloc)
		}
		tiers = append(tiers, tier)
	}
	return tiers, nil
}

// UnknownDeploymentError reports a TiersOf lookup failure.
type UnknownDeploymentError struct{ Name string }

func (e *UnknownDeploymentError) Error() string {
	return "uqsim: unknown deployment " + e.Name
}

// ---- chaos search ----

// ChaosOptions parameterizes a seeded fault-schedule search over a
// config directory: trial count, master seed, corpus destination, and
// the recovery/determinism invariant thresholds.
type ChaosOptions = chaos.Options

// ChaosResult summarizes a search: trials completed and the shrunken
// findings archived.
type ChaosResult = chaos.Result

// ChaosFinding is one invariant violation, delta-debugged to a minimal
// replayable fault schedule.
type ChaosFinding = chaos.Finding

// ChaosViolation identifies which invariant a scenario broke and how.
type ChaosViolation = chaos.Violation

// ChaosReplayResult is the outcome of re-running one archived finding
// against the recorded violation and fingerprint.
type ChaosReplayResult = chaos.ReplayResult

// RunChaos generates seeded random fault schedules against the config
// directory in opts, verifies each against the simulator's invariants
// (conservation, drain, cross-engine determinism, post-heal recovery),
// shrinks every violation to a minimal reproduction, and archives the
// repros as replayable corpus entries. The same engine backs
// cmd/uqsim-chaos.
func RunChaos(opts ChaosOptions) (*ChaosResult, error) { return chaos.Run(opts) }

// ReplayChaosFinding re-runs one corpus entry directory and reports
// whether the archived violation still reproduces bit-identically.
func ReplayChaosFinding(configDir, entryDir string) (*ChaosReplayResult, error) {
	return chaos.Replay(configDir, entryDir)
}

// ---- fault-tolerant experiment farm ----

// FarmCampaign describes one experiment campaign — a load sweep or a
// chaos search expanded into content-hashed, independently runnable job
// specs and journaled to a durable spool directory.
type FarmCampaign = farm.Campaign

// FarmJobSpec is one unit of farm work: a single sweep point or chaos
// trial, content-addressed so retries and duplicate completions are safe.
type FarmJobSpec = farm.JobSpec

// FarmOptions configures a dispatcher run: worker pool size, lease TTL,
// per-job watchdog, poison-quarantine threshold, resume.
type FarmOptions = farm.Options

// FarmSummary is the accounting of one dispatcher run (commits, requeues,
// quarantines, respawns).
type FarmSummary = farm.Summary

// FarmMerged is a campaign's results reassembled in campaign order —
// byte-identical to a serial run at any worker count.
type FarmMerged = farm.Merged

// FarmAuditReport is the exactly-once accounting of a spool journal.
type FarmAuditReport = farm.AuditReport

// NewFarmSweepCampaign builds a load-sweep campaign over configDir,
// pinning the exact configuration bytes into every job spec.
func NewFarmSweepCampaign(configDir string, from, to, step float64) (*FarmCampaign, error) {
	return farm.NewSweepCampaign(configDir, from, to, step)
}

// NewFarmChaosCampaign builds a chaos-search campaign over configDir.
func NewFarmChaosCampaign(configDir string, seed uint64, trials, maxActions int) (*FarmCampaign, error) {
	return farm.NewChaosCampaign(configDir, seed, trials, maxActions)
}

// RunFarm executes a campaign across a pool of crash-recovering worker
// subprocesses behind a lease-based queue: leases expire back to the
// queue, hung workers are killed by the per-job watchdog, crashed workers
// respawn with backoff, poison jobs are quarantined after repeated
// failures, and results commit idempotently. The same engine backs
// cmd/uqsim-farm.
func RunFarm(o FarmOptions, c *FarmCampaign) (*FarmSummary, error) { return farm.Run(o, c) }

// MergeFarm replays a spool journal into campaign-order results.
func MergeFarm(spoolDir string) (*FarmMerged, error) { return farm.Merge(spoolDir) }

// AuditFarm checks a spool journal's exactly-once accounting: every job
// committed or quarantined at most once, no conflicting or orphaned
// journal entries.
func AuditFarm(spoolDir string) (*FarmAuditReport, error) { return farm.Audit(spoolDir) }

// ---- command-line plumbing ----

// Watchdog stops the currently running simulation when a termination
// signal arrives or a wall-clock budget runs out, so binaries flush
// partial results instead of dying mid-write.
type Watchdog = cli.Watchdog

// StartWatchdog installs the signal handler and, when maxWall > 0, arms
// the wall-clock limit. Call it before building any simulation.
func StartWatchdog(maxWall time.Duration) *Watchdog {
	return cli.StartWatchdog(maxWall)
}
