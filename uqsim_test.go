package uqsim

import (
	"testing"
)

func TestFacadeQuickstart(t *testing.T) {
	s := New(Options{Seed: 1})
	s.AddMachine("m0", 16, DefaultFreqSpec)
	if _, err := s.Deploy(SingleStageService("api", Exponential(100*Microsecond)),
		RoundRobin, Placement{Machine: "m0", Cores: 2}); err != nil {
		t.Fatal(err)
	}
	if err := s.SetTopology(LinearTopology("main", "api")); err != nil {
		t.Fatal(err)
	}
	s.SetClient(ClientConfig{Pattern: ConstantRate(5000)})
	rep, err := s.Run(Second/5, Second)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Completions == 0 || rep.Latency.P99() == 0 {
		t.Fatal("facade run produced no data")
	}
}

func TestFacadeScenarios(t *testing.T) {
	// Each scenario builder constructs without error through the facade.
	if _, err := TwoTier(TwoTierConfig{Seed: 1, QPS: 100}); err != nil {
		t.Fatal(err)
	}
	if _, err := ThreeTier(ThreeTierConfig{Seed: 1, QPS: 100}); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadBalanced(ScaleOutConfig{Seed: 1, QPS: 100, Servers: 4}); err != nil {
		t.Fatal(err)
	}
	if _, err := Fanout(ScaleOutConfig{Seed: 1, QPS: 100, Servers: 4}); err != nil {
		t.Fatal(err)
	}
	if _, err := ThriftHello(ThriftHelloConfig{Seed: 1, QPS: 100}); err != nil {
		t.Fatal(err)
	}
	if _, err := SocialNetwork(SocialNetworkConfig{Seed: 1, QPS: 100}); err != nil {
		t.Fatal(err)
	}
	if _, err := TailAtScale(TailAtScaleConfig{Seed: 1, QPS: 10, Servers: 10}); err != nil {
		t.Fatal(err)
	}
}

func TestFacadePowerManager(t *testing.T) {
	s, err := TwoTier(TwoTierConfig{Seed: 2, QPS: 5000, Network: true})
	if err != nil {
		t.Fatal(err)
	}
	tiers, err := TiersOf(s, "nginx", "memcached")
	if err != nil {
		t.Fatal(err)
	}
	mgr, err := NewPowerManager(s, PowerConfig{
		Target: 5 * Millisecond, Interval: 100 * Millisecond,
	}, tiers)
	if err != nil {
		t.Fatal(err)
	}
	s.OnRequestDone = mgr.Observe
	mgr.Start()
	if _, err := s.Run(0, 2*Second); err != nil {
		t.Fatal(err)
	}
	if mgr.Cycles() == 0 {
		t.Fatal("power manager never cycled")
	}
}

func TestFacadeTiersOfUnknown(t *testing.T) {
	s := New(Options{Seed: 3})
	if _, err := TiersOf(s, "ghost"); err == nil {
		t.Fatal("unknown deployment should fail")
	} else if err.Error() == "" {
		t.Fatal("error should describe the deployment")
	}
}

func TestFacadeLoadConfig(t *testing.T) {
	setup, err := LoadConfig("configs/twotier")
	if err != nil {
		t.Fatal(err)
	}
	if setup.Duration != Second {
		t.Fatalf("duration %v", setup.Duration)
	}
}

func TestFacadeDistributions(t *testing.T) {
	for _, s := range []Sampler{
		Deterministic(100),
		Exponential(100 * Microsecond),
		Erlang(4, 100*Microsecond),
		LogNormal(100*Microsecond, 50*Microsecond),
	} {
		if s.Mean() <= 0 {
			t.Fatal("sampler mean should be positive")
		}
	}
}

func TestFacadeModels(t *testing.T) {
	for _, bp := range []*Blueprint{
		MemcachedModel(), NginxModel(), MongoDBModel(0.3, 8), ThriftServerModel("t", 10),
	} {
		if err := bp.Validate(); err != nil {
			t.Fatal(err)
		}
	}
	if DefaultNetwork().CoresPerMachine < 1 {
		t.Fatal("default network")
	}
}

func TestFacadeMonitor(t *testing.T) {
	s, err := TwoTier(TwoTierConfig{Seed: 5, QPS: 2000, Network: true})
	if err != nil {
		t.Fatal(err)
	}
	mon := NewMonitor(s, 50*Millisecond)
	dep, _ := s.Deployment("nginx")
	series := mon.Watch("nginx-0", dep.Instances[0])
	mon.Start()
	if _, err := s.Run(0, Second); err != nil {
		t.Fatal(err)
	}
	if mon.Samples() < 15 || series.Util.Len() != mon.Samples() {
		t.Fatalf("samples=%d utilPoints=%d", mon.Samples(), series.Util.Len())
	}
}

func TestFacadeCachedTwoTier(t *testing.T) {
	s, lru, err := CachedTwoTier(CachedTwoTierConfig{Seed: 5, QPS: 500})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run(0, Second); err != nil {
		t.Fatal(err)
	}
	if lru.Hits()+lru.Misses() == 0 {
		t.Fatal("cache never consulted")
	}
}

func TestFacadeTimeouts(t *testing.T) {
	s, err := ThriftHello(ThriftHelloConfig{Seed: 5, QPS: 80000, Network: true})
	if err != nil {
		t.Fatal(err)
	}
	cc := s.Client()
	cc.Timeout = 5 * Millisecond
	s.SetClient(cc)
	rep, err := s.Run(200*Millisecond, Second)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Timeouts == 0 {
		t.Fatal("80k >> 57k capacity should trip timeouts")
	}
}
