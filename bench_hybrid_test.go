package uqsim

// Hybrid-fidelity speedup benchmark: how many simulated user-seconds per
// wall-clock second the engine sustains at full fidelity versus a sampled
// foreground over a fluid background. `make bench-hybrid` records the
// result in BENCH_hybrid.json; the speedup_x metric is the committed
// trajectory point for the "million-user workloads" claim.

import (
	"testing"
	"time"
)

// hybridBenchSim assembles a session population over one exponential
// service sized for rho ≈ 0.6 at 4 cores per 242 users.
func hybridBenchSim(b *testing.B, users, cores int, hc *HybridConfig) *Sim {
	b.Helper()
	s := New(Options{Seed: 42})
	s.AddMachine("m0", cores, DefaultFreqSpec)
	if _, err := s.Deploy(SingleStageService("front", Exponential(10*Millisecond)),
		RoundRobin, Placement{Machine: "m0", Cores: cores}); err != nil {
		b.Fatal(err)
	}
	if err := s.SetTopology(LinearTopology("main", "front")); err != nil {
		b.Fatal(err)
	}
	s.SetClient(ClientConfig{Sessions: &SessionConfig{
		Users: users,
		Journeys: []Journey{{Name: "browse", Weight: 1, Steps: []SessionStep{
			{Tree: 0, Think: Exponential(Second)},
			{Tree: 0, Think: Exponential(Second)},
		}}},
	}})
	if hc != nil {
		s.SetHybrid(*hc)
	}
	return s
}

func BenchmarkHybridFidelity(b *testing.B) {
	const (
		baseUsers = 242
		baseCores = 4
		bigUsers  = 100_000
	)
	grow := bigUsers / baseUsers
	for i := 0; i < b.N; i++ {
		full := hybridBenchSim(b, baseUsers, baseCores, nil)
		start := time.Now()
		if _, err := full.Run(Second, 5*Second); err != nil {
			b.Fatal(err)
		}
		fullWall := time.Since(start)

		sampled := hybridBenchSim(b, bigUsers, baseCores*grow,
			&HybridConfig{SampleRate: float64(baseUsers) / bigUsers})
		start = time.Now()
		rep, err := sampled.Run(Second, 5*Second)
		if err != nil {
			b.Fatal(err)
		}
		hybWall := time.Since(start)
		if rep.BackgroundArrivals != rep.BackgroundCompletions+rep.BackgroundShed {
			b.Fatalf("background conservation: %d != %d + %d",
				rep.BackgroundArrivals, rep.BackgroundCompletions, rep.BackgroundShed)
		}

		fullRate := baseUsers / fullWall.Seconds()
		hybRate := bigUsers / hybWall.Seconds()
		b.ReportMetric(fullRate, "full_users_s/op")
		b.ReportMetric(hybRate, "hybrid_users_s/op")
		b.ReportMetric(hybRate/fullRate, "speedup_x")
	}
}
