package uqsim_test

import (
	"fmt"

	"uqsim"
)

// Example builds a minimal M/M/2 service and measures its latency — the
// smallest complete µqSim program.
func Example() {
	s := uqsim.New(uqsim.Options{Seed: 1})
	s.AddMachine("m0", 8, uqsim.DefaultFreqSpec)
	if _, err := s.Deploy(
		uqsim.SingleStageService("api", uqsim.Exponential(100*uqsim.Microsecond)),
		uqsim.RoundRobin,
		uqsim.Placement{Machine: "m0", Cores: 2},
	); err != nil {
		panic(err)
	}
	if err := s.SetTopology(uqsim.LinearTopology("main", "api")); err != nil {
		panic(err)
	}
	s.SetClient(uqsim.ClientConfig{Pattern: uqsim.ConstantRate(5000)})
	rep, err := s.Run(uqsim.Second/5, uqsim.Second)
	if err != nil {
		panic(err)
	}
	fmt.Println(rep.Completions > 4000, rep.Latency.P99() > 0)
	// Output: true true
}

// ExampleTwoTier runs the paper's two-tier NGINX→memcached application at a
// fixed load.
func ExampleTwoTier() {
	s, err := uqsim.TwoTier(uqsim.TwoTierConfig{
		Seed: 1, QPS: 20000, NginxCores: 8, MemcachedThreads: 4, Network: true,
	})
	if err != nil {
		panic(err)
	}
	rep, err := s.Run(200*uqsim.Millisecond, uqsim.Second)
	if err != nil {
		panic(err)
	}
	// Well below the ~70k saturation point: goodput tracks offered load
	// and the p99 stays sub-millisecond.
	fmt.Println(rep.GoodputQPS > 19000, rep.Latency.P99() < uqsim.Millisecond)
	// Output: true true
}

// ExampleNewTracer shows per-request waterfall tracing.
func ExampleNewTracer() {
	s, err := uqsim.TwoTier(uqsim.TwoTierConfig{Seed: 1, QPS: 1000, Network: true})
	if err != nil {
		panic(err)
	}
	tr := uqsim.NewTracer(1)
	uqsim.AttachTracer(s, tr)
	if _, err := s.Run(0, 100*uqsim.Millisecond); err != nil {
		panic(err)
	}
	slowest := tr.Slowest(1)[0]
	crit, _ := slowest.CriticalSpan()
	// The NGINX tier dominates two-tier request latency.
	fmt.Println(crit.Service)
	// Output: nginx
}

// ExampleNewPowerManager wires the paper's Algorithm 1 DVFS controller
// onto the two-tier application.
func ExampleNewPowerManager() {
	s, err := uqsim.TwoTier(uqsim.TwoTierConfig{Seed: 1, QPS: 5000, Network: true})
	if err != nil {
		panic(err)
	}
	tiers, err := uqsim.TiersOf(s, "nginx", "memcached")
	if err != nil {
		panic(err)
	}
	mgr, err := uqsim.NewPowerManager(s, uqsim.PowerConfig{
		Target:   5 * uqsim.Millisecond,
		Interval: 100 * uqsim.Millisecond,
	}, tiers)
	if err != nil {
		panic(err)
	}
	s.OnRequestDone = mgr.Observe
	mgr.Start()
	if _, err := s.Run(0, 5*uqsim.Second); err != nil {
		panic(err)
	}
	// Light load: the controller saves energy while meeting QoS.
	fmt.Println(mgr.MeanFrequency() < 2600, mgr.NormalizedEnergy() < 1.0)
	// Output: true true
}
