// Command uqsim-trace runs a configured simulation with request tracing
// enabled and prints the waterfalls of the slowest sampled requests — the
// microservices-debugging workflow the paper motivates (which tier on the
// critical path caused the tail?).
//
// Usage:
//
//	uqsim-trace -config configs/threetier -slowest 5 -sample 4
//
// Exit codes: 0 completed, 1 interrupted or failed (an interrupted run
// still reports the traces collected so far), 2 usage.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"uqsim/internal/cli"
	"uqsim/internal/config"
	"uqsim/internal/des"
	"uqsim/internal/trace"
	"uqsim/internal/workload"
)

func main() {
	cfgDir := flag.String("config", "", "directory with machines/service/graph/path/client.json")
	slowest := flag.Int("slowest", 3, "how many slowest requests to print")
	sample := flag.Int("sample", 1, "trace one of every N requests")
	qps := flag.Float64("qps", 0, "override the client's constant offered load (QPS)")
	duration := flag.Duration("duration", 0, "override the configured virtual measurement window")
	maxWall := flag.Duration("max-wall", 0, "stop after this much wall-clock time, print traces collected so far, exit nonzero")
	flag.Parse()

	if *cfgDir == "" {
		fmt.Fprintln(os.Stderr, "uqsim-trace: -config is required")
		flag.Usage()
		os.Exit(cli.ExitUsage)
	}
	os.Exit(run(*cfgDir, *slowest, *sample, *qps, *duration, *maxWall))
}

func run(cfgDir string, slowest, sample int, qps float64, duration, maxWall time.Duration) int {
	wd := cli.StartWatchdog(maxWall)
	setup, err := config.LoadDir(cfgDir)
	if err != nil {
		fmt.Fprintln(os.Stderr, "uqsim-trace:", err)
		return cli.ExitPartial
	}
	if qps > 0 {
		cc := setup.Sim.Client()
		cc.Pattern = workload.ConstantRate(qps)
		cc.ClosedUsers = 0
		setup.Sim.SetClient(cc)
	}
	if duration > 0 {
		setup.Duration = des.Time(duration)
	}
	tr := trace.New(sample)
	tr.MaxTraces = 65536
	setup.Sim.OnJobDone = tr.OnJobDone
	setup.Sim.OnRequestDone = tr.OnRequestDone

	rep, err := setup.Run()
	if err != nil {
		fmt.Fprintln(os.Stderr, "uqsim-trace:", err)
		return cli.ExitPartial
	}
	fmt.Printf("completions=%d p50=%v p99=%v traced=%d\n\n",
		rep.Completions, rep.Latency.P50(), rep.Latency.P99(), len(tr.Traces()))

	fmt.Printf("--- %d slowest traced requests ---\n", slowest)
	counts := map[string]int{}
	for _, r := range tr.Traces() {
		if crit, ok := r.CriticalSpan(); ok {
			counts[crit.Service]++
		}
	}
	for _, r := range tr.Slowest(slowest) {
		fmt.Println(r.Waterfall())
		if crit, ok := r.CriticalSpan(); ok {
			fmt.Printf("  → critical tier: %s (%v of %v)\n\n",
				crit.Service, crit.Residence(), r.Latency())
		}
	}
	fmt.Println("critical-tier frequency across all traces:")
	for svc, n := range counts {
		fmt.Printf("  %-14s %d\n", svc, n)
	}
	if wd.Interrupted() {
		fmt.Fprintf(os.Stderr, "uqsim-trace: PARTIAL: interrupted (%s); traces above cover the truncated run\n", wd.Reason())
		return cli.ExitPartial
	}
	return cli.ExitOK
}
