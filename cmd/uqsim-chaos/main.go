// Command uqsim-chaos explores randomized fault schedules against a
// config directory, checks every run against the simulator's invariants
// (conservation, drain, determinism, and post-heal recovery), and shrinks
// each violation to a minimal replayable repro in the corpus directory.
//
// Usage:
//
//	uqsim-chaos -config configs/metastable -trials 50
//	uqsim-chaos -config configs/metastable -seed 7 -corpus corpus/
//	uqsim-chaos -config configs/metastable -max-wall 2m
//	uqsim-chaos -config configs/metastable -fidelity hybrid -sample-rate 0.2
//	uqsim-chaos -replay configs/metastable/corpus/trial0000-recovery-goodput -config configs/metastable
//
// SIGINT/SIGTERM and the -max-wall watchdog stop the current simulation
// cleanly: findings already shrunk are kept (the corpus flush is atomic,
// meta.json last, so no half-written entry is ever picked up) and the
// process exits nonzero to mark the search partial.
//
// Exit codes: 0 completed with no findings, 1 interrupted or failed
// (corpus entries written are complete; interruption wins over findings),
// 2 usage, 3 completed with findings or a replay mismatch.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"uqsim/internal/chaos"
	"uqsim/internal/cli"
)

func main() {
	configDir := flag.String("config", "", "config directory to explore (required)")
	trials := flag.Int("trials", 50, "number of random scenarios to try")
	seed := flag.Uint64("seed", 1, "master seed for scenario generation")
	corpus := flag.String("corpus", "", "directory for replayable repro artifacts (default <config>/corpus)")
	maxWall := flag.Duration("max-wall", 0, "stop after this much wall-clock time, keep partial corpus, exit nonzero")
	maxActions := flag.Int("max-actions", 0, "max fault actions per scenario (default 6)")
	replay := flag.String("replay", "", "replay one corpus entry directory instead of searching")
	fidelity := flag.String("fidelity", "", `fidelity scenarios run at: "full" or "hybrid" (hybrid also checks the cross-fidelity invariant)`)
	sampleRate := flag.Float64("sample-rate", 0, "hybrid foreground sample rate override (requires -fidelity hybrid or a hybrid config)")
	quiet := flag.Bool("q", false, "suppress per-trial progress")
	flag.Parse()

	if *configDir == "" {
		fmt.Fprintln(os.Stderr, "uqsim-chaos: -config is required")
		os.Exit(cli.ExitUsage)
	}
	wd := cli.StartWatchdog(*maxWall)

	if *replay != "" {
		runReplay(*configDir, *replay, *fidelity, *sampleRate)
		return
	}

	if *corpus == "" {
		*corpus = *configDir + "/corpus"
	}
	logf := func(format string, args ...any) {
		fmt.Printf(format+"\n", args...)
	}
	if *quiet {
		logf = nil
	}
	start := time.Now()
	res, err := chaos.Run(chaos.Options{
		ConfigDir:   *configDir,
		Seed:        *seed,
		Trials:      *trials,
		CorpusDir:   *corpus,
		MaxActions:  *maxActions,
		Fidelity:    *fidelity,
		SampleRate:  *sampleRate,
		Interrupted: wd.Interrupted,
		Logf:        logf,
	})
	if err != nil {
		if wd.Interrupted() {
			fmt.Fprintf(os.Stderr, "uqsim-chaos: interrupted (%s)\n", wd.Reason())
			os.Exit(cli.ExitPartial)
		}
		fmt.Fprintln(os.Stderr, "uqsim-chaos:", err)
		os.Exit(cli.ExitPartial)
	}

	fmt.Printf("\n%d/%d trials, %d finding(s) in %v\n",
		res.Trials, *trials, len(res.Findings), time.Since(start).Round(time.Millisecond))
	for _, f := range res.Findings {
		fmt.Printf("  trial %4d  %-17s %2d events (from %d)  %s\n",
			f.Trial, f.Violation, f.Events, f.EventsBefore, f.Dir)
	}
	if res.Interrupted {
		fmt.Fprintf(os.Stderr, "uqsim-chaos: PARTIAL: interrupted (%s) after %d trials; corpus entries written so far are complete\n",
			wd.Reason(), res.Trials)
		os.Exit(cli.ExitPartial)
	}
	if len(res.Findings) > 0 {
		os.Exit(cli.ExitFindings) // distinct from interruption: the search itself succeeded
	}
}

// runReplay re-runs one corpus entry and reports whether it still
// reproduces the recorded finding bit-for-bit.
func runReplay(configDir, entry, fidelity string, sampleRate float64) {
	res, err := chaos.ReplayWith(configDir, entry, fidelity, sampleRate)
	if err != nil {
		fmt.Fprintln(os.Stderr, "uqsim-chaos:", err)
		os.Exit(cli.ExitPartial)
	}
	fmt.Printf("recorded: %s (%s)\n", res.Meta.Violation, res.Meta.Detail)
	if res.Violation == nil {
		fmt.Println("replayed: no violation")
	} else {
		fmt.Printf("replayed: %s (%s)\n", res.Violation.ID, res.Violation.Detail)
	}
	if res.Matches() {
		fmt.Println("MATCH: violation and fingerprint reproduce exactly")
		return
	}
	if res.Fingerprint != res.Meta.Fingerprint {
		fmt.Printf("fingerprint diverged:\n  recorded: %s\n  replayed: %s\n",
			res.Meta.Fingerprint, res.Fingerprint)
	}
	fmt.Println("MISMATCH: the archived finding no longer reproduces")
	os.Exit(cli.ExitFindings)
}
