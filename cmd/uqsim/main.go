// Command uqsim runs one simulation described by a directory of JSON
// configuration files (the paper's Table I inputs: machines.json,
// service.json, graph.json, path.json, client.json) and prints throughput
// and latency reports.
//
// Usage:
//
//	uqsim -config configs/twotier [-qps 30000] [-duration 2s] [-csv] [-faults faults.json] [-max-wall 30s]
//
// SIGINT/SIGTERM and the -max-wall watchdog stop the simulation cleanly:
// the partial report up to the stopped virtual clock is still printed and
// the process exits nonzero.
//
// Exit codes: 0 completed, 1 interrupted or failed (report printed is
// partial), 2 usage.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"uqsim/internal/cli"
	"uqsim/internal/config"
	"uqsim/internal/des"
	"uqsim/internal/experiments"
	"uqsim/internal/workload"
)

func main() {
	cfgDir := flag.String("config", "", "directory with machines/service/graph/path/client.json")
	qps := flag.Float64("qps", 0, "override the client's constant offered load (QPS)")
	duration := flag.Duration("duration", 0, "override the measured window (virtual time)")
	warmup := flag.Duration("warmup", 0, "override the warmup window (virtual time)")
	csv := flag.Bool("csv", false, "emit CSV instead of aligned tables")
	faults := flag.String("faults", "", "faults.json with resilience policies and a fault plan (overrides <config>/faults.json)")
	maxWall := flag.Duration("max-wall", 0, "stop the run after this much wall-clock time, flush partial results, exit nonzero")
	fidelity := flag.String("fidelity", "", `override the engine fidelity: "full" or "hybrid"`)
	sampleRate := flag.Float64("sample-rate", 0, "hybrid foreground sample fraction in (0,1] (requires -fidelity hybrid or a hybrid config)")
	flag.Parse()

	if *cfgDir == "" {
		fmt.Fprintln(os.Stderr, "uqsim: -config is required")
		flag.Usage()
		os.Exit(cli.ExitUsage)
	}
	wd := cli.StartWatchdog(*maxWall)
	if err := run(*cfgDir, *faults, *qps, *warmup, *duration, *csv, *fidelity, *sampleRate); err != nil {
		fmt.Fprintln(os.Stderr, "uqsim:", err)
		os.Exit(cli.ExitPartial)
	}
	if wd.Interrupted() {
		fmt.Fprintf(os.Stderr, "uqsim: interrupted (%s); results above are partial\n", wd.Reason())
		os.Exit(cli.ExitPartial)
	}
}

func run(cfgDir, faultsPath string, qps float64, warmup, duration time.Duration, csv bool, fidelity string, sampleRate float64) error {
	var setup *config.Setup
	var err error
	if faultsPath != "" {
		setup, err = config.LoadDirWithFaults(cfgDir, faultsPath)
	} else {
		setup, err = config.LoadDir(cfgDir)
	}
	if err != nil {
		return err
	}
	if qps > 0 {
		cc := setup.Sim.Client()
		cc.Pattern = workload.ConstantRate(qps)
		cc.ClosedUsers = 0
		cc.Sessions = nil
		setup.Sim.SetClient(cc)
	}
	if err := experiments.ApplyFidelity(setup.Sim, fidelity, sampleRate); err != nil {
		return err
	}
	w, d := setup.Warmup, setup.Duration
	if warmup > 0 {
		w = des.FromDuration(warmup)
	}
	if duration > 0 {
		d = des.FromDuration(duration)
	}
	rep, err := setup.Sim.Run(w, d)
	if err != nil {
		return err
	}
	for _, t := range experiments.ReportTables(rep) {
		if csv {
			fmt.Print(t.CSV())
			fmt.Println()
		} else {
			fmt.Println(t.String())
		}
	}
	return nil
}
