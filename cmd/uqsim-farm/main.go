// Command uqsim-farm runs experiment campaigns — load sweeps and chaos
// searches — across a pool of crash-recovering worker subprocesses. Jobs
// are content-hashed, journaled to a durable spool, and dispatched over a
// lease-based queue, so worker crashes, hangs, and operator interrupts
// never lose or double-count a trial; an interrupted campaign finishes
// with -resume, and the merged output is byte-identical to a serial run
// at any worker count.
//
// Usage:
//
//	uqsim-farm -config configs/twotier -from 5000 -to 80000 -step 5000 -workers 8 -spool spool/
//	uqsim-farm -config configs/metastable -kind chaos -trials 200 -seed 1 -workers 8 -spool spool/
//	uqsim-farm -spool spool/ -resume -config configs/twotier -from 5000 -to 80000 -step 5000
//	uqsim-farm -spool spool/ -audit
//	uqsim-farm -config configs/twotier -replay spool/quarantine/<hash>.json
//
// Exit codes: 0 completed, 1 interrupted or failed (spool resumes the
// campaign), 2 usage, 3 completed with findings (chaos violations or
// quarantined poison jobs).
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"uqsim/internal/cli"
	"uqsim/internal/farm"
)

func main() {
	cfgDir := flag.String("config", "", "directory with machines/service/graph/path/client.json")
	kind := flag.String("kind", "sweep", "campaign kind: sweep or chaos")
	from := flag.Float64("from", 5000, "sweep: first offered load (QPS)")
	to := flag.Float64("to", 50000, "sweep: last offered load (QPS)")
	step := flag.Float64("step", 5000, "sweep: load increment (QPS)")
	trials := flag.Int("trials", 50, "chaos: number of trials")
	seed := flag.Uint64("seed", 1, "chaos: master seed")
	maxActions := flag.Int("max-actions", 0, "chaos: max fault actions per scenario (0 = default)")
	workers := flag.Int("workers", 4, "worker subprocess pool size")
	spool := flag.String("spool", "", "durable spool directory journaling the campaign (required)")
	out := flag.String("out", "", "merged CSV path (default <spool>/merged.csv)")
	corpus := flag.String("corpus", "", "chaos: merged corpus directory (default <spool>/corpus)")
	resume := flag.Bool("resume", false, "finish the campaign already journaled in -spool")
	lease := flag.Duration("lease", 10*time.Second, "lease TTL: requeue a job whose worker goes silent this long")
	jobTimeout := flag.Duration("job-timeout", 5*time.Minute, "per-job wall-clock watchdog: kill workers that run one job longer than this")
	maxFailures := flag.Int("max-failures", 3, "quarantine a job after this many consecutive failed attempts")
	killWorkers := flag.Int("kill-workers", 0, "chaos monkey: SIGKILL this many workers mid-run (self-test)")
	maxWall := flag.Duration("max-wall", 0, "stop the campaign after this much wall-clock time, keep the spool, exit nonzero")
	audit := flag.Bool("audit", false, "audit the spool journal (exactly-once accounting) and exit")
	replay := flag.String("replay", "", "re-run one journaled job (a spool results/ or quarantine/ JSON file) in-process")
	worker := flag.Bool("worker", false, "run as a worker subprocess (internal; spawned by the dispatcher)")
	heartbeat := flag.Duration("heartbeat", 0, "worker heartbeat interval (internal; set by the dispatcher)")
	quiet := flag.Bool("q", false, "suppress per-job progress")
	flag.Parse()

	switch {
	case *worker:
		os.Exit(runWorker(*cfgDir, *heartbeat))
	case *audit:
		os.Exit(runAudit(*spool))
	case *replay != "":
		os.Exit(runReplay(*cfgDir, *replay))
	default:
		os.Exit(runCampaign(campaignFlags{
			cfgDir: *cfgDir, kind: *kind,
			from: *from, to: *to, step: *step,
			trials: *trials, seed: *seed, maxActions: *maxActions,
			workers: *workers, spool: *spool, out: *out, corpus: *corpus,
			resume: *resume, lease: *lease, jobTimeout: *jobTimeout,
			maxFailures: *maxFailures, killWorkers: *killWorkers,
			maxWall: *maxWall, quiet: *quiet,
		}))
	}
}

func runWorker(cfgDir string, heartbeat time.Duration) int {
	if cfgDir == "" {
		fmt.Fprintln(os.Stderr, "uqsim-farm: -worker needs -config")
		return cli.ExitUsage
	}
	if heartbeat <= 0 {
		heartbeat = time.Second
	}
	if err := farm.WorkerMain(cfgDir, heartbeat, os.Stdin, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "uqsim-farm:", err)
		return cli.ExitPartial
	}
	return cli.ExitOK
}

func runAudit(spool string) int {
	if spool == "" {
		fmt.Fprintln(os.Stderr, "uqsim-farm: -audit needs -spool")
		return cli.ExitUsage
	}
	rep, err := farm.Audit(spool)
	if err != nil {
		fmt.Fprintln(os.Stderr, "uqsim-farm:", err)
		return cli.ExitPartial
	}
	fmt.Println(rep)
	switch {
	// Conflicting or orphaned journal entries break the exactly-once
	// invariant: that is a finding. Jobs that are merely missing make the
	// campaign incomplete — finishable, not broken.
	case len(rep.Conflicts) > 0 || len(rep.Orphans) > 0:
		return cli.ExitFindings
	case !rep.Complete():
		fmt.Println("campaign incomplete; finish it with -resume")
		return cli.ExitPartial
	}
	return cli.ExitOK
}

func runReplay(cfgDir, path string) int {
	if cfgDir == "" {
		fmt.Fprintln(os.Stderr, "uqsim-farm: -replay needs -config")
		return cli.ExitUsage
	}
	data, err := os.ReadFile(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "uqsim-farm:", err)
		return cli.ExitPartial
	}
	// The file is either a committed result or a quarantine entry; both
	// embed the job spec.
	var spec farm.JobSpec
	if q, err := farm.DecodeQuarantine(data); err == nil {
		spec = q.Job
		fmt.Printf("replaying quarantined job %s (%d recorded failures)\n", spec.Key(), len(q.Failures))
		for _, f := range q.Failures {
			fmt.Printf("  attempt %d: %s\n", f.Attempt, f.Reason)
		}
	} else if r, err := farm.DecodeResult(data); err == nil {
		spec = r.Job
		fmt.Printf("replaying committed job %s\n", spec.Key())
	} else {
		fmt.Fprintf(os.Stderr, "uqsim-farm: %s is neither a result nor a quarantine entry\n", path)
		return cli.ExitPartial
	}
	exec, err := farm.NewExecutor(cfgDir)
	if err != nil {
		fmt.Fprintln(os.Stderr, "uqsim-farm:", err)
		return cli.ExitPartial
	}
	res, err := exec.Execute(spec)
	if err != nil {
		fmt.Fprintln(os.Stderr, "uqsim-farm: replay failed:", err)
		return cli.ExitPartial
	}
	switch {
	case res.Row != nil:
		fmt.Printf("row: %v\n", res.Row)
	case res.Chaos != nil && res.Chaos.Violation != "":
		fmt.Printf("violation: %s (%s)\n", res.Chaos.Violation, res.Chaos.Detail)
		return cli.ExitFindings
	case res.Chaos != nil:
		fmt.Printf("ok: %d events, no violation\n", res.Chaos.Events)
	}
	return cli.ExitOK
}

type campaignFlags struct {
	cfgDir, kind             string
	from, to, step           float64
	trials                   int
	seed                     uint64
	maxActions, workers      int
	spool, out, corpus       string
	resume                   bool
	lease, jobTimeout        time.Duration
	maxFailures, killWorkers int
	maxWall                  time.Duration
	quiet                    bool
}

func runCampaign(f campaignFlags) int {
	if f.cfgDir == "" || f.spool == "" {
		fmt.Fprintln(os.Stderr, "uqsim-farm: -config and -spool are required")
		flag.Usage()
		return cli.ExitUsage
	}
	var c *farm.Campaign
	var err error
	switch f.kind {
	case farm.KindSweep:
		c, err = farm.NewSweepCampaign(f.cfgDir, f.from, f.to, f.step)
	case farm.KindChaos:
		c, err = farm.NewChaosCampaign(f.cfgDir, f.seed, f.trials, f.maxActions)
	default:
		fmt.Fprintf(os.Stderr, "uqsim-farm: unknown -kind %q (sweep or chaos)\n", f.kind)
		return cli.ExitUsage
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "uqsim-farm:", err)
		return cli.ExitUsage
	}

	self, err := os.Executable()
	if err != nil {
		fmt.Fprintln(os.Stderr, "uqsim-farm:", err)
		return cli.ExitPartial
	}
	wd := cli.StartWatchdog(f.maxWall)
	logf := func(format string, args ...any) { fmt.Printf(format+"\n", args...) }
	if f.quiet {
		logf = nil
	}
	start := time.Now()
	sum, err := farm.Run(farm.Options{
		Spool:       f.spool,
		Workers:     f.workers,
		WorkerArgv:  []string{self, "-worker", "-config", f.cfgDir, "-heartbeat", (f.lease / 5).String()},
		LeaseTTL:    f.lease,
		JobTimeout:  f.jobTimeout,
		MaxFailures: f.maxFailures,
		Resume:      f.resume,
		KillWorkers: f.killWorkers,
		Seed:        f.seed,
		Interrupted: wd.Interrupted,
		Logf:        logf,
	}, c)
	if err != nil {
		fmt.Fprintln(os.Stderr, "uqsim-farm:", err)
		return cli.ExitPartial
	}

	m, err := farm.Merge(f.spool)
	if err != nil {
		fmt.Fprintln(os.Stderr, "uqsim-farm:", err)
		return cli.ExitPartial
	}
	outPath := f.out
	if outPath == "" {
		outPath = filepath.Join(f.spool, "merged.csv")
	}
	if err := m.WriteCSV(outPath); err != nil {
		fmt.Fprintln(os.Stderr, "uqsim-farm:", err)
		return cli.ExitPartial
	}
	if c.Kind == farm.KindChaos && len(m.Entries) > 0 {
		corpusDir := f.corpus
		if corpusDir == "" {
			corpusDir = filepath.Join(f.spool, "corpus")
		}
		if err := m.WriteCorpus(corpusDir); err != nil {
			fmt.Fprintln(os.Stderr, "uqsim-farm:", err)
			return cli.ExitPartial
		}
	}
	fmt.Printf("\n%d jobs: %d committed (%d this run, %d duplicates dropped), %d requeues, %d quarantined, %d respawns, %d monkey kills in %v\n",
		sum.Jobs, sum.Jobs-len(m.Missing)-len(m.Quarantined), sum.Committed, sum.Duplicates,
		sum.Requeues, sum.Quarantined, sum.Respawns, sum.Kills, time.Since(start).Round(time.Millisecond))
	fmt.Printf("merged %s -> %s\n", f.spool, outPath)

	if sum.Interrupted || wd.Interrupted() {
		fmt.Fprintf(os.Stderr, "uqsim-farm: PARTIAL: interrupted (%s) with %d jobs unfinished; rerun with -resume\n",
			wd.Reason(), len(m.Missing))
		return cli.ExitPartial
	}
	if len(m.Quarantined) > 0 || m.Violations > 0 {
		fmt.Printf("findings: %d chaos violations, %d quarantined jobs\n", m.Violations, len(m.Quarantined))
		return cli.ExitFindings
	}
	return cli.ExitOK
}
