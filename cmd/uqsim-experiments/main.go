// Command uqsim-experiments regenerates the paper's evaluation: every
// figure and table has a named runner producing the same rows/series the
// paper reports.
//
// Usage:
//
//	uqsim-experiments -list
//	uqsim-experiments fig8 table3
//	uqsim-experiments -scale 0.2 all
//	uqsim-experiments -csv -out results/ all
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"uqsim/internal/experiments"
)

func main() {
	list := flag.Bool("list", false, "list available experiments and exit")
	scale := flag.Float64("scale", 1.0, "shrink measurement windows and sweeps (0 < scale <= 1)")
	seed := flag.Uint64("seed", 42, "random seed")
	csv := flag.Bool("csv", false, "emit CSV instead of aligned tables")
	out := flag.String("out", "", "also write one CSV file per experiment into this directory")
	flag.Parse()

	if *list {
		for _, name := range experiments.Names() {
			fmt.Println(name)
		}
		return
	}
	ids := flag.Args()
	if len(ids) == 0 {
		fmt.Fprintln(os.Stderr, "uqsim-experiments: name experiments to run, or 'all' (see -list)")
		os.Exit(2)
	}
	if len(ids) == 1 && ids[0] == "all" {
		ids = experiments.Names()
	}
	opts := experiments.Opts{Seed: *seed, Scale: *scale}
	for _, id := range ids {
		start := time.Now()
		t, err := experiments.Run(id, opts)
		if err != nil {
			fmt.Fprintf(os.Stderr, "uqsim-experiments: %s: %v\n", id, err)
			os.Exit(1)
		}
		if *csv {
			fmt.Print(t.CSV())
			fmt.Println()
		} else {
			fmt.Println(t.String())
			fmt.Printf("(%s in %v)\n\n", id, time.Since(start).Round(time.Millisecond))
		}
		if *out != "" {
			if err := os.MkdirAll(*out, 0o755); err != nil {
				fmt.Fprintln(os.Stderr, "uqsim-experiments:", err)
				os.Exit(1)
			}
			path := filepath.Join(*out, id+".csv")
			if err := os.WriteFile(path, []byte(t.CSV()), 0o644); err != nil {
				fmt.Fprintln(os.Stderr, "uqsim-experiments:", err)
				os.Exit(1)
			}
		}
	}
}
