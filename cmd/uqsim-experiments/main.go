// Command uqsim-experiments regenerates the paper's evaluation: every
// figure and table has a named runner producing the same rows/series the
// paper reports.
//
// Usage:
//
//	uqsim-experiments -list
//	uqsim-experiments fig8 table3
//	uqsim-experiments -scale 0.2 all
//	uqsim-experiments -csv -out results/ all
//	uqsim-experiments -max-wall 10m all
//
// SIGINT/SIGTERM and the -max-wall watchdog stop the current simulation
// cleanly: whatever the interrupted experiment produced is still printed
// and written (marked partial), and the process exits nonzero.
//
// Exit codes: 0 completed, 1 interrupted or failed (CSVs already written
// are complete files; the set is partial), 2 usage.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"uqsim/internal/cli"
	"uqsim/internal/experiments"
)

func main() {
	list := flag.Bool("list", false, "list available experiments and exit")
	scale := flag.Float64("scale", 1.0, "shrink measurement windows and sweeps (0 < scale <= 1)")
	seed := flag.Uint64("seed", 42, "random seed")
	csv := flag.Bool("csv", false, "emit CSV instead of aligned tables")
	out := flag.String("out", "", "also write one CSV file per experiment into this directory")
	maxWall := flag.Duration("max-wall", 0, "stop after this much wall-clock time, flush partial results, exit nonzero")
	flag.Parse()

	if *list {
		for _, name := range experiments.Names() {
			fmt.Println(name)
		}
		return
	}
	ids := flag.Args()
	if len(ids) == 0 {
		fmt.Fprintln(os.Stderr, "uqsim-experiments: name experiments to run, or 'all' (see -list)")
		os.Exit(cli.ExitUsage)
	}
	if len(ids) == 1 && ids[0] == "all" {
		ids = experiments.Names()
	}
	wd := cli.StartWatchdog(*maxWall)
	opts := experiments.Opts{Seed: *seed, Scale: *scale}
	for _, id := range ids {
		start := time.Now()
		t, err := experiments.Run(id, opts)
		if err != nil {
			// An interrupted simulation can surface as an experiment error
			// (e.g. an invariant over a half-run window); flush what ran
			// and report the interruption rather than the symptom.
			if wd.Interrupted() {
				fmt.Fprintf(os.Stderr, "uqsim-experiments: interrupted (%s) during %s\n", wd.Reason(), id)
				os.Exit(cli.ExitPartial)
			}
			fmt.Fprintf(os.Stderr, "uqsim-experiments: %s: %v\n", id, err)
			os.Exit(cli.ExitPartial)
		}
		if wd.Interrupted() {
			t.Note = appendNote(t.Note, "PARTIAL: "+wd.Reason())
		}
		if *csv {
			fmt.Print(t.CSV())
			fmt.Println()
		} else {
			fmt.Println(t.String())
			fmt.Printf("(%s in %v)\n\n", id, time.Since(start).Round(time.Millisecond))
		}
		if *out != "" {
			if err := writeCSV(*out, id, t.CSV()); err != nil {
				fmt.Fprintln(os.Stderr, "uqsim-experiments:", err)
				os.Exit(cli.ExitPartial)
			}
		}
		if wd.Interrupted() {
			fmt.Fprintf(os.Stderr, "uqsim-experiments: interrupted (%s); %s is partial, later experiments skipped\n",
				wd.Reason(), id)
			os.Exit(cli.ExitPartial)
		}
	}
}

// writeCSV writes one experiment's CSV atomically: a temp file in the
// target directory renamed into place, so a kill mid-write never leaves a
// truncated results file.
func writeCSV(dir, id, data string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	tmp, err := os.CreateTemp(dir, id+".csv.tmp*")
	if err != nil {
		return err
	}
	if _, err := tmp.WriteString(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return os.Rename(tmp.Name(), filepath.Join(dir, id+".csv"))
}

func appendNote(note, extra string) string {
	if note == "" {
		return extra
	}
	return note + "; " + extra
}
