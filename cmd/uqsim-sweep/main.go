// Command uqsim-sweep measures the load–latency curve of a configured
// simulation: it re-runs the scenario across a grid of offered loads and
// prints one row per load (the data behind every figure in the paper's
// validation).
//
// Usage:
//
//	uqsim-sweep -config configs/twotier -from 5000 -to 80000 -step 5000
package main

import (
	"flag"
	"fmt"
	"os"

	"uqsim/internal/config"
	"uqsim/internal/experiments"
	"uqsim/internal/workload"
)

func main() {
	cfgDir := flag.String("config", "", "directory with machines/service/graph/path/client.json")
	from := flag.Float64("from", 5000, "first offered load (QPS)")
	to := flag.Float64("to", 50000, "last offered load (QPS)")
	step := flag.Float64("step", 5000, "load increment (QPS)")
	csv := flag.Bool("csv", false, "emit CSV instead of an aligned table")
	flag.Parse()

	if *cfgDir == "" {
		fmt.Fprintln(os.Stderr, "uqsim-sweep: -config is required")
		flag.Usage()
		os.Exit(2)
	}
	if *step <= 0 || *to < *from {
		fmt.Fprintln(os.Stderr, "uqsim-sweep: need step > 0 and to >= from")
		os.Exit(2)
	}
	if err := run(*cfgDir, *from, *to, *step, *csv); err != nil {
		fmt.Fprintln(os.Stderr, "uqsim-sweep:", err)
		os.Exit(1)
	}
}

func run(cfgDir string, from, to, step float64, csv bool) error {
	t := experiments.NewTable(
		fmt.Sprintf("Load sweep of %s", cfgDir),
		"offered_qps", "goodput_qps", "mean_ms", "p50_ms", "p95_ms", "p99_ms", "in_flight")
	for qps := from; qps <= to+1e-9; qps += step {
		setup, err := config.LoadDir(cfgDir)
		if err != nil {
			return err
		}
		cc := setup.Sim.Client()
		cc.Pattern = workload.ConstantRate(qps)
		cc.ClosedUsers = 0
		setup.Sim.SetClient(cc)
		rep, err := setup.Sim.Run(setup.Warmup, setup.Duration)
		if err != nil {
			return err
		}
		t.Add(
			fmt.Sprintf("%.0f", qps),
			fmt.Sprintf("%.0f", rep.GoodputQPS),
			fmt.Sprintf("%.3f", rep.Latency.Mean().Millis()),
			fmt.Sprintf("%.3f", rep.Latency.P50().Millis()),
			fmt.Sprintf("%.3f", rep.Latency.P95().Millis()),
			fmt.Sprintf("%.3f", rep.Latency.P99().Millis()),
			fmt.Sprintf("%d", rep.InFlight),
		)
	}
	if csv {
		fmt.Print(t.CSV())
	} else {
		fmt.Println(t.String())
	}
	return nil
}
