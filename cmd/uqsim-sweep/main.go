// Command uqsim-sweep measures the load–latency curve of a configured
// simulation: it re-runs the scenario across a grid of offered loads and
// prints one row per load (the data behind every figure in the paper's
// validation). The same points can be fanned out across worker processes
// with cmd/uqsim-farm; both paths produce byte-identical rows.
//
// Usage:
//
//	uqsim-sweep -config configs/twotier -from 5000 -to 80000 -step 5000
//
// Exit codes: 0 completed, 1 interrupted or failed (rows already printed
// are complete), 2 usage.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"uqsim/internal/cli"
	"uqsim/internal/experiments"
	"uqsim/internal/sim"
)

func main() {
	cfgDir := flag.String("config", "", "directory with machines/service/graph/path/client.json")
	from := flag.Float64("from", 5000, "first offered load (QPS)")
	to := flag.Float64("to", 50000, "last offered load (QPS)")
	step := flag.Float64("step", 5000, "load increment (QPS)")
	csv := flag.Bool("csv", false, "emit CSV instead of an aligned table")
	maxWall := flag.Duration("max-wall", 0, "stop after this much wall-clock time, print the partial table, exit nonzero")
	progress := flag.Bool("progress", false, "report each completed point on stderr")
	fidelity := flag.String("fidelity", "", `override the engine fidelity for every point: "full" or "hybrid"`)
	sampleRate := flag.Float64("sample-rate", 0, "hybrid foreground sample fraction in (0,1]")
	flag.Parse()

	if *cfgDir == "" {
		fmt.Fprintln(os.Stderr, "uqsim-sweep: -config is required")
		flag.Usage()
		os.Exit(cli.ExitUsage)
	}
	if *step <= 0 || *to < *from {
		fmt.Fprintln(os.Stderr, "uqsim-sweep: need step > 0 and to >= from")
		os.Exit(cli.ExitUsage)
	}
	os.Exit(run(*cfgDir, *from, *to, *step, *csv, *maxWall, *progress, *fidelity, *sampleRate))
}

func run(cfgDir string, from, to, step float64, csv bool, maxWall time.Duration, progress bool, fidelity string, sampleRate float64) int {
	wd := cli.StartWatchdog(maxWall)
	t := experiments.SweepTable(cfgDir)
	grid := experiments.SweepGrid(from, to, step)
	var mod func(*sim.Sim) error
	if fidelity != "" || sampleRate != 0 {
		mod = func(s *sim.Sim) error { return experiments.ApplyFidelity(s, fidelity, sampleRate) }
	}
	for i, qps := range grid {
		if wd.Interrupted() {
			break
		}
		row, err := experiments.SweepRowMod(cfgDir, qps, mod)
		if err != nil {
			fmt.Fprintln(os.Stderr, "uqsim-sweep:", err)
			return cli.ExitPartial
		}
		// A signal mid-run stops the simulation early; that point's row
		// reflects a truncated window, so drop it and keep the clean rows.
		if wd.Interrupted() {
			break
		}
		t.Add(row...)
		if progress {
			fmt.Fprintf(os.Stderr, "uqsim-sweep: point %d/%d (%.0f qps) done\n", i+1, len(grid), qps)
		}
	}
	if csv {
		fmt.Print(t.CSV())
	} else {
		fmt.Println(t.String())
	}
	if wd.Interrupted() {
		fmt.Fprintf(os.Stderr, "uqsim-sweep: PARTIAL: interrupted (%s) after %d/%d points; rows printed are complete\n",
			wd.Reason(), len(t.Rows), len(grid))
		return cli.ExitPartial
	}
	return cli.ExitOK
}
