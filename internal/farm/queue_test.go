package farm

import (
	"strings"
	"testing"
	"time"
)

func testJobs(n int) []JobSpec {
	var jobs []JobSpec
	for i := 0; i < n; i++ {
		jobs = append(jobs, JobSpec{
			Kind: KindSweep, ConfigHash: "cfg", Index: i, QPS: float64(1000 * (i + 1)),
		})
	}
	return jobs
}

func TestQueueLeaseExpiryRequeuesExactlyOnce(t *testing.T) {
	q := newQueue(testJobs(1), nil, nil, 3)
	now := time.Unix(0, 0)
	ttl, timeout := 10*time.Second, time.Hour

	js := q.lease(0, now, ttl, timeout)
	if js == nil || js.attempt != 1 {
		t.Fatalf("lease: %+v", js)
	}
	if exp := q.expired(now.Add(ttl / 2)); len(exp) != 0 {
		t.Fatalf("lease expired early: %+v", exp)
	}

	// Past the TTL with no heartbeat, the lease is expired; failing it
	// requeues the job once.
	late := now.Add(ttl + time.Second)
	exp := q.expired(late)
	if len(exp) != 1 || exp[0].worker != 0 {
		t.Fatalf("expired: %+v", exp)
	}
	if !strings.Contains(exp[0].reason, "expired without a heartbeat") {
		t.Fatalf("reason: %q", exp[0].reason)
	}
	requeued, poison := q.fail(exp[0].worker, exp[0].reason, late)
	if requeued == nil || poison != nil {
		t.Fatalf("fail: requeued=%v poison=%v", requeued, poison)
	}

	// The dispatcher kills the worker after failing the lease; the exit
	// event then fails the same worker again. That second fail must find
	// no lease — the job was already requeued — or it would requeue twice.
	requeued, poison = q.fail(exp[0].worker, "worker exited", late)
	if requeued != nil || poison != nil {
		t.Fatalf("second fail requeued again: requeued=%v poison=%v", requeued, poison)
	}
	if q.remaining() != 1 || !q.hasPending() {
		t.Fatalf("job lost: remaining=%d pending=%v", q.remaining(), q.hasPending())
	}

	// The requeued job leases again with a bumped attempt counter.
	js = q.lease(1, late, ttl, timeout)
	if js == nil || js.attempt != 2 {
		t.Fatalf("re-lease: %+v", js)
	}
}

func TestQueueHeartbeatExtendsLease(t *testing.T) {
	q := newQueue(testJobs(1), nil, nil, 3)
	now := time.Unix(0, 0)
	ttl := 10 * time.Second

	js := q.lease(0, now, ttl, time.Hour)
	beat := now.Add(8 * time.Second)
	if !q.heartbeat(0, js.hash, beat, ttl) {
		t.Fatal("heartbeat rejected")
	}
	// Without the beat the lease would have lapsed at now+ttl.
	if exp := q.expired(now.Add(ttl + time.Second)); len(exp) != 0 {
		t.Fatalf("heartbeat did not extend lease: %+v", exp)
	}
	if exp := q.expired(beat.Add(ttl + time.Second)); len(exp) != 1 {
		t.Fatalf("extended lease never expired: %+v", exp)
	}
	// A heartbeat for a job the worker no longer holds is stale.
	if q.heartbeat(1, js.hash, beat, ttl) {
		t.Fatal("accepted heartbeat from a worker without the lease")
	}
	if q.heartbeat(0, "other-hash", beat, ttl) {
		t.Fatal("accepted heartbeat for the wrong job")
	}
}

func TestQueueJobDeadlineOverridesHeartbeats(t *testing.T) {
	q := newQueue(testJobs(1), nil, nil, 3)
	now := time.Unix(0, 0)
	ttl, timeout := 10*time.Second, 30*time.Second

	js := q.lease(0, now, ttl, timeout)
	// Keep heartbeating right up to the wall-clock deadline: the job is
	// alive but hung, and the deadline must still fire.
	at := now
	for at.Before(now.Add(timeout)) {
		at = at.Add(ttl / 2)
		q.heartbeat(0, js.hash, at, ttl)
	}
	exp := q.expired(now.Add(timeout + time.Second))
	if len(exp) != 1 || !strings.Contains(exp[0].reason, "wall-clock budget") {
		t.Fatalf("deadline did not fire despite heartbeats: %+v", exp)
	}
}

func TestQueueQuarantineAfterMaxFailures(t *testing.T) {
	const maxFail = 3
	q := newQueue(testJobs(2), nil, nil, maxFail)
	now := time.Unix(0, 0)

	var poisoned *jobState
	for attempt := 1; attempt <= maxFail; attempt++ {
		js := q.lease(0, now, time.Second, time.Hour)
		if js == nil {
			t.Fatalf("attempt %d: nothing to lease", attempt)
		}
		requeued, poison := q.fail(0, "worker exited: crash", now)
		if attempt < maxFail {
			if requeued == nil || poison != nil {
				t.Fatalf("attempt %d: requeued=%v poison=%v", attempt, requeued, poison)
			}
			// FIFO fairness: the failed job goes to the back, behind job 1.
			if q.pending[len(q.pending)-1] != requeued {
				t.Fatal("failed job not requeued at the back")
			}
		} else {
			if requeued != nil || poison == nil {
				t.Fatalf("attempt %d: requeued=%v poison=%v", attempt, requeued, poison)
			}
			poisoned = poison
		}
		// Skip past the healthy job so the poison job leases again next.
		if attempt < maxFail {
			for q.pending[0] != requeued {
				q.pending = append(q.pending[1:], q.pending[0])
			}
		}
	}

	qe := poisoned.quarantineEntry()
	if len(qe.Failures) != maxFail {
		t.Fatalf("failure history: %+v", qe.Failures)
	}
	for i, f := range qe.Failures {
		if f.Attempt != i+1 || !strings.Contains(f.Reason, "crash") {
			t.Fatalf("failure %d: %+v", i, f)
		}
	}
	if qe.Hash != qe.Job.Hash() {
		t.Fatal("quarantine entry hash does not bind to its spec")
	}
	// The poison job is gone; the healthy one remains.
	if q.remaining() != 1 {
		t.Fatalf("remaining=%d", q.remaining())
	}
}

func TestQueueStaleCompletion(t *testing.T) {
	q := newQueue(testJobs(1), nil, nil, 3)
	now := time.Unix(0, 0)

	js := q.lease(0, now, time.Second, time.Hour)
	// The lease expires and the job is requeued, then leased to worker 1.
	q.fail(0, "lease expired", now)
	js2 := q.lease(1, now, time.Second, time.Hour)
	if js2 == nil || js2.hash != js.hash {
		t.Fatalf("re-lease: %+v", js2)
	}
	// Worker 0's late completion is stale: complete() refuses it.
	if got := q.complete(0, js.hash); got != nil {
		t.Fatalf("stale completion accepted: %+v", got)
	}
	// The dispatcher still commits the result and calls finished(), which
	// removes the job from worker 1 and reports who held it.
	if other := q.finished(js.hash); other != 1 {
		t.Fatalf("finished returned worker %d, want 1", other)
	}
	if !q.idle() {
		t.Fatal("queue not idle after stale completion resolved")
	}
}

func TestQueueResumeSkipsJournaledJobs(t *testing.T) {
	jobs := testJobs(3)
	done := map[string]*Result{jobs[0].Hash(): {Hash: jobs[0].Hash(), Job: jobs[0]}}
	quar := map[string]*QuarantineEntry{jobs[2].Hash(): {Hash: jobs[2].Hash(), Job: jobs[2]}}
	q := newQueue(jobs, done, quar, 3)
	if q.remaining() != 1 {
		t.Fatalf("remaining=%d, want 1", q.remaining())
	}
	js := q.lease(0, time.Unix(0, 0), time.Second, time.Hour)
	if js == nil || js.spec.Index != 1 {
		t.Fatalf("leased %+v, want the one unjournaled job", js)
	}
}
