package farm

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
	"sync"
	"time"
)

// The worker protocol is newline-delimited JSON over the subprocess's
// standard pipes, chosen so a crashed worker is indistinguishable from a
// closed pipe and a hung worker from a silent one — the two failure
// signals the dispatcher's leases and watchdogs are built around.
//
//	dispatcher → worker: {"job": {...}, "attempt": N}   one per line
//	worker → dispatcher: {"type": "heartbeat", ...}     while running
//	                     {"type": "result", ...}        on success
//	                     {"type": "error", ...}         on in-process failure
//
// A worker exits 0 when its stdin closes. It never writes spool files
// itself: results travel through the dispatcher, the journal's single
// writer, so a SIGKILL at any instant can at worst kill an unsent line.

// dispatchMsg is one job assignment. Attempt is the dispatcher's attempt
// counter for the job (1 = first try); workers are stateless across
// respawns, so the counter must travel with the job — the test-only fault
// hooks depend on it to fail an exact number of times.
type dispatchMsg struct {
	Job     JobSpec `json:"job"`
	Attempt int     `json:"attempt"`
}

// workerMsg is one line of worker → dispatcher traffic.
type workerMsg struct {
	Type   string  `json:"type"`
	Hash   string  `json:"hash"`
	Result *Result `json:"result,omitempty"`
	Error  string  `json:"error,omitempty"`
}

// Test-only fault hooks, honored by workers so the farm's own failure
// paths can be exercised deterministically. The value is "<key>@<n>":
// jobs whose Key contains <key> crash (os.Exit) or hang on attempts
// 1..n; "@<n>" alone matches every job. Production campaigns leave both
// unset.
const (
	EnvTestCrash = "UQSIM_FARM_TEST_CRASH"
	EnvTestHang  = "UQSIM_FARM_TEST_HANG"
)

// testHook parses an env hook value against a job and attempt.
func testHook(env string, job JobSpec, attempt int) bool {
	key, nStr, ok := strings.Cut(env, "@")
	if !ok {
		return false
	}
	n, err := strconv.Atoi(nStr)
	if err != nil {
		return false
	}
	return strings.Contains(job.Key(), key) && attempt <= n
}

// WorkerMain is the body of `uqsim-farm -worker`: it executes dispatched
// jobs against configDir sequentially, emitting a heartbeat every
// heartbeat interval while a job runs. It returns when in closes (normal
// retirement) and surfaces only protocol-level failures — a job that
// fails in-process is reported as an error message, not an exit.
func WorkerMain(configDir string, heartbeat time.Duration, in io.Reader, out io.Writer) error {
	exec, err := NewExecutor(configDir)
	if err != nil {
		// Refusing to start is a crash from the dispatcher's view; it will
		// respawn with backoff and eventually quarantine the leased jobs.
		return err
	}
	var mu sync.Mutex
	enc := json.NewEncoder(out)
	send := func(m *workerMsg) error {
		mu.Lock()
		defer mu.Unlock()
		return enc.Encode(m)
	}

	sc := bufio.NewScanner(in)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<24)
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var msg dispatchMsg
		if err := json.Unmarshal(line, &msg); err != nil {
			return fmt.Errorf("farm: worker received undecodable dispatch: %w", err)
		}
		hash := msg.Job.Hash()

		if testHook(os.Getenv(EnvTestCrash), msg.Job, msg.Attempt) {
			os.Exit(3) // simulated worker crash, mid-lease
		}

		stop := make(chan struct{})
		var hb sync.WaitGroup
		hb.Add(1)
		go func() {
			defer hb.Done()
			t := time.NewTicker(heartbeat)
			defer t.Stop()
			for {
				select {
				case <-stop:
					return
				case <-t.C:
					send(&workerMsg{Type: "heartbeat", Hash: hash})
				}
			}
		}()

		var res *Result
		var jobErr error
		if testHook(os.Getenv(EnvTestHang), msg.Job, msg.Attempt) {
			// Simulated hang: heartbeats keep flowing, the job never
			// finishes. Only the per-job wall-clock watchdog can save the
			// campaign.
			time.Sleep(10 * time.Minute)
			jobErr = fmt.Errorf("farm: test hang elapsed")
		} else {
			res, jobErr = exec.Execute(msg.Job)
		}
		close(stop)
		hb.Wait()

		var m workerMsg
		if jobErr != nil {
			m = workerMsg{Type: "error", Hash: hash, Error: jobErr.Error()}
		} else {
			m = workerMsg{Type: "result", Hash: hash, Result: res}
		}
		if err := send(&m); err != nil {
			return fmt.Errorf("farm: worker result pipe: %w", err)
		}
	}
	return sc.Err()
}
