package farm

import (
	"fmt"

	"uqsim/internal/chaos"
	"uqsim/internal/config"
	"uqsim/internal/experiments"
)

// Executor runs job specs in-process. Worker subprocesses wrap one in the
// stdin/stdout protocol loop; -replay uses one directly to re-run a
// quarantined spec under a debugger's eye.
type Executor struct {
	ConfigDir string
	hash      string
	// chaos harnesses are cached per (seed, maxActions): every trial of a
	// campaign shares one, and building it re-parses the config set.
	harnesses map[[2]uint64]*chaos.Harness
}

// NewExecutor hashes the configuration once; every job is checked against
// it so a spec journaled for different config bytes is refused, not run.
func NewExecutor(configDir string) (*Executor, error) {
	hash, err := config.HashDir(configDir)
	if err != nil {
		return nil, err
	}
	return &Executor{
		ConfigDir: configDir,
		hash:      hash,
		harnesses: make(map[[2]uint64]*chaos.Harness),
	}, nil
}

// Execute runs one job to its committed Result.
func (e *Executor) Execute(spec JobSpec) (*Result, error) {
	if spec.ConfigHash != e.hash {
		return nil, fmt.Errorf("farm: job %s was journaled for config %s but %s hashes to %s (configuration drifted mid-campaign?)",
			spec.Key(), spec.ConfigHash, e.ConfigDir, e.hash)
	}
	res := &Result{Hash: spec.Hash(), Job: spec}
	switch spec.Kind {
	case KindSweep:
		row, err := experiments.SweepRow(e.ConfigDir, spec.QPS)
		if err != nil {
			return nil, err
		}
		res.Row = row
	case KindChaos:
		h, err := e.harness(spec)
		if err != nil {
			return nil, err
		}
		tr, err := h.Trial(spec.Index)
		if err != nil {
			return nil, err
		}
		out := &ChaosOutcome{Events: tr.Events}
		if tr.Finding != nil {
			out.Violation = tr.Finding.Violation
			out.Detail = tr.Finding.Detail
			out.EventsAfter = tr.Finding.Events
			out.Entry = tr.Entry
		}
		res.Chaos = out
	default:
		return nil, fmt.Errorf("farm: unknown job kind %q", spec.Kind)
	}
	return res, nil
}

func (e *Executor) harness(spec JobSpec) (*chaos.Harness, error) {
	key := [2]uint64{spec.Seed, uint64(spec.MaxActions)}
	if h, ok := e.harnesses[key]; ok {
		return h, nil
	}
	h, err := chaos.NewHarness(chaos.Options{
		ConfigDir:  e.ConfigDir,
		Seed:       spec.Seed,
		MaxActions: spec.MaxActions,
	})
	if err != nil {
		return nil, err
	}
	e.harnesses[key] = h
	return h, nil
}
