// Package farm is µqSim's fault-tolerant experiment farm: it expands a
// sweep or chaos campaign into content-hashed job specs, journals them to
// a durable spool directory, and fans them out to a pool of worker
// subprocesses behind a lease-based queue. The farm is built to tolerate
// the same failures the simulator injects — worker crashes, hangs, and
// operator interrupts — without losing or double-counting a single trial:
//
//   - leases carry heartbeats and expire back to the queue when a worker
//     goes silent;
//   - a per-job wall-clock watchdog kills workers that hang mid-job;
//   - crashed workers respawn with exponential backoff and jitter;
//   - a job that kills its worker K times in a row is quarantined as a
//     replayable poison spec instead of wedging the campaign;
//   - results commit idempotently, keyed by the job's content hash, so a
//     retried or duplicated completion can never double-count;
//   - an interrupted campaign resumes by replaying the spool journal.
//
// The determinism contract: every job is a pure function of its spec and
// the configuration bytes it hashes, so the merged output of a campaign —
// at any worker count, with workers dying mid-run — is byte-identical to
// a serial run of the same points.
package farm

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"math"

	"uqsim/internal/config"
	"uqsim/internal/experiments"
)

// Campaign kinds.
const (
	KindSweep = "sweep" // one job per load point of a load–latency sweep
	KindChaos = "chaos" // one job per seeded chaos-search trial
)

// MaxJobs bounds a campaign's expansion. It exists so a corrupted or
// adversarial campaign.json (the journal decoder is fuzzed) cannot ask
// for an effectively unbounded allocation.
const MaxJobs = 1 << 20

// Campaign describes one experiment campaign: the configuration it runs
// against and the grid of independent points to cover. The campaign
// document is the head of the spool journal; expanding it is
// deterministic, so the job list never needs to be journaled separately.
type Campaign struct {
	Kind      string `json:"kind"`
	ConfigDir string `json:"config_dir"`
	// ConfigHash pins the exact configuration bytes (config.HashDir);
	// every job spec carries it, so results from a drifted config are
	// rejected rather than silently merged.
	ConfigHash string `json:"config_hash"`

	// Sweep campaigns: the inclusive load grid, expanded exactly like
	// cmd/uqsim-sweep iterates it.
	FromQPS float64 `json:"from_qps,omitempty"`
	ToQPS   float64 `json:"to_qps,omitempty"`
	StepQPS float64 `json:"step_qps,omitempty"`

	// Chaos campaigns: the master seed and trial count of the search, and
	// the per-scenario action bound (0 = the chaos default).
	Seed       uint64 `json:"seed,omitempty"`
	Trials     int    `json:"trials,omitempty"`
	MaxActions int    `json:"max_actions,omitempty"`
}

// NewSweepCampaign builds a sweep campaign over configDir, hashing the
// configuration it will run against.
func NewSweepCampaign(configDir string, from, to, step float64) (*Campaign, error) {
	hash, err := config.HashDir(configDir)
	if err != nil {
		return nil, err
	}
	c := &Campaign{
		Kind: KindSweep, ConfigDir: configDir, ConfigHash: hash,
		FromQPS: from, ToQPS: to, StepQPS: step,
	}
	if err := c.Validate(); err != nil {
		return nil, err
	}
	return c, nil
}

// NewChaosCampaign builds a chaos-search campaign over configDir.
func NewChaosCampaign(configDir string, seed uint64, trials, maxActions int) (*Campaign, error) {
	hash, err := config.HashDir(configDir)
	if err != nil {
		return nil, err
	}
	c := &Campaign{
		Kind: KindChaos, ConfigDir: configDir, ConfigHash: hash,
		Seed: seed, Trials: trials, MaxActions: maxActions,
	}
	if err := c.Validate(); err != nil {
		return nil, err
	}
	return c, nil
}

// Validate checks the campaign is well-formed and boundedly expandable.
func (c *Campaign) Validate() error {
	if c.ConfigDir == "" {
		return fmt.Errorf("farm: campaign needs a config_dir")
	}
	if c.ConfigHash == "" {
		return fmt.Errorf("farm: campaign needs a config_hash")
	}
	switch c.Kind {
	case KindSweep:
		for _, v := range []float64{c.FromQPS, c.ToQPS, c.StepQPS} {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return fmt.Errorf("farm: sweep campaign grid must be finite")
			}
		}
		if c.StepQPS <= 0 || c.ToQPS < c.FromQPS || c.FromQPS <= 0 {
			return fmt.Errorf("farm: sweep campaign needs from_qps > 0, step_qps > 0, to_qps >= from_qps")
		}
		// A step below the float ulp at the grid's magnitude would never
		// advance the sweep loop; reject it or Jobs() could spin forever
		// on a hostile campaign.json.
		if c.ToQPS+c.StepQPS == c.ToQPS {
			return fmt.Errorf("farm: step_qps %g is too small to advance the grid at %g", c.StepQPS, c.ToQPS)
		}
		if n := (c.ToQPS - c.FromQPS) / c.StepQPS; n > MaxJobs {
			return fmt.Errorf("farm: sweep campaign expands to over %d jobs", MaxJobs)
		}
	case KindChaos:
		if c.Trials <= 0 {
			return fmt.Errorf("farm: chaos campaign needs trials > 0")
		}
		if c.Trials > MaxJobs {
			return fmt.Errorf("farm: chaos campaign expands to over %d jobs", MaxJobs)
		}
		if c.MaxActions < 0 {
			return fmt.Errorf("farm: chaos campaign needs max_actions >= 0")
		}
	default:
		return fmt.Errorf("farm: unknown campaign kind %q (have %q, %q)", c.Kind, KindSweep, KindChaos)
	}
	return nil
}

// Jobs expands the campaign into its job specs in campaign order — the
// order the serial CLI would run them and the order Merge reassembles
// results in.
func (c *Campaign) Jobs() ([]JobSpec, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	var jobs []JobSpec
	switch c.Kind {
	case KindSweep:
		for i, qps := range experiments.SweepGrid(c.FromQPS, c.ToQPS, c.StepQPS) {
			jobs = append(jobs, JobSpec{
				Kind: KindSweep, ConfigHash: c.ConfigHash, Index: i, QPS: qps,
			})
		}
	case KindChaos:
		for i := 0; i < c.Trials; i++ {
			jobs = append(jobs, JobSpec{
				Kind: KindChaos, ConfigHash: c.ConfigHash, Index: i,
				Seed: c.Seed, MaxActions: c.MaxActions,
			})
		}
	}
	if len(jobs) > MaxJobs {
		return nil, fmt.Errorf("farm: campaign expands to %d jobs (max %d)", len(jobs), MaxJobs)
	}
	return jobs, nil
}

// JobSpec is one unit of farm work: a single sweep point or chaos trial.
// Specs are content-addressed — Hash covers every field plus the config
// hash — which is what makes retries, duplicate completions, and resumed
// campaigns safe to merge.
type JobSpec struct {
	Kind       string `json:"kind"`
	ConfigHash string `json:"config_hash"`
	// Index is the job's position in campaign order (the sweep point's
	// grid index, or the chaos trial number).
	Index      int     `json:"index"`
	QPS        float64 `json:"qps,omitempty"`
	Seed       uint64  `json:"seed,omitempty"`
	MaxActions int     `json:"max_actions,omitempty"`
}

// Hash is the job's content address: a stable digest of the canonical
// spec encoding. Spool filenames, leases, and idempotent commits are all
// keyed by it.
func (j JobSpec) Hash() string {
	data, err := json.Marshal(j)
	if err != nil {
		// JobSpec has no unmarshalable fields; this cannot happen.
		panic(fmt.Sprintf("farm: encoding job spec: %v", err))
	}
	sum := sha256.Sum256(data)
	return hex.EncodeToString(sum[:16])
}

// Key is the job's human-readable handle, used in logs and by the
// test-only fault hooks that target specific jobs.
func (j JobSpec) Key() string {
	switch j.Kind {
	case KindSweep:
		return fmt.Sprintf("sweep:%.0f", j.QPS)
	case KindChaos:
		return fmt.Sprintf("chaos:%d", j.Index)
	}
	return fmt.Sprintf("%s:%d", j.Kind, j.Index)
}
