package farm

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os/exec"
	"time"

	"uqsim/internal/rng"
)

// Options configures a dispatcher run.
type Options struct {
	// Spool is the durable journal directory (required).
	Spool string
	// Workers is the subprocess pool size (default 4).
	Workers int
	// WorkerArgv is the command line that starts one worker — typically
	// the farm binary itself with -worker (required).
	WorkerArgv []string
	// LeaseTTL is how long a lease survives without a heartbeat before
	// the job is requeued and the worker presumed wedged (default 10s).
	LeaseTTL time.Duration
	// Heartbeat is the interval workers are told to beat at; it must be
	// well under LeaseTTL (default LeaseTTL/5).
	Heartbeat time.Duration
	// JobTimeout is the per-job wall-clock watchdog: a job still running
	// past it is killed and requeued even if heartbeats keep arriving
	// (default 5m).
	JobTimeout time.Duration
	// MaxFailures quarantines a job after this many consecutive failed
	// attempts (default 3).
	MaxFailures int
	// Resume reopens a spool that already journals this campaign and
	// finishes the remaining jobs.
	Resume bool
	// KillWorkers > 0 turns the dispatcher's chaos monkey on: after each
	// of the first KillWorkers commits, one randomly chosen busy worker
	// is SIGKILLed mid-lease. The campaign must still complete with a
	// byte-identical merge — `make farm` smokes exactly this.
	KillWorkers int
	// Seed drives the chaos monkey's choice of victim and the respawn
	// jitter (default 1).
	Seed uint64
	// Interrupted, when non-nil, is polled from the event loop (wire it
	// to cli.Watchdog.Interrupted); when it fires the dispatcher stops
	// leasing, kills the pool, and returns with Interrupted set.
	Interrupted func() bool
	// Logf, when non-nil, receives progress lines.
	Logf func(format string, args ...any)
}

func (o *Options) withDefaults() Options {
	out := *o
	if out.Workers <= 0 {
		out.Workers = 4
	}
	if out.LeaseTTL <= 0 {
		out.LeaseTTL = 10 * time.Second
	}
	if out.Heartbeat <= 0 {
		out.Heartbeat = out.LeaseTTL / 5
	}
	if out.JobTimeout <= 0 {
		out.JobTimeout = 5 * time.Minute
	}
	if out.MaxFailures <= 0 {
		out.MaxFailures = 3
	}
	if out.Seed == 0 {
		out.Seed = 1
	}
	if out.Interrupted == nil {
		out.Interrupted = func() bool { return false }
	}
	if out.Logf == nil {
		out.Logf = func(string, ...any) {}
	}
	return out
}

// Summary is the accounting of one dispatcher run.
type Summary struct {
	// Jobs is the campaign size; Skipped were already journaled when the
	// run started (resume); Committed were committed by this run.
	Jobs, Skipped, Committed int
	// Duplicates counts completions dropped by the idempotent commit.
	Duplicates int
	// Requeues counts leases returned to the queue (crash, expiry, or
	// watchdog); Quarantined counts jobs withdrawn as poison.
	Requeues, Quarantined int
	// Respawns counts worker restarts; Kills counts chaos-monkey kills.
	Respawns, Kills int
	// Violations counts chaos-trial results that carried a finding.
	Violations  int
	Interrupted bool
}

// workerProc is one subprocess slot in the pool.
type workerProc struct {
	id    int
	cmd   *exec.Cmd
	stdin io.WriteCloser
	enc   *json.Encoder
	alive bool
	// closing marks a worker whose stdin we closed for retirement; its
	// exit is expected and must not trigger a respawn.
	closing bool
	// respawns counts consecutive crashes for the backoff; a committed
	// result resets it.
	respawns int
}

// event is one message into the dispatcher's single-threaded event loop.
type event struct {
	worker int
	msg    *workerMsg // nil for exit and spawn events
	exit   error      // exit reason (exit events only)
	kind   int
}

const (
	evMsg = iota
	evExit
	evSpawn // a backoff timer elapsed; respawn the worker slot
)

// Run executes campaign c: it opens (or resumes) the spool, leases jobs
// to a pool of worker subprocesses, and survives worker crashes, hangs,
// and kills without losing or double-counting a job. It returns once
// every job is committed or quarantined, or the run is interrupted.
func Run(o Options, c *Campaign) (*Summary, error) {
	opts := o.withDefaults()
	if opts.Spool == "" {
		return nil, fmt.Errorf("farm: Options.Spool is required")
	}
	if len(opts.WorkerArgv) == 0 {
		return nil, fmt.Errorf("farm: Options.WorkerArgv is required")
	}
	sp, err := OpenSpool(opts.Spool, c, opts.Resume)
	if err != nil {
		return nil, err
	}
	jobs, err := c.Jobs()
	if err != nil {
		return nil, err
	}
	done, err := sp.Committed()
	if err != nil {
		return nil, err
	}
	quarantined, err := sp.Quarantined()
	if err != nil {
		return nil, err
	}
	d := &dispatcher{
		opts:   opts,
		spool:  sp,
		queue:  newQueue(jobs, done, quarantined, opts.MaxFailures),
		events: make(chan event, 4*opts.Workers),
		jitter: rng.NewSplitter(opts.Seed).Stream("farm", "jitter"),
		monkey: rng.NewSplitter(opts.Seed).Stream("farm", "monkey"),
	}
	d.summary.Jobs = len(jobs)
	d.summary.Skipped = len(done) + len(quarantined)
	for _, r := range done {
		if r.Chaos != nil && r.Chaos.Violation != "" {
			d.summary.Violations++
		}
	}
	return d.run()
}

type dispatcher struct {
	opts    Options
	spool   *Spool
	queue   *queue
	events  chan event
	workers []*workerProc
	jitter  *rng.Source
	monkey  *rng.Source
	summary Summary
}

func (d *dispatcher) run() (*Summary, error) {
	if d.queue.idle() {
		d.opts.Logf("farm: nothing to do: %d/%d jobs already journaled", d.summary.Skipped, d.summary.Jobs)
		return &d.summary, nil
	}
	d.workers = make([]*workerProc, d.opts.Workers)
	for i := range d.workers {
		d.workers[i] = &workerProc{id: i}
		if err := d.spawn(d.workers[i]); err != nil {
			return &d.summary, err
		}
	}
	d.opts.Logf("farm: %d jobs across %d workers (%d already journaled)",
		d.queue.remaining(), d.opts.Workers, d.summary.Skipped)

	tick := time.NewTicker(d.leaseCheckInterval())
	defer tick.Stop()
	var fatal error
	for !d.queue.idle() {
		if d.opts.Interrupted() {
			d.summary.Interrupted = true
			break
		}
		d.assign()
		select {
		case ev := <-d.events:
			if err := d.handle(ev); err != nil {
				fatal = err
			}
		case <-tick.C:
			d.reap(time.Now())
		}
		if fatal != nil {
			break
		}
	}

	// Retire the pool: close stdins so idle workers exit 0, kill the rest.
	for _, w := range d.workers {
		if w.alive {
			w.closing = true
			if w.stdin != nil {
				w.stdin.Close()
			}
			if d.summary.Interrupted || fatal != nil {
				w.cmd.Process.Kill()
			}
		}
	}
	deadline := time.After(10 * time.Second)
	for alive := d.aliveCount(); alive > 0; alive = d.aliveCount() {
		select {
		case ev := <-d.events:
			if ev.kind == evExit {
				d.workers[ev.worker].alive = false
			}
		case <-deadline:
			for _, w := range d.workers {
				if w.alive {
					w.cmd.Process.Kill()
					w.alive = false
				}
			}
		}
	}
	if fatal != nil {
		return &d.summary, fatal
	}
	if d.summary.Interrupted {
		d.opts.Logf("farm: interrupted with %d jobs unfinished; the spool resumes them", d.queue.remaining())
	}
	return &d.summary, nil
}

func (d *dispatcher) leaseCheckInterval() time.Duration {
	iv := d.opts.LeaseTTL / 4
	if iv > time.Second {
		iv = time.Second
	}
	if iv < 10*time.Millisecond {
		iv = 10 * time.Millisecond
	}
	return iv
}

func (d *dispatcher) aliveCount() int {
	n := 0
	for _, w := range d.workers {
		if w.alive {
			n++
		}
	}
	return n
}

// spawn starts (or restarts) one worker subprocess and wires its stdout
// into the event loop.
func (d *dispatcher) spawn(w *workerProc) error {
	argv := d.opts.WorkerArgv
	cmd := exec.Command(argv[0], argv[1:]...)
	stdin, err := cmd.StdinPipe()
	if err != nil {
		return fmt.Errorf("farm: spawning worker %d: %w", w.id, err)
	}
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		return fmt.Errorf("farm: spawning worker %d: %w", w.id, err)
	}
	cmd.Stderr = nil // workers log nothing in normal operation
	if err := cmd.Start(); err != nil {
		return fmt.Errorf("farm: spawning worker %d: %w", w.id, err)
	}
	w.cmd, w.stdin, w.alive, w.closing = cmd, stdin, true, false
	w.enc = json.NewEncoder(stdin)

	id := w.id
	go func() {
		sc := bufio.NewScanner(stdout)
		sc.Buffer(make([]byte, 0, 1<<16), 1<<24)
		for sc.Scan() {
			line := sc.Bytes()
			if len(line) == 0 {
				continue
			}
			var msg workerMsg
			if err := json.Unmarshal(line, &msg); err != nil {
				continue // a torn line from a dying worker; its exit follows
			}
			d.events <- event{worker: id, msg: &msg, kind: evMsg}
		}
		d.events <- event{worker: id, exit: cmd.Wait(), kind: evExit}
	}()
	return nil
}

// assign hands pending jobs to every idle live worker.
func (d *dispatcher) assign() {
	if !d.queue.hasPending() {
		return
	}
	now := time.Now()
	for _, w := range d.workers {
		if !w.alive || w.closing {
			continue
		}
		js := d.queue.lease(w.id, now, d.opts.LeaseTTL, d.opts.JobTimeout)
		if js == nil {
			continue
		}
		if err := w.enc.Encode(&dispatchMsg{Job: js.spec, Attempt: js.attempt}); err != nil {
			// The pipe is dead; the exit event will fail this lease and
			// respawn the worker.
			d.opts.Logf("farm: worker %d pipe closed mid-dispatch", w.id)
		}
	}
}

// handle processes one event on the single dispatcher thread.
func (d *dispatcher) handle(ev event) error {
	w := d.workers[ev.worker]
	switch ev.kind {
	case evMsg:
		switch ev.msg.Type {
		case "heartbeat":
			d.queue.heartbeat(ev.worker, ev.msg.Hash, time.Now(), d.opts.LeaseTTL)
		case "result":
			return d.commit(w, ev.msg)
		case "error":
			d.opts.Logf("farm: worker %d: job failed in-process: %s", ev.worker, ev.msg.Error)
			return d.failLease(ev.worker, "job error: "+ev.msg.Error)
		}
	case evExit:
		w.alive = false
		if w.closing {
			return nil // expected retirement
		}
		reason := "worker exited"
		if ev.exit != nil {
			reason = fmt.Sprintf("worker exited: %v", ev.exit)
		}
		d.opts.Logf("farm: worker %d died (%s); respawning with backoff", ev.worker, reason)
		if err := d.failLease(ev.worker, reason); err != nil {
			return err
		}
		d.scheduleRespawn(w)
	case evSpawn:
		if w.alive || w.closing || d.queue.idle() {
			return nil
		}
		d.summary.Respawns++
		if err := d.spawn(w); err != nil {
			return err
		}
	}
	return nil
}

// commit journals a finished job. Commits are idempotent by hash, so a
// duplicate completion — a stale worker finishing a job that was already
// requeued and completed elsewhere — is counted and dropped, never
// double-merged.
func (d *dispatcher) commit(w *workerProc, msg *workerMsg) error {
	if msg.Result == nil {
		return d.failLease(w.id, "worker sent an empty result")
	}
	if err := validateResult(msg.Result); err != nil {
		return d.failLease(w.id, fmt.Sprintf("worker sent a malformed result: %v", err))
	}
	committed, err := d.spool.CommitResult(msg.Result)
	if err != nil {
		return err
	}
	w.respawns = 0 // a healthy result resets the backoff
	if d.queue.complete(w.id, msg.Hash) == nil {
		// Stale lease: the job was requeued (or finished) elsewhere. The
		// commit above still counted; withdraw any other copy of the job.
		// If that copy was already leased to a live worker, kill it to
		// resync — it is burning time on work the journal already holds,
		// and its eventual completion would only be a dropped duplicate.
		if other := d.queue.finished(msg.Hash); other >= 0 && other != w.id {
			ow := d.workers[other]
			if ow.alive {
				d.opts.Logf("farm: job %s finished by a stale lease; resyncing worker %d", msg.Result.Job.Key(), other)
				ow.alive = false
				ow.cmd.Process.Kill()
			}
		}
	}
	if committed {
		d.summary.Committed++
		if msg.Result.Chaos != nil && msg.Result.Chaos.Violation != "" {
			d.summary.Violations++
			d.opts.Logf("farm: %s: VIOLATION %s (shrunk to %d events)",
				msg.Result.Job.Key(), msg.Result.Chaos.Violation, msg.Result.Chaos.EventsAfter)
		} else {
			d.opts.Logf("farm: %s committed (%d/%d)", msg.Result.Job.Key(),
				d.summary.Skipped+d.summary.Committed, d.summary.Jobs)
		}
		d.monkeyStrike()
	} else {
		d.summary.Duplicates++
		d.opts.Logf("farm: duplicate completion of %s dropped", msg.Result.Job.Key())
	}
	return nil
}

// validateResult rejects malformed payloads before they reach the journal.
func validateResult(r *Result) error {
	if r.Hash != r.Job.Hash() {
		return fmt.Errorf("hash %s does not match spec (%s)", r.Hash, r.Job.Hash())
	}
	switch r.Job.Kind {
	case KindSweep:
		if len(r.Row) == 0 {
			return fmt.Errorf("sweep result carries no row")
		}
	case KindChaos:
		if r.Chaos == nil {
			return fmt.Errorf("chaos result carries no outcome")
		}
	}
	return nil
}

// failLease fails whatever job the worker holds: requeue, or quarantine
// after MaxFailures consecutive failures. Exactly one of the two happens,
// and nothing happens if the lease already lapsed — that is what keeps a
// crash racing a lease expiry from double-requeuing.
func (d *dispatcher) failLease(worker int, reason string) error {
	requeued, poison := d.queue.fail(worker, reason, time.Now())
	switch {
	case requeued != nil:
		d.summary.Requeues++
		d.opts.Logf("farm: requeued %s after attempt %d (%s)", requeued.spec.Key(), requeued.attempt, reason)
	case poison != nil:
		d.summary.Quarantined++
		q := poison.quarantineEntry()
		if err := d.spool.Quarantine(q); err != nil {
			return err
		}
		d.opts.Logf("farm: QUARANTINED %s after %d failed attempts (replay it with -replay %s)",
			poison.spec.Key(), len(q.Failures), q.Hash)
	}
	return nil
}

// reap enforces the lease and per-job watchdogs: a silent or overrunning
// worker is killed (its exit event respawns it) after its job is failed —
// in that order, so the exit handler finds no lease and the job is
// requeued exactly once.
func (d *dispatcher) reap(now time.Time) {
	for _, ex := range d.queue.expired(now) {
		w := d.workers[ex.worker]
		d.opts.Logf("farm: worker %d: %s; killing worker", ex.worker, ex.reason)
		if err := d.failLease(ex.worker, ex.reason); err != nil {
			// Journaling the quarantine failed; surface on the next loop.
			d.opts.Logf("farm: %v", err)
		}
		if w.alive {
			// Mark the worker dead before the exit event lands so assign
			// cannot lease into the dying process; the exit event then
			// finds no lease to fail and schedules the respawn.
			w.alive = false
			w.cmd.Process.Kill()
		}
	}
}

// monkeyStrike SIGKILLs one randomly chosen busy worker after each of the
// first KillWorkers commits — the built-in chaos monkey behind `make
// farm` and the crash-recovery tests.
func (d *dispatcher) monkeyStrike() {
	if d.summary.Kills >= d.opts.KillWorkers {
		return
	}
	var victims []*workerProc
	for _, w := range d.workers {
		if w.alive && !w.closing {
			victims = append(victims, w)
		}
	}
	if len(victims) == 0 {
		return
	}
	w := victims[d.monkey.IntN(len(victims))]
	d.summary.Kills++
	d.opts.Logf("farm: chaos monkey SIGKILLs worker %d", w.id)
	w.alive = false
	w.cmd.Process.Kill()
}

// scheduleRespawn arms the crashed worker's restart with exponential
// backoff and jitter, so a crash-looping worker (or a poison job cycling
// through the pool) cannot hot-spin the machine.
func (d *dispatcher) scheduleRespawn(w *workerProc) {
	w.respawns++
	backoff := 100 * time.Millisecond << min(w.respawns-1, 6)
	backoff += time.Duration(d.jitter.Float64() * float64(backoff))
	id := w.id
	time.AfterFunc(backoff, func() {
		d.events <- event{worker: id, kind: evSpawn}
	})
}
