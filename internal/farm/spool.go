package farm

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"uqsim/internal/chaos"
)

// The spool is the campaign's durable journal, laid out as plain files so
// a crash at any instant leaves a directory that replays cleanly:
//
//	spool/
//	  campaign.json           the campaign document (journal head)
//	  results/<hash>.json     one committed result per finished job
//	  quarantine/<hash>.json  poison jobs withdrawn after K failures
//
// Every file is written via a same-directory temp file and rename (the
// chaos-corpus pattern), so a SIGKILL mid-write leaves at worst an
// ignorable .tmp- file, never a truncated record. A job's state is
// derived, not stored: committed if its result file exists, quarantined
// if its quarantine file exists, pending otherwise — which is exactly
// what -resume replays.

// Result is one committed job outcome. Only deterministic fields are
// journaled (no wall-clock timings), so a result file's bytes are a pure
// function of the job spec and the configuration.
type Result struct {
	Hash string  `json:"hash"`
	Job  JobSpec `json:"job"`
	// Row is a sweep point's table row, in experiments.SweepColumns order.
	Row []string `json:"row,omitempty"`
	// Chaos is a chaos trial's outcome.
	Chaos *ChaosOutcome `json:"chaos,omitempty"`
}

// ChaosOutcome is the deterministic summary of one chaos trial.
type ChaosOutcome struct {
	// Events is the explored schedule's fault-event count.
	Events int `json:"events"`
	// Violation, Detail, and EventsAfter describe the shrunk finding;
	// Violation is empty when every invariant held.
	Violation   string `json:"violation,omitempty"`
	Detail      string `json:"detail,omitempty"`
	EventsAfter int    `json:"events_after,omitempty"`
	// Entry is the portable corpus artifact (nil when no violation).
	Entry *chaos.Entry `json:"entry,omitempty"`
}

// FailureRecord is one failed attempt at a job.
type FailureRecord struct {
	Attempt int    `json:"attempt"`
	Reason  string `json:"reason"`
}

// QuarantineEntry is a poison job withdrawn from the queue: the spec (so
// -replay can re-run it in isolation) plus the failure history that
// condemned it.
type QuarantineEntry struct {
	Hash     string          `json:"hash"`
	Job      JobSpec         `json:"job"`
	Failures []FailureRecord `json:"failures"`
}

// Spool is an open spool directory.
type Spool struct {
	Dir      string
	campaign *Campaign
}

// OpenSpool creates or reopens the spool at dir for campaign c. A fresh
// directory is initialized with the campaign document. Reopening requires
// resume and an identical campaign — a spool journaled for one campaign
// must never absorb results from another.
func OpenSpool(dir string, c *Campaign, resume bool) (*Spool, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	for _, sub := range []string{"", "results", "quarantine"} {
		if err := os.MkdirAll(filepath.Join(dir, sub), 0o755); err != nil {
			return nil, fmt.Errorf("farm: creating spool: %w", err)
		}
	}
	want, err := encodeCampaign(c)
	if err != nil {
		return nil, err
	}
	head := filepath.Join(dir, "campaign.json")
	if have, err := os.ReadFile(head); err == nil {
		if !bytes.Equal(have, want) {
			return nil, fmt.Errorf("farm: spool %s already journals a different campaign; use a fresh -spool directory", dir)
		}
		if !resume {
			return nil, fmt.Errorf("farm: spool %s already holds this campaign; pass -resume to finish it", dir)
		}
	} else if os.IsNotExist(err) {
		if err := writeAtomic(head, want); err != nil {
			return nil, err
		}
	} else {
		return nil, fmt.Errorf("farm: reading %s: %w", head, err)
	}
	return &Spool{Dir: dir, campaign: c}, nil
}

// OpenSpoolDir reopens an existing spool from its journaled campaign
// alone (for audit and merge, which must not need the original flags).
func OpenSpoolDir(dir string) (*Spool, error) {
	data, err := os.ReadFile(filepath.Join(dir, "campaign.json"))
	if err != nil {
		return nil, fmt.Errorf("farm: %s is not a spool: %w", dir, err)
	}
	c, err := DecodeCampaign(data)
	if err != nil {
		return nil, fmt.Errorf("farm: %s/campaign.json: %w", dir, err)
	}
	return &Spool{Dir: dir, campaign: c}, nil
}

// Campaign returns the journaled campaign document.
func (s *Spool) Campaign() *Campaign { return s.campaign }

// CommitResult journals one finished job, idempotently: the first commit
// of a hash wins and every later one reports committed=false. Retried
// jobs and duplicated completions therefore cannot double-count — the
// journal holds at most one result per spec.
func (s *Spool) CommitResult(r *Result) (committed bool, err error) {
	if r.Hash != r.Job.Hash() {
		return false, fmt.Errorf("farm: result hash %s does not match its spec (%s)", r.Hash, r.Job.Hash())
	}
	path := filepath.Join(s.Dir, "results", r.Hash+".json")
	if _, err := os.Stat(path); err == nil {
		return false, nil
	}
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return false, fmt.Errorf("farm: encoding result: %w", err)
	}
	if err := writeAtomic(path, append(data, '\n')); err != nil {
		return false, err
	}
	return true, nil
}

// Quarantine journals a poison job. Like results, quarantine entries are
// keyed by hash and idempotent.
func (s *Spool) Quarantine(q *QuarantineEntry) error {
	if q.Hash != q.Job.Hash() {
		return fmt.Errorf("farm: quarantine hash %s does not match its spec (%s)", q.Hash, q.Job.Hash())
	}
	data, err := json.MarshalIndent(q, "", "  ")
	if err != nil {
		return fmt.Errorf("farm: encoding quarantine entry: %w", err)
	}
	return writeAtomic(filepath.Join(s.Dir, "quarantine", q.Hash+".json"), append(data, '\n'))
}

// Committed loads every journaled result, keyed by job hash.
func (s *Spool) Committed() (map[string]*Result, error) {
	out := make(map[string]*Result)
	err := s.scan("results", func(hash string, data []byte) error {
		r, err := DecodeResult(data)
		if err != nil {
			return err
		}
		if r.Hash != hash {
			return fmt.Errorf("journaled under %s but records hash %s", hash, r.Hash)
		}
		out[hash] = r
		return nil
	})
	return out, err
}

// Quarantined loads every quarantine entry, keyed by job hash.
func (s *Spool) Quarantined() (map[string]*QuarantineEntry, error) {
	out := make(map[string]*QuarantineEntry)
	err := s.scan("quarantine", func(hash string, data []byte) error {
		q, err := DecodeQuarantine(data)
		if err != nil {
			return err
		}
		if q.Hash != hash {
			return fmt.Errorf("journaled under %s but records hash %s", hash, q.Hash)
		}
		out[hash] = q
		return nil
	})
	return out, err
}

// scan walks one spool subdirectory, skipping interrupted temp files.
func (s *Spool) scan(sub string, fn func(hash string, data []byte) error) error {
	dir := filepath.Join(s.Dir, sub)
	des, err := os.ReadDir(dir)
	if os.IsNotExist(err) {
		return nil
	}
	if err != nil {
		return fmt.Errorf("farm: %w", err)
	}
	for _, de := range des {
		name := de.Name()
		if de.IsDir() || !strings.HasSuffix(name, ".json") || strings.HasPrefix(name, ".tmp-") {
			continue
		}
		data, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			return fmt.Errorf("farm: %w", err)
		}
		if err := fn(strings.TrimSuffix(name, ".json"), data); err != nil {
			return fmt.Errorf("farm: %s/%s: %w", sub, name, err)
		}
	}
	return nil
}

// writeAtomic writes via a same-directory temp file and rename, so a kill
// mid-write leaves either the old content or the new — never a truncated
// file.
func writeAtomic(path string, data []byte) error {
	tmp, err := os.CreateTemp(filepath.Dir(path), ".tmp-*")
	if err != nil {
		return fmt.Errorf("farm: %w", err)
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("farm: writing %s: %w", path, err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("farm: writing %s: %w", path, err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("farm: %w", err)
	}
	return nil
}

// ---- journal decoding (fuzzed: see FuzzFarmJournal) ----

func decodeStrict(data []byte, v any) error {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return err
	}
	return nil
}

// DecodeCampaign parses and validates a campaign.json document.
func DecodeCampaign(data []byte) (*Campaign, error) {
	var c Campaign
	if err := decodeStrict(data, &c); err != nil {
		return nil, fmt.Errorf("farm: campaign: %w", err)
	}
	if err := c.Validate(); err != nil {
		return nil, err
	}
	return &c, nil
}

func encodeCampaign(c *Campaign) ([]byte, error) {
	data, err := json.MarshalIndent(c, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("farm: encoding campaign: %w", err)
	}
	return append(data, '\n'), nil
}

// DecodeResult parses one journaled result and checks its hash binds to
// its spec.
func DecodeResult(data []byte) (*Result, error) {
	var r Result
	if err := decodeStrict(data, &r); err != nil {
		return nil, fmt.Errorf("farm: result: %w", err)
	}
	if r.Hash != r.Job.Hash() {
		return nil, fmt.Errorf("farm: result hash %s does not match its spec (%s)", r.Hash, r.Job.Hash())
	}
	return &r, nil
}

// DecodeQuarantine parses one quarantine entry and checks its hash binds
// to its spec.
func DecodeQuarantine(data []byte) (*QuarantineEntry, error) {
	var q QuarantineEntry
	if err := decodeStrict(data, &q); err != nil {
		return nil, fmt.Errorf("farm: quarantine: %w", err)
	}
	if q.Hash != q.Job.Hash() {
		return nil, fmt.Errorf("farm: quarantine hash %s does not match its spec (%s)", q.Hash, q.Job.Hash())
	}
	return &q, nil
}

// ---- journal audit ----

// AuditReport is the exactly-once accounting of a spool: every campaign
// job must be committed exactly once or quarantined, with nothing extra.
type AuditReport struct {
	Jobs        int
	Committed   int
	Quarantined int
	// Missing lists job keys with neither a result nor a quarantine
	// entry (an incomplete campaign).
	Missing []string
	// Conflicts lists job keys that are both committed and quarantined.
	Conflicts []string
	// Orphans lists journal files whose hash matches no campaign job.
	Orphans []string
}

// Clean reports whether the journal accounts for every job exactly once.
func (a *AuditReport) Clean() bool {
	return len(a.Missing) == 0 && len(a.Conflicts) == 0 && len(a.Orphans) == 0
}

// Complete reports whether every job finished (committed or quarantined).
func (a *AuditReport) Complete() bool {
	return a.Clean() && a.Committed+a.Quarantined == a.Jobs
}

func (a *AuditReport) String() string {
	s := fmt.Sprintf("%d jobs: %d committed, %d quarantined, %d missing, %d conflicts, %d orphans",
		a.Jobs, a.Committed, a.Quarantined, len(a.Missing), len(a.Conflicts), len(a.Orphans))
	for _, m := range a.Missing {
		s += "\n  missing: " + m
	}
	for _, c := range a.Conflicts {
		s += "\n  conflict: " + c
	}
	for _, o := range a.Orphans {
		s += "\n  orphan: " + o
	}
	return s
}

// Audit replays the journal and checks the exactly-once invariant.
func Audit(dir string) (*AuditReport, error) {
	sp, err := OpenSpoolDir(dir)
	if err != nil {
		return nil, err
	}
	jobs, err := sp.campaign.Jobs()
	if err != nil {
		return nil, err
	}
	committed, err := sp.Committed()
	if err != nil {
		return nil, err
	}
	quarantined, err := sp.Quarantined()
	if err != nil {
		return nil, err
	}
	rep := &AuditReport{Jobs: len(jobs), Committed: len(committed), Quarantined: len(quarantined)}
	known := make(map[string]bool, len(jobs))
	for _, j := range jobs {
		hash := j.Hash()
		known[hash] = true
		_, isDone := committed[hash]
		_, isQuar := quarantined[hash]
		switch {
		case isDone && isQuar:
			rep.Conflicts = append(rep.Conflicts, j.Key())
		case !isDone && !isQuar:
			rep.Missing = append(rep.Missing, j.Key())
		}
	}
	for hash := range committed {
		if !known[hash] {
			rep.Orphans = append(rep.Orphans, "results/"+hash+".json")
		}
	}
	for hash := range quarantined {
		if !known[hash] {
			rep.Orphans = append(rep.Orphans, "quarantine/"+hash+".json")
		}
	}
	sort.Strings(rep.Orphans)
	return rep, nil
}
