package farm

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// testCampaign builds a sweep campaign over a real config dir so the
// config hash is honest, but with a tiny grid.
func testCampaign(t *testing.T) *Campaign {
	t.Helper()
	c, err := NewSweepCampaign(testConfigDir(t, "twotier"), 1000, 3000, 1000)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func testConfigDir(t *testing.T, name string) string {
	t.Helper()
	dir, err := filepath.Abs(filepath.Join("..", "..", "configs", name))
	if err != nil {
		t.Fatal(err)
	}
	return dir
}

func TestSpoolOpenAndReopen(t *testing.T) {
	dir := t.TempDir()
	c := testCampaign(t)

	if _, err := OpenSpool(dir, c, false); err != nil {
		t.Fatal(err)
	}
	// Reopening the same campaign without -resume must refuse: the caller
	// would silently skip every journaled job thinking it ran them.
	if _, err := OpenSpool(dir, c, false); err == nil || !strings.Contains(err.Error(), "-resume") {
		t.Fatalf("reopen without resume: %v", err)
	}
	if _, err := OpenSpool(dir, c, true); err != nil {
		t.Fatalf("reopen with resume: %v", err)
	}
	// A different campaign must never share the spool.
	other := *c
	other.ToQPS += 1000
	if _, err := OpenSpool(dir, &other, true); err == nil || !strings.Contains(err.Error(), "different campaign") {
		t.Fatalf("different campaign accepted: %v", err)
	}
}

func TestSpoolCommitIdempotent(t *testing.T) {
	dir := t.TempDir()
	c := testCampaign(t)
	sp, err := OpenSpool(dir, c, false)
	if err != nil {
		t.Fatal(err)
	}
	jobs, err := c.Jobs()
	if err != nil {
		t.Fatal(err)
	}
	r := &Result{Hash: jobs[0].Hash(), Job: jobs[0], Row: []string{"1000", "1001", "0.1", "0.1", "0.2", "0.3", "0"}}

	committed, err := sp.CommitResult(r)
	if err != nil || !committed {
		t.Fatalf("first commit: committed=%v err=%v", committed, err)
	}
	// A duplicate completion (retry, stale lease) must not overwrite.
	dup := *r
	dup.Row = []string{"9", "9", "9", "9", "9", "9", "9"}
	committed, err = sp.CommitResult(&dup)
	if err != nil || committed {
		t.Fatalf("duplicate commit: committed=%v err=%v", committed, err)
	}
	loaded, err := sp.Committed()
	if err != nil {
		t.Fatal(err)
	}
	if got := loaded[r.Hash]; got == nil || got.Row[1] != "1001" {
		t.Fatalf("first write did not win: %+v", got)
	}

	// A result whose hash does not bind to its spec is rejected.
	bad := &Result{Hash: "deadbeef", Job: jobs[1], Row: r.Row}
	if _, err := sp.CommitResult(bad); err == nil {
		t.Fatal("unbound hash committed")
	}
}

func TestSpoolScanSkipsTornTempFiles(t *testing.T) {
	dir := t.TempDir()
	c := testCampaign(t)
	sp, err := OpenSpool(dir, c, false)
	if err != nil {
		t.Fatal(err)
	}
	// A SIGKILL mid-write leaves a .tmp- file; the scan must ignore it
	// instead of failing the whole journal replay.
	if err := os.WriteFile(filepath.Join(dir, "results", ".tmp-123456"), []byte("{torn"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := sp.Committed(); err != nil {
		t.Fatalf("torn temp file broke the scan: %v", err)
	}
	// A torn *named* result file, however, is corruption and must surface.
	if err := os.WriteFile(filepath.Join(dir, "results", "abcd.json"), []byte("{torn"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := sp.Committed(); err == nil {
		t.Fatal("corrupt result file passed the scan")
	}
}

func TestSpoolDecodersRejectDrift(t *testing.T) {
	// Unknown fields mean a newer writer or corruption; the strict
	// decoders refuse rather than silently dropping data.
	if _, err := DecodeResult([]byte(`{"hash":"x","job":{"kind":"sweep"},"extra":1}`)); err == nil {
		t.Fatal("unknown field accepted in result")
	}
	if _, err := DecodeQuarantine([]byte(`{"hash":"x","job":{"kind":"sweep"},"bogus":true}`)); err == nil {
		t.Fatal("unknown field accepted in quarantine entry")
	}
	if _, err := DecodeCampaign([]byte(`{"kind":"sweep","config_dir":"d","config_hash":"h","from_qps":1,"to_qps":1,"step_qps":1,"nope":0}`)); err == nil {
		t.Fatal("unknown field accepted in campaign")
	}
}

func TestAuditAccounting(t *testing.T) {
	dir := t.TempDir()
	c := testCampaign(t)
	sp, err := OpenSpool(dir, c, false)
	if err != nil {
		t.Fatal(err)
	}
	jobs, err := c.Jobs()
	if err != nil {
		t.Fatal(err)
	}

	// Empty journal: every job missing.
	rep, err := Audit(dir)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Clean() || len(rep.Missing) != len(jobs) {
		t.Fatalf("empty spool: %+v", rep)
	}

	// Commit one, quarantine one: incomplete (one point still missing)
	// but with no conflicts or orphans.
	row := []string{"1", "2", "3", "4", "5", "6", "7"}
	if _, err := sp.CommitResult(&Result{Hash: jobs[0].Hash(), Job: jobs[0], Row: row}); err != nil {
		t.Fatal(err)
	}
	if err := sp.Quarantine(&QuarantineEntry{Hash: jobs[1].Hash(), Job: jobs[1]}); err != nil {
		t.Fatal(err)
	}
	rep, err = Audit(dir)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Complete() || len(rep.Missing) != len(jobs)-2 || len(rep.Conflicts) != 0 || len(rep.Orphans) != 0 {
		t.Fatalf("partial spool: %+v", rep)
	}

	// Finish the rest: complete.
	for _, j := range jobs[2:] {
		if _, err := sp.CommitResult(&Result{Hash: j.Hash(), Job: j, Row: row}); err != nil {
			t.Fatal(err)
		}
	}
	rep, err = Audit(dir)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Complete() {
		t.Fatalf("finished spool not complete: %+v", rep)
	}

	// A job both committed and quarantined is a conflict.
	if err := sp.Quarantine(&QuarantineEntry{Hash: jobs[0].Hash(), Job: jobs[0]}); err != nil {
		t.Fatal(err)
	}
	rep, err = Audit(dir)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Clean() || len(rep.Conflicts) != 1 {
		t.Fatalf("conflict not detected: %+v", rep)
	}

	// A result for a job outside the campaign is an orphan.
	stray := JobSpec{Kind: KindSweep, ConfigHash: c.ConfigHash, Index: 99, QPS: 99000}
	if _, err := sp.CommitResult(&Result{Hash: stray.Hash(), Job: stray, Row: row}); err != nil {
		t.Fatal(err)
	}
	rep, err = Audit(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Orphans) != 1 || !strings.Contains(rep.Orphans[0], stray.Hash()) {
		t.Fatalf("orphan not detected: %+v", rep)
	}
}

func TestCampaignJobsDeterministic(t *testing.T) {
	c := testCampaign(t)
	a, err := c.Jobs()
	if err != nil {
		t.Fatal(err)
	}
	b, err := c.Jobs()
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != 3 {
		t.Fatalf("expanded %d jobs, want 3", len(a))
	}
	for i := range a {
		if a[i].Hash() != b[i].Hash() {
			t.Fatalf("job %d hash unstable", i)
		}
	}
	// Distinct points must never collide.
	seen := map[string]bool{}
	for _, j := range a {
		if seen[j.Hash()] {
			t.Fatalf("hash collision at %s", j.Key())
		}
		seen[j.Hash()] = true
	}
}
