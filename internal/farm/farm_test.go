package farm

// Integration tests over the real worker binary: the dispatcher runs
// in-process (so summaries and options are directly inspectable) and
// spawns actual `uqsim-farm -worker` subprocesses, which it crashes,
// hangs, and SIGKILLs. The acceptance bar is the determinism contract:
// whatever the farm survives, the merged output must be byte-identical
// to a serial run.

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"uqsim/internal/experiments"
)

var (
	workerBinOnce sync.Once
	workerBinPath string
	workerBinErr  error
)

// workerBin builds cmd/uqsim-farm once per test process.
func workerBin(t *testing.T) string {
	t.Helper()
	workerBinOnce.Do(func() {
		root, err := filepath.Abs(filepath.Join("..", ".."))
		if err != nil {
			workerBinErr = err
			return
		}
		dir, err := os.MkdirTemp("", "uqsim-farm-bin")
		if err != nil {
			workerBinErr = err
			return
		}
		workerBinPath = filepath.Join(dir, "uqsim-farm")
		cmd := exec.Command("go", "build", "-o", workerBinPath, "./cmd/uqsim-farm")
		cmd.Dir = root
		if out, err := cmd.CombinedOutput(); err != nil {
			workerBinErr = err
			workerBinPath = string(out)
		}
	})
	if workerBinErr != nil {
		t.Fatalf("building worker binary: %v\n%s", workerBinErr, workerBinPath)
	}
	return workerBinPath
}

func workerArgv(t *testing.T, cfgDir string) []string {
	return []string{workerBin(t), "-worker", "-config", cfgDir, "-heartbeat", "200ms"}
}

// serialCSV computes the sweep the slow way — one point after another in
// one process — as the byte-identity reference.
func serialCSV(t *testing.T, cfgDir string, from, to, step float64) string {
	t.Helper()
	table := experiments.SweepTable(cfgDir)
	for _, qps := range experiments.SweepGrid(from, to, step) {
		row, err := experiments.SweepRow(cfgDir, qps)
		if err != nil {
			t.Fatal(err)
		}
		table.Add(row...)
	}
	return table.CSV()
}

func mergedCSV(t *testing.T, spool string) string {
	t.Helper()
	m, err := Merge(spool)
	if err != nil {
		t.Fatal(err)
	}
	return m.Table.CSV()
}

func auditComplete(t *testing.T, spool string) {
	t.Helper()
	rep, err := Audit(spool)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Complete() {
		t.Fatalf("journal audit failed:\n%s", rep)
	}
}

// TestFarmChaosMonkeyByteIdentical is the acceptance test: four workers,
// the dispatcher's chaos monkey SIGKILLing randomly chosen busy workers
// mid-lease, and the merged CSV must still equal the serial sweep byte
// for byte, with the journal accounting for every job exactly once.
func TestFarmChaosMonkeyByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns worker subprocesses")
	}
	cfgDir := testConfigDir(t, "twotier")
	const from, to, step = 18000, 28000, 2000
	c, err := NewSweepCampaign(cfgDir, from, to, step)
	if err != nil {
		t.Fatal(err)
	}
	spool := t.TempDir()
	sum, err := Run(Options{
		Spool:       spool,
		Workers:     4,
		WorkerArgv:  workerArgv(t, cfgDir),
		LeaseTTL:    5 * time.Second,
		JobTimeout:  2 * time.Minute,
		KillWorkers: 3,
		Seed:        7,
		Logf:        t.Logf,
	}, c)
	if err != nil {
		t.Fatal(err)
	}
	if sum.Kills != 3 {
		t.Fatalf("chaos monkey killed %d workers, want 3", sum.Kills)
	}
	if sum.Interrupted || sum.Quarantined != 0 {
		t.Fatalf("summary: %+v", sum)
	}
	if got := sum.Committed + sum.Skipped; got != sum.Jobs {
		t.Fatalf("committed %d + skipped %d != %d jobs", sum.Committed, sum.Skipped, sum.Jobs)
	}
	auditComplete(t, spool)
	want := serialCSV(t, cfgDir, from, to, step)
	if got := mergedCSV(t, spool); got != want {
		t.Fatalf("merged CSV diverged from serial run\n--- farm ---\n%s--- serial ---\n%s", got, want)
	}
}

// TestFarmResumeByteIdentical interrupts a campaign mid-flight, then
// resumes it with a different worker count; the final merge must equal
// the serial run and skip every journaled job.
func TestFarmResumeByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns worker subprocesses")
	}
	cfgDir := testConfigDir(t, "twotier")
	const from, to, step = 17000, 26000, 1000
	c, err := NewSweepCampaign(cfgDir, from, to, step)
	if err != nil {
		t.Fatal(err)
	}
	spool := t.TempDir()

	deadline := time.Now().Add(1200 * time.Millisecond)
	first, err := Run(Options{
		Spool:       spool,
		Workers:     2,
		WorkerArgv:  workerArgv(t, cfgDir),
		LeaseTTL:    5 * time.Second,
		Interrupted: func() bool { return time.Now().After(deadline) },
		Logf:        t.Logf,
	}, c)
	if err != nil {
		t.Fatal(err)
	}
	if !first.Interrupted && first.Committed == first.Jobs {
		t.Log("first run finished before the interrupt; resume degenerates to a no-op")
	}

	second, err := Run(Options{
		Spool:      spool,
		Workers:    4,
		WorkerArgv: workerArgv(t, cfgDir),
		LeaseTTL:   5 * time.Second,
		Resume:     true,
		Logf:       t.Logf,
	}, c)
	if err != nil {
		t.Fatal(err)
	}
	if second.Skipped != first.Committed {
		t.Fatalf("resume skipped %d jobs; first run committed %d", second.Skipped, first.Committed)
	}
	if second.Skipped+second.Committed != second.Jobs {
		t.Fatalf("resume accounting: %+v", second)
	}
	auditComplete(t, spool)
	want := serialCSV(t, cfgDir, from, to, step)
	if got := mergedCSV(t, spool); got != want {
		t.Fatalf("resumed merge diverged from serial run\n--- farm ---\n%s--- serial ---\n%s", got, want)
	}

	// Running again without -resume must refuse: the journal already
	// holds this campaign.
	if _, err := Run(Options{
		Spool: spool, Workers: 1, WorkerArgv: workerArgv(t, cfgDir),
	}, c); err == nil || !strings.Contains(err.Error(), "-resume") {
		t.Fatalf("rerun without resume: %v", err)
	}
}

// TestFarmPoisonQuarantine crashes one job's worker on every attempt; the
// job must be quarantined after MaxFailures tries with its full failure
// history, the rest of the campaign must finish, and the quarantined spec
// must replay cleanly in isolation once the hook is gone.
func TestFarmPoisonQuarantine(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns worker subprocesses")
	}
	cfgDir := testConfigDir(t, "twotier")
	t.Setenv(EnvTestCrash, "sweep:21000@99") // every attempt at that point dies
	c, err := NewSweepCampaign(cfgDir, 20000, 23000, 1000)
	if err != nil {
		t.Fatal(err)
	}
	spool := t.TempDir()
	sum, err := Run(Options{
		Spool:       spool,
		Workers:     2,
		WorkerArgv:  workerArgv(t, cfgDir),
		LeaseTTL:    5 * time.Second,
		MaxFailures: 3,
		Logf:        t.Logf,
	}, c)
	if err != nil {
		t.Fatal(err)
	}
	if sum.Quarantined != 1 || sum.Committed != sum.Jobs-1 {
		t.Fatalf("summary: %+v", sum)
	}

	sp, err := OpenSpoolDir(spool)
	if err != nil {
		t.Fatal(err)
	}
	quar, err := sp.Quarantined()
	if err != nil {
		t.Fatal(err)
	}
	if len(quar) != 1 {
		t.Fatalf("quarantine entries: %d", len(quar))
	}
	var entry *QuarantineEntry
	for _, q := range quar {
		entry = q
	}
	if entry.Job.Key() != "sweep:21000" || len(entry.Failures) != 3 {
		t.Fatalf("quarantine entry: %+v", entry)
	}
	for i, f := range entry.Failures {
		if f.Attempt != i+1 || !strings.Contains(f.Reason, "exit status 3") {
			t.Fatalf("failure %d: %+v", i, f)
		}
	}

	// The merge marks the campaign partial and names the poison job.
	m, err := Merge(spool)
	if err != nil {
		t.Fatal(err)
	}
	if m.Complete() || len(m.Quarantined) != 1 || m.Quarantined[0] != "sweep:21000" {
		t.Fatalf("merge: quarantined=%v complete=%v", m.Quarantined, m.Complete())
	}

	// Replay the quarantined spec in-process (no worker, no crash hook
	// path): it is an ordinary job and must produce the serial row.
	ex, err := NewExecutor(cfgDir)
	if err != nil {
		t.Fatal(err)
	}
	res, err := ex.Execute(entry.Job)
	if err != nil {
		t.Fatal(err)
	}
	want, err := experiments.SweepRow(cfgDir, 21000)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Join(res.Row, ",") != strings.Join(want, ",") {
		t.Fatalf("replayed row %v, want %v", res.Row, want)
	}
}

// TestFarmHangWatchdogRequeues hangs one job's first attempt with
// heartbeats still flowing; only the per-job wall-clock watchdog can kill
// it. The retry must succeed and the merge must match the serial run.
func TestFarmHangWatchdogRequeues(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns worker subprocesses")
	}
	cfgDir := testConfigDir(t, "twotier")
	t.Setenv(EnvTestHang, "sweep:19000@1") // first attempt hangs, second runs
	const from, to, step = 19000, 21000, 1000
	c, err := NewSweepCampaign(cfgDir, from, to, step)
	if err != nil {
		t.Fatal(err)
	}
	spool := t.TempDir()
	sum, err := Run(Options{
		Spool:      spool,
		Workers:    2,
		WorkerArgv: workerArgv(t, cfgDir),
		LeaseTTL:   5 * time.Second,
		JobTimeout: 2 * time.Second,
		Logf:       t.Logf,
	}, c)
	if err != nil {
		t.Fatal(err)
	}
	if sum.Requeues < 1 {
		t.Fatalf("hung job never requeued: %+v", sum)
	}
	if sum.Quarantined != 0 || sum.Committed != sum.Jobs {
		t.Fatalf("summary: %+v", sum)
	}
	auditComplete(t, spool)
	want := serialCSV(t, cfgDir, from, to, step)
	if got := mergedCSV(t, spool); got != want {
		t.Fatalf("merge after hang diverged from serial run\n--- farm ---\n%s--- serial ---\n%s", got, want)
	}
}
