package farm

import (
	"fmt"
	"time"
)

// queue is the dispatcher's lease-based job queue. It is purely
// in-memory state over the durable spool: pending jobs wait in FIFO
// order, a leased job belongs to exactly one worker until it completes,
// fails, or its lease expires, and a job that fails maxFail consecutive
// attempts is handed back for quarantine instead of being requeued
// forever. All methods take an explicit now so unit tests drive the
// clock; the queue itself is not goroutine-safe — the dispatcher's event
// loop is its single caller.
type queue struct {
	pending  []*jobState
	byHash   map[string]*jobState
	byWorker map[int]*jobState
	maxFail  int
}

// jobState tracks one job through queued → leased → (committed |
// requeued | quarantined).
type jobState struct {
	spec JobSpec
	hash string
	// worker is the lease holder (-1 when unleased).
	worker int
	// expiry is when the lease lapses without a heartbeat.
	expiry time.Time
	// deadline is the per-job wall-clock watchdog: a job still running
	// past it is considered hung even if heartbeats keep arriving.
	deadline time.Time
	// attempt counts dispatches (1 = first try); failures records every
	// failed attempt so the quarantine entry explains itself.
	attempt  int
	failures []FailureRecord
}

func newQueue(jobs []JobSpec, done map[string]*Result, quarantined map[string]*QuarantineEntry, maxFail int) *queue {
	q := &queue{
		byHash:   make(map[string]*jobState),
		byWorker: make(map[int]*jobState),
		maxFail:  maxFail,
	}
	for _, spec := range jobs {
		hash := spec.Hash()
		if done[hash] != nil || quarantined[hash] != nil {
			continue // journal says finished: resume skips it
		}
		js := &jobState{spec: spec, hash: hash, worker: -1}
		q.pending = append(q.pending, js)
		q.byHash[hash] = js
	}
	return q
}

// remaining counts jobs not yet finished (pending plus leased).
func (q *queue) remaining() int { return len(q.byHash) }

// idle reports whether nothing is pending or leased.
func (q *queue) idle() bool { return len(q.byHash) == 0 }

// hasPending reports whether a lease could be granted right now.
func (q *queue) hasPending() bool { return len(q.pending) > 0 }

// lease hands the next pending job to worker until now+ttl, with the
// per-job wall-clock deadline now+jobTimeout. Returns nil when nothing is
// pending or the worker already holds a lease.
func (q *queue) lease(worker int, now time.Time, ttl, jobTimeout time.Duration) *jobState {
	if len(q.pending) == 0 || q.byWorker[worker] != nil {
		return nil
	}
	js := q.pending[0]
	q.pending = q.pending[1:]
	js.worker = worker
	js.expiry = now.Add(ttl)
	js.deadline = now.Add(jobTimeout)
	js.attempt++
	q.byWorker[worker] = js
	return js
}

// heartbeat extends the lease of the job worker is running. A heartbeat
// for a job the worker no longer holds (expired and requeued) is stale
// and ignored.
func (q *queue) heartbeat(worker int, hash string, now time.Time, ttl time.Duration) bool {
	js := q.byWorker[worker]
	if js == nil || js.hash != hash {
		return false
	}
	js.expiry = now.Add(ttl)
	return true
}

// complete removes the job worker reported finished and returns it. A
// stale completion — the lease expired and the job was requeued or
// finished elsewhere — returns nil; the caller still commits the result
// (commits are idempotent) but must not treat the worker as the lease
// holder.
func (q *queue) complete(worker int, hash string) *jobState {
	js := q.byWorker[worker]
	if js == nil || js.hash != hash {
		return nil
	}
	delete(q.byWorker, worker)
	delete(q.byHash, hash)
	return js
}

// finished removes a job wherever it is — pending or leased to any
// worker — because its result was just committed (possibly by a stale
// duplicate completion). Returns the worker that held it, or -1.
func (q *queue) finished(hash string) int {
	js := q.byHash[hash]
	if js == nil {
		return -1
	}
	delete(q.byHash, hash)
	if js.worker >= 0 {
		delete(q.byWorker, js.worker)
		return js.worker
	}
	for i, p := range q.pending {
		if p == js {
			q.pending = append(q.pending[:i], q.pending[i+1:]...)
			break
		}
	}
	return -1
}

// fail records a failed attempt of worker's leased job and either
// requeues it (at the back, preserving FIFO fairness) or — after maxFail
// consecutive failures — withdraws it as poison. Exactly one of requeued
// and poison is set; both nil means the worker held no lease, so there is
// nothing to fail (this is what makes "requeue exactly once" hold when a
// lease expiry and the subsequent worker kill race).
func (q *queue) fail(worker int, reason string, now time.Time) (requeued *jobState, poison *jobState) {
	js := q.byWorker[worker]
	if js == nil {
		return nil, nil
	}
	delete(q.byWorker, worker)
	js.worker = -1
	js.failures = append(js.failures, FailureRecord{Attempt: js.attempt, Reason: reason})
	if len(js.failures) >= q.maxFail {
		delete(q.byHash, js.hash)
		return nil, js
	}
	q.pending = append(q.pending, js)
	return js, nil
}

// expired returns the workers whose lease lapsed (no heartbeat before
// expiry) or whose job overran its wall-clock deadline, with the reason.
// The caller fails the job and kills the worker.
func (q *queue) expired(now time.Time) []expiry {
	var out []expiry
	for worker, js := range q.byWorker {
		switch {
		case now.After(js.deadline):
			out = append(out, expiry{worker, fmt.Sprintf("job %s exceeded its wall-clock budget", js.spec.Key())})
		case now.After(js.expiry):
			out = append(out, expiry{worker, fmt.Sprintf("lease on job %s expired without a heartbeat", js.spec.Key())})
		}
	}
	return out
}

type expiry struct {
	worker int
	reason string
}

// quarantineEntry renders a poisoned job for the journal.
func (js *jobState) quarantineEntry() *QuarantineEntry {
	return &QuarantineEntry{Hash: js.hash, Job: js.spec, Failures: js.failures}
}
