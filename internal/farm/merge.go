package farm

import (
	"fmt"

	"uqsim/internal/chaos"
	"uqsim/internal/experiments"
)

// Merged is a campaign's results reassembled in campaign order. Because
// every job is deterministic and the merge iterates the campaign's own
// expansion — never the completion order — the merged table of a farm run
// is byte-identical to a serial run, at any worker count, with workers
// dying mid-campaign.
type Merged struct {
	Campaign *Campaign
	// Table is the sweep table (experiments.SweepColumns rows) or the
	// chaos-campaign summary.
	Table *experiments.Table
	// Entries are the chaos corpus artifacts, in trial order.
	Entries []*chaos.Entry
	// Violations counts chaos trials whose invariants broke.
	Violations int
	// Missing are jobs with neither a result nor a quarantine entry;
	// Quarantined are the withdrawn poison jobs.
	Missing     []string
	Quarantined []string
}

// Complete reports whether every job committed (no gaps, no poison).
func (m *Merged) Complete() bool { return len(m.Missing) == 0 && len(m.Quarantined) == 0 }

// Merge replays the spool journal into campaign-order results.
func Merge(spoolDir string) (*Merged, error) {
	sp, err := OpenSpoolDir(spoolDir)
	if err != nil {
		return nil, err
	}
	c := sp.Campaign()
	jobs, err := c.Jobs()
	if err != nil {
		return nil, err
	}
	committed, err := sp.Committed()
	if err != nil {
		return nil, err
	}
	quarantined, err := sp.Quarantined()
	if err != nil {
		return nil, err
	}
	m := &Merged{Campaign: c}
	switch c.Kind {
	case KindSweep:
		m.Table = experiments.SweepTable(c.ConfigDir)
	case KindChaos:
		m.Table = experiments.NewTable(
			fmt.Sprintf("Chaos search of %s (seed %d)", c.ConfigDir, c.Seed),
			"trial", "events", "violation", "events_shrunk", "detail")
	}
	for _, j := range jobs {
		hash := j.Hash()
		r := committed[hash]
		if r == nil {
			if _, ok := quarantined[hash]; ok {
				m.Quarantined = append(m.Quarantined, j.Key())
			} else {
				m.Missing = append(m.Missing, j.Key())
			}
			continue
		}
		switch c.Kind {
		case KindSweep:
			if len(r.Row) != len(m.Table.Columns) {
				return nil, fmt.Errorf("farm: result %s carries %d cells for %d columns", j.Key(), len(r.Row), len(m.Table.Columns))
			}
			m.Table.Add(r.Row...)
		case KindChaos:
			out := r.Chaos
			if out == nil {
				return nil, fmt.Errorf("farm: chaos result %s carries no outcome", j.Key())
			}
			violation, detail := "ok", ""
			if out.Violation != "" {
				violation, detail = out.Violation, out.Detail
				m.Violations++
				if out.Entry != nil {
					m.Entries = append(m.Entries, out.Entry)
				}
			}
			m.Table.Add(
				fmt.Sprintf("%d", j.Index),
				fmt.Sprintf("%d", out.Events),
				violation,
				fmt.Sprintf("%d", out.EventsAfter),
				detail,
			)
		}
	}
	if !m.Complete() {
		m.Table.Note = fmt.Sprintf("PARTIAL: %d jobs missing, %d quarantined", len(m.Missing), len(m.Quarantined))
	}
	return m, nil
}

// WriteCSV writes the merged table atomically.
func (m *Merged) WriteCSV(path string) error {
	return writeAtomic(path, []byte(m.Table.CSV()))
}

// WriteCorpus archives the chaos entries under dir, exactly as a serial
// search would have (chaos.ArchiveEntry: atomic files, meta.json last).
func (m *Merged) WriteCorpus(dir string) error {
	for _, e := range m.Entries {
		if _, err := chaos.ArchiveEntry(dir, e); err != nil {
			return err
		}
	}
	return nil
}
