package farm

import (
	"bytes"
	"encoding/json"
	"testing"
)

// FuzzFarmJournal throws arbitrary bytes at the three journal decoders —
// the only code that reads spool files back — plus the campaign expander
// behind them. The resilience claims under test: no panic on any input,
// bounded expansion (a hostile campaign.json cannot allocate a million
// jobs), hash binding (a decoded record always matches its spec), and a
// clean encode→decode round trip for every accepted document.
func FuzzFarmJournal(f *testing.F) {
	f.Add([]byte(`{"kind":"sweep","config_dir":"configs/twotier","config_hash":"abc","from_qps":1000,"to_qps":3000,"step_qps":1000}`))
	f.Add([]byte(`{"kind":"chaos","config_dir":"configs/metastable","config_hash":"abc","seed":5,"trials":8}`))
	spec := JobSpec{Kind: KindSweep, ConfigHash: "abc", Index: 0, QPS: 1000}
	if data, err := json.Marshal(&Result{Hash: spec.Hash(), Job: spec, Row: []string{"1", "2", "3", "4", "5", "6", "7"}}); err == nil {
		f.Add(data)
	}
	if data, err := json.Marshal(&QuarantineEntry{Hash: spec.Hash(), Job: spec, Failures: []FailureRecord{{Attempt: 1, Reason: "x"}}}); err == nil {
		f.Add(data)
	}
	f.Add([]byte(`{"kind":"sweep","config_dir":"d","config_hash":"h","from_qps":1e308,"to_qps":1.7e308,"step_qps":1e-300}`))
	f.Add([]byte(`{"kind":"chaos","config_dir":"d","config_hash":"h","trials":2097152}`))
	// step below the float ulp at the grid magnitude: must be rejected,
	// not looped on forever.
	f.Add([]byte(`{"kind":"sweep","config_dir":"d","config_hash":"h","from_qps":1e16,"to_qps":10000000000000004,"step_qps":1}`))
	f.Add([]byte(`not json at all`))
	f.Add([]byte(`{}`))

	f.Fuzz(func(t *testing.T, data []byte) {
		if c, err := DecodeCampaign(data); err == nil {
			jobs, err := c.Jobs()
			if err != nil {
				t.Fatalf("validated campaign failed to expand: %v", err)
			}
			if len(jobs) > MaxJobs {
				t.Fatalf("campaign expanded to %d jobs past the %d bound", len(jobs), MaxJobs)
			}
			for _, j := range jobs {
				if j.ConfigHash != c.ConfigHash {
					t.Fatal("job spec lost the campaign's config hash")
				}
			}
			// Round trip: the re-encoded campaign must decode to the same
			// expansion (spool reopening byte-compares campaign.json).
			re, err := json.Marshal(c)
			if err != nil {
				t.Fatalf("re-encoding: %v", err)
			}
			c2, err := DecodeCampaign(re)
			if err != nil {
				t.Fatalf("round trip rejected: %v", err)
			}
			jobs2, err := c2.Jobs()
			if err != nil || len(jobs2) != len(jobs) {
				t.Fatalf("round trip changed the expansion: %d vs %d (%v)", len(jobs), len(jobs2), err)
			}
			for i := range jobs {
				if jobs[i].Hash() != jobs2[i].Hash() {
					t.Fatalf("round trip changed job %d's hash", i)
				}
			}
		}
		if r, err := DecodeResult(data); err == nil {
			if r.Hash != r.Job.Hash() {
				t.Fatal("decoded result with unbound hash")
			}
			re, err := json.MarshalIndent(r, "", "  ")
			if err != nil {
				t.Fatalf("re-encoding result: %v", err)
			}
			if _, err := DecodeResult(re); err != nil {
				t.Fatalf("result round trip rejected: %v", err)
			}
		}
		if q, err := DecodeQuarantine(data); err == nil {
			if q.Hash != q.Job.Hash() {
				t.Fatal("decoded quarantine entry with unbound hash")
			}
		}
		// The dispatch/worker wire messages share the journal's decoding
		// discipline; they must never panic either.
		var dm dispatchMsg
		_ = json.Unmarshal(data, &dm)
		var wm workerMsg
		if err := json.NewDecoder(bytes.NewReader(data)).Decode(&wm); err == nil && wm.Result != nil {
			_ = wm.Result.Job.Hash()
		}
	})
}
