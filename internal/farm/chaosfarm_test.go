package farm

import (
	"os"
	"path/filepath"
	"testing"
	"time"

	"uqsim/internal/chaos"
)

// TestFarmChaosCampaignMatchesSerial distributes a chaos search across
// workers and checks the other half of the determinism contract: the
// merged corpus — every artifact file — is byte-identical to archiving
// the same trials serially in one process.
func TestFarmChaosCampaignMatchesSerial(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns worker subprocesses")
	}
	cfgDir := testConfigDir(t, "metastable")
	const seed, trials = 5, 3

	// Serial reference: run the trials in-process and archive findings
	// exactly as cmd/uqsim-chaos would.
	h, err := chaos.NewHarness(chaos.Options{ConfigDir: cfgDir, Seed: seed, Trials: trials})
	if err != nil {
		t.Fatal(err)
	}
	serialCorpus := filepath.Join(t.TempDir(), "serial")
	violations := 0
	for i := 0; i < trials; i++ {
		tr, err := h.Trial(i)
		if err != nil {
			t.Fatal(err)
		}
		if tr.Entry != nil {
			violations++
			if _, err := chaos.ArchiveEntry(serialCorpus, tr.Entry); err != nil {
				t.Fatal(err)
			}
		}
	}

	c, err := NewChaosCampaign(cfgDir, seed, trials, 0)
	if err != nil {
		t.Fatal(err)
	}
	spool := t.TempDir()
	sum, err := Run(Options{
		Spool:      spool,
		Workers:    3,
		WorkerArgv: workerArgv(t, cfgDir),
		LeaseTTL:   10 * time.Second,
		Logf:       t.Logf,
	}, c)
	if err != nil {
		t.Fatal(err)
	}
	if sum.Committed != trials || sum.Violations != violations {
		t.Fatalf("summary: %+v (want %d violations)", sum, violations)
	}
	auditComplete(t, spool)

	m, err := Merge(spool)
	if err != nil {
		t.Fatal(err)
	}
	if m.Violations != violations || len(m.Entries) != violations {
		t.Fatalf("merge: violations=%d entries=%d, want %d", m.Violations, len(m.Entries), violations)
	}
	farmCorpus := filepath.Join(t.TempDir(), "farm")
	if err := m.WriteCorpus(farmCorpus); err != nil {
		t.Fatal(err)
	}

	serialEntries, err := chaos.Entries(serialCorpus)
	if err != nil {
		t.Fatal(err)
	}
	farmEntries, err := chaos.Entries(farmCorpus)
	if err != nil {
		t.Fatal(err)
	}
	if len(serialEntries) != len(farmEntries) || len(serialEntries) != violations {
		t.Fatalf("corpus sizes: serial=%d farm=%d", len(serialEntries), len(farmEntries))
	}
	for i := range serialEntries {
		if filepath.Base(serialEntries[i]) != filepath.Base(farmEntries[i]) {
			t.Fatalf("entry %d: %s vs %s", i, serialEntries[i], farmEntries[i])
		}
		for _, file := range []string{"meta.json", "faults.json"} {
			want, err := os.ReadFile(filepath.Join(serialEntries[i], file))
			if err != nil {
				t.Fatal(err)
			}
			got, err := os.ReadFile(filepath.Join(farmEntries[i], file))
			if err != nil {
				t.Fatal(err)
			}
			if string(want) != string(got) {
				t.Fatalf("%s/%s diverged between serial and farm corpus:\n--- serial ---\n%s\n--- farm ---\n%s",
					filepath.Base(serialEntries[i]), file, want, got)
			}
		}
	}
}
