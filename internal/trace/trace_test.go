package trace

import (
	"strings"
	"testing"

	"uqsim/internal/cluster"
	"uqsim/internal/des"
	"uqsim/internal/dist"
	"uqsim/internal/graph"
	"uqsim/internal/job"
	"uqsim/internal/service"
	"uqsim/internal/sim"
	"uqsim/internal/workload"
)

// buildTraced assembles a 2-service chain with a tracer attached.
func buildTraced(t *testing.T, sampleEvery int) (*sim.Sim, *Tracer) {
	t.Helper()
	s := sim.New(sim.Options{Seed: 9})
	s.AddMachine("m0", 8, cluster.FreqSpec{})
	for _, svc := range []struct {
		name string
		cost float64
	}{{"front", float64(100 * des.Microsecond)}, {"back", float64(300 * des.Microsecond)}} {
		if _, err := s.Deploy(service.SingleStage(svc.name, dist.NewDeterministic(svc.cost)),
			sim.RoundRobin, sim.Placement{Machine: "m0", Cores: 1}); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.SetTopology(graph.Linear("main", "front", "back")); err != nil {
		t.Fatal(err)
	}
	s.SetClient(sim.ClientConfig{Pattern: workload.ConstantRate(1000), Proc: workload.Uniform})
	tr := New(sampleEvery)
	s.OnJobDone = tr.OnJobDone
	s.OnRequestDone = tr.OnRequestDone
	return s, tr
}

func TestTracerRecordsSpans(t *testing.T) {
	s, tr := buildTraced(t, 1)
	if _, err := s.Run(0, 100*des.Millisecond); err != nil {
		t.Fatal(err)
	}
	traces := tr.Traces()
	if len(traces) < 90 {
		t.Fatalf("traces = %d, want ≈100", len(traces))
	}
	r := traces[0]
	if len(r.Spans) != 2 {
		t.Fatalf("spans = %d, want 2", len(r.Spans))
	}
	if r.Latency() != 400*des.Microsecond {
		t.Fatalf("latency %v, want 400µs", r.Latency())
	}
	crit, ok := r.CriticalSpan()
	if !ok || crit.Service != "back" {
		t.Fatalf("critical span %v, want back", crit.Service)
	}
	if crit.Residence() != 300*des.Microsecond {
		t.Fatalf("critical residence %v", crit.Residence())
	}
	if crit.Instance != "back-0" {
		t.Fatalf("instance %q", crit.Instance)
	}
}

func TestTracerSampling(t *testing.T) {
	s, tr := buildTraced(t, 10)
	if _, err := s.Run(0, 100*des.Millisecond); err != nil {
		t.Fatal(err)
	}
	n := len(tr.Traces())
	if n < 8 || n > 12 {
		t.Fatalf("sampled %d of ≈100 at 1/10", n)
	}
}

func TestTracerSlowestOrdering(t *testing.T) {
	s, tr := buildTraced(t, 1)
	if _, err := s.Run(0, 100*des.Millisecond); err != nil {
		t.Fatal(err)
	}
	slowest := tr.Slowest(5)
	if len(slowest) != 5 {
		t.Fatalf("slowest = %d", len(slowest))
	}
	for i := 1; i < len(slowest); i++ {
		if slowest[i].Latency() > slowest[i-1].Latency() {
			t.Fatal("slowest not sorted descending")
		}
	}
}

func TestTracerBoundedRetention(t *testing.T) {
	s, tr := buildTraced(t, 1)
	tr.MaxTraces = 10
	if _, err := s.Run(0, 100*des.Millisecond); err != nil {
		t.Fatal(err)
	}
	if len(tr.Traces()) > 10 {
		t.Fatalf("retention unbounded: %d", len(tr.Traces()))
	}
}

func TestWaterfallRendering(t *testing.T) {
	s, tr := buildTraced(t, 1)
	if _, err := s.Run(0, 10*des.Millisecond); err != nil {
		t.Fatal(err)
	}
	w := tr.Traces()[0].Waterfall()
	for _, want := range []string{"request", "front", "back", "residence"} {
		if !strings.Contains(w, want) {
			t.Fatalf("waterfall missing %q:\n%s", want, w)
		}
	}
}

func TestCriticalSpanEmpty(t *testing.T) {
	r := &Request{}
	if _, ok := r.CriticalSpan(); ok {
		t.Fatal("empty request should have no critical span")
	}
}

func TestTracerIgnoresNilRequestJobs(t *testing.T) {
	tr := New(1)
	tr.OnJobDone(0, &job.Job{}, "x")
	if tr.Sampled() != 0 {
		t.Fatal("nil-request jobs must be ignored")
	}
}

func TestNewClampsSampleEvery(t *testing.T) {
	if New(0).SampleEvery != 1 {
		t.Fatal("sampleEvery should clamp to 1")
	}
}
