// Package trace reconstructs per-request execution waterfalls from the
// simulator's job-completion stream — the microservices-debugging use case
// the paper motivates (finding which tier on the critical path caused an
// end-to-end QoS violation).
//
// Wire a Tracer to sim.Sim via its OnJobDone and OnRequestDone hooks; it
// samples one out of every SampleEvery requests and records a span per
// path-node visit (service, instance, queueing vs processing split).
package trace

import (
	"fmt"
	"sort"
	"strings"

	"uqsim/internal/des"
	"uqsim/internal/job"
)

// Span is one path-node execution within a request.
type Span struct {
	Service  string
	Instance string
	Node     int
	// Outcome classifies the span: OK for a normal completion, Timeout
	// for an attempt whose caller gave up before the service finished.
	Outcome job.Outcome
	// Enqueued/Started/Finished are the service-local timestamps:
	// Enqueued→Started is the final stage's queueing delay,
	// Arrived→Finished the full residence.
	Arrived  des.Time
	Started  des.Time
	Finished des.Time
}

// Residence is the span's total time inside the instance.
func (s Span) Residence() des.Time { return s.Finished - s.Arrived }

// Request is one traced request.
type Request struct {
	ID      job.ID
	Class   int
	Arrival des.Time
	Finish  des.Time
	Spans   []Span
}

// Latency is the request's end-to-end latency.
func (r *Request) Latency() des.Time { return r.Finish - r.Arrival }

// CriticalSpan returns the span with the largest residence — the first
// tier to inspect when the request violated its QoS.
func (r *Request) CriticalSpan() (Span, bool) {
	if len(r.Spans) == 0 {
		return Span{}, false
	}
	best := r.Spans[0]
	for _, s := range r.Spans[1:] {
		if s.Residence() > best.Residence() {
			best = s
		}
	}
	return best, true
}

// Waterfall renders the request as an indented text timeline.
func (r *Request) Waterfall() string {
	var b strings.Builder
	fmt.Fprintf(&b, "request %d (class %d): %v → %v  latency %v\n",
		r.ID, r.Class, r.Arrival, r.Finish, r.Latency())
	spans := append([]Span(nil), r.Spans...)
	sort.Slice(spans, func(i, j int) bool { return spans[i].Arrived < spans[j].Arrived })
	for _, s := range spans {
		fmt.Fprintf(&b, "  %8s..%-8s  %-14s @%-14s node=%d residence=%v",
			(s.Arrived - r.Arrival).String(), (s.Finished - r.Arrival).String(),
			s.Service, s.Instance, s.Node, s.Residence())
		if s.Outcome != job.OutcomeOK {
			fmt.Fprintf(&b, " [%s]", s.Outcome)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// Tracer samples and assembles request traces.
type Tracer struct {
	// SampleEvery records one of every N requests (default 1: all).
	SampleEvery int
	// MaxTraces bounds retained traces (default 4096, oldest dropped).
	MaxTraces int

	open    map[job.ID]*Request
	skipped map[job.ID]bool
	done    []*Request
	seen    uint64
	missed  uint64
}

// New creates a tracer sampling one of every sampleEvery requests.
func New(sampleEvery int) *Tracer {
	if sampleEvery < 1 {
		sampleEvery = 1
	}
	return &Tracer{
		SampleEvery: sampleEvery,
		MaxTraces:   4096,
		open:        make(map[job.ID]*Request),
		skipped:     make(map[job.ID]bool),
	}
}

// OnJobDone records one service-local job completion. Wire to
// sim.Sim.OnJobDone.
func (t *Tracer) OnJobDone(now des.Time, j *job.Job, service string) {
	if j.Req == nil {
		return
	}
	t.noteRequest(j.Req)
	r, ok := t.open[j.Req.ID]
	if !ok {
		return // unsampled
	}
	r.Spans = append(r.Spans, Span{
		Service:  service,
		Instance: j.Instance,
		Node:     j.NodeID,
		Outcome:  j.Outcome,
		Arrived:  j.Arrived,
		Started:  j.Started,
		Finished: j.Finished,
	})
}

// noteRequest decides (once) whether a request is sampled.
func (t *Tracer) noteRequest(req *job.Request) {
	if _, ok := t.open[req.ID]; ok {
		return
	}
	if t.skipped[req.ID] {
		return
	}
	t.seen++
	if t.SampleEvery > 1 && t.seen%uint64(t.SampleEvery) != 0 {
		t.missed++
		t.skipped[req.ID] = true
		return
	}
	t.open[req.ID] = &Request{
		ID:      req.ID,
		Class:   req.Class,
		Arrival: req.Arrival,
	}
}

// OnRequestDone finalizes a traced request. Wire to sim.Sim.OnRequestDone.
func (t *Tracer) OnRequestDone(now des.Time, req *job.Request) {
	delete(t.skipped, req.ID)
	r, ok := t.open[req.ID]
	if !ok {
		return
	}
	delete(t.open, req.ID)
	r.Finish = now
	t.done = append(t.done, r)
	if t.MaxTraces > 0 && len(t.done) > t.MaxTraces {
		t.done = t.done[len(t.done)-t.MaxTraces:]
	}
}

// Traces returns the completed traces, oldest first.
func (t *Tracer) Traces() []*Request { return t.done }

// Slowest returns the n completed traces with the highest latency,
// slowest first.
func (t *Tracer) Slowest(n int) []*Request {
	out := append([]*Request(nil), t.done...)
	sort.Slice(out, func(i, j int) bool { return out[i].Latency() > out[j].Latency() })
	if n < len(out) {
		out = out[:n]
	}
	return out
}

// Sampled reports how many requests were recorded.
func (t *Tracer) Sampled() int { return len(t.done) + len(t.open) }
