package service

import (
	"testing"

	"uqsim/internal/des"
	"uqsim/internal/dist"
	"uqsim/internal/job"
	"uqsim/internal/queueing"
)

// TestKillDropsQueuedAndInFlight: a kill drains the queues immediately and
// invalidates the in-flight stage; every lost job surfaces exactly once
// (queued via Kill's return, in-flight via OnJobDrop).
func TestKillDropsQueuedAndInFlight(t *testing.T) {
	h := newHarness(t, 4)
	in := h.deploy(t, singleStageBP("svc", float64(des.Millisecond)), 1)
	var dropped []*job.Job
	in.OnJobDrop = func(now des.Time, j *job.Job) { dropped = append(dropped, j) }

	// 3 jobs: one executes (1ms stage), two queue behind it.
	for i := 0; i < 3; i++ {
		in.Enqueue(0, h.newJob())
	}
	h.eng.RunUntil(100 * des.Microsecond) // first job now mid-stage
	lost := in.Kill(h.eng.Now())
	if len(lost) != 2 {
		t.Fatalf("kill returned %d queued jobs, want 2", len(lost))
	}
	if !in.Down() {
		t.Fatal("instance should be down")
	}
	h.eng.Run() // the stale completion event fires and drops the runner
	if len(dropped) != 1 {
		t.Fatalf("%d in-flight drops, want 1", len(dropped))
	}
	if len(h.done) != 0 {
		t.Fatalf("%d jobs completed on a killed instance", len(h.done))
	}
	if got := in.Dropped(); got != 3 {
		t.Fatalf("Dropped() = %d, want 3", got)
	}
	if in.InFlight() != 0 {
		t.Fatalf("in-flight %d after kill drain", in.InFlight())
	}
}

// TestRestartServesAgain: after Restart the instance processes new work,
// and completion events from the pre-kill epoch stay dead.
func TestRestartServesAgain(t *testing.T) {
	h := newHarness(t, 4)
	in := h.deploy(t, singleStageBP("svc", float64(des.Millisecond)), 1)
	in.OnJobDrop = func(des.Time, *job.Job) {}

	in.Enqueue(0, h.newJob())
	h.eng.RunUntil(100 * des.Microsecond)
	in.Kill(h.eng.Now())
	in.Restart(200 * des.Microsecond)
	if in.Down() {
		t.Fatal("restart left the instance down")
	}
	fresh := h.newJob()
	if res := in.Admit(h.eng.Now(), fresh); res != Admitted {
		t.Fatalf("admit after restart: %v", res)
	}
	h.eng.Run()
	if len(h.done) != 1 || h.done[0] != fresh {
		t.Fatalf("restarted instance completed %d jobs", len(h.done))
	}
}

// TestAdmitShedsAtMaxQueue: queue-length load shedding rejects arrivals
// beyond MaxQueue instead of queueing unboundedly.
func TestAdmitShedsAtMaxQueue(t *testing.T) {
	h := newHarness(t, 4)
	in := h.deploy(t, singleStageBP("svc", float64(des.Millisecond)), 1)
	in.MaxQueue = 2

	admitted, shed := 0, 0
	for i := 0; i < 10; i++ {
		switch in.Admit(0, h.newJob()) {
		case Admitted:
			admitted++
		case RejectedQueue:
			shed++
		default:
			t.Fatal("unexpected rejection")
		}
	}
	// One job starts immediately (queue empties), two queue, rest shed.
	if shed == 0 || admitted+shed != 10 {
		t.Fatalf("admitted %d shed %d", admitted, shed)
	}
	if in.Shed() != uint64(shed) {
		t.Fatalf("Shed() = %d, want %d", in.Shed(), shed)
	}
	h.eng.Run()
	if len(h.done) != admitted {
		t.Fatalf("completed %d of %d admitted", len(h.done), admitted)
	}
}

// TestAdmitRejectsDownInstance: routing to a killed instance refuses the
// job rather than queueing it into a black hole.
func TestAdmitRejectsDownInstance(t *testing.T) {
	h := newHarness(t, 4)
	in := h.deploy(t, singleStageBP("svc", float64(des.Microsecond)), 1)
	in.Kill(0)
	if res := in.Admit(0, h.newJob()); res != RejectedDown {
		t.Fatalf("admit on down instance: %v", res)
	}
	// Direct Enqueue on a down instance is a wiring bug.
	defer func() {
		if recover() == nil {
			t.Fatal("Enqueue on down instance should panic")
		}
	}()
	in.Enqueue(0, h.newJob())
}

// poolBP is a two-stage blueprint whose second stage runs on the machine's
// "disk" pool.
func poolBP(cost float64) *Blueprint {
	return &Blueprint{
		Name: "db",
		Stages: []StageSpec{
			{Name: "cpu", Queue: queueing.KindSingle, PerJob: dist.NewDeterministic(cost)},
			{Name: "io", Queue: queueing.KindSingle, PerJob: dist.NewDeterministic(cost), PoolName: "disk"},
		},
		Paths: []PathSpec{{Name: "rw", Stages: []int{0, 1}}},
		Model: ModelSimple,
	}
}

// TestKillMidPoolStageReleasesPoolOnce: a job dying mid-I/O must release
// its pool unit exactly once — no leak (unit held forever) and no
// double-release (underflow panic) — and the pool must be reusable after
// the instance restarts.
func TestKillMidPoolStageReleasesPoolOnce(t *testing.T) {
	h := newHarness(t, 4)
	pool := h.mach.AddPool("disk", 1)
	in := h.deploy(t, poolBP(float64(des.Millisecond)), 1)
	in.OnJobDrop = func(des.Time, *job.Job) {}

	in.Enqueue(0, h.newJob())
	// Run past the CPU stage into the I/O stage.
	h.eng.RunUntil(1500 * des.Microsecond)
	if pool.InUse() != 1 {
		t.Fatalf("pool in use %d, want 1 (job mid-I/O)", pool.InUse())
	}
	in.Kill(h.eng.Now())
	h.eng.Run() // stale I/O completion fires: releases the unit, drops the job
	if pool.InUse() != 0 {
		t.Fatalf("pool in use %d after drain, want 0", pool.InUse())
	}
	if len(h.done) != 0 {
		t.Fatal("killed job completed")
	}

	// The pool is usable again after restart.
	in.Restart(h.eng.Now())
	in.Enqueue(h.eng.Now(), h.newJob())
	h.eng.Run()
	if len(h.done) != 1 {
		t.Fatalf("post-restart job did not complete (%d done)", len(h.done))
	}
	if pool.InUse() != 0 {
		t.Fatalf("pool in use %d at the end", pool.InUse())
	}
}

// TestThreadedKillRestoresThreadPool: a threaded instance killed with jobs
// holding threads must come back with its full thread pool.
func TestThreadedKillRestoresThreadPool(t *testing.T) {
	h := newHarness(t, 2)
	bp := singleStageBP("svc", float64(des.Millisecond))
	bp.Model = ModelThreaded
	bp.Threads = 2
	in := h.deploy(t, bp, 1)
	in.OnJobDrop = func(des.Time, *job.Job) {}

	// 4 jobs: 2 take threads (1 on the core, 1 waiting), 2 wait for threads.
	for i := 0; i < 4; i++ {
		in.Enqueue(0, h.newJob())
	}
	h.eng.RunUntil(100 * des.Microsecond)
	in.Kill(h.eng.Now())
	h.eng.Run()
	in.Restart(h.eng.Now())

	// All threads available again: two fresh jobs proceed concurrently.
	in.Enqueue(h.eng.Now(), h.newJob())
	in.Enqueue(h.eng.Now(), h.newJob())
	h.eng.Run()
	if len(h.done) != 2 {
		t.Fatalf("post-restart completed %d, want 2", len(h.done))
	}
	if in.InFlight() != 0 {
		t.Fatalf("in-flight %d", in.InFlight())
	}
}
