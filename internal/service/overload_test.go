package service

import (
	"testing"

	"uqsim/internal/des"
	"uqsim/internal/fault"
	"uqsim/internal/job"
)

const msNs = float64(des.Millisecond)

// TestCanceledEntryJobsDiscardedAtDequeue: a canceled job must never be
// served — it is discarded when a worker would have picked it up, and the
// instance accounts it as canceled-early, not completed.
func TestCanceledEntryJobsDiscardedAtDequeue(t *testing.T) {
	h := newHarness(t, 1)
	in := h.deploy(t, singleStageBP("svc", msNs), 1)
	dead := make(map[job.ID]bool)
	in.IsCanceled = func(j *job.Job) bool { return dead[j.ID] }

	var jobs []*job.Job
	h.eng.At(0, func(now des.Time) {
		for i := 0; i < 5; i++ {
			j := h.newJob()
			jobs = append(jobs, j)
			in.Enqueue(now, j)
		}
	})
	// While the first job is being served, cancel two queued ones.
	h.eng.At(des.Time(msNs/2), func(des.Time) {
		dead[jobs[2].ID] = true
		dead[jobs[3].ID] = true
	})
	h.eng.Run()
	if len(h.done) != 3 {
		t.Fatalf("done = %d, want 3", len(h.done))
	}
	if in.CanceledEarly() != 2 {
		t.Fatalf("canceled = %d, want 2", in.CanceledEarly())
	}
	if in.Completed() != 3 || in.InFlight() != 0 {
		t.Fatalf("completed=%d inflight=%d", in.Completed(), in.InFlight())
	}
	// Conservation at the instance level.
	if in.Arrived() != in.Completed()+in.CanceledEarly() {
		t.Fatal("instance conservation")
	}
}

// TestCanceledJobAlreadyStartedRunsToWaste: cancellation is lazy — a job
// already occupying a core finishes and is counted as wasted work.
func TestCanceledJobAlreadyStartedRunsToWaste(t *testing.T) {
	h := newHarness(t, 1)
	in := h.deploy(t, singleStageBP("svc", msNs), 1)
	in.IsCanceled = func(j *job.Job) bool { return j.Outcome == job.OutcomeCanceled }
	var j *job.Job
	h.eng.At(0, func(now des.Time) {
		j = h.newJob()
		in.Enqueue(now, j)
	})
	h.eng.At(des.Time(msNs/2), func(des.Time) { j.Outcome = job.OutcomeCanceled })
	h.eng.Run()
	if in.WastedWork() != 1 || in.CanceledEarly() != 0 {
		t.Fatalf("wasted=%d canceled=%d", in.WastedWork(), in.CanceledEarly())
	}
	if in.Completed() != 1 {
		t.Fatal("started work must run to completion")
	}
}

// TestCoDelShedsStaleBacklog: with a CoDel discipline a standing backlog
// is shed once the sojourn stays above target for an interval, and every
// shed job is reported through OnJobShed.
func TestCoDelShedsStaleBacklog(t *testing.T) {
	h := newHarness(t, 1)
	in := h.deploy(t, singleStageBP("svc", msNs), 1)
	if err := in.SetDiscipline(fault.QueueDiscipline{
		Kind:     fault.QueueCoDel,
		Target:   des.Millisecond / 10,
		Interval: des.Millisecond,
	}); err != nil {
		t.Fatal(err)
	}
	var shed []*job.Job
	in.OnJobShed = func(now des.Time, j *job.Job) { shed = append(shed, j) }

	// Offer 3x capacity for 30ms: 1ms service on one core vs one job
	// every 1/3ms.
	for i := 0; i < 90; i++ {
		at := des.Time(float64(i) * msNs / 3)
		h.eng.At(at, func(now des.Time) { in.Enqueue(now, h.newJob()) })
	}
	h.eng.Run()
	if len(shed) == 0 {
		t.Fatal("persistent overload must shed")
	}
	if uint64(len(shed)) != in.Shed() {
		t.Fatalf("callback count %d vs counter %d", len(shed), in.Shed())
	}
	if in.Arrived() != in.Completed()+in.Shed()+uint64(in.InFlight()) {
		t.Fatalf("conservation: %d != %d+%d+%d",
			in.Arrived(), in.Completed(), in.Shed(), in.InFlight())
	}
	// Shed jobs carry zero service: they must never have started.
	for _, j := range shed {
		if j.Started != 0 {
			t.Fatal("shed a started job")
		}
	}
}

// TestAdaptiveLIFOServesNewestUnderOverload: once the head is stale the
// newest arrival is served first.
func TestAdaptiveLIFOServesNewestUnderOverload(t *testing.T) {
	h := newHarness(t, 1)
	in := h.deploy(t, singleStageBP("svc", msNs), 1)
	if err := in.SetDiscipline(fault.QueueDiscipline{
		Kind:   fault.QueueLIFO,
		Target: des.Millisecond / 2,
	}); err != nil {
		t.Fatal(err)
	}
	// Five jobs at t=0: the first is served FIFO; by the time the worker
	// frees up (1ms) the head has waited 1ms > 0.5ms target, so the
	// newest queued job is served next.
	var jobs []*job.Job
	h.eng.At(0, func(now des.Time) {
		for i := 0; i < 5; i++ {
			j := h.newJob()
			jobs = append(jobs, j)
			in.Enqueue(now, j)
		}
	})
	h.eng.Run()
	if len(h.done) != 5 {
		t.Fatalf("done = %d", len(h.done))
	}
	if h.done[0] != jobs[0] {
		t.Fatal("first job should be served FIFO (queue was fresh)")
	}
	if h.done[1] != jobs[4] {
		t.Fatalf("second served should be the newest, got job %d", h.done[1].ID)
	}
}

// TestLIFORejectsNonFIFOEntryQueue: adaptive LIFO needs PopTail, which
// only the single queue provides.
func TestLIFORejectsNonFIFOEntryQueue(t *testing.T) {
	h := newHarness(t, 1)
	bp := singleStageBP("svc", msNs)
	bp.Stages[0].Queue = "epoll"
	bp.Stages[0].PerConn = 1
	in := h.deploy(t, bp, 1)
	if err := in.SetDiscipline(fault.QueueDiscipline{Kind: fault.QueueLIFO}); err == nil {
		t.Fatal("want error for epoll entry queue")
	}
	if err := in.SetDiscipline(fault.QueueDiscipline{Kind: fault.QueueCoDel}); err != nil {
		t.Fatalf("codel should not need a FIFO queue: %v", err)
	}
}

// TestDisciplineThreadedModel: the vetting also guards the threaded
// model's thread queue.
func TestDisciplineThreadedModel(t *testing.T) {
	h := newHarness(t, 1)
	bp := singleStageBP("svc", msNs)
	bp.Model = ModelThreaded
	bp.Threads = 1
	in := h.deploy(t, bp, 1)
	dead := make(map[job.ID]bool)
	in.IsCanceled = func(j *job.Job) bool { return dead[j.ID] }
	var jobs []*job.Job
	h.eng.At(0, func(now des.Time) {
		for i := 0; i < 3; i++ {
			j := h.newJob()
			jobs = append(jobs, j)
			in.Enqueue(now, j)
		}
	})
	h.eng.At(des.Time(msNs/2), func(des.Time) { dead[jobs[1].ID] = true })
	h.eng.Run()
	if in.CanceledEarly() != 1 || in.Completed() != 2 || in.InFlight() != 0 {
		t.Fatalf("canceled=%d completed=%d inflight=%d",
			in.CanceledEarly(), in.Completed(), in.InFlight())
	}
}
