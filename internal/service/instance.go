package service

import (
	"fmt"

	"uqsim/internal/cluster"
	"uqsim/internal/des"
	"uqsim/internal/fault"
	"uqsim/internal/job"
	"uqsim/internal/queueing"
	"uqsim/internal/rng"
	"uqsim/internal/stats"
)

// Instance is one deployed copy of a microservice blueprint, pinned to a
// core allocation on a machine, processing jobs on a DES engine.
type Instance struct {
	BP    *Blueprint
	Name  string
	Alloc *cluster.Allocation

	eng des.Scheduler
	r   *rng.Source

	queues []queueing.Queue

	// Simple-model + threaded-model core accounting.
	busyCores int

	// pumpPending coalesces same-instant dispatch attempts.
	pumpPending bool

	// Fault state: down marks a killed instance; epoch invalidates
	// completion events scheduled before the kill (their callbacks see a
	// stale epoch and report the job dropped instead of completed).
	// downSince stamps the kill instant so failure detectors can measure
	// their detection lag against ground truth.
	down      bool
	downSince des.Time
	epoch     uint64

	// MaxQueue, when positive, sheds arrivals once QueueLen reaches it —
	// saturation then degrades gracefully (bounded queueing delay, fast
	// rejections) instead of unboundedly.
	MaxQueue int

	// OnJobDrop fires for every job lost to a kill: jobs drained from
	// queues at kill time, and in-flight jobs reported when their stale
	// completion events fire. Set by the sim layer to propagate failure
	// upstream.
	OnJobDrop func(now des.Time, j *job.Job)

	// OnJobShed fires for every entry job shed by the CoDel discipline at
	// dequeue time (unlike MaxQueue sheds, the job had been admitted). Set
	// by the sim layer to fail the attempt upstream.
	OnJobShed func(now des.Time, j *job.Job)

	// IsCanceled, when set, is consulted for every entry job at dequeue:
	// a true return discards the job unserved (its request already
	// terminated — deadline expiry, client timeout, or a lost hedge race).
	// Lazy cancellation at dequeue keeps enqueue O(1) while guaranteeing
	// no core is ever spent on work nobody wants.
	IsCanceled func(j *job.Job) bool

	// Overload admission discipline for entry jobs (first path stage).
	disc  fault.QueueDiscipline
	codel *fault.CoDel

	// Threaded-model state.
	idleThreads int
	threadQ     *queueing.FIFO // jobs waiting for a thread
	coreQ       *queueing.FIFO // jobs (holding threads) waiting for a core
	poolQ       map[string]*queueing.FIFO

	// OnJobDone fires when a job completes its service-local path. Set
	// by the sim layer to route the job to downstream path nodes.
	OnJobDone func(now des.Time, j *job.Job)

	// Metrics.
	arrived    uint64
	completed  uint64
	shed       uint64
	dropped    uint64
	canceled   uint64 // entry jobs discarded unserved (dead request / lost hedge)
	wasted     uint64 // jobs served to completion whose result was discarded
	inFlight   int
	residence  *stats.LatencyHist
	stageWait  []*stats.LatencyHist
	busyNsAcc  float64
	lastChange des.Time
}

// NewInstance deploys bp as name on the given allocation and engine, with a
// dedicated random stream. The blueprint must validate.
func NewInstance(eng des.Scheduler, bp *Blueprint, name string, alloc *cluster.Allocation, r *rng.Source) (*Instance, error) {
	if err := bp.Validate(); err != nil {
		return nil, err
	}
	if alloc == nil || alloc.Cores < 1 {
		return nil, fmt.Errorf("service %s: needs a core allocation", name)
	}
	in := &Instance{
		BP:        bp,
		Name:      name,
		Alloc:     alloc,
		eng:       eng,
		r:         r,
		residence: stats.NewLatencyHist(),
	}
	in.queues = make([]queueing.Queue, len(bp.Stages))
	in.stageWait = make([]*stats.LatencyHist, len(bp.Stages))
	for i, s := range bp.Stages {
		in.queues[i] = queueing.New(s.Queue, s.PerConn)
		in.stageWait[i] = stats.NewLatencyHist()
	}
	if bp.Model == ModelThreaded {
		in.idleThreads = bp.Threads
		in.threadQ = queueing.NewFIFO()
		in.coreQ = queueing.NewFIFO()
		in.poolQ = make(map[string]*queueing.FIFO)
	}
	return in, nil
}

// AdmitResult reports what Admit did with a job.
type AdmitResult int

// Admission outcomes.
const (
	// Admitted: the job entered the instance's queues.
	Admitted AdmitResult = iota
	// RejectedDown: the instance is killed; the connection is refused.
	RejectedDown
	// RejectedQueue: load shedding — the queue is at MaxQueue.
	RejectedQueue
)

// Admit offers a job to the instance, applying fault and load-shedding
// admission control: a down instance refuses it, a full one (MaxQueue)
// sheds it. Callers that route jobs should use Admit and handle rejection;
// Enqueue panics on a down instance.
func (in *Instance) Admit(now des.Time, j *job.Job) AdmitResult {
	if in.down {
		return RejectedDown
	}
	if in.MaxQueue > 0 && in.QueueLen() >= in.MaxQueue {
		in.shed++
		return RejectedQueue
	}
	in.Enqueue(now, j)
	return Admitted
}

// Enqueue admits a job into the instance. The job's PathID selects the
// execution path; out-of-range paths panic (a wiring bug, not load).
func (in *Instance) Enqueue(now des.Time, j *job.Job) {
	if j.PathID < 0 || j.PathID >= len(in.BP.Paths) {
		panic(fmt.Sprintf("service %s: job %d has path %d of %d",
			in.Name, j.ID, j.PathID, len(in.BP.Paths)))
	}
	if in.down {
		panic(fmt.Sprintf("service %s: enqueue on a down instance (route via Admit)", in.Name))
	}
	in.arrived++
	in.inFlight++
	j.Arrived = now
	j.Enqueued = now
	j.StageIdx = 0
	switch in.BP.Model {
	case ModelThreaded:
		in.threadQ.Push(j)
		in.schedulePump(now)
	default:
		in.pushToStage(now, j)
		in.schedulePump(now)
	}
}

// schedulePump defers worker dispatch to an event at the current time, so
// that all jobs arriving at the same instant are visible to one batch pop —
// the simulator analogue of epoll_wait collecting every ready event before
// the worker runs.
func (in *Instance) schedulePump(now des.Time) {
	if in.pumpPending {
		return
	}
	in.pumpPending = true
	in.eng.Post(now, func(t des.Time) {
		in.pumpPending = false
		if in.BP.Model == ModelThreaded {
			in.pumpThreaded(t)
		} else {
			in.pumpSimple(t)
		}
	})
}

// pushToStage places j into the queue of its current path stage.
func (in *Instance) pushToStage(now des.Time, j *job.Job) {
	path := in.BP.Paths[j.PathID]
	stage := path.Stages[j.StageIdx]
	j.Enqueued = now
	in.queues[stage].Push(j)
}

// ---- overload admission ----

// SetDiscipline installs the entry-queue overload discipline (CoDel
// sojourn shedding and/or adaptive LIFO ordering). Must be called before
// the run starts; LIFO kinds require a plain FIFO entry queue.
func (in *Instance) SetDiscipline(d fault.QueueDiscipline) error {
	if err := d.Validate(); err != nil {
		return err
	}
	if d.LIFO() && in.BP.Model != ModelThreaded {
		for i, s := range in.BP.Stages {
			if in.entryStage(i) && s.Queue != queueing.KindSingle {
				return fmt.Errorf("service %s: adaptive LIFO needs a %q entry queue, stage %d is %q",
					in.Name, queueing.KindSingle, i, s.Queue)
			}
		}
	}
	in.disc = d.WithDefaults()
	if d.Sheds() {
		in.codel = fault.NewCoDel(d)
	} else {
		in.codel = nil
	}
	return nil
}

// Discipline reports the installed entry-queue discipline.
func (in *Instance) Discipline() fault.QueueDiscipline { return in.disc }

// entryStage reports whether blueprint stage s is the first stage of any
// execution path — the stage whose queue holds not-yet-started jobs.
func (in *Instance) entryStage(s int) bool {
	for _, p := range in.BP.Paths {
		if len(p.Stages) > 0 && p.Stages[0] == s {
			return true
		}
	}
	return false
}

// entryJob reports whether j is still at its admission point: first path
// stage, no processing done. Only such jobs may be vetted — once work has
// been invested the job runs to completion (and is counted wasted if its
// result turns out to be unwanted).
func entryJob(j *job.Job) bool { return j.StageIdx == 0 && j.Started == 0 }

// overloadActive reports whether any dequeue-time vetting is configured.
func (in *Instance) overloadActive() bool {
	return in.IsCanceled != nil || in.codel != nil || in.disc.LIFO()
}

// popEntry pops up to max jobs from q, applying the overload controls to
// entry jobs: canceled jobs are discarded, CoDel sheds stale heads, and
// adaptive LIFO serves the newest job while the head's sojourn exceeds
// the target. Non-entry jobs (later path stages) pass through untouched.
// Returns nil once the queue has drained; with no controls configured it
// degrades to a plain PopBatch, preserving batch amortization.
func (in *Instance) popEntry(now des.Time, q queueing.Queue, max int) []*job.Job {
	if !in.overloadActive() {
		return q.PopBatch(max)
	}
	for q.Len() > 0 {
		batch := in.popOrdered(now, q, max)
		kept := batch[:0]
		for _, j := range batch {
			if !entryJob(j) {
				kept = append(kept, j)
				continue
			}
			if in.IsCanceled != nil && in.IsCanceled(j) {
				in.canceled++
				in.inFlight--
				continue
			}
			if in.codel != nil && in.codel.OnDequeue(now, now-j.Enqueued) {
				in.shed++
				in.inFlight--
				if in.OnJobShed != nil {
					in.OnJobShed(now, j)
				}
				continue
			}
			kept = append(kept, j)
		}
		if len(kept) > 0 {
			return kept
		}
	}
	return nil
}

// popOrdered applies the adaptive-LIFO flip: while the oldest entry job
// has waited longer than the target, the newest job is served first —
// fresh requests can still meet their deadlines, stale ones mostly
// cannot. Otherwise the queue's native batch discipline applies.
func (in *Instance) popOrdered(now des.Time, q queueing.Queue, max int) []*job.Job {
	if in.disc.LIFO() {
		if f, ok := q.(*queueing.FIFO); ok {
			if head := f.Peek(); head != nil && entryJob(head) && now-head.Enqueued > in.disc.Target {
				return []*job.Job{f.PopTail()}
			}
		}
	}
	return q.PopBatch(max)
}

// ---- simple (event-driven) model ----

func (in *Instance) pumpSimple(now des.Time) {
	if in.down {
		return
	}
	progress := true
	for progress {
		progress = false
		for s := len(in.BP.Stages) - 1; s >= 0; s-- {
			st := &in.BP.Stages[s]
			q := in.queues[s]
			if q.Len() == 0 {
				continue
			}
			if st.PoolName != "" {
				pool := in.mustPool(st.PoolName)
				for q.Len() > 0 && pool.TryAcquire() {
					batch := in.popEntry(now, q, 1)
					if len(batch) == 0 {
						pool.Release()
						break
					}
					in.startPoolStage(now, s, batch[0], pool)
					progress = true
				}
				continue
			}
			for q.Len() > 0 && in.busyCores < in.Alloc.Cores {
				batch := in.popEntry(now, q, in.batchMax(st))
				if len(batch) == 0 {
					break
				}
				in.startCPUBatch(now, s, batch)
				progress = true
			}
		}
	}
}

func (in *Instance) batchMax(st *StageSpec) int {
	if !st.Batching {
		return 1
	}
	return st.BatchLimit
}

func (in *Instance) mustPool(name string) *cluster.Pool {
	pool, ok := in.Alloc.Machine.Pool(name)
	if !ok {
		panic(fmt.Sprintf("service %s: machine %s has no pool %q",
			in.Name, in.Alloc.Machine.Name, name))
	}
	return pool
}

// startCPUBatch occupies one core for the batch's sampled duration.
func (in *Instance) startCPUBatch(now des.Time, stage int, batch []*job.Job) {
	in.noteWait(now, stage, batch)
	in.setBusy(now, in.busyCores+1)
	dur := in.sampleCost(stage, batch, false)
	epoch := in.epoch
	in.eng.Post(now+dur, func(t des.Time) {
		if in.epoch != epoch {
			// The instance was killed mid-stage: the work is lost.
			in.dropBatch(t, batch)
			return
		}
		in.setBusy(t, in.busyCores-1)
		in.advanceBatch(t, batch)
		in.pumpSimple(t)
	})
}

// startPoolStage occupies one pool unit (e.g. a disk spindle) for one job.
func (in *Instance) startPoolStage(now des.Time, stage int, j *job.Job, pool *cluster.Pool) {
	in.noteWait(now, stage, []*job.Job{j})
	dur := in.sampleCost(stage, []*job.Job{j}, true)
	epoch := in.epoch
	in.eng.Post(now+dur, func(t des.Time) {
		// The pool unit is freed exactly once — here — whether or not
		// the instance survived; a kill must never double-release it.
		pool.Release()
		if in.epoch != epoch {
			in.dropBatch(t, []*job.Job{j})
			in.pumpSimple(t) // a queued job may be waiting for the unit
			return
		}
		in.advanceBatch(t, []*job.Job{j})
		in.pumpSimple(t)
	})
}

// ---- threaded (blocking) model ----

func (in *Instance) pumpThreaded(now des.Time) {
	if in.down {
		return
	}
	// Assign idle threads to waiting jobs. Everything in threadQ is an
	// entry job, so the overload vetting applies to each pop.
	for in.idleThreads > 0 && in.threadQ.Len() > 0 {
		batch := in.popEntry(now, in.threadQ, 1)
		if len(batch) == 0 {
			return
		}
		in.idleThreads--
		in.runThreadedStage(now, batch[0])
	}
}

// runThreadedStage executes j's current stage; j holds a thread.
func (in *Instance) runThreadedStage(now des.Time, j *job.Job) {
	path := in.BP.Paths[j.PathID]
	stage := path.Stages[j.StageIdx]
	st := &in.BP.Stages[stage]
	if st.PoolName != "" {
		pool := in.mustPool(st.PoolName)
		if !pool.TryAcquire() {
			q, ok := in.poolQ[st.PoolName]
			if !ok {
				q = queueing.NewFIFO()
				in.poolQ[st.PoolName] = q
			}
			j.Enqueued = now
			q.Push(j)
			return
		}
		in.noteWait(now, stage, []*job.Job{j})
		dur := in.sampleCost(stage, []*job.Job{j}, true)
		epoch := in.epoch
		in.eng.Post(now+dur, func(t des.Time) {
			pool.Release()
			if in.epoch != epoch {
				in.dropBatch(t, []*job.Job{j})
				in.wakePoolWaiter(t, st.PoolName, pool)
				return
			}
			in.wakePoolWaiter(t, st.PoolName, pool)
			in.finishThreadedStage(t, j)
		})
		return
	}
	if in.busyCores >= in.Alloc.Cores {
		j.Enqueued = now
		in.coreQ.Push(j)
		return
	}
	in.noteWait(now, stage, []*job.Job{j})
	in.setBusy(now, in.busyCores+1)
	dur := in.sampleCost(stage, []*job.Job{j}, false)
	if in.BP.Threads > in.Alloc.Cores && in.BP.CtxSwitch > 0 {
		dur += in.BP.CtxSwitch
	}
	epoch := in.epoch
	in.eng.Post(now+dur, func(t des.Time) {
		if in.epoch != epoch {
			in.dropBatch(t, []*job.Job{j})
			return
		}
		in.setBusy(t, in.busyCores-1)
		in.wakeCoreWaiter(t)
		in.finishThreadedStage(t, j)
	})
}

func (in *Instance) wakeCoreWaiter(now des.Time) {
	if in.down {
		return
	}
	if in.coreQ.Len() > 0 && in.busyCores < in.Alloc.Cores {
		in.runThreadedStage(now, in.coreQ.Pop())
	}
}

func (in *Instance) wakePoolWaiter(now des.Time, name string, pool *cluster.Pool) {
	if in.down {
		return
	}
	if q, ok := in.poolQ[name]; ok && q.Len() > 0 && pool.InUse() < pool.Capacity {
		in.runThreadedStage(now, q.Pop())
	}
}

// finishThreadedStage advances j past its current stage.
func (in *Instance) finishThreadedStage(now des.Time, j *job.Job) {
	path := in.BP.Paths[j.PathID]
	j.StageIdx++
	if j.StageIdx < len(path.Stages) {
		in.runThreadedStage(now, j)
		return
	}
	// Path complete: release the thread, admit the next waiter.
	in.idleThreads++
	in.completeJob(now, j)
	in.pumpThreaded(now)
}

// ---- fault handling ----

// Kill takes the instance down: queued jobs are drained and returned (the
// caller propagates their failure upstream), in-flight work is invalidated
// via the epoch — when a stale completion event fires, its jobs are
// reported through OnJobDrop instead of completing. Killing an
// already-down instance is a no-op returning nil.
func (in *Instance) Kill(now des.Time) []*job.Job {
	if in.down {
		return nil
	}
	in.down = true
	in.downSince = now
	in.epoch++
	in.setBusy(now, 0)
	var lost []*job.Job
	for _, q := range in.queues {
		for q.Len() > 0 {
			lost = append(lost, q.PopBatch(0)...)
		}
	}
	if in.BP.Model == ModelThreaded {
		for in.threadQ.Len() > 0 {
			lost = append(lost, in.threadQ.Pop())
		}
		for in.coreQ.Len() > 0 {
			lost = append(lost, in.coreQ.Pop())
		}
		for _, q := range in.poolQ {
			for q.Len() > 0 {
				lost = append(lost, q.Pop())
			}
		}
		in.idleThreads = 0
	}
	in.dropped += uint64(len(lost))
	in.inFlight -= len(lost)
	return lost
}

// Restart brings a killed instance back with empty queues and a full
// thread pool. No-op when the instance is up.
func (in *Instance) Restart(now des.Time) {
	if !in.down {
		return
	}
	in.down = false
	in.lastChange = now
	if in.BP.Model == ModelThreaded {
		in.idleThreads = in.BP.Threads
	}
}

// Down reports whether the instance is currently killed.
func (in *Instance) Down() bool { return in.down }

// DownSince reports when the instance was last killed (meaningful only
// while Down). Failure detectors use it to compute detection lag.
func (in *Instance) DownSince() des.Time { return in.downSince }

// dropBatch accounts jobs lost to a kill and notifies the sim layer.
func (in *Instance) dropBatch(now des.Time, batch []*job.Job) {
	in.dropped += uint64(len(batch))
	in.inFlight -= len(batch)
	for _, j := range batch {
		if in.OnJobDrop != nil {
			in.OnJobDrop(now, j)
		}
	}
}

// ---- shared mechanics ----

// advanceBatch moves each job in a simple-model batch to its next stage, or
// completes it.
func (in *Instance) advanceBatch(now des.Time, batch []*job.Job) {
	for _, j := range batch {
		path := in.BP.Paths[j.PathID]
		j.StageIdx++
		if j.StageIdx < len(path.Stages) {
			in.pushToStage(now, j)
		} else {
			in.completeJob(now, j)
		}
	}
}

func (in *Instance) completeJob(now des.Time, j *job.Job) {
	j.Finished = now
	in.completed++
	in.inFlight--
	if j.Outcome != job.OutcomeOK || (j.Req != nil && j.Req.Failed) {
		// The caller stopped waiting (expired deadline, lost hedge
		// race, dead request) while this job was being served: the
		// cores it burned produced a result nobody will read. Client
		// timeouts are excluded — those responses are still delivered
		// and accounted at the timeout value.
		in.wasted++
	}
	in.residence.Record(now - j.Arrived)
	if j.Req != nil {
		j.Req.AddTierLatency(in.BP.Name, now-j.Arrived)
	}
	if in.OnJobDone != nil {
		in.OnJobDone(now, j)
	}
}

// sampleCost draws the batch's processing duration at the current DVFS
// setting. Pool (I/O) stages are not frequency-scaled.
func (in *Instance) sampleCost(stage int, batch []*job.Job, isPool bool) des.Time {
	st := &in.BP.Stages[stage]
	freq := in.Alloc.Freq()
	total := 0.0
	if st.BaseTable != nil {
		total += st.BaseTable.SampleAt(freq, in.r)
	} else if st.Base != nil {
		total += st.Base.Sample(in.r)
	}
	perJobTable := st.PerJobTable
	for _, j := range batch {
		if perJobTable != nil {
			total += perJobTable.SampleAt(freq, in.r)
		} else if st.PerJob != nil {
			total += st.PerJob.Sample(in.r)
		}
		total += st.PerKB * j.SizeKB
	}
	// Tables already encode the frequency dependence; raw samplers are
	// scaled linearly. I/O is frequency-independent.
	if !isPool && st.BaseTable == nil && st.PerJobTable == nil {
		total *= in.Alloc.SpeedFactor()
	}
	return des.FromNanos(total)
}

func (in *Instance) noteWait(now des.Time, stage int, batch []*job.Job) {
	for _, j := range batch {
		if j.Started == 0 {
			j.Started = now
		}
		in.stageWait[stage].Record(now - j.Enqueued)
	}
}

func (in *Instance) setBusy(now des.Time, n int) {
	in.busyNsAcc += float64(in.busyCores) * float64(now-in.lastChange)
	in.lastChange = now
	in.busyCores = n
}

// ---- introspection ----

// Arrived reports admitted jobs.
func (in *Instance) Arrived() uint64 { return in.arrived }

// Completed reports jobs that finished their service-local path.
func (in *Instance) Completed() uint64 { return in.completed }

// Shed reports arrivals rejected by MaxQueue load shedding.
func (in *Instance) Shed() uint64 { return in.shed }

// Dropped reports jobs lost to kills (queued and in-flight).
func (in *Instance) Dropped() uint64 { return in.dropped }

// CanceledEarly reports entry jobs discarded at dequeue because their
// request had already terminated — queueing capacity reclaimed with zero
// service cost.
func (in *Instance) CanceledEarly() uint64 { return in.canceled }

// WastedWork reports jobs served to completion whose result was discarded
// because the caller had stopped waiting.
func (in *Instance) WastedWork() uint64 { return in.wasted }

// InFlight reports jobs currently inside the instance.
func (in *Instance) InFlight() int { return in.inFlight }

// QueueLen reports the total number of queued jobs across stages (plus
// thread/core wait queues in the threaded model).
func (in *Instance) QueueLen() int {
	n := 0
	for _, q := range in.queues {
		n += q.Len()
	}
	if in.BP.Model == ModelThreaded {
		n += in.threadQ.Len() + in.coreQ.Len()
		for _, q := range in.poolQ {
			n += q.Len()
		}
	}
	return n
}

// Residence returns the histogram of service residence times (queueing +
// processing inside this instance).
func (in *Instance) Residence() *stats.LatencyHist { return in.residence }

// StageWait returns the queue-delay histogram of the given stage.
func (in *Instance) StageWait(stage int) *stats.LatencyHist { return in.stageWait[stage] }

// Utilization reports mean core occupancy in [0,1] up to virtual time now.
func (in *Instance) Utilization(now des.Time) float64 {
	if now <= 0 {
		return 0
	}
	acc := in.busyNsAcc + float64(in.busyCores)*float64(now-in.lastChange)
	return acc / (float64(in.Alloc.Cores) * float64(now))
}

// BusyTime reports accumulated busy core-time up to virtual time now.
// Deltas between two calls give windowed utilization — the signal
// reactive autoscalers act on, where the cumulative mean of Utilization
// would lag the present by the whole run.
func (in *Instance) BusyTime(now des.Time) des.Time {
	return des.Time(in.busyNsAcc + float64(in.busyCores)*float64(now-in.lastChange))
}
