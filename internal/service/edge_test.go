package service

import (
	"testing"

	"uqsim/internal/cluster"
	"uqsim/internal/des"
	"uqsim/internal/dist"
	"uqsim/internal/job"
	"uqsim/internal/queueing"
	"uqsim/internal/rng"
)

func TestBatchLimitBoundsDispatch(t *testing.T) {
	h := newHarness(t, 4)
	bp := &Blueprint{
		Name: "svc",
		Stages: []StageSpec{{
			Name: "proc", Queue: queueing.KindSingle,
			Batching: true, BatchLimit: 2,
			Base:   dist.NewDeterministic(1000),
			PerJob: dist.NewDeterministic(100),
		}},
		Paths: []PathSpec{{Name: "p", Stages: []int{0}}},
	}
	in := h.deploy(t, bp, 1)
	jobs := make([]*job.Job, 4)
	h.eng.At(0, func(now des.Time) {
		for i := range jobs {
			jobs[i] = h.newJob()
			in.Enqueue(now, jobs[i])
		}
	})
	h.eng.Run()
	// Two batches of 2: first pair at 1200, second pair at 2400.
	finishes := map[des.Time]int{}
	for _, j := range jobs {
		finishes[j.Finished]++
	}
	if finishes[1200] != 2 || finishes[2400] != 2 {
		t.Fatalf("batch-limit finishes %v, want 2@1200 2@2400", finishes)
	}
}

func TestEpollThenSocketPipelineKeepsConnOrder(t *testing.T) {
	// Two connections, two jobs each, flowing through epoll → socket →
	// proc on one core: per-connection FIFO must be preserved end to end.
	h := newHarness(t, 4)
	bp := &Blueprint{
		Name: "svc",
		Stages: []StageSpec{
			{Name: "epoll", Queue: queueing.KindEpoll, PerConn: 2, Batching: true,
				Base: dist.NewDeterministic(10)},
			{Name: "read", Queue: queueing.KindSocket, PerConn: 1, Batching: true,
				PerJob: dist.NewDeterministic(20)},
			{Name: "proc", Queue: queueing.KindSingle,
				PerJob: dist.NewDeterministic(100)},
		},
		Paths: []PathSpec{{Name: "p", Stages: []int{0, 1, 2}}},
	}
	in := h.deploy(t, bp, 1)
	var jobs []*job.Job
	h.eng.At(0, func(now des.Time) {
		for i := 0; i < 4; i++ {
			j := h.newJob()
			j.Conn = i % 2
			jobs = append(jobs, j)
			in.Enqueue(now, j)
		}
	})
	h.eng.Run()
	// Per-connection completion order must match arrival order.
	finishedAt := map[int][]des.Time{}
	for _, j := range jobs {
		if j.Finished == 0 {
			t.Fatal("job never finished")
		}
		finishedAt[j.Conn] = append(finishedAt[j.Conn], j.Finished)
	}
	for conn, ts := range finishedAt {
		for i := 1; i < len(ts); i++ {
			if ts[i] < ts[i-1] {
				t.Fatalf("conn %d completions out of order: %v", conn, ts)
			}
		}
	}
	if in.Completed() != 4 {
		t.Fatalf("completed %d", in.Completed())
	}
}

func TestFrequencyChangeMidRunAffectsNewWork(t *testing.T) {
	eng := des.New()
	mach := cluster.NewMachine("m0", 2, cluster.DefaultFreqSpec)
	alloc, _ := mach.Allocate("svc", 1)
	in, err := NewInstance(eng, SingleStage("svc", dist.NewDeterministic(1000)), "svc-0", alloc, rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	fac := job.NewFactory()
	first := fac.NewJob(fac.NewRequest(0))
	second := fac.NewJob(fac.NewRequest(0))
	eng.At(0, func(now des.Time) { in.Enqueue(now, first) })
	// Halve the frequency between the two jobs.
	eng.At(5000, func(des.Time) { alloc.SetFreq(1300) })
	eng.At(10000, func(now des.Time) { in.Enqueue(now, second) })
	eng.Run()
	if first.Finished != 1000 {
		t.Fatalf("first finished %v (nominal)", first.Finished)
	}
	if second.Finished != 12000 {
		t.Fatalf("second finished %v, want 10000+2000 (half speed)", second.Finished)
	}
}

func TestThreadedManyWaitersDrain(t *testing.T) {
	// 1 thread, burst of 10 jobs: all complete, serialized.
	h := newHarness(t, 4)
	bp := &Blueprint{
		Name:    "svc",
		Model:   ModelThreaded,
		Threads: 1,
		Stages: []StageSpec{{
			Name: "proc", Queue: queueing.KindSingle,
			PerJob: dist.NewDeterministic(100),
		}},
		Paths: []PathSpec{{Name: "p", Stages: []int{0}}},
	}
	in := h.deploy(t, bp, 2)
	h.eng.At(0, func(now des.Time) {
		for i := 0; i < 10; i++ {
			in.Enqueue(now, h.newJob())
		}
	})
	h.eng.Run()
	if in.Completed() != 10 {
		t.Fatalf("completed %d", in.Completed())
	}
	if len(h.done) != 10 {
		t.Fatalf("done callbacks %d", len(h.done))
	}
	if h.done[9].Finished != 1000 {
		t.Fatalf("last finished %v, want 1000 (serialized)", h.done[9].Finished)
	}
}

func TestThreadedPoolWaitersWakeInOrder(t *testing.T) {
	h := newHarness(t, 8)
	h.mach.AddPool("disk", 1)
	bp := &Blueprint{
		Name:    "db",
		Model:   ModelThreaded,
		Threads: 4,
		Stages: []StageSpec{{
			Name: "disk", Queue: queueing.KindSingle,
			PerJob: dist.NewDeterministic(1000), PoolName: "disk",
		}},
		Paths: []PathSpec{{Name: "p", Stages: []int{0}}},
	}
	in := h.deploy(t, bp, 4)
	jobs := make([]*job.Job, 4)
	h.eng.At(0, func(now des.Time) {
		for i := range jobs {
			jobs[i] = h.newJob()
			in.Enqueue(now, jobs[i])
		}
	})
	h.eng.Run()
	for i, j := range jobs {
		want := des.Time(1000 * (i + 1))
		if j.Finished != want {
			t.Fatalf("job %d finished %v, want %v (FIFO through single spindle)", i, j.Finished, want)
		}
	}
}

func TestMultiPathStageSharing(t *testing.T) {
	// Two paths share stage 0; jobs of both paths interleave through the
	// shared queue without corrupting progress.
	h := newHarness(t, 4)
	bp := &Blueprint{
		Name: "svc",
		Stages: []StageSpec{
			{Name: "shared", Queue: queueing.KindSingle, PerJob: dist.NewDeterministic(100)},
			{Name: "extra", Queue: queueing.KindSingle, PerJob: dist.NewDeterministic(200)},
		},
		Paths: []PathSpec{
			{Name: "short", Stages: []int{0}},
			{Name: "long", Stages: []int{0, 1}},
		},
	}
	in := h.deploy(t, bp, 2)
	var short, long *job.Job
	h.eng.At(0, func(now des.Time) {
		short = h.newJob()
		short.PathID = 0
		long = h.newJob()
		long.PathID = 1
		in.Enqueue(now, long)
		in.Enqueue(now, short)
	})
	h.eng.Run()
	if short.Finished != 100 || long.Finished != 300 {
		t.Fatalf("short %v long %v, want 100/300 (2 cores)", short.Finished, long.Finished)
	}
}

func TestArrivalDuringProcessingQueues(t *testing.T) {
	h := newHarness(t, 4)
	in := h.deploy(t, singleStageBP("svc", 1000), 1)
	a, b := h.newJob(), h.newJob()
	h.eng.At(0, func(now des.Time) { in.Enqueue(now, a) })
	h.eng.At(500, func(now des.Time) { in.Enqueue(now, b) })
	h.eng.Run()
	if a.Finished != 1000 || b.Finished != 2000 {
		t.Fatalf("a %v b %v", a.Finished, b.Finished)
	}
	// b waited 500ns in queue.
	if got := in.StageWait(0).Max(); got != 500 {
		t.Fatalf("max stage wait %v, want 500", got)
	}
}
