// Package service implements µqSim's intra-microservice model: a
// microservice is a set of execution stages (queue–consumer pairs with
// batching semantics), composed into execution paths, driven by one of two
// execution models:
//
//   - Simple (event-driven): workers are the instance's pinned cores; a
//     free core drains the latest non-empty stage queue, taking a whole
//     batch at a time (epoll/socket disciplines amortize their base cost
//     across the batch). Models NGINX, memcached, Thrift servers and the
//     per-machine network-interrupt service.
//
//   - Threaded (blocking, worker-per-request): a job is dispatched to a
//     thread and holds it for its entire service-local path; each CPU stage
//     additionally needs a core, and stages bound to an auxiliary pool
//     (e.g. "disk") hold the thread but release the core, modelling
//     blocking I/O. Context-switch overhead applies when threads exceed
//     cores. Models MongoDB-style backends.
package service

import (
	"fmt"

	"uqsim/internal/des"
	"uqsim/internal/dist"
	"uqsim/internal/queueing"
)

// ExecModel selects how an instance maps jobs onto hardware.
type ExecModel int

// Execution models from the paper (§III-B).
const (
	ModelSimple ExecModel = iota
	ModelThreaded
)

func (m ExecModel) String() string {
	switch m {
	case ModelSimple:
		return "simple"
	case ModelThreaded:
		return "multi-threaded"
	default:
		return fmt.Sprintf("ExecModel(%d)", int(m))
	}
}

// StageSpec describes one execution stage of a microservice.
type StageSpec struct {
	// Name identifies the stage (e.g. "epoll", "socket_read").
	Name string
	// Queue selects the stage's queue discipline.
	Queue queueing.Kind
	// PerConn is the epoll/socket per-connection batch parameter (the
	// paper's "queue parameter" N); ignored for single queues.
	PerConn int
	// Batching allows the stage to process more than one job per worker
	// dispatch. Without it each dispatch takes exactly one job.
	Batching bool
	// BatchLimit bounds total jobs per dispatch when batching (0: the
	// discipline's natural batch).
	BatchLimit int

	// Base is the per-dispatch cost, paid once per batch (nil: 0).
	// This is the quantity that batching amortizes.
	Base dist.Sampler
	// PerJob is the per-job cost, paid for every job in a batch (nil: 0).
	PerJob dist.Sampler
	// PerKB is an additional cost in nanoseconds per KB of request
	// payload, modelling socket reads proportional to bytes.
	PerKB float64

	// BaseTable/PerJobTable optionally supply per-DVFS-frequency
	// samplers (the paper's per-frequency histograms). When nil, Base /
	// PerJob samples are scaled linearly by nominal/current frequency.
	BaseTable   *dist.FreqTable
	PerJobTable *dist.FreqTable

	// PoolName, when non-empty, executes the stage against the named
	// auxiliary pool on the instance's machine (e.g. "disk") instead of
	// a core. Pool stages are not frequency-scaled and never batch.
	PoolName string
}

// PathSpec is an execution path: the sequence of stage indices a job
// traverses inside the microservice.
type PathSpec struct {
	Name   string
	Stages []int
}

// Blueprint is the static description of a microservice, reusable across
// many instances (the paper's service.json).
type Blueprint struct {
	Name   string
	Stages []StageSpec
	Paths  []PathSpec

	// PathProbs optionally gives the paper's execution-path state
	// machine: when a request does not pin a path explicitly, the
	// runtime samples one with these weights (must align with Paths).
	// Example: MongoDB's cache-hit (memory) vs cache-miss (disk) paths.
	PathProbs []float64

	Model ExecModel
	// Threads is the worker-thread count for ModelThreaded.
	Threads int
	// CtxSwitch is the per-stage-dispatch overhead applied in the
	// threaded model when Threads exceeds allocated cores.
	CtxSwitch des.Time
}

// Validate checks internal consistency.
func (b *Blueprint) Validate() error {
	if b.Name == "" {
		return fmt.Errorf("service: blueprint needs a name")
	}
	if len(b.Stages) == 0 {
		return fmt.Errorf("service %s: needs at least one stage", b.Name)
	}
	if len(b.Paths) == 0 {
		return fmt.Errorf("service %s: needs at least one path", b.Name)
	}
	for i, p := range b.Paths {
		if len(p.Stages) == 0 {
			return fmt.Errorf("service %s: path %d is empty", b.Name, i)
		}
		for _, s := range p.Stages {
			if s < 0 || s >= len(b.Stages) {
				return fmt.Errorf("service %s: path %d references stage %d of %d",
					b.Name, i, s, len(b.Stages))
			}
		}
	}
	if len(b.PathProbs) > 0 {
		if len(b.PathProbs) != len(b.Paths) {
			return fmt.Errorf("service %s: %d path probabilities for %d paths",
				b.Name, len(b.PathProbs), len(b.Paths))
		}
		total := 0.0
		for i, p := range b.PathProbs {
			if p < 0 {
				return fmt.Errorf("service %s: negative probability for path %d", b.Name, i)
			}
			total += p
		}
		if total <= 0 {
			return fmt.Errorf("service %s: path probabilities must sum to a positive value", b.Name)
		}
	}
	if b.Model == ModelThreaded && b.Threads < 1 {
		return fmt.Errorf("service %s: threaded model needs Threads >= 1", b.Name)
	}
	for i, s := range b.Stages {
		if s.Base == nil && s.PerJob == nil && s.PerKB == 0 &&
			s.BaseTable == nil && s.PerJobTable == nil {
			return fmt.Errorf("service %s: stage %d (%s) has no cost model", b.Name, i, s.Name)
		}
		if s.PoolName != "" && s.Batching {
			return fmt.Errorf("service %s: pool stage %d (%s) cannot batch", b.Name, i, s.Name)
		}
	}
	return nil
}

// SingleStage is a convenience constructor for one-stage services (e.g. the
// tail-at-scale leaf servers): a single FIFO stage with the given per-job
// cost and one path through it.
func SingleStage(name string, cost dist.Sampler) *Blueprint {
	return &Blueprint{
		Name: name,
		Stages: []StageSpec{{
			Name:   "proc",
			Queue:  queueing.KindSingle,
			PerJob: cost,
		}},
		Paths: []PathSpec{{Name: "default", Stages: []int{0}}},
		Model: ModelSimple,
	}
}
