package service

import (
	"testing"

	"uqsim/internal/cluster"
	"uqsim/internal/des"
	"uqsim/internal/dist"
	"uqsim/internal/job"
	"uqsim/internal/queueing"
	"uqsim/internal/rng"
)

// harness bundles the machinery most tests need.
type harness struct {
	eng  *des.Engine
	mach *cluster.Machine
	fac  *job.Factory
	done []*job.Job
}

func newHarness(t *testing.T, cores int) *harness {
	t.Helper()
	return &harness{
		eng:  des.New(),
		mach: cluster.NewMachine("m0", cores, cluster.FreqSpec{}),
		fac:  job.NewFactory(),
	}
}

func (h *harness) deploy(t *testing.T, bp *Blueprint, cores int) *Instance {
	t.Helper()
	alloc, err := h.mach.Allocate(bp.Name, cores)
	if err != nil {
		t.Fatal(err)
	}
	in, err := NewInstance(h.eng, bp, bp.Name+"-0", alloc, rng.New(7))
	if err != nil {
		t.Fatal(err)
	}
	in.OnJobDone = func(now des.Time, j *job.Job) { h.done = append(h.done, j) }
	return in
}

func (h *harness) newJob() *job.Job {
	return h.fac.NewJob(h.fac.NewRequest(h.eng.Now()))
}

func singleStageBP(name string, cost float64) *Blueprint {
	return SingleStage(name, dist.NewDeterministic(cost))
}

func TestValidateErrors(t *testing.T) {
	cases := []*Blueprint{
		{},
		{Name: "x"},
		{Name: "x", Stages: []StageSpec{{Name: "s", PerJob: dist.NewDeterministic(1)}}},
		{Name: "x", Stages: []StageSpec{{Name: "s", PerJob: dist.NewDeterministic(1)}},
			Paths: []PathSpec{{Name: "p"}}},
		{Name: "x", Stages: []StageSpec{{Name: "s", PerJob: dist.NewDeterministic(1)}},
			Paths: []PathSpec{{Name: "p", Stages: []int{5}}}},
		{Name: "x", Stages: []StageSpec{{Name: "s"}},
			Paths: []PathSpec{{Name: "p", Stages: []int{0}}}},
		{Name: "x", Model: ModelThreaded,
			Stages: []StageSpec{{Name: "s", PerJob: dist.NewDeterministic(1)}},
			Paths:  []PathSpec{{Name: "p", Stages: []int{0}}}},
		{Name: "x",
			Stages: []StageSpec{{Name: "s", PerJob: dist.NewDeterministic(1),
				PoolName: "disk", Batching: true}},
			Paths: []PathSpec{{Name: "p", Stages: []int{0}}}},
	}
	for i, bp := range cases {
		if err := bp.Validate(); err == nil {
			t.Errorf("case %d: expected validation error", i)
		}
	}
	if err := singleStageBP("ok", 10).Validate(); err != nil {
		t.Errorf("valid blueprint rejected: %v", err)
	}
}

func TestExecModelString(t *testing.T) {
	if ModelSimple.String() != "simple" || ModelThreaded.String() != "multi-threaded" {
		t.Fatal("model names")
	}
	if ExecModel(9).String() == "" {
		t.Fatal("unknown model should still print")
	}
}

func TestSimpleSingleJob(t *testing.T) {
	h := newHarness(t, 4)
	in := h.deploy(t, singleStageBP("svc", 1000), 1)
	j := h.newJob()
	h.eng.At(0, func(now des.Time) { in.Enqueue(now, j) })
	h.eng.Run()
	if len(h.done) != 1 {
		t.Fatalf("done = %d", len(h.done))
	}
	if j.Finished != 1000 {
		t.Fatalf("finished at %v, want 1000ns", j.Finished)
	}
	if in.Arrived() != 1 || in.Completed() != 1 || in.InFlight() != 0 {
		t.Fatal("counters")
	}
}

func TestSimpleSerializationOnOneCore(t *testing.T) {
	h := newHarness(t, 4)
	in := h.deploy(t, singleStageBP("svc", 1000), 1)
	jobs := []*job.Job{h.newJob(), h.newJob(), h.newJob()}
	h.eng.At(0, func(now des.Time) {
		for _, j := range jobs {
			in.Enqueue(now, j)
		}
	})
	h.eng.Run()
	// One core, three 1µs jobs → finishes at 1000, 2000, 3000.
	for i, want := range []des.Time{1000, 2000, 3000} {
		if jobs[i].Finished != want {
			t.Fatalf("job %d finished %v, want %v", i, jobs[i].Finished, want)
		}
	}
}

func TestSimpleParallelismAcrossCores(t *testing.T) {
	h := newHarness(t, 4)
	in := h.deploy(t, singleStageBP("svc", 1000), 2)
	jobs := []*job.Job{h.newJob(), h.newJob(), h.newJob(), h.newJob()}
	h.eng.At(0, func(now des.Time) {
		for _, j := range jobs {
			in.Enqueue(now, j)
		}
	})
	h.eng.Run()
	// Two cores: pairs finish at 1000 and 2000.
	finishes := map[des.Time]int{}
	for _, j := range jobs {
		finishes[j.Finished]++
	}
	if finishes[1000] != 2 || finishes[2000] != 2 {
		t.Fatalf("finish distribution %v", finishes)
	}
}

func TestMultiStagePath(t *testing.T) {
	h := newHarness(t, 4)
	bp := &Blueprint{
		Name: "svc",
		Stages: []StageSpec{
			{Name: "a", Queue: queueing.KindSingle, PerJob: dist.NewDeterministic(100)},
			{Name: "b", Queue: queueing.KindSingle, PerJob: dist.NewDeterministic(200)},
			{Name: "c", Queue: queueing.KindSingle, PerJob: dist.NewDeterministic(300)},
		},
		Paths: []PathSpec{{Name: "p", Stages: []int{0, 1, 2}}},
	}
	in := h.deploy(t, bp, 1)
	j := h.newJob()
	h.eng.At(0, func(now des.Time) { in.Enqueue(now, j) })
	h.eng.Run()
	if j.Finished != 600 {
		t.Fatalf("finished %v, want 600", j.Finished)
	}
}

func TestAlternatePathsSelectStages(t *testing.T) {
	h := newHarness(t, 4)
	bp := &Blueprint{
		Name: "svc",
		Stages: []StageSpec{
			{Name: "fast", Queue: queueing.KindSingle, PerJob: dist.NewDeterministic(10)},
			{Name: "slow", Queue: queueing.KindSingle, PerJob: dist.NewDeterministic(1000)},
		},
		Paths: []PathSpec{
			{Name: "hit", Stages: []int{0}},
			{Name: "miss", Stages: []int{0, 1}},
		},
	}
	in := h.deploy(t, bp, 1)
	hit, miss := h.newJob(), h.newJob()
	hit.PathID = 0
	miss.PathID = 1
	h.eng.At(0, func(now des.Time) { in.Enqueue(now, hit) })
	h.eng.At(5000, func(now des.Time) { in.Enqueue(now, miss) })
	h.eng.Run()
	if hit.Finished != 10 {
		t.Fatalf("hit finished %v", hit.Finished)
	}
	if miss.Finished != 5000+10+1000 {
		t.Fatalf("miss finished %v", miss.Finished)
	}
}

func TestInvalidPathPanics(t *testing.T) {
	h := newHarness(t, 4)
	in := h.deploy(t, singleStageBP("svc", 10), 1)
	j := h.newJob()
	j.PathID = 3
	defer func() {
		if recover() == nil {
			t.Fatal("want panic")
		}
	}()
	in.Enqueue(0, j)
}

func TestEpollBatchAmortization(t *testing.T) {
	// Stage: base 1000ns amortized over the batch + 100ns per job.
	// 4 jobs on 4 connections arriving together: batched cost =
	// 1000 + 4·100 = 1400, NOT 4·1100.
	h := newHarness(t, 4)
	bp := &Blueprint{
		Name: "svc",
		Stages: []StageSpec{{
			Name: "epoll", Queue: queueing.KindEpoll, PerConn: 1,
			Batching: true,
			Base:     dist.NewDeterministic(1000),
			PerJob:   dist.NewDeterministic(100),
		}},
		Paths: []PathSpec{{Name: "p", Stages: []int{0}}},
	}
	in := h.deploy(t, bp, 1)
	jobs := make([]*job.Job, 4)
	h.eng.At(0, func(now des.Time) {
		for i := range jobs {
			jobs[i] = h.newJob()
			jobs[i].Conn = i
			in.Enqueue(now, jobs[i])
		}
	})
	h.eng.Run()
	for i, j := range jobs {
		if j.Finished != 1400 {
			t.Fatalf("job %d finished %v, want 1400 (batched)", i, j.Finished)
		}
	}
}

func TestNoBatchingPaysBasePerJob(t *testing.T) {
	h := newHarness(t, 4)
	bp := &Blueprint{
		Name: "svc",
		Stages: []StageSpec{{
			Name: "proc", Queue: queueing.KindSingle,
			Base:   dist.NewDeterministic(1000),
			PerJob: dist.NewDeterministic(100),
		}},
		Paths: []PathSpec{{Name: "p", Stages: []int{0}}},
	}
	in := h.deploy(t, bp, 1)
	jobs := []*job.Job{h.newJob(), h.newJob()}
	h.eng.At(0, func(now des.Time) {
		for _, j := range jobs {
			in.Enqueue(now, j)
		}
	})
	h.eng.Run()
	if jobs[0].Finished != 1100 || jobs[1].Finished != 2200 {
		t.Fatalf("finishes %v, %v; want 1100, 2200", jobs[0].Finished, jobs[1].Finished)
	}
}

func TestPerKBCost(t *testing.T) {
	h := newHarness(t, 4)
	bp := &Blueprint{
		Name: "svc",
		Stages: []StageSpec{{
			Name: "socket_read", Queue: queueing.KindSocket, PerConn: 0,
			PerJob: dist.NewDeterministic(100), PerKB: 50,
		}},
		Paths: []PathSpec{{Name: "p", Stages: []int{0}}},
	}
	in := h.deploy(t, bp, 1)
	j := h.newJob()
	j.SizeKB = 4
	h.eng.At(0, func(now des.Time) { in.Enqueue(now, j) })
	h.eng.Run()
	if j.Finished != 100+4*50 {
		t.Fatalf("finished %v, want 300", j.Finished)
	}
}

func TestFrequencyScaling(t *testing.T) {
	eng := des.New()
	mach := cluster.NewMachine("m0", 2, cluster.DefaultFreqSpec)
	alloc, _ := mach.Allocate("svc", 1)
	in, err := NewInstance(eng, singleStageBP("svc", 1000), "svc-0", alloc, rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	fac := job.NewFactory()
	alloc.SetFreq(1300) // half of 2600 → 2× slower
	j := fac.NewJob(fac.NewRequest(0))
	eng.At(0, func(now des.Time) { in.Enqueue(now, j) })
	eng.Run()
	if j.Finished != 2000 {
		t.Fatalf("finished %v at 1300MHz, want 2000", j.Finished)
	}
}

func TestFreqTableOverridesScaling(t *testing.T) {
	eng := des.New()
	mach := cluster.NewMachine("m0", 2, cluster.DefaultFreqSpec)
	alloc, _ := mach.Allocate("svc", 1)
	table := dist.NewFreqTable(2600, dist.NewDeterministic(1000))
	table.Set(1300, dist.NewDeterministic(3333)) // measured, not linear
	bp := &Blueprint{
		Name: "svc",
		Stages: []StageSpec{{
			Name: "proc", Queue: queueing.KindSingle, PerJobTable: table,
		}},
		Paths: []PathSpec{{Name: "p", Stages: []int{0}}},
	}
	in, err := NewInstance(eng, bp, "svc-0", alloc, rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	fac := job.NewFactory()
	alloc.SetFreq(1300)
	j := fac.NewJob(fac.NewRequest(0))
	eng.At(0, func(now des.Time) { in.Enqueue(now, j) })
	eng.Run()
	if j.Finished != 3333 {
		t.Fatalf("finished %v, want table value 3333 (not rescaled)", j.Finished)
	}
}

func TestPoolStageSerializesOnCapacity(t *testing.T) {
	h := newHarness(t, 4)
	h.mach.AddPool("disk", 1)
	bp := &Blueprint{
		Name: "mongo",
		Stages: []StageSpec{{
			Name: "disk_read", Queue: queueing.KindSingle,
			PerJob: dist.NewDeterministic(1000), PoolName: "disk",
		}},
		Paths: []PathSpec{{Name: "p", Stages: []int{0}}},
	}
	in := h.deploy(t, bp, 2) // 2 cores but only 1 disk
	jobs := []*job.Job{h.newJob(), h.newJob()}
	h.eng.At(0, func(now des.Time) {
		for _, j := range jobs {
			in.Enqueue(now, j)
		}
	})
	h.eng.Run()
	if jobs[0].Finished != 1000 || jobs[1].Finished != 2000 {
		t.Fatalf("disk should serialize: %v, %v", jobs[0].Finished, jobs[1].Finished)
	}
}

func TestPoolStageDoesNotHoldCore(t *testing.T) {
	// One core; job A runs a long disk stage while job B computes on the
	// core concurrently.
	h := newHarness(t, 4)
	h.mach.AddPool("disk", 1)
	bp := &Blueprint{
		Name: "svc",
		Stages: []StageSpec{
			{Name: "disk", Queue: queueing.KindSingle,
				PerJob: dist.NewDeterministic(10000), PoolName: "disk"},
			{Name: "cpu", Queue: queueing.KindSingle,
				PerJob: dist.NewDeterministic(1000)},
		},
		Paths: []PathSpec{
			{Name: "io", Stages: []int{0}},
			{Name: "compute", Stages: []int{1}},
		},
	}
	in := h.deploy(t, bp, 1)
	io, compute := h.newJob(), h.newJob()
	io.PathID, compute.PathID = 0, 1
	h.eng.At(0, func(now des.Time) {
		in.Enqueue(now, io)
		in.Enqueue(now, compute)
	})
	h.eng.Run()
	if compute.Finished != 1000 {
		t.Fatalf("compute blocked by disk job: finished %v", compute.Finished)
	}
	if io.Finished != 10000 {
		t.Fatalf("io finished %v", io.Finished)
	}
}

func TestThreadedThreadLimitGatesConcurrency(t *testing.T) {
	h := newHarness(t, 8)
	bp := &Blueprint{
		Name:    "svc",
		Model:   ModelThreaded,
		Threads: 2,
		Stages: []StageSpec{{
			Name: "proc", Queue: queueing.KindSingle,
			PerJob: dist.NewDeterministic(1000),
		}},
		Paths: []PathSpec{{Name: "p", Stages: []int{0}}},
	}
	in := h.deploy(t, bp, 4) // 4 cores, but only 2 threads
	jobs := make([]*job.Job, 4)
	h.eng.At(0, func(now des.Time) {
		for i := range jobs {
			jobs[i] = h.newJob()
			in.Enqueue(now, jobs[i])
		}
	})
	h.eng.Run()
	finishes := map[des.Time]int{}
	for _, j := range jobs {
		finishes[j.Finished]++
	}
	if finishes[1000] != 2 || finishes[2000] != 2 {
		t.Fatalf("thread-limited finishes %v, want 2@1000 2@2000", finishes)
	}
}

func TestThreadedCoreLimitAndCtxSwitch(t *testing.T) {
	h := newHarness(t, 8)
	bp := &Blueprint{
		Name:      "svc",
		Model:     ModelThreaded,
		Threads:   4,
		CtxSwitch: 100,
		Stages: []StageSpec{{
			Name: "proc", Queue: queueing.KindSingle,
			PerJob: dist.NewDeterministic(1000),
		}},
		Paths: []PathSpec{{Name: "p", Stages: []int{0}}},
	}
	in := h.deploy(t, bp, 1) // 4 threads contending for 1 core
	jobs := make([]*job.Job, 2)
	h.eng.At(0, func(now des.Time) {
		for i := range jobs {
			jobs[i] = h.newJob()
			in.Enqueue(now, jobs[i])
		}
	})
	h.eng.Run()
	// Each dispatch pays 1000 + 100 ctx switch; serialized on 1 core.
	if jobs[0].Finished != 1100 || jobs[1].Finished != 2200 {
		t.Fatalf("finishes %v, %v; want 1100, 2200", jobs[0].Finished, jobs[1].Finished)
	}
}

func TestThreadedPoolBlockingReleasesCore(t *testing.T) {
	// MongoDB-style: cpu parse → disk read → cpu reply. With 2 threads,
	// 1 core, 1 disk: while thread A is on disk, thread B uses the core.
	h := newHarness(t, 8)
	h.mach.AddPool("disk", 1)
	bp := &Blueprint{
		Name:    "mongo",
		Model:   ModelThreaded,
		Threads: 2,
		Stages: []StageSpec{
			{Name: "parse", Queue: queueing.KindSingle, PerJob: dist.NewDeterministic(100)},
			{Name: "disk", Queue: queueing.KindSingle, PerJob: dist.NewDeterministic(5000), PoolName: "disk"},
			{Name: "reply", Queue: queueing.KindSingle, PerJob: dist.NewDeterministic(100)},
		},
		Paths: []PathSpec{{Name: "read", Stages: []int{0, 1, 2}}},
	}
	in := h.deploy(t, bp, 1)
	a, b := h.newJob(), h.newJob()
	h.eng.At(0, func(now des.Time) {
		in.Enqueue(now, a)
		in.Enqueue(now, b)
	})
	h.eng.Run()
	// A: parse 0-100, disk 100-5100, reply 5100-5200.
	// B: parse 100-200 (core free while A on disk), disk 5100-10100
	// (waits for the single spindle), reply 10100-10200.
	if a.Finished != 5200 {
		t.Fatalf("a finished %v, want 5200", a.Finished)
	}
	if b.Finished != 10200 {
		t.Fatalf("b finished %v, want 10200", b.Finished)
	}
}

func TestMetricsAndUtilization(t *testing.T) {
	h := newHarness(t, 4)
	in := h.deploy(t, singleStageBP("svc", 1000), 1)
	for i := 0; i < 10; i++ {
		h.eng.At(des.Time(i)*2000, func(now des.Time) { in.Enqueue(now, h.newJob()) })
	}
	h.eng.Run()
	if in.Completed() != 10 {
		t.Fatalf("completed = %d", in.Completed())
	}
	// 10 jobs × 1000ns busy over 19000+1000 ns ≈ 50% utilization.
	u := in.Utilization(h.eng.Now())
	if u < 0.45 || u > 0.55 {
		t.Fatalf("utilization = %v, want ≈0.5", u)
	}
	if in.Residence().Count() != 10 {
		t.Fatal("residence histogram count")
	}
	if in.Residence().Mean() != 1000 {
		t.Fatalf("residence mean %v, want 1000 (no queueing)", in.Residence().Mean())
	}
	if in.StageWait(0).Count() != 10 {
		t.Fatal("stage wait count")
	}
	if in.QueueLen() != 0 {
		t.Fatal("queue should drain")
	}
}

func TestTierLatencyAccrual(t *testing.T) {
	h := newHarness(t, 4)
	in := h.deploy(t, singleStageBP("svc", 1000), 1)
	j := h.newJob()
	h.eng.At(0, func(now des.Time) { in.Enqueue(now, j) })
	h.eng.Run()
	if j.Req.TierLatency["svc"] != 1000 {
		t.Fatalf("tier latency = %v", j.Req.TierLatency["svc"])
	}
}

func TestUtilizationZeroTime(t *testing.T) {
	h := newHarness(t, 2)
	in := h.deploy(t, singleStageBP("svc", 10), 1)
	if in.Utilization(0) != 0 {
		t.Fatal("zero-time utilization should be 0")
	}
}
