package pdes

import (
	"testing"

	"uqsim/internal/des"
)

// randomShardConfig derives a small but varied cluster from a seed:
// uneven machine counts, partial fan-outs, stragglers, and LP counts
// that don't divide the machine count.
func randomShardConfig(seed uint64) ShardedClusterConfig {
	cfg := ShardedClusterConfig{
		Seed:            seed,
		Machines:        3 + int(seed%7),
		CoresPerMachine: 1 + int(seed%3),
		Fanout:          1 + int(seed%5),
		QPS:             2000 + float64(seed%5)*1000,
		MeanServiceUs:   300 + float64(seed%4)*200,
		SlowFraction:    float64(seed%3) * 0.15,
		WireLatency:     des.Time(20+seed%80) * des.Microsecond,
		LPs:             1 + int(seed%4),
	}
	// Roughly half the seeds cut one leaf mid-run and heal it; every
	// third seed also leaves a second leaf cut from 70ms to the end.
	// Partition toggles are LP-crossing events, so they must not disturb
	// worker-count equivalence.
	if seed%2 == 0 {
		cfg.Partitions = append(cfg.Partitions, ShardPartition{
			Machine: int(seed) % cfg.Machines,
			From:    des.Time(10+seed%20) * des.Millisecond,
			Until:   des.Time(40+seed%30) * des.Millisecond,
		})
	}
	if seed%3 == 0 {
		cfg.Partitions = append(cfg.Partitions, ShardPartition{
			Machine: int(seed+1) % cfg.Machines,
			From:    70 * des.Millisecond,
		})
	}
	return cfg
}

func runShard(t *testing.T, cfg ShardedClusterConfig, workers int) *ShardReport {
	t.Helper()
	cfg.Workers = workers
	sc, err := NewShardedCluster(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rep := sc.Run(100 * des.Millisecond)
	if rep.Requests == 0 || rep.Completions == 0 {
		t.Fatalf("no traffic: %+v", rep)
	}
	if rep.Leaked != 0 {
		t.Fatalf("leaked %d after drain (cfg %+v)", rep.Leaked, cfg)
	}
	if rep.Requests != rep.Completions+rep.Failures {
		t.Fatalf("conservation: %d requests != %d completions + %d failures after drain",
			rep.Requests, rep.Completions, rep.Failures)
	}
	if rep.LegsIssued != rep.LegsDone+rep.LegsUnreachable+rep.LegsLost {
		t.Fatalf("conservation: %d legs issued != %d done + %d unreachable + %d lost after drain",
			rep.LegsIssued, rep.LegsDone, rep.LegsUnreachable, rep.LegsLost)
	}
	if len(cfg.Partitions) == 0 && rep.Failures+rep.LegsUnreachable+rep.LegsLost != 0 {
		t.Fatalf("partition counters nonzero without partitions: %+v", rep)
	}
	if want := rep.Requests * uint64(cfgFanout(cfg)); rep.LegsIssued != want {
		t.Fatalf("legs issued %d, want %d (requests×fanout)", rep.LegsIssued, want)
	}
	var perMachine uint64
	for _, m := range rep.PerMachine {
		perMachine += m.Completed
	}
	if perMachine != rep.LegsDone+rep.LegsLost {
		t.Fatalf("per-machine completions %d != legs done %d + lost %d", perMachine, rep.LegsDone, rep.LegsLost)
	}
	return rep
}

func cfgFanout(cfg ShardedClusterConfig) int {
	if cfg.Fanout < 1 || cfg.Fanout > cfg.Machines {
		return cfg.Machines
	}
	return cfg.Fanout
}

// TestShardedClusterEquivalence is the cross-engine equivalence suite
// for the parallel model: randomized configurations run with 1, 2, and
// 4 workers must emit identical determinism fingerprints, conserve
// every request and leg, and leak nothing.
func TestShardedClusterEquivalence(t *testing.T) {
	for seed := uint64(1); seed <= 12; seed++ {
		cfg := randomShardConfig(seed)
		base := runShard(t, cfg, 1).Fingerprint()
		for _, workers := range []int{2, 4} {
			if fp := runShard(t, cfg, workers).Fingerprint(); fp != base {
				t.Fatalf("seed %d: workers=%d diverged\n w1: %s\n w%d: %s",
					seed, workers, base, workers, fp)
			}
		}
	}
}

// TestShardedClusterPartition pins the partition semantics: a mid-run
// cut must fail some requests, fail some legs fast at the root, lose
// some in-flight responses, still conserve every leg — and stay
// bit-identical across worker counts, since the cut's open and heal
// toggles are LP-crossing events.
func TestShardedClusterPartition(t *testing.T) {
	cfg := ShardedClusterConfig{
		Seed:     11,
		Machines: 6,
		QPS:      4000,
		Fanout:   3,
		LPs:      3,
		Partitions: []ShardPartition{
			{Machine: 2, From: 20 * des.Millisecond, Until: 60 * des.Millisecond},
			{Machine: 4, From: 75 * des.Millisecond},
		},
	}
	rep := runShard(t, cfg, 1)
	if rep.Failures == 0 || rep.LegsUnreachable == 0 {
		t.Fatalf("partition had no effect: %+v", rep)
	}
	if rep.Completions == 0 {
		t.Fatalf("nothing completed around the partitions: %+v", rep)
	}
	base := rep.Fingerprint()
	for _, workers := range []int{2, 4} {
		if fp := runShard(t, cfg, workers).Fingerprint(); fp != base {
			t.Fatalf("workers=%d diverged under partitions\n w1: %s\n w%d: %s", workers, base, workers, fp)
		}
	}
}

// TestShardedClusterSeedSensitivity guards the fingerprint itself: a
// different seed must produce a different trace, or the equivalence
// suite would vacuously pass.
func TestShardedClusterSeedSensitivity(t *testing.T) {
	cfg1, cfg2 := randomShardConfig(3), randomShardConfig(3)
	cfg2.Seed = 4
	if runShard(t, cfg1, 2).Fingerprint() == runShard(t, cfg2, 2).Fingerprint() {
		t.Fatal("different seeds produced identical fingerprints")
	}
}

// TestShardedClusterParallelWindows: a multi-LP run must actually use
// bounded windows (not degenerate to one giant sequential window).
func TestShardedClusterParallelWindows(t *testing.T) {
	cfg := ShardedClusterConfig{Seed: 9, Machines: 8, QPS: 5000, Fanout: 4, LPs: 4}
	sc, err := NewShardedCluster(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rep := sc.Run(50 * des.Millisecond)
	if rep.Windows < 10 {
		t.Fatalf("only %d windows for a 50ms multi-LP run", rep.Windows)
	}
	if sc.Engine().LPs() != 5 {
		t.Fatalf("engine has %d LPs, want 5 (root + 4 shards)", sc.Engine().LPs())
	}
}

// TestShardedClusterStragglersRaiseTail: the model must actually model
// something — stragglers should push the tail latency up.
func TestShardedClusterStragglersRaiseTail(t *testing.T) {
	base := ShardedClusterConfig{Seed: 5, Machines: 10, QPS: 1000, Fanout: 10, MeanServiceUs: 200}
	slow := base
	slow.SlowFraction = 0.2
	slow.SlowFactor = 20
	fast := runShard(t, base, 2)
	strag := runShard(t, slow, 2)
	if strag.Latency.P99() <= fast.Latency.P99() {
		t.Fatalf("stragglers did not raise p99: %v vs %v", strag.Latency.P99(), fast.Latency.P99())
	}
}
