package pdes

import (
	"fmt"
	"testing"

	"uqsim/internal/des"
)

// benchSharded drives the sharded fan-out model for a fixed virtual
// duration per iteration and reports virtual events per wall second —
// the simulator-throughput number the scalability experiment tracks.
func benchSharded(b *testing.B, machines, workers int) {
	b.ReportAllocs()
	var events uint64
	for i := 0; i < b.N; i++ {
		sc, err := NewShardedCluster(ShardedClusterConfig{
			Seed:     1,
			Machines: machines,
			Fanout:   8,
			QPS:      20000,
			LPs:      machines,
			Workers:  workers,
		})
		if err != nil {
			b.Fatal(err)
		}
		rep := sc.Run(20 * des.Millisecond)
		events += rep.Events
	}
	b.ReportMetric(float64(events)/b.Elapsed().Seconds(), "events/s")
}

func BenchmarkShardedDispatch(b *testing.B) {
	for _, machines := range []int{16, 64} {
		for _, workers := range []int{1, 2, 4} {
			b.Run(fmt.Sprintf("m%d/w%d", machines, workers), func(b *testing.B) {
				benchSharded(b, machines, workers)
			})
		}
	}
}
