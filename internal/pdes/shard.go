package pdes

import (
	"fmt"
	"hash/fnv"
	"math"

	"uqsim/internal/cluster"
	"uqsim/internal/des"
	"uqsim/internal/dist"
	"uqsim/internal/job"
	"uqsim/internal/rng"
	"uqsim/internal/service"
	"uqsim/internal/stats"
	"uqsim/internal/workload"
)

// ShardedClusterConfig describes a tail-at-scale fan-out cluster whose
// machines are partitioned across the engine's logical processes. It is
// the LP-decomposable counterpart of apps.TailAtScale: a root on LP 0
// fans each request out to leaf servers that live on machine LPs, and
// every cross-machine leg pays the wire latency — which is exactly the
// engine's lookahead, so machine LPs advance in parallel.
type ShardedClusterConfig struct {
	// Seed drives every random stream (client arrivals, leaf selection,
	// service times). Same seed → identical results at any worker count.
	Seed uint64
	// Machines is the leaf server count. Required.
	Machines int
	// CoresPerMachine is each leaf's core allocation (default 4).
	CoresPerMachine int
	// Fanout is how many distinct leaves each request contacts
	// (default: all of them, the paper's full fan-out; clamped to
	// Machines).
	Fanout int
	// QPS is the open-loop Poisson arrival rate. Required.
	QPS float64
	// MeanServiceUs is the exponential per-leg service time mean in
	// microseconds (default 1000).
	MeanServiceUs float64
	// SlowFraction marks the first ⌈SlowFraction·Machines⌉ leaves as
	// stragglers whose mean is SlowFactor× larger.
	SlowFraction float64
	// SlowFactor is the straggler slowdown (default 10; used only when
	// SlowFraction > 0).
	SlowFactor float64
	// WireLatency is the one-way cross-machine network delay, charged
	// on every request and response leg. It doubles as the engine's
	// lookahead (default 50µs).
	WireLatency des.Time
	// LPs is the number of machine shards (default: one per machine;
	// clamped to [1, Machines]). The root and client always occupy
	// their own LP 0.
	LPs int
	// Workers is the engine's worker goroutine count (default 1).
	Workers int
	// Partitions cuts root↔leaf connectivity over time windows. While a
	// leaf is cut the root fails new legs to it fast (LegsUnreachable)
	// and responses the leaf produces are lost on the wire (LegsLost);
	// either way the affected request resolves as a Failure.
	Partitions []ShardPartition
}

// ShardPartition severs the root↔machine link of one leaf from From
// until Until (0: never heals). Overlapping windows on the same leaf
// stack. The cut crosses LPs the same way traffic does — the root's view
// flips at From/Until and the leaf's view flips one wire latency later —
// so the schedule stays deterministic at any worker count.
type ShardPartition struct {
	Machine int
	From    des.Time
	Until   des.Time
}

func (cfg *ShardedClusterConfig) applyDefaults() error {
	if cfg.Machines < 1 {
		return fmt.Errorf("pdes: sharded cluster needs at least one machine")
	}
	if cfg.QPS <= 0 {
		return fmt.Errorf("pdes: sharded cluster needs a positive QPS")
	}
	if cfg.CoresPerMachine < 1 {
		cfg.CoresPerMachine = 4
	}
	if cfg.Fanout < 1 || cfg.Fanout > cfg.Machines {
		cfg.Fanout = cfg.Machines
	}
	if cfg.MeanServiceUs <= 0 {
		cfg.MeanServiceUs = 1000
	}
	if cfg.SlowFactor <= 0 {
		cfg.SlowFactor = 10
	}
	if cfg.WireLatency <= 0 {
		cfg.WireLatency = 50 * des.Microsecond
	}
	if cfg.LPs < 1 || cfg.LPs > cfg.Machines {
		cfg.LPs = cfg.Machines
	}
	if cfg.Workers < 1 {
		cfg.Workers = 1
	}
	for i, p := range cfg.Partitions {
		if p.Machine < 0 || p.Machine >= cfg.Machines {
			return fmt.Errorf("pdes: partition %d: machine %d out of range [0,%d)", i, p.Machine, cfg.Machines)
		}
		if p.From < 0 {
			return fmt.Errorf("pdes: partition %d: negative start %v", i, p.From)
		}
		if p.Until != 0 && p.Until <= p.From {
			return fmt.Errorf("pdes: partition %d: until %v not after from %v", i, p.Until, p.From)
		}
	}
	return nil
}

// shardMachine is one leaf server pinned to a machine LP: a real
// service.Instance plus the LP-local identity needed to route responses.
// All of its state is touched only by its owning LP, so machine shards
// run without locks.
type shardMachine struct {
	inst *service.Instance
	proc *Proc
	fac  *job.Factory
	// pending maps the machine's in-flight job IDs to the root-side
	// request they serve.
	pending map[job.ID]uint64
	// cut counts open partitions on this leaf's link as the leaf sees
	// them; responses produced while cut > 0 are lost on the wire.
	cut int
}

// openReq tracks one fanned-out request at the root until its last leg
// returns.
type openReq struct {
	remaining int
	start     des.Time
	// failed marks a request that lost at least one leg to a partition;
	// it resolves as a Failure, not a Completion.
	failed bool
}

// ShardedCluster is an assembled sharded fan-out simulation.
type ShardedCluster struct {
	cfg      ShardedClusterConfig
	eng      *Engine
	root     *Proc
	cl       *cluster.Cluster
	machines []*shardMachine
	gen      *workload.OpenLoop
	rootRNG  *rng.Source
	scratch  []int // permutation buffer for leaf sampling
	// rootCut counts open partitions per leaf as the root sees them; new
	// legs to a cut leaf fail fast.
	rootCut []int

	nextReq         uint64
	open            map[uint64]*openReq
	requests        uint64
	completions     uint64
	failures        uint64
	legsIssued      uint64
	legsDone        uint64
	legsUnreachable uint64
	legsLost        uint64
	latency         *stats.LatencyHist
}

// NewShardedCluster builds the model: machines partitioned into cfg.LPs
// shards via cluster.PartitionIndex, one leaf instance per machine with
// its own random stream, a Poisson client on LP 0.
func NewShardedCluster(cfg ShardedClusterConfig) (*ShardedCluster, error) {
	if err := cfg.applyDefaults(); err != nil {
		return nil, err
	}
	eng := New(Options{LPs: cfg.LPs + 1, Workers: cfg.Workers, Lookahead: cfg.WireLatency})
	split := rng.NewSplitter(cfg.Seed)
	sc := &ShardedCluster{
		cfg:     cfg,
		eng:     eng,
		root:    eng.Proc(0),
		cl:      cluster.NewCluster(),
		rootRNG: split.Stream("shard", "root"),
		scratch: make([]int, cfg.Machines),
		open:    make(map[uint64]*openReq),
		latency: stats.NewLatencyHist(),
	}
	for i := range sc.scratch {
		sc.scratch[i] = i
	}

	slow := int(math.Ceil(cfg.SlowFraction * float64(cfg.Machines)))
	shardOf := cluster.PartitionIndex(cfg.Machines, cfg.LPs)
	for i := 0; i < cfg.Machines; i++ {
		name := fmt.Sprintf("leaf%d", i)
		m := cluster.NewMachine(name, cfg.CoresPerMachine, cluster.FreqSpec{})
		if err := sc.cl.Add(m); err != nil {
			return nil, err
		}
		alloc, err := m.Allocate(name, cfg.CoresPerMachine)
		if err != nil {
			return nil, err
		}
		meanNs := cfg.MeanServiceUs * 1e3
		if i < slow {
			meanNs *= cfg.SlowFactor
		}
		bp := service.SingleStage(name, dist.NewExponential(meanNs))
		proc := eng.Proc(1 + shardOf[i])
		inst, err := service.NewInstance(proc, bp, name, alloc, split.Stream("shard", "machine", name))
		if err != nil {
			return nil, err
		}
		sm := &shardMachine{inst: inst, proc: proc, fac: job.NewFactory(), pending: make(map[job.ID]uint64)}
		inst.OnJobDone = func(now des.Time, j *job.Job) {
			id := sm.pending[j.ID]
			delete(sm.pending, j.ID)
			// A response produced behind a cut is lost on the wire; the
			// message to the root then models the root's failure
			// detection, so the leg still resolves deterministically.
			lost := sm.cut > 0
			sm.proc.Send(0, sc.cfg.WireLatency, func(t des.Time) { sc.legDone(t, id, lost) })
		}
		sc.machines = append(sc.machines, sm)
	}
	sc.rootCut = make([]int, cfg.Machines)
	sc.installPartitions()

	sc.gen = workload.NewOpenLoop(sc.root, split.Stream("shard", "client"),
		workload.ConstantRate(cfg.QPS), sc.onArrival)
	return sc, nil
}

// installPartitions schedules each partition's open and heal toggles.
// The root's view flips at From/Until on LP 0; the leaf's view flips via
// a cross-LP message that travels like any other traffic — issued one
// wire latency early so it lands on the leaf at exactly the same virtual
// times, whatever the worker count.
func (sc *ShardedCluster) installPartitions() {
	for _, p := range sc.cfg.Partitions {
		sm := sc.machines[p.Machine]
		machine := p.Machine
		sc.atRootAndLeaf(p.From, sm, func(des.Time) { sc.rootCut[machine]++ }, func(des.Time) { sm.cut++ })
		if p.Until > 0 {
			sc.atRootAndLeaf(p.Until, sm, func(des.Time) { sc.rootCut[machine]-- }, func(des.Time) { sm.cut-- })
		}
	}
}

// atRootAndLeaf fires rootFn on LP 0 and leafFn on the leaf's LP at the
// same virtual time t. The leaf-side toggle crosses LPs as a message
// when the wire latency fits before t, and is pre-seeded at setup when
// it does not (the cut predates any message that could announce it).
func (sc *ShardedCluster) atRootAndLeaf(t des.Time, sm *shardMachine, rootFn, leafFn des.Callback) {
	sc.root.At(t, rootFn)
	if wire := sc.cfg.WireLatency; t >= wire {
		sc.root.At(t-wire, func(des.Time) { sc.root.Send(sm.proc.ID(), wire, leafFn) })
	} else {
		sm.proc.At(t, leafFn)
	}
}

// Engine exposes the underlying parallel engine (for event counts and
// window stats).
func (sc *ShardedCluster) Engine() *Engine { return sc.eng }

// Cluster exposes the machine registry.
func (sc *ShardedCluster) Cluster() *cluster.Cluster { return sc.cl }

// onArrival runs on LP 0: pick Fanout distinct leaves and send each a
// leg, one wire latency away.
func (sc *ShardedCluster) onArrival(now des.Time) {
	sc.nextReq++
	id := sc.nextReq
	sc.requests++
	sc.open[id] = &openReq{remaining: sc.cfg.Fanout, start: now}
	n := len(sc.machines)
	for i := 0; i < sc.cfg.Fanout; i++ {
		// Partial Fisher–Yates: scratch stays a permutation across
		// calls, so no reset is needed and sampling stays uniform.
		j := i + sc.rootRNG.IntN(n-i)
		sc.scratch[i], sc.scratch[j] = sc.scratch[j], sc.scratch[i]
		leaf := sc.scratch[i]
		sm := sc.machines[leaf]
		sc.legsIssued++
		if sc.rootCut[leaf] > 0 {
			// The root's view says the leaf is unreachable: fail the leg
			// fast instead of launching a message into the void.
			sc.legsUnreachable++
			sc.resolveLeg(now, id, false)
			continue
		}
		sc.root.Send(sm.proc.ID(), sc.cfg.WireLatency, func(t des.Time) {
			leg := sm.fac.NewJob(nil)
			sm.pending[leg.ID] = id
			sm.inst.Enqueue(t, leg)
		})
	}
}

// legDone runs on LP 0 when one leg's response (or its loss notice)
// arrives.
func (sc *ShardedCluster) legDone(now des.Time, id uint64, lost bool) {
	if lost {
		sc.legsLost++
	} else {
		sc.legsDone++
	}
	sc.resolveLeg(now, id, !lost)
}

// resolveLeg retires one leg of an open request; the last leg settles
// the request as a completion or, if any leg failed, a failure.
func (sc *ShardedCluster) resolveLeg(now des.Time, id uint64, ok bool) {
	req := sc.open[id]
	if req == nil {
		panic(fmt.Sprintf("pdes: response for unknown request %d", id))
	}
	if !ok {
		req.failed = true
	}
	req.remaining--
	if req.remaining == 0 {
		delete(sc.open, id)
		if req.failed {
			sc.failures++
		} else {
			sc.completions++
			sc.latency.Record(now - req.start)
		}
	}
}

// Run drives the model for the given virtual duration, then drains all
// in-flight legs, and reports. Run may be called once per cluster.
func (sc *ShardedCluster) Run(duration des.Time) *ShardReport {
	sc.gen.Start(0)
	sc.eng.RunUntil(duration)
	sc.gen.Stop()
	sc.eng.Run() // drain in-flight legs; the generator is stopped
	return sc.report()
}

// MachineStats is one leaf's post-run counters.
type MachineStats struct {
	Name      string
	Completed uint64
	Shed      uint64
	InFlight  int
	QueueLen  int
}

// ShardReport summarises a sharded run. Leaked must be zero after every
// drain; the conservation identities are Requests == Completions +
// Failures + len(open) and LegsIssued == LegsDone + LegsUnreachable +
// LegsLost.
type ShardReport struct {
	Requests    uint64
	Completions uint64
	// Failures are requests that lost at least one leg to a partition.
	Failures   uint64
	LegsIssued uint64
	LegsDone   uint64
	// LegsUnreachable failed fast at the root against a cut leaf;
	// LegsLost reached a leaf whose response was then lost in the cut.
	LegsUnreachable uint64
	LegsLost        uint64
	Leaked          uint64
	Events          uint64
	Windows         uint64
	Latency         *stats.LatencyHist
	PerMachine      []MachineStats
}

func (sc *ShardedCluster) report() *ShardReport {
	r := &ShardReport{
		Requests:        sc.requests,
		Completions:     sc.completions,
		Failures:        sc.failures,
		LegsIssued:      sc.legsIssued,
		LegsDone:        sc.legsDone,
		LegsUnreachable: sc.legsUnreachable,
		LegsLost:        sc.legsLost,
		Leaked:          uint64(len(sc.open)) + sc.legsIssued - sc.legsDone - sc.legsUnreachable - sc.legsLost,
		Events:          sc.eng.Processed(),
		Windows:         sc.eng.Windows(),
		Latency:         sc.latency,
	}
	for _, sm := range sc.machines {
		r.PerMachine = append(r.PerMachine, MachineStats{
			Name:      sm.inst.Name,
			Completed: sm.inst.Completed(),
			Shed:      sm.inst.Shed(),
			InFlight:  sm.inst.InFlight(),
			QueueLen:  sm.inst.QueueLen(),
		})
		r.Leaked += uint64(len(sm.pending))
	}
	return r
}

// Fingerprint flattens everything the report asserts about a run —
// counts, per-machine counters, and the latency distribution — into one
// comparable string. Two runs of the same seed must match exactly,
// whatever the worker count.
func (r *ShardReport) Fingerprint() string {
	h := fnv.New64a()
	for _, m := range r.PerMachine {
		fmt.Fprintf(h, "%s:%d/%d/%d/%d;", m.Name, m.Completed, m.Shed, m.InFlight, m.QueueLen)
	}
	return fmt.Sprintf("req=%d comp=%d fail=%d legs=%d/%d unreach=%d lost=%d leak=%d ev=%d lat=%v/%v/%v/%v n=%d mach=%x",
		r.Requests, r.Completions, r.Failures, r.LegsIssued, r.LegsDone,
		r.LegsUnreachable, r.LegsLost, r.Leaked, r.Events,
		r.Latency.Mean(), r.Latency.P50(), r.Latency.P99(), r.Latency.Max(),
		r.Latency.Count(), h.Sum64())
}
