package pdes

import (
	"fmt"

	"uqsim/internal/des"
)

// msg is a cross-LP event buffered in the sender's outbox until the
// window barrier. (at, src, seq) is the deterministic merge key; seq is
// the sender's private send counter, so two messages from the same LP
// to the same destination at the same timestamp keep their issue order.
type msg struct {
	dst, src int
	at       des.Time
	seq      uint64
	fn       des.Callback
}

// Proc is one logical process: a private clock, a private event queue,
// and an outbox of cross-LP messages. It implements des.Scheduler, so
// any model component written against the interface can live entirely
// inside one LP. All methods must be called either during setup (before
// the engine runs) or from this LP's own event callbacks.
type Proc struct {
	eng       *Engine
	id        int
	now       des.Time
	q         des.EventQueue
	processed uint64
	outbox    []msg
	sendSeq   uint64
}

var _ des.Scheduler = (*Proc)(nil)

// ID reports the LP's index within the engine.
func (p *Proc) ID() int { return p.id }

// Now reports this LP's clock. During a window it can trail or lead
// other LPs' clocks by up to the lookahead.
func (p *Proc) Now() des.Time { return p.now }

// Processed reports how many events this LP has fired.
func (p *Proc) Processed() uint64 { return p.processed }

// At schedules fn on this LP at absolute time t. Scheduling in the past
// panics: it indicates a causality bug in a model.
func (p *Proc) At(t des.Time, fn des.Callback) *des.Event {
	p.check(t, fn)
	return p.q.Schedule(t, fn, false)
}

// After schedules fn on this LP d after its current time. Negative
// delays clamp to zero.
func (p *Proc) After(d des.Time, fn des.Callback) *des.Event {
	if d < 0 {
		d = 0
	}
	return p.At(p.now+d, fn)
}

// Post schedules fn on this LP fire-and-forget; the event's storage is
// recycled after it fires.
func (p *Proc) Post(t des.Time, fn des.Callback) {
	p.check(t, fn)
	p.q.Schedule(t, fn, true)
}

// Cancel prevents an event scheduled on this LP from firing. Events
// must be cancelled by the LP that scheduled them.
func (p *Proc) Cancel(ev *des.Event) { p.q.Remove(ev) }

// Send schedules fn on LP dst after delay. Local sends are ordinary
// posts. Cross-LP sends are buffered in the outbox until the window
// barrier and must respect the engine's lookahead — the conservative
// contract that makes windows safe to run in parallel — so Send panics
// on a cross-LP delay below it.
func (p *Proc) Send(dst int, delay des.Time, fn des.Callback) {
	if fn == nil {
		panic("pdes: nil event callback")
	}
	if delay < 0 {
		delay = 0
	}
	if dst == p.id {
		p.Post(p.now+delay, fn)
		return
	}
	if dst < 0 || dst >= len(p.eng.procs) {
		panic(fmt.Sprintf("pdes: send to unknown LP %d (engine has %d)", dst, len(p.eng.procs)))
	}
	if delay < p.eng.opts.Lookahead {
		panic(fmt.Sprintf("pdes: cross-LP send with delay %v below lookahead %v",
			delay, p.eng.opts.Lookahead))
	}
	p.outbox = append(p.outbox, msg{dst: dst, src: p.id, at: p.now + delay, seq: p.sendSeq, fn: fn})
	p.sendSeq++
}

func (p *Proc) check(t des.Time, fn des.Callback) {
	if t < p.now {
		panic(fmt.Sprintf("pdes: LP %d scheduling event at %v before now %v", p.id, t, p.now))
	}
	if fn == nil {
		panic("pdes: nil event callback")
	}
}

// runWindow drains this LP's events strictly before end, in (time, seq)
// order. Events the callbacks schedule locally inside the window are
// picked up in the same pass; cross-LP sends accumulate in the outbox.
func (p *Proc) runWindow(end des.Time) {
	for !p.eng.stopped.Load() {
		ev := p.q.PopBefore(end)
		if ev == nil {
			return
		}
		p.now = ev.At()
		p.processed++
		fn := ev.Fn()
		p.q.Recycle(ev)
		fn(p.now)
	}
}
