// Package pdes is a conservative parallel discrete-event simulation
// engine. The model is partitioned into logical processes (LPs), each
// with its own clock and event queue. Execution proceeds in barrier-
// synchronised lookahead windows: the engine computes the global
// minimum next-event time (GVT), and every LP with work in the
// half-open window [GVT, GVT+lookahead) runs independently on a worker
// goroutine. Cross-LP interactions must be delayed by at least the
// lookahead (in the cluster model: the cross-machine wire latency), so
// nothing an LP does inside a window can affect another LP within that
// same window — no null messages, no rollback.
//
// Cross-LP events are buffered in per-LP outboxes during a window and
// merged at the barrier in deterministic (destination, time, source LP,
// source sequence) order. Because each destination queue assigns its
// local tie-break sequence numbers in that merged order, a run's event
// interleaving — and therefore its determinism fingerprint — is
// independent of the worker count and of goroutine scheduling.
package pdes

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"

	"uqsim/internal/des"
)

const maxTime = des.Time(math.MaxInt64)

// Options configures a parallel engine.
type Options struct {
	// LPs is the number of logical processes. Values < 1 clamp to 1;
	// with a single LP the engine degenerates to a sequential run that
	// is event-for-event identical to des.Engine.
	LPs int
	// Workers is the number of goroutines executing ready LPs within a
	// window. Values < 1 clamp to 1. The result is bit-identical for
	// every worker count; only wall-clock time changes.
	Workers int
	// Lookahead is the minimum virtual-time delay on any cross-LP
	// event, and therefore the window width. Must be positive when
	// LPs > 1.
	Lookahead des.Time
}

// Engine runs LPs through barrier-synchronised lookahead windows. It
// implements des.Runner by delegating scheduling to LP 0 (the
// coordinator), so existing sequential models run on it unchanged.
type Engine struct {
	opts    Options
	procs   []*Proc
	stopped atomic.Bool
	windows uint64
	inbox   []msg // merge scratch, reused across barriers
}

var _ des.Runner = (*Engine)(nil)

// New returns an engine with opts.LPs logical processes, all clocks at
// zero. It panics if LPs > 1 with a non-positive lookahead: without
// lookahead a conservative engine cannot advance.
func New(opts Options) *Engine {
	if opts.LPs < 1 {
		opts.LPs = 1
	}
	if opts.Workers < 1 {
		opts.Workers = 1
	}
	if opts.LPs > 1 && opts.Lookahead <= 0 {
		panic("pdes: multi-LP engine requires a positive lookahead")
	}
	e := &Engine{opts: opts, procs: make([]*Proc, opts.LPs)}
	for i := range e.procs {
		e.procs[i] = &Proc{eng: e, id: i}
	}
	return e
}

// LPs reports the number of logical processes.
func (e *Engine) LPs() int { return len(e.procs) }

// Lookahead reports the configured window width.
func (e *Engine) Lookahead() des.Time { return e.opts.Lookahead }

// Workers reports the configured worker count.
func (e *Engine) Workers() int { return e.opts.Workers }

// Windows reports how many lookahead windows have been executed.
func (e *Engine) Windows() uint64 { return e.windows }

// Proc returns logical process i. Models use it to schedule work on a
// specific LP during setup and from that LP's own events at runtime.
func (e *Engine) Proc(i int) *Proc { return e.procs[i] }

// Now reports the coordinator LP's clock. During a parallel window
// other LPs' clocks may differ by up to the lookahead.
func (e *Engine) Now() des.Time { return e.procs[0].now }

// At schedules fn on the coordinator LP. See des.Scheduler.
func (e *Engine) At(t des.Time, fn des.Callback) *des.Event { return e.procs[0].At(t, fn) }

// After schedules fn on the coordinator LP. See des.Scheduler.
func (e *Engine) After(d des.Time, fn des.Callback) *des.Event { return e.procs[0].After(d, fn) }

// Post schedules fn fire-and-forget on the coordinator LP.
func (e *Engine) Post(t des.Time, fn des.Callback) { e.procs[0].Post(t, fn) }

// Cancel prevents a coordinator-LP event from firing.
func (e *Engine) Cancel(ev *des.Event) { e.procs[0].Cancel(ev) }

// Pending reports the number of live events across all LPs.
func (e *Engine) Pending() int {
	n := 0
	for _, p := range e.procs {
		n += p.q.Len()
	}
	return n
}

// Processed reports how many events have fired across all LPs.
func (e *Engine) Processed() uint64 {
	var n uint64
	for _, p := range e.procs {
		n += p.processed
	}
	return n
}

// NextEventTime reports the earliest pending event time across LPs.
func (e *Engine) NextEventTime() (des.Time, bool) { return e.minNext() }

// Stop halts the run after the current event completes. Safe to call
// from any LP's callback; with multiple workers the events of other LPs
// already executing in the same window still complete, so stopping
// mid-run is only deterministic on single-LP engines.
func (e *Engine) Stop() { e.stopped.Store(true) }

// Resume clears a Stop so the engine can run again.
func (e *Engine) Resume() { e.stopped.Store(false) }

// Stopped reports whether the engine is currently stopped.
func (e *Engine) Stopped() bool { return e.stopped.Load() }

// Run fires events until every LP's queue drains or Stop is called.
func (e *Engine) Run() { e.runLoop(maxTime, false) }

// RunUntil fires events with timestamps ≤ deadline, then advances every
// LP's clock to the deadline. Events beyond the deadline stay pending.
func (e *Engine) RunUntil(deadline des.Time) { e.runLoop(deadline, true) }

func (e *Engine) runLoop(deadline des.Time, advance bool) {
	// Flush cross-LP sends issued during model setup, before any window.
	e.mergeAll()
	ready := make([]*Proc, 0, len(e.procs))
	for !e.stopped.Load() {
		gvt, ok := e.minNext()
		if !ok || gvt > deadline {
			break
		}
		// Events at exactly the deadline must fire (RunUntil is
		// inclusive), and PopBefore is exclusive, hence deadline+1.
		end := satAdd(deadline, 1)
		if len(e.procs) > 1 {
			if w := satAdd(gvt, e.opts.Lookahead); w < end {
				end = w
			}
		}
		ready = ready[:0]
		for _, p := range e.procs {
			if t, ok := p.q.Peek(); ok && t < end {
				ready = append(ready, p)
			}
		}
		e.windows++
		e.execute(ready, end)
		e.mergeAll()
	}
	if advance && !e.stopped.Load() {
		for _, p := range e.procs {
			if p.now < deadline {
				p.now = deadline
			}
		}
	}
}

// execute runs every ready LP's window, in parallel when more than one
// worker is configured. The WaitGroup barrier gives the merge phase a
// happens-before edge over all worker writes.
func (e *Engine) execute(ready []*Proc, end des.Time) {
	w := e.opts.Workers
	if w > len(ready) {
		w = len(ready)
	}
	if w <= 1 {
		for _, p := range ready {
			p.runWindow(end)
		}
		return
	}
	var wg sync.WaitGroup
	chunk := (len(ready) + w - 1) / w
	for start := 0; start < len(ready); start += chunk {
		stop := start + chunk
		if stop > len(ready) {
			stop = len(ready)
		}
		wg.Add(1)
		go func(procs []*Proc) {
			defer wg.Done()
			for _, p := range procs {
				p.runWindow(end)
			}
		}(ready[start:stop])
	}
	wg.Wait()
}

// mergeAll drains every LP's outbox and delivers the messages in
// deterministic (destination, time, source, sequence) order, so each
// destination queue assigns local tie-break sequence numbers
// identically no matter how the window was scheduled across workers.
func (e *Engine) mergeAll() {
	msgs := e.inbox[:0]
	for _, p := range e.procs {
		msgs = append(msgs, p.outbox...)
		p.outbox = p.outbox[:0]
	}
	if len(msgs) > 0 {
		sort.Slice(msgs, func(i, j int) bool {
			a, b := &msgs[i], &msgs[j]
			if a.dst != b.dst {
				return a.dst < b.dst
			}
			if a.at != b.at {
				return a.at < b.at
			}
			if a.src != b.src {
				return a.src < b.src
			}
			return a.seq < b.seq
		})
		for i := range msgs {
			m := &msgs[i]
			p := e.procs[m.dst]
			if m.at < p.now {
				panic(fmt.Sprintf("pdes: merged message for LP %d at %v is before its clock %v",
					m.dst, m.at, p.now))
			}
			p.q.Schedule(m.at, m.fn, true)
			m.fn = nil // release the closure; msgs backs the reused scratch
		}
	}
	e.inbox = msgs[:0]
}

// minNext reports the global minimum next-event time (the GVT bound).
func (e *Engine) minNext() (des.Time, bool) {
	best, ok := maxTime, false
	for _, p := range e.procs {
		if t, live := p.q.Peek(); live && t < best {
			best, ok = t, true
		}
	}
	return best, ok
}

func satAdd(a, b des.Time) des.Time {
	if s := a + b; s >= a {
		return s
	}
	return maxTime
}
