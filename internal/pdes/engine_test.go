package pdes

import (
	"fmt"
	"math/rand/v2"
	"strings"
	"testing"

	"uqsim/internal/des"
)

// ringModel is a synthetic multi-LP workload: every LP runs a local
// event chain with pseudo-random gaps and, at random intervals, sends a
// token to its ring neighbour with a delay at or above the lookahead.
// Each LP folds every event it fires into a running hash, so the
// combined trace is sensitive to both event times and tie-break order.
type ringModel struct {
	hashes []uint64
	fired  []uint64
}

func buildRing(e *Engine, seed uint64, chains int, la des.Time) *ringModel {
	m := &ringModel{hashes: make([]uint64, e.LPs()), fired: make([]uint64, e.LPs())}
	n := e.LPs()
	for lp := 0; lp < n; lp++ {
		p := e.Proc(lp)
		r := rand.New(rand.NewPCG(seed, uint64(lp)))
		lp := lp
		var step des.Callback
		step = func(now des.Time) {
			m.hashes[lp] = m.hashes[lp]*1099511628211 + uint64(now) + 1
			m.fired[lp]++
			if r.IntN(4) == 0 {
				dst := (lp + 1) % n
				jitter := des.Time(r.Int64N(int64(la)))
				p.Send(dst, la+jitter, func(at des.Time) {
					m.hashes[dst] = m.hashes[dst]*31 + uint64(at)
					m.fired[dst]++
				})
			}
			p.Post(now+des.Time(1+r.Int64N(int64(la))), step)
		}
		for c := 0; c < chains; c++ {
			p.Post(des.Time(r.Int64N(int64(la))), step)
		}
	}
	return m
}

func (m *ringModel) fingerprint() string {
	var b strings.Builder
	for i := range m.hashes {
		fmt.Fprintf(&b, "%d:%x:%d;", i, m.hashes[i], m.fired[i])
	}
	return b.String()
}

func TestWorkerCountDoesNotChangeTrace(t *testing.T) {
	const la = 50 * des.Microsecond
	run := func(workers int) (string, uint64) {
		e := New(Options{LPs: 8, Workers: workers, Lookahead: la})
		m := buildRing(e, 42, 3, la)
		e.RunUntil(des.FromSeconds(0.05))
		return m.fingerprint(), e.Processed()
	}
	base, events := run(1)
	if events == 0 {
		t.Fatal("model fired no events")
	}
	for _, w := range []int{2, 4, 8} {
		if fp, n := run(w); fp != base || n != events {
			t.Fatalf("workers=%d diverged: %d events vs %d\n got %s\nwant %s", w, n, events, fp, base)
		}
	}
}

func TestSeedChangesTrace(t *testing.T) {
	const la = 50 * des.Microsecond
	run := func(seed uint64) string {
		e := New(Options{LPs: 8, Workers: 4, Lookahead: la})
		m := buildRing(e, seed, 3, la)
		e.RunUntil(des.FromSeconds(0.02))
		return m.fingerprint()
	}
	if run(1) == run(2) {
		t.Fatal("different seeds produced identical traces; fingerprint is not discriminating")
	}
}

// TestCoordinatorMatchesSequentialEngine runs an identical single-LP
// model on des.Engine and on a pdes coordinator and requires the exact
// same event trace, clock, and counts — the property that lets Sim run
// on either engine interchangeably.
func TestCoordinatorMatchesSequentialEngine(t *testing.T) {
	build := func(s des.Scheduler) *[]string {
		trace := &[]string{}
		r := rand.New(rand.NewPCG(7, 9))
		var step des.Callback
		n := 0
		step = func(now des.Time) {
			*trace = append(*trace, fmt.Sprintf("%d@%v", n, now))
			n++
			if n < 500 {
				if n%3 == 0 {
					ev := s.At(now+des.Microsecond, func(des.Time) { *trace = append(*trace, "victim") })
					s.Cancel(ev)
				}
				s.Post(now+des.Time(r.Int64N(1000)), step)
				s.After(des.Time(r.Int64N(1000)), step)
			}
		}
		s.Post(0, step)
		return trace
	}

	seq := des.New()
	seqTrace := build(seq)
	seq.Run()

	par := New(Options{LPs: 1, Workers: 4})
	parTrace := build(par)
	par.Run()

	if len(*seqTrace) != len(*parTrace) {
		t.Fatalf("trace lengths differ: %d vs %d", len(*seqTrace), len(*parTrace))
	}
	for i := range *seqTrace {
		if (*seqTrace)[i] != (*parTrace)[i] {
			t.Fatalf("trace diverges at %d: %q vs %q", i, (*seqTrace)[i], (*parTrace)[i])
		}
	}
	if seq.Now() != par.Now() || seq.Processed() != par.Processed() {
		t.Fatalf("engine state diverges: now %v/%v processed %d/%d",
			seq.Now(), par.Now(), seq.Processed(), par.Processed())
	}
}

func TestRunUntilAdvancesAllClocks(t *testing.T) {
	e := New(Options{LPs: 3, Workers: 2, Lookahead: des.Microsecond})
	e.Proc(2).Post(5*des.Microsecond, func(des.Time) {})
	deadline := des.FromSeconds(0.001)
	e.RunUntil(deadline)
	for i := 0; i < e.LPs(); i++ {
		if now := e.Proc(i).Now(); now != deadline {
			t.Fatalf("LP %d clock %v, want %v", i, now, deadline)
		}
	}
	if e.Pending() != 0 {
		t.Fatalf("%d events pending after drain", e.Pending())
	}
}

func TestRunUntilLeavesFutureEventsPending(t *testing.T) {
	e := New(Options{LPs: 2, Workers: 2, Lookahead: des.Microsecond})
	fired := false
	e.Proc(1).Post(des.FromSeconds(1), func(des.Time) { fired = true })
	e.RunUntil(des.FromSeconds(0.5))
	if fired {
		t.Fatal("event beyond the deadline fired")
	}
	if e.Pending() != 1 {
		t.Fatalf("pending = %d, want 1", e.Pending())
	}
	e.RunUntil(des.FromSeconds(2))
	if !fired {
		t.Fatal("event did not fire after deadline passed it")
	}
}

func TestSendBelowLookaheadPanics(t *testing.T) {
	e := New(Options{LPs: 2, Workers: 1, Lookahead: des.Millisecond})
	defer func() {
		if recover() == nil {
			t.Fatal("cross-LP send below lookahead did not panic")
		}
	}()
	e.Proc(0).Send(1, des.Microsecond, func(des.Time) {})
}

func TestSetupTimeSendsDeliver(t *testing.T) {
	e := New(Options{LPs: 2, Workers: 2, Lookahead: des.Microsecond})
	got := des.Time(-1)
	e.Proc(0).Send(1, 3*des.Microsecond, func(now des.Time) { got = now })
	e.Run()
	if got != 3*des.Microsecond {
		t.Fatalf("setup-time send fired at %v, want 3µs", got)
	}
}

func TestStopHaltsRun(t *testing.T) {
	e := New(Options{LPs: 1, Workers: 1})
	count := 0
	var step des.Callback
	step = func(now des.Time) {
		count++
		if count == 10 {
			e.Stop()
		}
		e.Post(now+des.Microsecond, step)
	}
	e.Post(0, step)
	e.Run()
	if count != 10 {
		t.Fatalf("ran %d events, want 10", count)
	}
	if e.Stopped() != true {
		t.Fatal("engine not stopped")
	}
	e.Resume()
	e.RunUntil(des.FromSeconds(0.000020))
	if count <= 10 {
		t.Fatal("engine did not resume")
	}
}
