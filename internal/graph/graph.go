// Package graph describes the inter-microservice model of µqSim: trees of
// path nodes that requests traverse across microservices (the paper's
// path.json), including:
//
//   - fan-out: a node with several children sends a copy of the job to
//     each child's microservice;
//   - synchronization (fan-in): a node with several parents starts only
//     after every parent's job has completed;
//   - blocking: nodes acquire and release connection tokens from named
//     connection pools, expressing http/1.1 one-outstanding-request
//     semantics, finite connection pools, and similar back-pressure.
//
// The package is purely descriptive; the sim package executes topologies.
package graph

import (
	"fmt"
)

// Node is one step of an inter-microservice path tree.
type Node struct {
	// ID is the node's index within its tree.
	ID int
	// Service names the microservice deployment the node executes on.
	Service string
	// ServicePath names the execution path inside the service ("" =
	// the service's first path).
	ServicePath string
	// Instance pins the node to a specific instance of the service
	// (index into the deployment's instance list); -1 load-balances.
	Instance int
	// Children lists node IDs that receive a copy of the job after
	// this node completes.
	Children []int
	// AcquireConn lists connection pools from which a token must be
	// held before the node's job may enter its service. Tokens are held
	// until released by a node listing the pool in ReleaseConn.
	AcquireConn []string
	// ReleaseConn lists connection pools whose token (held by this
	// request) is released when this node's job completes.
	ReleaseConn []string
	// BranchKey, when non-empty, makes the node's children a runtime
	// decision: the simulator consults the brancher registered under
	// this key to select WHICH children receive the job (e.g. a cache
	// model deciding hit vs miss). Branch children must have this node
	// as their only parent and pairwise-disjoint subtrees, so pruned
	// branches can be accounted exactly. When an upstream node acquired
	// a connection token, every branch alternative must release it
	// (e.g. each alternative ends in its own reply node carrying the
	// ReleaseConn) — otherwise the unselected alternative's release
	// never runs and the token leaks.
	BranchKey string
}

// Tree is one inter-microservice path: a rooted tree of nodes, selected
// with probability proportional to Weight when a request arrives.
type Tree struct {
	Name   string
	Weight float64
	Root   int
	Nodes  []Node

	parents     [][]int
	leaves      []int
	leavesUnder [][]int
}

// Validate checks structural invariants and computes parent/leaf indices.
// It must be called (directly or via Topology.Validate) before Parents or
// Leaves.
func (t *Tree) Validate() error {
	if len(t.Nodes) == 0 {
		return fmt.Errorf("graph: tree %q has no nodes", t.Name)
	}
	if t.Weight < 0 {
		return fmt.Errorf("graph: tree %q has negative weight", t.Name)
	}
	if t.Root < 0 || t.Root >= len(t.Nodes) {
		return fmt.Errorf("graph: tree %q root %d out of range", t.Name, t.Root)
	}
	t.parents = make([][]int, len(t.Nodes))
	for i := range t.Nodes {
		n := &t.Nodes[i]
		if n.ID != i {
			return fmt.Errorf("graph: tree %q node %d has ID %d (must equal index)", t.Name, i, n.ID)
		}
		if n.Service == "" {
			return fmt.Errorf("graph: tree %q node %d has no service", t.Name, i)
		}
		seen := make(map[int]bool)
		for _, c := range n.Children {
			if c < 0 || c >= len(t.Nodes) {
				return fmt.Errorf("graph: tree %q node %d child %d out of range", t.Name, i, c)
			}
			if c == i {
				return fmt.Errorf("graph: tree %q node %d is its own child", t.Name, i)
			}
			if seen[c] {
				return fmt.Errorf("graph: tree %q node %d lists child %d twice", t.Name, i, c)
			}
			seen[c] = true
			t.parents[c] = append(t.parents[c], i)
		}
	}
	if len(t.parents[t.Root]) != 0 {
		return fmt.Errorf("graph: tree %q root %d has parents", t.Name, t.Root)
	}
	// Reachability + acyclicity from the root (DAG check via coloring).
	state := make([]int, len(t.Nodes)) // 0 unseen, 1 in-stack, 2 done
	var visit func(int) error
	visit = func(id int) error {
		switch state[id] {
		case 1:
			return fmt.Errorf("graph: tree %q has a cycle through node %d", t.Name, id)
		case 2:
			return nil
		}
		state[id] = 1
		for _, c := range t.Nodes[id].Children {
			if err := visit(c); err != nil {
				return err
			}
		}
		state[id] = 2
		return nil
	}
	if err := visit(t.Root); err != nil {
		return err
	}
	t.leaves = nil
	for i := range t.Nodes {
		if state[i] == 0 {
			return fmt.Errorf("graph: tree %q node %d unreachable from root", t.Name, i)
		}
		if len(t.Nodes[i].Children) == 0 {
			t.leaves = append(t.leaves, i)
		}
	}
	t.computeLeavesUnder()
	// Branch nodes need exactly-pruneable subtrees: each child has only
	// this node as parent, and child subtrees are pairwise disjoint.
	for i := range t.Nodes {
		n := &t.Nodes[i]
		if n.BranchKey == "" {
			continue
		}
		if len(n.Children) < 2 {
			return fmt.Errorf("graph: tree %q branch node %d needs at least 2 children", t.Name, i)
		}
		seen := make(map[int]int)
		for _, c := range n.Children {
			if len(t.parents[c]) != 1 {
				return fmt.Errorf("graph: tree %q branch node %d child %d must have a single parent",
					t.Name, i, c)
			}
			for _, leaf := range t.leavesUnder[c] {
				if prev, dup := seen[leaf]; dup {
					return fmt.Errorf("graph: tree %q branch node %d children %d and %d share leaf %d",
						t.Name, i, prev, c, leaf)
				}
				seen[leaf] = c
			}
		}
	}
	return nil
}

// computeLeavesUnder fills leavesUnder[i] with the leaf IDs reachable from
// node i (memoized DFS; the tree is already known acyclic).
func (t *Tree) computeLeavesUnder() {
	t.leavesUnder = make([][]int, len(t.Nodes))
	done := make([]bool, len(t.Nodes))
	var visit func(int) []int
	visit = func(id int) []int {
		if done[id] {
			return t.leavesUnder[id]
		}
		done[id] = true
		if len(t.Nodes[id].Children) == 0 {
			t.leavesUnder[id] = []int{id}
			return t.leavesUnder[id]
		}
		set := map[int]bool{}
		for _, c := range t.Nodes[id].Children {
			for _, leaf := range visit(c) {
				set[leaf] = true
			}
		}
		out := make([]int, 0, len(set))
		for leaf := range set {
			out = append(out, leaf)
		}
		t.leavesUnder[id] = out
		return out
	}
	visit(t.Root)
}

// LeavesUnder reports the leaf node IDs reachable from node id.
func (t *Tree) LeavesUnder(id int) []int { return t.leavesUnder[id] }

// Parents reports the parent node IDs of node id (fan-in set).
func (t *Tree) Parents(id int) []int { return t.parents[id] }

// Leaves reports the IDs of nodes with no children; the request completes
// when all leaf jobs have completed.
func (t *Tree) Leaves() []int { return t.leaves }

// FanIn reports how many parent completions node id waits for.
func (t *Tree) FanIn(id int) int {
	n := len(t.parents[id])
	if n == 0 {
		return 1 // root: triggered by request arrival
	}
	return n
}

// ConnPool declares a connection pool between tiers: Capacity tokens, each
// token representing one connection that admits one outstanding request at
// a time (http/1.1 semantics).
type ConnPool struct {
	Name     string
	Capacity int
}

// Topology is the complete inter-microservice description: the weighted
// path trees plus the connection pools they reference.
type Topology struct {
	Trees []Tree
	Pools []ConnPool
}

// Validate checks every tree and pool, and that all referenced pools exist.
func (tp *Topology) Validate() error {
	if len(tp.Trees) == 0 {
		return fmt.Errorf("graph: topology has no trees")
	}
	pools := make(map[string]bool)
	for _, p := range tp.Pools {
		if p.Name == "" {
			return fmt.Errorf("graph: pool with empty name")
		}
		if p.Capacity < 1 {
			return fmt.Errorf("graph: pool %q needs positive capacity", p.Name)
		}
		if pools[p.Name] {
			return fmt.Errorf("graph: duplicate pool %q", p.Name)
		}
		pools[p.Name] = true
	}
	totalWeight := 0.0
	for i := range tp.Trees {
		t := &tp.Trees[i]
		if err := t.Validate(); err != nil {
			return err
		}
		totalWeight += t.Weight
		for j := range t.Nodes {
			for _, ref := range append(append([]string{}, t.Nodes[j].AcquireConn...), t.Nodes[j].ReleaseConn...) {
				if !pools[ref] {
					return fmt.Errorf("graph: tree %q node %d references unknown pool %q",
						t.Name, j, ref)
				}
			}
		}
	}
	if totalWeight <= 0 {
		return fmt.Errorf("graph: tree weights must sum to a positive value")
	}
	return nil
}

// Weights reports the trees' selection weights in order.
func (tp *Topology) Weights() []float64 {
	w := make([]float64, len(tp.Trees))
	for i := range tp.Trees {
		w[i] = tp.Trees[i].Weight
	}
	return w
}

// Linear builds the common special case of a pipeline topology: a single
// tree visiting the given services in sequence, with no pools. Weight 1.
func Linear(name string, services ...string) *Topology {
	if len(services) == 0 {
		panic("graph: Linear needs at least one service")
	}
	nodes := make([]Node, len(services))
	for i, s := range services {
		nodes[i] = Node{ID: i, Service: s, Instance: -1}
		if i+1 < len(services) {
			nodes[i].Children = []int{i + 1}
		}
	}
	return &Topology{Trees: []Tree{{Name: name, Weight: 1, Root: 0, Nodes: nodes}}}
}
