package graph

import (
	"sort"
	"testing"
)

func chainTree(name string, services ...string) Tree {
	nodes := make([]Node, len(services))
	for i, s := range services {
		nodes[i] = Node{ID: i, Service: s, Instance: -1}
		if i+1 < len(services) {
			nodes[i].Children = []int{i + 1}
		}
	}
	return Tree{Name: name, Weight: 1, Root: 0, Nodes: nodes}
}

func TestTreeValidateChain(t *testing.T) {
	tr := chainTree("c", "a", "b", "c")
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := tr.Leaves(); len(got) != 1 || got[0] != 2 {
		t.Fatalf("leaves = %v", got)
	}
	if got := tr.Parents(1); len(got) != 1 || got[0] != 0 {
		t.Fatalf("parents(1) = %v", got)
	}
	if tr.FanIn(0) != 1 || tr.FanIn(1) != 1 {
		t.Fatal("fanin of chain nodes should be 1")
	}
}

func TestTreeValidateFanoutFanin(t *testing.T) {
	// proxy → {s1, s2, s3} → join
	tr := Tree{
		Name: "fanout", Weight: 1, Root: 0,
		Nodes: []Node{
			{ID: 0, Service: "proxy", Children: []int{1, 2, 3}},
			{ID: 1, Service: "s", Instance: 0, Children: []int{4}},
			{ID: 2, Service: "s", Instance: 1, Children: []int{4}},
			{ID: 3, Service: "s", Instance: 2, Children: []int{4}},
			{ID: 4, Service: "proxy"},
		},
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	if tr.FanIn(4) != 3 {
		t.Fatalf("fanin(join) = %d, want 3", tr.FanIn(4))
	}
	p := append([]int(nil), tr.Parents(4)...)
	sort.Ints(p)
	if len(p) != 3 || p[0] != 1 || p[2] != 3 {
		t.Fatalf("parents(4) = %v", p)
	}
	if got := tr.Leaves(); len(got) != 1 || got[0] != 4 {
		t.Fatalf("leaves = %v", got)
	}
}

func TestTreeValidateErrors(t *testing.T) {
	cases := []Tree{
		{Name: "empty"},
		{Name: "badroot", Root: 5, Nodes: []Node{{ID: 0, Service: "a"}}},
		{Name: "badid", Nodes: []Node{{ID: 1, Service: "a"}}},
		{Name: "nosvc", Nodes: []Node{{ID: 0}}},
		{Name: "badchild", Nodes: []Node{{ID: 0, Service: "a", Children: []int{7}}}},
		{Name: "selfchild", Nodes: []Node{{ID: 0, Service: "a", Children: []int{0}}}},
		{Name: "dupchild", Nodes: []Node{
			{ID: 0, Service: "a", Children: []int{1, 1}},
			{ID: 1, Service: "b"},
		}},
		{Name: "negweight", Weight: -1, Nodes: []Node{{ID: 0, Service: "a"}}},
		{Name: "rootparent", Root: 0, Nodes: []Node{
			{ID: 0, Service: "a", Children: []int{1}},
			{ID: 1, Service: "b", Children: []int{0}},
		}},
		{Name: "cycle", Root: 0, Nodes: []Node{
			{ID: 0, Service: "a", Children: []int{1}},
			{ID: 1, Service: "b", Children: []int{2}},
			{ID: 2, Service: "c", Children: []int{1}},
		}},
		{Name: "unreachable", Root: 0, Nodes: []Node{
			{ID: 0, Service: "a"},
			{ID: 1, Service: "b"},
		}},
	}
	for _, tr := range cases {
		if err := tr.Validate(); err == nil {
			t.Errorf("tree %q: expected validation error", tr.Name)
		}
	}
}

func TestDiamondSharedChildAllowed(t *testing.T) {
	// a → {b, c} → d : d has two parents (fan-in join), valid.
	tr := Tree{
		Name: "diamond", Weight: 1, Root: 0,
		Nodes: []Node{
			{ID: 0, Service: "a", Children: []int{1, 2}},
			{ID: 1, Service: "b", Children: []int{3}},
			{ID: 2, Service: "c", Children: []int{3}},
			{ID: 3, Service: "d"},
		},
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	if tr.FanIn(3) != 2 {
		t.Fatalf("fanin = %d", tr.FanIn(3))
	}
}

func TestTopologyValidate(t *testing.T) {
	tp := &Topology{
		Trees: []Tree{chainTree("main", "nginx", "memcached")},
		Pools: []ConnPool{{Name: "client:nginx", Capacity: 320}},
	}
	tp.Trees[0].Nodes[0].AcquireConn = []string{"client:nginx"}
	tp.Trees[0].Nodes[1].ReleaseConn = []string{"client:nginx"}
	if err := tp.Validate(); err != nil {
		t.Fatal(err)
	}
	if w := tp.Weights(); len(w) != 1 || w[0] != 1 {
		t.Fatalf("weights = %v", w)
	}
}

func TestTopologyValidateErrors(t *testing.T) {
	base := chainTree("main", "a")
	cases := []*Topology{
		{},
		{Trees: []Tree{base}, Pools: []ConnPool{{Name: "", Capacity: 1}}},
		{Trees: []Tree{base}, Pools: []ConnPool{{Name: "p", Capacity: 0}}},
		{Trees: []Tree{base}, Pools: []ConnPool{{Name: "p", Capacity: 1}, {Name: "p", Capacity: 2}}},
	}
	for i, tp := range cases {
		if err := tp.Validate(); err == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
	// Unknown pool reference.
	tr := chainTree("main", "a")
	tr.Nodes[0].AcquireConn = []string{"ghost"}
	if err := (&Topology{Trees: []Tree{tr}}).Validate(); err == nil {
		t.Error("unknown pool should fail")
	}
	// Zero total weight.
	zw := chainTree("main", "a")
	zw.Weight = 0
	if err := (&Topology{Trees: []Tree{zw}}).Validate(); err == nil {
		t.Error("zero total weight should fail")
	}
}

func TestProbabilisticTrees(t *testing.T) {
	hit := chainTree("hit", "nginx", "memcached")
	hit.Weight = 0.7
	miss := chainTree("miss", "nginx", "memcached", "mongodb")
	miss.Weight = 0.3
	tp := &Topology{Trees: []Tree{hit, miss}}
	if err := tp.Validate(); err != nil {
		t.Fatal(err)
	}
	w := tp.Weights()
	if w[0] != 0.7 || w[1] != 0.3 {
		t.Fatalf("weights = %v", w)
	}
}

func TestLinearBuilder(t *testing.T) {
	tp := Linear("pipeline", "a", "b", "c")
	if err := tp.Validate(); err != nil {
		t.Fatal(err)
	}
	tr := &tp.Trees[0]
	if len(tr.Nodes) != 3 || tr.Nodes[0].Children[0] != 1 || tr.Nodes[1].Children[0] != 2 {
		t.Fatal("linear structure wrong")
	}
	if tr.Nodes[0].Instance != -1 {
		t.Fatal("linear nodes should load-balance")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("empty Linear should panic")
		}
	}()
	Linear("x")
}

func TestLeavesUnder(t *testing.T) {
	tr := Tree{
		Name: "fan", Weight: 1, Root: 0,
		Nodes: []Node{
			{ID: 0, Service: "root", Children: []int{1, 2}},
			{ID: 1, Service: "a", Children: []int{3}},
			{ID: 2, Service: "b"},
			{ID: 3, Service: "c"},
		},
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	root := append([]int(nil), tr.LeavesUnder(0)...)
	sort.Ints(root)
	if len(root) != 2 || root[0] != 2 || root[1] != 3 {
		t.Fatalf("leaves under root = %v", root)
	}
	if got := tr.LeavesUnder(1); len(got) != 1 || got[0] != 3 {
		t.Fatalf("leaves under 1 = %v", got)
	}
	if got := tr.LeavesUnder(2); len(got) != 1 || got[0] != 2 {
		t.Fatalf("leaves under 2 = %v", got)
	}
}

func TestBranchNodeValidation(t *testing.T) {
	// Valid branch: two disjoint single-parent subtrees.
	ok := Tree{
		Name: "ok", Weight: 1, Root: 0,
		Nodes: []Node{
			{ID: 0, Service: "front", Children: []int{1, 2}, BranchKey: "k"},
			{ID: 1, Service: "hit"},
			{ID: 2, Service: "miss", Children: []int{3}},
			{ID: 3, Service: "tx"},
		},
	}
	if err := ok.Validate(); err != nil {
		t.Fatalf("valid branch rejected: %v", err)
	}
	// One child only.
	single := Tree{
		Name: "single", Weight: 1, Root: 0,
		Nodes: []Node{
			{ID: 0, Service: "front", Children: []int{1}, BranchKey: "k"},
			{ID: 1, Service: "a"},
		},
	}
	if err := single.Validate(); err == nil {
		t.Fatal("single-child branch should fail")
	}
	// Children converging on a shared join leaf.
	shared := Tree{
		Name: "shared", Weight: 1, Root: 0,
		Nodes: []Node{
			{ID: 0, Service: "front", Children: []int{1, 2}, BranchKey: "k"},
			{ID: 1, Service: "a", Children: []int{3}},
			{ID: 2, Service: "b", Children: []int{3}},
			{ID: 3, Service: "join"},
		},
	}
	if err := shared.Validate(); err == nil {
		t.Fatal("shared-leaf branch should fail")
	}
	// Branch child with a second parent outside the branch.
	twoParents := Tree{
		Name: "twoparents", Weight: 1, Root: 0,
		Nodes: []Node{
			{ID: 0, Service: "root", Children: []int{1, 3}},
			{ID: 1, Service: "front", Children: []int{2, 4}, BranchKey: "k"},
			{ID: 2, Service: "a"},
			{ID: 3, Service: "other", Children: []int{4}},
			{ID: 4, Service: "b"},
		},
	}
	if err := twoParents.Validate(); err == nil {
		t.Fatal("multi-parent branch child should fail")
	}
}
