package fault

import (
	"fmt"
	"math"

	"uqsim/internal/des"
)

// QueueKind selects a per-instance admission/ordering discipline applied to
// a service's entry queue, beyond the static MaxQueue length bound.
type QueueKind int

// Queue disciplines.
const (
	// QueueFIFO is the default: first-in-first-out, no sojourn shedding.
	QueueFIFO QueueKind = iota
	// QueueCoDel sheds by sojourn time: when the queueing delay of
	// dequeued jobs stays above Target for a full Interval, heads are
	// dropped at an increasing rate (interval/sqrt(count)) until the
	// delay recovers — bounding queueing delay instead of queue length.
	QueueCoDel
	// QueueLIFO is adaptive LIFO-under-overload: while the head's sojourn
	// exceeds Target the newest job is served first, so fresh requests
	// (which can still meet their deadline) are preferred over stale ones
	// that have already blown theirs.
	QueueLIFO
	// QueueCoDelLIFO combines CoDel shedding with adaptive LIFO ordering.
	QueueCoDelLIFO
)

// String names the discipline.
func (k QueueKind) String() string {
	switch k {
	case QueueFIFO:
		return "fifo"
	case QueueCoDel:
		return "codel"
	case QueueLIFO:
		return "lifo"
	case QueueCoDelLIFO:
		return "codel+lifo"
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

// QueueDiscipline configures one service's entry-queue discipline.
type QueueDiscipline struct {
	Kind QueueKind
	// Target is the acceptable standing queueing delay (CoDel target /
	// adaptive-LIFO trigger). Defaults to 5ms when zero.
	Target des.Time
	// Interval is the CoDel control interval — how long the sojourn must
	// stay above Target before shedding starts. Defaults to 100ms.
	Interval des.Time
}

// Validate checks parameter ranges.
func (d *QueueDiscipline) Validate() error {
	if d.Kind < QueueFIFO || d.Kind > QueueCoDelLIFO {
		return fmt.Errorf("fault: unknown queue discipline %d", int(d.Kind))
	}
	if d.Target < 0 {
		return fmt.Errorf("fault: queue discipline target %v negative", d.Target)
	}
	if d.Interval < 0 {
		return fmt.Errorf("fault: queue discipline interval %v negative", d.Interval)
	}
	return nil
}

// WithDefaults returns a copy with the documented defaults filled in.
func (d QueueDiscipline) WithDefaults() QueueDiscipline {
	if d.Target <= 0 {
		d.Target = 5 * des.Millisecond
	}
	if d.Interval <= 0 {
		d.Interval = 100 * des.Millisecond
	}
	return d
}

// Sheds reports whether the discipline includes CoDel sojourn shedding.
func (d QueueDiscipline) Sheds() bool {
	return d.Kind == QueueCoDel || d.Kind == QueueCoDelLIFO
}

// LIFO reports whether the discipline flips to newest-first under overload.
func (d QueueDiscipline) LIFO() bool {
	return d.Kind == QueueLIFO || d.Kind == QueueCoDelLIFO
}

// CoDel is the controlled-delay shedding state machine (Nichols & Jacobson,
// CACM 2012), driven entirely by virtual time so runs stay deterministic.
// The consumer calls OnDequeue with each dequeued job's sojourn time; a
// true return means "shed this job and examine the next".
type CoDel struct {
	target   des.Time
	interval des.Time

	// firstAbove is the deadline by which the sojourn must dip below
	// target to avoid entering the dropping state (0: currently below).
	firstAbove des.Time
	dropping   bool
	dropNext   des.Time
	count      uint64 // drops in the current dropping episode
	drops      uint64 // lifetime shed count
}

// NewCoDel builds the controller for a (defaulted, validated) discipline.
func NewCoDel(d QueueDiscipline) *CoDel {
	d = d.WithDefaults()
	return &CoDel{target: d.Target, interval: d.Interval}
}

// OnDequeue feeds one dequeue observation (the job's time spent queued)
// and reports whether the job should be shed instead of served.
func (c *CoDel) OnDequeue(now, sojourn des.Time) bool {
	if sojourn < c.target {
		// Standing delay is acceptable: leave the dropping state and
		// restart the above-target clock.
		c.firstAbove = 0
		c.dropping = false
		return false
	}
	if c.firstAbove == 0 {
		// First observation above target: give the queue one interval to
		// recover before shedding.
		c.firstAbove = now + c.interval
		return false
	}
	if !c.dropping {
		if now < c.firstAbove {
			return false
		}
		// The sojourn stayed above target for a whole interval: start
		// shedding, beginning with this job.
		c.dropping = true
		c.count = 1
		c.dropNext = c.next(now)
		c.drops++
		return true
	}
	if now < c.dropNext {
		return false
	}
	// In the dropping state, shed at the increasing control-law rate.
	c.count++
	c.dropNext = c.next(c.dropNext)
	c.drops++
	return true
}

// next advances the drop schedule by interval/sqrt(count) from the given
// reference time — the CoDel control law.
func (c *CoDel) next(from des.Time) des.Time {
	return from + des.Time(float64(c.interval)/math.Sqrt(float64(c.count)))
}

// Dropping reports whether the controller is currently in a shedding
// episode.
func (c *CoDel) Dropping() bool { return c.dropping }

// Drops reports the lifetime number of jobs shed.
func (c *CoDel) Drops() uint64 { return c.drops }
