package fault

import (
	"testing"

	"uqsim/internal/des"
	"uqsim/internal/rng"
)

func TestEventValidation(t *testing.T) {
	good := []Event{
		{At: des.Second, Kind: CrashMachine, Machine: "m0"},
		{At: 2 * des.Second, Kind: RecoverMachine, Machine: "m0"},
		{At: 0, Kind: KillInstance, Service: "svc", Instance: -1},
		{At: 0, Kind: RestartInstance, Service: "svc", Instance: 1},
		{At: 0, Kind: DegradeFreq, Machine: "m0", FreqMHz: 1200},
		{At: des.Second, Kind: EdgeLatency, Service: "svc",
			Extra: des.Millisecond, Until: 2 * des.Second},
	}
	for i, e := range good {
		if err := e.Validate(); err != nil {
			t.Errorf("event %d (%s): unexpected error %v", i, e.Kind, err)
		}
	}
	bad := []Event{
		{At: -1, Kind: CrashMachine, Machine: "m0"},
		{Kind: CrashMachine},                // no machine
		{Kind: KillInstance},                // no service
		{Kind: DegradeFreq, Machine: "m0"},  // no freq
		{Kind: EdgeLatency, Service: "svc"}, // no latency
		{Kind: Kind(99), Machine: "m0"},     // unknown kind
		{At: des.Second, Kind: EdgeLatency, Service: "svc",
			Extra: des.Millisecond, Until: des.Millisecond}, // until before at
	}
	for i, e := range bad {
		if err := e.Validate(); err == nil {
			t.Errorf("bad event %d (%s): validation passed", i, e.Kind)
		}
	}
}

func TestPlanValidateNamesOffender(t *testing.T) {
	p := &Plan{Events: []Event{
		{Kind: CrashMachine, Machine: "m0"},
		{Kind: KillInstance}, // invalid
	}}
	err := p.Validate()
	if err == nil {
		t.Fatal("invalid plan passed validation")
	}
}

func TestPolicyValidate(t *testing.T) {
	ok := Policy{Timeout: des.Millisecond, MaxRetries: 3,
		BackoffBase: 100 * des.Microsecond, BackoffJitter: 0.2}
	if err := ok.Validate(); err != nil {
		t.Fatal(err)
	}
	retriesWithoutTimeout := Policy{MaxRetries: 1}
	if err := retriesWithoutTimeout.Validate(); err == nil {
		t.Fatal("retries without timeout should fail validation")
	}
	badJitter := Policy{Timeout: des.Millisecond, BackoffJitter: 1.5}
	if err := badJitter.Validate(); err == nil {
		t.Fatal("jitter > 1 should fail validation")
	}
}

func TestBackoffDoublesAndJitters(t *testing.T) {
	p := Policy{BackoffBase: des.Millisecond}
	r := rng.New(1)
	if got := p.Backoff(1, r); got != des.Millisecond {
		t.Fatalf("attempt 1: %v, want 1ms", got)
	}
	if got := p.Backoff(3, r); got != 4*des.Millisecond {
		t.Fatalf("attempt 3: %v, want 4ms", got)
	}
	// Jitter keeps the delay within ±20% and actually varies.
	p.BackoffJitter = 0.2
	seen := map[des.Time]bool{}
	for i := 0; i < 32; i++ {
		d := p.Backoff(2, r)
		lo, hi := des.Time(float64(2*des.Millisecond)*0.8), des.Time(float64(2*des.Millisecond)*1.2)
		if d < lo || d > hi {
			t.Fatalf("jittered delay %v outside [%v,%v]", d, lo, hi)
		}
		seen[d] = true
	}
	if len(seen) < 2 {
		t.Fatal("jitter produced no variation")
	}
	// Zero base → immediate retry regardless of jitter.
	zero := Policy{BackoffJitter: 0.5}
	if got := zero.Backoff(2, r); got != 0 {
		t.Fatalf("zero base gave %v", got)
	}
}

func TestBackoffDeterministicPerStream(t *testing.T) {
	p := Policy{BackoffBase: des.Millisecond, BackoffJitter: 0.3}
	a, b := rng.New(7), rng.New(7)
	for i := 1; i <= 8; i++ {
		if da, db := p.Backoff(i, a), p.Backoff(i, b); da != db {
			t.Fatalf("attempt %d: %v vs %v", i, da, db)
		}
	}
}

func TestBreakerTripsAtThreshold(t *testing.T) {
	b := NewBreaker(BreakerSpec{ErrorThreshold: 0.5, Window: 4, Cooldown: des.Second})
	now := des.Time(0)
	// 3 successes + 1 failure: 25% < 50%, stays closed.
	for _, f := range []bool{false, false, false, true} {
		b.Record(now, f)
	}
	if b.State(now) != BreakerClosed {
		t.Fatalf("state %v after 25%% errors", b.State(now))
	}
	// Slide in another failure: window is now {f,f,t,t}? No — rolling:
	// oldest success evicted. Keep feeding failures until ≥50%.
	b.Record(now, true)
	if b.State(now) != BreakerOpen {
		t.Fatalf("state %v, want open at 50%% errors", b.State(now))
	}
	if b.Trips() != 1 {
		t.Fatalf("trips %d", b.Trips())
	}
	if b.Allow(now) {
		t.Fatal("open breaker allowed a call")
	}
}

func TestBreakerHalfOpenProbe(t *testing.T) {
	b := NewBreaker(BreakerSpec{ErrorThreshold: 0.5, Window: 2, Cooldown: 10 * des.Millisecond})
	b.Record(0, true)
	b.Record(0, true)
	if b.State(0) != BreakerOpen {
		t.Fatal("breaker should be open")
	}
	// Before cooldown: blocked.
	if b.Allow(5 * des.Millisecond) {
		t.Fatal("allowed during cooldown")
	}
	// After cooldown: exactly one probe.
	now := 11 * des.Millisecond
	if !b.Allow(now) {
		t.Fatal("half-open should admit one probe")
	}
	if b.Allow(now) {
		t.Fatal("second probe admitted while first outstanding")
	}
	// Probe fails → reopen, fresh cooldown.
	b.Record(now, true)
	if b.State(now) != BreakerOpen {
		t.Fatalf("state %v after failed probe", b.State(now))
	}
	if b.Allow(now + 5*des.Millisecond) {
		t.Fatal("reopened breaker allowed a call inside new cooldown")
	}
	// Next probe succeeds → closed, window cleared.
	now += 12 * des.Millisecond
	if !b.Allow(now) {
		t.Fatal("second half-open probe blocked")
	}
	b.Record(now, false)
	if b.State(now) != BreakerClosed {
		t.Fatalf("state %v after successful probe", b.State(now))
	}
	// One failure in the fresh window must not trip (window not full).
	b.Record(now, true)
	if b.State(now) != BreakerClosed {
		t.Fatal("tripped on a partially filled window")
	}
}

func TestBreakerIgnoresLateOutcomesWhileOpen(t *testing.T) {
	b := NewBreaker(BreakerSpec{ErrorThreshold: 1, Window: 1, Cooldown: des.Second})
	b.Record(0, true)
	if b.State(0) != BreakerOpen {
		t.Fatal("should be open")
	}
	// A straggler success from before the trip must not close it.
	b.Record(des.Millisecond, false)
	if b.State(des.Millisecond) != BreakerOpen {
		t.Fatal("late outcome closed an open breaker")
	}
}

func TestBreakerCancelProbeReleasesSlot(t *testing.T) {
	b := NewBreaker(BreakerSpec{ErrorThreshold: 0.5, Window: 2, Cooldown: 10 * des.Millisecond})
	b.Record(0, true)
	b.Record(0, true)
	now := 11 * des.Millisecond
	if !b.Allow(now) {
		t.Fatal("half-open should admit one probe")
	}
	if !b.Probing() {
		t.Fatal("probe slot should be held")
	}
	if b.Allow(now) {
		t.Fatal("second probe admitted while first outstanding")
	}
	// The probe is torn down without an outcome (deadline expiry, hedge
	// race loss). Before CancelProbe existed this starved the breaker
	// forever: Allow refused every call and Record was never reached.
	b.CancelProbe()
	if b.Probing() {
		t.Fatal("CancelProbe did not release the slot")
	}
	if !b.Allow(now) {
		t.Fatal("replacement probe blocked after cancellation")
	}
	b.Record(now, false)
	if b.State(now) != BreakerClosed {
		t.Fatalf("state %v after successful replacement probe", b.State(now))
	}
	// Outside half-open, CancelProbe is a no-op.
	b.CancelProbe()
	if b.State(now) != BreakerClosed || b.Probing() {
		t.Fatal("CancelProbe perturbed a closed breaker")
	}
	if !b.Allow(now) {
		t.Fatal("closed breaker should admit calls")
	}
}

func TestLoadStepValidation(t *testing.T) {
	ok := Event{At: des.Second, Until: 2 * des.Second, Kind: LoadStep, Factor: 2}
	if err := ok.Validate(); err != nil {
		t.Fatalf("valid load_step rejected: %v", err)
	}
	for _, bad := range []Event{
		{At: des.Second, Kind: LoadStep},                                      // no factor
		{At: des.Second, Kind: LoadStep, Factor: -1},                          // negative factor
		{At: des.Second, Until: des.Millisecond, Kind: LoadStep, Factor: 1.5}, // until before at
	} {
		if err := bad.Validate(); err == nil {
			t.Fatalf("invalid load_step %+v accepted", bad)
		}
	}
	if LoadStep.String() != "load_step" {
		t.Fatalf("kind name %q", LoadStep.String())
	}
}
