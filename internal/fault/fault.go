// Package fault defines µqSim's fault-injection and resilience model: a
// deterministic, seeded schedule of infrastructure faults (machine crashes,
// instance kills, frequency degradation, edge latency) plus per-RPC-edge
// resilience policies (timeouts, exponential-backoff retries, circuit
// breaking). The package is purely descriptive plus small deterministic
// state machines; the sim package interprets plans and enforces policies.
//
// The fault vocabulary mirrors what operators of interactive microservices
// actually rehearse: what happens when a machine dies mid-run, a dependency
// slows down, or a retry storm cascades through the fan-out graph. Related
// simulators (PerfSim's chain-level failures, CloudNativeSim's resilience
// scenarios) treat these as first-class inputs; µqSim does too.
package fault

import (
	"fmt"

	"uqsim/internal/des"
)

// Kind enumerates the injectable fault actions.
type Kind int

// Fault kinds.
const (
	// CrashMachine takes a whole machine down: every instance on it
	// (including its network-processing service) drops queued and
	// in-flight jobs, which propagate failure to upstream callers.
	CrashMachine Kind = iota
	// RecoverMachine restarts every instance on a crashed machine with
	// empty queues.
	RecoverMachine
	// KillInstance takes one instance of a service down.
	KillInstance
	// RestartInstance brings a killed instance back.
	RestartInstance
	// DegradeFreq clamps every allocation on a machine to the given
	// frequency (a thermal event, a noisy neighbour, a bad BIOS update).
	DegradeFreq
	// EdgeLatency adds fixed latency to every RPC delivered into a
	// service between At and Until (a slow dependency, a packet-loss
	// episode on one link).
	EdgeLatency
	// CrashDomain crashes every machine in a failure domain (a rack
	// losing its switch, a power feed tripping), staggered by Stagger
	// between machines in declaration order.
	CrashDomain
	// RecoverDomain restarts every machine in a failure domain with the
	// same stagger.
	RecoverDomain
	// PartitionStart severs network reachability between GroupA and
	// GroupB (both directions, or GroupA→GroupB only when OneWay) from At
	// until Until; Until 0 keeps the partition open for the rest of the
	// run.
	PartitionStart
	// SetLink installs a gray link on the directed Src→Dst machine pair
	// (or as the all-pairs default when both are empty): each message
	// crossing it is independently dropped with probability Drop and
	// duplicated with probability Dup. Until clears the link.
	SetLink
	// LoadStep multiplies the open-loop arrival rate by Factor between At
	// and Until (a flash crowd, a failed-over region's traffic landing
	// here, an upstream backing off). Until restores the nominal rate;
	// Until 0 keeps the step for the rest of the run.
	LoadStep
)

// String names the kind as it appears in faults.json.
func (k Kind) String() string {
	switch k {
	case CrashMachine:
		return "crash_machine"
	case RecoverMachine:
		return "recover_machine"
	case KillInstance:
		return "kill_instance"
	case RestartInstance:
		return "restart_instance"
	case DegradeFreq:
		return "degrade_freq"
	case EdgeLatency:
		return "edge_latency"
	case CrashDomain:
		return "crash_domain"
	case RecoverDomain:
		return "recover_domain"
	case PartitionStart:
		return "partition"
	case SetLink:
		return "set_link"
	case LoadStep:
		return "load_step"
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

// Event is one scheduled fault action.
type Event struct {
	// At is the virtual time the fault fires.
	At des.Time
	// Kind selects the action.
	Kind Kind
	// Machine names the target machine (CrashMachine, RecoverMachine,
	// DegradeFreq).
	Machine string
	// Service names the target service (KillInstance, RestartInstance,
	// EdgeLatency).
	Service string
	// Instance selects the instance index within the service's
	// deployment (KillInstance, RestartInstance); -1 targets all.
	Instance int
	// FreqMHz is the degraded frequency (DegradeFreq).
	FreqMHz float64
	// Extra is the added per-delivery latency (EdgeLatency).
	Extra des.Time
	// Until ends a windowed fault (EdgeLatency, PartitionStart, SetLink);
	// 0 means it lasts until the end of the run.
	Until des.Time
	// Domain names the target failure domain (CrashDomain, RecoverDomain).
	Domain string
	// Stagger spaces the per-machine actions of a domain event; 0 crashes
	// or recovers the whole domain at one instant.
	Stagger des.Time
	// GroupA and GroupB are the two sides of a partition (PartitionStart).
	GroupA []string
	GroupB []string
	// OneWay restricts a partition to the GroupA→GroupB direction —
	// an asymmetric cut (GroupB still hears GroupA's messages' targets).
	OneWay bool
	// Src and Dst name the directed machine pair of a gray link
	// (SetLink); both empty installs the all-pairs default.
	Src string
	Dst string
	// Drop and Dup are the gray link's per-message probabilities (SetLink).
	Drop float64
	Dup  float64
	// Factor scales the open-loop arrival rate (LoadStep); 2 doubles the
	// offered load, 0.5 halves it.
	Factor float64
}

// Validate checks an event's internal consistency.
func (e Event) Validate() error {
	if e.At < 0 {
		return fmt.Errorf("fault: event %s at negative time %v", e.Kind, e.At)
	}
	switch e.Kind {
	case CrashMachine, RecoverMachine:
		if e.Machine == "" {
			return fmt.Errorf("fault: %s needs a machine", e.Kind)
		}
	case DegradeFreq:
		if e.Machine == "" {
			return fmt.Errorf("fault: %s needs a machine", e.Kind)
		}
		if e.FreqMHz <= 0 {
			return fmt.Errorf("fault: %s needs a positive freq_mhz", e.Kind)
		}
	case KillInstance, RestartInstance:
		if e.Service == "" {
			return fmt.Errorf("fault: %s needs a service", e.Kind)
		}
		if e.Instance < -1 {
			return fmt.Errorf("fault: %s instance %d out of range", e.Kind, e.Instance)
		}
	case EdgeLatency:
		if e.Service == "" {
			return fmt.Errorf("fault: %s needs a service", e.Kind)
		}
		if e.Extra <= 0 {
			return fmt.Errorf("fault: %s needs positive extra latency", e.Kind)
		}
		if e.Until != 0 && e.Until <= e.At {
			return fmt.Errorf("fault: %s until %v not after at %v", e.Kind, e.Until, e.At)
		}
	case CrashDomain, RecoverDomain:
		if e.Domain == "" {
			return fmt.Errorf("fault: %s needs a domain", e.Kind)
		}
		if e.Stagger < 0 {
			return fmt.Errorf("fault: %s stagger %v negative", e.Kind, e.Stagger)
		}
	case PartitionStart:
		if len(e.GroupA) == 0 || len(e.GroupB) == 0 {
			return fmt.Errorf("fault: %s needs machines on both sides", e.Kind)
		}
		if e.Until != 0 && e.Until <= e.At {
			return fmt.Errorf("fault: %s until %v not after at %v", e.Kind, e.Until, e.At)
		}
	case SetLink:
		if (e.Src == "") != (e.Dst == "") {
			return fmt.Errorf("fault: %s needs both src and dst (or neither, for the default link)", e.Kind)
		}
		if e.Src != "" && e.Src == e.Dst {
			return fmt.Errorf("fault: %s src and dst are both %q", e.Kind, e.Src)
		}
		if e.Drop < 0 || e.Drop > 1 {
			return fmt.Errorf("fault: %s drop %v outside [0,1]", e.Kind, e.Drop)
		}
		if e.Dup < 0 || e.Dup > 1 {
			return fmt.Errorf("fault: %s dup %v outside [0,1]", e.Kind, e.Dup)
		}
		if e.Drop == 0 && e.Dup == 0 {
			return fmt.Errorf("fault: %s with zero drop and dup does nothing", e.Kind)
		}
		if e.Until != 0 && e.Until <= e.At {
			return fmt.Errorf("fault: %s until %v not after at %v", e.Kind, e.Until, e.At)
		}
	case LoadStep:
		if e.Factor <= 0 {
			return fmt.Errorf("fault: %s needs a positive factor", e.Kind)
		}
		if e.Until != 0 && e.Until <= e.At {
			return fmt.Errorf("fault: %s until %v not after at %v", e.Kind, e.Until, e.At)
		}
	default:
		return fmt.Errorf("fault: unknown kind %d", int(e.Kind))
	}
	return nil
}

// Plan is a deterministic schedule of fault events. The same plan under the
// same simulation seed always produces the same run.
type Plan struct {
	Events []Event
}

// Validate checks every event.
func (p *Plan) Validate() error {
	for i, e := range p.Events {
		if err := e.Validate(); err != nil {
			return fmt.Errorf("fault: event %d: %w", i, err)
		}
	}
	return nil
}

// Empty reports whether the plan schedules anything.
func (p *Plan) Empty() bool { return p == nil || len(p.Events) == 0 }
