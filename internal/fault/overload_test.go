package fault

import (
	"testing"

	"uqsim/internal/des"
)

func TestQueueDisciplineValidateAndDefaults(t *testing.T) {
	good := QueueDiscipline{Kind: QueueCoDel}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	d := good.WithDefaults()
	if d.Target != 5*des.Millisecond || d.Interval != 100*des.Millisecond {
		t.Fatalf("defaults %v/%v", d.Target, d.Interval)
	}
	for _, bad := range []QueueDiscipline{
		{Kind: QueueKind(99)},
		{Kind: QueueCoDel, Target: -1},
		{Kind: QueueCoDel, Interval: -1},
	} {
		if err := bad.Validate(); err == nil {
			t.Fatalf("%+v: want error", bad)
		}
	}
	if !(QueueCoDel.String() == "codel" && QueueCoDelLIFO.String() == "codel+lifo") {
		t.Fatal("kind names")
	}
	if QueueLIFO.Sheds() || !QueueCoDelLIFO.Sheds() {
		t.Fatal("Sheds classification")
	}
	if QueueCoDel.LIFO() || !QueueLIFO.LIFO() {
		t.Fatal("LIFO classification")
	}
}

func (k QueueKind) Sheds() bool { return QueueDiscipline{Kind: k}.Sheds() }
func (k QueueKind) LIFO() bool  { return QueueDiscipline{Kind: k}.LIFO() }

// TestCoDelBelowTargetNeverDrops: an uncongested queue must never shed.
func TestCoDelBelowTargetNeverDrops(t *testing.T) {
	c := NewCoDel(QueueDiscipline{Kind: QueueCoDel, Target: 5 * des.Millisecond, Interval: 100 * des.Millisecond})
	for i := 0; i < 1000; i++ {
		now := des.Time(i) * des.Millisecond
		if c.OnDequeue(now, 4*des.Millisecond) {
			t.Fatalf("dropped at %v with sojourn below target", now)
		}
	}
	if c.Drops() != 0 || c.Dropping() {
		t.Fatal("controller must stay idle")
	}
}

// TestCoDelGracePeriod: sojourn above target must survive one full
// interval before the first drop.
func TestCoDelGracePeriod(t *testing.T) {
	tgt, itv := 5*des.Millisecond, 100*des.Millisecond
	c := NewCoDel(QueueDiscipline{Kind: QueueCoDel, Target: tgt, Interval: itv})
	if c.OnDequeue(0, 10*des.Millisecond) {
		t.Fatal("first above-target dequeue must not drop")
	}
	if c.OnDequeue(itv/2, 10*des.Millisecond) {
		t.Fatal("dropped before the interval elapsed")
	}
	if !c.OnDequeue(itv, 10*des.Millisecond) {
		t.Fatal("must start shedding after a full interval above target")
	}
	if !c.Dropping() || c.Drops() != 1 {
		t.Fatalf("dropping=%v drops=%d", c.Dropping(), c.Drops())
	}
}

// TestCoDelControlLaw: inside a dropping episode the drop rate increases
// as interval/sqrt(count), so persistent overload sheds ever harder.
func TestCoDelControlLaw(t *testing.T) {
	tgt, itv := des.Millisecond, 10*des.Millisecond
	c := NewCoDel(QueueDiscipline{Kind: QueueCoDel, Target: tgt, Interval: itv})
	c.OnDequeue(0, 5*des.Millisecond)
	if !c.OnDequeue(itv, 5*des.Millisecond) {
		t.Fatal("want first drop at the interval boundary")
	}
	// Walk virtual time forward in small steps with a persistently bad
	// sojourn; intervals between consecutive drops must shrink.
	var dropTimes []des.Time
	for now := itv; now < 50*itv; now += itv / 20 {
		if c.OnDequeue(now, 5*des.Millisecond) {
			dropTimes = append(dropTimes, now)
		}
	}
	if len(dropTimes) < 4 {
		t.Fatalf("only %d drops under persistent overload", len(dropTimes))
	}
	first := dropTimes[1] - dropTimes[0]
	last := dropTimes[len(dropTimes)-1] - dropTimes[len(dropTimes)-2]
	if last > first {
		t.Fatalf("drop spacing grew (%v -> %v); control law must tighten", first, last)
	}
}

// TestCoDelRecovers: one below-target dequeue ends the episode and resets
// the grace period.
func TestCoDelRecovers(t *testing.T) {
	tgt, itv := des.Millisecond, 10*des.Millisecond
	c := NewCoDel(QueueDiscipline{Kind: QueueCoDel, Target: tgt, Interval: itv})
	c.OnDequeue(0, 5*des.Millisecond)
	c.OnDequeue(itv, 5*des.Millisecond) // drop, now dropping
	if c.OnDequeue(itv+1, tgt/2) {
		t.Fatal("below-target dequeue must never drop")
	}
	if c.Dropping() {
		t.Fatal("below-target dequeue must end the episode")
	}
	// The grace period starts over: an above-target dequeue right after
	// recovery must not drop.
	if c.OnDequeue(itv+2, 5*des.Millisecond) {
		t.Fatal("grace period must restart after recovery")
	}
}

func TestHedgeSpecValidate(t *testing.T) {
	good := []HedgeSpec{
		{Delay: des.Millisecond},
		{Quantile: 0.95},
		{Delay: des.Millisecond, Quantile: 0.99, MinSamples: 5, Jitter: 0.3},
	}
	for _, h := range good {
		if err := h.Validate(); err != nil {
			t.Fatalf("%+v: %v", h, err)
		}
	}
	bad := []HedgeSpec{
		{},
		{Delay: -1},
		{Quantile: 1},
		{Quantile: -0.1},
		{Delay: des.Millisecond, MinSamples: -1},
		{Delay: des.Millisecond, Jitter: 2},
	}
	for _, h := range bad {
		if err := h.Validate(); err == nil {
			t.Fatalf("%+v: want error", h)
		}
	}
	if (&HedgeSpec{}).MinSamplesOrDefault() != 16 {
		t.Fatal("MinSamples default")
	}
	p := Policy{Timeout: des.Millisecond, Hedge: &HedgeSpec{Quantile: 2}}
	if err := p.Validate(); err == nil {
		t.Fatal("policy must surface hedge validation errors")
	}
}
