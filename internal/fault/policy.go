package fault

import (
	"fmt"

	"uqsim/internal/des"
	"uqsim/internal/rng"
)

// Policy is the resilience contract of one RPC edge (one caller→service
// hop of an inter-microservice path tree). The zero value means "no
// protection": infinite patience, no retries, no breaker.
type Policy struct {
	// Timeout bounds one attempt (transit + queueing + service). The
	// abandoned attempt keeps consuming server resources — timeouts free
	// the caller, not the callee.
	Timeout des.Time
	// MaxRetries re-issues a failed attempt (timeout, shed, or dead
	// instance) up to this many times against a healthy instance.
	MaxRetries int
	// BackoffBase is the first retry delay; attempt k waits
	// BackoffBase·2^k (0: retry immediately, the classic storm).
	BackoffBase des.Time
	// BackoffJitter spreads each delay uniformly over ±jitter fraction
	// (0.2 → delay·[0.8,1.2]), decorrelating synchronized retries.
	BackoffJitter float64
	// Breaker fails calls fast while the edge's recent error rate is
	// above threshold, giving the callee room to recover.
	Breaker *BreakerSpec
	// Hedge races a single backup attempt against a slow primary: after
	// the hedge delay the edge re-issues the RPC to a different healthy
	// instance, the first response wins, and the loser is cancelled (if
	// still queued) or its completed work discarded. A hedge is an
	// attempt, not an arrival — it never perturbs request conservation.
	Hedge *HedgeSpec
}

// Validate checks parameter ranges.
func (p *Policy) Validate() error {
	if p.Timeout < 0 {
		return fmt.Errorf("fault: policy timeout %v negative", p.Timeout)
	}
	if p.MaxRetries < 0 {
		return fmt.Errorf("fault: policy max_retries %d negative", p.MaxRetries)
	}
	if p.MaxRetries > 0 && p.Timeout <= 0 {
		return fmt.Errorf("fault: policy retries need a timeout to detect failure")
	}
	if p.BackoffBase < 0 {
		return fmt.Errorf("fault: policy backoff_base %v negative", p.BackoffBase)
	}
	if p.BackoffJitter < 0 || p.BackoffJitter > 1 {
		return fmt.Errorf("fault: policy backoff_jitter %v outside [0,1]", p.BackoffJitter)
	}
	if p.Breaker != nil {
		if err := p.Breaker.Validate(); err != nil {
			return err
		}
	}
	if p.Hedge != nil {
		if err := p.Hedge.Validate(); err != nil {
			return err
		}
	}
	return nil
}

// HedgeSpec parameterizes hedged (backup) requests on one edge.
type HedgeSpec struct {
	// Delay is the fixed wait before issuing the backup attempt. With
	// Quantile set it is the cold-start fallback used until enough edge
	// latency has been observed (0: no hedging until the stream warms).
	Delay des.Time
	// Quantile, when in (0,1), replaces Delay with the observed
	// edge-latency quantile (e.g. 0.95 hedges requests slower than the
	// running p95), tracked by a per-edge streaming estimator.
	Quantile float64
	// MinSamples gates quantile-derived delays: below this many observed
	// attempt latencies the estimator is considered cold and Delay (or no
	// hedging at all) applies. Defaults to 16 when zero.
	MinSamples int
	// Jitter spreads the delay uniformly over ±jitter fraction,
	// decorrelating synchronized hedges. Drawn from a dedicated RNG
	// stream so hedging never perturbs service-time draws.
	Jitter float64
}

// Validate checks parameter ranges.
func (h *HedgeSpec) Validate() error {
	if h.Delay < 0 {
		return fmt.Errorf("fault: hedge delay %v negative", h.Delay)
	}
	if h.Quantile < 0 || h.Quantile >= 1 {
		return fmt.Errorf("fault: hedge quantile %v outside [0,1)", h.Quantile)
	}
	if h.Delay == 0 && h.Quantile == 0 {
		return fmt.Errorf("fault: hedge needs a delay or a latency quantile")
	}
	if h.MinSamples < 0 {
		return fmt.Errorf("fault: hedge min_samples %d negative", h.MinSamples)
	}
	if h.Jitter < 0 || h.Jitter > 1 {
		return fmt.Errorf("fault: hedge jitter %v outside [0,1]", h.Jitter)
	}
	return nil
}

// MinSamplesOrDefault applies the documented default.
func (h *HedgeSpec) MinSamplesOrDefault() int {
	if h.MinSamples <= 0 {
		return 16
	}
	return h.MinSamples
}

// Backoff samples the delay before retry attempt k (k=1 for the first
// retry): BackoffBase·2^(k-1), jittered. Deterministic given the stream.
func (p *Policy) Backoff(attempt int, r *rng.Source) des.Time {
	if p.BackoffBase <= 0 {
		return 0
	}
	if attempt < 1 {
		attempt = 1
	}
	d := float64(p.BackoffBase)
	for i := 1; i < attempt; i++ {
		d *= 2
	}
	if p.BackoffJitter > 0 {
		// Uniform in [1-j, 1+j].
		d *= 1 + p.BackoffJitter*(2*r.Float64()-1)
	}
	return des.Time(d)
}

// BreakerSpec parameterizes a circuit breaker.
type BreakerSpec struct {
	// ErrorThreshold trips the breaker when the error fraction over a
	// full Window reaches it (0.5 = half the calls failing).
	ErrorThreshold float64
	// Window is the number of most-recent call outcomes considered.
	Window int
	// Cooldown is how long the breaker stays open before letting one
	// probe through (half-open).
	Cooldown des.Time
}

// Validate checks parameter ranges.
func (b *BreakerSpec) Validate() error {
	if b.ErrorThreshold <= 0 || b.ErrorThreshold > 1 {
		return fmt.Errorf("fault: breaker error_threshold %v outside (0,1]", b.ErrorThreshold)
	}
	if b.Window < 1 {
		return fmt.Errorf("fault: breaker window %d must be positive", b.Window)
	}
	if b.Cooldown <= 0 {
		return fmt.Errorf("fault: breaker needs a positive cooldown")
	}
	return nil
}

// BreakerState is the classic three-state breaker lifecycle.
type BreakerState int

// Breaker states.
const (
	BreakerClosed BreakerState = iota
	BreakerOpen
	BreakerHalfOpen
)

// String names the state.
func (s BreakerState) String() string {
	switch s {
	case BreakerClosed:
		return "closed"
	case BreakerOpen:
		return "open"
	case BreakerHalfOpen:
		return "half-open"
	}
	return fmt.Sprintf("state(%d)", int(s))
}

// Breaker is the runtime of one edge's circuit breaker: a rolling window of
// call outcomes and the closed → open → half-open state machine. It is
// driven entirely by virtual time, so runs stay deterministic.
type Breaker struct {
	spec BreakerSpec

	window []bool // true = error
	idx    int
	filled int
	errs   int

	state    BreakerState
	openedAt des.Time
	probing  bool // a half-open probe is outstanding
	trips    uint64
}

// NewBreaker creates a closed breaker with the given spec (must validate).
func NewBreaker(spec BreakerSpec) *Breaker {
	if err := spec.Validate(); err != nil {
		panic(err)
	}
	return &Breaker{spec: spec, window: make([]bool, spec.Window)}
}

// State reports the current state, advancing open → half-open when the
// cooldown has elapsed at virtual time now.
func (b *Breaker) State(now des.Time) BreakerState {
	if b.state == BreakerOpen && now >= b.openedAt+b.spec.Cooldown {
		b.state = BreakerHalfOpen
		b.probing = false
	}
	return b.state
}

// Allow reports whether a call may be issued now. In half-open state only a
// single probe is admitted until its outcome is recorded.
func (b *Breaker) Allow(now des.Time) bool {
	switch b.State(now) {
	case BreakerClosed:
		return true
	case BreakerHalfOpen:
		if b.probing {
			return false
		}
		b.probing = true
		return true
	default:
		return false
	}
}

// Record feeds one call outcome into the breaker.
func (b *Breaker) Record(now des.Time, failed bool) {
	switch b.State(now) {
	case BreakerHalfOpen:
		b.probing = false
		if failed {
			b.trip(now)
		} else {
			b.reset()
		}
		return
	case BreakerOpen:
		// Late outcome of a call issued before the trip: ignore.
		return
	}
	if b.filled == len(b.window) {
		if b.window[b.idx] {
			b.errs--
		}
	} else {
		b.filled++
	}
	b.window[b.idx] = failed
	if failed {
		b.errs++
	}
	b.idx = (b.idx + 1) % len(b.window)
	if b.filled == len(b.window) &&
		float64(b.errs) >= b.spec.ErrorThreshold*float64(len(b.window)) {
		b.trip(now)
	}
}

// CancelProbe releases the half-open probe slot when the admitted probe
// call is torn down without ever producing an outcome (budget expiry
// cleanup, a lost hedge race). Without this the slot would be held
// forever: Allow would refuse every future call and the breaker could
// never observe the success it needs to close.
func (b *Breaker) CancelProbe() {
	if b.state == BreakerHalfOpen {
		b.probing = false
	}
}

// Probing reports whether a half-open probe slot is currently held. After
// a full drain no slot may remain held; a true value then is the
// probe-starvation liveness bug.
func (b *Breaker) Probing() bool { return b.probing }

func (b *Breaker) trip(now des.Time) {
	b.state = BreakerOpen
	b.openedAt = now
	b.probing = false
	b.trips++
	b.clearWindow()
}

func (b *Breaker) reset() {
	b.state = BreakerClosed
	b.probing = false
	b.clearWindow()
}

func (b *Breaker) clearWindow() {
	for i := range b.window {
		b.window[i] = false
	}
	b.idx, b.filled, b.errs = 0, 0, 0
}

// Trips reports how many times the breaker has opened.
func (b *Breaker) Trips() uint64 { return b.trips }
