package monitor

import (
	"strings"
	"testing"

	"uqsim/internal/cluster"
	"uqsim/internal/des"
	"uqsim/internal/dist"
	"uqsim/internal/fault"
	"uqsim/internal/graph"
	"uqsim/internal/service"
	"uqsim/internal/sim"
	"uqsim/internal/workload"
)

func buildMonitored(t *testing.T, qps float64) (*sim.Sim, *Monitor) {
	t.Helper()
	s := sim.New(sim.Options{Seed: 4})
	s.AddMachine("m0", 8, cluster.FreqSpec{})
	dep, err := s.Deploy(service.SingleStage("svc", dist.NewDeterministic(float64(100*des.Microsecond))),
		sim.RoundRobin, sim.Placement{Machine: "m0", Cores: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.SetTopology(graph.Linear("main", "svc")); err != nil {
		t.Fatal(err)
	}
	s.SetClient(sim.ClientConfig{Pattern: workload.ConstantRate(qps)})
	m := New(s.Engine(), 10*des.Millisecond)
	m.Watch("svc-0", dep.Instances[0])
	m.Start()
	return s, m
}

func TestMonitorSamplesOnCadence(t *testing.T) {
	s, m := buildMonitored(t, 1000)
	if _, err := s.Run(0, des.Second); err != nil {
		t.Fatal(err)
	}
	if m.Samples() < 99 || m.Samples() > 101 {
		t.Fatalf("samples = %d, want ≈100", m.Samples())
	}
	series := m.AllSeries()[0]
	if series.QueueLen.Len() != m.Samples() {
		t.Fatal("queue series length mismatch")
	}
	// Under light load the queue stays empty and utilization ≈0.1.
	if peak := m.PeakQueueLen()["svc-0"]; peak > 3 {
		t.Fatalf("peak queue %v at light load", peak)
	}
	last := series.Util.Points()[series.Util.Len()-1]
	if last.V < 0.05 || last.V > 0.15 {
		t.Fatalf("utilization %v, want ≈0.1", last.V)
	}
}

func TestMonitorSeesOverloadBacklog(t *testing.T) {
	s, m := buildMonitored(t, 20000) // 2× capacity
	if _, err := s.Run(0, des.Second); err != nil {
		t.Fatal(err)
	}
	if peak := m.PeakQueueLen()["svc-0"]; peak < 1000 {
		t.Fatalf("peak queue %v under overload, want large", peak)
	}
}

func TestMonitorCSV(t *testing.T) {
	s, m := buildMonitored(t, 1000)
	if _, err := s.Run(0, 50*des.Millisecond); err != nil {
		t.Fatal(err)
	}
	csv := m.CSV()
	lines := strings.Split(strings.TrimSpace(csv), "\n")
	if lines[0] != "t_s,svc-0_qlen,svc-0_inflight,svc-0_util,svc-0_shed,svc-0_dropped,svc-0_up,svc-0_canceled,svc-0_wasted" {
		t.Fatalf("header %q", lines[0])
	}
	if len(lines) != m.Samples()+1 {
		t.Fatalf("csv rows %d for %d samples", len(lines)-1, m.Samples())
	}
}

func TestMonitorTracksFaults(t *testing.T) {
	// 8000 QPS on a 10k-capacity instance keeps work in flight, so the
	// kill has queued jobs to drop.
	s, m := buildMonitored(t, 8000)
	if err := s.InstallFaults(fault.Plan{Events: []fault.Event{
		{At: 300 * des.Millisecond, Kind: fault.KillInstance, Service: "svc", Instance: -1},
		{At: 600 * des.Millisecond, Kind: fault.RestartInstance, Service: "svc", Instance: -1},
	}}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run(0, des.Second); err != nil {
		t.Fatal(err)
	}
	series := m.AllSeries()[0]
	if series.Up == nil || series.Dropped == nil {
		t.Fatal("instance target should expose health + error series")
	}
	downSamples, lost := 0, 0.0
	for i, p := range series.Up.Points() {
		if p.V == 0 {
			downSamples++
		}
		lost = series.Dropped.Points()[i].V
	}
	// Down for ≈300ms of 1s at a 10ms cadence.
	if downSamples < 25 || downSamples > 35 {
		t.Fatalf("down for %d samples, want ≈30", downSamples)
	}
	if lost == 0 {
		t.Fatal("kill window should record dropped jobs")
	}
}

func TestMonitorTracksCanceledWork(t *testing.T) {
	// 2× overload with a 5ms budget: expired requests' queued jobs are
	// discarded at dequeue, so the cumulative canceled series climbs.
	s := sim.New(sim.Options{Seed: 4})
	s.AddMachine("m0", 8, cluster.FreqSpec{})
	dep, err := s.Deploy(service.SingleStage("svc", dist.NewDeterministic(float64(des.Millisecond))),
		sim.RoundRobin, sim.Placement{Machine: "m0", Cores: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.SetTopology(graph.Linear("main", "svc")); err != nil {
		t.Fatal(err)
	}
	s.SetClient(sim.ClientConfig{
		Pattern: workload.ConstantRate(2000),
		Budget:  dist.NewDeterministic(float64(5 * des.Millisecond)),
	})
	m := New(s.Engine(), 10*des.Millisecond)
	series := m.Watch("svc-0", dep.Instances[0])
	m.Start()
	if _, err := s.Run(0, des.Second); err != nil {
		t.Fatal(err)
	}
	if series.Canceled == nil || series.Wasted == nil {
		t.Fatal("instance target should expose waste series")
	}
	last := series.Canceled.Points()[series.Canceled.Len()-1]
	if last.V == 0 {
		t.Fatal("deadline overload should accumulate canceled work")
	}
	// Cumulative counters never decrease.
	prev := 0.0
	for _, p := range series.Canceled.Points() {
		if p.V < prev {
			t.Fatalf("canceled series decreased: %v -> %v", prev, p.V)
		}
		prev = p.V
	}
}

func TestMonitorEmptyCSV(t *testing.T) {
	m := New(des.New(), des.Second)
	if got := m.CSV(); got != "t_s\n" {
		t.Fatalf("empty csv %q", got)
	}
}

func TestMonitorGuards(t *testing.T) {
	func() {
		defer func() {
			if recover() == nil {
				t.Error("zero interval should panic")
			}
		}()
		New(des.New(), 0)
	}()
	m := New(des.New(), des.Second)
	m.Start()
	defer func() {
		if recover() == nil {
			t.Error("Watch after Start should panic")
		}
	}()
	m.Watch("late", nil)
}
