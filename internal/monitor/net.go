package monitor

import (
	"uqsim/internal/des"
	"uqsim/internal/netfault"
	"uqsim/internal/stats"
)

// NetSource exposes the cumulative network-fault counters the monitor can
// track: attempts failed fast on an open partition, gray-link message
// drops, and gray-link duplicates. netfault.State satisfies it.
type NetSource interface {
	Unreachable() uint64
	LinkDrops() uint64
	LinkDups() uint64
}

var _ NetSource = (*netfault.State)(nil)

// WatchNet registers cumulative network-fault series (<name>.unreachable,
// <name>.linkdrops, <name>.linkdups) sampled on the monitor cadence. Must
// be called before Start.
func (m *Monitor) WatchNet(name string, src NetSource) (unreachable, drops, dups *stats.TimeSeries) {
	if src == nil {
		panic("monitor: WatchNet needs a source")
	}
	unreachable = m.WatchGauge(name+".unreachable", func(des.Time) float64 { return float64(src.Unreachable()) })
	drops = m.WatchGauge(name+".linkdrops", func(des.Time) float64 { return float64(src.LinkDrops()) })
	dups = m.WatchGauge(name+".linkdups", func(des.Time) float64 { return float64(src.LinkDups()) })
	return unreachable, drops, dups
}
