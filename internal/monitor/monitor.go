// Package monitor samples live simulation state on a fixed virtual-time
// cadence: per-instance queue lengths, in-flight counts, and core
// utilization. It is the observability companion to the trace package —
// traces explain individual slow requests, the monitor shows where queues
// build up over time (the back-pressure and cascading-hotspot effects the
// paper's power-management study worries about).
package monitor

import (
	"fmt"
	"strings"

	"uqsim/internal/des"
	"uqsim/internal/service"
	"uqsim/internal/stats"
)

// Target is anything the monitor can sample. service.Instance satisfies it.
type Target interface {
	QueueLen() int
	InFlight() int
	Utilization(now des.Time) float64
}

var _ Target = (*service.Instance)(nil)

// ErrorTarget is an optional Target extension for targets that reject work:
// cumulative shed (queue-bound) and dropped (kill/crash) counts.
// service.Instance satisfies it.
type ErrorTarget interface {
	Shed() uint64
	Dropped() uint64
}

// HealthTarget is an optional Target extension for targets that can be taken
// down by fault injection. service.Instance satisfies it.
type HealthTarget interface {
	Down() bool
}

// WasteTarget is an optional Target extension for targets that discard
// work under overload control: jobs cancelled before service (deadline
// expiry, lost hedge races caught in the queue) and completed services
// nobody consumed. service.Instance satisfies it.
type WasteTarget interface {
	CanceledEarly() uint64
	WastedWork() uint64
}

var (
	_ ErrorTarget  = (*service.Instance)(nil)
	_ HealthTarget = (*service.Instance)(nil)
	_ WasteTarget  = (*service.Instance)(nil)
)

// Series holds the sampled time series of one target.
type Series struct {
	Name     string
	QueueLen *stats.TimeSeries
	InFlight *stats.TimeSeries
	// Util is the cumulative mean utilization at each sample time.
	Util *stats.TimeSeries
	// Shed and Dropped track cumulative rejected work; nil unless the
	// target implements ErrorTarget.
	Shed    *stats.TimeSeries
	Dropped *stats.TimeSeries
	// Up is 1 while the target is serving and 0 while faulted; nil unless
	// the target implements HealthTarget.
	Up *stats.TimeSeries
	// Canceled and Wasted track cumulative discarded work (cancelled
	// before service vs served uselessly); nil unless the target
	// implements WasteTarget.
	Canceled *stats.TimeSeries
	Wasted   *stats.TimeSeries
}

// Monitor drives periodic sampling on a DES engine.
type Monitor struct {
	eng      des.Scheduler
	interval des.Time
	targets  []Target
	series   []*Series
	gaugeFns []func(now des.Time) float64
	gauges   []*stats.TimeSeries
	started  bool
	samples  int
}

// New creates a monitor sampling every interval of virtual time.
func New(eng des.Scheduler, interval des.Time) *Monitor {
	if interval <= 0 {
		panic("monitor: interval must be positive")
	}
	return &Monitor{eng: eng, interval: interval}
}

// Watch registers a target under a display name. Must be called before
// Start.
func (m *Monitor) Watch(name string, t Target) *Series {
	if m.started {
		panic("monitor: Watch after Start")
	}
	s := &Series{
		Name:     name,
		QueueLen: stats.NewTimeSeries(name + ".qlen"),
		InFlight: stats.NewTimeSeries(name + ".inflight"),
		Util:     stats.NewTimeSeries(name + ".util"),
	}
	if _, ok := t.(ErrorTarget); ok {
		s.Shed = stats.NewTimeSeries(name + ".shed")
		s.Dropped = stats.NewTimeSeries(name + ".dropped")
	}
	if _, ok := t.(HealthTarget); ok {
		s.Up = stats.NewTimeSeries(name + ".up")
	}
	if _, ok := t.(WasteTarget); ok {
		s.Canceled = stats.NewTimeSeries(name + ".canceled")
		s.Wasted = stats.NewTimeSeries(name + ".wasted")
	}
	m.targets = append(m.targets, t)
	m.series = append(m.series, s)
	return s
}

// WatchGauge registers a free-form gauge sampled on the monitor cadence —
// the hook control planes use to surface healthy/ejected/replica counts
// without the monitor depending on them. Must be called before Start.
func (m *Monitor) WatchGauge(name string, fn func(now des.Time) float64) *stats.TimeSeries {
	if m.started {
		panic("monitor: WatchGauge after Start")
	}
	if fn == nil {
		panic("monitor: WatchGauge needs a sampling function")
	}
	ts := stats.NewTimeSeries(name)
	m.gaugeFns = append(m.gaugeFns, fn)
	m.gauges = append(m.gauges, ts)
	return ts
}

// Gauges returns the registered gauge series in WatchGauge order.
func (m *Monitor) Gauges() []*stats.TimeSeries { return m.gauges }

// Start schedules the first sample one interval from now.
func (m *Monitor) Start() {
	m.started = true
	m.eng.After(m.interval, m.sample)
}

func (m *Monitor) sample(now des.Time) {
	m.samples++
	for i, t := range m.targets {
		s := m.series[i]
		s.QueueLen.Record(now, float64(t.QueueLen()))
		s.InFlight.Record(now, float64(t.InFlight()))
		s.Util.Record(now, t.Utilization(now))
		if et, ok := t.(ErrorTarget); ok {
			s.Shed.Record(now, float64(et.Shed()))
			s.Dropped.Record(now, float64(et.Dropped()))
		}
		if ht, ok := t.(HealthTarget); ok {
			up := 1.0
			if ht.Down() {
				up = 0
			}
			s.Up.Record(now, up)
		}
		if wt, ok := t.(WasteTarget); ok {
			s.Canceled.Record(now, float64(wt.CanceledEarly()))
			s.Wasted.Record(now, float64(wt.WastedWork()))
		}
	}
	for i, fn := range m.gaugeFns {
		m.gauges[i].Record(now, fn(now))
	}
	m.eng.After(m.interval, m.sample)
}

// Samples reports how many sampling rounds have run.
func (m *Monitor) Samples() int { return m.samples }

// Series returns the registered series in Watch order.
func (m *Monitor) AllSeries() []*Series { return m.series }

// PeakQueueLen reports the maximum sampled queue length per target.
func (m *Monitor) PeakQueueLen() map[string]float64 {
	out := make(map[string]float64, len(m.series))
	for _, s := range m.series {
		peak := 0.0
		for _, p := range s.QueueLen.Points() {
			if p.V > peak {
				peak = p.V
			}
		}
		out[s.Name] = peak
	}
	return out
}

// CSV renders all series as one CSV document (t_s, then one column per
// target per metric).
func (m *Monitor) CSV() string {
	var b strings.Builder
	b.WriteString("t_s")
	for _, s := range m.series {
		fmt.Fprintf(&b, ",%s_qlen,%s_inflight,%s_util", s.Name, s.Name, s.Name)
		if s.Shed != nil {
			fmt.Fprintf(&b, ",%s_shed,%s_dropped", s.Name, s.Name)
		}
		if s.Up != nil {
			fmt.Fprintf(&b, ",%s_up", s.Name)
		}
		if s.Canceled != nil {
			fmt.Fprintf(&b, ",%s_canceled,%s_wasted", s.Name, s.Name)
		}
	}
	for _, g := range m.gauges {
		fmt.Fprintf(&b, ",%s", g.Name)
	}
	b.WriteByte('\n')
	if len(m.series) == 0 {
		return b.String()
	}
	n := m.series[0].QueueLen.Len()
	for i := 0; i < n; i++ {
		fmt.Fprintf(&b, "%.3f", m.series[0].QueueLen.Points()[i].T.Seconds())
		for _, s := range m.series {
			if i < s.QueueLen.Len() {
				fmt.Fprintf(&b, ",%.0f,%.0f,%.3f",
					s.QueueLen.Points()[i].V,
					s.InFlight.Points()[i].V,
					s.Util.Points()[i].V)
				if s.Shed != nil {
					fmt.Fprintf(&b, ",%.0f,%.0f", s.Shed.Points()[i].V, s.Dropped.Points()[i].V)
				}
				if s.Up != nil {
					fmt.Fprintf(&b, ",%.0f", s.Up.Points()[i].V)
				}
				if s.Canceled != nil {
					fmt.Fprintf(&b, ",%.0f,%.0f", s.Canceled.Points()[i].V, s.Wasted.Points()[i].V)
				}
			} else {
				b.WriteString(",,,")
				if s.Shed != nil {
					b.WriteString(",,")
				}
				if s.Up != nil {
					b.WriteString(",")
				}
				if s.Canceled != nil {
					b.WriteString(",,")
				}
			}
		}
		for _, g := range m.gauges {
			if i < g.Len() {
				fmt.Fprintf(&b, ",%g", g.Points()[i].V)
			} else {
				b.WriteString(",")
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}
