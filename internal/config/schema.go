// Package config is µqSim's declarative front-end, mirroring the paper's
// Table I inputs:
//
//	machines.json  — servers, cores, DVFS ranges, auxiliary pools, network
//	service.json   — internal architecture of each microservice
//	graph.json     — microservice deployment (instances → machines)
//	path.json      — inter-microservice path trees and connection pools
//	client.json    — input load pattern
//
// Processing-time histograms (the paper's sixth input) are embedded in the
// service.json stage specs via dist.Spec's "histogram" type.
package config

import (
	"uqsim/internal/dist"
)

// MachinesFile is the machines.json schema.
type MachinesFile struct {
	Machines []MachineSpec `json:"machines"`
	// Network optionally enables per-machine interrupt processing.
	Network *NetworkSpec `json:"network,omitempty"`
	// Engine optionally selects the simulation engine backend.
	Engine *EngineSpec `json:"engine,omitempty"`
	// Topology optionally groups machines into failure domains (racks,
	// power zones) for correlated fault injection.
	Topology *TopologySpec `json:"topology,omitempty"`
}

// TopologySpec declares the cluster's failure hierarchy: overlapping
// failure domains (racks, power zones) and, above them, disjoint
// geographic regions with a WAN model between them.
type TopologySpec struct {
	Domains []DomainSpec `json:"domains,omitempty"`
	// Regions partitions machines into geographic sites. With regions
	// declared, routing prefers the nearest healthy region and
	// cross-region hops pay the WAN model's latency.
	Regions []RegionSpec `json:"regions,omitempty"`
	// WAN models inter-region links; requires Regions.
	WAN *WANSpec `json:"wan,omitempty"`
}

// RegionSpec is one geographic site. Machines lists members directly;
// Racks pulls in every machine of the named topology domains — the
// rack→region hierarchy. A machine may belong to only one region.
type RegionSpec struct {
	Name     string   `json:"name"`
	Machines []string `json:"machines,omitempty"`
	Racks    []string `json:"racks,omitempty"`
}

// WANSpec is the inter-region network model: a default latency and
// per-KB serialization cost for every region pair, with optional
// symmetric per-pair overrides.
type WANSpec struct {
	LatencyMs float64       `json:"latency_ms,omitempty"`
	PerKBUs   float64       `json:"per_kb_us,omitempty"`
	Links     []WANLinkSpec `json:"links,omitempty"`
}

// WANLinkSpec overrides the WAN model between one region pair (applies
// to both directions).
type WANLinkSpec struct {
	A         string  `json:"a"`
	B         string  `json:"b"`
	LatencyMs float64 `json:"latency_ms,omitempty"`
	PerKBUs   float64 `json:"per_kb_us,omitempty"`
}

// DomainSpec is one named failure domain: a set of machines that share
// fate under crash_domain / recover_domain fault events. Domains may
// overlap (a machine can sit in both a rack and a power zone).
type DomainSpec struct {
	Name     string   `json:"name"`
	Machines []string `json:"machines"`
}

// EngineSpec configures the event engine the assembled simulation runs
// on. Workers ≥ 2 selects the parallel (pdes) engine with that many
// worker goroutines; 0 or 1 keeps the sequential engine. Same-seed runs
// produce identical results on either backend.
type EngineSpec struct {
	Workers int `json:"workers"`
}

// MachineSpec declares one server.
type MachineSpec struct {
	Name  string     `json:"name"`
	Cores int        `json:"cores"`
	Freq  *FreqSpec  `json:"freq,omitempty"`
	Pools []PoolSpec `json:"pools,omitempty"`
}

// FreqSpec is a DVFS range in MHz.
type FreqSpec struct {
	MinMHz  float64 `json:"min_mhz"`
	MaxMHz  float64 `json:"max_mhz"`
	StepMHz float64 `json:"step_mhz"`
}

// PoolSpec declares an auxiliary machine resource (e.g. disk spindles).
type PoolSpec struct {
	Name     string `json:"name"`
	Capacity int    `json:"capacity"`
}

// NetworkSpec configures the shared interrupt-processing service.
type NetworkSpec struct {
	CoresPerMachine int        `json:"cores_per_machine"`
	PerMsg          *dist.Spec `json:"per_msg,omitempty"`
	PerKBUs         float64    `json:"per_kb_us,omitempty"`
	ClientTx        bool       `json:"client_tx,omitempty"`
}

// ServicesFile is the service.json schema.
type ServicesFile struct {
	Services []ServiceSpec `json:"services"`
}

// ServiceSpec mirrors the paper's Listing 1 plus the execution model.
type ServiceSpec struct {
	ServiceName string      `json:"service_name"`
	Model       string      `json:"model,omitempty"` // "simple" (default) or "multi-threaded"
	Threads     int         `json:"threads,omitempty"`
	CtxSwitchUs float64     `json:"ctx_switch_us,omitempty"`
	Stages      []StageSpec `json:"stages"`
	Paths       []PathSpec  `json:"paths"`
	PathProbs   []float64   `json:"path_probs,omitempty"`
}

// StageSpec describes one execution stage.
type StageSpec struct {
	StageName string `json:"stage_name"`
	// QueueType: "single" (default), "epoll", or "socket".
	QueueType string `json:"queue_type,omitempty"`
	Batching  bool   `json:"batching,omitempty"`
	// QueueParameter is the per-connection batch bound N of
	// epoll/socket queues (the paper's "queue_parameter").
	QueueParameter int `json:"queue_parameter,omitempty"`
	BatchLimit     int `json:"batch_limit,omitempty"`

	Base    *dist.Spec `json:"base,omitempty"`
	PerJob  *dist.Spec `json:"per_job,omitempty"`
	PerKBUs float64    `json:"per_kb_us,omitempty"`
	// Pool executes the stage against a named machine pool (blocking
	// I/O) instead of a core.
	Pool string `json:"pool,omitempty"`
}

// PathSpec is an execution path through stage indices.
type PathSpec struct {
	PathName string `json:"path_name"`
	Stages   []int  `json:"stages"`
}

// GraphFile is the graph.json schema: where services run.
type GraphFile struct {
	Deployments []DeploymentSpec `json:"deployments"`
}

// DeploymentSpec maps a service's instances onto machines.
type DeploymentSpec struct {
	Service string `json:"service"`
	// LB: "round_robin" (default), "random", or "least_loaded".
	LB        string         `json:"lb,omitempty"`
	Instances []InstanceSpec `json:"instances"`
	// Replication declares the service geo-replicated across regions
	// (requires topology.regions in machines.json).
	Replication *ReplicationSpec `json:"replication,omitempty"`
}

// ReplicationSpec geo-replicates a deployment: its per-region replica
// sets serve reads everywhere, but a read served outside the request's
// origin region is stale until the serving region has been promoted for
// at least lag_ms. Regions lists the replica set (default: every region
// hosting an instance); each listed region must host at least one.
type ReplicationSpec struct {
	Regions []string `json:"regions,omitempty"`
	LagMs   float64  `json:"lag_ms,omitempty"`
}

// InstanceSpec is one instance placement.
type InstanceSpec struct {
	Machine string `json:"machine"`
	Cores   int    `json:"cores"`
}

// PathsFile is the path.json schema: inter-service trees + pools.
type PathsFile struct {
	Pools []ConnPoolSpec `json:"pools,omitempty"`
	Trees []TreeSpec     `json:"trees"`
}

// ConnPoolSpec declares a connection pool.
type ConnPoolSpec struct {
	Name     string `json:"name"`
	Capacity int    `json:"capacity"`
}

// TreeSpec is one weighted inter-microservice path tree.
type TreeSpec struct {
	Name   string     `json:"name"`
	Weight float64    `json:"weight"`
	Root   int        `json:"root"`
	Nodes  []NodeSpec `json:"nodes"`
}

// NodeSpec is one path node.
type NodeSpec struct {
	ID       int      `json:"id"`
	Service  string   `json:"service"`
	Path     string   `json:"path,omitempty"`
	Instance *int     `json:"instance,omitempty"` // nil → load-balance
	Children []int    `json:"children,omitempty"`
	Acquire  []string `json:"acquire,omitempty"`
	Release  []string `json:"release,omitempty"`
}

// ClientFile is the client.json schema.
type ClientFile struct {
	Seed uint64 `json:"seed,omitempty"`
	// QPS sets a constant open-loop rate; Diurnal overrides it.
	QPS     float64      `json:"qps,omitempty"`
	Diurnal *DiurnalSpec `json:"diurnal,omitempty"`
	// Process: "poisson" (default) or "uniform".
	Process     string `json:"process,omitempty"`
	Connections int    `json:"connections,omitempty"`
	// SizeKB samples the request payload size. The spec's duration
	// fields are read as KB: {"type":"exponential","mean_us":1} means
	// exponentially distributed sizes with mean 1 KB.
	SizeKB *dist.Spec `json:"size_kb,omitempty"`
	// ClosedUsers switches to a closed-loop client.
	ClosedUsers int        `json:"closed_users,omitempty"`
	Think       *dist.Spec `json:"think,omitempty"`

	// Sessions switches to a session-based client: a population of users
	// walking weighted multi-step journeys over the topology's trees.
	// Mutually exclusive with qps/diurnal/closed_users.
	Sessions *SessionsSpec `json:"sessions,omitempty"`

	// Fidelity selects the engine tier: "" or "full" simulates every
	// request at stage-level DES fidelity; "hybrid" simulates only
	// sample_rate of them and drives the rest as fluid background load
	// from the analytic M/M/k equilibrium.
	Fidelity string `json:"fidelity,omitempty"`
	// SampleRate is the hybrid foreground fraction in (0, 1]
	// (default 0.01). Requires fidelity "hybrid".
	SampleRate float64 `json:"sample_rate,omitempty"`
	// HybridEpochMs is the fluid tier's equilibrium re-evaluation
	// interval (default 50ms). Requires fidelity "hybrid".
	HybridEpochMs float64 `json:"hybrid_epoch_ms,omitempty"`

	// Region homes the client in one of topology.regions: entry traffic
	// prefers that region and cross-origin reads of replicated services
	// count as stale while the serving region lags.
	Region string `json:"region,omitempty"`

	// TimeoutMs makes the client give up on requests older than this
	// (0: infinite patience); MaxRetries re-issues timed-out requests.
	TimeoutMs  float64 `json:"timeout_ms,omitempty"`
	MaxRetries int     `json:"max_retries,omitempty"`

	// Budget samples each request's end-to-end deadline budget (spec
	// durations in µs, as everywhere); an expired budget short-circuits
	// the request's remaining subtree and cancels its queued work.
	// BudgetMs is shorthand for a constant budget in milliseconds; the
	// two are mutually exclusive. Omitted: no deadlines.
	Budget   *dist.Spec `json:"budget,omitempty"`
	BudgetMs float64    `json:"budget_ms,omitempty"`

	WarmupS   float64 `json:"warmup_s,omitempty"`
	DurationS float64 `json:"duration_s"`
}

// DiurnalSpec is a sinusoidal load pattern.
type DiurnalSpec struct {
	Base      float64 `json:"base"`
	Amplitude float64 `json:"amplitude"`
	PeriodS   float64 `json:"period_s"`
	Floor     float64 `json:"floor,omitempty"`
}

// SessionsSpec is client.json's session-based population: journeys of
// tree-targeting steps with think times, a phased population envelope,
// transient flash crowds, and per-user on/off burstiness.
type SessionsSpec struct {
	// Users is the base population (required >= 1 unless phases set one).
	Users    int           `json:"users,omitempty"`
	Journeys []JourneySpec `json:"journeys"`
	// Phases ramp the population to new targets over time (sorted by at_s).
	Phases []PopPhaseSpec `json:"phases,omitempty"`
	// FlashCrowds superimpose transient extra-user trapezoids.
	FlashCrowds []FlashCrowdSpec `json:"flash_crowds,omitempty"`
	// OnOff makes every user bursty: exponential active/silent cycles.
	OnOff *OnOffSpec `json:"on_off,omitempty"`
	// PopTickMs is the population-control poll interval (default 10ms;
	// only polled when phases or flash crowds are present).
	PopTickMs float64 `json:"pop_tick_ms,omitempty"`
}

// JourneySpec is one weighted user flow, e.g. browse → search → buy.
type JourneySpec struct {
	Name string `json:"name"`
	// Weight is the journey's selection weight (default 1).
	Weight float64    `json:"weight,omitempty"`
	Steps  []StepSpec `json:"steps"`
}

// StepSpec is one journey step: think, then issue the named request tree.
type StepSpec struct {
	// Tree names a path.json tree.
	Tree string `json:"tree"`
	// Think samples the pre-request think time (spec durations in µs).
	Think *dist.Spec `json:"think,omitempty"`
}

// PopPhaseSpec ramps the population linearly to users over
// [at_s, at_s+ramp_s] (ramp_s 0: step change).
type PopPhaseSpec struct {
	AtS   float64 `json:"at_s"`
	Users int     `json:"users"`
	RampS float64 `json:"ramp_s,omitempty"`
}

// FlashCrowdSpec is a transient trapezoid of extra users.
type FlashCrowdSpec struct {
	AtS       float64 `json:"at_s"`
	Extra     int     `json:"extra"`
	RampUpS   float64 `json:"ramp_up_s,omitempty"`
	HoldS     float64 `json:"hold_s,omitempty"`
	RampDownS float64 `json:"ramp_down_s,omitempty"`
}

// OnOffSpec alternates every user between exponential active and silent
// periods.
type OnOffSpec struct {
	MeanOnS  float64 `json:"mean_on_s"`
	MeanOffS float64 `json:"mean_off_s"`
}

// FaultsFile is the optional faults.json schema: per-edge resilience
// policies, queue-length load shedding, and a deterministic fault-injection
// plan.
type FaultsFile struct {
	Policies []EdgePolicySpec `json:"policies,omitempty"`
	Shedding []ShedSpec       `json:"shedding,omitempty"`
	Queues   []QueueSpec      `json:"queues,omitempty"`
	Events   []FaultEventSpec `json:"events,omitempty"`
	// Network schedules network-level faults: partitions and gray links.
	Network *NetFaultSpec `json:"network,omitempty"`
}

// NetFaultSpec is the faults.json network section: time-varying
// partitions in the per-machine-pair reachability matrix plus lossy
// (gray) links on cross-machine RPC edges.
type NetFaultSpec struct {
	Partitions []PartitionSpec `json:"partitions,omitempty"`
	Links      []LinkSpec      `json:"links,omitempty"`
}

// PartitionSpec cuts reachability between two machine groups from at_s
// until until_s (0: never heals). One-way partitions cut only group_a →
// group_b traffic, modelling asymmetric routing failures.
type PartitionSpec struct {
	AtS    float64  `json:"at_s"`
	UntilS float64  `json:"until_s,omitempty"`
	GroupA []string `json:"group_a"`
	GroupB []string `json:"group_b"`
	OneWay bool     `json:"one_way,omitempty"`
}

// LinkSpec degrades one directed machine pair (or, with src and dst both
// empty, every cross-machine pair) with probabilistic message drop and
// duplication from at_s until until_s (0: permanent).
type LinkSpec struct {
	AtS    float64 `json:"at_s"`
	UntilS float64 `json:"until_s,omitempty"`
	Src    string  `json:"src,omitempty"`
	Dst    string  `json:"dst,omitempty"`
	Drop   float64 `json:"drop,omitempty"`
	Dup    float64 `json:"dup,omitempty"`
}

// EdgePolicySpec guards RPC edges with timeouts, backoff retries, and
// circuit breaking. With only Service set it covers every edge into that
// service; with Tree and Node set it overrides the policy for the edge into
// that one path-tree node.
type EdgePolicySpec struct {
	Service       string       `json:"service,omitempty"`
	Tree          string       `json:"tree,omitempty"`
	Node          *int         `json:"node,omitempty"`
	TimeoutMs     float64      `json:"timeout_ms,omitempty"`
	MaxRetries    int          `json:"max_retries,omitempty"`
	BackoffBaseMs float64      `json:"backoff_base_ms,omitempty"`
	BackoffJitter float64      `json:"backoff_jitter,omitempty"`
	Breaker       *BreakerSpec `json:"breaker,omitempty"`
	Hedge         *HedgeSpec   `json:"hedge,omitempty"`
}

// HedgeSpec configures hedged (backup) requests on an edge: after the
// delay, a second attempt races on a different healthy instance and the
// first response wins. Exactly one of DelayMs (fixed) or Quantile
// (observed edge latency, e.g. 0.95) must be set.
type HedgeSpec struct {
	DelayMs    float64 `json:"delay_ms,omitempty"`
	Quantile   float64 `json:"quantile,omitempty"`
	MinSamples int     `json:"min_samples,omitempty"`
	Jitter     float64 `json:"jitter,omitempty"`
}

// BreakerSpec configures an edge's circuit breaker.
type BreakerSpec struct {
	ErrorThreshold float64 `json:"error_threshold"`
	Window         int     `json:"window"`
	CooldownMs     float64 `json:"cooldown_ms"`
}

// ShedSpec bounds a service's per-instance queue length: arrivals beyond
// max_queue queued jobs are rejected immediately.
type ShedSpec struct {
	Service  string `json:"service"`
	MaxQueue int    `json:"max_queue"`
}

// QueueSpec selects a service's per-instance queue discipline beyond the
// default FIFO: "codel" sheds jobs whose queue sojourn persistently
// exceeds target_ms (CoDel control law over interval_ms), "lifo" serves
// newest-first while the head sojourn exceeds target_ms, "codel_lifo"
// does both.
type QueueSpec struct {
	Service    string  `json:"service"`
	Kind       string  `json:"kind"`
	TargetMs   float64 `json:"target_ms,omitempty"`
	IntervalMs float64 `json:"interval_ms,omitempty"`
}

// FaultEventSpec schedules one fault action. Kind is one of crash_machine,
// recover_machine, crash_domain, recover_domain, kill_instance,
// restart_instance, degrade_freq, edge_latency, load_step.
type FaultEventSpec struct {
	AtS     float64 `json:"at_s"`
	Kind    string  `json:"kind"`
	Machine string  `json:"machine,omitempty"`
	Service string  `json:"service,omitempty"`
	// Instance selects one instance of Service; omitted → every instance.
	Instance *int    `json:"instance,omitempty"`
	FreqMHz  float64 `json:"freq_mhz,omitempty"`
	ExtraMs  float64 `json:"extra_ms,omitempty"`
	UntilS   float64 `json:"until_s,omitempty"`
	// Domain names a machines.json topology domain for crash_domain /
	// recover_domain; StaggerMs spaces the per-machine events within the
	// burst.
	Domain    string  `json:"domain,omitempty"`
	StaggerMs float64 `json:"stagger_ms,omitempty"`
	// Factor multiplies the open-loop arrival rate (load_step).
	Factor float64 `json:"factor,omitempty"`
}

// ControlFile is the optional control.json schema: the self-healing
// control plane. Omitted sections disable the corresponding controller
// (failover additionally requires a heartbeat detector).
type ControlFile struct {
	// Services restricts the plane to these deployments (default: all).
	Services  []string        `json:"services,omitempty"`
	Heartbeat *HeartbeatSpec  `json:"heartbeat,omitempty"`
	Ejection  *EjectionSpec   `json:"ejection,omitempty"`
	Failover  *FailoverSpec   `json:"failover,omitempty"`
	Autoscale []AutoscaleSpec `json:"autoscale,omitempty"`
	// RegionFailover arms region-loss failover (requires Heartbeat and
	// a topology with regions).
	RegionFailover *RegionFailoverSpec `json:"region_failover,omitempty"`
	// Vantage names the machine the plane observes from: heartbeats from
	// machines partitioned away from it go unheard. Empty: omniscient.
	Vantage string `json:"vantage,omitempty"`
}

// HeartbeatSpec tunes the phi-accrual failure detector.
type HeartbeatSpec struct {
	PeriodMs        float64 `json:"period_ms,omitempty"`
	Jitter          float64 `json:"jitter,omitempty"`
	CheckIntervalMs float64 `json:"check_interval_ms,omitempty"`
	PhiThreshold    float64 `json:"phi_threshold,omitempty"`
	MinSamples      int     `json:"min_samples,omitempty"`
}

// EjectionSpec tunes the outlier ejector.
type EjectionSpec struct {
	IntervalMs         float64 `json:"interval_ms,omitempty"`
	FailureRatio       float64 `json:"failure_ratio,omitempty"`
	LatencyFactor      float64 `json:"latency_factor,omitempty"`
	Quantile           float64 `json:"quantile,omitempty"`
	MinRequests        int     `json:"min_requests,omitempty"`
	MinHealthyFraction float64 `json:"min_healthy_fraction,omitempty"`
	ProbationMs        float64 `json:"probation_ms,omitempty"`
}

// RegionFailoverSpec tunes region-loss failover: when every tracked
// heartbeat from a region has gone silent (crash or partition), the
// plane waits drain_delay_ms for in-flight work to settle, then
// promotes the nearest healthy region of each geo-replicated service.
type RegionFailoverSpec struct {
	CheckIntervalMs float64 `json:"check_interval_ms,omitempty"`
	DrainDelayMs    float64 `json:"drain_delay_ms,omitempty"`
}

// FailoverSpec tunes dead-instance replacement.
type FailoverSpec struct {
	RestartDelayMs float64  `json:"restart_delay_ms,omitempty"`
	Machines       []string `json:"machines,omitempty"`
}

// AutoscaleSpec is one service's reactive scaling law. Exactly one of
// target_utilization and target_queue must be set.
type AutoscaleSpec struct {
	Service           string   `json:"service"`
	Min               int      `json:"min,omitempty"`
	Max               int      `json:"max"`
	TargetUtilization float64  `json:"target_utilization,omitempty"`
	TargetQueue       float64  `json:"target_queue,omitempty"`
	IntervalMs        float64  `json:"interval_ms,omitempty"`
	UpCooldownMs      float64  `json:"up_cooldown_ms,omitempty"`
	DownCooldownMs    float64  `json:"down_cooldown_ms,omitempty"`
	Tolerance         float64  `json:"tolerance,omitempty"`
	Cores             int      `json:"cores,omitempty"`
	Machines          []string `json:"machines,omitempty"`
}
