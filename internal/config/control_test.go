package config

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"uqsim/internal/des"
)

// writeTwotier materializes the twotier base docs plus any extra documents
// into a temp dir.
func writeTwotier(t *testing.T, extra map[string]string) string {
	t.Helper()
	dir := t.TempDir()
	for name, b := range twotierDocs(t) {
		if err := os.WriteFile(filepath.Join(dir, name), b, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	for name, doc := range extra {
		if err := os.WriteFile(filepath.Join(dir, name), []byte(doc), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

// TestLoadDirReadsControlJSON: a full control.json round-trips through
// LoadDir into an attached plane that acts during the run — the injected
// kill is detected and failed over, and the ejection observer is wired.
func TestLoadDirReadsControlJSON(t *testing.T) {
	dir := writeTwotier(t, map[string]string{
		"faults.json": `{"events": [
			{"at_s": 0.5, "kind": "kill_instance", "service": "memcached", "instance": 0}
		]}`,
		"control.json": `{
			"services": ["nginx", "memcached"],
			"heartbeat": {"period_ms": 10, "jitter": 0.2, "phi_threshold": 8, "min_samples": 3},
			"ejection": {"interval_ms": 100, "failure_ratio": 0.5, "quantile": 0.95,
			             "min_requests": 10, "min_healthy_fraction": 0.5, "probation_ms": 300},
			"failover": {"restart_delay_ms": 50, "machines": ["frontend", "cache"]},
			"autoscale": [{"service": "nginx", "min": 1, "max": 2,
			               "target_utilization": 0.7, "interval_ms": 100}]
		}`,
	})
	setup, err := LoadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if setup.Plane == nil {
		t.Fatal("control.json present but no plane attached")
	}
	if setup.Sim.OnCallResult == nil {
		t.Fatal("ejection configured but call observer not wired")
	}
	rep, err := setup.Run()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Completions == 0 {
		t.Fatal("no completions")
	}
	st := setup.Plane.Stats()
	if st.Detections == 0 || st.Failovers == 0 {
		t.Fatalf("kill at 0.5s not detected/failed over: %s", st.Fingerprint())
	}
	if lag := st.MeanDetectionLag(); lag <= 0 || lag > 200*des.Millisecond {
		t.Fatalf("detection lag %v implausible", lag)
	}
}

// TestControlJSONErrors: strict decoding and name validation with
// did-you-mean suggestions for both services and machines.
func TestControlJSONErrors(t *testing.T) {
	cases := []struct {
		name, doc, want string
	}{
		{"unknown field",
			`{"heartbeat": {"period_msec": 10}}`,
			"unknown field"},
		{"service typo",
			`{"services": ["memcachd"], "heartbeat": {}}`,
			`unknown service "memcachd" (did you mean "memcached"?)`},
		{"autoscale service typo",
			`{"autoscale": [{"service": "ngins", "max": 2, "target_utilization": 0.5}]}`,
			`unknown service "ngins" (did you mean "nginx"?)`},
		{"failover machine typo",
			`{"heartbeat": {}, "failover": {"machines": ["cachee"]}}`,
			`unknown machine "cachee" (did you mean "cache"?)`},
		{"autoscale machine typo",
			`{"autoscale": [{"service": "nginx", "max": 2, "target_utilization": 0.5,
			                 "machines": ["frontnd"]}]}`,
			`unknown machine "frontnd" (did you mean "frontend"?)`},
		{"empty config",
			`{}`,
			"empty config"},
		{"failover without detector",
			`{"failover": {"restart_delay_ms": 50}}`,
			"failover requires a detector"},
		{"both autoscale targets",
			`{"autoscale": [{"service": "nginx", "max": 2,
			                 "target_utilization": 0.5, "target_queue": 4}]}`,
			"exactly one of"},
	}
	for _, tc := range cases {
		dir := writeTwotier(t, map[string]string{"control.json": tc.doc})
		_, err := LoadDir(dir)
		if err == nil {
			t.Errorf("%s: accepted", tc.name)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q missing %q", tc.name, err, tc.want)
		}
	}
}

// TestLoadDirWithoutControlJSON: the file stays optional.
func TestLoadDirWithoutControlJSON(t *testing.T) {
	setup, err := LoadDir(cfgDir)
	if err != nil {
		t.Fatal(err)
	}
	if setup.Plane != nil {
		t.Fatal("no control.json, but a plane was attached")
	}
}
