package config

import (
	"encoding/json"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"uqsim/internal/des"
	"uqsim/internal/dist"
)

const cfgDir = "../../configs/twotier"

func TestLoadDirTwoTier(t *testing.T) {
	setup, err := LoadDir(cfgDir)
	if err != nil {
		t.Fatal(err)
	}
	if setup.Warmup != 200*des.Millisecond || setup.Duration != des.Second {
		t.Fatalf("window %v + %v", setup.Warmup, setup.Duration)
	}
	rep, err := setup.Run()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Completions == 0 {
		t.Fatal("no completions")
	}
	// 20k QPS is below the 8-proc capacity: goodput tracks offered load.
	if math.Abs(rep.GoodputQPS-20000)/20000 > 0.05 {
		t.Fatalf("goodput %v, want ≈20000", rep.GoodputQPS)
	}
	if rep.PerTier["nginx"] == nil || rep.PerTier["memcached"] == nil || rep.PerTier["netproc"] == nil {
		t.Fatal("per-tier histograms missing")
	}
	// Size sampler: exp mean 1KB must stay KB-scaled (not µs-scaled).
	if rep.Latency.P99() > 50*des.Millisecond {
		t.Fatalf("p99 %v implausible for 20k load", rep.Latency.P99())
	}
}

func TestLoadDirMissingFile(t *testing.T) {
	if _, err := LoadDir(t.TempDir()); err == nil {
		t.Fatal("missing files should fail")
	}
}

// mutate loads the twotier config files, applies fn to the named doc, and
// assembles.
func mutate(t *testing.T, which string, fn func(map[string]any)) error {
	t.Helper()
	_, err := mutateSetup(t, map[string]func(map[string]any){which: fn})
	return err
}

// mutateSetup is mutate for several docs at once, returning the Setup so
// tests can run it.
func mutateSetup(t *testing.T, muts map[string]func(map[string]any)) (*Setup, error) {
	t.Helper()
	docs := map[string][]byte{}
	for _, name := range []string{"machines.json", "service.json", "graph.json", "path.json", "client.json"} {
		b, err := os.ReadFile(filepath.Join(cfgDir, name))
		if err != nil {
			t.Fatal(err)
		}
		docs[name] = b
	}
	for which, fn := range muts {
		var m map[string]any
		if err := json.Unmarshal(docs[which], &m); err != nil {
			t.Fatal(err)
		}
		fn(m)
		b, err := json.Marshal(m)
		if err != nil {
			t.Fatal(err)
		}
		docs[which] = b
	}
	return Assemble(docs["machines.json"], docs["service.json"], docs["graph.json"],
		docs["path.json"], docs["client.json"])
}

func TestAssembleErrors(t *testing.T) {
	cases := []struct {
		name  string
		which string
		fn    func(map[string]any)
	}{
		{"no machines", "machines.json", func(m map[string]any) { m["machines"] = []any{} }},
		{"zero cores", "machines.json", func(m map[string]any) {
			m["machines"].([]any)[0].(map[string]any)["cores"] = 0
		}},
		{"unknown deployed service", "graph.json", func(m map[string]any) {
			m["deployments"].([]any)[0].(map[string]any)["service"] = "ghost"
		}},
		{"bad lb", "graph.json", func(m map[string]any) {
			m["deployments"].([]any)[0].(map[string]any)["lb"] = "magic"
		}},
		{"bad model", "service.json", func(m map[string]any) {
			m["services"].([]any)[0].(map[string]any)["model"] = "quantum"
		}},
		{"bad queue type", "service.json", func(m map[string]any) {
			svc := m["services"].([]any)[0].(map[string]any)
			svc["stages"].([]any)[0].(map[string]any)["queue_type"] = "stack"
		}},
		{"no duration", "client.json", func(m map[string]any) { delete(m, "duration_s") }},
		{"no load source", "client.json", func(m map[string]any) { delete(m, "qps") }},
		{"bad process", "client.json", func(m map[string]any) { m["process"] = "bursty" }},
		{"unknown pool ref", "path.json", func(m map[string]any) {
			tree := m["trees"].([]any)[0].(map[string]any)
			tree["nodes"].([]any)[0].(map[string]any)["acquire"] = []any{"ghost"}
		}},
	}
	for _, c := range cases {
		if err := mutate(t, c.which, c.fn); err == nil {
			t.Errorf("%s: expected error", c.name)
		}
	}
}

func TestAssembleVariants(t *testing.T) {
	// Valid variants that exercise optional branches.
	ok := []struct {
		name  string
		which string
		fn    func(map[string]any)
	}{
		{"uniform arrivals", "client.json", func(m map[string]any) { m["process"] = "uniform" }},
		{"diurnal load", "client.json", func(m map[string]any) {
			delete(m, "qps")
			m["diurnal"] = map[string]any{"base": 5000.0, "amplitude": 2000.0, "period_s": 2.0}
		}},
		{"closed loop", "client.json", func(m map[string]any) {
			delete(m, "qps")
			m["closed_users"] = 8
			m["think"] = map[string]any{"type": "exponential", "mean_us": 100.0}
		}},
		{"least loaded", "graph.json", func(m map[string]any) {
			m["deployments"].([]any)[0].(map[string]any)["lb"] = "least_loaded"
		}},
		{"random lb", "graph.json", func(m map[string]any) {
			m["deployments"].([]any)[0].(map[string]any)["lb"] = "random"
		}},
		{"no network", "machines.json", func(m map[string]any) { delete(m, "network") }},
		{"machine pools", "machines.json", func(m map[string]any) {
			m["machines"].([]any)[0].(map[string]any)["pools"] = []any{
				map[string]any{"name": "disk", "capacity": 2},
			}
		}},
	}
	for _, c := range ok {
		if err := mutate(t, c.which, c.fn); err != nil {
			t.Errorf("%s: %v", c.name, err)
		}
	}
}

func TestBuildBlueprintThreaded(t *testing.T) {
	det40 := dist.Spec{Type: "deterministic", ValueUs: 40}
	exp4ms := dist.Spec{Type: "exponential", MeanUs: 4000}
	bp, err := buildBlueprint(&ServiceSpec{
		ServiceName: "mongo",
		Model:       "multi-threaded",
		Threads:     8,
		CtxSwitchUs: 3,
		Stages: []StageSpec{
			{StageName: "parse", PerJob: &det40},
			{StageName: "disk", PerJob: &exp4ms, Pool: "disk"},
		},
		Paths:     []PathSpec{{PathName: "mem", Stages: []int{0}}, {PathName: "disk", Stages: []int{0, 1}}},
		PathProbs: []float64{0.3, 0.7},
	})
	if err != nil {
		t.Fatal(err)
	}
	if bp.Threads != 8 || bp.CtxSwitch != 3*des.Microsecond {
		t.Fatal("threaded params")
	}
	if bp.Stages[1].PoolName != "disk" {
		t.Fatal("pool name")
	}
}

func TestLoadDirThreeTier(t *testing.T) {
	setup, err := LoadDir("../../configs/threetier")
	if err != nil {
		t.Fatal(err)
	}
	rep, err := setup.Run()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Completions == 0 {
		t.Fatal("no completions")
	}
	// MongoDB appears only on the miss path (≈30%).
	mongoShare := float64(rep.PerTier["mongodb"].Count()) / float64(rep.Completions)
	if mongoShare < 0.2 || mongoShare > 0.4 {
		t.Fatalf("mongodb share %v, want ≈0.3", mongoShare)
	}
	// Mongo residence must be ms-scale (disk path dominates at 70%).
	if rep.PerTier["mongodb"].Mean() < des.Millisecond {
		t.Fatalf("mongodb mean %v, want ms-scale", rep.PerTier["mongodb"].Mean())
	}
	// The 500ms patience never trips at 1k QPS.
	if rep.Timeouts != 0 {
		t.Fatalf("timeouts = %d", rep.Timeouts)
	}
}

func TestClientTimeoutValidation(t *testing.T) {
	if err := mutate(t, "client.json", func(m map[string]any) {
		m["timeout_ms"] = -5.0
	}); err == nil {
		t.Fatal("negative timeout should fail")
	}
	if err := mutate(t, "client.json", func(m map[string]any) {
		m["max_retries"] = 2
	}); err == nil {
		t.Fatal("retries without timeout should fail")
	}
	if err := mutate(t, "client.json", func(m map[string]any) {
		m["timeout_ms"] = 100.0
		m["max_retries"] = 2
	}); err != nil {
		t.Fatalf("valid timeout config rejected: %v", err)
	}
}

// TestEngineWorkersEquivalence: an "engine" section selecting the
// parallel backend must assemble, run, and reproduce the sequential
// engine's results exactly — same seed, same trace.
func TestEngineWorkersEquivalence(t *testing.T) {
	run := func(workers int) (uint64, des.Time) {
		setup, err := mutateSetup(t, map[string]func(map[string]any){
			"machines.json": func(m map[string]any) {
				if workers > 0 {
					m["engine"] = map[string]any{"workers": workers}
				}
			},
			"client.json": func(m map[string]any) {
				m["duration_s"] = 0.05
				m["warmup_s"] = 0.0
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		rep, err := setup.Run()
		if err != nil {
			t.Fatal(err)
		}
		if rep.Completions == 0 {
			t.Fatal("no completions")
		}
		return rep.Completions, rep.Latency.P99()
	}
	seqN, seqP99 := run(0)
	for _, workers := range []int{1, 4} {
		if n, p99 := run(workers); n != seqN || p99 != seqP99 {
			t.Fatalf("workers=%d diverged: %d completions p99=%v, sequential %d p99=%v",
				workers, n, p99, seqN, seqP99)
		}
	}
}

func TestEngineWorkersValidation(t *testing.T) {
	for _, c := range []struct {
		name    string
		workers float64
	}{
		{"negative", -1},
		{"excessive", 2000},
	} {
		err := mutate(t, "machines.json", func(m map[string]any) {
			m["engine"] = map[string]any{"workers": c.workers}
		})
		if err == nil {
			t.Errorf("%s workers should fail", c.name)
		}
	}
}

// TestUnknownFieldSuggestion: a typo'd key anywhere in a document should
// name the offending field and suggest the nearest schema field.
func TestUnknownFieldSuggestion(t *testing.T) {
	cases := []struct {
		name string
		fn   func(map[string]any)
		want string
	}{
		{"nested engine field", func(m map[string]any) {
			m["engine"] = map[string]any{"workerz": 2}
		}, `did you mean "workers"`},
		{"top-level field", func(m map[string]any) {
			m["machinez"] = []any{}
		}, `did you mean "machines"`},
	}
	for _, c := range cases {
		err := mutate(t, "machines.json", c.fn)
		if err == nil {
			t.Errorf("%s: expected error", c.name)
			continue
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: error %q lacks %q", c.name, err, c.want)
		}
	}
}
