package config

import (
	"os"
	"path/filepath"
	"testing"
)

// TestInvalidFaultTimesRejected pins the validation surface the fuzz targets
// lean on: malformed times and probabilities must fail loudly, not panic or
// install silently.
func TestInvalidFaultTimesRejected(t *testing.T) {
	dir := filepath.Join("..", "..", "configs", "twotier")
	read := func(name string) []byte {
		b, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	mach, svc, graph, path, client := read("machines.json"), read("service.json"),
		read("graph.json"), read("path.json"), read("client.json")
	for _, bad := range []string{
		`{"events":[{"at_s":-1,"kind":"crash_machine","machine":"frontend"}]}`,
		`{"events":[{"at_s":0.1,"until_s":0.05,"kind":"edge_latency","service":"nginx","extra_ms":1}]}`,
		`{"network":{"partitions":[{"at_s":-5,"group_a":["frontend"],"group_b":["cache"]}]}}`,
		`{"network":{"partitions":[{"at_s":0.2,"until_s":0.1,"group_a":["frontend"],"group_b":["cache"]}]}}`,
		`{"network":{"links":[{"src":"frontend","dst":"cache","drop":1.5}]}}`,
		`{"network":{"links":[{"src":"frontend","dst":"cache","drop":-0.1}]}}`,
	} {
		_, err := Assemble(mach, svc, graph, path, client, []byte(bad))
		t.Logf("%s -> %v", bad, err)
		if err == nil {
			t.Errorf("accepted: %s", bad)
		}
	}
}
