package config

import (
	"strings"
	"testing"

	"uqsim/internal/validate"
)

// sessionsDoc is a minimal valid sessions block against the two-tier
// config, whose single tree is named "get".
func sessionsDoc() map[string]any {
	return map[string]any{
		"users": 40.0,
		"journeys": []any{
			map[string]any{
				"name":   "browse",
				"weight": 3.0,
				"steps": []any{
					map[string]any{"tree": "get", "think": map[string]any{"type": "exponential", "mean_us": 500.0}},
					map[string]any{"tree": "get"},
				},
			},
			map[string]any{
				"name":  "buy",
				"steps": []any{map[string]any{"tree": "get"}},
			},
		},
	}
}

// withSessions swaps the two-tier client's open loop for a sessions block,
// applying extra client.json mutations on top.
func withSessions(t *testing.T, extra func(map[string]any)) (*Setup, error) {
	t.Helper()
	return mutateSetup(t, map[string]func(map[string]any){
		"client.json": func(m map[string]any) {
			delete(m, "qps")
			m["sessions"] = sessionsDoc()
			m["duration_s"] = 0.3
			m["warmup_s"] = 0.05
			if extra != nil {
				extra(m)
			}
		},
	})
}

func TestSessionsAssembleAndRun(t *testing.T) {
	setup, err := withSessions(t, nil)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := setup.Run()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Arrivals == 0 || rep.Completions == 0 {
		t.Fatalf("session client produced no traffic: %+v", rep)
	}
	if err := validate.Conservation(rep); err != nil {
		t.Fatal(err)
	}
}

func TestSessionsUnknownTreeSuggests(t *testing.T) {
	_, err := withSessions(t, func(m map[string]any) {
		j := m["sessions"].(map[string]any)["journeys"].([]any)[0].(map[string]any)
		j["steps"].([]any)[0].(map[string]any)["tree"] = "gets"
	})
	if err == nil || !strings.Contains(err.Error(), `did you mean "get"`) {
		t.Fatalf("want did-you-mean for unknown tree, got %v", err)
	}
}

func TestSessionsExclusivity(t *testing.T) {
	if _, err := withSessions(t, func(m map[string]any) {
		m["closed_users"] = 8.0
	}); err == nil || !strings.Contains(err.Error(), "mutually exclusive") {
		t.Fatalf("sessions+closed_users: got %v", err)
	}
	if _, err := withSessions(t, func(m map[string]any) {
		m["qps"] = 100.0
	}); err == nil || !strings.Contains(err.Error(), "mutually exclusive") {
		t.Fatalf("sessions+qps: got %v", err)
	}
}

func TestSessionsValidationSurfaces(t *testing.T) {
	if _, err := withSessions(t, func(m map[string]any) {
		m["sessions"].(map[string]any)["journeys"] = []any{}
	}); err == nil || !strings.Contains(err.Error(), "at least one journey") {
		t.Fatalf("empty journeys: got %v", err)
	}
}

func TestFidelityConfig(t *testing.T) {
	// sample_rate without hybrid is rejected.
	if _, err := mutateSetup(t, map[string]func(map[string]any){
		"client.json": func(m map[string]any) { m["sample_rate"] = 0.1 },
	}); err == nil || !strings.Contains(err.Error(), `requires fidelity "hybrid"`) {
		t.Fatalf("bare sample_rate: got %v", err)
	}
	// Misspelled fidelity gets a suggestion.
	if _, err := mutateSetup(t, map[string]func(map[string]any){
		"client.json": func(m map[string]any) { m["fidelity"] = "hybird" },
	}); err == nil || !strings.Contains(err.Error(), `did you mean "hybrid"`) {
		t.Fatalf("misspelled fidelity: got %v", err)
	}
	// Out-of-range sample rate is rejected at load time.
	if _, err := mutateSetup(t, map[string]func(map[string]any){
		"client.json": func(m map[string]any) {
			m["fidelity"] = "hybrid"
			m["sample_rate"] = 1.5
		},
	}); err == nil || !strings.Contains(err.Error(), "sample rate") {
		t.Fatalf("bad sample rate: got %v", err)
	}
}

// TestHybridConfigRun drives a hybrid-fidelity run end to end through the
// config layer: the fluid tier must carry background traffic and both
// conservation identities must hold.
func TestHybridConfigRun(t *testing.T) {
	setup, err := mutateSetup(t, map[string]func(map[string]any){
		"client.json": func(m map[string]any) {
			m["fidelity"] = "hybrid"
			m["sample_rate"] = 0.1
			m["duration_s"] = 0.5
			m["warmup_s"] = 0.1
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := setup.Run()
	if err != nil {
		t.Fatal(err)
	}
	if rep.SampleRate != 0.1 {
		t.Fatalf("report sample rate %v, want 0.1", rep.SampleRate)
	}
	if rep.BackgroundArrivals == 0 {
		t.Fatal("hybrid run accrued no background traffic")
	}
	if rep.Arrivals == 0 {
		t.Fatal("hybrid run sampled no foreground traffic")
	}
	// Foreground is thinned to ~10%: it must be well below the full rate.
	if rep.Arrivals >= rep.BackgroundArrivals {
		t.Fatalf("foreground %d >= background %d at sample rate 0.1",
			rep.Arrivals, rep.BackgroundArrivals)
	}
	if err := validate.Conservation(rep); err != nil {
		t.Fatal(err)
	}
}
