package config

import (
	"os"
	"path/filepath"
	"testing"
)

// fuzzBaseDocs loads the shipped two-tier documents once; fuzz targets
// mutate one document at a time against this known-good base.
func fuzzBaseDocs(f *testing.F) (machines, svc, graph, path, client []byte) {
	f.Helper()
	dir := filepath.Join("..", "..", "configs", "twotier")
	read := func(name string) []byte {
		b, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			f.Fatal(err)
		}
		return b
	}
	return read("machines.json"), read("service.json"), read("graph.json"),
		read("path.json"), read("client.json")
}

// FuzzMachines feeds arbitrary bytes through the machines.json decoder and
// the full assembly path. Assembly may reject the document, but it must
// never panic.
func FuzzMachines(f *testing.F) {
	mach, svc, graph, path, client := fuzzBaseDocs(f)
	f.Add(mach)
	for _, name := range []string{"machines.json"} {
		if b, err := os.ReadFile(filepath.Join("..", "..", "configs", "threetier", name)); err == nil {
			f.Add(b)
		}
	}
	f.Add([]byte(`{"machines":[{"name":"a","cores":2},{"name":"b","cores":2}],
		"topology":{"domains":[{"name":"rack0","machines":["a","b"]}]}}`))
	f.Add([]byte(`{"machines":[{"name":"a","cores":2,"pools":[{"name":"p","capacity":4}]}]}`))
	// Region-bearing seeds: a valid rack→region hierarchy with WAN
	// overrides, plus pinned invalid inputs (duplicate membership, a
	// machine in two regions, negative WAN latency, a self-link) that
	// must be rejected without panicking.
	f.Add([]byte(`{"machines":[{"name":"a","cores":2},{"name":"b","cores":2}],
		"topology":{"domains":[{"name":"rack0","machines":["a"]}],
		"regions":[{"name":"east","racks":["rack0"]},{"name":"west","machines":["b"]}],
		"wan":{"latency_ms":5,"per_kb_us":1,"links":[{"a":"east","b":"west","latency_ms":2}]}}}`))
	f.Add([]byte(`{"machines":[{"name":"a","cores":2}],
		"topology":{"regions":[{"name":"r","machines":["a","a"]}]}}`))
	f.Add([]byte(`{"machines":[{"name":"a","cores":2},{"name":"b","cores":2}],
		"topology":{"regions":[{"name":"east","machines":["a","b"]},{"name":"west","machines":["b"]}]}}`))
	f.Add([]byte(`{"machines":[{"name":"a","cores":2},{"name":"b","cores":2}],
		"topology":{"regions":[{"name":"east","machines":["a"]},{"name":"west","machines":["b"]}],
		"wan":{"latency_ms":-1}}}`))
	f.Add([]byte(`{"machines":[{"name":"a","cores":2},{"name":"b","cores":2}],
		"topology":{"regions":[{"name":"east","machines":["a"]},{"name":"west","machines":["b"]}],
		"wan":{"links":[{"a":"east","b":"east","latency_ms":1}]}}}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		_, _ = Assemble(data, svc, graph, path, client)
	})
}

// FuzzFaults feeds arbitrary bytes through the faults.json decoder,
// including the network partition/link sections, against the shipped base
// documents. Installation may reject the plan, but it must never panic.
func FuzzFaults(f *testing.F) {
	mach, svc, graph, path, client := fuzzBaseDocs(f)
	f.Add([]byte(`{"events":[{"at_s":0.1,"kind":"crash_machine","machine":"frontend"},
		{"at_s":0.2,"kind":"recover_machine","machine":"frontend"}]}`))
	f.Add([]byte(`{"events":[{"at_s":0.1,"kind":"crash_domain","domain":"rack0","stagger_ms":5}]}`))
	f.Add([]byte(`{"network":{
		"partitions":[{"at_s":0.1,"until_s":0.3,"group_a":["frontend"],"group_b":["cache"],"one_way":true}],
		"links":[{"at_s":0,"until_s":0.5,"src":"frontend","dst":"cache","drop":0.1,"dup":0.05}]}}`))
	f.Add([]byte(`{"policies":[{"service":"nginx","timeout_ms":10,"max_retries":2,
		"breaker":{"error_threshold":0.5,"window":16,"cooldown_ms":50}}]}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		_, _ = Assemble(mach, svc, graph, path, client, data)
	})
}

// FuzzControl feeds arbitrary bytes through the control.json decoder and
// plane attachment on a freshly assembled simulation. Attachment may
// reject the document, but it must never panic.
func FuzzControl(f *testing.F) {
	mach, svc, graph, path, client := fuzzBaseDocs(f)
	f.Add([]byte(`{"services":["nginx"],"detector":{"period_ms":10},"failover":{"restart_delay_ms":50}}`))
	f.Add([]byte(`{"vantage":"frontend","detector":{"period_ms":5,"phi_threshold":8}}`))
	f.Add([]byte(`{"autoscale":[{"service":"nginx","min":1,"max":3,"target_utilization":0.6,"interval_ms":50}]}`))
	// Region failover against a geography-less base must be rejected
	// cleanly, never panic.
	f.Add([]byte(`{"heartbeat":{"period_ms":10},"region_failover":{"check_interval_ms":10,"drain_delay_ms":20}}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		setup, err := Assemble(mach, svc, graph, path, client)
		if err != nil {
			t.Fatalf("base documents stopped assembling: %v", err)
		}
		if plane, err := ApplyControl(setup.Sim, data); err == nil && plane != nil {
			plane.Stop()
		}
	})
}

// FuzzGraph feeds arbitrary bytes through the graph.json decoder and the
// full assembly path — deployments, placements, load-balancer selection,
// and geo-replication declarations. Assembly may reject the document, but
// it must never panic.
func FuzzGraph(f *testing.F) {
	mach, svc, graph, path, client := fuzzBaseDocs(f)
	f.Add(graph)
	for _, dir := range []string{"threetier", "threeregion", "metastable"} {
		if b, err := os.ReadFile(filepath.Join("..", "..", "configs", dir, "graph.json")); err == nil {
			f.Add(b)
		}
	}
	f.Add([]byte(`{"deployments":[{"service":"nginx","lb":"least_loaded",
		"instances":[{"machine":"frontend","cores":1},{"machine":"cache","cores":1}]}]}`))
	// Pinned invalid inputs: unknown machine, zero cores, unknown LB,
	// replication without regions.
	f.Add([]byte(`{"deployments":[{"service":"nginx","instances":[{"machine":"nope","cores":1}]}]}`))
	f.Add([]byte(`{"deployments":[{"service":"nginx","instances":[{"machine":"frontend","cores":0}]}]}`))
	f.Add([]byte(`{"deployments":[{"service":"nginx","lb":"bogus","instances":[{"machine":"frontend","cores":1}]}]}`))
	f.Add([]byte(`{"deployments":[{"service":"nginx","replication":{"lag_ms":30},
		"instances":[{"machine":"frontend","cores":1}]}]}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		_, _ = Assemble(mach, svc, data, path, client)
	})
}

// FuzzClient feeds arbitrary bytes through the client.json decoder —
// open/closed loop selection, arrival processes, diurnal patterns, retry
// and deadline-budget settings. Assembly may reject the document, but it
// must never panic.
func FuzzClient(f *testing.F) {
	mach, svc, graph, path, client := fuzzBaseDocs(f)
	f.Add(client)
	for _, dir := range []string{"threetier", "threeregion", "metastable"} {
		if b, err := os.ReadFile(filepath.Join("..", "..", "configs", dir, "client.json")); err == nil {
			f.Add(b)
		}
	}
	f.Add([]byte(`{"seed":1,"closed_users":8,"think":{"type":"exponential","mean_us":500},"duration_s":1}`))
	f.Add([]byte(`{"seed":1,"diurnal":{"base":100,"amplitude":50,"period_s":1},"duration_s":1}`))
	f.Add([]byte(`{"seed":1,"qps":100,"budget_ms":50,"timeout_ms":20,"max_retries":3,"duration_s":1}`))
	// Pinned invalid inputs: both loops at once, negative rate, budget
	// spec and shorthand together, unknown process.
	f.Add([]byte(`{"qps":100,"closed_users":5,"duration_s":1}`))
	f.Add([]byte(`{"qps":-5,"duration_s":1}`))
	f.Add([]byte(`{"qps":10,"budget_ms":50,"budget":{"type":"deterministic","value_us":1},"duration_s":1}`))
	f.Add([]byte(`{"qps":10,"process":"bogus","duration_s":1}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		_, _ = Assemble(mach, svc, graph, path, data)
	})
}

// FuzzPath feeds arbitrary bytes through the path.json decoder — trees,
// node wiring, pool acquire/release sequences. Assembly may reject the
// document, but it must never panic.
func FuzzPath(f *testing.F) {
	mach, svc, graph, path, client := fuzzBaseDocs(f)
	f.Add(path)
	for _, dir := range []string{"threetier", "threeregion", "metastable"} {
		if b, err := os.ReadFile(filepath.Join("..", "..", "configs", dir, "path.json")); err == nil {
			f.Add(b)
		}
	}
	// Pinned invalid inputs: a node cycle, an unknown service, a child
	// index out of range, releasing a pool never acquired.
	f.Add([]byte(`{"trees":[{"name":"loop","weight":1,"root":0,
		"nodes":[{"id":0,"service":"nginx","path":"rx","children":[0]}]}]}`))
	f.Add([]byte(`{"trees":[{"name":"t","weight":1,"root":0,
		"nodes":[{"id":0,"service":"ghost","children":[]}]}]}`))
	f.Add([]byte(`{"trees":[{"name":"t","weight":1,"root":0,
		"nodes":[{"id":0,"service":"nginx","path":"rx","children":[9]}]}]}`))
	f.Add([]byte(`{"pools":[{"name":"p","capacity":1}],"trees":[{"name":"t","weight":1,"root":0,
		"nodes":[{"id":0,"service":"nginx","path":"rx","release":["p"]}]}]}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		_, _ = Assemble(mach, svc, graph, data, client)
	})
}

// FuzzService feeds arbitrary bytes through the service.json decoder —
// stage lists, queue disciplines, path stage indices, threading models.
// Assembly may reject the document, but it must never panic.
func FuzzService(f *testing.F) {
	mach, svc, graph, path, client := fuzzBaseDocs(f)
	f.Add(svc)
	for _, dir := range []string{"threetier", "threeregion", "metastable"} {
		if b, err := os.ReadFile(filepath.Join("..", "..", "configs", dir, "service.json")); err == nil {
			f.Add(b)
		}
	}
	// Pinned invalid inputs: a path referencing a missing stage, an
	// unknown distribution type, a negative thread count, path_probs
	// that don't sum to 1.
	f.Add([]byte(`{"services":[{"service_name":"nginx","stages":[
		{"stage_name":"s","per_job":{"type":"deterministic","value_us":1}}],
		"paths":[{"path_name":"rx","stages":[5]}]}]}`))
	f.Add([]byte(`{"services":[{"service_name":"nginx","stages":[
		{"stage_name":"s","per_job":{"type":"bogus","value_us":1}}],
		"paths":[{"path_name":"rx","stages":[0]}]}]}`))
	f.Add([]byte(`{"services":[{"service_name":"nginx","model":"multi-threaded","threads":-1,
		"stages":[{"stage_name":"s","per_job":{"type":"deterministic","value_us":1}}],
		"paths":[{"path_name":"rx","stages":[0]}]}]}`))
	f.Add([]byte(`{"services":[{"service_name":"nginx","stages":[
		{"stage_name":"s","per_job":{"type":"deterministic","value_us":1}}],
		"paths":[{"path_name":"a","stages":[0]},{"path_name":"b","stages":[0]}],
		"path_probs":[0.9,0.9]}]}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		_, _ = Assemble(mach, data, graph, path, client)
	})
}

// FuzzSessions feeds arbitrary bytes through the client.json decoder with
// the sessions and fidelity blocks in play. Assembly may reject the
// document, but it must never panic.
func FuzzSessions(f *testing.F) {
	mach, svc, graph, path, client := fuzzBaseDocs(f)
	f.Add(client)
	// Valid session populations: weighted journeys, phased ramps, flash
	// crowds, on/off users, and a hybrid-fidelity split.
	f.Add([]byte(`{"seed":1,"duration_s":0.5,"sessions":{"users":50,"journeys":[
		{"name":"browse","weight":3,"steps":[
			{"tree":"get","think":{"type":"exponential","mean_us":500}},{"tree":"get"}]},
		{"name":"buy","steps":[{"tree":"get"}]}]}}`))
	f.Add([]byte(`{"seed":1,"duration_s":0.5,"fidelity":"hybrid","sample_rate":0.05,
		"sessions":{"users":100,
		"journeys":[{"name":"j","steps":[{"tree":"get","think":{"type":"exponential","mean_us":1000}}]}],
		"phases":[{"at_s":0.2,"users":400,"ramp_s":0.1}],
		"flash_crowds":[{"at_s":0.3,"extra":200,"ramp_up_s":0.05,"hold_s":0.1,"ramp_down_s":0.05}],
		"on_off":{"mean_on_s":0.2,"mean_off_s":0.1}}}`))
	f.Add([]byte(`{"seed":1,"duration_s":0.5,"qps":500,"fidelity":"hybrid"}`))
	// Pinned invalid inputs: unknown tree name, no journeys, sessions
	// alongside closed_users, a misspelled fidelity mode, sample_rate
	// without hybrid, and an out-of-range sample rate.
	f.Add([]byte(`{"duration_s":1,"sessions":{"users":10,"journeys":[{"name":"j","steps":[{"tree":"got"}]}]}}`))
	f.Add([]byte(`{"duration_s":1,"sessions":{"users":10,"journeys":[]}}`))
	f.Add([]byte(`{"duration_s":1,"closed_users":5,"sessions":{"users":10,"journeys":[{"name":"j","steps":[{"tree":"get"}]}]}}`))
	f.Add([]byte(`{"duration_s":1,"qps":100,"fidelity":"hybird"}`))
	f.Add([]byte(`{"duration_s":1,"qps":100,"sample_rate":0.5}`))
	f.Add([]byte(`{"duration_s":1,"qps":100,"fidelity":"hybrid","sample_rate":2}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		_, _ = Assemble(mach, svc, graph, path, data)
	})
}
