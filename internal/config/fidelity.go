package config

import (
	"fmt"
	"strings"

	"uqsim/internal/hybrid"
	"uqsim/internal/sim"
)

// ApplyFidelity applies CLI-style -fidelity/-sample-rate overrides to an
// assembled simulation: "full" clears any configured hybrid split,
// "hybrid" installs one (sample rate defaults to the config's, else 0.01),
// and a bare sample-rate override retunes an already-hybrid setup. It
// lives here — below both the experiment harness and the chaos harness —
// so chaos campaigns can target hybrid mode without importing the
// experiment layer that itself imports chaos.
func ApplyFidelity(s *sim.Sim, fidelity string, sampleRate float64) error {
	switch strings.ToLower(fidelity) {
	case "":
		if sampleRate == 0 {
			return nil
		}
		hc := s.HybridConfig()
		if hc == nil {
			return fmt.Errorf("-sample-rate requires -fidelity hybrid or a hybrid config")
		}
		c := *hc
		c.SampleRate = sampleRate
		if err := c.Validate(); err != nil {
			return err
		}
		s.SetHybrid(c)
	case "full":
		if sampleRate != 0 {
			return fmt.Errorf("-sample-rate conflicts with -fidelity full")
		}
		s.ClearHybrid()
	case "hybrid":
		var c hybrid.Config
		if hc := s.HybridConfig(); hc != nil {
			c = *hc
		}
		if sampleRate != 0 {
			c.SampleRate = sampleRate
		}
		if c.SampleRate == 0 {
			c.SampleRate = 0.01
		}
		if err := c.Validate(); err != nil {
			return err
		}
		s.SetHybrid(c)
	default:
		return fmt.Errorf("unknown fidelity %q (want \"full\" or \"hybrid\")", fidelity)
	}
	return nil
}
