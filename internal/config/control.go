package config

import (
	"fmt"

	"uqsim/internal/control"
	"uqsim/internal/des"
	"uqsim/internal/sim"
)

// ApplyControl decodes a control.json document and attaches the
// self-healing control plane it describes to an assembled simulation.
// Name references are validated here with did-you-mean suggestions;
// semantic validation (bounds, detector prerequisites) happens in
// control.Attach. When ejection is enabled the plane's call observer is
// wired as the simulation's OnCallResult hook.
func ApplyControl(s *sim.Sim, data []byte) (*control.Plane, error) {
	var cf ControlFile
	if err := decodeStrict("control.json", data, &cf); err != nil {
		return nil, err
	}
	ms := func(v float64) des.Time { return des.FromSeconds(v / 1000) }

	var deployed []string
	for _, dep := range s.Deployments() {
		deployed = append(deployed, dep.Name)
	}
	knownService := func(name string) bool {
		for _, d := range deployed {
			if d == name {
				return true
			}
		}
		return false
	}
	var machines []string
	for _, m := range s.Cluster().Machines() {
		machines = append(machines, m.Name)
	}
	checkMachines := func(key string, names []string) error {
		for j, name := range names {
			if _, ok := s.Cluster().Machine(name); !ok {
				return unknownName("control.json", fmt.Sprintf("%s[%d]", key, j), "machine", name, machines)
			}
		}
		return nil
	}

	cfg := control.Config{Services: cf.Services, Vantage: cf.Vantage}
	if cf.Vantage != "" {
		if _, ok := s.Cluster().Machine(cf.Vantage); !ok {
			return nil, unknownName("control.json", "vantage", "machine", cf.Vantage, machines)
		}
	}
	for i, name := range cf.Services {
		if !knownService(name) {
			return nil, unknownName("control.json", fmt.Sprintf("services[%d]", i), "service", name, deployed)
		}
	}
	if cf.Heartbeat != nil {
		cfg.Detector = &control.DetectorConfig{
			Period:        ms(cf.Heartbeat.PeriodMs),
			Jitter:        cf.Heartbeat.Jitter,
			CheckInterval: ms(cf.Heartbeat.CheckIntervalMs),
			PhiThreshold:  cf.Heartbeat.PhiThreshold,
			MinSamples:    cf.Heartbeat.MinSamples,
		}
	}
	if cf.Ejection != nil {
		cfg.Ejection = &control.EjectionConfig{
			Interval:           ms(cf.Ejection.IntervalMs),
			FailureRatio:       cf.Ejection.FailureRatio,
			LatencyFactor:      cf.Ejection.LatencyFactor,
			Quantile:           cf.Ejection.Quantile,
			MinRequests:        cf.Ejection.MinRequests,
			MinHealthyFraction: cf.Ejection.MinHealthyFraction,
			Probation:          ms(cf.Ejection.ProbationMs),
		}
	}
	if cf.Failover != nil {
		if err := checkMachines("failover.machines", cf.Failover.Machines); err != nil {
			return nil, err
		}
		cfg.Failover = &control.FailoverConfig{
			RestartDelay: ms(cf.Failover.RestartDelayMs),
			Machines:     cf.Failover.Machines,
		}
	}
	if cf.RegionFailover != nil {
		cfg.RegionFailover = &control.RegionFailoverConfig{
			CheckInterval: ms(cf.RegionFailover.CheckIntervalMs),
			DrainDelay:    ms(cf.RegionFailover.DrainDelayMs),
		}
	}
	for i, as := range cf.Autoscale {
		if !knownService(as.Service) {
			return nil, unknownName("control.json", fmt.Sprintf("autoscale[%d].service", i), "service", as.Service, deployed)
		}
		if err := checkMachines(fmt.Sprintf("autoscale[%d].machines", i), as.Machines); err != nil {
			return nil, err
		}
		cfg.Autoscale = append(cfg.Autoscale, control.AutoscaleConfig{
			Service:           as.Service,
			Min:               as.Min,
			Max:               as.Max,
			TargetUtilization: as.TargetUtilization,
			TargetQueue:       as.TargetQueue,
			Interval:          ms(as.IntervalMs),
			UpCooldown:        ms(as.UpCooldownMs),
			DownCooldown:      ms(as.DownCooldownMs),
			Tolerance:         as.Tolerance,
			Cores:             as.Cores,
			Machines:          as.Machines,
		})
	}

	plane, err := control.Attach(s, cfg)
	if err != nil {
		return nil, fmt.Errorf("config: control.json: %w", err)
	}
	if cfg.Ejection != nil {
		s.OnCallResult = plane.ObserveCall
	}
	return plane, nil
}
