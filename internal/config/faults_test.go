package config

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// twotierDocs reads the five base config documents.
func twotierDocs(t *testing.T) map[string][]byte {
	t.Helper()
	docs := map[string][]byte{}
	for _, name := range []string{"machines.json", "service.json", "graph.json", "path.json", "client.json"} {
		b, err := os.ReadFile(filepath.Join(cfgDir, name))
		if err != nil {
			t.Fatal(err)
		}
		docs[name] = b
	}
	return docs
}

func assembleWithFaults(t *testing.T, faults string) (*Setup, error) {
	t.Helper()
	docs := twotierDocs(t)
	return Assemble(docs["machines.json"], docs["service.json"], docs["graph.json"],
		docs["path.json"], docs["client.json"], []byte(faults))
}

// Unknown JSON keys must be rejected with an error naming the file and the
// offending key, for every config document.
func TestUnknownKeyRejected(t *testing.T) {
	docs := twotierDocs(t)
	for _, name := range []string{"machines.json", "service.json", "graph.json", "path.json", "client.json"} {
		var m map[string]any
		if err := json.Unmarshal(docs[name], &m); err != nil {
			t.Fatal(err)
		}
		m["bogus_knob"] = 7
		b, err := json.Marshal(m)
		if err != nil {
			t.Fatal(err)
		}
		bad := map[string][]byte{}
		for k, v := range docs {
			bad[k] = v
		}
		bad[name] = b
		_, err = Assemble(bad["machines.json"], bad["service.json"], bad["graph.json"],
			bad["path.json"], bad["client.json"])
		if err == nil {
			t.Errorf("%s: unknown key accepted", name)
			continue
		}
		if !strings.Contains(err.Error(), name) || !strings.Contains(err.Error(), "bogus_knob") {
			t.Errorf("%s: error should name the file and the key: %v", name, err)
		}
	}
	// Nested unknown keys are rejected too.
	if err := mutate(t, "machines.json", func(m map[string]any) {
		m["machines"].([]any)[0].(map[string]any)["gpu_count"] = 4
	}); err == nil || !strings.Contains(err.Error(), "gpu_count") {
		t.Errorf("nested unknown key: %v", err)
	}
	// faults.json is strict as well.
	if _, err := assembleWithFaults(t, `{"chaos": true}`); err == nil || !strings.Contains(err.Error(), "chaos") {
		t.Errorf("faults.json unknown key: %v", err)
	}
}

func TestFaultsJSONRoundTrip(t *testing.T) {
	setup, err := assembleWithFaults(t, `{
		"policies": [
			{"service": "memcached", "timeout_ms": 50, "max_retries": 2,
			 "backoff_base_ms": 1, "backoff_jitter": 0.5,
			 "breaker": {"error_threshold": 0.9, "window": 50, "cooldown_ms": 20}},
			{"tree": "get", "node": 1, "service": "memcached",
			 "timeout_ms": 40, "max_retries": 3, "backoff_base_ms": 1}
		],
		"shedding": [{"service": "nginx", "max_queue": 10000}],
		"events": [
			{"at_s": 0.5, "kind": "kill_instance", "service": "memcached", "instance": 0},
			{"at_s": 0.55, "kind": "restart_instance", "service": "memcached"},
			{"at_s": 0.7, "kind": "edge_latency", "service": "memcached",
			 "extra_ms": 0.2, "until_s": 0.8},
			{"at_s": 0.9, "kind": "degrade_freq", "machine": "cache", "freq_mhz": 1300}
		]
	}`)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := setup.Run()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Completions == 0 {
		t.Fatal("no completions")
	}
	// The 50ms memcached outage must show up in the error counters: attempts
	// against the down instance drop and get retried.
	ec := rep.Errors["memcached"]
	if ec == nil || ec.Dropped == 0 || ec.Retries == 0 {
		t.Fatalf("memcached errors %+v, want drops + retries from the kill window", ec)
	}
	if rep.Retries == 0 {
		t.Fatal("no policy retries counted")
	}
	total := rep.Completions + rep.Timeouts + rep.Shed + rep.Dropped + uint64(rep.InFlight)
	if rep.Arrivals != total {
		t.Fatalf("conservation: arrivals %d != %d", rep.Arrivals, total)
	}
}

func TestLoadDirReadsFaultsJSON(t *testing.T) {
	dir := t.TempDir()
	for name, b := range twotierDocs(t) {
		if err := os.WriteFile(filepath.Join(dir, name), b, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	faults := `{"events": [{"at_s": 0.5, "kind": "kill_instance", "service": "memcached"}]}`
	if err := os.WriteFile(filepath.Join(dir, "faults.json"), []byte(faults), 0o644); err != nil {
		t.Fatal(err)
	}
	setup, err := LoadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := setup.Run()
	if err != nil {
		t.Fatal(err)
	}
	// No policy guards the edge, so the kill turns requests into drops.
	if rep.Dropped == 0 {
		t.Fatal("kill_instance from faults.json had no effect")
	}
}

func TestFaultsJSONErrors(t *testing.T) {
	cases := []struct {
		name, doc, want string
	}{
		{"unknown kind", `{"events": [{"at_s": 1, "kind": "meteor_strike", "machine": "cache"}]}`, "meteor_strike"},
		{"unknown machine", `{"events": [{"at_s": 1, "kind": "crash_machine", "machine": "ghost"}]}`, "ghost"},
		{"unknown service", `{"events": [{"at_s": 1, "kind": "kill_instance", "service": "ghost"}]}`, "ghost"},
		{"instance out of range", `{"events": [{"at_s": 1, "kind": "kill_instance", "service": "memcached", "instance": 5}]}`, "instance"},
		{"policy without target", `{"policies": [{"timeout_ms": 10}]}`, "service or a tree"},
		{"tree without node", `{"policies": [{"tree": "get", "timeout_ms": 10}]}`, "needs a node"},
		{"node without tree", `{"policies": [{"service": "memcached", "node": 1, "timeout_ms": 10}]}`, "needs a tree"},
		{"unknown policy service", `{"policies": [{"service": "ghost", "timeout_ms": 10}]}`, "ghost"},
		{"unknown policy tree", `{"policies": [{"tree": "ghost", "node": 0, "timeout_ms": 10}]}`, "ghost"},
		{"retries without timeout", `{"policies": [{"service": "memcached", "max_retries": 2}]}`, "timeout"},
		{"shed unknown service", `{"shedding": [{"service": "ghost", "max_queue": 10}]}`, "ghost"},
		{"negative max queue", `{"shedding": [{"service": "nginx", "max_queue": -1}]}`, "negative"},
	}
	for _, c := range cases {
		_, err := assembleWithFaults(t, c.doc)
		if err == nil {
			t.Errorf("%s: expected error", c.name)
			continue
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: error %q should mention %q", c.name, err, c.want)
		}
	}
}
