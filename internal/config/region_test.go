package config

import (
	"strings"
	"testing"

	"uqsim/internal/des"
)

// regionTopology installs a two-region layer over the twotier machines.
func regionTopology(m map[string]any) {
	m["topology"] = map[string]any{
		"regions": []any{
			map[string]any{"name": "east", "machines": []any{"frontend"}},
			map[string]any{"name": "west", "machines": []any{"cache"}},
		},
		"wan": map[string]any{"latency_ms": 5.0},
	}
}

// TestRegionConfigErrors pins the strict-decode and validation paths of
// the region schema: typo'd fields and names get did-you-mean
// suggestions, and structurally invalid geographies are rejected with a
// named location.
func TestRegionConfigErrors(t *testing.T) {
	cases := []struct {
		name string
		muts map[string]func(map[string]any)
		want string
	}{
		{"machine in two regions", map[string]func(map[string]any){
			"machines.json": func(m map[string]any) {
				m["topology"] = map[string]any{"regions": []any{
					map[string]any{"name": "east", "machines": []any{"frontend", "cache"}},
					map[string]any{"name": "west", "machines": []any{"cache"}},
				}}
			},
		}, "two regions"},
		{"unknown region machine", map[string]func(map[string]any){
			"machines.json": func(m map[string]any) {
				m["topology"] = map[string]any{"regions": []any{
					map[string]any{"name": "east", "machines": []any{"frontendz"}},
				}}
			},
		}, `did you mean "frontend"`},
		{"unknown rack", map[string]func(map[string]any){
			"machines.json": func(m map[string]any) {
				m["topology"] = map[string]any{
					"domains": []any{map[string]any{"name": "rack0", "machines": []any{"frontend"}}},
					"regions": []any{
						map[string]any{"name": "east", "racks": []any{"rack9"}},
						map[string]any{"name": "west", "machines": []any{"cache"}},
					}}
			},
		}, `did you mean "rack0"`},
		{"negative wan latency", map[string]func(map[string]any){
			"machines.json": func(m map[string]any) {
				regionTopology(m)
				m["topology"].(map[string]any)["wan"] = map[string]any{"latency_ms": -5.0}
			},
		}, "negative WAN latency"},
		{"wan without regions", map[string]func(map[string]any){
			"machines.json": func(m map[string]any) {
				m["topology"] = map[string]any{
					"domains": []any{map[string]any{"name": "rack0", "machines": []any{"frontend"}}},
					"wan":     map[string]any{"latency_ms": 5.0},
				}
			},
		}, "topology.wan requires topology.regions"},
		{"wan typo field", map[string]func(map[string]any){
			"machines.json": func(m map[string]any) {
				regionTopology(m)
				m["topology"].(map[string]any)["wan"] = map[string]any{"latency_mz": 5.0}
			},
		}, `did you mean "latency_ms"`},
		{"unknown wan link region", map[string]func(map[string]any){
			"machines.json": func(m map[string]any) {
				regionTopology(m)
				m["topology"].(map[string]any)["wan"] = map[string]any{
					"links": []any{map[string]any{"a": "eastt", "b": "west"}},
				}
			},
		}, `did you mean "east"`},
		{"unknown replication region", map[string]func(map[string]any){
			"machines.json": regionTopology,
			"graph.json": func(m map[string]any) {
				m["deployments"].([]any)[1].(map[string]any)["replication"] =
					map[string]any{"regions": []any{"eastt"}}
			},
		}, `did you mean "east"`},
		{"replication without regions", map[string]func(map[string]any){
			"graph.json": func(m map[string]any) {
				m["deployments"].([]any)[1].(map[string]any)["replication"] =
					map[string]any{"lag_ms": 10.0}
			},
		}, "requires topology.regions"},
		{"negative replication lag", map[string]func(map[string]any){
			"machines.json": regionTopology,
			"graph.json": func(m map[string]any) {
				m["deployments"].([]any)[1].(map[string]any)["replication"] =
					map[string]any{"lag_ms": -1.0, "regions": []any{"east", "west"}}
			},
		}, "non-negative"},
		{"replication single region", map[string]func(map[string]any){
			"machines.json": regionTopology,
			"graph.json": func(m map[string]any) {
				m["deployments"].([]any)[1].(map[string]any)["replication"] =
					map[string]any{"regions": []any{"west"}}
			},
		}, "two regions"},
		{"client unknown region", map[string]func(map[string]any){
			"machines.json": regionTopology,
			"client.json": func(m map[string]any) {
				m["region"] = "easy"
			},
		}, `did you mean "east"`},
		{"client region without regions", map[string]func(map[string]any){
			"client.json": func(m map[string]any) {
				m["region"] = "east"
			},
		}, "unknown region"},
	}
	for _, c := range cases {
		_, err := mutateSetup(t, c.muts)
		if err == nil {
			t.Errorf("%s: expected error", c.name)
			continue
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: error %q lacks %q", c.name, err, c.want)
		}
	}
}

// TestRegionConfigAssembles: a valid region layer — rack-pulled
// membership, WAN overrides, a homed client — assembles and runs with
// cross-region accounting active.
func TestRegionConfigAssembles(t *testing.T) {
	setup, err := mutateSetup(t, map[string]func(map[string]any){
		"machines.json": func(m map[string]any) {
			m["topology"] = map[string]any{
				"domains": []any{map[string]any{"name": "rack0", "machines": []any{"frontend"}}},
				"regions": []any{
					map[string]any{"name": "east", "racks": []any{"rack0"}},
					map[string]any{"name": "west", "machines": []any{"cache"}},
				},
				"wan": map[string]any{
					"latency_ms": 5.0,
					"links":      []any{map[string]any{"a": "east", "b": "west", "latency_ms": 1.0, "per_kb_us": 0.5}},
				},
			}
		},
		"client.json": func(m map[string]any) {
			m["region"] = "east"
			m["duration_s"] = 0.1
			m["warmup_s"] = 0.0
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	geo := setup.Sim.Geography()
	if geo == nil {
		t.Fatal("no geography installed")
	}
	if got := geo.RegionOf("frontend"); got != "east" {
		t.Fatalf("rack-pulled membership: frontend in %q, want east", got)
	}
	if d := geo.Delay("east", "west", 0); d != des.Millisecond {
		t.Fatalf("link override delay = %v, want 1ms", d)
	}
	rep, err := setup.Run()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Completions == 0 {
		t.Fatal("no completions")
	}
	// nginx sits in east, memcached in west: every nginx→memcached hop
	// crosses the WAN.
	if rep.CrossRegionCalls == 0 {
		t.Fatal("no cross-region calls counted")
	}
}

// TestLoadDirThreeRegion runs the shipped three-region reference config
// end to end: rack→region hierarchy, WAN overrides, geo-replicated
// store, east-homed diurnal client, a full east outage healed mid-run,
// and the control plane's region failover promoting a survivor.
func TestLoadDirThreeRegion(t *testing.T) {
	setup, err := LoadDir("../../configs/threeregion")
	if err != nil {
		t.Fatal(err)
	}
	if setup.Plane == nil {
		t.Fatal("control.json present but no plane attached")
	}
	rep, err := setup.Run()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Completions == 0 {
		t.Fatal("no completions")
	}
	st := setup.Plane.Stats()
	if st.RegionLosses == 0 || st.RegionFailovers == 0 || st.RegionRestores == 0 {
		t.Fatalf("east outage not handled: %s", st.Fingerprint())
	}
	if rep.CrossRegionCalls == 0 {
		t.Fatal("no cross-region traffic during the outage")
	}
	leaked := rep.Arrivals - (rep.Completions + rep.Timeouts + rep.Shed +
		rep.Dropped + rep.DeadlineExpired + rep.Unreachable + uint64(rep.InFlight))
	if leaked != 0 {
		t.Fatalf("leaked %d requests", leaked)
	}
}
