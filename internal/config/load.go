package config

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"uqsim/internal/cluster"
	"uqsim/internal/control"
	"uqsim/internal/des"
	"uqsim/internal/dist"
	"uqsim/internal/fault"
	"uqsim/internal/graph"
	"uqsim/internal/hybrid"
	"uqsim/internal/netfault"
	"uqsim/internal/pdes"
	"uqsim/internal/queueing"
	"uqsim/internal/service"
	"uqsim/internal/sim"
	"uqsim/internal/workload"
)

// Setup is a fully assembled simulation plus its run window.
type Setup struct {
	Sim      *sim.Sim
	Warmup   des.Time
	Duration des.Time
	// Plane is the attached self-healing control plane; nil unless the
	// config directory had a control.json.
	Plane *control.Plane
}

// Run executes the configured window.
func (s *Setup) Run() (*sim.Report, error) { return s.Sim.Run(s.Warmup, s.Duration) }

// LoadDir reads machines.json, service.json, graph.json, path.json, and
// client.json from dir and assembles the simulation. An optional faults.json
// adds resilience policies and a fault-injection plan; an optional
// control.json attaches the self-healing control plane.
func LoadDir(dir string) (*Setup, error) {
	docs, err := readBaseDocs(dir)
	if err != nil {
		return nil, err
	}
	var setup *Setup
	faults, err := os.ReadFile(filepath.Join(dir, "faults.json"))
	switch {
	case os.IsNotExist(err):
		setup, err = Assemble(docs[0], docs[1], docs[2], docs[3], docs[4])
	case err != nil:
		return nil, fmt.Errorf("config: reading faults.json: %w", err)
	default:
		setup, err = Assemble(docs[0], docs[1], docs[2], docs[3], docs[4], faults)
	}
	if err != nil {
		return nil, err
	}
	return applyControlFile(dir, setup)
}

// LoadDirWithFaults is LoadDir with an explicit faults document replacing
// any dir/faults.json. Unlike LoadDir's optional lookup, faultsPath must
// exist.
func LoadDirWithFaults(dir, faultsPath string) (*Setup, error) {
	docs, err := readBaseDocs(dir)
	if err != nil {
		return nil, err
	}
	faults, err := os.ReadFile(faultsPath)
	if err != nil {
		return nil, fmt.Errorf("config: reading %s: %w", faultsPath, err)
	}
	setup, err := Assemble(docs[0], docs[1], docs[2], docs[3], docs[4], faults)
	if err != nil {
		return nil, err
	}
	return applyControlFile(dir, setup)
}

// applyControlFile attaches dir/control.json to an assembled setup when
// the file exists.
func applyControlFile(dir string, setup *Setup) (*Setup, error) {
	data, err := os.ReadFile(filepath.Join(dir, "control.json"))
	if os.IsNotExist(err) {
		return setup, nil
	}
	if err != nil {
		return nil, fmt.Errorf("config: reading control.json: %w", err)
	}
	plane, err := ApplyControl(setup.Sim, data)
	if err != nil {
		return nil, err
	}
	setup.Plane = plane
	return setup, nil
}

// readBaseDocs reads the five required config documents from dir in
// machines, service, graph, path, client order.
func readBaseDocs(dir string) ([5][]byte, error) {
	var docs [5][]byte
	for i, name := range [5]string{"machines.json", "service.json", "graph.json", "path.json", "client.json"} {
		b, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			return docs, fmt.Errorf("config: reading %s: %w", name, err)
		}
		docs[i] = b
	}
	return docs, nil
}

// decodeStrict unmarshals one config document, rejecting unknown JSON keys
// so typos fail loudly instead of being ignored. When the unknown key is
// an edit distance away from a real field anywhere in the document's
// schema, the error suggests it.
func decodeStrict(name string, data []byte, v any) error {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		if got, ok := unknownFieldOf(err); ok {
			return unknownName(name, "", "field", got, jsonFieldNames(v))
		}
		return fmt.Errorf("config: %s: %w", name, err)
	}
	if dec.More() {
		return fmt.Errorf("config: %s: trailing data after JSON document", name)
	}
	return nil
}

// Assemble builds a simulation from the five JSON documents plus an
// optional sixth faults.json document.
func Assemble(machinesJSON, servicesJSON, graphJSON, pathsJSON, clientJSON []byte, faultsJSON ...[]byte) (*Setup, error) {
	var mf MachinesFile
	if err := decodeStrict("machines.json", machinesJSON, &mf); err != nil {
		return nil, err
	}
	var sf ServicesFile
	if err := decodeStrict("service.json", servicesJSON, &sf); err != nil {
		return nil, err
	}
	var gf GraphFile
	if err := decodeStrict("graph.json", graphJSON, &gf); err != nil {
		return nil, err
	}
	var pf PathsFile
	if err := decodeStrict("path.json", pathsJSON, &pf); err != nil {
		return nil, err
	}
	var cf ClientFile
	if err := decodeStrict("client.json", clientJSON, &cf); err != nil {
		return nil, err
	}
	var ff *FaultsFile
	if len(faultsJSON) > 1 {
		return nil, fmt.Errorf("config: at most one faults.json document, got %d", len(faultsJSON))
	}
	if len(faultsJSON) == 1 {
		ff = &FaultsFile{}
		if err := decodeStrict("faults.json", faultsJSON[0], ff); err != nil {
			return nil, err
		}
	}
	return assemble(&mf, &sf, &gf, &pf, &cf, ff)
}

func assemble(mf *MachinesFile, sf *ServicesFile, gf *GraphFile, pf *PathsFile, cf *ClientFile, ff *FaultsFile) (*Setup, error) {
	if cf.DurationS <= 0 {
		return nil, fmt.Errorf("config: client.json needs a positive duration_s")
	}
	eng, err := buildEngine(mf.Engine)
	if err != nil {
		return nil, err
	}
	s := sim.New(sim.Options{Seed: cf.Seed, Engine: eng})

	// Machines.
	if len(mf.Machines) == 0 {
		return nil, fmt.Errorf("config: machines.json declares no machines")
	}
	seen := make(map[string]bool, len(mf.Machines))
	for _, ms := range mf.Machines {
		if ms.Name == "" {
			return nil, fmt.Errorf("config: machines.json: machine without a name")
		}
		if seen[ms.Name] {
			return nil, fmt.Errorf("config: machines.json: duplicate machine %q", ms.Name)
		}
		seen[ms.Name] = true
		freq := cluster.FreqSpec{}
		if ms.Freq != nil {
			freq = cluster.FreqSpec{MinMHz: ms.Freq.MinMHz, MaxMHz: ms.Freq.MaxMHz, StepMHz: ms.Freq.StepMHz}
		}
		if ms.Cores <= 0 {
			return nil, fmt.Errorf("config: machine %q needs positive cores", ms.Name)
		}
		m := s.AddMachine(ms.Name, ms.Cores, freq)
		for _, p := range ms.Pools {
			if p.Capacity <= 0 {
				return nil, fmt.Errorf("config: machine %q pool %q needs positive capacity", ms.Name, p.Name)
			}
			m.AddPool(p.Name, p.Capacity)
		}
	}

	// Failure domains (after machines so membership is checkable).
	var regionNames []string
	if mf.Topology != nil {
		machineNames := make([]string, 0, len(mf.Machines))
		for _, ms := range mf.Machines {
			machineNames = append(machineNames, ms.Name)
		}
		domains := make([]netfault.Domain, 0, len(mf.Topology.Domains))
		for i, d := range mf.Topology.Domains {
			for j, name := range d.Machines {
				if !seen[name] {
					return nil, unknownName("machines.json", fmt.Sprintf("topology.domains[%d].machines[%d]", i, j), "machine", name, machineNames)
				}
			}
			domains = append(domains, netfault.Domain{Name: d.Name, Machines: d.Machines})
		}
		if err := s.SetDomains(domains); err != nil {
			return nil, fmt.Errorf("config: machines.json topology: %w", err)
		}

		// Regions: the geographic layer above racks. Each region lists
		// machines directly and/or pulls in whole racks by domain name.
		if len(mf.Topology.Regions) > 0 {
			domainNames := make([]string, 0, len(mf.Topology.Domains))
			for _, d := range mf.Topology.Domains {
				domainNames = append(domainNames, d.Name)
			}
			regions := make([]cluster.Region, 0, len(mf.Topology.Regions))
			for i, rs := range mf.Topology.Regions {
				members := append([]string(nil), rs.Machines...)
				for j, name := range rs.Machines {
					if !seen[name] {
						return nil, unknownName("machines.json", fmt.Sprintf("topology.regions[%d].machines[%d]", i, j), "machine", name, machineNames)
					}
				}
				for j, rack := range rs.Racks {
					found := false
					for _, d := range mf.Topology.Domains {
						if d.Name == rack {
							members = append(members, d.Machines...)
							found = true
							break
						}
					}
					if !found {
						return nil, unknownName("machines.json", fmt.Sprintf("topology.regions[%d].racks[%d]", i, j), "domain", rack, domainNames)
					}
				}
				regions = append(regions, cluster.Region{Name: rs.Name, Machines: members})
				regionNames = append(regionNames, rs.Name)
			}
			geo, err := s.SetGeography(regions)
			if err != nil {
				return nil, fmt.Errorf("config: machines.json topology.regions: %w", err)
			}
			if w := mf.Topology.WAN; w != nil {
				if err := geo.SetDefaultWAN(cluster.WANLink{
					Latency: des.FromSeconds(w.LatencyMs / 1000),
					PerKB:   des.FromNanos(w.PerKBUs * 1000),
				}); err != nil {
					return nil, fmt.Errorf("config: machines.json topology.wan: %w", err)
				}
				for li, l := range w.Links {
					if !geo.HasRegion(l.A) {
						return nil, unknownName("machines.json", fmt.Sprintf("topology.wan.links[%d].a", li), "region", l.A, regionNames)
					}
					if !geo.HasRegion(l.B) {
						return nil, unknownName("machines.json", fmt.Sprintf("topology.wan.links[%d].b", li), "region", l.B, regionNames)
					}
					if err := geo.SetLink(l.A, l.B, cluster.WANLink{
						Latency: des.FromSeconds(l.LatencyMs / 1000),
						PerKB:   des.FromNanos(l.PerKBUs * 1000),
					}); err != nil {
						return nil, fmt.Errorf("config: machines.json topology.wan.links[%d]: %w", li, err)
					}
				}
			}
		} else if mf.Topology.WAN != nil {
			return nil, fmt.Errorf("config: machines.json: topology.wan requires topology.regions")
		}
	}

	// Services → blueprints.
	blueprints := make(map[string]*service.Blueprint, len(sf.Services))
	for _, svc := range sf.Services {
		bp, err := buildBlueprint(&svc)
		if err != nil {
			return nil, err
		}
		blueprints[bp.Name] = bp
	}

	// Deployments.
	for i, d := range gf.Deployments {
		bp, ok := blueprints[d.Service]
		if !ok {
			declared := make([]string, 0, len(blueprints))
			for name := range blueprints {
				declared = append(declared, name)
			}
			return nil, unknownName("graph.json", fmt.Sprintf("deployments[%d].service", i), "service", d.Service, declared)
		}
		var lb sim.Policy
		switch strings.ToLower(d.LB) {
		case "", "round_robin", "roundrobin":
			lb = sim.RoundRobin
		case "random":
			lb = sim.Random
		case "least_loaded", "leastloaded":
			lb = sim.LeastLoaded
		default:
			return nil, fmt.Errorf("config: unknown lb policy %q", d.LB)
		}
		placements := make([]sim.Placement, 0, len(d.Instances))
		for _, inst := range d.Instances {
			placements = append(placements, sim.Placement{Machine: inst.Machine, Cores: inst.Cores})
		}
		if _, err := s.Deploy(bp, lb, placements...); err != nil {
			return nil, err
		}
		if d.Replication != nil {
			if len(regionNames) == 0 {
				return nil, fmt.Errorf("config: graph.json deployments[%d]: replication requires topology.regions in machines.json", i)
			}
			for j, rg := range d.Replication.Regions {
				if !s.Geography().HasRegion(rg) {
					return nil, unknownName("graph.json", fmt.Sprintf("deployments[%d].replication.regions[%d]", i, j), "region", rg, regionNames)
				}
			}
			if d.Replication.LagMs < 0 {
				return nil, fmt.Errorf("config: graph.json deployments[%d]: replication lag_ms must be non-negative", i)
			}
			if err := s.SetReplication(d.Service, sim.ReplicationSpec{
				Lag:     des.FromSeconds(d.Replication.LagMs / 1000),
				Regions: d.Replication.Regions,
			}); err != nil {
				return nil, fmt.Errorf("config: graph.json deployments[%d]: %w", i, err)
			}
		}
	}

	// Network (after machines + deployments so core accounting is clear).
	if mf.Network != nil {
		var perMsg dist.Sampler
		if mf.Network.PerMsg != nil {
			var err error
			perMsg, err = mf.Network.PerMsg.Build()
			if err != nil {
				return nil, fmt.Errorf("config: network per_msg: %w", err)
			}
		}
		if err := s.EnableNetwork(sim.NetworkConfig{
			CoresPerMachine: mf.Network.CoresPerMachine,
			PerMsg:          perMsg,
			PerKB:           mf.Network.PerKBUs * 1000,
			ClientTx:        mf.Network.ClientTx,
		}); err != nil {
			return nil, err
		}
	}

	// Topology.
	topo := &graph.Topology{}
	for _, p := range pf.Pools {
		topo.Pools = append(topo.Pools, graph.ConnPool{Name: p.Name, Capacity: p.Capacity})
	}
	for _, ts := range pf.Trees {
		tree := graph.Tree{Name: ts.Name, Weight: ts.Weight, Root: ts.Root}
		for _, ns := range ts.Nodes {
			inst := -1
			if ns.Instance != nil {
				inst = *ns.Instance
			}
			tree.Nodes = append(tree.Nodes, graph.Node{
				ID:          ns.ID,
				Service:     ns.Service,
				ServicePath: ns.Path,
				Instance:    inst,
				Children:    ns.Children,
				AcquireConn: ns.Acquire,
				ReleaseConn: ns.Release,
			})
		}
		topo.Trees = append(topo.Trees, tree)
	}
	if err := s.SetTopology(topo); err != nil {
		return nil, err
	}
	treeIdx := make(map[string]int, len(topo.Trees))
	treeNames := make([]string, len(topo.Trees))
	for i := range topo.Trees {
		treeIdx[topo.Trees[i].Name] = i
		treeNames[i] = topo.Trees[i].Name
	}

	// Client.
	cc := sim.ClientConfig{
		Connections: cf.Connections,
		Timeout:     des.FromSeconds(cf.TimeoutMs / 1000),
		MaxRetries:  cf.MaxRetries,
	}
	if cf.TimeoutMs < 0 {
		return nil, fmt.Errorf("config: timeout_ms must be non-negative")
	}
	if cf.MaxRetries > 0 && cf.TimeoutMs <= 0 {
		return nil, fmt.Errorf("config: max_retries requires timeout_ms")
	}
	switch strings.ToLower(cf.Process) {
	case "", "poisson":
		cc.Proc = workload.Poisson
	case "uniform", "deterministic":
		cc.Proc = workload.Uniform
	default:
		return nil, fmt.Errorf("config: unknown arrival process %q", cf.Process)
	}
	if cf.Diurnal != nil {
		d := workload.Diurnal{
			Base:      cf.Diurnal.Base,
			Amplitude: cf.Diurnal.Amplitude,
			Period:    des.FromSeconds(cf.Diurnal.PeriodS),
			Floor:     cf.Diurnal.Floor,
		}
		if err := d.Validate(); err != nil {
			return nil, fmt.Errorf("config: client.json diurnal: %w", err)
		}
		cc.Pattern = d
	} else if cf.QPS != 0 {
		r := workload.ConstantRate(cf.QPS)
		if err := r.Validate(); err != nil {
			return nil, fmt.Errorf("config: client.json qps: %w", err)
		}
		cc.Pattern = r
	}
	if cf.Sessions != nil {
		if cf.ClosedUsers > 0 {
			return nil, fmt.Errorf("config: client.json: sessions and closed_users are mutually exclusive")
		}
		if cc.Pattern != nil {
			return nil, fmt.Errorf("config: client.json: sessions and qps/diurnal are mutually exclusive")
		}
		sc, err := buildSessions(cf.Sessions, treeIdx, treeNames)
		if err != nil {
			return nil, err
		}
		cc.Sessions = sc
	} else if cf.ClosedUsers > 0 {
		cc.ClosedUsers = cf.ClosedUsers
		if cf.Think != nil {
			th, err := cf.Think.Build()
			if err != nil {
				return nil, fmt.Errorf("config: client think: %w", err)
			}
			cc.Think = th
		}
	} else if cc.Pattern == nil {
		return nil, fmt.Errorf("config: client.json needs qps, diurnal, closed_users, or sessions")
	}
	if cf.Budget != nil && cf.BudgetMs != 0 {
		return nil, fmt.Errorf("config: client.json: budget and budget_ms are mutually exclusive")
	}
	if cf.BudgetMs < 0 {
		return nil, fmt.Errorf("config: client.json: budget_ms must be non-negative")
	}
	if cf.Budget != nil {
		b, err := cf.Budget.Build()
		if err != nil {
			return nil, fmt.Errorf("config: client budget: %w", err)
		}
		cc.Budget = b
	} else if cf.BudgetMs > 0 {
		cc.Budget = dist.NewDeterministic(float64(des.FromSeconds(cf.BudgetMs / 1000)))
	}
	if cf.Region != "" {
		if geo := s.Geography(); geo == nil || !geo.HasRegion(cf.Region) {
			return nil, unknownName("client.json", "region", "region", cf.Region, regionNames)
		}
		cc.Region = cf.Region
	}
	if cf.SizeKB != nil {
		sz, err := cf.SizeKB.Build()
		if err != nil {
			return nil, fmt.Errorf("config: client size_kb: %w", err)
		}
		// size_kb is dimensionless KB, but dist.Spec treats values as
		// microseconds; undo that scale.
		cc.SizeKB = dist.NewScaled(sz, 1.0/1000)
	}
	s.SetClient(cc)

	// Fidelity.
	switch strings.ToLower(cf.Fidelity) {
	case "", "full":
		if cf.SampleRate != 0 {
			return nil, fmt.Errorf("config: client.json: sample_rate requires fidelity \"hybrid\"")
		}
		if cf.HybridEpochMs != 0 {
			return nil, fmt.Errorf("config: client.json: hybrid_epoch_ms requires fidelity \"hybrid\"")
		}
	case "hybrid":
		rate := cf.SampleRate
		if rate == 0 {
			rate = 0.01
		}
		if cf.HybridEpochMs < 0 {
			return nil, fmt.Errorf("config: client.json: hybrid_epoch_ms must be >= 0")
		}
		hc := hybrid.Config{SampleRate: rate, Epoch: des.FromSeconds(cf.HybridEpochMs / 1000)}
		if err := hc.Validate(); err != nil {
			return nil, fmt.Errorf("config: client.json: %w", err)
		}
		s.SetHybrid(hc)
	default:
		return nil, unknownName("client.json", "fidelity", "fidelity mode", cf.Fidelity, []string{"full", "hybrid"})
	}

	// Faults (last: policies and plans reference deployments + topology).
	if ff != nil {
		if err := applyFaults(s, ff); err != nil {
			return nil, err
		}
	}

	return &Setup{
		Sim:      s,
		Warmup:   des.FromSeconds(cf.WarmupS),
		Duration: des.FromSeconds(cf.DurationS),
	}, nil
}

// buildSessions resolves client.json's sessions block into a workload
// SessionConfig: journey steps name path.json trees (with did-you-mean on
// unknown names), times are seconds, and the assembled config is validated
// before it reaches the simulator.
func buildSessions(spec *SessionsSpec, treeIdx map[string]int, treeNames []string) (*workload.SessionConfig, error) {
	sc := &workload.SessionConfig{
		Users:   spec.Users,
		PopTick: des.FromSeconds(spec.PopTickMs / 1000),
	}
	for _, js := range spec.Journeys {
		w := js.Weight
		if w == 0 {
			w = 1
		}
		j := workload.Journey{Name: js.Name, Weight: w}
		for si, ss := range js.Steps {
			idx, ok := treeIdx[ss.Tree]
			if !ok {
				return nil, unknownName("client.json",
					fmt.Sprintf("sessions journey %q step %d", js.Name, si), "tree", ss.Tree, treeNames)
			}
			step := workload.SessionStep{Tree: idx}
			if ss.Think != nil {
				th, err := ss.Think.Build()
				if err != nil {
					return nil, fmt.Errorf("config: sessions journey %q step %d think: %w", js.Name, si, err)
				}
				step.Think = th
			}
			j.Steps = append(j.Steps, step)
		}
		sc.Journeys = append(sc.Journeys, j)
	}
	for _, ps := range spec.Phases {
		sc.Phases = append(sc.Phases, workload.PopPhase{
			At:    des.FromSeconds(ps.AtS),
			Users: ps.Users,
			Ramp:  des.FromSeconds(ps.RampS),
		})
	}
	for _, fs := range spec.FlashCrowds {
		sc.Crowds = append(sc.Crowds, workload.FlashCrowd{
			At:       des.FromSeconds(fs.AtS),
			Extra:    fs.Extra,
			RampUp:   des.FromSeconds(fs.RampUpS),
			Hold:     des.FromSeconds(fs.HoldS),
			RampDown: des.FromSeconds(fs.RampDownS),
		})
	}
	if spec.OnOff != nil {
		sc.OnOff = &workload.OnOff{
			MeanOn:  des.FromSeconds(spec.OnOff.MeanOnS),
			MeanOff: des.FromSeconds(spec.OnOff.MeanOffS),
		}
	}
	if err := sc.Validate(); err != nil {
		return nil, fmt.Errorf("config: client.json: %w", err)
	}
	return sc, nil
}

// buildEngine resolves machines.json's optional engine section. Nil (or
// workers ≤ 1) keeps Sim's default sequential engine; workers ≥ 2
// selects the parallel engine, whose coordinator executes the same
// deterministic event order.
func buildEngine(es *EngineSpec) (des.Runner, error) {
	if es == nil {
		return nil, nil
	}
	if es.Workers < 0 {
		return nil, fmt.Errorf("config: machines.json: engine.workers must be non-negative, got %d", es.Workers)
	}
	const maxWorkers = 1024
	if es.Workers > maxWorkers {
		return nil, fmt.Errorf("config: machines.json: engine.workers %d exceeds the limit of %d", es.Workers, maxWorkers)
	}
	if es.Workers <= 1 {
		return nil, nil
	}
	return pdes.New(pdes.Options{LPs: 1, Workers: es.Workers, Lookahead: des.Millisecond}), nil
}

// faultKinds maps faults.json kind names to fault.Kind values (the inverse
// of Kind.String).
var faultKinds = map[string]fault.Kind{
	"crash_machine":    fault.CrashMachine,
	"recover_machine":  fault.RecoverMachine,
	"crash_domain":     fault.CrashDomain,
	"recover_domain":   fault.RecoverDomain,
	"kill_instance":    fault.KillInstance,
	"restart_instance": fault.RestartInstance,
	"degrade_freq":     fault.DegradeFreq,
	"edge_latency":     fault.EdgeLatency,
	"load_step":        fault.LoadStep,
}

// applyFaults installs faults.json's policies, shedding bounds, and fault
// plan on an assembled simulation.
func applyFaults(s *sim.Sim, ff *FaultsFile) error {
	ms := func(v float64) des.Time { return des.FromSeconds(v / 1000) }
	var deployed []string
	for _, dep := range s.Deployments() {
		deployed = append(deployed, dep.Name)
	}
	known := func(name string) bool {
		for _, d := range deployed {
			if d == name {
				return true
			}
		}
		return false
	}
	for i, ps := range ff.Policies {
		p := fault.Policy{
			Timeout:       ms(ps.TimeoutMs),
			MaxRetries:    ps.MaxRetries,
			BackoffBase:   ms(ps.BackoffBaseMs),
			BackoffJitter: ps.BackoffJitter,
		}
		if ps.Breaker != nil {
			p.Breaker = &fault.BreakerSpec{
				ErrorThreshold: ps.Breaker.ErrorThreshold,
				Window:         ps.Breaker.Window,
				Cooldown:       ms(ps.Breaker.CooldownMs),
			}
		}
		if ps.Hedge != nil {
			p.Hedge = &fault.HedgeSpec{
				Delay:      ms(ps.Hedge.DelayMs),
				Quantile:   ps.Hedge.Quantile,
				MinSamples: ps.Hedge.MinSamples,
				Jitter:     ps.Hedge.Jitter,
			}
		}
		switch {
		case ps.Tree != "":
			if ps.Node == nil {
				return fmt.Errorf("config: faults.json policy %d: tree %q needs a node", i, ps.Tree)
			}
			if err := s.SetNodePolicy(ps.Tree, *ps.Node, p); err != nil {
				return fmt.Errorf("config: faults.json policy %d: %w", i, err)
			}
		case ps.Service != "":
			if ps.Node != nil {
				return fmt.Errorf("config: faults.json policy %d: node %d needs a tree", i, *ps.Node)
			}
			if !known(ps.Service) {
				return unknownName("faults.json", fmt.Sprintf("policies[%d].service", i), "service", ps.Service, deployed)
			}
			if err := s.SetServicePolicy(ps.Service, p); err != nil {
				return fmt.Errorf("config: faults.json policy %d: %w", i, err)
			}
		default:
			return fmt.Errorf("config: faults.json policy %d needs a service or a tree+node", i)
		}
	}
	for i, sh := range ff.Shedding {
		if !known(sh.Service) {
			return unknownName("faults.json", fmt.Sprintf("shedding[%d].service", i), "service", sh.Service, deployed)
		}
		if err := s.SetMaxQueue(sh.Service, sh.MaxQueue); err != nil {
			return fmt.Errorf("config: faults.json shedding %d: %w", i, err)
		}
	}
	for i, qs := range ff.Queues {
		if !known(qs.Service) {
			return unknownName("faults.json", fmt.Sprintf("queues[%d].service", i), "service", qs.Service, deployed)
		}
		var kind fault.QueueKind
		switch strings.ToLower(qs.Kind) {
		case "", "fifo":
			kind = fault.QueueFIFO
		case "codel":
			kind = fault.QueueCoDel
		case "lifo", "adaptive_lifo":
			kind = fault.QueueLIFO
		case "codel_lifo", "codel+lifo":
			kind = fault.QueueCoDelLIFO
		default:
			return fmt.Errorf("config: faults.json: queues[%d].kind: unknown discipline %q (fifo, codel, lifo, codel_lifo)", i, qs.Kind)
		}
		if err := s.SetQueueDiscipline(qs.Service, fault.QueueDiscipline{
			Kind:     kind,
			Target:   ms(qs.TargetMs),
			Interval: ms(qs.IntervalMs),
		}); err != nil {
			return fmt.Errorf("config: faults.json queues %d: %w", i, err)
		}
	}
	nf := ff.Network
	if len(ff.Events) == 0 && (nf == nil || len(nf.Partitions)+len(nf.Links) == 0) {
		return nil
	}
	var plan fault.Plan
	for i, es := range ff.Events {
		kind, ok := faultKinds[strings.ToLower(es.Kind)]
		if !ok {
			return fmt.Errorf("config: faults.json event %d: unknown kind %q", i, es.Kind)
		}
		if es.Service != "" && !known(es.Service) {
			return unknownName("faults.json", fmt.Sprintf("events[%d].service", i), "service", es.Service, deployed)
		}
		inst := -1
		if es.Instance != nil {
			inst = *es.Instance
		}
		plan.Events = append(plan.Events, fault.Event{
			At:       des.FromSeconds(es.AtS),
			Kind:     kind,
			Machine:  es.Machine,
			Service:  es.Service,
			Instance: inst,
			FreqMHz:  es.FreqMHz,
			Extra:    ms(es.ExtraMs),
			Until:    des.FromSeconds(es.UntilS),
			Domain:   es.Domain,
			Stagger:  ms(es.StaggerMs),
			Factor:   es.Factor,
		})
	}
	if nf != nil {
		var machines []string
		for _, m := range s.Cluster().Machines() {
			machines = append(machines, m.Name)
		}
		checkMachine := func(key, name string) error {
			if _, ok := s.Cluster().Machine(name); !ok {
				return unknownName("faults.json", key, "machine", name, machines)
			}
			return nil
		}
		for i, ps := range nf.Partitions {
			for _, group := range []struct {
				key   string
				names []string
			}{{"group_a", ps.GroupA}, {"group_b", ps.GroupB}} {
				for j, name := range group.names {
					key := fmt.Sprintf("network.partitions[%d].%s[%d]", i, group.key, j)
					if err := checkMachine(key, name); err != nil {
						return err
					}
				}
			}
			plan.Events = append(plan.Events, fault.Event{
				At:     des.FromSeconds(ps.AtS),
				Kind:   fault.PartitionStart,
				GroupA: ps.GroupA,
				GroupB: ps.GroupB,
				OneWay: ps.OneWay,
				Until:  des.FromSeconds(ps.UntilS),
			})
		}
		for i, ls := range nf.Links {
			if ls.Src != "" {
				if err := checkMachine(fmt.Sprintf("network.links[%d].src", i), ls.Src); err != nil {
					return err
				}
			}
			if ls.Dst != "" {
				if err := checkMachine(fmt.Sprintf("network.links[%d].dst", i), ls.Dst); err != nil {
					return err
				}
			}
			plan.Events = append(plan.Events, fault.Event{
				At:    des.FromSeconds(ls.AtS),
				Kind:  fault.SetLink,
				Src:   ls.Src,
				Dst:   ls.Dst,
				Drop:  ls.Drop,
				Dup:   ls.Dup,
				Until: des.FromSeconds(ls.UntilS),
			})
		}
	}
	if err := s.InstallFaults(plan); err != nil {
		return fmt.Errorf("config: faults.json: %w", err)
	}
	return nil
}

func buildBlueprint(svc *ServiceSpec) (*service.Blueprint, error) {
	if svc.ServiceName == "" {
		return nil, fmt.Errorf("config: service without service_name")
	}
	bp := &service.Blueprint{
		Name:      svc.ServiceName,
		Threads:   svc.Threads,
		CtxSwitch: des.FromNanos(svc.CtxSwitchUs * 1000),
		PathProbs: svc.PathProbs,
	}
	switch strings.ToLower(svc.Model) {
	case "", "simple":
		bp.Model = service.ModelSimple
	case "multi-threaded", "multithreaded", "threaded":
		bp.Model = service.ModelThreaded
	default:
		return nil, fmt.Errorf("config: service %s: unknown model %q", svc.ServiceName, svc.Model)
	}
	for _, st := range svc.Stages {
		spec := service.StageSpec{
			Name:       st.StageName,
			Batching:   st.Batching,
			PerConn:    st.QueueParameter,
			BatchLimit: st.BatchLimit,
			PerKB:      st.PerKBUs * 1000,
			PoolName:   st.Pool,
		}
		switch strings.ToLower(st.QueueType) {
		case "", "single":
			spec.Queue = queueing.KindSingle
		case "epoll":
			spec.Queue = queueing.KindEpoll
		case "socket":
			spec.Queue = queueing.KindSocket
		default:
			return nil, fmt.Errorf("config: service %s stage %s: unknown queue_type %q",
				svc.ServiceName, st.StageName, st.QueueType)
		}
		if st.Base != nil {
			b, err := st.Base.Build()
			if err != nil {
				return nil, fmt.Errorf("config: service %s stage %s base: %w", svc.ServiceName, st.StageName, err)
			}
			spec.Base = b
		}
		if st.PerJob != nil {
			p, err := st.PerJob.Build()
			if err != nil {
				return nil, fmt.Errorf("config: service %s stage %s per_job: %w", svc.ServiceName, st.StageName, err)
			}
			spec.PerJob = p
		}
		bp.Stages = append(bp.Stages, spec)
	}
	for _, p := range svc.Paths {
		bp.Paths = append(bp.Paths, service.PathSpec{Name: p.PathName, Stages: p.Stages})
	}
	if err := bp.Validate(); err != nil {
		return nil, fmt.Errorf("config: %w", err)
	}
	return bp, nil
}
