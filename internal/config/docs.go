package config

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
)

// BaseDocs holds the five required config documents of one directory. The
// chaos harness reads them once and assembles many simulations from them —
// same cluster, varied seeds, worker counts, and fault plans — without
// re-touching the filesystem per trial.
type BaseDocs struct {
	Machines []byte
	Services []byte
	Graph    []byte
	Paths    []byte
	Client   []byte
}

// ReadBase reads the five required documents from dir.
func ReadBase(dir string) (*BaseDocs, error) {
	docs, err := readBaseDocs(dir)
	if err != nil {
		return nil, err
	}
	return &BaseDocs{
		Machines: docs[0], Services: docs[1], Graph: docs[2],
		Paths: docs[3], Client: docs[4],
	}, nil
}

// Assemble builds a simulation from the documents plus an optional faults
// document, exactly like the package-level Assemble.
func (d *BaseDocs) Assemble(faultsJSON ...[]byte) (*Setup, error) {
	return Assemble(d.Machines, d.Services, d.Graph, d.Paths, d.Client, faultsJSON...)
}

// WithSeed returns a copy with the client document's seed replaced.
func (d *BaseDocs) WithSeed(seed uint64) (*BaseDocs, error) {
	var cf ClientFile
	if err := decodeStrict("client.json", d.Client, &cf); err != nil {
		return nil, err
	}
	cf.Seed = seed
	client, err := json.Marshal(&cf)
	if err != nil {
		return nil, fmt.Errorf("config: re-encoding client.json: %w", err)
	}
	out := *d
	out.Client = client
	return &out, nil
}

// HashDir fingerprints the complete configuration set of dir: the five
// required documents plus the optional faults.json and control.json. The
// farm journals this hash into every job spec so a spool can never be
// resumed against a drifted configuration without noticing — a result is
// only meaningful for the exact bytes it was computed from.
func HashDir(dir string) (string, error) {
	h := sha256.New()
	names := []string{
		"machines.json", "service.json", "graph.json", "path.json",
		"client.json", "faults.json", "control.json",
	}
	for _, name := range names {
		data, err := os.ReadFile(filepath.Join(dir, name))
		if os.IsNotExist(err) {
			// The optional documents simply contribute their absence.
			fmt.Fprintf(h, "%s\x00absent\x00", name)
			continue
		}
		if err != nil {
			return "", fmt.Errorf("config: hashing %s: %w", dir, err)
		}
		fmt.Fprintf(h, "%s\x00%d\x00", name, len(data))
		h.Write(data)
	}
	return hex.EncodeToString(h.Sum(nil)[:16]), nil
}

// WithWorkers returns a copy with the machines document's engine worker
// count replaced: 0 or 1 selects the sequential engine, ≥ 2 the parallel
// one. The chaos harness uses it for its sim-vs-pdes determinism checks.
func (d *BaseDocs) WithWorkers(workers int) (*BaseDocs, error) {
	var mf MachinesFile
	if err := decodeStrict("machines.json", d.Machines, &mf); err != nil {
		return nil, err
	}
	if workers <= 1 {
		mf.Engine = nil
	} else {
		mf.Engine = &EngineSpec{Workers: workers}
	}
	machines, err := json.Marshal(&mf)
	if err != nil {
		return nil, fmt.Errorf("config: re-encoding machines.json: %w", err)
	}
	out := *d
	out.Machines = machines
	return &out, nil
}
