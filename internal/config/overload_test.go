package config

import (
	"encoding/json"
	"strings"
	"testing"
)

// assembleMutated applies fn to one base document, then assembles with an
// optional faults.json, returning the setup or error.
func assembleMutated(t *testing.T, which string, fn func(map[string]any), faults string) (*Setup, error) {
	t.Helper()
	docs := twotierDocs(t)
	if fn != nil {
		var m map[string]any
		if err := json.Unmarshal(docs[which], &m); err != nil {
			t.Fatal(err)
		}
		fn(m)
		b, err := json.Marshal(m)
		if err != nil {
			t.Fatal(err)
		}
		docs[which] = b
	}
	if faults == "" {
		return Assemble(docs["machines.json"], docs["service.json"], docs["graph.json"],
			docs["path.json"], docs["client.json"])
	}
	return Assemble(docs["machines.json"], docs["service.json"], docs["graph.json"],
		docs["path.json"], docs["client.json"], []byte(faults))
}

// TestOverloadConfigRoundTrip wires every new overload knob through JSON:
// a client budget, a hedge on the memcached edge (two instances so a
// backup has somewhere to go), and a CoDel queue discipline.
func TestOverloadConfigRoundTrip(t *testing.T) {
	setup, err := assembleMutated(t, "graph.json", func(m map[string]any) {
		// Second memcached instance so hedges can race.
		dep := m["deployments"].([]any)[1].(map[string]any)
		inst := dep["instances"].([]any)[0].(map[string]any)
		dep["instances"] = []any{inst,
			map[string]any{"machine": inst["machine"], "cores": inst["cores"]}}
	}, `{
		"policies": [
			{"service": "memcached", "timeout_ms": 50,
			 "hedge": {"delay_ms": 0.05, "jitter": 0.2}}
		],
		"queues": [
			{"service": "nginx", "kind": "codel", "target_ms": 2, "interval_ms": 50}
		]
	}`)
	if err != nil {
		t.Fatal(err)
	}
	cfg := setup.Sim.Client()
	if cfg.Budget != nil {
		t.Fatal("no budget configured yet")
	}
	rep, err := setup.Run()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Completions == 0 {
		t.Fatal("no completions")
	}
	if rep.HedgesIssued == 0 {
		t.Fatal("hedge policy from faults.json never fired")
	}
	total := rep.Completions + rep.Timeouts + rep.Shed + rep.Dropped +
		rep.DeadlineExpired + uint64(rep.InFlight)
	if rep.Arrivals != total {
		t.Fatalf("conservation: arrivals %d != %d", rep.Arrivals, total)
	}
}

// TestClientBudgetWiring: budget_ms and a budget spec both produce a
// sampler; tight budgets visibly expire requests.
func TestClientBudgetWiring(t *testing.T) {
	setup, err := assembleMutated(t, "client.json", func(m map[string]any) {
		m["budget_ms"] = 0.05 // 50µs: tighter than the service chain
	}, "")
	if err != nil {
		t.Fatal(err)
	}
	if setup.Sim.Client().Budget == nil {
		t.Fatal("budget_ms did not configure a budget sampler")
	}
	rep, err := setup.Run()
	if err != nil {
		t.Fatal(err)
	}
	if rep.DeadlineExpired == 0 {
		t.Fatal("a 50µs budget should expire requests")
	}
	setup, err = assembleMutated(t, "client.json", func(m map[string]any) {
		m["budget"] = map[string]any{"type": "uniform", "lo_us": 5000, "hi_us": 50000}
	}, "")
	if err != nil {
		t.Fatal(err)
	}
	if setup.Sim.Client().Budget == nil {
		t.Fatal("budget spec did not configure a sampler")
	}
}

func TestOverloadConfigErrors(t *testing.T) {
	clientCases := []struct {
		name, want string
		fn         func(map[string]any)
	}{
		{"budget and budget_ms", "mutually exclusive", func(m map[string]any) {
			m["budget_ms"] = 10
			m["budget"] = map[string]any{"type": "deterministic", "value_us": 10}
		}},
		{"negative budget_ms", "non-negative", func(m map[string]any) {
			m["budget_ms"] = -1
		}},
		{"bad budget spec", "budget", func(m map[string]any) {
			m["budget"] = map[string]any{"type": "exponential", "mean_us": -5}
		}},
	}
	for _, c := range clientCases {
		_, err := assembleMutated(t, "client.json", c.fn, "")
		if err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: error %v should mention %q", c.name, err, c.want)
		}
	}
	faultCases := []struct {
		name, doc, want string
	}{
		{"unknown queue kind", `{"queues": [{"service": "nginx", "kind": "srpt"}]}`, "srpt"},
		{"queue unknown service", `{"queues": [{"service": "ghost", "kind": "codel"}]}`, "ghost"},
		{"negative target", `{"queues": [{"service": "nginx", "kind": "codel", "target_ms": -1}]}`, "target"},
		{"hedge without trigger", `{"policies": [{"service": "memcached", "hedge": {}}]}`, "hedge"},
		{"hedge bad quantile", `{"policies": [{"service": "memcached", "hedge": {"quantile": 1.5}}]}`, "quantile"},
	}
	for _, c := range faultCases {
		_, err := assembleWithFaults(t, c.doc)
		if err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: error %v should mention %q", c.name, err, c.want)
		}
	}
}

// TestUnknownServiceDidYouMean: a typo'd service reference must name the
// file, the key, and the nearest deployed service.
func TestUnknownServiceDidYouMean(t *testing.T) {
	cases := []struct {
		name, doc, key string
	}{
		{"policy", `{"policies": [{"service": "memcachd", "timeout_ms": 10}]}`, "policies[0].service"},
		{"shedding", `{"shedding": [{"service": "ngnix", "max_queue": 10}]}`, "shedding[0].service"},
		{"queue", `{"queues": [{"service": "memcache", "kind": "codel"}]}`, "queues[0].service"},
		{"event", `{"events": [{"at_s": 1, "kind": "kill_instance", "service": "Memcached2"}]}`, "events[0].service"},
	}
	for _, c := range cases {
		_, err := assembleWithFaults(t, c.doc)
		if err == nil {
			t.Errorf("%s: expected error", c.name)
			continue
		}
		msg := err.Error()
		if !strings.Contains(msg, "faults.json") || !strings.Contains(msg, c.key) {
			t.Errorf("%s: error %q should name faults.json and key %s", c.name, msg, c.key)
		}
		if !strings.Contains(msg, "did you mean") {
			t.Errorf("%s: error %q should suggest the closest service", c.name, msg)
		}
	}
	// A name nothing like any service lists the valid ones instead of
	// guessing.
	_, err := assembleWithFaults(t, `{"policies": [{"service": "zzzzzzzzzz", "timeout_ms": 10}]}`)
	if err == nil || strings.Contains(err.Error(), "did you mean") {
		t.Errorf("far-off name should not produce a suggestion: %v", err)
	}
	if err != nil && !strings.Contains(err.Error(), "memcached") {
		t.Errorf("far-off name should list deployed services: %v", err)
	}
	// graph.json gets the same treatment against declared blueprints.
	_, err = assembleMutated(t, "graph.json", func(m map[string]any) {
		m["deployments"].([]any)[0].(map[string]any)["service"] = "ngink"
	}, "")
	if err == nil || !strings.Contains(err.Error(), "did you mean") ||
		!strings.Contains(err.Error(), "nginx") {
		t.Errorf("graph.json typo: %v", err)
	}
}
