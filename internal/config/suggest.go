package config

import (
	"fmt"
	"reflect"
	"sort"
	"strings"
)

// unknownName builds the error for a config document referencing a name
// that doesn't exist: it names the file, the offending key (optional),
// the kind of name (noun — "service", "machine", "field"), the bad
// value, and — when one is plausibly a typo away — the closest valid
// name.
func unknownName(file, key, noun, got string, valid []string) error {
	at := file
	if key != "" {
		at = file + ": " + key
	}
	if s := closest(got, valid); s != "" {
		return fmt.Errorf("config: %s: unknown %s %q (did you mean %q?)", at, noun, got, s)
	}
	sorted := append([]string(nil), valid...)
	sort.Strings(sorted)
	return fmt.Errorf("config: %s: unknown %s %q (declared: %s)",
		at, noun, got, strings.Join(sorted, ", "))
}

// unknownFieldOf extracts the field name from encoding/json's
// DisallowUnknownFields error ('json: unknown field "X"'). The message
// is the only channel the decoder offers for this.
func unknownFieldOf(err error) (string, bool) {
	msg := err.Error()
	const marker = `unknown field "`
	i := strings.Index(msg, marker)
	if i < 0 {
		return "", false
	}
	rest := msg[i+len(marker):]
	j := strings.LastIndex(rest, `"`)
	if j < 0 {
		return "", false
	}
	return rest[:j], true
}

// jsonFieldNames collects every JSON field name reachable from v's type,
// recursing through structs, pointers, slices, arrays, and map values,
// so a typo'd key nested anywhere in a document gets a suggestion drawn
// from the whole schema.
func jsonFieldNames(v any) []string {
	seen := make(map[reflect.Type]bool)
	var names []string
	var walk func(t reflect.Type)
	walk = func(t reflect.Type) {
		switch t.Kind() {
		case reflect.Pointer, reflect.Slice, reflect.Array, reflect.Map:
			walk(t.Elem())
		case reflect.Struct:
			if seen[t] {
				return
			}
			seen[t] = true
			for i := 0; i < t.NumField(); i++ {
				f := t.Field(i)
				if !f.IsExported() {
					continue
				}
				name, _, _ := strings.Cut(f.Tag.Get("json"), ",")
				switch name {
				case "-":
					continue
				case "":
					name = f.Name
				}
				names = append(names, name)
				walk(f.Type)
			}
		}
	}
	walk(reflect.TypeOf(v))
	return names
}

// closest returns the valid name nearest to got by edit distance, or ""
// when nothing is close enough to be a likely typo (distance > half the
// name's length).
func closest(got string, valid []string) string {
	best, bestDist := "", int(^uint(0)>>1)
	for _, v := range valid {
		d := editDistance(strings.ToLower(got), strings.ToLower(v))
		if d < bestDist || (d == bestDist && v < best) {
			best, bestDist = v, d
		}
	}
	limit := len(got) / 2
	if limit < 1 {
		limit = 1
	}
	if best == "" || bestDist > limit {
		return ""
	}
	return best
}

// editDistance is the Levenshtein distance between a and b.
func editDistance(a, b string) int {
	ra, rb := []rune(a), []rune(b)
	prev := make([]int, len(rb)+1)
	cur := make([]int, len(rb)+1)
	for j := range prev {
		prev[j] = j
	}
	for i := 1; i <= len(ra); i++ {
		cur[0] = i
		for j := 1; j <= len(rb); j++ {
			cost := 1
			if ra[i-1] == rb[j-1] {
				cost = 0
			}
			cur[j] = min3(prev[j]+1, cur[j-1]+1, prev[j-1]+cost)
		}
		prev, cur = cur, prev
	}
	return prev[len(rb)]
}

func min3(a, b, c int) int {
	if b < a {
		a = b
	}
	if c < a {
		a = c
	}
	return a
}
