package hybrid

import (
	"math"
	"testing"

	"uqsim/internal/analytic"
	"uqsim/internal/des"
	"uqsim/internal/rng"
)

// TestMemoInvalidatedBySpeedChange is the stale-equilibrium regression:
// the memo key must cover effective µ, so a mid-run DVFS change re-solves
// the equilibrium even though λ and k are unchanged.
func TestMemoInvalidatedBySpeedChange(t *testing.T) {
	speed := 1.0
	svc := []Service{{
		Name: "web", Visits: 1, MeanServiceS: 0.010,
		Servers: func() int { return 4 },
		Speed:   func() float64 { return speed },
	}}
	eng := des.New()
	st, err := New(Config{SampleRate: 0.1}, svc,
		func(des.Time) float64 { return 240 }, rng.NewSplitter(2).Child("hybrid"))
	if err != nil {
		t.Fatal(err)
	}
	st.Start(eng, 0, 0)
	eng.RunUntil(100 * des.Millisecond)
	before := st.Point(0)
	if got, want := before.MeanWaitS, analytic.MMkAt(240, 100, 4).MeanWaitS; math.Abs(got-want) > 1e-12 {
		t.Fatalf("nominal wait %v, want closed form %v", got, want)
	}
	speed = 0.5 // underclock: µ halves, rho doubles
	eng.RunUntil(300 * des.Millisecond)
	after := st.Point(0)
	want := analytic.MMkAt(240, 50, 4)
	if math.Abs(after.Rho-want.Rho) > 1e-12 || math.Abs(after.MeanWaitS-want.MeanWaitS) > 1e-12 {
		t.Fatalf("degraded point %+v, want closed form %+v (stale memo?)", after, want)
	}
	if !(after.MeanWaitS > before.MeanWaitS) {
		t.Fatalf("DVFS degrade did not raise the equilibrium wait: %v -> %v", before.MeanWaitS, after.MeanWaitS)
	}
}

// TestAmplification pins the mean-field retry fixed point: identity
// without a policy or at negligible load, bounded by MaxRetries+1 in a
// storm, and collapsed back to ~1 when a breaker threshold trips.
func TestAmplification(t *testing.T) {
	if got := amplification(100, 100, 4, nil); got != 1 {
		t.Fatalf("no policy amp = %v, want 1", got)
	}
	quiet := amplification(10, 100, 4, &Policy{TimeoutS: 1, MaxRetries: 3})
	if math.Abs(quiet-1) > 1e-6 {
		t.Fatalf("quiet amp = %v, want ~1", quiet)
	}
	// Saturated service with a tight timeout: every attempt times out, so
	// the fixed point runs to the full attempt budget.
	storm := amplification(500, 100, 4, &Policy{TimeoutS: 0.001, MaxRetries: 3})
	if !(storm > 3.5 && storm <= 4) {
		t.Fatalf("storm amp = %v, want near MaxRetries+1 = 4", storm)
	}
	gated := amplification(500, 100, 4, &Policy{TimeoutS: 0.001, MaxRetries: 3, BreakerThreshold: 0.5})
	if math.Abs(gated-1) > 1e-6 {
		t.Fatalf("breaker-gated amp = %v, want ~1", gated)
	}
	if got := amplification(0, 100, 4, &Policy{TimeoutS: 0.001, MaxRetries: 3}); got != 1 {
		t.Fatalf("zero-load amp = %v, want 1", got)
	}
}

// TestRetryStormSheds: a service stable at one attempt per request but
// saturated under amplification must shed background flow and attribute
// it to retry_storm.
func TestRetryStormSheds(t *testing.T) {
	svc := []Service{{
		Name: "web", Visits: 1, MeanServiceS: 0.010,
		Servers: func() int { return 4 },
		// λ 300 < kµ 400 is stable alone; a tight timeout amplifies it
		// past capacity.
		Policy: &Policy{TimeoutS: 0.0005, MaxRetries: 5},
	}}
	eng := des.New()
	st, err := New(Config{SampleRate: 0.1}, svc,
		func(des.Time) float64 { return 300 }, rng.NewSplitter(4).Child("hybrid"))
	if err != nil {
		t.Fatal(err)
	}
	st.Start(eng, 0, 0)
	eng.RunUntil(des.Second)
	st.Finish(des.Second)
	snap := st.Snapshot()
	if snap.Shed == 0 {
		t.Fatalf("retry storm shed nothing: %+v", snap)
	}
	if snap.Arrivals != snap.Completions+snap.Shed+snap.Unreachable {
		t.Fatalf("conservation: %+v", snap)
	}
	by := st.ByCause()
	if by[CauseRetryStorm] != snap.Shed+snap.Unreachable {
		t.Fatalf("attribution %v, want all %d under %s", by, snap.Shed, CauseRetryStorm)
	}
}

// TestUnreachableAccrual: a Loss callback reporting severed pairs routes
// background flow into the Unreachable bucket with partition attribution,
// and the extended conservation identity holds.
func TestUnreachableAccrual(t *testing.T) {
	cut := 0.0
	svc := []Service{{
		Name: "web", Visits: 1, MeanServiceS: 0.010,
		Servers: func() int { return 8 },
		Loss:    func() (float64, float64) { return cut, 0 },
	}}
	eng := des.New()
	st, err := New(Config{SampleRate: 0.1}, svc,
		func(des.Time) float64 { return 100 }, rng.NewSplitter(6).Child("hybrid"))
	if err != nil {
		t.Fatal(err)
	}
	st.Start(eng, 0, 0)
	eng.RunUntil(des.Second)
	cut = 0.5
	st.Resolve(des.Second) // partition fires mid-epoch
	eng.RunUntil(2 * des.Second)
	cut = 0
	st.Resolve(2 * des.Second) // heals
	eng.RunUntil(3 * des.Second)
	st.Finish(3 * des.Second)

	snap := st.Snapshot()
	if snap.Arrivals != snap.Completions+snap.Shed+snap.Unreachable {
		t.Fatalf("conservation: %+v", snap)
	}
	// One of three seconds at 50% cut: one sixth of 270 background
	// arrivals unreachable.
	want := int64(math.Round(100 * 0.9 * 0.5))
	if d := snap.Unreachable - want; d < -2 || d > 2 {
		t.Fatalf("unreachable %d, want ~%d (snap %+v)", snap.Unreachable, want, snap)
	}
	by := st.ByCause()
	if by[CausePartition] != snap.Unreachable+snap.Shed {
		t.Fatalf("attribution %v, want all %d under %s", by, snap.Unreachable, CausePartition)
	}
}

// TestGrayLinkAttribution: drop-only loss books under gray_link; mixed
// cut+drop splits between partition and gray_link and still sums exactly.
func TestGrayLinkAttribution(t *testing.T) {
	svc := []Service{{
		Name: "web", Visits: 1, MeanServiceS: 0.010,
		Servers: func() int { return 8 },
		Loss:    func() (float64, float64) { return 0.2, 0.25 },
	}}
	eng := des.New()
	st, err := New(Config{SampleRate: 0.1}, svc,
		func(des.Time) float64 { return 100 }, rng.NewSplitter(8).Child("hybrid"))
	if err != nil {
		t.Fatal(err)
	}
	st.Start(eng, 0, 0)
	eng.RunUntil(des.Second)
	st.Finish(des.Second)
	snap := st.Snapshot()
	// loss = 0.2 + 0.8·0.25 = 0.4 of 90 background arrivals.
	if want := int64(math.Round(100 * 0.9 * 0.4)); snap.Unreachable < want-2 || snap.Unreachable > want+2 {
		t.Fatalf("unreachable %d, want ~%d", snap.Unreachable, want)
	}
	by := st.ByCause()
	if by[CausePartition] == 0 || by[CauseGrayLink] == 0 {
		t.Fatalf("attribution %v, want both partition and gray_link", by)
	}
	if by[CausePartition]+by[CauseGrayLink] != snap.Unreachable+snap.Shed {
		t.Fatalf("attribution %v does not sum to losses in %+v", by, snap)
	}
	// cut 0.2 vs (1−cut)·drop 0.2: the split should be about even.
	if d := by[CausePartition] - by[CauseGrayLink]; d < -2 || d > 2 {
		t.Fatalf("attribution split %v, want ~even", by)
	}
}

// TestShedCauseClassification drives each saturated-bottleneck cause.
func TestShedCauseClassification(t *testing.T) {
	run := func(fault string) map[string]int64 {
		t.Helper()
		k := 4
		speed := 1.0
		sv := Service{
			Name: "web", Visits: 1, MeanServiceS: 0.010,
			Servers: func() int { return k },
			Speed:   func() float64 { return speed },
		}
		eng := des.New()
		st, err := New(Config{SampleRate: 0.1}, []Service{sv},
			func(des.Time) float64 { return 500 }, rng.NewSplitter(11).Child("hybrid"))
		if err != nil {
			t.Fatal(err)
		}
		st.Start(eng, 0, 0)
		// Let the high-water k register, then apply the mid-run fault.
		eng.RunUntil(100 * des.Millisecond)
		switch fault {
		case "capacity":
			k = 2
		case "degrade":
			speed = 0.5
		}
		st.Resolve(100 * des.Millisecond)
		eng.RunUntil(des.Second)
		st.Finish(des.Second)
		return st.ByCause()
	}

	if by := run("none"); by[CauseOverload] == 0 {
		t.Fatalf("plain overload attribution %v", by)
	}
	if by := run("capacity"); by[CauseCapacity] == 0 {
		t.Fatalf("capacity-loss attribution %v", by)
	}
	if by := run("degrade"); by[CauseDegradeFreq] == 0 {
		t.Fatalf("DVFS-degrade attribution %v", by)
	}
}

// TestResolveMidEpoch: a Resolve between epoch edges accrues the old
// equilibrium up to the boundary and freezes the new one immediately —
// the event-driven re-solve contract for fault boundaries.
func TestResolveMidEpoch(t *testing.T) {
	k := 2
	svc := []Service{{Name: "web", Visits: 1, MeanServiceS: 0.010, Servers: func() int { return k }}}
	eng := des.New()
	st, err := New(Config{SampleRate: 0.1}, svc,
		func(des.Time) float64 { return 160 }, rng.NewSplitter(13).Child("hybrid"))
	if err != nil {
		t.Fatal(err)
	}
	st.Start(eng, 0, 0)
	eng.RunUntil(60 * des.Millisecond) // inside the second epoch [50ms, 100ms)
	before := st.Point(0).MeanWaitS
	k = 8
	st.Resolve(62 * des.Millisecond)
	after := st.Point(0).MeanWaitS
	if !(after < before/2) {
		t.Fatalf("mid-epoch Resolve did not re-solve: wait %v -> %v", before, after)
	}
	// Stale-time and post-Finish calls are no-ops.
	st.Resolve(10 * des.Millisecond)
	if got := st.Point(0).MeanWaitS; got != after {
		t.Fatalf("stale Resolve changed the equilibrium: %v -> %v", after, got)
	}
	eng.RunUntil(des.Second)
	st.Finish(des.Second)
	snapA := st.Snapshot()
	st.Resolve(2 * des.Second)
	if snapB := st.Snapshot(); snapA != snapB {
		t.Fatalf("post-Finish Resolve accrued: %+v -> %+v", snapA, snapB)
	}
}

// TestResolveNoRNG: Resolve is purely analytic — it must not consume from
// the wait-injection streams, so extra fault boundaries never perturb the
// determinism fingerprint.
func TestResolveNoRNG(t *testing.T) {
	build := func(resolves int) []des.Time {
		eng := des.New()
		st, err := New(Config{SampleRate: 0.1}, oneService(2, 0.010),
			func(des.Time) float64 { return 160 }, rng.NewSplitter(17).Child("hybrid"))
		if err != nil {
			t.Fatal(err)
		}
		st.Start(eng, 0, 0)
		eng.RunUntil(75 * des.Millisecond)
		for i := 0; i < resolves; i++ {
			st.Resolve(des.Time(75+des.Time(i)) * des.Millisecond)
		}
		out := make([]des.Time, 32)
		for i := range out {
			out[i] = st.WaitFor(0)
		}
		return out
	}
	a, b := build(0), build(5)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("draw %d diverged after extra Resolves: %v != %v", i, a[i], b[i])
		}
	}
}

// TestApportionExact: largest-remainder apportionment hands out exactly
// total units, deterministically, for awkward weight mixes.
func TestApportionExact(t *testing.T) {
	cases := []struct {
		weights map[string]float64
		total   int64
	}{
		{map[string]float64{"a": 1, "b": 1, "c": 1}, 100},
		{map[string]float64{"a": 1, "b": 1, "c": 1}, 101},
		{map[string]float64{"a": 0.1, "b": 0.3, "c": 0.6}, 7},
		{map[string]float64{"a": 1e-9, "b": 1}, 3},
		{map[string]float64{}, 5},
		{map[string]float64{"a": math.NaN(), "b": -1}, 5},
	}
	for _, c := range cases {
		out := make(map[string]int64)
		apportion(out, c.weights, c.total, "fallback")
		var sum int64
		for _, v := range out {
			sum += v
		}
		if sum != c.total {
			t.Errorf("apportion(%v, %d) handed out %d units: %v", c.weights, c.total, sum, out)
		}
		// Determinism: a second run distributes identically.
		out2 := make(map[string]int64)
		apportion(out2, c.weights, c.total, "fallback")
		for k, v := range out {
			if out2[k] != v {
				t.Errorf("apportion(%v, %d) nondeterministic: %v vs %v", c.weights, c.total, out, out2)
			}
		}
	}
}

// TestConcurrentResolveUnderRace exercises epoch ticks and event-driven
// re-solves interleaved on one engine timeline — the pattern the race
// job must cover (fault events and epoch edges share the engine's
// sequential event loop; this pins the single-goroutine contract).
func TestConcurrentResolveUnderRace(t *testing.T) {
	k := 4
	svc := []Service{{Name: "web", Visits: 1, MeanServiceS: 0.010, Servers: func() int { return k }}}
	eng := des.New()
	st, err := New(Config{SampleRate: 0.2}, svc,
		func(des.Time) float64 { return 300 }, rng.NewSplitter(19).Child("hybrid"))
	if err != nil {
		t.Fatal(err)
	}
	st.Start(eng, 0, 0)
	// Interleave capacity flaps (posted off-epoch) with the 50ms epoch loop.
	for i := 1; i <= 40; i++ {
		at := des.Time(i) * 23 * des.Millisecond
		flip := i%2 == 0
		eng.Post(at, func(tt des.Time) {
			if flip {
				k = 1
			} else {
				k = 4
			}
			st.Resolve(tt)
		})
	}
	eng.RunUntil(des.Second)
	st.Finish(des.Second)
	snap := st.Snapshot()
	if snap.Arrivals != snap.Completions+snap.Shed+snap.Unreachable {
		t.Fatalf("conservation under interleaved resolves: %+v", snap)
	}
	var by int64
	for _, v := range st.ByCause() {
		by += v
	}
	if by != snap.Shed+snap.Unreachable {
		t.Fatalf("attribution sum %d != shed %d + unreach %d", by, snap.Shed, snap.Unreachable)
	}
}
