package hybrid

import (
	"math"
	"testing"

	"uqsim/internal/analytic"
	"uqsim/internal/des"
	"uqsim/internal/rng"
)

func oneService(k int, meanS float64) []Service {
	return []Service{{
		Name:         "web",
		Visits:       1,
		MeanServiceS: meanS,
		Servers:      func() int { return k },
	}}
}

func TestConfigValidate(t *testing.T) {
	cases := []struct {
		cfg Config
		ok  bool
	}{
		{Config{SampleRate: 0.02}, true},
		{Config{SampleRate: 1}, true},
		{Config{SampleRate: 0}, false},
		{Config{SampleRate: -0.1}, false},
		{Config{SampleRate: 1.5}, false},
		{Config{SampleRate: math.NaN()}, false},
		{Config{SampleRate: 0.5, Epoch: -1}, false},
		{Config{SampleRate: 0.5, MaxWaitFactor: -1}, false},
	}
	for _, c := range cases {
		err := c.cfg.Validate()
		if (err == nil) != c.ok {
			t.Errorf("Validate(%+v) = %v, want ok=%v", c.cfg, err, c.ok)
		}
	}
}

// TestEquilibriumMatchesClosedForm: after the epoch loop runs under a
// constant envelope, the frozen per-service point must equal the
// analytic.MMkAt closed form at the background-inclusive offered load —
// the property the ISSUE names for the fluid tier.
func TestEquilibriumMatchesClosedForm(t *testing.T) {
	const meanS = 0.010 // 10ms, mu = 100/s
	const k = 4
	const qps = 240.0 // rho 0.6
	eng := des.New()
	st, err := New(Config{SampleRate: 0.05}, oneService(k, meanS),
		func(des.Time) float64 { return qps }, rng.NewSplitter(1).Child("hybrid"))
	if err != nil {
		t.Fatal(err)
	}
	st.Start(eng, 0, 50*des.Millisecond)
	eng.RunUntil(des.Second)
	st.Finish(des.Second)

	got := st.Point(0)
	want := analytic.MMkAt(qps, 1/meanS, k)
	if got.Saturated || math.Abs(got.Rho-want.Rho) > 1e-12 ||
		math.Abs(got.PWait-want.PWait) > 1e-12 ||
		math.Abs(got.MeanWaitS-want.MeanWaitS) > 1e-12 ||
		math.Abs(got.QueueLen-want.QueueLen) > 1e-12 {
		t.Fatalf("epoch point %+v != closed form %+v", got, want)
	}
}

// TestWaitForMatchesMeanWait: the empirical mean of many WaitFor draws
// must match the M/M/k mean wait within sampling tolerance — the tier's
// injected waits really are distributed as the closed form says.
func TestWaitForMatchesMeanWait(t *testing.T) {
	const meanS = 0.010
	const k = 2
	for _, qps := range []float64{60, 120, 160} { // rho 0.3, 0.6, 0.8
		eng := des.New()
		st, err := New(Config{SampleRate: 0.02}, oneService(k, meanS),
			func(des.Time) float64 { return qps }, rng.NewSplitter(7).Child("hybrid"))
		if err != nil {
			t.Fatal(err)
		}
		st.Start(eng, 0, 0)
		eng.RunUntil(des.Millisecond)

		const n = 200000
		var sum float64
		for i := 0; i < n; i++ {
			sum += float64(st.WaitFor(0)) / 1e9
		}
		got := sum / n
		want := analytic.MMkMeanWait(qps, 1/meanS, k)
		if math.Abs(got-want) > 0.05*want+1e-6 {
			t.Errorf("qps %v: empirical mean wait %v, closed form %v", qps, got, want)
		}
	}
}

// TestConservationByConstruction: arrivals == completions + shed in every
// regime, including a saturated open-loop epoch.
func TestConservationByConstruction(t *testing.T) {
	for _, qps := range []float64{100, 500} { // stable and saturated (cap 400)
		eng := des.New()
		st, err := New(Config{SampleRate: 0.1}, oneService(4, 0.010),
			func(des.Time) float64 { return qps }, rng.NewSplitter(3).Child("hybrid"))
		if err != nil {
			t.Fatal(err)
		}
		st.Start(eng, 0, 0)
		eng.RunUntil(2 * des.Second)
		st.Finish(2 * des.Second)
		snap := st.Snapshot()
		if snap.Arrivals != snap.Completions+snap.Shed {
			t.Fatalf("qps %v: arrivals %d != completions %d + shed %d",
				qps, snap.Arrivals, snap.Completions, snap.Shed)
		}
		wantArr := int64(math.Round(qps * 0.9 * 2))
		if d := snap.Arrivals - wantArr; d < -1 || d > 1 {
			t.Errorf("qps %v: background arrivals %d, want ~%d", qps, snap.Arrivals, wantArr)
		}
		if qps == 100 && snap.Shed != 0 {
			t.Errorf("stable background shed %d, want 0", snap.Shed)
		}
		if qps == 500 {
			// Bottleneck serves 400 of 500 offered: shed 20% of background.
			wantShed := int64(math.Round(qps * 0.9 * 2 * 0.2))
			if d := snap.Shed - wantShed; d < -2 || d > 2 {
				t.Errorf("saturated shed %d, want ~%d", snap.Shed, wantShed)
			}
			if snap.SaturatedEpochs == 0 {
				t.Error("saturated run reported zero saturated epochs")
			}
		}
	}
}

// TestClosedNoShed: a closed (session) background population self-limits;
// even a rate at capacity sheds nothing.
func TestClosedNoShed(t *testing.T) {
	eng := des.New()
	st, err := New(Config{SampleRate: 0.1, Closed: true}, oneService(4, 0.010),
		func(des.Time) float64 { return 500 }, rng.NewSplitter(3).Child("hybrid"))
	if err != nil {
		t.Fatal(err)
	}
	st.Start(eng, 0, 0)
	eng.RunUntil(des.Second)
	st.Finish(des.Second)
	if snap := st.Snapshot(); snap.Shed != 0 || snap.Arrivals != snap.Completions {
		t.Fatalf("closed population shed: %+v", snap)
	}
}

// TestInertAtFullSampleRate: sample rate 1.0 must make the tier a no-op —
// no draws, no accrual, nothing for the fingerprint to see.
func TestInertAtFullSampleRate(t *testing.T) {
	eng := des.New()
	st, err := New(Config{SampleRate: 1}, oneService(2, 0.010),
		func(des.Time) float64 { return 1000 }, rng.NewSplitter(5).Child("hybrid"))
	if err != nil {
		t.Fatal(err)
	}
	if st.Active() {
		t.Fatal("sample rate 1.0 must be inert")
	}
	st.Start(eng, 0, 0)
	eng.RunUntil(des.Second) // must not schedule anything
	st.Finish(des.Second)
	if w := st.WaitFor(0); w != 0 {
		t.Fatalf("inert WaitFor = %v, want 0", w)
	}
	if snap := st.Snapshot(); snap != (Snapshot{}) {
		t.Fatalf("inert snapshot %+v, want zero", snap)
	}
}

// TestNonFiniteRateClamped: a degenerate rate function (Inf, NaN, or
// negative — e.g. a fixed point solved under total outage) must not poison
// the accrual integrals; the snapshot stays at finite, conserving counts.
func TestNonFiniteRateClamped(t *testing.T) {
	for _, bad := range []float64{math.Inf(1), math.NaN(), -5} {
		eng := des.New()
		st, err := New(Config{SampleRate: 0.1}, oneService(4, 0.010),
			func(des.Time) float64 { return bad }, rng.NewSplitter(3).Child("hybrid"))
		if err != nil {
			t.Fatal(err)
		}
		st.Start(eng, 0, 0)
		eng.RunUntil(des.Second)
		st.Finish(des.Second)
		snap := st.Snapshot()
		if snap.Arrivals != 0 || snap.Completions != 0 || snap.Shed != 0 {
			t.Fatalf("rate %v: snapshot %+v, want zero counts", bad, snap)
		}
	}
}

// TestRoundCountSaturates: the float→int64 resolution must clamp rather
// than hit the undefined conversion on non-finite or overflowing values.
func TestRoundCountSaturates(t *testing.T) {
	cases := []struct {
		in   float64
		want int64
	}{
		{0, 0},
		{-3, 0},
		{math.NaN(), 0},
		{2.6, 3},
		{math.Inf(1), 1 << 62},
		{1e300, 1 << 62},
	}
	for _, c := range cases {
		if got := roundCount(c.in); got != c.want {
			t.Errorf("roundCount(%v) = %d, want %d", c.in, got, c.want)
		}
	}
}

// TestSaturatedWaitCapped: saturated services inject the capped wait, not
// an unbounded draw.
func TestSaturatedWaitCapped(t *testing.T) {
	eng := des.New()
	st, err := New(Config{SampleRate: 0.5, MaxWaitFactor: 10}, oneService(1, 0.010),
		func(des.Time) float64 { return 1000 }, rng.NewSplitter(5).Child("hybrid")) // 10x capacity
	if err != nil {
		t.Fatal(err)
	}
	st.Start(eng, 0, 0)
	want := des.FromNanos(10 * 0.010 * 1e9)
	for i := 0; i < 10; i++ {
		if w := st.WaitFor(0); w != want {
			t.Fatalf("saturated wait %v, want capped %v", w, want)
		}
	}
}

// TestReplicaChangeReflected: the epoch loop re-reads Servers, so a
// scale-up mid-run lowers the equilibrium wait.
func TestReplicaChangeReflected(t *testing.T) {
	k := 2
	eng := des.New()
	svc := []Service{{Name: "web", Visits: 1, MeanServiceS: 0.010, Servers: func() int { return k }}}
	st, err := New(Config{SampleRate: 0.05}, svc,
		func(des.Time) float64 { return 160 }, rng.NewSplitter(9).Child("hybrid"))
	if err != nil {
		t.Fatal(err)
	}
	st.Start(eng, 0, 0)
	eng.RunUntil(100 * des.Millisecond)
	before := st.Point(0).MeanWaitS
	k = 8
	eng.RunUntil(300 * des.Millisecond)
	after := st.Point(0).MeanWaitS
	if !(after < before/2) {
		t.Fatalf("scale-up not reflected: wait %v -> %v", before, after)
	}
}
