// Package hybrid is the fluid/mean-field fidelity tier: instead of running
// every request as a full stage-level DES job, a configurable sampled
// fraction runs through the real `internal/sim` path while the remaining
// background traffic loads each service's queues *statistically*, from the
// `internal/analytic` M/M/k equilibrium machinery. The equilibrium is
// piecewise-constant: re-evaluated every epoch as the arrival envelope
// (diurnal/burst patterns, session populations) and the live replica
// counts (control-plane scaling, failures) change.
//
// Contract with the DES layer:
//
//   - Sampled (foreground) requests run the full simulation path; at each
//     service admission the tier injects an extra queue-wait draw from the
//     M/M/k waiting-time distribution evaluated at the TOTAL offered load
//     (foreground + background), so sampled latencies reflect contention
//     with traffic that is not individually simulated. The small
//     double-count — sampled requests also queue behind each other inside
//     the DES — scales with the sample rate and is negligible at the small
//     rates the tier is built for.
//   - Background requests are accrued fractionally per epoch
//     ((1−p)·λ(t)·Δt, left rule) and resolved into the conservation
//     identity at report time: BgArrivals == BgCompletions + BgShed +
//     BgUnreachable, by construction. Open-loop background traffic
//     beyond the bottleneck capacity is shed at the bottleneck rate;
//     closed (session) traffic self-limits instead (users queue, they
//     don't vanish). Flow on machine pairs severed by a partition or
//     dropped on a gray link accrues as unreachable, and every lost
//     request is attributed to its causing fault family (ByCause).
//   - Faults couple into the equilibrium itself: DVFS degrades scale the
//     effective µ, capacity losses shrink k, resilience policies inflate
//     λ to λ·E[attempts] (retry storms, gated by breaker thresholds),
//     and fault/heal boundaries re-solve event-driven via Resolve — not
//     just at the next epoch edge.
//   - Every random draw comes from streams split off the client seed
//     ("hybrid", ...), so the determinism fingerprint covers the tier and
//     a sample-rate of 1.0 — which disables every draw and every accrual —
//     is bit-identical to a pure-DES run.
package hybrid

import (
	"fmt"
	"math"
	"sort"

	"uqsim/internal/analytic"
	"uqsim/internal/des"
	"uqsim/internal/rng"
	"uqsim/internal/stats"
)

// Cause labels bucket lost background flow by the fault family that
// caused it — the per-fault attribution the run report and the extended
// background conservation identity carry. One deterministic cause is
// charged per epoch per bucket (the bottleneck's dominant condition), so
// the buckets always sum exactly to the shed + unreachable totals.
const (
	// CauseOverload: the offered rate alone exceeds healthy capacity.
	CauseOverload = "overload"
	// CauseDegradeFreq: the bottleneck's effective µ is DVFS-degraded.
	CauseDegradeFreq = "degrade_freq"
	// CauseCapacity: the bottleneck lost servers (instance kills, machine
	// or domain crashes) relative to its high-water replica count.
	CauseCapacity = "capacity"
	// CauseRetryStorm: stable at one attempt per request, saturated only
	// by the mean-field retry amplification λ·E[attempts].
	CauseRetryStorm = "retry_storm"
	// CausePartition: flow on machine pairs severed by a partition.
	CausePartition = "partition"
	// CauseGrayLink: flow dropped probabilistically on lossy links.
	CauseGrayLink = "gray_link"
)

// GaugeRegistry is the slice of internal/monitor's Monitor the fluid tier
// uses to publish its series. Declared here (not imported) so sim can
// depend on hybrid without dragging the monitor package into its import
// graph.
type GaugeRegistry interface {
	WatchGauge(name string, fn func(now des.Time) float64) *stats.TimeSeries
}

// Config selects the fidelity split.
type Config struct {
	// SampleRate is the fraction of requests simulated at full DES
	// fidelity, in (0, 1]. 1.0 disables the fluid tier entirely.
	SampleRate float64
	// Epoch is the re-evaluation interval of the piecewise equilibrium
	// (default 50ms of virtual time).
	Epoch des.Time
	// MaxWaitFactor caps the injected wait at MaxWaitFactor × mean
	// service time when a service is saturated and the equilibrium wait
	// is unbounded (default 100).
	MaxWaitFactor float64
	// Closed marks the background flow as a closed population (sessions):
	// it self-limits at the bottleneck instead of shedding.
	Closed bool
}

// Validate rejects sample rates outside (0, 1] and negative knobs.
func (c Config) Validate() error {
	if math.IsNaN(c.SampleRate) || c.SampleRate <= 0 || c.SampleRate > 1 {
		return fmt.Errorf("hybrid: sample rate must be in (0, 1], got %v", c.SampleRate)
	}
	if c.Epoch < 0 {
		return fmt.Errorf("hybrid: epoch must be >= 0, got %v", c.Epoch)
	}
	if c.MaxWaitFactor < 0 {
		return fmt.Errorf("hybrid: max wait factor must be >= 0, got %v", c.MaxWaitFactor)
	}
	return nil
}

// Service describes one service's fluid model: how often a request visits
// it, how long a visit holds a server, and how many servers are live right
// now (queried every epoch, so autoscaling and failures feed back).
type Service struct {
	Name string
	// Visits is the mean number of visits per end-to-end request
	// (path-probability-weighted, across request trees).
	Visits float64
	// MeanServiceS is the mean busy time per visit in seconds.
	MeanServiceS float64
	// Servers reports the live server count. Required.
	Servers func() int
	// Speed reports the service's current effective speed multiplier:
	// 1 at nominal frequency, < 1 while DVFS-underclocked (the
	// healthy-core-weighted mean of 1/SpeedFactor). Optional; nil means
	// nominal speed. Effective µ is Speed()/MeanServiceS, so frequency
	// degrades re-solve the equilibrium exactly like capacity changes.
	Speed func() float64
	// Loss reports the network-fault loss on this service's incoming
	// background edges: cut is the fraction of caller→callee machine
	// pairs currently severed by partitions, drop the mean gray-link
	// drop probability over the reachable pairs. Optional; nil means a
	// perfect fabric.
	Loss func() (cut, drop float64)
	// Policy is the resilience policy guarding the edge into this
	// service, applied to background flow in mean field: timeouts and
	// retries inflate the effective offered rate λ·E[attempts], and a
	// breaker threshold gates the amplification when the equilibrium
	// failure rate would hold the breaker open. Optional.
	Policy *Policy
}

// Policy is the fluid tier's mean-field view of a fault.Policy: enough to
// compute the equilibrium per-attempt timeout probability and the
// resulting retry amplification. Declared here (not imported from
// internal/fault) to keep the hybrid package free of the DES-layer types.
type Policy struct {
	// TimeoutS bounds one attempt's queue wait, in seconds.
	TimeoutS float64
	// MaxRetries re-issues a timed-out attempt up to this many times.
	MaxRetries int
	// BreakerThreshold is the breaker's error-rate trip point (0: no
	// breaker). When the equilibrium per-attempt failure probability
	// meets it, the breaker is open in mean field and retries fail fast
	// instead of amplifying the offered rate.
	BreakerThreshold float64
}

// point is one service's frozen equilibrium for the current epoch.
// evalKey memoizes one service's equilibrium inputs: M/M/k evaluation is
// O(k) (Erlang-C sums over servers), which dominates epochs on large
// deployments even though the inputs rarely change between epochs. The
// key covers every input the solution depends on — λ after network-loss
// thinning, the live server count, and the effective per-server rate µ —
// so a mid-run DVFS change invalidates the memo like a capacity change.
type evalKey struct {
	lambda float64
	k      int
	mu     float64
	valid  bool
}

type point struct {
	analytic.MMkPoint
	condRate float64 // kµ_eff − λ_eff, for wait draws
	capped   des.Time
	amp      float64 // mean-field retry amplification E[attempts]
}

// State is the live fluid tier of one run.
type State struct {
	cfg      Config
	services []Service
	// rate reports the TOTAL offered request rate (requests/s entering
	// the system, before sampling) at virtual time t.
	rate  func(t des.Time) float64
	split *rng.Splitter

	eng       des.Scheduler
	warmupEnd des.Time

	points  []point
	memo    []evalKey
	streams []*rng.Source

	lastEval  des.Time // start of the current epoch
	lastRate  float64  // offered rate frozen at lastEval
	lastServe float64  // fraction of reachable background flow served (1 unless saturated open-loop)
	accrued   bool     // accrual window has begun

	// Network-fault coupling frozen at lastEval: the end-to-end fraction
	// of background flow failing unreachable, its partition/gray-link
	// attribution weights, and the bottleneck's shed cause.
	lastUnreach   float64
	lastWPart     float64
	lastWGray     float64
	lastShedCause string

	bgArr     float64 // background arrivals accrued in the measured window
	bgShed    float64 // background arrivals shed at the bottleneck
	bgUnreach float64 // background arrivals lost to partitions / gray links

	// Per-cause attribution accruals; resolved to whole requests by
	// largest remainder in ByCause so buckets sum exactly.
	shedCause    map[string]float64
	unreachCause map[string]float64

	// baseK is each service's high-water live server count — the
	// reference that classifies a saturated bottleneck as capacity loss
	// rather than plain overload.
	baseK []int

	satEpochs int
	stopped   bool
}

// New builds the fluid tier. rate must report the total offered request
// rate at any (nondecreasing) virtual time; services need positive
// MeanServiceS and a Servers callback.
func New(cfg Config, services []Service, rate func(t des.Time) float64, split *rng.Splitter) (*State, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if rate == nil {
		return nil, fmt.Errorf("hybrid: rate function is required")
	}
	if len(services) == 0 {
		return nil, fmt.Errorf("hybrid: at least one service is required")
	}
	for _, s := range services {
		if s.Servers == nil {
			return nil, fmt.Errorf("hybrid: service %q needs a Servers callback", s.Name)
		}
		if s.MeanServiceS <= 0 || math.IsNaN(s.MeanServiceS) || math.IsInf(s.MeanServiceS, 0) {
			return nil, fmt.Errorf("hybrid: service %q mean service time must be positive and finite, got %v",
				s.Name, s.MeanServiceS)
		}
		if s.Visits < 0 || math.IsNaN(s.Visits) {
			return nil, fmt.Errorf("hybrid: service %q visit factor must be >= 0, got %v", s.Name, s.Visits)
		}
	}
	if cfg.Epoch == 0 {
		cfg.Epoch = 50 * des.Millisecond
	}
	if cfg.MaxWaitFactor == 0 {
		cfg.MaxWaitFactor = 100
	}
	st := &State{
		cfg:          cfg,
		services:     services,
		rate:         rate,
		split:        split,
		points:       make([]point, len(services)),
		memo:         make([]evalKey, len(services)),
		streams:      make([]*rng.Source, len(services)),
		baseK:        make([]int, len(services)),
		shedCause:    make(map[string]float64),
		unreachCause: make(map[string]float64),
	}
	for i, s := range services {
		st.streams[i] = split.Stream("hybrid", s.Name)
	}
	return st, nil
}

// Active reports whether the fluid tier does anything at all: at sample
// rate 1.0 it is inert (no draws, no accrual) so a full-fidelity run stays
// bit-identical to one with no hybrid attached.
func (st *State) Active() bool { return st.cfg.SampleRate < 1 }

// SampleRate is the configured foreground fraction.
func (st *State) SampleRate() float64 { return st.cfg.SampleRate }

// ServiceIndex maps a service name to its wait-injection index (-1 when
// the service has no fluid model).
func (st *State) ServiceIndex(name string) int {
	for i, s := range st.services {
		if s.Name == name {
			return i
		}
	}
	return -1
}

// Start begins the epoch loop. Background accrual covers [warmupEnd, end)
// to match the simulator's measured-window accounting; equilibrium
// injection is live from `at` so warmup traffic also sees background load.
func (st *State) Start(eng des.Scheduler, at, warmupEnd des.Time) {
	if !st.Active() {
		return
	}
	st.eng = eng
	st.warmupEnd = warmupEnd
	st.eval(at)
	epoch := st.cfg.Epoch
	var tick func(t des.Time)
	tick = func(t des.Time) {
		if st.stopped {
			return
		}
		st.accrue(t)
		st.eval(t)
		eng.Post(t+epoch, tick)
	}
	eng.Post(at+epoch, tick)
}

// eval freezes the equilibrium for the epoch starting at t. Per service
// it composes the fault couplings: network loss thins the offered λ
// (severed pairs and gray-link drops carry no background flow), DVFS
// degradation scales the effective µ, and the resilience policy's retry
// amplification inflates λ to λ·E[attempts] before the M/M/k solve.
func (st *State) eval(t des.Time) {
	offered := st.rate(t)
	if math.IsNaN(offered) || math.IsInf(offered, 0) || offered < 0 {
		// A misbehaving rate function (e.g. a degenerate fixed point) must
		// not poison the accrual integrals: a non-finite rate accrued once
		// would corrupt every later Snapshot.
		offered = 0
	}
	st.lastEval = t
	st.lastRate = offered
	st.lastServe = 1
	st.lastUnreach = 0
	st.lastWPart, st.lastWGray = 0, 0
	st.lastShedCause = ""
	survive := 1.0
	anySat := false
	for i := range st.services {
		s := &st.services[i]
		cut, drop := 0.0, 0.0
		if s.Loss != nil {
			cut, drop = clamp01(s.Loss())
		}
		loss := cut + (1-cut)*drop
		speed := 1.0
		if s.Speed != nil {
			speed = s.Speed()
			if math.IsNaN(speed) || speed < 0 {
				speed = 0
			}
		}
		lambda := offered * s.Visits * (1 - loss)
		mu := speed / s.MeanServiceS
		k := s.Servers()
		if k > st.baseK[i] {
			st.baseK[i] = k
		}
		if s.Visits > 0 {
			// End-to-end survival treats each visited service's incoming
			// edge as an independent delivery requirement — exact for
			// chains, an approximation for branchy trees.
			survive *= 1 - loss
			st.lastWPart += cut
			st.lastWGray += (1 - cut) * drop
		}
		if m := &st.memo[i]; !m.valid || m.lambda != lambda || m.k != k || m.mu != mu {
			amp := amplification(lambda, mu, k, s.Policy)
			p := analytic.MMkAt(lambda*amp, mu, k)
			_, cond := analytic.MMkWaitDist(lambda*amp, mu, k)
			st.points[i] = point{
				MMkPoint: p,
				condRate: cond,
				capped:   des.FromNanos(st.cfg.MaxWaitFactor * s.MeanServiceS * 1e9),
				amp:      amp,
			}
			*m = evalKey{lambda: lambda, k: k, mu: mu, valid: true}
		}
		if st.points[i].Saturated {
			anySat = true
			// Open-loop background flow beyond this bottleneck is shed:
			// the service serves capacity/λ_eff of its offered traffic
			// (retries consume capacity too), and end-to-end conservation
			// is governed by the worst service.
			if !st.cfg.Closed {
				served := 0.0
				if lamEff := lambda * st.points[i].amp; lamEff > 0 && k > 0 && mu > 0 {
					served = float64(k) * mu / lamEff
				}
				if served < st.lastServe {
					st.lastServe = served
					st.lastShedCause = st.shedCauseFor(i, lambda, mu, k, speed)
				}
			}
		}
	}
	st.lastUnreach = 1 - survive
	if anySat {
		st.satEpochs++
	}
}

// shedCauseFor classifies why service i's equilibrium saturated, charging
// one deterministic dominant cause: DVFS degradation first (effective µ
// below nominal), then capacity loss (live servers below the high-water
// count), then a retry storm (stable at one attempt per request,
// saturated only by amplification), else plain overload.
func (st *State) shedCauseFor(i int, lambda, mu float64, k int, speed float64) string {
	switch {
	case speed < 1:
		return CauseDegradeFreq
	case k < st.baseK[i]:
		return CauseCapacity
	case k > 0 && mu > 0 && lambda < float64(k)*mu:
		return CauseRetryStorm
	default:
		return CauseOverload
	}
}

// amplification solves the mean-field retry fixed point for one service:
// the per-attempt timeout probability at the amplified rate feeds the
// expected attempt count, which feeds the rate. Damped iteration from
// amp=1 converges to the stable fixed point from below (matching a
// system entering the storm). With a breaker threshold, an equilibrium
// failure rate at or above it holds the breaker open in mean field:
// retries fail fast and the amplification collapses back toward 1.
func amplification(lambda, mu float64, k int, pol *Policy) float64 {
	if pol == nil || pol.MaxRetries <= 0 || lambda <= 0 || k <= 0 || mu <= 0 {
		return 1
	}
	amp := 1.0
	for iter := 0; iter < 32; iter++ {
		pTO := analytic.MMkTimeoutProb(lambda*amp, mu, k, pol.TimeoutS)
		next := analytic.RetryAttempts(pTO, pol.MaxRetries)
		if pol.BreakerThreshold > 0 && pTO >= pol.BreakerThreshold {
			next = 1
		}
		amp = 0.5*amp + 0.5*next
	}
	return amp
}

// clamp01 clamps a Loss callback's pair into [0, 1].
func clamp01(cut, drop float64) (float64, float64) {
	c1 := func(v float64) float64 {
		if math.IsNaN(v) || v < 0 {
			return 0
		}
		if v > 1 {
			return 1
		}
		return v
	}
	return c1(cut), c1(drop)
}

// accrue folds the epoch that just ended, [lastEval, t), into the
// background counters, clipped to the measured window.
func (st *State) accrue(t des.Time) {
	from := st.lastEval
	if from < st.warmupEnd {
		from = st.warmupEnd
	}
	if t <= from {
		return
	}
	dt := float64(t-from) / 1e9
	bg := st.lastRate * (1 - st.cfg.SampleRate) * dt
	st.bgArr += bg
	if unreach := bg * st.lastUnreach; unreach > 0 {
		st.bgUnreach += unreach
		if w := st.lastWPart + st.lastWGray; w > 0 {
			st.unreachCause[CausePartition] += unreach * st.lastWPart / w
			st.unreachCause[CauseGrayLink] += unreach * st.lastWGray / w
		} else {
			st.unreachCause[CausePartition] += unreach
		}
	}
	if shed := bg * (1 - st.lastUnreach) * (1 - st.lastServe); shed > 0 {
		st.bgShed += shed
		cause := st.lastShedCause
		if cause == "" {
			cause = CauseOverload
		}
		st.shedCause[cause] += shed
	}
}

// Resolve re-solves the background equilibrium mid-epoch: the elapsed
// fraction of the current epoch accrues under the outgoing equilibrium
// and a fresh one is frozen from t. Fault and heal boundaries call this
// so partitions, DVFS degrades, gray links, and capacity changes act on
// background flow the instant they fire — not at the next epoch edge.
// Purely analytic (no RNG), so an extra Resolve never perturbs the
// determinism fingerprint's random streams; calls before Start, after
// Finish, or at an already-frozen instant are no-ops.
func (st *State) Resolve(t des.Time) {
	if !st.Active() || st.stopped || st.eng == nil || t < st.lastEval {
		return
	}
	st.accrue(t)
	st.eval(t)
}

// Finish folds the final partial epoch up to the measurement horizon.
func (st *State) Finish(end des.Time) {
	if !st.Active() {
		return
	}
	st.stopped = true
	st.accrue(end)
	st.lastEval = end
}

// WaitFor draws the background-contention queue wait a sampled request
// experiences when admitted at service index idx: with probability
// Erlang-C an Exp(kµ−λ) wait, zero otherwise. Saturated services return
// the capped wait (every arrival waits, the equilibrium wait is
// unbounded). Inert (sample rate 1.0) returns 0 without consuming
// randomness.
func (st *State) WaitFor(idx int) des.Time {
	if !st.Active() || idx < 0 || idx >= len(st.points) {
		return 0
	}
	p := &st.points[idx]
	r := st.streams[idx]
	if p.Saturated {
		return p.capped
	}
	if p.PWait <= 0 {
		return 0
	}
	if r.Float64() >= p.PWait {
		return 0
	}
	w := des.FromNanos(r.ExpFloat64() / p.condRate * 1e9)
	if w > p.capped {
		w = p.capped
	}
	return w
}

// Point reports service idx's current epoch equilibrium.
func (st *State) Point(idx int) analytic.MMkPoint {
	if idx < 0 || idx >= len(st.points) {
		return analytic.MMkPoint{}
	}
	return st.points[idx].MMkPoint
}

// Snapshot is the background tier's contribution to the run report,
// resolved to whole requests. Completions are arrivals minus shed minus
// unreachable by construction — the conservation identity the validator
// asserts.
type Snapshot struct {
	Arrivals        int64
	Completions     int64
	Shed            int64
	Unreachable     int64
	SaturatedEpochs int
}

// Snapshot resolves the accrued background flow.
func (st *State) Snapshot() Snapshot {
	arr := roundCount(st.bgArr)
	unreach := roundCount(st.bgUnreach)
	if unreach > arr {
		unreach = arr
	}
	shed := roundCount(st.bgShed)
	if shed > arr-unreach {
		shed = arr - unreach
	}
	return Snapshot{
		Arrivals:        arr,
		Completions:     arr - shed - unreach,
		Shed:            shed,
		Unreachable:     unreach,
		SaturatedEpochs: st.satEpochs,
	}
}

// ByCause buckets the snapshot's lost background flow (Shed +
// Unreachable) by causing fault family. Whole-request resolution uses
// largest-remainder apportionment within each family against the same
// rounded totals Snapshot reports, so the buckets sum exactly to
// Shed + Unreachable — the extended background conservation identity.
// Zero-valued causes are omitted; an inert tier returns an empty map.
func (st *State) ByCause() map[string]int64 {
	snap := st.Snapshot()
	out := make(map[string]int64)
	apportion(out, st.shedCause, snap.Shed, CauseOverload)
	apportion(out, st.unreachCause, snap.Unreachable, CausePartition)
	for k, v := range out {
		if v == 0 {
			delete(out, k)
		}
	}
	return out
}

// apportion distributes total whole requests over float weights by
// largest remainder (ties broken by key, iteration in sorted-key order,
// so the result is deterministic); an empty or degenerate weight map
// books everything under the fallback cause.
func apportion(out map[string]int64, weights map[string]float64, total int64, fallback string) {
	if total <= 0 {
		return
	}
	keys := make([]string, 0, len(weights))
	sum := 0.0
	for k, w := range weights {
		if w > 0 && !math.IsNaN(w) && !math.IsInf(w, 0) {
			keys = append(keys, k)
			sum += w
		}
	}
	if len(keys) == 0 || sum <= 0 {
		out[fallback] += total
		return
	}
	sort.Strings(keys)
	type rem struct {
		key  string
		frac float64
	}
	rems := make([]rem, 0, len(keys))
	left := total
	for _, k := range keys {
		exact := float64(total) * weights[k] / sum
		base := int64(math.Floor(exact))
		out[k] += base
		left -= base
		rems = append(rems, rem{key: k, frac: exact - float64(base)})
	}
	sort.SliceStable(rems, func(i, j int) bool {
		if rems[i].frac != rems[j].frac {
			return rems[i].frac > rems[j].frac
		}
		return rems[i].key < rems[j].key
	})
	for i := 0; left > 0; i++ {
		out[rems[i%len(rems)].key]++
		left--
	}
}

// roundCount resolves a fractional accrual to a whole-request count,
// saturating instead of invoking the undefined float→int64 conversion on
// non-finite or overflowing values.
func roundCount(v float64) int64 {
	switch {
	case math.IsNaN(v) || v <= 0:
		return 0
	case v >= float64(1<<62):
		return 1 << 62
	}
	return int64(math.Round(v))
}

// Attach registers background-tier gauges on the monitor so dashboards
// can separate fluid load from sampled load: the offered background rate
// and each service's equilibrium utilization and queue length.
func (st *State) Attach(m GaugeRegistry) {
	if !st.Active() {
		return
	}
	m.WatchGauge("hybrid.bg_qps", func(des.Time) float64 {
		return st.lastRate * (1 - st.cfg.SampleRate)
	})
	m.WatchGauge("hybrid.bg_unreach_frac", func(des.Time) float64 {
		return st.lastUnreach
	})
	for i, s := range st.services {
		idx := i
		m.WatchGauge("hybrid.rho."+s.Name, func(des.Time) float64 {
			return st.points[idx].Rho
		})
		m.WatchGauge("hybrid.amp."+s.Name, func(des.Time) float64 {
			return st.points[idx].amp
		})
		m.WatchGauge("hybrid.qlen."+s.Name, func(des.Time) float64 {
			q := st.points[idx].QueueLen
			if analytic.IsSaturated(q) {
				return -1 // sentinel: unbounded
			}
			return q
		})
	}
}
