// Package hybrid is the fluid/mean-field fidelity tier: instead of running
// every request as a full stage-level DES job, a configurable sampled
// fraction runs through the real `internal/sim` path while the remaining
// background traffic loads each service's queues *statistically*, from the
// `internal/analytic` M/M/k equilibrium machinery. The equilibrium is
// piecewise-constant: re-evaluated every epoch as the arrival envelope
// (diurnal/burst patterns, session populations) and the live replica
// counts (control-plane scaling, failures) change.
//
// Contract with the DES layer:
//
//   - Sampled (foreground) requests run the full simulation path; at each
//     service admission the tier injects an extra queue-wait draw from the
//     M/M/k waiting-time distribution evaluated at the TOTAL offered load
//     (foreground + background), so sampled latencies reflect contention
//     with traffic that is not individually simulated. The small
//     double-count — sampled requests also queue behind each other inside
//     the DES — scales with the sample rate and is negligible at the small
//     rates the tier is built for.
//   - Background requests are accrued fractionally per epoch
//     ((1−p)·λ(t)·Δt, left rule) and resolved into the conservation
//     identity at report time: BgArrivals == BgCompletions + BgShed, by
//     construction. Open-loop background traffic beyond the bottleneck
//     capacity is shed at the bottleneck rate; closed (session) traffic
//     self-limits instead (users queue, they don't vanish).
//   - Every random draw comes from streams split off the client seed
//     ("hybrid", ...), so the determinism fingerprint covers the tier and
//     a sample-rate of 1.0 — which disables every draw and every accrual —
//     is bit-identical to a pure-DES run.
package hybrid

import (
	"fmt"
	"math"

	"uqsim/internal/analytic"
	"uqsim/internal/des"
	"uqsim/internal/rng"
	"uqsim/internal/stats"
)

// GaugeRegistry is the slice of internal/monitor's Monitor the fluid tier
// uses to publish its series. Declared here (not imported) so sim can
// depend on hybrid without dragging the monitor package into its import
// graph.
type GaugeRegistry interface {
	WatchGauge(name string, fn func(now des.Time) float64) *stats.TimeSeries
}

// Config selects the fidelity split.
type Config struct {
	// SampleRate is the fraction of requests simulated at full DES
	// fidelity, in (0, 1]. 1.0 disables the fluid tier entirely.
	SampleRate float64
	// Epoch is the re-evaluation interval of the piecewise equilibrium
	// (default 50ms of virtual time).
	Epoch des.Time
	// MaxWaitFactor caps the injected wait at MaxWaitFactor × mean
	// service time when a service is saturated and the equilibrium wait
	// is unbounded (default 100).
	MaxWaitFactor float64
	// Closed marks the background flow as a closed population (sessions):
	// it self-limits at the bottleneck instead of shedding.
	Closed bool
}

// Validate rejects sample rates outside (0, 1] and negative knobs.
func (c Config) Validate() error {
	if math.IsNaN(c.SampleRate) || c.SampleRate <= 0 || c.SampleRate > 1 {
		return fmt.Errorf("hybrid: sample rate must be in (0, 1], got %v", c.SampleRate)
	}
	if c.Epoch < 0 {
		return fmt.Errorf("hybrid: epoch must be >= 0, got %v", c.Epoch)
	}
	if c.MaxWaitFactor < 0 {
		return fmt.Errorf("hybrid: max wait factor must be >= 0, got %v", c.MaxWaitFactor)
	}
	return nil
}

// Service describes one service's fluid model: how often a request visits
// it, how long a visit holds a server, and how many servers are live right
// now (queried every epoch, so autoscaling and failures feed back).
type Service struct {
	Name string
	// Visits is the mean number of visits per end-to-end request
	// (path-probability-weighted, across request trees).
	Visits float64
	// MeanServiceS is the mean busy time per visit in seconds.
	MeanServiceS float64
	// Servers reports the live server count. Required.
	Servers func() int
}

// point is one service's frozen equilibrium for the current epoch.
// evalKey memoizes one service's equilibrium inputs: M/M/k evaluation is
// O(k) (Erlang-C sums over servers), which dominates epochs on large
// deployments even though the inputs rarely change between epochs.
type evalKey struct {
	lambda float64
	k      int
	valid  bool
}

type point struct {
	analytic.MMkPoint
	condRate float64 // kµ − λ, for wait draws
	capped   des.Time
}

// State is the live fluid tier of one run.
type State struct {
	cfg      Config
	services []Service
	// rate reports the TOTAL offered request rate (requests/s entering
	// the system, before sampling) at virtual time t.
	rate  func(t des.Time) float64
	split *rng.Splitter

	eng       des.Scheduler
	warmupEnd des.Time

	points  []point
	memo    []evalKey
	streams []*rng.Source

	lastEval  des.Time // start of the current epoch
	lastRate  float64  // offered rate frozen at lastEval
	lastServe float64  // fraction of background flow served (1 unless saturated open-loop)
	accrued   bool     // accrual window has begun

	bgArr  float64 // background arrivals accrued in the measured window
	bgShed float64 // background arrivals shed at the bottleneck

	satEpochs int
	stopped   bool
}

// New builds the fluid tier. rate must report the total offered request
// rate at any (nondecreasing) virtual time; services need positive
// MeanServiceS and a Servers callback.
func New(cfg Config, services []Service, rate func(t des.Time) float64, split *rng.Splitter) (*State, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if rate == nil {
		return nil, fmt.Errorf("hybrid: rate function is required")
	}
	if len(services) == 0 {
		return nil, fmt.Errorf("hybrid: at least one service is required")
	}
	for _, s := range services {
		if s.Servers == nil {
			return nil, fmt.Errorf("hybrid: service %q needs a Servers callback", s.Name)
		}
		if s.MeanServiceS <= 0 || math.IsNaN(s.MeanServiceS) || math.IsInf(s.MeanServiceS, 0) {
			return nil, fmt.Errorf("hybrid: service %q mean service time must be positive and finite, got %v",
				s.Name, s.MeanServiceS)
		}
		if s.Visits < 0 || math.IsNaN(s.Visits) {
			return nil, fmt.Errorf("hybrid: service %q visit factor must be >= 0, got %v", s.Name, s.Visits)
		}
	}
	if cfg.Epoch == 0 {
		cfg.Epoch = 50 * des.Millisecond
	}
	if cfg.MaxWaitFactor == 0 {
		cfg.MaxWaitFactor = 100
	}
	st := &State{
		cfg:      cfg,
		services: services,
		rate:     rate,
		split:    split,
		points:   make([]point, len(services)),
		memo:     make([]evalKey, len(services)),
		streams:  make([]*rng.Source, len(services)),
	}
	for i, s := range services {
		st.streams[i] = split.Stream("hybrid", s.Name)
	}
	return st, nil
}

// Active reports whether the fluid tier does anything at all: at sample
// rate 1.0 it is inert (no draws, no accrual) so a full-fidelity run stays
// bit-identical to one with no hybrid attached.
func (st *State) Active() bool { return st.cfg.SampleRate < 1 }

// SampleRate is the configured foreground fraction.
func (st *State) SampleRate() float64 { return st.cfg.SampleRate }

// ServiceIndex maps a service name to its wait-injection index (-1 when
// the service has no fluid model).
func (st *State) ServiceIndex(name string) int {
	for i, s := range st.services {
		if s.Name == name {
			return i
		}
	}
	return -1
}

// Start begins the epoch loop. Background accrual covers [warmupEnd, end)
// to match the simulator's measured-window accounting; equilibrium
// injection is live from `at` so warmup traffic also sees background load.
func (st *State) Start(eng des.Scheduler, at, warmupEnd des.Time) {
	if !st.Active() {
		return
	}
	st.eng = eng
	st.warmupEnd = warmupEnd
	st.eval(at)
	epoch := st.cfg.Epoch
	var tick func(t des.Time)
	tick = func(t des.Time) {
		if st.stopped {
			return
		}
		st.accrue(t)
		st.eval(t)
		eng.Post(t+epoch, tick)
	}
	eng.Post(at+epoch, tick)
}

// eval freezes the equilibrium for the epoch starting at t.
func (st *State) eval(t des.Time) {
	offered := st.rate(t)
	if math.IsNaN(offered) || math.IsInf(offered, 0) || offered < 0 {
		// A misbehaving rate function (e.g. a degenerate fixed point) must
		// not poison the accrual integrals: a non-finite rate accrued once
		// would corrupt every later Snapshot.
		offered = 0
	}
	st.lastEval = t
	st.lastRate = offered
	st.lastServe = 1
	anySat := false
	for i, s := range st.services {
		lambda := offered * s.Visits
		mu := 1 / s.MeanServiceS
		k := s.Servers()
		if m := &st.memo[i]; !m.valid || m.lambda != lambda || m.k != k {
			p := analytic.MMkAt(lambda, mu, k)
			_, cond := analytic.MMkWaitDist(lambda, mu, k)
			st.points[i] = point{
				MMkPoint: p,
				condRate: cond,
				capped:   des.FromNanos(st.cfg.MaxWaitFactor * s.MeanServiceS * 1e9),
			}
			*m = evalKey{lambda: lambda, k: k, valid: true}
		}
		if st.points[i].Saturated {
			anySat = true
			// Open-loop background flow beyond this bottleneck is shed:
			// the service serves capacity/λ of its offered traffic, and
			// end-to-end conservation is governed by the worst service.
			if !st.cfg.Closed && lambda > 0 && k > 0 && mu > 0 {
				if served := float64(k) * mu / lambda; served < st.lastServe {
					st.lastServe = served
				}
			} else if !st.cfg.Closed {
				st.lastServe = 0
			}
		}
	}
	if anySat {
		st.satEpochs++
	}
}

// accrue folds the epoch that just ended, [lastEval, t), into the
// background counters, clipped to the measured window.
func (st *State) accrue(t des.Time) {
	from := st.lastEval
	if from < st.warmupEnd {
		from = st.warmupEnd
	}
	if t <= from {
		return
	}
	dt := float64(t-from) / 1e9
	bg := st.lastRate * (1 - st.cfg.SampleRate) * dt
	st.bgArr += bg
	st.bgShed += bg * (1 - st.lastServe)
}

// Finish folds the final partial epoch up to the measurement horizon.
func (st *State) Finish(end des.Time) {
	if !st.Active() {
		return
	}
	st.stopped = true
	st.accrue(end)
	st.lastEval = end
}

// WaitFor draws the background-contention queue wait a sampled request
// experiences when admitted at service index idx: with probability
// Erlang-C an Exp(kµ−λ) wait, zero otherwise. Saturated services return
// the capped wait (every arrival waits, the equilibrium wait is
// unbounded). Inert (sample rate 1.0) returns 0 without consuming
// randomness.
func (st *State) WaitFor(idx int) des.Time {
	if !st.Active() || idx < 0 || idx >= len(st.points) {
		return 0
	}
	p := &st.points[idx]
	r := st.streams[idx]
	if p.Saturated {
		return p.capped
	}
	if p.PWait <= 0 {
		return 0
	}
	if r.Float64() >= p.PWait {
		return 0
	}
	w := des.FromNanos(r.ExpFloat64() / p.condRate * 1e9)
	if w > p.capped {
		w = p.capped
	}
	return w
}

// Point reports service idx's current epoch equilibrium.
func (st *State) Point(idx int) analytic.MMkPoint {
	if idx < 0 || idx >= len(st.points) {
		return analytic.MMkPoint{}
	}
	return st.points[idx].MMkPoint
}

// Snapshot is the background tier's contribution to the run report,
// resolved to whole requests. Completions are arrivals minus shed by
// construction — the conservation identity the validator asserts.
type Snapshot struct {
	Arrivals        int64
	Completions     int64
	Shed            int64
	SaturatedEpochs int
}

// Snapshot resolves the accrued background flow.
func (st *State) Snapshot() Snapshot {
	arr := roundCount(st.bgArr)
	shed := roundCount(st.bgShed)
	if shed > arr {
		shed = arr
	}
	return Snapshot{
		Arrivals:        arr,
		Completions:     arr - shed,
		Shed:            shed,
		SaturatedEpochs: st.satEpochs,
	}
}

// roundCount resolves a fractional accrual to a whole-request count,
// saturating instead of invoking the undefined float→int64 conversion on
// non-finite or overflowing values.
func roundCount(v float64) int64 {
	switch {
	case math.IsNaN(v) || v <= 0:
		return 0
	case v >= float64(1<<62):
		return 1 << 62
	}
	return int64(math.Round(v))
}

// Attach registers background-tier gauges on the monitor so dashboards
// can separate fluid load from sampled load: the offered background rate
// and each service's equilibrium utilization and queue length.
func (st *State) Attach(m GaugeRegistry) {
	if !st.Active() {
		return
	}
	m.WatchGauge("hybrid.bg_qps", func(des.Time) float64 {
		return st.lastRate * (1 - st.cfg.SampleRate)
	})
	for i, s := range st.services {
		idx := i
		m.WatchGauge("hybrid.rho."+s.Name, func(des.Time) float64 {
			return st.points[idx].Rho
		})
		m.WatchGauge("hybrid.qlen."+s.Name, func(des.Time) float64 {
			q := st.points[idx].QueueLen
			if analytic.IsSaturated(q) {
				return -1 // sentinel: unbounded
			}
			return q
		})
	}
}
