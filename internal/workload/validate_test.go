package workload

import (
	"math"
	"strings"
	"testing"

	"uqsim/internal/des"
	"uqsim/internal/rng"
)

// Regression tests for the zero/negative-rate and zero-duration edge cases
// the pattern validators reject: before validation existed, a zero-period
// diurnal silently flatlined, a zero mean-hold burst was silently repaired
// to one second, and negative rates idled the generator forever.

func TestConstantRateValidate(t *testing.T) {
	cases := []struct {
		rate ConstantRate
		want string
	}{
		{0, ""},
		{1000, ""},
		{-1, "must be >= 0"},
		{ConstantRate(math.NaN()), "must be finite"},
		{ConstantRate(math.Inf(1)), "must be finite"},
	}
	for _, c := range cases {
		err := c.rate.Validate()
		if c.want == "" && err != nil {
			t.Errorf("ConstantRate(%v).Validate() = %v, want nil", float64(c.rate), err)
		}
		if c.want != "" && (err == nil || !strings.Contains(err.Error(), c.want)) {
			t.Errorf("ConstantRate(%v).Validate() = %v, want %q", float64(c.rate), err, c.want)
		}
	}
}

func TestDiurnalValidate(t *testing.T) {
	valid := Diurnal{Base: 1000, Amplitude: 500, Period: des.Second, Floor: 10}
	if err := valid.Validate(); err != nil {
		t.Fatalf("valid diurnal rejected: %v", err)
	}
	cases := []struct {
		name string
		mut  func(*Diurnal)
		want string
	}{
		{"zero period", func(d *Diurnal) { d.Period = 0 }, "period must be positive"},
		{"negative period", func(d *Diurnal) { d.Period = -des.Second }, "period must be positive"},
		{"negative base", func(d *Diurnal) { d.Base = -1 }, "base must be >= 0"},
		{"negative amplitude", func(d *Diurnal) { d.Amplitude = -1 }, "amplitude must be >= 0"},
		{"negative floor", func(d *Diurnal) { d.Floor = -1 }, "floor must be >= 0"},
		{"nan base", func(d *Diurnal) { d.Base = math.NaN() }, "must be finite"},
		{"inf amplitude", func(d *Diurnal) { d.Amplitude = math.Inf(1) }, "must be finite"},
	}
	for _, c := range cases {
		d := valid
		c.mut(&d)
		err := d.Validate()
		if err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: got %v, want error containing %q", c.name, err, c.want)
		}
	}
}

func TestBurstValidate(t *testing.T) {
	valid := Burst{BaseRate: 1000, BurstRate: 5000, MeanOn: des.Second, MeanOff: 2 * des.Second}
	if err := valid.Validate(); err != nil {
		t.Fatalf("valid burst rejected: %v", err)
	}
	cases := []struct {
		name string
		mut  func(*Burst)
		want string
	}{
		{"negative base", func(b *Burst) { b.BaseRate = -1 }, "base_rate must be >= 0"},
		{"negative burst", func(b *Burst) { b.BurstRate = -1 }, "burst_rate must be >= 0"},
		{"zero mean on", func(b *Burst) { b.MeanOn = 0 }, "mean_on must be positive"},
		{"negative mean on", func(b *Burst) { b.MeanOn = -des.Second }, "mean_on must be positive"},
		{"zero mean off", func(b *Burst) { b.MeanOff = 0 }, "mean_off must be positive"},
		{"nan rate", func(b *Burst) { b.BaseRate = math.NaN() }, "must be finite"},
	}
	for _, c := range cases {
		b := valid
		c.mut(&b)
		err := b.Validate()
		if err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: got %v, want error containing %q", c.name, err, c.want)
		}
	}
}

// TestOpenLoopRejectsInvalidPattern pins that construction fails fast on a
// degenerate pattern rather than deferring misbehaviour to mid-run.
func TestOpenLoopRejectsInvalidPattern(t *testing.T) {
	eng := des.New()
	defer func() {
		if recover() == nil {
			t.Fatal("NewOpenLoop accepted a zero-period diurnal")
		}
	}()
	NewOpenLoop(eng, rng.New(1), Diurnal{Base: 100, Period: 0}, func(des.Time) {})
}

// TestOpenLoopZeroConstantRate: a zero-rate constant pattern is valid and
// must poll rather than divide by zero or busy-loop at one instant.
func TestOpenLoopZeroConstantRate(t *testing.T) {
	eng := des.New()
	n := 0
	g := NewOpenLoop(eng, rng.New(1), ConstantRate(0), func(des.Time) { n++ })
	g.Start(0)
	eng.RunUntil(100 * des.Millisecond) // must terminate
	if n != 0 {
		t.Fatalf("zero-rate generator emitted %d arrivals", n)
	}
}
