package workload

import (
	"fmt"
	"strings"
	"testing"

	"uqsim/internal/des"
	"uqsim/internal/dist"
	"uqsim/internal/rng"
)

func validSessionConfig() SessionConfig {
	return SessionConfig{
		Users: 4,
		Journeys: []Journey{
			{Name: "browse", Weight: 3, Steps: []SessionStep{
				{Tree: 0, Think: dist.NewExponential(5e6)},
				{Tree: 0, Think: dist.NewExponential(5e6)},
			}},
			{Name: "buy", Weight: 1, Steps: []SessionStep{
				{Tree: 0, Think: dist.NewExponential(10e6)},
			}},
		},
	}
}

func TestSessionConfigValidate(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*SessionConfig)
		want string // substring of the error; "" means valid
	}{
		{"valid", func(c *SessionConfig) {}, ""},
		{"negative users", func(c *SessionConfig) { c.Users = -1 }, "users must be >= 0"},
		{"zero users no phases", func(c *SessionConfig) { c.Users = 0 }, "users >= 1 or a population phase"},
		{"zero users with phase", func(c *SessionConfig) {
			c.Users = 0
			c.Phases = []PopPhase{{At: des.Second, Users: 10}}
		}, ""},
		{"no journeys", func(c *SessionConfig) { c.Journeys = nil }, "at least one journey"},
		{"negative weight", func(c *SessionConfig) { c.Journeys[0].Weight = -1 }, "weight must be finite"},
		{"all zero weights", func(c *SessionConfig) {
			c.Journeys[0].Weight = 0
			c.Journeys[1].Weight = 0
		}, "at least one must be positive"},
		{"empty steps", func(c *SessionConfig) { c.Journeys[1].Steps = nil }, "has no steps"},
		{"negative tree", func(c *SessionConfig) { c.Journeys[0].Steps[0].Tree = -2 }, "negative tree index"},
		{"unsorted phases", func(c *SessionConfig) {
			c.Phases = []PopPhase{{At: 2 * des.Second, Users: 5}, {At: des.Second, Users: 9}}
		}, "sorted by time"},
		{"negative phase target", func(c *SessionConfig) {
			c.Phases = []PopPhase{{At: des.Second, Users: -3}}
		}, "target must be >= 0"},
		{"negative ramp", func(c *SessionConfig) {
			c.Phases = []PopPhase{{At: des.Second, Users: 3, Ramp: -des.Second}}
		}, "times must be >= 0"},
		{"overlapping ramp", func(c *SessionConfig) {
			c.Phases = []PopPhase{
				{At: des.Second, Users: 10, Ramp: 3 * des.Second},
				{At: 2 * des.Second, Users: 20},
			}
		}, "overlapping phase"},
		{"ramp ending at next start", func(c *SessionConfig) {
			c.Phases = []PopPhase{
				{At: des.Second, Users: 10, Ramp: des.Second},
				{At: 2 * des.Second, Users: 20},
			}
		}, ""},
		{"flash crowd zero extra", func(c *SessionConfig) {
			c.Crowds = []FlashCrowd{{At: des.Second, Extra: 0}}
		}, "extra users must be positive"},
		{"flash crowd negative ramp", func(c *SessionConfig) {
			c.Crowds = []FlashCrowd{{At: des.Second, Extra: 5, RampUp: -1}}
		}, "times must be >= 0"},
		{"on/off zero mean", func(c *SessionConfig) {
			c.OnOff = &OnOff{MeanOn: 0, MeanOff: des.Second}
		}, "mean_on and mean_off must be positive"},
		{"negative pop tick", func(c *SessionConfig) { c.PopTick = -1 }, "pop_tick must be >= 0"},
	}
	for _, c := range cases {
		cfg := validSessionConfig()
		c.mut(&cfg)
		err := cfg.Validate()
		if c.want == "" {
			if err != nil {
				t.Errorf("%s: unexpected error %v", c.name, err)
			}
			continue
		}
		if err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: got %v, want error containing %q", c.name, err, c.want)
		}
	}
}

func TestPopulationEnvelope(t *testing.T) {
	cfg := SessionConfig{
		Users:    100,
		Journeys: []Journey{{Weight: 1, Steps: []SessionStep{{Tree: 0}}}},
		Phases: []PopPhase{
			{At: 10 * des.Second, Users: 200, Ramp: 10 * des.Second},
			{At: 30 * des.Second, Users: 50},
		},
		Crowds: []FlashCrowd{
			{At: 5 * des.Second, Extra: 40, RampUp: 2 * des.Second, Hold: des.Second, RampDown: 2 * des.Second},
		},
	}
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		at   des.Time
		want int
	}{
		{0, 100},
		{5 * des.Second, 100},                 // crowd ramp just starting
		{6 * des.Second, 120},                 // crowd halfway up
		{7*des.Second + des.Millisecond, 140}, // crowd holding
		{9 * des.Second, 120},                 // crowd halfway down
		{15 * des.Second, 150},                // phase ramp halfway 100→200
		{25 * des.Second, 200},                // phase plateau
		{31 * des.Second, 50},                 // step down
	}
	for _, c := range cases {
		if got := cfg.PopulationAt(c.at); got != c.want {
			t.Errorf("PopulationAt(%v) = %d, want %d", c.at, got, c.want)
		}
	}
}

func TestSessionsIssueAndAdvance(t *testing.T) {
	eng := des.New()
	split := rng.NewSplitter(42)
	cfg := validSessionConfig()

	type issue struct {
		user, tree int
	}
	var issues []issue
	var sess *Sessions
	emit := func(now des.Time, user, tree int) {
		issues = append(issues, issue{user, tree})
		// Complete instantly after 1ms "service".
		eng.Post(now+des.Millisecond, func(t des.Time) { sess.Done(t, user) })
	}
	var err error
	sess, err = NewSessions(eng, split.Child("sessions"), cfg, emit)
	if err != nil {
		t.Fatal(err)
	}
	sess.Start(0)
	eng.RunUntil(des.Second)

	if sess.ActiveUsers() != 4 || sess.SimulatedUsers() != 4 || sess.BackgroundUsers() != 0 {
		t.Fatalf("population: active=%d sim=%d bg=%d, want 4/4/0",
			sess.ActiveUsers(), sess.SimulatedUsers(), sess.BackgroundUsers())
	}
	if len(issues) < 40 {
		t.Fatalf("expected a steady request flow over 1s with ~5-10ms think, got %d issues", len(issues))
	}
	perUser := map[int]int{}
	for _, is := range issues {
		perUser[is.user]++
		if is.tree != 0 {
			t.Fatalf("unexpected tree %d", is.tree)
		}
	}
	if len(perUser) != 4 {
		t.Fatalf("want 4 distinct users, got %d", len(perUser))
	}
}

// TestSessionsDeterminism pins that two runs with the same seed issue the
// identical request sequence and a different seed diverges.
func TestSessionsDeterminism(t *testing.T) {
	run := func(seed uint64) []des.Time {
		eng := des.New()
		var times []des.Time
		var sess *Sessions
		emit := func(now des.Time, user, tree int) {
			times = append(times, now)
			eng.Post(now+des.Millisecond, func(t des.Time) { sess.Done(t, user) })
		}
		sess, err := NewSessions(eng, rng.NewSplitter(seed).Child("sessions"), validSessionConfig(), emit)
		if err != nil {
			t.Fatal(err)
		}
		sess.Start(0)
		eng.RunUntil(des.Second)
		return times
	}
	a, b := run(7), run(7)
	if len(a) == 0 || len(a) != len(b) {
		t.Fatalf("same seed lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at issue %d: %v vs %v", i, a[i], b[i])
		}
	}
	c := run(8)
	same := len(a) == len(c)
	if same {
		for i := range a {
			if a[i] != c[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatal("different seeds produced identical issue sequences")
	}
}

// TestSessionsSampling: unsampled users never emit but count toward the
// population; sampled users do. SampleUser is called once per spawned id.
func TestSessionsSampling(t *testing.T) {
	eng := des.New()
	cfg := validSessionConfig()
	cfg.Users = 10
	var sess *Sessions
	emit := func(now des.Time, user, tree int) {
		eng.Post(now+des.Millisecond, func(t des.Time) { sess.Done(t, user) })
	}
	sess, err := NewSessions(eng, rng.NewSplitter(1).Child("sessions"), cfg, emit)
	if err != nil {
		t.Fatal(err)
	}
	sampled := map[int]bool{}
	sess.SampleUser = func(user int) bool {
		s := user%3 == 0 // 4 of ids 0..9
		sampled[user] = s
		return s
	}
	sess.Start(0)
	eng.RunUntil(100 * des.Millisecond)
	if sess.ActiveUsers() != 10 {
		t.Fatalf("active = %d, want 10", sess.ActiveUsers())
	}
	if sess.SimulatedUsers() != 4 || sess.BackgroundUsers() != 6 {
		t.Fatalf("sim=%d bg=%d, want 4/6", sess.SimulatedUsers(), sess.BackgroundUsers())
	}
	if len(sampled) != 10 {
		t.Fatalf("SampleUser called for %d ids, want 10", len(sampled))
	}
}

// TestSessionsPopulationControl: a flash crowd grows the live population
// and the ramp-down shrinks it back.
func TestSessionsPopulationControl(t *testing.T) {
	eng := des.New()
	cfg := validSessionConfig()
	cfg.Users = 5
	cfg.Crowds = []FlashCrowd{{
		At: 100 * des.Millisecond, Extra: 20,
		RampUp: 50 * des.Millisecond, Hold: 100 * des.Millisecond, RampDown: 50 * des.Millisecond,
	}}
	var sess *Sessions
	emit := func(now des.Time, user, tree int) {
		eng.Post(now+des.Millisecond, func(t des.Time) { sess.Done(t, user) })
	}
	sess, err := NewSessions(eng, rng.NewSplitter(3).Child("sessions"), cfg, emit)
	if err != nil {
		t.Fatal(err)
	}
	sess.Start(0)
	eng.RunUntil(200 * des.Millisecond) // mid-hold
	if got := sess.ActiveUsers(); got != 25 {
		t.Fatalf("mid-crowd population %d, want 25", got)
	}
	eng.RunUntil(des.Second) // long after ramp-down; retirees need a step boundary
	if got := sess.ActiveUsers(); got != 5 {
		t.Fatalf("post-crowd population %d, want 5", got)
	}
}

// TestSessionsRampDownNoChurn: a ramp-down retires exactly the excess
// users. Retirees linger until their next step boundary — with think times
// longer than the population poll tick that spans many ticks — and must
// not be re-counted as excess, which would cascade into retiring the whole
// population and respawning fresh users (visible as user ids beyond the
// initial cohort).
func TestSessionsRampDownNoChurn(t *testing.T) {
	eng := des.New()
	cfg := SessionConfig{
		Users: 20,
		Journeys: []Journey{{Name: "browse", Weight: 1, Steps: []SessionStep{
			{Tree: 0, Think: dist.NewExponential(50e6)}, // 50ms mean ≫ 10ms pop tick
		}}},
		Phases: []PopPhase{{At: 100 * des.Millisecond, Users: 10}},
	}
	maxUser := -1
	var sess *Sessions
	emit := func(now des.Time, user, tree int) {
		if user > maxUser {
			maxUser = user
		}
		eng.Post(now+des.Millisecond, func(t des.Time) { sess.Done(t, user) })
	}
	sess, err := NewSessions(eng, rng.NewSplitter(5).Child("sessions"), cfg, emit)
	if err != nil {
		t.Fatal(err)
	}
	sess.Start(0)
	eng.RunUntil(des.Second)
	if got := sess.ActiveUsers(); got != 10 {
		t.Fatalf("post-ramp-down population %d, want 10", got)
	}
	if maxUser >= 20 {
		t.Fatalf("saw user id %d: ramp-down churned the population instead of retiring 10 users", maxUser)
	}
}

// TestJourneyAtBoundaries: zero-weight journeys are unreachable and a draw
// landing exactly on a cumulative boundary belongs to the next interval.
func TestJourneyAtBoundaries(t *testing.T) {
	build := func(weights ...float64) *Sessions {
		cfg := SessionConfig{Users: 1}
		for i, w := range weights {
			cfg.Journeys = append(cfg.Journeys, Journey{
				Name: fmt.Sprint("j", i), Weight: w, Steps: []SessionStep{{Tree: 0}},
			})
		}
		s, err := NewSessions(des.New(), rng.NewSplitter(1).Child("sessions"), cfg,
			func(des.Time, int, int) {})
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	zeroFirst := build(0, 1)
	if got := zeroFirst.journeyAt(0); got != 1 {
		t.Errorf("journeyAt(0) with weights [0,1] = %d, want 1 (zero-weight journey unreachable)", got)
	}
	zeroMid := build(1, 0, 1)
	for x, want := range map[float64]int{0: 0, 0.5: 0, 1: 2, 1.5: 2} {
		if got := zeroMid.journeyAt(x); got != want {
			t.Errorf("journeyAt(%v) with weights [1,0,1] = %d, want %d", x, got, want)
		}
	}
}

// TestSessionsZeroThinkNoLivelock: a zero-think journey whose requests
// complete at the same virtual instant (instant shed) must not wedge the
// event loop at one timestamp.
func TestSessionsZeroThinkNoLivelock(t *testing.T) {
	eng := des.New()
	cfg := SessionConfig{
		Users:    2,
		Journeys: []Journey{{Weight: 1, Steps: []SessionStep{{Tree: 0}}}}, // nil Think
	}
	var sess *Sessions
	n := 0
	emit := func(now des.Time, user, tree int) {
		n++
		sess.Done(now, user) // complete at the same instant, like a shed
	}
	sess, err := NewSessions(eng, rng.NewSplitter(9).Child("sessions"), cfg, emit)
	if err != nil {
		t.Fatal(err)
	}
	sess.Start(0)
	eng.RunUntil(10 * des.Millisecond) // would never return on livelock
	if n == 0 || n > 1000 {
		t.Fatalf("issue count %d, want a bounded re-issue cadence", n)
	}
}

// TestSessionsOnOff: bursty users issue markedly fewer requests than
// always-on users with the same think time.
func TestSessionsOnOff(t *testing.T) {
	count := func(onoff *OnOff) int {
		eng := des.New()
		cfg := validSessionConfig()
		cfg.OnOff = onoff
		n := 0
		var sess *Sessions
		emit := func(now des.Time, user, tree int) {
			n++
			eng.Post(now+des.Millisecond, func(t des.Time) { sess.Done(t, user) })
		}
		sess, err := NewSessions(eng, rng.NewSplitter(11).Child("sessions"), cfg, emit)
		if err != nil {
			t.Fatal(err)
		}
		sess.Start(0)
		eng.RunUntil(2 * des.Second)
		return n
	}
	always := count(nil)
	bursty := count(&OnOff{MeanOn: 50 * des.Millisecond, MeanOff: 150 * des.Millisecond})
	if bursty >= always*3/4 {
		t.Fatalf("on/off users issued %d vs always-on %d; want a clear reduction", bursty, always)
	}
}
