package workload

import (
	"math"
	"testing"

	"uqsim/internal/des"
	"uqsim/internal/dist"
	"uqsim/internal/rng"
)

func TestConstantRate(t *testing.T) {
	p := ConstantRate(5000)
	if p.RateAt(0) != 5000 || p.RateAt(des.Second) != 5000 {
		t.Fatal("constant rate should not vary")
	}
}

func TestDiurnalShape(t *testing.T) {
	d := Diurnal{Base: 1000, Amplitude: 500, Period: 10 * des.Second}
	if got := d.RateAt(0); math.Abs(got-1000) > 1e-6 {
		t.Fatalf("rate at phase 0 = %v", got)
	}
	// Peak at quarter period.
	if got := d.RateAt(2500 * des.Millisecond); math.Abs(got-1500) > 1e-6 {
		t.Fatalf("peak rate = %v, want 1500", got)
	}
	// Trough at three-quarter period.
	if got := d.RateAt(7500 * des.Millisecond); math.Abs(got-500) > 1e-6 {
		t.Fatalf("trough rate = %v, want 500", got)
	}
}

func TestDiurnalFloor(t *testing.T) {
	d := Diurnal{Base: 100, Amplitude: 500, Period: 10 * des.Second, Floor: 50}
	if got := d.RateAt(7500 * des.Millisecond); got != 50 {
		t.Fatalf("floored rate = %v", got)
	}
	// Zero period degenerates to max(base, floor).
	z := Diurnal{Base: 10, Floor: 25}
	if z.RateAt(123) != 25 {
		t.Fatal("zero-period diurnal should use floor")
	}
}

func TestOpenLoopPoissonRate(t *testing.T) {
	eng := des.New()
	n := 0
	g := NewOpenLoop(eng, rng.New(1), ConstantRate(10000), func(des.Time) { n++ })
	g.Start(0)
	eng.RunUntil(10 * des.Second)
	// Expect ≈100k arrivals; Poisson stddev ≈316.
	if n < 98000 || n > 102000 {
		t.Fatalf("arrivals = %d, want ≈100000", n)
	}
}

func TestOpenLoopUniformGaps(t *testing.T) {
	eng := des.New()
	var times []des.Time
	g := NewOpenLoop(eng, rng.New(1), ConstantRate(1000), func(now des.Time) {
		times = append(times, now)
	})
	g.Proc = Uniform
	g.Start(0)
	eng.RunUntil(10 * des.Millisecond)
	if len(times) != 10 {
		t.Fatalf("arrivals = %d, want 10", len(times))
	}
	for i := 1; i < len(times); i++ {
		if times[i]-times[i-1] != des.Millisecond {
			t.Fatalf("gap %v, want exactly 1ms", times[i]-times[i-1])
		}
	}
}

func TestOpenLoopStop(t *testing.T) {
	eng := des.New()
	n := 0
	g := NewOpenLoop(eng, rng.New(1), ConstantRate(1000), func(des.Time) { n++ })
	g.Proc = Uniform
	g.Start(0)
	eng.At(5500*des.Microsecond, func(des.Time) { g.Stop() })
	eng.RunUntil(des.Second)
	if n != 5 {
		t.Fatalf("arrivals after stop = %d, want 5", n)
	}
}

func TestOpenLoopZeroRateIdles(t *testing.T) {
	eng := des.New()
	n := 0
	// Rate 0 until 5ms, then 1000 QPS.
	p := patternFunc(func(t des.Time) float64 {
		if t < 5*des.Millisecond {
			return 0
		}
		return 1000
	})
	g := NewOpenLoop(eng, rng.New(1), p, func(des.Time) { n++ })
	g.Proc = Uniform
	g.Start(0)
	eng.RunUntil(10 * des.Millisecond)
	if n < 3 || n > 6 {
		t.Fatalf("arrivals = %d, want ≈5 (only the active half)", n)
	}
}

type patternFunc func(des.Time) float64

func (f patternFunc) RateAt(t des.Time) float64 { return f(t) }

func TestOpenLoopDiurnalModulatesThroughput(t *testing.T) {
	eng := des.New()
	var firstHalf, secondHalf int
	d := Diurnal{Base: 10000, Amplitude: 8000, Period: 2 * des.Second}
	g := NewOpenLoop(eng, rng.New(2), d, func(now des.Time) {
		if now < des.Second {
			firstHalf++
		} else {
			secondHalf++
		}
	})
	g.Start(0)
	eng.RunUntil(2 * des.Second)
	// First half covers the sine's positive lobe, second the negative.
	if firstHalf <= secondHalf {
		t.Fatalf("diurnal halves %d vs %d: peak half should dominate", firstHalf, secondHalf)
	}
}

func TestClosedLoopConcurrencyBound(t *testing.T) {
	eng := des.New()
	inFlight, maxInFlight, issued := 0, 0, 0
	var g *ClosedLoop
	g = NewClosedLoop(eng, rng.New(3), 4, func(now des.Time) {
		issued++
		inFlight++
		if inFlight > maxInFlight {
			maxInFlight = inFlight
		}
		// Simulate 1ms of service, then completion.
		eng.At(now+des.Millisecond, func(t des.Time) {
			inFlight--
			g.RequestDone(t)
		})
	})
	g.Think = func(r *rng.Source) float64 { return 0 }
	g.Start(0)
	eng.RunUntil(10 * des.Millisecond)
	if maxInFlight != 4 {
		t.Fatalf("max in flight = %d, want 4", maxInFlight)
	}
	// 4 users × ~10 rounds each.
	if issued < 40 || issued > 44 {
		t.Fatalf("issued = %d, want ≈40", issued)
	}
}

func TestClosedLoopThinkTime(t *testing.T) {
	eng := des.New()
	issued := 0
	think := dist.NewDeterministic(float64(des.Millisecond))
	var g *ClosedLoop
	g = NewClosedLoop(eng, rng.New(4), 1, func(now des.Time) {
		issued++
		eng.At(now, func(t des.Time) { g.RequestDone(t) }) // instant service
	})
	g.Think = func(r *rng.Source) float64 { return think.Sample(r) }
	g.Start(0)
	eng.RunUntil(10*des.Millisecond - 1)
	// One request per 1ms think cycle.
	if issued != 10 {
		t.Fatalf("issued = %d, want 10", issued)
	}
}

func TestReplay(t *testing.T) {
	eng := des.New()
	var got []des.Time
	trace := []des.Time{1, 5, 5, 9}
	NewReplay(eng, trace, func(now des.Time) { got = append(got, now) }).Start()
	eng.Run()
	if len(got) != 4 || got[0] != 1 || got[3] != 9 {
		t.Fatalf("replayed %v", got)
	}
}

func TestReplayRejectsUnsortedTrace(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("want panic")
		}
	}()
	NewReplay(des.New(), []des.Time{5, 1}, func(des.Time) {})
}

func TestConstructorValidation(t *testing.T) {
	eng := des.New()
	for i, fn := range []func(){
		func() { NewOpenLoop(eng, rng.New(1), nil, func(des.Time) {}) },
		func() { NewOpenLoop(eng, rng.New(1), ConstantRate(1), nil) },
		func() { NewClosedLoop(eng, rng.New(1), 0, func(des.Time) {}) },
		func() { NewClosedLoop(eng, rng.New(1), 1, nil) },
		func() { NewReplay(eng, nil, nil) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: want panic", i)
				}
			}()
			fn()
		}()
	}
}

func TestBurstPatternAlternates(t *testing.T) {
	b := &Burst{
		BaseRate:  1000,
		BurstRate: 9000,
		MeanOn:    100 * des.Millisecond,
		MeanOff:   100 * des.Millisecond,
		R:         rng.New(9),
	}
	sawBase, sawBurst := false, false
	for ts := des.Time(0); ts < 5*des.Second; ts += 10 * des.Millisecond {
		switch b.RateAt(ts) {
		case 1000:
			sawBase = true
		case 10000:
			sawBurst = true
		default:
			t.Fatalf("unexpected rate %v", b.RateAt(ts))
		}
	}
	if !sawBase || !sawBurst {
		t.Fatalf("pattern did not alternate: base=%v burst=%v", sawBase, sawBurst)
	}
}

func TestBurstDrivesOpenLoop(t *testing.T) {
	eng := des.New()
	n := 0
	b := &Burst{
		BaseRate:  500,
		BurstRate: 19500,
		MeanOn:    200 * des.Millisecond,
		MeanOff:   800 * des.Millisecond,
		R:         rng.New(10),
	}
	g := NewOpenLoop(eng, rng.New(11), b, func(des.Time) { n++ })
	g.Start(0)
	eng.RunUntil(10 * des.Second)
	// Expected mean rate ≈ 500 + 19500·(0.2/1.0) = 4400/s → ≈44k total
	// (wide bounds: only ~10 ON/OFF cycles fit in the window).
	if n < 25000 || n > 70000 {
		t.Fatalf("bursty arrivals = %d over 10s, want ≈44000", n)
	}
}

func TestBurstNeedsRNG(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("want panic")
		}
	}()
	(&Burst{}).RateAt(0)
}
