package workload

import (
	"fmt"
	"math"
	"sort"

	"uqsim/internal/des"
	"uqsim/internal/dist"
	"uqsim/internal/rng"
)

// Session-based user flows: instead of a bare arrival rate, the workload is
// a population of users, each walking multi-step journeys (think → request
// → think chains over the topology's request trees). The population itself
// is a first-class signal — phased ramps, flash crowds, and on/off bursty
// users — so "a million users" is a workload spec, not just a higher
// lambda. Every user owns a dedicated RNG stream split from the client
// seed, so the determinism fingerprint covers each user's think times,
// journey choices, and on/off phase independently of every other user.

// SessionStep is one request in a journey: think for Think (nanoseconds),
// then issue the request tree with topology index Tree and wait for its
// completion.
type SessionStep struct {
	Tree  int
	Think dist.Sampler // nil: zero think
}

// Journey is a weighted multi-step user flow (e.g. browse → search → buy).
// After the last step completes, the user draws a fresh journey.
type Journey struct {
	Name   string
	Weight float64
	Steps  []SessionStep
}

// PopPhase is one knot of the piecewise-linear population envelope: ramp
// linearly from the previous target to Users over [At, At+Ramp]. Phases
// must be sorted by At; ramps must not overlap the next phase's start.
type PopPhase struct {
	At    des.Time
	Users int
	Ramp  des.Time // 0: step change
}

// FlashCrowd superimposes a transient trapezoid of Extra users on the
// phase envelope: ramp up over RampUp starting at At, hold for Hold, ramp
// down over RampDown.
type FlashCrowd struct {
	At       des.Time
	Extra    int
	RampUp   des.Time
	Hold     des.Time
	RampDown des.Time
}

// OnOff makes every user bursty: active periods of mean MeanOn alternate
// with silent periods of mean MeanOff (both exponential, per-user stream).
// A user entering a silent period pauses at its next step boundary.
type OnOff struct {
	MeanOn  des.Time
	MeanOff des.Time
}

// SessionConfig specifies a session-driven client population.
type SessionConfig struct {
	// Users is the base population before any phases apply. Required >= 1
	// unless Phases set a target.
	Users    int
	Journeys []Journey
	Phases   []PopPhase
	Crowds   []FlashCrowd
	OnOff    *OnOff
	// PopTick is the population-control poll interval (default 10ms).
	// Only polled when Phases or Crowds are present.
	PopTick des.Time
}

// Validate rejects degenerate session specs: empty journeys, nonpositive
// weights, negative think means, empty steps, unsorted phases, zero/negative
// ramp populations, and flash crowds with nonpositive extra or negative
// durations.
func (c *SessionConfig) Validate() error {
	if c.Users < 0 {
		return fmt.Errorf("workload: sessions users must be >= 0, got %d", c.Users)
	}
	if c.Users == 0 && len(c.Phases) == 0 {
		return fmt.Errorf("workload: sessions need users >= 1 or a population phase")
	}
	if len(c.Journeys) == 0 {
		return fmt.Errorf("workload: sessions need at least one journey")
	}
	totalW := 0.0
	for i, j := range c.Journeys {
		if j.Weight < 0 || math.IsNaN(j.Weight) || math.IsInf(j.Weight, 0) {
			return fmt.Errorf("workload: journey %q weight must be finite and >= 0, got %v", j.Name, j.Weight)
		}
		totalW += j.Weight
		if len(j.Steps) == 0 {
			return fmt.Errorf("workload: journey %q has no steps", j.Name)
		}
		for s, st := range j.Steps {
			if st.Tree < 0 {
				return fmt.Errorf("workload: journey %q step %d has negative tree index", j.Name, s)
			}
			if st.Think != nil {
				if m := st.Think.Mean(); math.IsNaN(m) || m < 0 {
					return fmt.Errorf("workload: journey %q step %d think mean must be >= 0, got %v", j.Name, s, m)
				}
			}
		}
		_ = i
	}
	if totalW <= 0 {
		return fmt.Errorf("workload: journey weights sum to %v; at least one must be positive", totalW)
	}
	for i, p := range c.Phases {
		if p.Users < 0 {
			return fmt.Errorf("workload: population phase %d target must be >= 0, got %d", i, p.Users)
		}
		if p.At < 0 || p.Ramp < 0 {
			return fmt.Errorf("workload: population phase %d times must be >= 0", i)
		}
		if i > 0 && p.At < c.Phases[i-1].At {
			return fmt.Errorf("workload: population phases must be sorted by time (phase %d at %v after phase %d at %v)",
				i-1, c.Phases[i-1].At, i, p.At)
		}
		if i > 0 && c.Phases[i-1].At+c.Phases[i-1].Ramp > p.At {
			return fmt.Errorf("workload: population phase %d ramp ends at %v, overlapping phase %d start %v",
				i-1, c.Phases[i-1].At+c.Phases[i-1].Ramp, i, p.At)
		}
	}
	for i, f := range c.Crowds {
		if f.Extra <= 0 {
			return fmt.Errorf("workload: flash crowd %d extra users must be positive, got %d", i, f.Extra)
		}
		if f.At < 0 || f.RampUp < 0 || f.Hold < 0 || f.RampDown < 0 {
			return fmt.Errorf("workload: flash crowd %d times must be >= 0", i)
		}
	}
	if c.OnOff != nil {
		if c.OnOff.MeanOn <= 0 || c.OnOff.MeanOff <= 0 {
			return fmt.Errorf("workload: on/off mean_on and mean_off must be positive, got %v/%v",
				c.OnOff.MeanOn, c.OnOff.MeanOff)
		}
	}
	if c.PopTick < 0 {
		return fmt.Errorf("workload: sessions pop_tick must be >= 0, got %v", c.PopTick)
	}
	return nil
}

// PopulationAt evaluates the target population at virtual time t: the
// piecewise-linear phase envelope plus every flash crowd's trapezoid.
func (c *SessionConfig) PopulationAt(t des.Time) int {
	base := float64(c.Users)
	prev := base
	for _, p := range c.Phases {
		if t < p.At {
			break
		}
		if p.Ramp > 0 && t < p.At+p.Ramp {
			frac := float64(t-p.At) / float64(p.Ramp)
			base = prev + (float64(p.Users)-prev)*frac
			prev = float64(p.Users)
			continue
		}
		base = float64(p.Users)
		prev = base
	}
	for _, f := range c.Crowds {
		base += f.extraAt(t)
	}
	if base < 0 {
		return 0
	}
	return int(math.Round(base))
}

func (f FlashCrowd) extraAt(t des.Time) float64 {
	if t < f.At {
		return 0
	}
	x := t - f.At
	if f.RampUp > 0 && x < f.RampUp {
		return float64(f.Extra) * float64(x) / float64(f.RampUp)
	}
	x -= f.RampUp
	if x < f.Hold {
		return float64(f.Extra)
	}
	x -= f.Hold
	if f.RampDown > 0 && x < f.RampDown {
		return float64(f.Extra) * (1 - float64(x)/float64(f.RampDown))
	}
	return 0
}

// MeanThinkS is the journey-weighted mean think time per step, in seconds —
// the Z of the closed-population fixed point the fluid tier solves.
func (c *SessionConfig) MeanThinkS() float64 {
	var wSum, tSum float64
	for _, j := range c.Journeys {
		if j.Weight <= 0 || len(j.Steps) == 0 {
			continue
		}
		var jt float64
		for _, st := range j.Steps {
			if st.Think != nil {
				jt += st.Think.Mean()
			}
		}
		wSum += j.Weight
		tSum += j.Weight * jt / float64(len(j.Steps))
	}
	if wSum <= 0 {
		return 0
	}
	return tSum / wSum / 1e9 // samplers return nanoseconds
}

// TreeWeights is the long-run fraction of issued requests that target each
// topology tree (journey-weighted step frequencies), sized to cover the
// largest tree index. The fluid tier uses it to split background user
// traffic across request trees.
func (c *SessionConfig) TreeWeights() []float64 {
	maxTree := -1
	for _, j := range c.Journeys {
		for _, st := range j.Steps {
			if st.Tree > maxTree {
				maxTree = st.Tree
			}
		}
	}
	if maxTree < 0 {
		return nil
	}
	w := make([]float64, maxTree+1)
	var total float64
	for _, j := range c.Journeys {
		if j.Weight <= 0 {
			continue
		}
		for _, st := range j.Steps {
			w[st.Tree] += j.Weight
			total += j.Weight
		}
	}
	if total > 0 {
		for i := range w {
			w[i] /= total
		}
	}
	return w
}

// sessionUser is one live simulated (foreground-sampled) user.
type sessionUser struct {
	r        *rng.Source
	journey  int
	step     int
	offAt    des.Time // end of the current on-period (OnOff only)
	lastIss  des.Time
	issued   bool // lastIss is meaningful
	inflight bool // a request is outstanding; Done will advance
	retiring bool // depart at the next step boundary
	gone     bool
}

// Sessions drives a population of journey-walking users. The sim layer
// must call Done for every completion (success, failure, or timeout
// exhaustion) attributed to a session user, mirroring the closed-loop
// contract.
type Sessions struct {
	// Emit issues one request for user on the given topology tree.
	// Required.
	Emit func(now des.Time, user, tree int)
	// SampleUser, when non-nil, decides at spawn whether a user runs at
	// full DES fidelity. Unsampled users never Emit — the hybrid fluid
	// tier carries their load analytically — but still count toward the
	// population. nil: every user is simulated.
	SampleUser func(user int) bool

	cfg   SessionConfig
	eng   des.Scheduler
	split *rng.Splitter

	users   map[int]*sessionUser
	order   []int // spawn order, for LIFO retirement
	nextID  int
	bgUsers int
	// pendingRetire counts simulated users marked retiring but not yet
	// departed: they still hold map slots until their next step boundary,
	// so population control must not count them as excess again.
	pendingRetire int
	jCum          []float64
	stopTick      bool
}

// NewSessions builds a session source. The splitter must be dedicated to
// this source (each user's stream is split from it by id).
func NewSessions(eng des.Scheduler, split *rng.Splitter, cfg SessionConfig, emit func(now des.Time, user, tree int)) (*Sessions, error) {
	if emit == nil {
		return nil, fmt.Errorf("workload: sessions need an emit callback")
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	s := &Sessions{
		Emit:  emit,
		cfg:   cfg,
		eng:   eng,
		split: split,
		users: make(map[int]*sessionUser),
	}
	s.jCum = make([]float64, len(cfg.Journeys))
	cum := 0.0
	for i, j := range cfg.Journeys {
		cum += math.Max(j.Weight, 0)
		s.jCum[i] = cum
	}
	return s, nil
}

// Config returns the validated session spec.
func (s *Sessions) Config() SessionConfig { return s.cfg }

// Start spawns the initial population and, when the population envelope is
// dynamic, begins the control poll.
func (s *Sessions) Start(at des.Time) {
	s.adjust(at)
	if len(s.cfg.Phases) > 0 || len(s.cfg.Crowds) > 0 {
		tick := s.cfg.PopTick
		if tick <= 0 {
			tick = 10 * des.Millisecond
		}
		var poll func(t des.Time)
		poll = func(t des.Time) {
			if s.stopTick {
				return
			}
			s.adjust(t)
			s.eng.Post(t+tick, poll)
		}
		s.eng.Post(at+tick, poll)
	}
}

// Stop halts population control and retires every user at its next step
// boundary (inflight requests drain normally).
func (s *Sessions) Stop() {
	s.stopTick = true
	for _, u := range s.users {
		if !u.retiring {
			u.retiring = true
			s.pendingRetire++
		}
	}
}

// ActiveUsers is the current population (simulated + background).
func (s *Sessions) ActiveUsers() int { return len(s.users) + s.bgUsers }

// BackgroundUsers is the count of users carried by the fluid tier.
func (s *Sessions) BackgroundUsers() int { return s.bgUsers }

// SimulatedUsers is the count of full-fidelity users.
func (s *Sessions) SimulatedUsers() int { return len(s.users) }

// adjust reconciles the live population with the target at time t.
// Retiring users still occupy their slots until the next step boundary —
// with think times longer than the poll tick that can span many ticks —
// so the deficit is measured against the settled population (live minus
// pending retirements); counting retirees as excess every tick would
// cascade a small ramp-down into retiring the whole population.
func (s *Sessions) adjust(now des.Time) {
	target := s.cfg.PopulationAt(now)
	cur := s.ActiveUsers() - s.pendingRetire
	for cur < target {
		s.spawn(now)
		cur++
	}
	if cur > target {
		s.retire(cur - target)
	}
}

func (s *Sessions) spawn(now des.Time) {
	id := s.nextID
	s.nextID++
	if s.SampleUser != nil && !s.SampleUser(id) {
		s.bgUsers++
		s.order = append(s.order, -id-1) // negative marker: background user
		return
	}
	u := &sessionUser{r: s.split.Stream("user", fmt.Sprint(id))}
	u.journey = s.pickJourney(u.r)
	u.step = 0
	if s.cfg.OnOff != nil {
		u.offAt = now + expTime(u.r, s.cfg.OnOff.MeanOn)
	}
	s.users[id] = u
	s.order = append(s.order, id)
	s.issueAfterThink(now, id, u)
}

// retire removes n users, newest first. Background users vanish
// immediately; simulated users depart at their next step boundary so
// inflight requests drain and conservation holds.
func (s *Sessions) retire(n int) {
	for i := len(s.order) - 1; i >= 0 && n > 0; i-- {
		key := s.order[i]
		if key < 0 { // background marker
			if s.bgUsers > 0 {
				s.bgUsers--
				s.order = append(s.order[:i], s.order[i+1:]...)
				n--
			}
			continue
		}
		u, ok := s.users[key]
		if !ok || u.retiring {
			continue
		}
		u.retiring = true
		s.pendingRetire++
		n--
	}
}

func (s *Sessions) pickJourney(r *rng.Source) int {
	return s.journeyAt(r.Float64() * s.jCum[len(s.jCum)-1])
}

// journeyAt maps a draw x ∈ [0, total) to the journey whose cumulative
// weight interval contains it. The search is strictly-greater so a draw
// landing exactly on a boundary belongs to the next interval — zero-weight
// journeys have empty intervals and are unreachable for every draw.
func (s *Sessions) journeyAt(x float64) int {
	return sort.Search(len(s.jCum), func(i int) bool { return s.jCum[i] > x })
}

// issueAfterThink schedules user id's next request after the current
// step's think time (plus any off-period pause).
func (s *Sessions) issueAfterThink(now des.Time, id int, u *sessionUser) {
	j := s.cfg.Journeys[u.journey]
	st := j.Steps[u.step]
	gap := des.Time(0)
	if st.Think != nil {
		gap = des.FromNanos(st.Think.Sample(u.r))
	}
	// A zero-think user completing instantly (e.g. shed at admission)
	// would otherwise re-issue at the same virtual instant forever,
	// wedging the event loop without advancing time.
	if gap <= 0 && u.issued && now <= u.lastIss {
		gap = des.Millisecond
	}
	if s.cfg.OnOff != nil && now+gap >= u.offAt {
		// Entering a silent period: pause for Exp(MeanOff), then start a
		// fresh on-period.
		pause := expTime(u.r, s.cfg.OnOff.MeanOff)
		gap += pause
		u.offAt = now + gap + expTime(u.r, s.cfg.OnOff.MeanOn)
	}
	s.eng.Post(now+gap, func(t des.Time) {
		if u.gone {
			return
		}
		if u.retiring {
			s.depart(id, u)
			return
		}
		u.inflight = true
		u.lastIss = t
		u.issued = true
		s.Emit(t, id, s.cfg.Journeys[u.journey].Steps[u.step].Tree)
	})
}

// Done advances user id past its current step: the sim layer calls it
// exactly once per completed (or abandoned) session request.
func (s *Sessions) Done(now des.Time, user int) {
	u, ok := s.users[user]
	if !ok || !u.inflight {
		return
	}
	u.inflight = false
	if u.retiring {
		s.depart(user, u)
		return
	}
	u.step++
	if u.step >= len(s.cfg.Journeys[u.journey].Steps) {
		u.journey = s.pickJourney(u.r)
		u.step = 0
	}
	s.issueAfterThink(now, user, u)
}

func (s *Sessions) depart(id int, u *sessionUser) {
	u.gone = true
	if u.retiring && s.pendingRetire > 0 {
		s.pendingRetire--
	}
	delete(s.users, id)
	for i := len(s.order) - 1; i >= 0; i-- {
		if s.order[i] == id {
			s.order = append(s.order[:i], s.order[i+1:]...)
			break
		}
	}
}

func expTime(r *rng.Source, mean des.Time) des.Time {
	d := des.FromNanos(r.ExpFloat64() * float64(mean))
	if d < des.Millisecond {
		d = des.Millisecond
	}
	return d
}
