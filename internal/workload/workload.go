// Package workload drives request arrivals into the simulator: open-loop
// generators (Poisson or deterministic gaps, optionally with a
// time-varying target rate such as a diurnal pattern), closed-loop clients
// with think times, and trace replay.
package workload

import (
	"fmt"
	"math"

	"uqsim/internal/des"
	"uqsim/internal/rng"
)

// Pattern yields the target arrival rate (requests per second) at a given
// virtual time, letting open-loop load vary over a run.
type Pattern interface {
	RateAt(t des.Time) float64
}

// Validator is implemented by patterns that can reject degenerate
// parameters. Config loaders call it to return errors; NewOpenLoop calls
// it to panic early on programmatic misuse, so a bad flash-crowd ramp or
// zero-period diurnal fails at construction instead of looping or dividing
// by zero mid-run.
type Validator interface {
	Validate() error
}

// ConstantRate is a fixed requests-per-second target.
type ConstantRate float64

// RateAt implements Pattern.
func (c ConstantRate) RateAt(des.Time) float64 { return float64(c) }

// Validate rejects negative or non-finite rates. Zero is allowed: it is a
// legitimate "no load" source (the generator idles and polls).
func (c ConstantRate) Validate() error {
	if math.IsNaN(float64(c)) || math.IsInf(float64(c), 0) {
		return fmt.Errorf("workload: constant rate must be finite, got %v", float64(c))
	}
	if c < 0 {
		return fmt.Errorf("workload: constant rate must be >= 0, got %v", float64(c))
	}
	return nil
}

// Diurnal is a sinusoidal day/night load pattern (the paper's Fig. 15):
// rate(t) = Base + Amplitude · sin(2π·t/Period + Phase), floored at Floor.
type Diurnal struct {
	Base      float64
	Amplitude float64
	Period    des.Time
	Phase     float64
	Floor     float64
}

// RateAt implements Pattern.
func (d Diurnal) RateAt(t des.Time) float64 {
	if d.Period <= 0 {
		return math.Max(d.Base, d.Floor)
	}
	r := d.Base + d.Amplitude*math.Sin(2*math.Pi*float64(t)/float64(d.Period)+d.Phase)
	return math.Max(r, d.Floor)
}

// Validate rejects a zero or negative period (the pattern would silently
// flatline at Base) and parameters that could yield negative or non-finite
// rates. The amplitude may exceed the base only when a nonnegative floor
// clamps the trough.
func (d Diurnal) Validate() error {
	for _, f := range []struct {
		name string
		v    float64
	}{{"base", d.Base}, {"amplitude", d.Amplitude}, {"phase", d.Phase}, {"floor", d.Floor}} {
		if math.IsNaN(f.v) || math.IsInf(f.v, 0) {
			return fmt.Errorf("workload: diurnal %s must be finite, got %v", f.name, f.v)
		}
	}
	if d.Period <= 0 {
		return fmt.Errorf("workload: diurnal period must be positive, got %v", d.Period)
	}
	if d.Base < 0 {
		return fmt.Errorf("workload: diurnal base must be >= 0, got %v", d.Base)
	}
	if d.Amplitude < 0 {
		return fmt.Errorf("workload: diurnal amplitude must be >= 0, got %v (shift the phase instead)", d.Amplitude)
	}
	if d.Floor < 0 {
		return fmt.Errorf("workload: diurnal floor must be >= 0, got %v", d.Floor)
	}
	return nil
}

// Burst is a two-state Markov-modulated (ON/OFF) rate pattern: the load
// alternates between BaseRate and BaseRate+BurstRate, with exponentially
// distributed state holding times. Bursty arrivals are a classic source of
// tail latency that a plain Poisson process understates.
//
// Burst is stateful (the current phase advances as RateAt is queried with
// increasing t); use one instance per generator.
type Burst struct {
	BaseRate  float64
	BurstRate float64
	// MeanOn / MeanOff are the expected burst / quiet durations.
	MeanOn  des.Time
	MeanOff des.Time
	// R drives the state holding times. Required.
	R *rng.Source

	inBurst   bool
	nextFlip  des.Time
	initiated bool
}

// RateAt implements Pattern. Calls must use nondecreasing t (the open-loop
// generator guarantees this).
func (b *Burst) RateAt(t des.Time) float64 {
	if b.R == nil {
		panic("workload: Burst needs a random source")
	}
	if !b.initiated {
		b.initiated = true
		b.nextFlip = t + b.holdTime()
	}
	for t >= b.nextFlip {
		b.inBurst = !b.inBurst
		b.nextFlip += b.holdTime()
	}
	if b.inBurst {
		return b.BaseRate + b.BurstRate
	}
	return b.BaseRate
}

// Validate rejects negative rates and nonpositive mean phase durations.
// RateAt substitutes defensively (a zero mean hold would otherwise flip
// states forever at one instant), but configuration should be rejected
// up front, not silently repaired.
func (b *Burst) Validate() error {
	for _, f := range []struct {
		name string
		v    float64
	}{{"base_rate", b.BaseRate}, {"burst_rate", b.BurstRate}} {
		if math.IsNaN(f.v) || math.IsInf(f.v, 0) {
			return fmt.Errorf("workload: burst %s must be finite, got %v", f.name, f.v)
		}
		if f.v < 0 {
			return fmt.Errorf("workload: burst %s must be >= 0, got %v", f.name, f.v)
		}
	}
	if b.MeanOn <= 0 {
		return fmt.Errorf("workload: burst mean_on must be positive, got %v", b.MeanOn)
	}
	if b.MeanOff <= 0 {
		return fmt.Errorf("workload: burst mean_off must be positive, got %v", b.MeanOff)
	}
	return nil
}

func (b *Burst) holdTime() des.Time {
	mean := b.MeanOff
	if b.inBurst {
		mean = b.MeanOn
	}
	if mean <= 0 {
		mean = des.Second
	}
	d := des.FromNanos(b.R.ExpFloat64() * float64(mean))
	if d < des.Millisecond {
		d = des.Millisecond
	}
	return d
}

// Process selects the interarrival process of an open-loop generator.
type Process int

// Arrival processes.
const (
	// Poisson draws exponential gaps — memoryless arrivals, the
	// standard open-loop model (and the paper's wrk2 configuration).
	Poisson Process = iota
	// Uniform emits deterministic gaps of exactly 1/rate.
	Uniform
)

// OpenLoop generates arrivals independently of completions. Above a
// system's capacity the backlog grows without bound — exactly the behaviour
// that makes open-loop load generators show the saturation hockey stick.
type OpenLoop struct {
	// Emit receives each arrival. Required.
	Emit func(now des.Time)
	// Pattern sets the target rate over time. Required.
	Pattern Pattern
	// Proc selects the interarrival process (default Poisson).
	Proc Process

	eng     des.Scheduler
	r       *rng.Source
	stopped bool
}

// NewOpenLoop builds a generator on the engine with a dedicated stream.
// Patterns implementing Validator are checked here; config loaders should
// validate first to surface the error instead of the panic.
func NewOpenLoop(eng des.Scheduler, r *rng.Source, pattern Pattern, emit func(now des.Time)) *OpenLoop {
	if pattern == nil || emit == nil {
		panic("workload: open-loop generator needs a pattern and an emit callback")
	}
	if v, ok := pattern.(Validator); ok {
		if err := v.Validate(); err != nil {
			panic(err.Error())
		}
	}
	return &OpenLoop{Emit: emit, Pattern: pattern, eng: eng, r: r}
}

// Start schedules the first arrival at (or after) virtual time at.
func (g *OpenLoop) Start(at des.Time) {
	g.stopped = false
	g.scheduleNext(at)
}

// Stop halts generation after the currently scheduled arrival is dropped.
func (g *OpenLoop) Stop() { g.stopped = true }

func (g *OpenLoop) scheduleNext(from des.Time) {
	rate := g.Pattern.RateAt(from)
	if rate <= 0 {
		// Idle period: poll again in 1ms of virtual time.
		g.eng.Post(from+des.Millisecond, func(t des.Time) {
			if !g.stopped {
				g.scheduleNext(t)
			}
		})
		return
	}
	meanGapNs := 1e9 / rate
	var gap des.Time
	switch g.Proc {
	case Uniform:
		gap = des.FromNanos(meanGapNs)
	default:
		gap = des.FromNanos(g.r.ExpFloat64() * meanGapNs)
	}
	if gap < 1 {
		gap = 1
	}
	g.eng.Post(from+gap, func(t des.Time) {
		if g.stopped {
			return
		}
		g.Emit(t)
		g.scheduleNext(t)
	})
}

// ClosedLoop models N users who each issue one request, wait for its
// completion, think, and repeat. The sim layer must call RequestDone for
// every completion it attributes to this generator.
type ClosedLoop struct {
	// Emit receives each arrival. Required.
	Emit func(now des.Time)
	// Think samples the per-user think time in nanoseconds (nil: 0).
	Think func(r *rng.Source) float64

	Users int

	eng des.Scheduler
	r   *rng.Source
}

// NewClosedLoop builds a closed-loop generator with the given user count.
func NewClosedLoop(eng des.Scheduler, r *rng.Source, users int, emit func(now des.Time)) *ClosedLoop {
	if users < 1 {
		panic("workload: closed loop needs at least one user")
	}
	if emit == nil {
		panic("workload: closed loop needs an emit callback")
	}
	return &ClosedLoop{Emit: emit, Users: users, eng: eng, r: r}
}

// Start issues each user's first request at virtual time at.
func (g *ClosedLoop) Start(at des.Time) {
	for i := 0; i < g.Users; i++ {
		g.eng.Post(at, func(t des.Time) { g.Emit(t) })
	}
}

// RequestDone schedules the issuing user's next request after think time.
func (g *ClosedLoop) RequestDone(now des.Time) {
	gap := des.Time(0)
	if g.Think != nil {
		gap = des.FromNanos(g.Think(g.r))
	}
	g.eng.Post(now+gap, func(t des.Time) { g.Emit(t) })
}

// Replay re-issues a recorded arrival timestamp trace.
type Replay struct {
	// Emit receives each arrival. Required.
	Emit func(now des.Time)

	eng   des.Scheduler
	trace []des.Time
}

// NewReplay builds a trace replayer; timestamps must be nondecreasing.
func NewReplay(eng des.Scheduler, trace []des.Time, emit func(now des.Time)) *Replay {
	if emit == nil {
		panic("workload: replay needs an emit callback")
	}
	for i := 1; i < len(trace); i++ {
		if trace[i] < trace[i-1] {
			panic("workload: replay trace must be nondecreasing")
		}
	}
	return &Replay{Emit: emit, eng: eng, trace: append([]des.Time(nil), trace...)}
}

// Start schedules every trace arrival.
func (g *Replay) Start() {
	for _, at := range g.trace {
		g.eng.Post(at, func(t des.Time) { g.Emit(t) })
	}
}
