package sim

import (
	"testing"

	"uqsim/internal/cluster"
	"uqsim/internal/des"
	"uqsim/internal/dist"
	"uqsim/internal/fault"
	"uqsim/internal/graph"
	"uqsim/internal/service"
	"uqsim/internal/workload"
)

// conserve asserts the request-conservation invariant: every arrival ends
// in exactly one bucket or is still in flight at the horizon.
func conserve(t *testing.T, rep *Report) {
	t.Helper()
	got := rep.Completions + rep.Timeouts + rep.Shed + rep.Dropped +
		rep.DeadlineExpired + rep.Unreachable + uint64(rep.InFlight)
	if rep.Arrivals != got {
		t.Fatalf("conservation violated: arrivals %d != completions %d + timeouts %d + shed %d + dropped %d + deadline %d + unreachable %d + inflight %d",
			rep.Arrivals, rep.Completions, rep.Timeouts, rep.Shed, rep.Dropped, rep.DeadlineExpired, rep.Unreachable, rep.InFlight)
	}
}

func TestKillInstanceDropsRequestsWithoutPolicy(t *testing.T) {
	s := buildSingle(t, dist.NewDeterministic(float64(100*des.Microsecond)), 1, 1000)
	err := s.InstallFaults(fault.Plan{Events: []fault.Event{
		{At: 500 * des.Millisecond, Kind: fault.KillInstance, Service: "svc", Instance: 0},
	}})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := s.Run(0, des.Second)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Dropped == 0 {
		t.Fatal("killing the only instance should drop requests")
	}
	// Roughly half the run is dead: completions ≈ first half only.
	if rep.Completions < 400 || rep.Completions > 600 {
		t.Fatalf("completions %d, want ≈500 (first half)", rep.Completions)
	}
	// Drops fail instantly, so nothing lingers in flight.
	if rep.InFlight > 1 {
		t.Fatalf("in flight %d after kill, want ≈0 (no leaked jobs)", rep.InFlight)
	}
	conserve(t, rep)
}

func TestRetriesMaskInstanceKill(t *testing.T) {
	s := New(Options{Seed: 42})
	s.AddMachine("m0", 16, cluster.FreqSpec{})
	if _, err := s.Deploy(service.SingleStage("svc", dist.NewDeterministic(float64(des.Millisecond))),
		RoundRobin,
		Placement{Machine: "m0", Cores: 1},
		Placement{Machine: "m0", Cores: 1},
	); err != nil {
		t.Fatal(err)
	}
	if err := s.SetTopology(graph.Linear("main", "svc")); err != nil {
		t.Fatal(err)
	}
	// Deterministic arrivals every 0.625ms, alternating instances: each
	// instance starts a 1ms job every 1.25ms (80% busy), so a kill at
	// t ≡ 0.7ms (mod 1.25ms) is guaranteed to strand in-flight work
	// whichever arrival phase instance 0 ended up on.
	s.SetClient(ClientConfig{Pattern: workload.ConstantRate(1600), Proc: workload.Uniform})
	if err := s.SetServicePolicy("svc", fault.Policy{
		Timeout:     20 * des.Millisecond,
		MaxRetries:  3,
		BackoffBase: des.Millisecond,
	}); err != nil {
		t.Fatal(err)
	}
	// Restart 5ms later: the survivor absorbs the brief 1.6× overload
	// without any attempt reaching the 20ms timeout.
	if err := s.InstallFaults(fault.Plan{Events: []fault.Event{
		{At: 500*des.Millisecond + 700*des.Microsecond, Kind: fault.KillInstance, Service: "svc", Instance: 0},
		{At: 505*des.Millisecond + 700*des.Microsecond, Kind: fault.RestartInstance, Service: "svc", Instance: 0},
	}}); err != nil {
		t.Fatal(err)
	}
	rep, err := s.Run(0, des.Second)
	if err != nil {
		t.Fatal(err)
	}
	// The kill's lost jobs are re-issued against the healthy instance:
	// availability holds at 100%, at the price of retries.
	if rep.Dropped != 0 || rep.Shed != 0 {
		t.Fatalf("retries should mask the kill: dropped %d shed %d", rep.Dropped, rep.Shed)
	}
	if rep.Retries == 0 {
		t.Fatal("the kill's in-flight jobs should have been retried")
	}
	if rep.Errors["svc"] == nil || rep.Errors["svc"].Dropped == 0 {
		t.Fatal("per-service error counters should record the dropped attempts")
	}
	conserve(t, rep)
}

func TestLoadSheddingBoundsQueue(t *testing.T) {
	// 2× overload with MaxQueue: excess arrivals are rejected immediately
	// instead of queueing without bound.
	s := buildSingle(t, dist.NewDeterministic(float64(100*des.Microsecond)), 1, 20000)
	if err := s.SetMaxQueue("svc", 100); err != nil {
		t.Fatal(err)
	}
	rep, err := s.Run(0, des.Second)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Shed == 0 {
		t.Fatal("2× overload with MaxQueue should shed")
	}
	// Goodput still pins near capacity.
	if rep.GoodputQPS < 9000 {
		t.Fatalf("goodput %v, want ≈10000", rep.GoodputQPS)
	}
	// The backlog is bounded by MaxQueue instead of ≈10k requests.
	if rep.InFlight > 150 {
		t.Fatalf("in flight %d, want ≤ MaxQueue+cores", rep.InFlight)
	}
	if rep.Instances[0].Shed != rep.Shed {
		t.Fatalf("instance shed %d vs report %d", rep.Instances[0].Shed, rep.Shed)
	}
	conserve(t, rep)
}

func TestBreakerFailsFastWhileDown(t *testing.T) {
	s := buildSingle(t, dist.NewDeterministic(float64(100*des.Microsecond)), 1, 1000)
	if err := s.SetServicePolicy("svc", fault.Policy{
		Timeout: 10 * des.Millisecond,
		Breaker: &fault.BreakerSpec{ErrorThreshold: 0.5, Window: 10, Cooldown: 100 * des.Millisecond},
	}); err != nil {
		t.Fatal(err)
	}
	if err := s.InstallFaults(fault.Plan{Events: []fault.Event{
		{At: 200 * des.Millisecond, Kind: fault.KillInstance, Service: "svc", Instance: 0},
	}}); err != nil {
		t.Fatal(err)
	}
	rep, err := s.Run(0, des.Second)
	if err != nil {
		t.Fatal(err)
	}
	// The first ~10 failures fill the breaker window; everything after
	// fails fast without touching the dead instance.
	if rep.BreakerFastFails == 0 {
		t.Fatal("breaker should fail calls fast once tripped")
	}
	if rep.Errors["svc"].BreakerOpen != rep.BreakerFastFails {
		t.Fatalf("breaker counters disagree: %d vs %d",
			rep.Errors["svc"].BreakerOpen, rep.BreakerFastFails)
	}
	if rep.Shed < rep.BreakerFastFails {
		t.Fatalf("breaker fast-fails %d must be a subset of shed %d",
			rep.BreakerFastFails, rep.Shed)
	}
	conserve(t, rep)
}

func TestEdgeTimeoutAbandonsSlowService(t *testing.T) {
	// Service time 50ms against a 5ms edge timeout: every attempt is
	// abandoned; the server keeps burning cycles on discarded work.
	s := buildSingle(t, dist.NewDeterministic(float64(50*des.Millisecond)), 1, 10)
	if err := s.SetServicePolicy("svc", fault.Policy{
		Timeout:     5 * des.Millisecond,
		MaxRetries:  1,
		BackoffBase: des.Millisecond,
	}); err != nil {
		t.Fatal(err)
	}
	rep, err := s.Run(0, des.Second)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Completions != 0 {
		t.Fatalf("nothing can finish within the timeout, got %d completions", rep.Completions)
	}
	if rep.Errors["svc"].Timeouts == 0 || rep.Retries == 0 {
		t.Fatalf("expected edge timeouts and retries, got %+v", rep.Errors["svc"])
	}
	// The abandoned attempts still occupied the server.
	if rep.Instances[0].Completed == 0 && rep.Instances[0].QueueLen == 0 {
		t.Fatal("abandoned work should still run (or queue) server-side")
	}
	conserve(t, rep)
}

func TestMachineCrashAndRecoveryWithNetwork(t *testing.T) {
	s := New(Options{Seed: 42})
	s.AddMachine("m0", 16, cluster.FreqSpec{})
	s.AddMachine("m1", 16, cluster.FreqSpec{})
	dep := func(name, mach string) {
		t.Helper()
		if _, err := s.Deploy(service.SingleStage(name, dist.NewDeterministic(float64(100*des.Microsecond))),
			RoundRobin, Placement{Machine: mach, Cores: 1}); err != nil {
			t.Fatal(err)
		}
	}
	dep("front", "m0")
	dep("back", "m1")
	if err := s.EnableNetwork(NetworkConfig{
		CoresPerMachine: 1,
		PerMsg:          dist.NewDeterministic(float64(10 * des.Microsecond)),
	}); err != nil {
		t.Fatal(err)
	}
	if err := s.SetTopology(graph.Linear("main", "front", "back")); err != nil {
		t.Fatal(err)
	}
	s.SetClient(ClientConfig{Pattern: workload.ConstantRate(1000), Proc: workload.Uniform})
	if err := s.InstallFaults(fault.Plan{Events: []fault.Event{
		{At: 300 * des.Millisecond, Kind: fault.CrashMachine, Machine: "m1"},
		{At: 500 * des.Millisecond, Kind: fault.RecoverMachine, Machine: "m1"},
	}}); err != nil {
		t.Fatal(err)
	}
	rep, err := s.Run(0, des.Second)
	if err != nil {
		t.Fatal(err)
	}
	// 200ms of the run is dark: ≈200 requests dropped, the rest complete.
	if rep.Dropped < 150 || rep.Dropped > 250 {
		t.Fatalf("dropped %d, want ≈200 (the crash window)", rep.Dropped)
	}
	if rep.Completions < 700 {
		t.Fatalf("completions %d, want ≈800 (service recovers)", rep.Completions)
	}
	if rep.InFlight > 2 {
		t.Fatalf("in flight %d, want ≈0 (no leaked jobs through the crash)", rep.InFlight)
	}
	conserve(t, rep)
}

func TestEdgeLatencyFaultAddsDelay(t *testing.T) {
	s := buildSingle(t, dist.NewDeterministic(float64(100*des.Microsecond)), 1, 100)
	s.clientCfg.Proc = workload.Uniform
	if err := s.InstallFaults(fault.Plan{Events: []fault.Event{
		{Kind: fault.EdgeLatency, Service: "svc", Extra: des.Millisecond},
	}}); err != nil {
		t.Fatal(err)
	}
	rep, err := s.Run(100*des.Millisecond, des.Second)
	if err != nil {
		t.Fatal(err)
	}
	// 1ms injected transit + 100µs service, no queueing at this load.
	if rep.Latency.Mean() != 1100*des.Microsecond {
		t.Fatalf("mean latency %v, want exactly 1.1ms", rep.Latency.Mean())
	}
	conserve(t, rep)
}

func TestEdgeLatencyWindowExpires(t *testing.T) {
	s := buildSingle(t, dist.NewDeterministic(float64(100*des.Microsecond)), 1, 100)
	s.clientCfg.Proc = workload.Uniform
	if err := s.InstallFaults(fault.Plan{Events: []fault.Event{
		{Kind: fault.EdgeLatency, Service: "svc", Extra: des.Millisecond,
			Until: 500 * des.Millisecond},
	}}); err != nil {
		t.Fatal(err)
	}
	// Measure only after the window: latency back to the service time.
	rep, err := s.Run(600*des.Millisecond, 400*des.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Latency.Mean() != 100*des.Microsecond {
		t.Fatalf("mean latency %v after the window, want 100µs", rep.Latency.Mean())
	}
}

func TestDegradeFreqSlowsService(t *testing.T) {
	s := New(Options{Seed: 42})
	s.AddMachine("m0", 16, cluster.DefaultFreqSpec)
	if _, err := s.Deploy(service.SingleStage("svc", dist.NewDeterministic(float64(100*des.Microsecond))),
		RoundRobin, Placement{Machine: "m0", Cores: 1}); err != nil {
		t.Fatal(err)
	}
	if err := s.SetTopology(graph.Linear("main", "svc")); err != nil {
		t.Fatal(err)
	}
	s.SetClient(ClientConfig{Pattern: workload.ConstantRate(100), Proc: workload.Uniform})
	if err := s.InstallFaults(fault.Plan{Events: []fault.Event{
		{Kind: fault.DegradeFreq, Machine: "m0", FreqMHz: 1300},
	}}); err != nil {
		t.Fatal(err)
	}
	rep, err := s.Run(0, des.Second)
	if err != nil {
		t.Fatal(err)
	}
	// Half the frequency: the 100µs stage takes 200µs.
	if rep.Latency.Mean() != 200*des.Microsecond {
		t.Fatalf("mean latency %v at half frequency, want 200µs", rep.Latency.Mean())
	}
}

func TestInstallFaultsValidatesReferences(t *testing.T) {
	s := buildSingle(t, dist.NewDeterministic(100), 1, 100)
	cases := []fault.Plan{
		{Events: []fault.Event{{Kind: fault.CrashMachine, Machine: "ghost"}}},
		{Events: []fault.Event{{Kind: fault.KillInstance, Service: "ghost"}}},
		{Events: []fault.Event{{Kind: fault.KillInstance, Service: "svc", Instance: 7}}},
		{Events: []fault.Event{{Kind: fault.EdgeLatency, Service: "ghost", Extra: 1}}},
		{Events: []fault.Event{{Kind: fault.KillInstance}}}, // invalid event
	}
	for i, plan := range cases {
		if err := s.InstallFaults(plan); err == nil {
			t.Fatalf("case %d: invalid plan accepted", i)
		}
	}
}

func TestPolicyValidationAtInstall(t *testing.T) {
	s := buildSingle(t, dist.NewDeterministic(100), 1, 100)
	if err := s.SetServicePolicy("ghost", fault.Policy{}); err == nil {
		t.Fatal("policy for unknown service accepted")
	}
	if err := s.SetServicePolicy("svc", fault.Policy{MaxRetries: 1}); err == nil {
		t.Fatal("retries without timeout accepted")
	}
	if err := s.SetNodePolicy("ghost", 0, fault.Policy{}); err == nil {
		t.Fatal("node policy for unknown tree accepted")
	}
	if err := s.SetNodePolicy("main", 9, fault.Policy{}); err == nil {
		t.Fatal("node policy for out-of-range node accepted")
	}
	if err := s.SetMaxQueue("ghost", 5); err == nil {
		t.Fatal("max queue for unknown service accepted")
	}
}
