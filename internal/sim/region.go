package sim

import (
	"fmt"

	"uqsim/internal/cluster"
	"uqsim/internal/des"
	"uqsim/internal/job"
	"uqsim/internal/netfault"
	"uqsim/internal/service"
)

// SetGeography installs the region layer of the topology: a disjoint
// machine→region assignment returned as a *cluster.Geography whose WAN
// model (SetDefaultWAN, SetLink) may then be configured before the run.
// With a geography installed, every dispatch prefers the nearest
// healthy region of the target deployment and cross-region hops pay the
// WAN delay. Each region is also registered as a failure domain, so
// crash_domain/recover_domain events and DomainUp gauges address
// regions by name. Must be called before any Deploy.
func (s *Sim) SetGeography(regions []cluster.Region) (*cluster.Geography, error) {
	if s.geo != nil {
		return nil, fmt.Errorf("sim: geography already set")
	}
	if len(s.depOrder) > 0 {
		return nil, fmt.Errorf("sim: set the geography before deploying services")
	}
	g, err := cluster.NewGeography(regions, func(m string) bool {
		_, ok := s.cluster.Machine(m)
		return ok
	})
	if err != nil {
		return nil, err
	}
	doms := make([]netfault.Domain, 0, len(regions))
	for _, r := range g.Regions() {
		if _, exists := s.domain(r.Name); exists {
			return nil, fmt.Errorf("sim: region %q collides with a declared failure domain", r.Name)
		}
		doms = append(doms, netfault.Domain{Name: r.Name, Machines: r.Machines})
	}
	s.geo = g
	s.geoDomains = doms
	return g, nil
}

// Geography reports the installed region layer (nil without one).
func (s *Sim) Geography() *cluster.Geography { return s.geo }

// RegionOf reports a machine's home region under the installed
// geography; "" without one or for an unassigned machine.
func (s *Sim) RegionOf(machine string) string {
	if s.geo == nil {
		return ""
	}
	return s.geo.RegionOf(machine)
}

// sourceRegion resolves the region a hop originates from: the sending
// machine's home region, or the client's configured region for entry
// hops (srcMachine == "").
func (s *Sim) sourceRegion(srcMachine string) string {
	if srcMachine == "" {
		return s.clientCfg.Region
	}
	return s.geo.RegionOf(srcMachine)
}

// ReplicationSpec configures geo-replication for one deployment.
type ReplicationSpec struct {
	// Lag is the replication delay: after a region is promoted, its
	// replicas serve stale reads for cross-origin traffic until Lag has
	// elapsed. Zero models synchronous replication (never stale).
	Lag des.Time
	// Regions lists the regions that must host at least one replica.
	// Empty: every region that hosts a replica of the deployment.
	Regions []string
}

// SetReplication declares a deployed service geo-replicated: its
// replicas form per-region sets, reads served outside the request's
// origin region count as stale until the serving region has been
// promoted (Deployment.Promote) for at least the replication lag, and
// the control plane's region failover promotes the nearest healthy
// region when the origin is lost. Call after Deploy.
func (s *Sim) SetReplication(svc string, spec ReplicationSpec) error {
	if s.geo == nil {
		return fmt.Errorf("sim: replication for %s needs a geography", svc)
	}
	dep, ok := s.deployments[svc]
	if !ok {
		return fmt.Errorf("sim: replication for undeployed service %q", svc)
	}
	if spec.Lag < 0 {
		return fmt.Errorf("sim: %s: negative replication lag %v", svc, spec.Lag)
	}
	regions := append([]string(nil), spec.Regions...)
	if len(regions) == 0 {
		seen := make(map[string]bool)
		for _, r := range dep.instRegion {
			if r != "" && !seen[r] {
				seen[r] = true
				regions = append(regions, r)
			}
		}
	}
	for _, r := range regions {
		if !s.geo.HasRegion(r) {
			return fmt.Errorf("sim: %s: replication references unknown region %q", svc, r)
		}
		hosted := false
		for _, have := range dep.instRegion {
			if have == r {
				hosted = true
				break
			}
		}
		if !hosted {
			return fmt.Errorf("sim: %s: replication region %q hosts no replica", svc, r)
		}
	}
	if len(regions) < 2 {
		return fmt.Errorf("sim: %s: replication needs replicas in at least two regions", svc)
	}
	dep.replicated = true
	dep.lag = spec.Lag
	dep.replRegions = regions
	if dep.promoted == nil {
		dep.promoted = make(map[string]des.Time)
	}
	return nil
}

// Replicated reports whether the deployment is geo-replicated.
func (d *Deployment) Replicated() bool { return d.replicated }

// ReplicationLag reports the configured replication lag.
func (d *Deployment) ReplicationLag() des.Time { return d.lag }

// ReplicaRegions reports the regions the replication spec covers.
func (d *Deployment) ReplicaRegions() []string { return d.replRegions }

// RegionHealthy reports the healthy instances homed in one region.
func (d *Deployment) RegionHealthy(region string) int { return len(d.byRegion[region]) }

// Promote marks a region as taking over serving at time now: its
// replicas become fresh once the replication lag has elapsed. Promoting
// an already-promoted region keeps the earlier clock.
func (d *Deployment) Promote(now des.Time, region string) {
	if d.promoted == nil {
		d.promoted = make(map[string]des.Time)
	}
	if _, ok := d.promoted[region]; !ok {
		d.promoted[region] = now
	}
}

// PromotedAt reports when a region was promoted, if it was.
func (d *Deployment) PromotedAt(region string) (des.Time, bool) {
	t, ok := d.promoted[region]
	return t, ok
}

// FreshAt reports whether reads served by the region's replicas are
// up to date at time now. Synchronously replicated deployments
// (lag == 0) and non-replicated ones are always fresh.
func (d *Deployment) FreshAt(now des.Time, region string) bool {
	if !d.replicated || d.lag == 0 {
		return true
	}
	pt, ok := d.promoted[region]
	return ok && now >= pt+d.lag
}

// Staleness reports how far the region's replicas lag behind at time
// now: zero when fresh, the remaining catch-up time while promoted, and
// the full configured lag while unpromoted. Monitors export it as the
// per-region replication-lag gauge.
func (d *Deployment) Staleness(now des.Time, region string) des.Time {
	if !d.replicated || d.lag == 0 {
		return 0
	}
	if pt, ok := d.promoted[region]; ok {
		if rem := pt + d.lag - now; rem > 0 {
			return rem
		}
		return 0
	}
	return d.lag
}

// regionCursor returns the region's dedicated round-robin cursor,
// creating it on first use.
func (d *Deployment) regionCursor(region string) *int {
	c, ok := d.regionRR[region]
	if !ok {
		c = new(int)
		if d.regionRR == nil {
			d.regionRR = make(map[string]*int)
		}
		d.regionRR[region] = c
	}
	return c
}

// pickRegional selects an instance by nearest-healthy-region order:
// the source region's own replicas first, then outward by WAN latency.
// Nil when the source has no region or only region-less instances are
// healthy — the caller falls back to the region-blind pick.
func (s *Sim) pickRegional(dep *Deployment, srcRegion string) *service.Instance {
	if srcRegion == "" || dep.byRegion == nil {
		return nil
	}
	for _, r := range s.geo.Nearest(srcRegion) {
		if hs := dep.byRegion[r]; len(hs) > 0 {
			return dep.pickFrom(hs, dep.regionCursor(r))
		}
	}
	return nil
}

// wanHop accounts the region crossing of one delivery and returns the
// WAN delay it must pay (zero intra-region or when an endpoint has no
// region). A cross-region serve of a geo-replicated deployment outside
// the request's origin region counts as stale while the serving region
// lags (FreshAt).
func (s *Sim) wanHop(now des.Time, j *job.Job, in *service.Instance, srcMachine string) des.Time {
	dstR := s.geo.RegionOf(in.Alloc.Machine.Name)
	if dstR == "" {
		return 0
	}
	srcR := s.sourceRegion(srcMachine)
	if srcR == "" {
		return 0
	}
	s.regionHops++
	if srcR == dstR {
		return 0
	}
	s.crossHops++
	if dep := s.deployments[in.BP.Name]; dep != nil && dep.replicated {
		if home := s.clientCfg.Region; home != "" && home != dstR && !dep.FreshAt(now, dstR) {
			s.staleReads++
		}
	}
	return s.geo.Delay(srcR, dstR, j.Req.SizeKB)
}

// CrossRegionStats reports delivery counts under the geography: hops
// where both endpoints have a region, the subset that crossed a region
// boundary, and the stale subset of cross-origin replicated reads.
func (s *Sim) CrossRegionStats() (hops, cross, stale uint64) {
	return s.regionHops, s.crossHops, s.staleReads
}

// CrossRegionFraction reports the fraction of region-to-region traffic
// that crossed a region boundary — the cross-region traffic gauge.
func (s *Sim) CrossRegionFraction() float64 {
	if s.regionHops == 0 {
		return 0
	}
	return float64(s.crossHops) / float64(s.regionHops)
}
