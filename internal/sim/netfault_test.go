package sim

import (
	"testing"

	"uqsim/internal/cluster"
	"uqsim/internal/des"
	"uqsim/internal/dist"
	"uqsim/internal/fault"
	"uqsim/internal/graph"
	"uqsim/internal/job"
	"uqsim/internal/netfault"
	"uqsim/internal/service"
	"uqsim/internal/workload"
)

// twoMachineChain builds a front tier on m0 calling a backend on m1 — the
// minimal topology with a cross-machine RPC edge for network faults to cut.
func twoMachineChain(t *testing.T, seed uint64) *Sim {
	t.Helper()
	s := New(Options{Seed: seed})
	s.AddMachine("m0", 4, cluster.FreqSpec{})
	s.AddMachine("m1", 2, cluster.FreqSpec{})
	if _, err := s.Deploy(service.SingleStage("front", dist.NewDeterministic(float64(100*des.Microsecond))),
		RoundRobin, Placement{Machine: "m0", Cores: 2}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Deploy(service.SingleStage("backend", dist.NewExponential(float64(des.Millisecond))),
		RoundRobin, Placement{Machine: "m1", Cores: 1}); err != nil {
		t.Fatal(err)
	}
	if err := s.SetTopology(graph.Linear("main", "front", "backend")); err != nil {
		t.Fatal(err)
	}
	s.SetClient(ClientConfig{Pattern: workload.ConstantRate(500)})
	return s
}

// TestPartitionFailFast: while a symmetric partition separates the tiers,
// cross-machine dispatch fails fast into the unreachable bucket; after the
// heal, requests complete again and nothing leaks.
func TestPartitionFailFast(t *testing.T) {
	s := twoMachineChain(t, 1)
	if err := s.InstallFaults(fault.Plan{Events: []fault.Event{{
		At: 200 * des.Millisecond, Kind: fault.PartitionStart, Until: 400 * des.Millisecond,
		GroupA: []string{"m0"}, GroupB: []string{"m1"},
	}}}); err != nil {
		t.Fatal(err)
	}
	var lastOK des.Time
	s.OnRequestDone = func(now des.Time, req *job.Request) {
		if req.Outcome == job.OutcomeOK {
			lastOK = now
		}
	}
	rep, err := s.Run(0, des.Second)
	if err != nil {
		t.Fatal(err)
	}
	conserve(t, rep)
	if rep.Unreachable == 0 {
		t.Fatal("partition did not produce unreachable requests")
	}
	if got := s.Net().Unreachable(); got < rep.Unreachable {
		t.Fatalf("attempt-level unreachable %d < request-level %d", got, rep.Unreachable)
	}
	if lastOK < 900*des.Millisecond {
		t.Fatalf("no completions after the heal (last at %v)", lastOK)
	}
	if rep.LinkDrops != 0 || rep.LinkDups != 0 {
		t.Fatalf("no gray links installed, yet drops=%d dups=%d", rep.LinkDrops, rep.LinkDups)
	}
}

// TestOneWayPartition: an asymmetric cut only severs dispatch in its own
// direction. Cutting backend→front (a direction no RPC traverses) must be
// harmless; cutting front→backend must not be.
func TestOneWayPartition(t *testing.T) {
	run := func(groupA, groupB string) *Report {
		s := twoMachineChain(t, 1)
		if err := s.InstallFaults(fault.Plan{Events: []fault.Event{{
			At: 100 * des.Millisecond, Kind: fault.PartitionStart, Until: 300 * des.Millisecond,
			GroupA: []string{groupA}, GroupB: []string{groupB}, OneWay: true,
		}}}); err != nil {
			t.Fatal(err)
		}
		rep, err := s.Run(0, 500*des.Millisecond)
		if err != nil {
			t.Fatal(err)
		}
		conserve(t, rep)
		return rep
	}
	if rep := run("m0", "m1"); rep.Unreachable == 0 {
		t.Fatal("one-way cut in the dispatch direction had no effect")
	}
	if rep := run("m1", "m0"); rep.Unreachable != 0 {
		t.Fatalf("one-way cut in the reverse direction failed %d requests", rep.Unreachable)
	}
}

// TestGrayLinkDrop: a lossy front→backend link makes attempts vanish
// in-flight; with a retry policy most requests still complete, the drop
// counter advances, and conservation holds.
func TestGrayLinkDrop(t *testing.T) {
	s := twoMachineChain(t, 2)
	if err := s.SetServicePolicy("backend", fault.Policy{
		Timeout: 20 * des.Millisecond, MaxRetries: 3, BackoffBase: des.Millisecond,
	}); err != nil {
		t.Fatal(err)
	}
	if err := s.InstallFaults(fault.Plan{Events: []fault.Event{{
		At: 0, Kind: fault.SetLink, Src: "m0", Dst: "m1", Drop: 0.2,
	}}}); err != nil {
		t.Fatal(err)
	}
	rep, err := s.Run(0, des.Second)
	if err != nil {
		t.Fatal(err)
	}
	conserve(t, rep)
	if rep.LinkDrops == 0 {
		t.Fatal("lossy link dropped nothing")
	}
	if rep.Retries == 0 {
		t.Fatal("drops never forced a retry")
	}
	if rep.Completions == 0 {
		t.Fatal("no completions despite retries")
	}
}

// TestGrayLinkDup: a duplicating link delivers extra copies; the duplicate
// work is discarded without double-completing any request.
func TestGrayLinkDup(t *testing.T) {
	s := twoMachineChain(t, 3)
	if err := s.InstallFaults(fault.Plan{Events: []fault.Event{{
		At: 0, Kind: fault.SetLink, Src: "m0", Dst: "m1", Dup: 0.3,
	}}}); err != nil {
		t.Fatal(err)
	}
	rep, err := s.Run(0, des.Second)
	if err != nil {
		t.Fatal(err)
	}
	conserve(t, rep)
	if rep.LinkDups == 0 {
		t.Fatal("duplicating link duplicated nothing")
	}
	if rep.Completions == 0 {
		t.Fatal("no completions")
	}
	if rep.Completions > rep.Arrivals {
		t.Fatalf("duplicates double-completed: %d completions for %d arrivals",
			rep.Completions, rep.Arrivals)
	}
}

// TestDomainCrashStagger: a correlated domain crash takes every machine in
// the rack down with the configured stagger, the per-domain gauge tracks
// it, and the staggered recovery brings the domain back to fully up.
func TestDomainCrashStagger(t *testing.T) {
	s := New(Options{Seed: 4})
	s.AddMachine("m0", 2, cluster.FreqSpec{})
	s.AddMachine("m1", 2, cluster.FreqSpec{})
	s.AddMachine("m2", 2, cluster.FreqSpec{})
	if _, err := s.Deploy(service.SingleStage("svc", dist.NewExponential(float64(des.Millisecond))),
		RoundRobin,
		Placement{Machine: "m0", Cores: 1},
		Placement{Machine: "m1", Cores: 1},
		Placement{Machine: "m2", Cores: 1}); err != nil {
		t.Fatal(err)
	}
	if err := s.SetTopology(graph.Linear("main", "svc")); err != nil {
		t.Fatal(err)
	}
	s.SetClient(ClientConfig{Pattern: workload.ConstantRate(300)})
	if err := s.SetDomains([]netfault.Domain{{Name: "rack", Machines: []string{"m1", "m2"}}}); err != nil {
		t.Fatal(err)
	}
	const crash = 100 * des.Millisecond
	const stagger = 10 * des.Millisecond
	if err := s.InstallFaults(fault.Plan{Events: []fault.Event{
		{At: crash, Kind: fault.CrashDomain, Domain: "rack", Stagger: stagger},
		{At: 300 * des.Millisecond, Kind: fault.RecoverDomain, Domain: "rack", Stagger: stagger},
	}}); err != nil {
		t.Fatal(err)
	}
	samples := make(map[des.Time]float64)
	for _, at := range []des.Time{
		crash + stagger/2,     // m1 down, m2 still up
		crash + 2*stagger,     // both down
		500 * des.Millisecond, // both recovered
	} {
		at := at
		s.Engine().At(at, func(des.Time) { samples[at] = s.DomainUp("rack") })
	}
	rep, err := s.Run(0, des.Second)
	if err != nil {
		t.Fatal(err)
	}
	conserve(t, rep)
	if got := samples[crash+stagger/2]; got != 0.5 {
		t.Fatalf("mid-stagger domain up = %v, want 0.5", got)
	}
	if got := samples[crash+2*stagger]; got != 0 {
		t.Fatalf("post-crash domain up = %v, want 0", got)
	}
	if got := samples[500*des.Millisecond]; got != 1 {
		t.Fatalf("post-recovery domain up = %v, want 1", got)
	}
	if rep.Dropped == 0 {
		t.Fatal("domain crash dropped no in-flight work")
	}
}

// TestPartitionDeterminism: two identical runs with partitions, gray
// links, and a domain crash active must produce identical fingerprints.
func TestPartitionDeterminism(t *testing.T) {
	run := func() string {
		s := twoMachineChain(t, 7)
		if err := s.SetServicePolicy("backend", fault.Policy{
			Timeout: 20 * des.Millisecond, MaxRetries: 2, BackoffBase: des.Millisecond,
		}); err != nil {
			t.Fatal(err)
		}
		if err := s.InstallFaults(fault.Plan{Events: []fault.Event{
			{At: 100 * des.Millisecond, Kind: fault.PartitionStart, Until: 250 * des.Millisecond,
				GroupA: []string{"m0"}, GroupB: []string{"m1"}},
			{At: 0, Kind: fault.SetLink, Src: "m0", Dst: "m1", Drop: 0.1, Dup: 0.1},
		}}); err != nil {
			t.Fatal(err)
		}
		rep, err := s.Run(0, 600*des.Millisecond)
		if err != nil {
			t.Fatal(err)
		}
		conserve(t, rep)
		return reportFingerprint(rep)
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("netfault runs diverge\n a: %s\n b: %s", a, b)
	}
}
