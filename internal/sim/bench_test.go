package sim

import (
	"testing"

	"uqsim/internal/cluster"
	"uqsim/internal/des"
	"uqsim/internal/dist"
	"uqsim/internal/service"
)

// benchDeployment builds an 8-instance deployment and optionally degrades
// its healthy set (one killed, one ejected) so the benchmark exercises the
// non-trivial picking path.
func benchDeployment(b testing.TB, lb Policy, degraded bool) *Deployment {
	b.Helper()
	s := New(Options{Seed: 7})
	s.AddMachine("m0", 16, cluster.FreqSpec{})
	placements := make([]Placement, 8)
	for i := range placements {
		placements[i] = Placement{Machine: "m0", Cores: 1}
	}
	dep, err := s.Deploy(service.SingleStage("svc", dist.NewDeterministic(float64(des.Millisecond))),
		lb, placements...)
	if err != nil {
		b.Fatal(err)
	}
	if degraded {
		s.killInstance(0, dep, dep.Instances[0])
		dep.Eject(dep.Instances[1])
	}
	return dep
}

// BenchmarkPickHealthy measures the load-balancer picking path. Before the
// incrementally maintained healthy set, the degraded cases allocated a
// fresh slice per dispatch; all cases must now report 0 allocs/op.
func BenchmarkPickHealthy(b *testing.B) {
	cases := []struct {
		name     string
		lb       Policy
		degraded bool
	}{
		{"rr-all-healthy", RoundRobin, false},
		{"rr-degraded", RoundRobin, true},
		{"random-degraded", Random, true},
		{"leastloaded-degraded", LeastLoaded, true},
	}
	for _, c := range cases {
		b.Run(c.name, func(b *testing.B) {
			dep := benchDeployment(b, c.lb, c.degraded)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if dep.pickHealthy() == nil {
					b.Fatal("no healthy instance")
				}
			}
		})
	}
}

// TestPickHealthyNoAllocs pins the satellite fix: the degraded picking
// path must not allocate.
func TestPickHealthyNoAllocs(t *testing.T) {
	dep := benchDeployment(t, RoundRobin, true)
	allocs := testing.AllocsPerRun(1000, func() {
		if dep.pickHealthy() == nil {
			t.Fatal("no healthy instance")
		}
	})
	if allocs != 0 {
		t.Fatalf("pickHealthy allocates %.1f times per pick; want 0", allocs)
	}
}
