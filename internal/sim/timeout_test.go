package sim

import (
	"testing"

	"uqsim/internal/cluster"
	"uqsim/internal/des"
	"uqsim/internal/dist"
	"uqsim/internal/graph"
	"uqsim/internal/service"
)

// slowSingle builds a deliberately saturated one-core service so requests
// queue long enough to trip the client timeout.
func slowSingle(t *testing.T, qps float64, timeout des.Time, retries int) *Sim {
	t.Helper()
	s := buildSingle(t, dist.NewDeterministic(float64(des.Millisecond)), 1, qps)
	cc := s.Client()
	cc.Timeout = timeout
	cc.MaxRetries = retries
	s.SetClient(cc)
	return s
}

func TestTimeoutsCountedUnderOverload(t *testing.T) {
	// Capacity 1000 QPS, offered 2000, patience 20ms: the backlog grows
	// ~1ms per ms, so within ~40ms every new request times out.
	s := slowSingle(t, 2000, 20*des.Millisecond, 0)
	rep, err := s.Run(0, des.Second)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Timeouts == 0 {
		t.Fatal("overloaded run should time out requests")
	}
	if rep.Timeouts+rep.Completions < 1800 {
		t.Fatalf("accounting gap: %d timeouts + %d completions", rep.Timeouts, rep.Completions)
	}
	// Client-observed latency is capped at the timeout.
	if rep.Latency.Max() > 20*des.Millisecond {
		t.Fatalf("latency max %v exceeds patience", rep.Latency.Max())
	}
}

func TestNoTimeoutsUnderLightLoad(t *testing.T) {
	s := slowSingle(t, 100, 20*des.Millisecond, 0)
	rep, err := s.Run(0, des.Second)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Timeouts != 0 {
		t.Fatalf("light load should not time out (%d)", rep.Timeouts)
	}
	if rep.Completions == 0 {
		t.Fatal("no completions")
	}
}

func TestRetriesAmplifyLoad(t *testing.T) {
	// Same overload with retries: the retry storm adds arrivals.
	base := slowSingle(t, 2000, 20*des.Millisecond, 0)
	baseRep, err := base.Run(0, des.Second)
	if err != nil {
		t.Fatal(err)
	}
	retry := slowSingle(t, 2000, 20*des.Millisecond, 2)
	retryRep, err := retry.Run(0, des.Second)
	if err != nil {
		t.Fatal(err)
	}
	if retryRep.Arrivals <= baseRep.Arrivals+500 {
		t.Fatalf("retries should add load: %d vs %d arrivals",
			retryRep.Arrivals, baseRep.Arrivals)
	}
}

func TestTimeoutClosedLoopUserMovesOn(t *testing.T) {
	// A closed-loop user whose request times out issues the next request
	// at the timeout instant, not at eventual completion.
	s := New(Options{Seed: 21})
	s.AddMachine("m0", 4, cluster.FreqSpec{})
	if _, err := s.Deploy(
		service.SingleStage("svc", dist.NewDeterministic(float64(50*des.Millisecond))),
		RoundRobin, Placement{Machine: "m0", Cores: 1}); err != nil {
		t.Fatal(err)
	}
	if err := s.SetTopology(graph.Linear("main", "svc")); err != nil {
		t.Fatal(err)
	}
	s.SetClient(ClientConfig{
		ClosedUsers: 1,
		Timeout:     10 * des.Millisecond,
	})
	rep, err := s.Run(0, des.Second)
	if err != nil {
		t.Fatal(err)
	}
	// Service takes 50ms but patience is 10ms: the user cycles every
	// ~10ms (≈100 attempts/s), all timing out.
	if rep.Timeouts < 15 {
		t.Fatalf("timeouts = %d, want the user to cycle on timeouts", rep.Timeouts)
	}
}
