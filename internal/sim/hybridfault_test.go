package sim

import (
	"testing"

	"uqsim/internal/cluster"
	"uqsim/internal/des"
	"uqsim/internal/dist"
	"uqsim/internal/fault"
	"uqsim/internal/graph"
	"uqsim/internal/hybrid"
	"uqsim/internal/service"
	"uqsim/internal/workload"
)

// buildTwoTierHybrid builds front (m0) → backend (m1) with a hybrid
// fidelity split, the setup the fluid-tier fault-coupling tests drive.
func buildTwoTierHybrid(t *testing.T, qps, sampleRate float64) *Sim {
	t.Helper()
	s := New(Options{Seed: 77})
	s.AddMachine("m0", 8, cluster.FreqSpec{})
	s.AddMachine("m1", 8, cluster.FreqSpec{})
	if _, err := s.Deploy(service.SingleStage("front", dist.NewDeterministic(float64(des.Millisecond))), RoundRobin,
		Placement{Machine: "m0", Cores: 4}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Deploy(service.SingleStage("backend", dist.NewDeterministic(float64(2*des.Millisecond))), RoundRobin,
		Placement{Machine: "m1", Cores: 4}); err != nil {
		t.Fatal(err)
	}
	if err := s.SetTopology(graph.Linear("main", "front", "backend")); err != nil {
		t.Fatal(err)
	}
	s.SetClient(ClientConfig{Pattern: workload.ConstantRate(qps)})
	s.SetHybrid(hybrid.Config{SampleRate: sampleRate})
	return s
}

func checkBackgroundBooks(t *testing.T, rep *Report) {
	t.Helper()
	if rep.BackgroundArrivals != rep.BackgroundCompletions+rep.BackgroundShed+rep.BackgroundUnreachable {
		t.Fatalf("background conservation: arr=%d comp=%d shed=%d unreach=%d",
			rep.BackgroundArrivals, rep.BackgroundCompletions, rep.BackgroundShed, rep.BackgroundUnreachable)
	}
	var byCause uint64
	for _, n := range rep.BackgroundShedByCause {
		byCause += n
	}
	if lost := rep.BackgroundShed + rep.BackgroundUnreachable; byCause != lost {
		t.Fatalf("attribution sum %d != shed+unreach %d (%v)", byCause, lost, rep.BackgroundShedByCause)
	}
}

// TestHybridPartitionBackgroundUnreachable: a partition severing the
// front→backend edge must route background flow into the Unreachable
// bucket under the partition cause, starting at the fault boundary
// itself (the window edges are deliberately off the 50ms epoch grid).
func TestHybridPartitionBackgroundUnreachable(t *testing.T) {
	s := buildTwoTierHybrid(t, 500, 0.25)
	if err := s.InstallFaults(fault.Plan{Events: []fault.Event{
		{At: 473 * des.Millisecond, Kind: fault.PartitionStart,
			GroupA: []string{"m0"}, GroupB: []string{"m1"},
			Until: 911 * des.Millisecond},
	}}); err != nil {
		t.Fatal(err)
	}
	rep, err := s.Run(0, 2*des.Second)
	if err != nil {
		t.Fatal(err)
	}
	checkBackgroundBooks(t, rep)
	// 438ms of severed backend edge at 500 qps · 0.75 background: every
	// background request in the window is unreachable. Epoch-grid-only
	// re-solves would be ~20 requests off; event-driven lands exact.
	const want = uint64(164) // 0.438s · 500 qps · 0.75 background
	if rep.BackgroundUnreachable < want-3 || rep.BackgroundUnreachable > want+3 {
		t.Fatalf("background unreachable %d, want ~%d (fault boundaries not event-driven?)", rep.BackgroundUnreachable, want)
	}
	if got := rep.BackgroundShedByCause[hybrid.CausePartition]; got != rep.BackgroundUnreachable+rep.BackgroundShed {
		t.Fatalf("partition attribution %d, want %d (%v)",
			got, rep.BackgroundUnreachable, rep.BackgroundShedByCause)
	}
}

// TestHybridGrayLinkThinsBackground: a lossy link on the backend edge
// books drop-probability-scaled background flow as unreachable under the
// gray_link cause.
func TestHybridGrayLinkBackground(t *testing.T) {
	s := buildTwoTierHybrid(t, 500, 0.25)
	if err := s.InstallFaults(fault.Plan{Events: []fault.Event{
		{At: 500 * des.Millisecond, Kind: fault.SetLink,
			Src: "m0", Dst: "m1", Drop: 0.2,
			Until: 1500 * des.Millisecond},
	}}); err != nil {
		t.Fatal(err)
	}
	rep, err := s.Run(0, 2*des.Second)
	if err != nil {
		t.Fatal(err)
	}
	checkBackgroundBooks(t, rep)
	// One second at 20% drop: 500·0.75·0.2 = 75 background requests.
	const want = uint64(500 * 0.75 * 0.2)
	if rep.BackgroundUnreachable < want-3 || rep.BackgroundUnreachable > want+3 {
		t.Fatalf("background unreachable %d, want ~%d", rep.BackgroundUnreachable, want)
	}
	if got := rep.BackgroundShedByCause[hybrid.CauseGrayLink]; got == 0 {
		t.Fatalf("gray-link attribution missing: %v", rep.BackgroundShedByCause)
	}
}

// TestHybridDVFSDegradeShedsByCause: underclocking the only machine of a
// near-capacity service halves effective µ, saturates the fluid tier, and
// the shed flow books under degrade_freq.
func TestHybridDVFSDegradeShedsByCause(t *testing.T) {
	s := New(Options{Seed: 9})
	s.AddMachine("m0", 8, cluster.FreqSpec{MinMHz: 1000, MaxMHz: 2000, StepMHz: 100})
	if _, err := s.Deploy(service.SingleStage("svc", dist.NewDeterministic(float64(10*des.Millisecond))), RoundRobin,
		Placement{Machine: "m0", Cores: 4}); err != nil {
		t.Fatal(err)
	}
	if err := s.SetTopology(graph.Linear("main", "svc")); err != nil {
		t.Fatal(err)
	}
	s.SetClient(ClientConfig{Pattern: workload.ConstantRate(300)}) // rho 0.75 nominal
	s.SetHybrid(hybrid.Config{SampleRate: 0.25})
	if err := s.InstallFaults(fault.Plan{Events: []fault.Event{
		{At: 500 * des.Millisecond, Kind: fault.DegradeFreq, Machine: "m0",
			FreqMHz: 1000, Until: 1500 * des.Millisecond},
	}}); err != nil {
		t.Fatal(err)
	}
	rep, err := s.Run(0, 2*des.Second)
	if err != nil {
		t.Fatal(err)
	}
	checkBackgroundBooks(t, rep)
	if rep.BackgroundShed == 0 {
		t.Fatal("DVFS-saturated run shed no background flow")
	}
	// Degraded capacity 200 of 300 offered for 1s: a third of the window's
	// 225 background arrivals shed.
	const want = uint64(300 * 0.75 / 3)
	if rep.BackgroundShed < want-5 || rep.BackgroundShed > want+5 {
		t.Fatalf("background shed %d, want ~%d", rep.BackgroundShed, want)
	}
	if got := rep.BackgroundShedByCause[hybrid.CauseDegradeFreq]; got == 0 {
		t.Fatalf("degrade_freq attribution missing: %v", rep.BackgroundShedByCause)
	}
}

// TestHybridRetryAmplificationSheds: a resilience policy with a tight
// timeout saturates the backend in mean field even though one attempt per
// request would be stable — the metastable retry storm, visible in
// background accounting as retry_storm shed.
func TestHybridRetryAmplificationSheds(t *testing.T) {
	s := buildTwoTierHybrid(t, 1500, 0.25) // backend rho 0.75 at one attempt
	if err := s.SetServicePolicy("backend", fault.Policy{
		Timeout:     des.Millisecond / 2,
		MaxRetries:  5,
		BackoffBase: des.Millisecond,
	}); err != nil {
		t.Fatal(err)
	}
	rep, err := s.Run(0, 2*des.Second)
	if err != nil {
		t.Fatal(err)
	}
	checkBackgroundBooks(t, rep)
	if rep.BackgroundShed == 0 {
		t.Fatal("retry storm shed no background flow")
	}
	if got := rep.BackgroundShedByCause[hybrid.CauseRetryStorm]; got == 0 {
		t.Fatalf("retry_storm attribution missing: %v", rep.BackgroundShedByCause)
	}
}

// TestHybridFaultsInertAtFullRate: with sample rate 1.0 the fluid tier
// does not exist, fault boundaries resolve nothing, and the report's
// background buckets stay empty — the inertness contract extended to the
// fault-coupling paths.
func TestHybridFaultsInertAtFullRate(t *testing.T) {
	s := buildTwoTierHybrid(t, 200, 1.0)
	if err := s.InstallFaults(fault.Plan{Events: []fault.Event{
		{At: 473 * des.Millisecond, Kind: fault.PartitionStart,
			GroupA: []string{"m0"}, GroupB: []string{"m1"},
			Until: 911 * des.Millisecond},
		{At: 200 * des.Millisecond, Kind: fault.SetLink, Src: "m0", Dst: "m1",
			Drop: 0.1, Until: 300 * des.Millisecond},
	}}); err != nil {
		t.Fatal(err)
	}
	rep, err := s.Run(0, des.Second)
	if err != nil {
		t.Fatal(err)
	}
	if rep.BackgroundArrivals != 0 || rep.BackgroundUnreachable != 0 || rep.BackgroundShedByCause != nil {
		t.Fatalf("sample rate 1.0 accrued background state: arr=%d unreach=%d by=%v",
			rep.BackgroundArrivals, rep.BackgroundUnreachable, rep.BackgroundShedByCause)
	}
}
