package sim

import (
	"math"
	"testing"

	"uqsim/internal/cluster"
	"uqsim/internal/des"
	"uqsim/internal/dist"
	"uqsim/internal/graph"
	"uqsim/internal/job"
	"uqsim/internal/service"
	"uqsim/internal/workload"
)

// buildSingle builds a one-service simulation: "svc" with the given
// per-job sampler, one instance with cores cores.
func buildSingle(t *testing.T, cost dist.Sampler, cores int, qps float64) *Sim {
	t.Helper()
	s := New(Options{Seed: 42})
	s.AddMachine("m0", 16, cluster.FreqSpec{})
	if _, err := s.Deploy(service.SingleStage("svc", cost), RoundRobin,
		Placement{Machine: "m0", Cores: cores}); err != nil {
		t.Fatal(err)
	}
	if err := s.SetTopology(graph.Linear("main", "svc")); err != nil {
		t.Fatal(err)
	}
	s.SetClient(ClientConfig{Pattern: workload.ConstantRate(qps)})
	return s
}

func TestRunRequiresSetup(t *testing.T) {
	s := New(Options{Seed: 1})
	if _, err := s.Run(0, des.Second); err == nil {
		t.Fatal("run without topology should fail")
	}
	s.AddMachine("m0", 4, cluster.FreqSpec{})
	if _, err := s.Deploy(service.SingleStage("svc", dist.NewDeterministic(10)), RoundRobin,
		Placement{Machine: "m0", Cores: 1}); err != nil {
		t.Fatal(err)
	}
	if err := s.SetTopology(graph.Linear("main", "svc")); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run(0, des.Second); err == nil {
		t.Fatal("run without client should fail")
	}
}

func TestDeployErrors(t *testing.T) {
	s := New(Options{Seed: 1})
	s.AddMachine("m0", 2, cluster.FreqSpec{})
	bp := service.SingleStage("svc", dist.NewDeterministic(10))
	if _, err := s.Deploy(bp, RoundRobin); err == nil {
		t.Fatal("no placements should fail")
	}
	if _, err := s.Deploy(bp, RoundRobin, Placement{Machine: "ghost", Cores: 1}); err == nil {
		t.Fatal("unknown machine should fail")
	}
	if _, err := s.Deploy(bp, RoundRobin, Placement{Machine: "m0", Cores: 1}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Deploy(bp, RoundRobin, Placement{Machine: "m0", Cores: 1}); err == nil {
		t.Fatal("duplicate deployment should fail")
	}
}

func TestTopologyRequiresDeployedServices(t *testing.T) {
	s := New(Options{Seed: 1})
	s.AddMachine("m0", 2, cluster.FreqSpec{})
	if err := s.SetTopology(graph.Linear("main", "ghost")); err == nil {
		t.Fatal("undeployed service should fail")
	}
}

func TestTopologyPathResolution(t *testing.T) {
	s := New(Options{Seed: 1})
	s.AddMachine("m0", 4, cluster.FreqSpec{})
	bp := &service.Blueprint{
		Name: "svc",
		Stages: []service.StageSpec{
			{Name: "a", PerJob: dist.NewDeterministic(100)},
			{Name: "b", PerJob: dist.NewDeterministic(10000)},
		},
		Paths: []service.PathSpec{
			{Name: "read", Stages: []int{0}},
			{Name: "write", Stages: []int{0, 1}},
		},
	}
	if _, err := s.Deploy(bp, RoundRobin, Placement{Machine: "m0", Cores: 1}); err != nil {
		t.Fatal(err)
	}
	topo := graph.Linear("main", "svc")
	topo.Trees[0].Nodes[0].ServicePath = "write"
	if err := s.SetTopology(topo); err != nil {
		t.Fatal(err)
	}
	if got := s.pathIDs[0][0][0]; got != 1 {
		t.Fatalf("resolved path %d, want 1", got)
	}
	// Unknown path name.
	s2 := New(Options{Seed: 1})
	s2.AddMachine("m0", 4, cluster.FreqSpec{})
	if _, err := s2.Deploy(bp, RoundRobin, Placement{Machine: "m0", Cores: 1}); err != nil {
		t.Fatal(err)
	}
	topo2 := graph.Linear("main", "svc")
	topo2.Trees[0].Nodes[0].ServicePath = "nope"
	if err := s2.SetTopology(topo2); err == nil {
		t.Fatal("unknown path should fail")
	}
}

func TestLowLoadLatencyEqualsServiceTime(t *testing.T) {
	s := buildSingle(t, dist.NewDeterministic(float64(100*des.Microsecond)), 1, 100)
	s.clientCfg.Proc = workload.Uniform
	rep, err := s.Run(100*des.Millisecond, des.Second)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Completions == 0 {
		t.Fatal("no completions")
	}
	// 100 QPS against a 100µs server: no queueing, latency == 100µs.
	if rep.Latency.Mean() != 100*des.Microsecond {
		t.Fatalf("mean latency %v, want exactly 100µs", rep.Latency.Mean())
	}
	if math.Abs(rep.GoodputQPS-rep.OfferedQPS) > 5 {
		t.Fatalf("goodput %v vs offered %v", rep.GoodputQPS, rep.OfferedQPS)
	}
	if rep.InFlight > 1 {
		t.Fatalf("in flight at horizon = %d", rep.InFlight)
	}
}

// M/M/1 sanity: mean sojourn time = 1/(µ−λ). This is the core validation
// that the simulator reproduces queueing theory where theory is exact.
func TestMM1MeanSojourn(t *testing.T) {
	meanSvc := 100 * des.Microsecond // µ = 10k/s
	lambda := 7000.0                 // ρ = 0.7
	s := buildSingle(t, dist.NewExponential(float64(meanSvc)), 1, lambda)
	rep, err := s.Run(2*des.Second, 20*des.Second)
	if err != nil {
		t.Fatal(err)
	}
	mu := 1.0 / meanSvc.Seconds()
	want := 1.0 / (mu - lambda) // seconds
	got := rep.Latency.Mean().Seconds()
	if math.Abs(got-want)/want > 0.08 {
		t.Fatalf("M/M/1 mean sojourn %v s, want ≈%v s", got, want)
	}
	// p99 of exponential sojourn: ln(100)·mean.
	wantP99 := want * math.Log(100)
	gotP99 := rep.Latency.P99().Seconds()
	if math.Abs(gotP99-wantP99)/wantP99 > 0.12 {
		t.Fatalf("M/M/1 p99 %v s, want ≈%v s", gotP99, wantP99)
	}
}

func TestSaturationBacklogGrows(t *testing.T) {
	// Offered 2× capacity: goodput pins at capacity, backlog grows.
	s := buildSingle(t, dist.NewDeterministic(float64(100*des.Microsecond)), 1, 20000)
	rep, err := s.Run(0, des.Second)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(rep.GoodputQPS-10000) > 300 {
		t.Fatalf("goodput %v, want ≈10000 (capacity)", rep.GoodputQPS)
	}
	if rep.InFlight < 5000 {
		t.Fatalf("in flight %d, want large backlog", rep.InFlight)
	}
}

func TestChainLatencyAdds(t *testing.T) {
	s := New(Options{Seed: 42})
	s.AddMachine("m0", 16, cluster.FreqSpec{})
	for _, svc := range []struct {
		name string
		cost float64
	}{{"front", float64(100 * des.Microsecond)}, {"back", float64(250 * des.Microsecond)}} {
		if _, err := s.Deploy(service.SingleStage(svc.name, dist.NewDeterministic(svc.cost)),
			RoundRobin, Placement{Machine: "m0", Cores: 1}); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.SetTopology(graph.Linear("main", "front", "back")); err != nil {
		t.Fatal(err)
	}
	s.SetClient(ClientConfig{Pattern: workload.ConstantRate(100), Proc: workload.Uniform})
	rep, err := s.Run(0, des.Second)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Latency.Mean() != 350*des.Microsecond {
		t.Fatalf("chain latency %v, want 350µs", rep.Latency.Mean())
	}
	if rep.PerTier["front"].Mean() != 100*des.Microsecond {
		t.Fatalf("front tier %v", rep.PerTier["front"].Mean())
	}
	if rep.PerTier["back"].Mean() != 250*des.Microsecond {
		t.Fatalf("back tier %v", rep.PerTier["back"].Mean())
	}
}

func TestFanoutFanInLatencyIsMax(t *testing.T) {
	s := New(Options{Seed: 42})
	s.AddMachine("m0", 16, cluster.FreqSpec{})
	mustDeploy := func(name string, cost float64, cores int) {
		t.Helper()
		if _, err := s.Deploy(service.SingleStage(name, dist.NewDeterministic(cost)),
			RoundRobin, Placement{Machine: "m0", Cores: cores}); err != nil {
			t.Fatal(err)
		}
	}
	mustDeploy("proxy", float64(50*des.Microsecond), 1)
	mustDeploy("fast", float64(100*des.Microsecond), 1)
	mustDeploy("slow", float64(400*des.Microsecond), 1)
	topo := &graph.Topology{Trees: []graph.Tree{{
		Name: "fan", Weight: 1, Root: 0,
		Nodes: []graph.Node{
			{ID: 0, Service: "proxy", Instance: -1, Children: []int{1, 2}},
			{ID: 1, Service: "fast", Instance: -1, Children: []int{3}},
			{ID: 2, Service: "slow", Instance: -1, Children: []int{3}},
			{ID: 3, Service: "proxy", Instance: -1},
		},
	}}}
	if err := s.SetTopology(topo); err != nil {
		t.Fatal(err)
	}
	s.SetClient(ClientConfig{Pattern: workload.ConstantRate(100), Proc: workload.Uniform})
	rep, err := s.Run(0, des.Second)
	if err != nil {
		t.Fatal(err)
	}
	// 50 (proxy) + max(100, 400) + 50 (join proxy) = 500µs.
	if rep.Latency.Mean() != 500*des.Microsecond {
		t.Fatalf("fanout latency %v, want 500µs", rep.Latency.Mean())
	}
}

func TestConnectionPoolBlocks(t *testing.T) {
	// Pool capacity 1 (one http/1.1 connection): two requests arriving
	// together serialize end to end.
	s := New(Options{Seed: 42})
	s.AddMachine("m0", 16, cluster.FreqSpec{})
	if _, err := s.Deploy(service.SingleStage("svc", dist.NewDeterministic(float64(des.Millisecond))),
		RoundRobin, Placement{Machine: "m0", Cores: 4}); err != nil {
		t.Fatal(err)
	}
	topo := &graph.Topology{
		Trees: []graph.Tree{{
			Name: "main", Weight: 1, Root: 0,
			Nodes: []graph.Node{{
				ID: 0, Service: "svc", Instance: -1,
				AcquireConn: []string{"cli"},
				ReleaseConn: []string{"cli"},
			}},
		}},
		Pools: []graph.ConnPool{{Name: "cli", Capacity: 1}},
	}
	if err := s.SetTopology(topo); err != nil {
		t.Fatal(err)
	}
	// Two requests in the first microsecond: with 4 cores they would
	// complete together at ~1ms; with 1 connection the second finishes
	// at ~2ms.
	s.SetClient(ClientConfig{Pattern: workload.ConstantRate(2_000_000)})
	s.Engine().At(2*des.Microsecond, func(des.Time) { s.Engine().Stop() })
	if _, err := s.Run(0, 10*des.Millisecond); err != nil {
		t.Fatal(err)
	}
	// Drain remaining events after stop.
	s.Engine().Resume()
	s.Engine().RunUntil(10 * des.Millisecond)
	if s.latency.Count() < 2 {
		t.Fatalf("completions = %d", s.latency.Count())
	}
	if s.latency.Max() < 1900*des.Microsecond {
		t.Fatalf("second request should wait for the connection; max latency %v", s.latency.Max())
	}
}

func TestNetworkAddsHops(t *testing.T) {
	s := New(Options{Seed: 42})
	s.AddMachine("m0", 16, cluster.FreqSpec{})
	if _, err := s.Deploy(service.SingleStage("svc", dist.NewDeterministic(float64(100*des.Microsecond))),
		RoundRobin, Placement{Machine: "m0", Cores: 1}); err != nil {
		t.Fatal(err)
	}
	if err := s.EnableNetwork(NetworkConfig{
		CoresPerMachine: 1,
		PerMsg:          dist.NewDeterministic(float64(10 * des.Microsecond)),
		ClientTx:        true,
	}); err != nil {
		t.Fatal(err)
	}
	if err := s.SetTopology(graph.Linear("main", "svc")); err != nil {
		t.Fatal(err)
	}
	s.SetClient(ClientConfig{Pattern: workload.ConstantRate(100), Proc: workload.Uniform})
	rep, err := s.Run(0, des.Second)
	if err != nil {
		t.Fatal(err)
	}
	// rx pass (10µs) + service (100µs) + tx pass (10µs) = 120µs.
	if rep.Latency.Mean() != 120*des.Microsecond {
		t.Fatalf("latency with network %v, want 120µs", rep.Latency.Mean())
	}
	if rep.PerTier["netproc"] == nil {
		t.Fatal("netproc tier missing")
	}
}

func TestNetworkSameMachineHopSkipsNIC(t *testing.T) {
	s := New(Options{Seed: 42})
	s.AddMachine("m0", 16, cluster.FreqSpec{})
	s.AddMachine("m1", 16, cluster.FreqSpec{})
	dep := func(name, mach string) {
		t.Helper()
		if _, err := s.Deploy(service.SingleStage(name, dist.NewDeterministic(float64(100*des.Microsecond))),
			RoundRobin, Placement{Machine: mach, Cores: 1}); err != nil {
			t.Fatal(err)
		}
	}
	dep("a", "m0")
	dep("b", "m0") // same machine as a: no NIC pass between them
	if err := s.EnableNetwork(NetworkConfig{
		CoresPerMachine: 1,
		PerMsg:          dist.NewDeterministic(float64(10 * des.Microsecond)),
	}); err != nil {
		t.Fatal(err)
	}
	if err := s.SetTopology(graph.Linear("main", "a", "b")); err != nil {
		t.Fatal(err)
	}
	s.SetClient(ClientConfig{Pattern: workload.ConstantRate(100), Proc: workload.Uniform})
	rep, err := s.Run(0, des.Second)
	if err != nil {
		t.Fatal(err)
	}
	// client→a pays 10µs rx; a→b is loopback; no ClientTx. 210µs total.
	if rep.Latency.Mean() != 210*des.Microsecond {
		t.Fatalf("latency %v, want 210µs", rep.Latency.Mean())
	}
}

func TestRoundRobinSpreadsLoad(t *testing.T) {
	s := New(Options{Seed: 42})
	s.AddMachine("m0", 16, cluster.FreqSpec{})
	if _, err := s.Deploy(service.SingleStage("svc", dist.NewDeterministic(float64(100*des.Microsecond))),
		RoundRobin,
		Placement{Machine: "m0", Cores: 1},
		Placement{Machine: "m0", Cores: 1},
		Placement{Machine: "m0", Cores: 1},
	); err != nil {
		t.Fatal(err)
	}
	if err := s.SetTopology(graph.Linear("main", "svc")); err != nil {
		t.Fatal(err)
	}
	s.SetClient(ClientConfig{Pattern: workload.ConstantRate(3000)})
	rep, err := s.Run(0, des.Second)
	if err != nil {
		t.Fatal(err)
	}
	var counts []uint64
	for _, ir := range rep.Instances {
		if ir.Service == "svc" {
			counts = append(counts, ir.Completed)
		}
	}
	if len(counts) != 3 {
		t.Fatalf("instances = %d", len(counts))
	}
	for _, c := range counts {
		if math.Abs(float64(c)-float64(rep.Completions)/3) > float64(rep.Completions)/20 {
			t.Fatalf("round robin imbalance: %v of %d", counts, rep.Completions)
		}
	}
}

func TestPinnedInstance(t *testing.T) {
	s := New(Options{Seed: 42})
	s.AddMachine("m0", 16, cluster.FreqSpec{})
	if _, err := s.Deploy(service.SingleStage("svc", dist.NewDeterministic(float64(100*des.Microsecond))),
		RoundRobin,
		Placement{Machine: "m0", Cores: 1},
		Placement{Machine: "m0", Cores: 1},
	); err != nil {
		t.Fatal(err)
	}
	topo := graph.Linear("main", "svc")
	topo.Trees[0].Nodes[0].Instance = 1
	if err := s.SetTopology(topo); err != nil {
		t.Fatal(err)
	}
	s.SetClient(ClientConfig{Pattern: workload.ConstantRate(1000)})
	rep, err := s.Run(0, des.Second)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Instances[0].Completed != 0 {
		t.Fatal("instance 0 should be idle when node pins instance 1")
	}
	if rep.Instances[1].Completed == 0 {
		t.Fatal("instance 1 should serve everything")
	}
}

func TestProbabilisticTreesSplitTraffic(t *testing.T) {
	s := New(Options{Seed: 42})
	s.AddMachine("m0", 16, cluster.FreqSpec{})
	dep := func(name string) {
		t.Helper()
		if _, err := s.Deploy(service.SingleStage(name, dist.NewDeterministic(float64(10*des.Microsecond))),
			RoundRobin, Placement{Machine: "m0", Cores: 1}); err != nil {
			t.Fatal(err)
		}
	}
	dep("front")
	dep("cache")
	dep("db")
	hit := graph.Tree{Name: "hit", Weight: 0.8, Root: 0, Nodes: []graph.Node{
		{ID: 0, Service: "front", Instance: -1, Children: []int{1}},
		{ID: 1, Service: "cache", Instance: -1},
	}}
	miss := graph.Tree{Name: "miss", Weight: 0.2, Root: 0, Nodes: []graph.Node{
		{ID: 0, Service: "front", Instance: -1, Children: []int{1}},
		{ID: 1, Service: "cache", Instance: -1, Children: []int{2}},
		{ID: 2, Service: "db", Instance: -1},
	}}
	if err := s.SetTopology(&graph.Topology{Trees: []graph.Tree{hit, miss}}); err != nil {
		t.Fatal(err)
	}
	s.SetClient(ClientConfig{Pattern: workload.ConstantRate(10000)})
	rep, err := s.Run(0, des.Second)
	if err != nil {
		t.Fatal(err)
	}
	dbShare := float64(rep.PerTier["db"].Count()) / float64(rep.Completions)
	if math.Abs(dbShare-0.2) > 0.02 {
		t.Fatalf("db share %v, want ≈0.2", dbShare)
	}
}

func TestClosedLoopClient(t *testing.T) {
	s := New(Options{Seed: 42})
	s.AddMachine("m0", 16, cluster.FreqSpec{})
	if _, err := s.Deploy(service.SingleStage("svc", dist.NewDeterministic(float64(des.Millisecond))),
		RoundRobin, Placement{Machine: "m0", Cores: 4}); err != nil {
		t.Fatal(err)
	}
	if err := s.SetTopology(graph.Linear("main", "svc")); err != nil {
		t.Fatal(err)
	}
	s.SetClient(ClientConfig{ClosedUsers: 2})
	rep, err := s.Run(0, des.Second)
	if err != nil {
		t.Fatal(err)
	}
	// 2 users, 1ms service, no think: ≈2000 completions.
	if math.Abs(rep.GoodputQPS-2000) > 50 {
		t.Fatalf("closed-loop goodput %v, want ≈2000", rep.GoodputQPS)
	}
	if rep.InFlight > 2 {
		t.Fatalf("closed loop in flight %d", rep.InFlight)
	}
}

func TestWarmupExcluded(t *testing.T) {
	s := buildSingle(t, dist.NewDeterministic(float64(100*des.Microsecond)), 1, 1000)
	rep, err := s.Run(500*des.Millisecond, 500*des.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	// Only the second half measured: ≈500 completions, not ≈1000.
	if rep.Completions < 400 || rep.Completions > 600 {
		t.Fatalf("measured completions = %d, want ≈500", rep.Completions)
	}
	if math.Abs(rep.GoodputQPS-1000) > 100 {
		t.Fatalf("goodput %v", rep.GoodputQPS)
	}
}

func TestOnRequestDoneObserver(t *testing.T) {
	s := buildSingle(t, dist.NewDeterministic(float64(100*des.Microsecond)), 1, 1000)
	count := 0
	var lastLatency des.Time
	s.OnRequestDone = func(now des.Time, req *job.Request) {
		count++
		lastLatency = req.Latency()
	}
	rep, err := s.Run(0, 100*des.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if count == 0 || uint64(count) != rep.Completions {
		t.Fatalf("observer saw %d, completions %d", count, rep.Completions)
	}
	if lastLatency != 100*des.Microsecond {
		t.Fatalf("observed latency %v", lastLatency)
	}
}
