package sim

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"uqsim/internal/cluster"
	"uqsim/internal/des"
	"uqsim/internal/dist"
	"uqsim/internal/fault"
	"uqsim/internal/graph"
	"uqsim/internal/netfault"
	"uqsim/internal/service"
	"uqsim/internal/workload"
)

// buildRandomTopology assembles a random layered topology: a root service,
// 1..3 middle services with random fan-out, and a join, with random
// per-service costs, random placements across 1..3 machines, and an
// optional connection pool. It exercises the whole dispatch surface.
func buildRandomTopology(t *testing.T, seed int64) *Sim {
	t.Helper()
	return buildRandomTopologyOn(t, seed, nil)
}

// buildRandomTopologyOn builds the same topology on an explicit engine
// (nil: the default sequential des.Engine), so equivalence tests can run
// one seed on several engines and compare fingerprints.
func buildRandomTopologyOn(t *testing.T, seed int64, eng des.Runner) *Sim {
	t.Helper()
	r := rand.New(rand.NewSource(seed))
	s := New(Options{Seed: uint64(seed), Engine: eng})
	nMachines := 1 + r.Intn(3)
	for i := 0; i < nMachines; i++ {
		s.AddMachine(fmt.Sprintf("m%d", i), 16, cluster.FreqSpec{})
	}
	mach := func() string { return fmt.Sprintf("m%d", r.Intn(nMachines)) }

	// Optionally install a two-region geography (with WAN latency and a
	// region-homed client) so the determinism suites cover region-aware
	// routing, WAN delays, and stale-read accounting.
	withRegions := nMachines >= 2 && r.Intn(2) == 0
	if withRegions {
		cut := 1 + r.Intn(nMachines-1)
		var east, west []string
		for i := 0; i < nMachines; i++ {
			name := fmt.Sprintf("m%d", i)
			if i < cut {
				east = append(east, name)
			} else {
				west = append(west, name)
			}
		}
		geo, err := s.SetGeography([]cluster.Region{
			{Name: "east", Machines: east},
			{Name: "west", Machines: west},
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := geo.SetDefaultWAN(cluster.WANLink{
			Latency: des.Time(1+r.Intn(3)) * des.Millisecond,
			PerKB:   des.Time(r.Intn(20)) * des.Microsecond,
		}); err != nil {
			t.Fatal(err)
		}
	}

	deploy := func(name string, meanUs float64) {
		t.Helper()
		var sampler dist.Sampler
		switch r.Intn(3) {
		case 0:
			sampler = dist.NewDeterministic(meanUs * 1000)
		case 1:
			sampler = dist.NewExponential(meanUs * 1000)
		default:
			sampler = dist.NewErlang(3, meanUs*1000)
		}
		instances := 1 + r.Intn(2)
		placements := make([]Placement, instances)
		for i := range placements {
			placements[i] = Placement{Machine: mach(), Cores: 1 + r.Intn(2)}
		}
		if _, err := s.Deploy(service.SingleStage(name, sampler),
			Policy(r.Intn(3)), placements...); err != nil {
			t.Fatal(err)
		}
	}

	deploy("root", 20)
	mids := 1 + r.Intn(3)
	for i := 0; i < mids; i++ {
		deploy(fmt.Sprintf("mid%d", i), 10+float64(r.Intn(100)))
	}
	deploy("join", 15)

	nodes := []graph.Node{{ID: 0, Service: "root", Instance: -1}}
	joinID := mids + 1
	for i := 0; i < mids; i++ {
		nodes[0].Children = append(nodes[0].Children, i+1)
		nodes = append(nodes, graph.Node{
			ID: i + 1, Service: fmt.Sprintf("mid%d", i), Instance: -1,
			Children: []int{joinID},
		})
	}
	nodes = append(nodes, graph.Node{ID: joinID, Service: "join", Instance: -1})
	topo := &graph.Topology{Trees: []graph.Tree{{Name: "t", Weight: 1, Root: 0, Nodes: nodes}}}
	if r.Intn(2) == 0 {
		topo.Pools = []graph.ConnPool{{Name: "cli", Capacity: 8 + r.Intn(64)}}
		topo.Trees[0].Nodes[0].AcquireConn = []string{"cli"}
		topo.Trees[0].Nodes[joinID].ReleaseConn = []string{"cli"}
	}
	if err := s.SetTopology(topo); err != nil {
		t.Fatal(err)
	}
	if r.Intn(2) == 0 {
		if err := s.EnableNetwork(NetworkConfig{
			CoresPerMachine: 1,
			PerMsg:          dist.NewDeterministic(float64(3 * des.Microsecond)),
			ClientTx:        r.Intn(2) == 0,
		}); err != nil {
			t.Fatal(err)
		}
	}
	cfg := ClientConfig{Pattern: workload.ConstantRate(float64(200 + r.Intn(2000)))}
	if withRegions {
		cfg.Region = []string{"east", "west"}[r.Intn(2)]
		// Geo-replicate the join tier when its random placements landed
		// replicas in both regions.
		if dep, _ := s.Deployment("join"); len(dep.Instances) >= 2 {
			spans := make(map[string]bool)
			for _, reg := range dep.instRegion {
				spans[reg] = true
			}
			if len(spans) >= 2 {
				if err := s.SetReplication("join", ReplicationSpec{
					Lag: des.Time(5+r.Intn(40)) * des.Millisecond,
				}); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
	s.SetClient(cfg)
	return s
}

// withRandomFaults derives a fault plan and resilience policies from seed
// and installs them on s: policies (with breakers) guarding the fan-out
// edges, shedding on the root, an instance outage, a machine crash, and a
// transient edge-latency injection — every fault kind except frequency
// scaling, which TestDegradeFreqSlowsService covers.
func withRandomFaults(t *testing.T, s *Sim, seed int64) {
	t.Helper()
	r := rand.New(rand.NewSource(seed ^ 0x5eed))
	mids := len(s.Deployments()) - 2 // root + mids + join
	victim := fmt.Sprintf("mid%d", r.Intn(mids))
	for _, svc := range []string{victim, "join"} {
		p := fault.Policy{
			Timeout:       des.Time(2+r.Intn(20)) * des.Millisecond,
			MaxRetries:    1 + r.Intn(3),
			BackoffBase:   des.Time(1+r.Intn(5)) * des.Millisecond,
			BackoffJitter: 0.5,
		}
		if r.Intn(2) == 0 {
			p.Breaker = &fault.BreakerSpec{
				ErrorThreshold: 0.5, Window: 8 + r.Intn(16),
				Cooldown: des.Time(5+r.Intn(20)) * des.Millisecond,
			}
		}
		switch r.Intn(3) {
		case 0:
			p.Hedge = &fault.HedgeSpec{
				Delay:  des.Time(1+r.Intn(5)) * des.Millisecond,
				Jitter: 0.3,
			}
		case 1:
			p.Hedge = &fault.HedgeSpec{Quantile: 0.9, MinSamples: 8}
		}
		if err := s.SetServicePolicy(svc, p); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.SetMaxQueue("root", 64+r.Intn(64)); err != nil {
		t.Fatal(err)
	}
	if r.Intn(2) == 0 {
		kinds := []fault.QueueKind{fault.QueueCoDel, fault.QueueLIFO, fault.QueueCoDelLIFO}
		if err := s.SetQueueDiscipline("root", fault.QueueDiscipline{
			Kind:   kinds[r.Intn(len(kinds))],
			Target: des.Time(1+r.Intn(4)) * des.Millisecond,
		}); err != nil {
			t.Fatal(err)
		}
	}
	if r.Intn(2) == 0 {
		cfg := s.Client()
		cfg.Budget = dist.NewUniform(float64(5*des.Millisecond), float64(50*des.Millisecond))
		s.SetClient(cfg)
	}
	kill := des.Time(50+r.Intn(100)) * des.Millisecond
	crash := des.Time(120+r.Intn(80)) * des.Millisecond
	lag := des.Time(30+r.Intn(50)) * des.Millisecond
	events := []fault.Event{
		{At: kill, Kind: fault.KillInstance, Service: victim, Instance: -1},
		{At: kill + 40*des.Millisecond, Kind: fault.RestartInstance, Service: victim, Instance: -1},
		{At: crash, Kind: fault.CrashMachine, Machine: "m0"},
		{At: crash + 25*des.Millisecond, Kind: fault.RecoverMachine, Machine: "m0"},
		{At: lag, Kind: fault.EdgeLatency, Service: "join",
			Extra: des.Time(1+r.Intn(3)) * des.Millisecond, Until: lag + 60*des.Millisecond},
	}
	// Network faults need a machine boundary to bite: a partition cutting
	// m0 from the rest (randomly one-way), a gray link, and a correlated
	// domain crash of the last machine's rack.
	if n := s.Cluster().Size(); n >= 2 {
		rest := make([]string, 0, n-1)
		for i := 1; i < n; i++ {
			rest = append(rest, fmt.Sprintf("m%d", i))
		}
		last := fmt.Sprintf("m%d", n-1)
		pStart := des.Time(40+r.Intn(80)) * des.Millisecond
		link := des.Time(10+r.Intn(40)) * des.Millisecond
		dCrash := des.Time(160+r.Intn(60)) * des.Millisecond
		events = append(events,
			fault.Event{At: pStart, Kind: fault.PartitionStart,
				Until:  pStart + des.Time(20+r.Intn(60))*des.Millisecond,
				GroupA: []string{"m0"}, GroupB: rest, OneWay: r.Intn(3) == 0},
			fault.Event{At: link, Kind: fault.SetLink,
				Until: link + des.Time(30+r.Intn(80))*des.Millisecond,
				Src:   "m0", Dst: last,
				Drop: 0.05 + 0.25*r.Float64(), Dup: 0.05 + 0.15*r.Float64()},
		)
		if r.Intn(2) == 0 {
			if err := s.SetDomains([]netfault.Domain{{Name: "rack", Machines: []string{last}}}); err != nil {
				t.Fatal(err)
			}
			events = append(events,
				fault.Event{At: dCrash, Kind: fault.CrashDomain, Domain: "rack",
					Stagger: des.Time(1+r.Intn(3)) * des.Millisecond},
				fault.Event{At: dCrash + 30*des.Millisecond, Kind: fault.RecoverDomain, Domain: "rack"},
			)
		}
		// Region loss: regions double as failure domains, and a region
		// crash may overlap the rack crash above — exercising the
		// per-machine crash-cause counting.
		if s.Geography() != nil && r.Intn(2) == 0 {
			rCrash := des.Time(90+r.Intn(60)) * des.Millisecond
			events = append(events,
				fault.Event{At: rCrash, Kind: fault.CrashDomain, Domain: "west",
					Stagger: des.Time(r.Intn(2)) * des.Millisecond},
				fault.Event{At: rCrash + des.Time(20+r.Intn(40))*des.Millisecond,
					Kind: fault.RecoverDomain, Domain: "west"},
			)
		}
	}
	if err := s.InstallFaults(fault.Plan{Events: events}); err != nil {
		t.Fatal(err)
	}
}

// reportFingerprint flattens everything a Report asserts about a run into
// one comparable string.
func reportFingerprint(rep *Report) string {
	fp := fmt.Sprintf("arr=%d comp=%d to=%d shed=%d drop=%d ddl=%d brk=%d retry=%d hedge=%d/%d cancel=%d waste=%d inflight=%d unreach=%d ldrop=%d ldup=%d xr=%d stale=%d mean=%v p50=%v p99=%v",
		rep.Arrivals, rep.Completions, rep.Timeouts, rep.Shed, rep.Dropped,
		rep.DeadlineExpired, rep.BreakerFastFails, rep.Retries,
		rep.HedgesIssued, rep.HedgeWins, rep.CanceledWork, rep.WastedWork, rep.InFlight,
		rep.Unreachable, rep.LinkDrops, rep.LinkDups,
		rep.CrossRegionCalls, rep.StaleReads,
		rep.Latency.Mean(), rep.Latency.P50(), rep.Latency.P99())
	svcs := make([]string, 0, len(rep.Errors))
	for svc := range rep.Errors {
		svcs = append(svcs, svc)
	}
	sort.Strings(svcs)
	for _, svc := range svcs {
		fp += fmt.Sprintf(" %s=%+v", svc, *rep.Errors[svc])
	}
	for _, ir := range rep.Instances {
		fp += fmt.Sprintf(" %s:%d/%d/%d/%d/%d",
			ir.Name, ir.Completed, ir.Shed, ir.Dropped, ir.Canceled, ir.Wasted)
	}
	return fp
}

// TestRandomFaultsDeterministic: the reproducibility guarantee extends to
// fault injection — the same seed and the same fault plan yield an
// identical report, however chaotic the run (outages, retries, breakers,
// shedding, crash-induced drops).
func TestRandomFaultsDeterministic(t *testing.T) {
	for seed := int64(1); seed <= 15; seed++ {
		run := func() string {
			s := buildRandomTopology(t, seed)
			withRandomFaults(t, s, seed)
			rep, err := s.Run(0, 300*des.Millisecond)
			if err != nil {
				t.Fatalf("seed %d: %v", seed, err)
			}
			total := rep.Completions + rep.Timeouts + rep.Shed + rep.Dropped +
				rep.DeadlineExpired + rep.Unreachable + uint64(rep.InFlight)
			if rep.Arrivals != total {
				t.Fatalf("seed %d: conservation: arrivals %d != %d", seed, rep.Arrivals, total)
			}
			return reportFingerprint(rep)
		}
		if a, b := run(), run(); a != b {
			t.Fatalf("seed %d: reports differ\n a: %s\n b: %s", seed, a, b)
		}
	}
}

// withRandomOverload installs only the overload-control features — tight
// budgets, hedging on every fan-out edge, and a queue discipline — with
// no outages, so a post-horizon drain must settle every request.
func withRandomOverload(t *testing.T, s *Sim, seed int64) {
	t.Helper()
	r := rand.New(rand.NewSource(seed ^ 0x0ced))
	mids := len(s.Deployments()) - 2
	for i := 0; i < mids; i++ {
		p := fault.Policy{
			Timeout:     des.Time(5+r.Intn(20)) * des.Millisecond,
			MaxRetries:  1,
			BackoffBase: des.Millisecond,
		}
		if r.Intn(2) == 0 {
			p.Hedge = &fault.HedgeSpec{Delay: des.Time(1+r.Intn(3)) * des.Millisecond}
		} else {
			p.Hedge = &fault.HedgeSpec{Quantile: 0.75, MinSamples: 8, Jitter: 0.5}
		}
		if err := s.SetServicePolicy(fmt.Sprintf("mid%d", i), p); err != nil {
			t.Fatal(err)
		}
	}
	kinds := []fault.QueueKind{fault.QueueCoDel, fault.QueueLIFO, fault.QueueCoDelLIFO}
	if err := s.SetQueueDiscipline("join", fault.QueueDiscipline{
		Kind:   kinds[r.Intn(len(kinds))],
		Target: des.Time(1+r.Intn(3)) * des.Millisecond,
	}); err != nil {
		t.Fatal(err)
	}
	cfg := s.Client()
	cfg.Budget = dist.NewUniform(float64(2*des.Millisecond), float64(20*des.Millisecond))
	s.SetClient(cfg)
}

// TestRandomOverloadTopologiesDrain: with deadlines expiring mid-tree,
// hedges racing, and disciplines shedding, draining the engine past the
// horizon must leak no request, netproc delivery, pool token, or queued
// job — i.e. every cancellation path cleans up after itself.
func TestRandomOverloadTopologiesDrain(t *testing.T) {
	for seed := int64(1); seed <= 25; seed++ {
		s := buildRandomTopology(t, seed)
		withRandomOverload(t, s, seed)
		rep, err := s.Run(0, 300*des.Millisecond)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if rep.Completions == 0 {
			t.Fatalf("seed %d: no completions", seed)
		}
		total := rep.Completions + rep.Timeouts + rep.Shed + rep.Dropped +
			rep.DeadlineExpired + rep.Unreachable + uint64(rep.InFlight)
		if rep.Arrivals != total {
			t.Fatalf("seed %d: conservation: arrivals %d != %d", seed, rep.Arrivals, total)
		}
		s.Engine().Run() // drain
		if n := len(s.inflight); n != 0 {
			t.Fatalf("seed %d: %d requests leaked", seed, n)
		}
		if n := len(s.pending); n != 0 {
			t.Fatalf("seed %d: %d netproc deliveries leaked", seed, n)
		}
		if n := len(s.calls); n != 0 {
			t.Fatalf("seed %d: %d tracked calls leaked", seed, n)
		}
		for name, p := range s.pools {
			if p.inUse() != 0 || len(p.waiters) != 0 {
				t.Fatalf("seed %d: pool %s leaked (%d in use, %d waiters)",
					seed, name, p.inUse(), len(p.waiters))
			}
		}
		for _, dep := range s.Deployments() {
			for _, in := range dep.Instances {
				if in.InFlight() != 0 || in.QueueLen() != 0 {
					t.Fatalf("seed %d: instance %s retains work", seed, in.Name)
				}
			}
		}
	}
}

// TestRandomTopologiesConserveRequests fuzzes the dispatch machinery:
// whatever the topology, after draining, no request, netproc delivery, or
// pool token may leak.
func TestRandomTopologiesConserveRequests(t *testing.T) {
	for seed := int64(1); seed <= 25; seed++ {
		s := buildRandomTopology(t, seed)
		rep, err := s.Run(0, 300*des.Millisecond)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if rep.Completions == 0 {
			t.Fatalf("seed %d: no completions", seed)
		}
		s.Engine().Run() // drain
		if n := len(s.inflight); n != 0 {
			t.Fatalf("seed %d: %d requests leaked", seed, n)
		}
		if n := len(s.pending); n != 0 {
			t.Fatalf("seed %d: %d netproc deliveries leaked", seed, n)
		}
		for name, p := range s.pools {
			if p.inUse() != 0 || len(p.waiters) != 0 {
				t.Fatalf("seed %d: pool %s leaked (%d in use, %d waiters)",
					seed, name, p.inUse(), len(p.waiters))
			}
		}
		for _, dep := range s.Deployments() {
			for _, in := range dep.Instances {
				if in.InFlight() != 0 || in.QueueLen() != 0 {
					t.Fatalf("seed %d: instance %s retains work", seed, in.Name)
				}
			}
		}
	}
}
