package sim

import (
	"fmt"
	"sort"

	"uqsim/internal/des"
	"uqsim/internal/fault"
	"uqsim/internal/job"
	"uqsim/internal/service"
)

// This file enforces per-edge RPC resilience policies (internal/fault) at
// the layer where child RPCs are issued: attempt timeouts, backoff retries
// against healthy instances, circuit breaking, and upstream propagation of
// sheds and crash-induced drops. Edges without a policy keep the original
// fast path; a request on a policy edge gets a call record per live attempt.

// policyRuntime is one installed policy plus its breaker instance.
type policyRuntime struct {
	pol fault.Policy
	brk *fault.Breaker
}

func newPolicyRuntime(p fault.Policy) *policyRuntime {
	pr := &policyRuntime{pol: p}
	if p.Breaker != nil {
		pr.brk = fault.NewBreaker(*p.Breaker)
	}
	return pr
}

// call is the live state of one policy-guarded RPC attempt, keyed by the
// attempt's job ID. It carries everything needed to re-issue the edge.
type call struct {
	req        *job.Request
	st         *reqState
	nodeID     int
	conn       int
	srcMachine string
	attempt    int
	pr         *policyRuntime
	timeout    *des.Event

	// Overload-control state: the attempt's job (for cancellation), its
	// issue time and target instance (for hedge placement and latency
	// observation), and the hedge race it participates in, if any.
	j       *job.Job
	start   des.Time
	inst    *service.Instance
	isHedge bool
	op      *hedgeOp

	// isProbe marks the single call a half-open breaker admitted. If the
	// attempt is torn down without an outcome (deadline expiry, hedge-race
	// loss), the probe slot must be released or the breaker starves.
	isProbe bool
}

// ErrorCounts breaks down failed call attempts against one target service.
type ErrorCounts struct {
	// Timeouts counts attempts abandoned by an edge timeout.
	Timeouts uint64
	// Shed counts attempts rejected by queue-length load shedding.
	Shed uint64
	// Dropped counts attempts lost to killed instances or crashed machines
	// (including "no healthy instance" dispatch failures).
	Dropped uint64
	// BreakerOpen counts calls failed fast by an open circuit breaker.
	BreakerOpen uint64
	// Retries counts policy-driven attempt re-issues.
	Retries uint64
	// Hedges counts backup attempts issued by the hedging policy.
	Hedges uint64
	// Unreachable counts attempts failed fast by the network fault
	// model: a severed machine pair or a gray-link message drop.
	Unreachable uint64
}

// SetServicePolicy guards every topology edge calling into service svc with
// the given resilience policy. The service must already be deployed. A
// single breaker instance covers the whole edge (all callers of svc), which
// matches a service-mesh sidecar's view of the destination.
func (s *Sim) SetServicePolicy(svc string, p fault.Policy) error {
	if err := p.Validate(); err != nil {
		return err
	}
	if _, ok := s.deployments[svc]; !ok {
		return fmt.Errorf("sim: policy for undeployed service %q", svc)
	}
	s.svcPolicies[svc] = newPolicyRuntime(p)
	s.hasPolicies = true
	if p.Hedge != nil {
		s.hasHedge = true
	}
	return nil
}

// SetNodePolicy overrides the service-level policy for one path-tree node
// (the edge into that node). Call after SetTopology.
func (s *Sim) SetNodePolicy(tree string, nodeID int, p fault.Policy) error {
	if err := p.Validate(); err != nil {
		return err
	}
	if s.topo == nil {
		return fmt.Errorf("sim: node policy needs a topology (call SetTopology first)")
	}
	for ti := range s.topo.Trees {
		if s.topo.Trees[ti].Name != tree {
			continue
		}
		if nodeID < 0 || nodeID >= len(s.topo.Trees[ti].Nodes) {
			return fmt.Errorf("sim: tree %q has no node %d", tree, nodeID)
		}
		s.nodePolicies[[2]int{ti, nodeID}] = newPolicyRuntime(p)
		s.hasPolicies = true
		if p.Hedge != nil {
			s.hasHedge = true
		}
		return nil
	}
	return fmt.Errorf("sim: node policy references unknown tree %q", tree)
}

// SetMaxQueue enables queue-length load shedding on every instance of svc:
// arrivals beyond max queued jobs are rejected immediately instead of
// queueing unboundedly.
func (s *Sim) SetMaxQueue(svc string, max int) error {
	dep, ok := s.deployments[svc]
	if !ok {
		return fmt.Errorf("sim: max queue for undeployed service %q", svc)
	}
	if max < 0 {
		return fmt.Errorf("sim: max queue %d negative", max)
	}
	for _, in := range dep.Instances {
		in.MaxQueue = max
	}
	return nil
}

// edgePolicy resolves the policy guarding tree node nodeID (nil: none). Node
// overrides win over service-level policies.
func (s *Sim) edgePolicy(treeIdx, nodeID int, svc string) *policyRuntime {
	if len(s.nodePolicies) > 0 {
		if pr, ok := s.nodePolicies[[2]int{treeIdx, nodeID}]; ok {
			return pr
		}
	}
	return s.svcPolicies[svc]
}

// startAttempt issues attempt number attempt of a policy-guarded edge.
func (s *Sim) startAttempt(now des.Time, req *job.Request, st *reqState, nodeID, conn int, srcMachine string, attempt int, pr *policyRuntime) {
	if req.Failed || req.Done() {
		return
	}
	if req.Expired(now) {
		// Defensive: the deadline event is the source of truth and fires
		// before same-instant dispatches, but a continuation resumed from
		// inside another event can land exactly on the deadline.
		s.failRequest(now, req, job.OutcomeDeadline)
		return
	}
	node := &st.tree.Nodes[nodeID]
	probe := false
	if pr.brk != nil {
		// State before Allow: an admitted half-open call is the probe.
		probe = pr.brk.State(now) == fault.BreakerHalfOpen
		if !pr.brk.Allow(now) {
			s.countError(node.Service, job.OutcomeBreakerOpen)
			s.failRequest(now, req, job.OutcomeBreakerOpen)
			return
		}
	}
	dep := s.deployments[node.Service]
	in := s.pickFor(node, dep, srcMachine)
	if in == nil {
		// No healthy instance: an instant connection failure.
		if pr.brk != nil {
			pr.brk.Record(now, true)
		}
		s.retryOrFail(now, req, st, nodeID, conn, srcMachine, attempt, pr, job.OutcomeDropped)
		return
	}
	j := s.newNodeJob(req, st, nodeID, conn, dep)
	c := &call{
		req: req, st: st, nodeID: nodeID, conn: conn,
		srcMachine: srcMachine, attempt: attempt, pr: pr,
		j: j, start: now, inst: in, isProbe: probe,
	}
	s.calls[j.ID] = c
	s.trackCall(st, j.ID, c)
	if pr.pol.Timeout > 0 {
		c.timeout = s.eng.At(now+pr.pol.Timeout, func(t des.Time) { s.onAttemptTimeout(t, j) })
	}
	s.maybeHedge(now, c, node.Instance >= 0, len(dep.Instances))
	s.deliver(now, j, in, srcMachine)
}

// onAttemptTimeout fires when an attempt outlives its edge timeout: the
// caller abandons it (the server-side work keeps running, its result
// discarded) and retries or fails the request.
func (s *Sim) onAttemptTimeout(now des.Time, j *job.Job) {
	c, ok := s.calls[j.ID]
	if !ok {
		return // the attempt settled first
	}
	delete(s.calls, j.ID)
	untrackCall(c.st, j.ID)
	j.Outcome = job.OutcomeTimeout
	s.observeCall(now, c.inst.Name, false, c.pr.pol.Timeout)
	if c.pr.brk != nil {
		c.pr.brk.Record(now, true)
	}
	if c.req.Failed || c.req.Done() {
		return
	}
	s.failCall(now, c, job.OutcomeTimeout)
}

// retryOrFail re-issues a failed attempt after exponential backoff, or
// fails the request once retries are exhausted. out is the failure that
// triggered it (used for accounting and, terminally, the request outcome).
func (s *Sim) retryOrFail(now des.Time, req *job.Request, st *reqState, nodeID, conn int, srcMachine string, attempt int, pr *policyRuntime, out job.Outcome) {
	svc := st.tree.Nodes[nodeID].Service
	s.countError(svc, out)
	if attempt < pr.pol.MaxRetries {
		s.retriesN++
		s.errCount(svc).Retries++
		delay := pr.pol.Backoff(attempt+1, s.retryRNG)
		ev := s.eng.At(now+delay, func(t des.Time) {
			s.startAttempt(t, req, st, nodeID, conn, srcMachine, attempt+1, pr)
		})
		if s.overloadOn {
			// Indexed so an expiring deadline can cancel the pending retry.
			st.retries = append(st.retries, ev)
		}
		return
	}
	s.failRequest(now, req, out)
}

// settleCall closes a live attempt whose job completed in time: cancel the
// timeout, feed the breaker a success, record the observed edge latency
// for quantile-based hedging, and resolve any hedge race in its favor.
func (s *Sim) settleCall(now des.Time, c *call, jID job.ID) {
	if c.timeout != nil {
		s.eng.Cancel(c.timeout)
	}
	delete(s.calls, jID)
	untrackCall(c.st, jID)
	s.observeCall(now, c.inst.Name, true, now-c.start)
	if c.pr.brk != nil {
		c.pr.brk.Record(now, false)
	}
	if h := c.pr.pol.Hedge; h != nil && h.Quantile > 0 {
		s.edgeLatency(c.st.treeIdx, c.nodeID, h.Quantile).Add(float64(now - c.start))
	}
	s.settleHedge(now, c)
}

// failAttemptOrRequest propagates one dead job upstream: a policy-guarded
// edge retries or fails; an unguarded edge fails the whole request. Jobs of
// already-abandoned attempts (edge timeout fired) or finished requests are
// discarded silently — their edge has moved on.
func (s *Sim) failAttemptOrRequest(now des.Time, j *job.Job, out job.Outcome) {
	// An attempt already abandoned by its edge (timeout fired, hedge race
	// lost) must never overwrite its outcome or touch the live request.
	abandoned := j.Outcome != job.OutcomeOK
	if !abandoned {
		j.Outcome = out
		// One failure observation per live attempt: abandoned attempts
		// already reported theirs at the abandonment instant.
		s.observeCall(now, j.Instance, false, 0)
	}
	req := j.Req
	if req == nil || req.Failed || req.Done() || abandoned {
		return
	}
	if c, ok := s.calls[j.ID]; ok {
		if c.timeout != nil {
			s.eng.Cancel(c.timeout)
		}
		delete(s.calls, j.ID)
		untrackCall(c.st, j.ID)
		if c.pr.brk != nil {
			c.pr.brk.Record(now, true)
		}
		s.failCall(now, c, out)
		return
	}
	if st, ok := s.inflight[req.ID]; ok {
		s.countError(st.tree.Nodes[j.NodeID].Service, out)
	}
	s.failRequest(now, req, out)
}

// deliveryRejected handles a job refused at admission: a down instance
// (kill/crash) or queue-length load shedding.
func (s *Sim) deliveryRejected(now des.Time, j *job.Job, res service.AdmitResult) {
	out := job.OutcomeDropped
	if res == service.RejectedQueue {
		out = job.OutcomeShed
	}
	s.failAttemptOrRequest(now, j, out)
}

// handleJobDrop fires for every job lost inside a killed instance (queued
// at kill time, or in-flight when its stale completion event fires).
func (s *Sim) handleJobDrop(now des.Time, j *job.Job) {
	s.failAttemptOrRequest(now, j, job.OutcomeDropped)
}

// handleNetDrop fires for jobs lost inside a killed network-processing
// service (machine crash): an RPC in transit fails like any dead attempt; a
// response in transit is lost on the wire, so the request never completes
// and is dropped.
func (s *Sim) handleNetDrop(now des.Time, j *job.Job) {
	d, ok := s.pending[j.ID]
	if ok {
		delete(s.pending, j.ID)
	}
	if ok && d.instance != nil {
		s.failAttemptOrRequest(now, j, job.OutcomeDropped)
		return
	}
	req := j.Req
	if req == nil || req.Failed || req.Done() {
		return
	}
	s.countError("netproc", job.OutcomeDropped)
	s.failRequest(now, req, job.OutcomeDropped)
}

// failRequest terminates a request with an error: it leaves the system now
// (conn-pool tokens released, closed-loop user freed) and is counted into
// exactly one outcome bucket, keeping arrivals == completions + timeouts +
// shed + dropped. Stray server-side work of the request is discarded as it
// surfaces.
func (s *Sim) failRequest(now des.Time, req *job.Request, out job.Outcome) {
	if req.Failed || req.Done() {
		return
	}
	req.Failed = true
	req.Outcome = out
	st := s.inflight[req.ID]
	delete(s.inflight, req.ID)
	if s.overloadOn {
		s.cleanupRequest(st)
	}
	for _, name := range s.poolOrder {
		s.pools[name].releaseAll(now, req)
	}
	// A client-timed-out request was already counted (and its closed-loop
	// user freed) at the timeout instant. Buckets are gated on arrival time
	// so counted arrivals land in exactly one bucket.
	if req.Arrival >= s.warmupEnd && !req.TimedOut {
		switch out {
		case job.OutcomeShed:
			s.shedReqs++
		case job.OutcomeBreakerOpen:
			s.shedReqs++
			s.breakerFast++
		case job.OutcomeDeadline:
			s.deadlineReqs++
		case job.OutcomeUnreachable:
			s.unreachableReqs++
		default:
			s.droppedReqs++
		}
	}
	if s.OnRequestDone != nil {
		s.OnRequestDone(now, req)
	}
	if req.TimedOut {
		return
	}
	if s.closedLoop != nil {
		s.closedLoop.RequestDone(now)
	} else if s.sessions != nil && st != nil && st.user >= 0 {
		// A failed step still advances the session user's journey.
		s.sessions.Done(now, st.user)
	}
}

// errCount returns svc's error-counter record, creating it on first use.
func (s *Sim) errCount(svc string) *ErrorCounts {
	ec, ok := s.errCounts[svc]
	if !ok {
		ec = &ErrorCounts{}
		s.errCounts[svc] = ec
	}
	return ec
}

// BreakerInfo is one circuit breaker's externally visible state, for
// monitors and liveness invariants ("no breaker stays open forever").
type BreakerInfo struct {
	// Edge names the guarded edge: "svc:<service>" for service-level
	// policies, "node:<tree>/<node>" for per-node overrides.
	Edge string
	// State is the breaker's state at the engine's current virtual time.
	State fault.BreakerState
	// Probing reports an outstanding half-open probe. Half-open with
	// Probing set but no live call is a starved breaker.
	Probing bool
	// Trips counts how many times the breaker has opened.
	Trips uint64
}

// Breakers reports every installed circuit breaker in deterministic order
// (service edges sorted by name, then node overrides by tree and node).
func (s *Sim) Breakers() []BreakerInfo {
	now := s.eng.Now()
	var out []BreakerInfo
	svcs := make([]string, 0, len(s.svcPolicies))
	for name, pr := range s.svcPolicies {
		if pr.brk != nil {
			svcs = append(svcs, name)
		}
	}
	sort.Strings(svcs)
	for _, name := range svcs {
		brk := s.svcPolicies[name].brk
		out = append(out, BreakerInfo{
			Edge: "svc:" + name, State: brk.State(now),
			Probing: brk.Probing(), Trips: brk.Trips(),
		})
	}
	nodes := make([][2]int, 0, len(s.nodePolicies))
	for key, pr := range s.nodePolicies {
		if pr.brk != nil {
			nodes = append(nodes, key)
		}
	}
	sort.Slice(nodes, func(i, j int) bool {
		if nodes[i][0] != nodes[j][0] {
			return nodes[i][0] < nodes[j][0]
		}
		return nodes[i][1] < nodes[j][1]
	})
	for _, key := range nodes {
		brk := s.nodePolicies[key].brk
		out = append(out, BreakerInfo{
			Edge: fmt.Sprintf("node:%d/%d", key[0], key[1]), State: brk.State(now),
			Probing: brk.Probing(), Trips: brk.Trips(),
		})
	}
	return out
}

// countError accrues one failed attempt against svc.
func (s *Sim) countError(svc string, out job.Outcome) {
	ec := s.errCount(svc)
	switch out {
	case job.OutcomeTimeout:
		ec.Timeouts++
	case job.OutcomeShed:
		ec.Shed++
	case job.OutcomeBreakerOpen:
		ec.BreakerOpen++
	case job.OutcomeUnreachable:
		ec.Unreachable++
	default:
		ec.Dropped++
	}
}
