package sim

import (
	"fmt"

	"uqsim/internal/des"
	"uqsim/internal/fault"
	"uqsim/internal/netfault"
	"uqsim/internal/service"
	"uqsim/internal/workload"
)

// InstallFaults schedules a fault plan's events on the engine. Call after
// all deployments (and EnableNetwork, if used) exist and before Run;
// references to unknown machines, services, or instances fail eagerly. The
// plan is deterministic: the same plan under the same seed always yields
// the same run.
func (s *Sim) InstallFaults(plan fault.Plan) error {
	if err := plan.Validate(); err != nil {
		return err
	}
	for i, ev := range plan.Events {
		switch ev.Kind {
		case fault.CrashMachine, fault.RecoverMachine, fault.DegradeFreq:
			if _, ok := s.cluster.Machine(ev.Machine); !ok {
				return fmt.Errorf("sim: fault event %d (%s) references unknown machine %q", i, ev.Kind, ev.Machine)
			}
		case fault.KillInstance, fault.RestartInstance:
			dep, ok := s.deployments[ev.Service]
			if !ok {
				return fmt.Errorf("sim: fault event %d (%s) references undeployed service %q", i, ev.Kind, ev.Service)
			}
			if ev.Instance >= len(dep.Instances) {
				return fmt.Errorf("sim: fault event %d (%s) targets instance %d of %d", i, ev.Kind, ev.Instance, len(dep.Instances))
			}
		case fault.EdgeLatency:
			if _, ok := s.deployments[ev.Service]; !ok {
				return fmt.Errorf("sim: fault event %d (%s) references undeployed service %q", i, ev.Kind, ev.Service)
			}
		case fault.CrashDomain, fault.RecoverDomain:
			d, ok := s.domain(ev.Domain)
			if !ok {
				return fmt.Errorf("sim: fault event %d (%s) references undeclared domain %q", i, ev.Kind, ev.Domain)
			}
			// Correlated burst: the domain event expands at install time
			// into per-machine events staggered in declaration order.
			kind := fault.CrashMachine
			if ev.Kind == fault.RecoverDomain {
				kind = fault.RecoverMachine
			}
			for mi, machine := range d.Machines {
				mev := fault.Event{At: ev.At + des.Time(mi)*ev.Stagger, Kind: kind, Machine: machine}
				s.eng.At(mev.At, func(t des.Time) { s.applyFault(t, mev) })
			}
			continue
		case fault.PartitionStart:
			for _, m := range append(append([]string(nil), ev.GroupA...), ev.GroupB...) {
				if _, ok := s.cluster.Machine(m); !ok {
					return fmt.Errorf("sim: fault event %d (%s) references unknown machine %q", i, ev.Kind, m)
				}
			}
			s.netState() // exists before the run: dispatch consults it
		case fault.SetLink:
			for _, m := range []string{ev.Src, ev.Dst} {
				if m == "" {
					continue
				}
				if _, ok := s.cluster.Machine(m); !ok {
					return fmt.Errorf("sim: fault event %d (%s) references unknown machine %q", i, ev.Kind, m)
				}
			}
			s.netState()
		case fault.LoadStep:
			// Needs an open-loop client (closed loops have no target rate
			// to scale), installed before the plan so the pattern can be
			// wrapped here.
			if s.clientCfg.ClosedUsers > 0 || s.clientCfg.Pattern == nil {
				return fmt.Errorf("sim: fault event %d (%s) needs an open-loop client installed first", i, ev.Kind)
			}
			if s.loadScale == nil {
				scale := 1.0
				s.loadScale = &scale
				s.clientCfg.Pattern = &scaledPattern{base: s.clientCfg.Pattern, scale: s.loadScale}
			}
		}
		ev := ev
		s.eng.At(ev.At, func(t des.Time) { s.applyFault(t, ev) })
	}
	return nil
}

// applyFault executes one fault event at virtual time now. Every path
// that changes fluid-visible state (capacity, frequency, reachability,
// link loss, offered load) ends in fluidResolve so the background tier
// re-solves its equilibrium at the fault boundary itself rather than
// coasting on a stale solution until the next epoch edge; heal closures
// do the same at the heal boundary.
func (s *Sim) applyFault(now des.Time, ev fault.Event) {
	defer s.fluidResolve(now)
	switch ev.Kind {
	case fault.KillInstance:
		dep := s.deployments[ev.Service]
		for i, in := range dep.Instances {
			if ev.Instance >= 0 && i != ev.Instance {
				continue
			}
			s.killInstance(now, dep, in)
		}
	case fault.RestartInstance:
		dep := s.deployments[ev.Service]
		for i, in := range dep.Instances {
			if ev.Instance >= 0 && i != ev.Instance {
				continue
			}
			if in.Down() {
				in.Restart(now)
			}
		}
		dep.refreshHealthy()
	case fault.CrashMachine:
		if s.crashedM == nil {
			s.crashedM = make(map[string]int)
		}
		// Overlapping correlated faults (a region crash and a rack crash
		// both covering this machine) stack as independent causes: each
		// crash increments, each recover decrements, and the machine only
		// comes back when every cause has healed — the partition model's
		// cut counting, one level up.
		s.crashedM[ev.Machine]++
		if s.crashedM[ev.Machine] > 1 {
			return // already down; this crash just adds a cause
		}
		// Deterministic deployment order matters: kill order decides the
		// order drops propagate and retries get scheduled.
		for _, dep := range s.Deployments() {
			for _, in := range dep.Instances {
				if in.Alloc.Machine.Name == ev.Machine {
					s.killInstance(now, dep, in)
				}
			}
		}
		if np, ok := s.netproc[ev.Machine]; ok {
			for _, j := range np.Kill(now) {
				s.handleNetDrop(now, j)
			}
		}
	case fault.RecoverMachine:
		if n := s.crashedM[ev.Machine]; n > 1 {
			s.crashedM[ev.Machine] = n - 1
			return // another crash cause still holds the machine down
		}
		delete(s.crashedM, ev.Machine)
		for _, dep := range s.Deployments() {
			touched := false
			for _, in := range dep.Instances {
				if in.Alloc.Machine.Name == ev.Machine && in.Down() {
					in.Restart(now)
					touched = true
				}
			}
			if touched {
				dep.refreshHealthy()
			}
		}
		if np, ok := s.netproc[ev.Machine]; ok {
			np.Restart(now)
		}
	case fault.DegradeFreq:
		m, _ := s.cluster.Machine(ev.Machine)
		allocs := m.Allocations()
		old := make([]float64, len(allocs))
		for i, a := range allocs {
			old[i] = a.Freq()
			a.SetFreq(ev.FreqMHz)
		}
		if ev.Until > now {
			s.eng.At(ev.Until, func(t des.Time) {
				for i, a := range allocs {
					a.SetFreq(old[i])
				}
				s.fluidResolve(t)
			})
		}
	case fault.EdgeLatency:
		s.edgeExtra[ev.Service] = ev.Extra
		if ev.Until > now {
			svc := ev.Service
			s.eng.At(ev.Until, func(t des.Time) { delete(s.edgeExtra, svc) })
		}
	case fault.PartitionStart:
		s.netState().StartPartition(ev.GroupA, ev.GroupB, ev.OneWay)
		if ev.Until > now {
			s.eng.At(ev.Until, func(t des.Time) {
				s.net.HealPartition(ev.GroupA, ev.GroupB, ev.OneWay)
				s.fluidResolve(t)
			})
		}
	case fault.SetLink:
		s.netState().SetLink(ev.Src, ev.Dst, netfault.Link{Drop: ev.Drop, Dup: ev.Dup})
		if ev.Until > now {
			s.eng.At(ev.Until, func(t des.Time) {
				s.net.ClearLink(ev.Src, ev.Dst)
				s.fluidResolve(t)
			})
		}
	case fault.LoadStep:
		*s.loadScale = ev.Factor
		if ev.Until > now {
			// Overlapping steps are last-writer-wins; healing restores the
			// nominal rate, not the previous step's.
			s.eng.At(ev.Until, func(t des.Time) {
				*s.loadScale = 1
				s.fluidResolve(t)
			})
		}
	}
}

// scaledPattern multiplies a base arrival pattern by a live scale factor —
// the LoadStep fault's hook into the open-loop generator, which consults
// RateAt per interarrival gap and so observes scale changes immediately.
type scaledPattern struct {
	base  workload.Pattern
	scale *float64
}

func (p *scaledPattern) RateAt(t des.Time) float64 { return p.base.RateAt(t) * *p.scale }

// killInstance takes one deployed instance down and propagates every lost
// job upstream. No-op when already down.
func (s *Sim) killInstance(now des.Time, dep *Deployment, in *service.Instance) {
	if in.Down() {
		return
	}
	lost := in.Kill(now)
	dep.refreshHealthy()
	for _, j := range lost {
		s.handleJobDrop(now, j)
	}
}
