package sim

import (
	"fmt"

	"uqsim/internal/des"
	"uqsim/internal/fault"
	"uqsim/internal/job"
	"uqsim/internal/service"
	"uqsim/internal/stats"
)

// This file is the graceful-degradation layer: end-to-end deadline
// propagation (requests carry an absolute deadline; expiry terminates the
// whole subtree and cancels queued-not-started work), hedged requests
// (per-edge backup attempts racing a slow primary), and per-service
// adaptive admission (CoDel sojourn shedding, adaptive LIFO). All three
// are opt-in; with none configured the simulator's hot paths are
// untouched.

// SetQueueDiscipline installs a per-instance entry-queue overload
// discipline on every instance of svc (see fault.QueueDiscipline): CoDel
// sheds jobs whose queueing delay stays above target, adaptive LIFO
// serves the newest job first while the head is stale.
func (s *Sim) SetQueueDiscipline(svc string, d fault.QueueDiscipline) error {
	dep, ok := s.deployments[svc]
	if !ok {
		return fmt.Errorf("sim: queue discipline for undeployed service %q", svc)
	}
	for _, in := range dep.Instances {
		if err := in.SetDiscipline(d); err != nil {
			return err
		}
	}
	if d.Kind != fault.QueueFIFO {
		s.hasDiscipline = true
	}
	return nil
}

// installOverload arms the dequeue-time vetting before a run when any
// overload feature (budget, hedging, discipline) is configured. The
// network-processing instances are deliberately excluded: a message
// silently discarded inside netproc would leak its pending-delivery
// record.
func (s *Sim) installOverload() {
	s.overloadOn = s.hasDiscipline || s.hasHedge || s.clientCfg.Budget != nil
	if !s.overloadOn {
		return
	}
	s.isCanceledFn = func(j *job.Job) bool {
		if j.Outcome != job.OutcomeOK {
			return true // abandoned attempt or lost hedge race
		}
		r := j.Req
		return r != nil && (r.Failed || r.Done())
	}
	for _, dep := range s.Deployments() {
		for _, in := range dep.Instances {
			in.IsCanceled = s.isCanceledFn
		}
	}
}

// ---- deadline propagation ----

// onDeadline fires when a request's end-to-end budget expires: the whole
// subtree short-circuits — the request is failed now, queued work is
// cancelled (lazily, at dequeue), and pending timers leave the event heap
// via O(log n) cancellation.
func (s *Sim) onDeadline(now des.Time, req *job.Request) {
	if req.Failed || req.Done() {
		return
	}
	s.failRequest(now, req, job.OutcomeDeadline)
}

// cleanupRequest tears down a terminated request's live machinery: the
// deadline and client-timeout events, pending retry/hedge timers, and
// every live policy attempt — whose jobs are marked canceled so the
// serving instance discards them unserved (or counts the work wasted if
// already on a core). Cancellation keeps the event heap small under
// overload: dead timers never fire.
func (s *Sim) cleanupRequest(st *reqState) {
	if st == nil {
		return
	}
	if st.deadlineEv != nil {
		s.eng.Cancel(st.deadlineEv)
		st.deadlineEv = nil
	}
	if st.clientTO != nil {
		s.eng.Cancel(st.clientTO)
		st.clientTO = nil
	}
	for _, ev := range st.retries {
		s.eng.Cancel(ev) // fired events are safe no-ops
	}
	st.retries = nil
	for id, c := range st.calls {
		if c.timeout != nil {
			s.eng.Cancel(c.timeout)
		}
		if c.op != nil && !c.op.done {
			c.op.done = true
			if c.op.timer != nil {
				s.eng.Cancel(c.op.timer)
			}
		}
		if c.isProbe && c.pr.brk != nil {
			// The half-open probe dies without an outcome; release the slot
			// or the breaker refuses every future call.
			c.pr.brk.CancelProbe()
		}
		c.j.Outcome = job.OutcomeCanceled
		delete(s.calls, id)
	}
	st.calls = nil
}

// trackCall indexes a live attempt under its request so cleanupRequest
// can find it. Only maintained when an overload feature is on.
func (s *Sim) trackCall(st *reqState, id job.ID, c *call) {
	if !s.overloadOn {
		return
	}
	if st.calls == nil {
		st.calls = make(map[job.ID]*call, 2)
	}
	st.calls[id] = c
}

func untrackCall(st *reqState, id job.ID) {
	if st.calls != nil {
		delete(st.calls, id)
	}
}

// handleJobShed fires when an instance's CoDel discipline sheds an
// admitted job at dequeue time: upstream it fails exactly like a
// queue-length shed at admission.
func (s *Sim) handleJobShed(now des.Time, j *job.Job) {
	s.failAttemptOrRequest(now, j, job.OutcomeShed)
}

// ---- hedged requests ----

// hedgeOp is the state of one hedged edge dispatch: a primary attempt, an
// optional backup racing it, and the timer that issues the backup. The
// first response wins; the loser is cancelled (unserved) or its completed
// work discarded. A hedge is an attempt, not an arrival — request
// conservation never sees it.
type hedgeOp struct {
	primary *call // nil once the primary failed
	hedge   *call // nil until issued, and again once the hedge failed
	timer   *des.Event
	issued  bool
	done    bool // a side won, or the edge moved on (retry/failure)
}

// maybeHedge arms the hedge timer for a freshly issued primary attempt.
// Pinned edges cannot hedge (there is no "different instance"), nor can
// single-instance deployments.
func (s *Sim) maybeHedge(now des.Time, c *call, pinned bool, nInstances int) {
	h := c.pr.pol.Hedge
	if h == nil || pinned || nInstances < 2 {
		return
	}
	delay, ok := s.hedgeDelay(c.st.treeIdx, c.nodeID, h)
	if !ok {
		return
	}
	op := &hedgeOp{primary: c}
	c.op = op
	op.timer = s.eng.At(now+delay, func(t des.Time) { s.onHedgeTimer(t, op) })
}

// hedgeDelay resolves the wait before the backup attempt: the observed
// per-edge latency quantile once the estimator is warm, else the fixed
// fallback delay; jitter comes from the dedicated hedge RNG stream so
// hedging never perturbs service-time draws.
func (s *Sim) hedgeDelay(treeIdx, nodeID int, h *fault.HedgeSpec) (des.Time, bool) {
	d := h.Delay
	if h.Quantile > 0 {
		if est := s.edgeLat[[2]int{treeIdx, nodeID}]; est != nil &&
			est.Count() >= uint64(h.MinSamplesOrDefault()) {
			d = des.Time(est.Value())
		}
	}
	if d <= 0 {
		return 0, false
	}
	if h.Jitter > 0 {
		d = des.Time(float64(d) * (1 + h.Jitter*(2*s.hedgeRNG.Float64()-1)))
	}
	if d <= 0 {
		return 0, false
	}
	return d, true
}

// edgeLatency returns the per-edge streaming quantile estimator, creating
// it on first use.
func (s *Sim) edgeLatency(treeIdx, nodeID int, q float64) *stats.P2Quantile {
	key := [2]int{treeIdx, nodeID}
	est := s.edgeLat[key]
	if est == nil {
		est = stats.NewP2Quantile(q)
		s.edgeLat[key] = est
	}
	return est
}

// onHedgeTimer fires when the primary has been outstanding for the hedge
// delay: issue one backup attempt to a different healthy instance.
func (s *Sim) onHedgeTimer(now des.Time, op *hedgeOp) {
	if op.done || op.primary == nil {
		return
	}
	c := op.primary
	req, st := c.req, c.st
	if req.Failed || req.Done() {
		return
	}
	node := &st.tree.Nodes[c.nodeID]
	probe := false
	if c.pr.brk != nil {
		probe = c.pr.brk.State(now) == fault.BreakerHalfOpen
		if !c.pr.brk.Allow(now) {
			return // the edge is failing fast; don't add hedge load
		}
	}
	dep := s.deployments[node.Service]
	in := s.pickAvoiding(dep, c.inst)
	if in == nil {
		return // no distinct healthy instance to race against
	}
	op.issued = true
	j := s.newNodeJob(req, st, c.nodeID, c.conn, dep)
	h := &call{
		req: req, st: st, nodeID: c.nodeID, conn: c.conn,
		srcMachine: c.srcMachine, attempt: c.attempt, pr: c.pr,
		j: j, start: now, inst: in, isHedge: true, op: op, isProbe: probe,
	}
	op.hedge = h
	s.calls[j.ID] = h
	s.trackCall(st, j.ID, h)
	if c.pr.pol.Timeout > 0 {
		h.timeout = s.eng.At(now+c.pr.pol.Timeout, func(t des.Time) { s.onAttemptTimeout(t, j) })
	}
	s.hedgesN++
	s.errCount(node.Service).Hedges++
	s.deliver(now, j, in, c.srcMachine)
}

// pickAvoiding selects a healthy instance other than avoid, scanning
// round-robin from the deployment's rotating cursor over the maintained
// healthy set (ejected and retired instances never receive hedges). Nil
// when no distinct healthy instance exists.
func (s *Sim) pickAvoiding(dep *Deployment, avoid *service.Instance) *service.Instance {
	n := len(dep.healthy)
	if n < 1 || (n == 1 && dep.healthy[0] == avoid) {
		return nil
	}
	start := dep.rr % n
	dep.rr++
	for i := 0; i < n; i++ {
		in := dep.healthy[(start+i)%n]
		if in != avoid {
			return in
		}
	}
	return nil
}

// settleHedge resolves a hedge race in favor of the winning call: the
// timer is disarmed and the loser, if still racing, is abandoned.
func (s *Sim) settleHedge(now des.Time, winner *call) {
	op := winner.op
	if op == nil || op.done {
		return
	}
	op.done = true
	if op.timer != nil && !op.issued {
		s.eng.Cancel(op.timer)
	}
	loser := op.hedge
	if winner.isHedge {
		s.hedgeWins++
		loser = op.primary
	}
	if loser != nil && loser != winner {
		s.abandonCall(loser)
	}
}

// abandonCall kills a racing attempt that lost: its timeout is cancelled,
// its job marked canceled — discarded unserved at dequeue, or counted as
// wasted work if already on a core.
func (s *Sim) abandonCall(c *call) {
	if c.timeout != nil {
		s.eng.Cancel(c.timeout)
	}
	delete(s.calls, c.j.ID)
	untrackCall(c.st, c.j.ID)
	if c.isProbe && c.pr.brk != nil {
		// A probe losing the hedge race never reaches Record; free the slot.
		c.pr.brk.CancelProbe()
	}
	c.j.Outcome = job.OutcomeCanceled
}

// failCall routes one failed attempt (timeout, shed, drop) through the
// hedge state machine: a failed hedge is absorbed while the primary still
// races; a failed primary promotes a live hedge to sole attempt; only
// when no side is left does the edge fall back to retry-or-fail. The
// caller has already removed c from the live-call index and fed the
// breaker.
func (s *Sim) failCall(now des.Time, c *call, out job.Outcome) {
	svc := c.st.tree.Nodes[c.nodeID].Service
	if op := c.op; op != nil && !op.done {
		if c.isHedge {
			op.hedge = nil
			if op.primary != nil {
				s.countError(svc, out) // absorbed: the primary still races
				return
			}
		} else {
			op.primary = nil
			if op.hedge != nil {
				s.countError(svc, out) // the hedge is promoted and races on
				return
			}
			if op.timer != nil && !op.issued {
				s.eng.Cancel(op.timer) // no backup is coming
			}
		}
		op.done = true
	}
	s.retryOrFail(now, c.req, c.st, c.nodeID, c.conn, c.srcMachine, c.attempt, c.pr, out)
}
