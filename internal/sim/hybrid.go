package sim

import (
	"fmt"
	"math"
	"sort"

	"uqsim/internal/analytic"
	"uqsim/internal/des"
	"uqsim/internal/hybrid"
	"uqsim/internal/service"
	"uqsim/internal/workload"
)

// SetHybrid enables hybrid fidelity for the run: a sampled fraction of
// requests (cfg.SampleRate) runs through the full stage-level DES path
// while the rest loads every service's queues statistically via the
// internal/hybrid fluid tier. Call before Run; the fluid model is built
// at Run time from the live client config and deployments, so fault-plan
// load steps and client overrides are reflected. Sample rate 1.0 is
// exactly a full-fidelity run: no extra random draws, no background
// accounting, bit-identical fingerprint.
func (s *Sim) SetHybrid(cfg hybrid.Config) {
	c := cfg
	s.hybridCfg = &c
}

// HybridConfig reports the configured fidelity split (nil: full DES).
func (s *Sim) HybridConfig() *hybrid.Config { return s.hybridCfg }

// ClearHybrid reverts the run to full DES fidelity (CLI -fidelity full
// overriding a hybrid config file).
func (s *Sim) ClearHybrid() { s.hybridCfg = nil }

// SetHybridMonitor attaches m's gauges to the fluid tier when the run
// starts (background offered rate, per-service equilibrium rho and queue
// length) so dashboards separate fluid load from sampled load. m is
// typically an *internal/monitor.Monitor.
func (s *Sim) SetHybridMonitor(m hybrid.GaugeRegistry) { s.hybridMon = m }

// Fluid exposes the live fluid tier (nil before Run or at sample rate 1).
func (s *Sim) Fluid() *hybrid.State { return s.fluid }

// fluidResolve re-solves the background equilibrium at a fault or heal
// boundary. No-op outside hybrid runs; inside one, the fluid tier
// accrues the old solution up to now and solves the new one immediately
// instead of waiting out the rest of the 50ms epoch with stale rates.
func (s *Sim) fluidResolve(now des.Time) {
	if s.fluid != nil {
		s.fluid.Resolve(now)
	}
}

// thinnedPattern scales an arrival pattern by the foreground sample rate:
// thinning a Poisson process by p yields a Poisson process at p·λ, so the
// sampled foreground is statistically exact, not an approximation. It
// composes with the fault plan's scaledPattern (load steps scale the
// total offered rate; the thinning always applies on top).
type thinnedPattern struct {
	base workload.Pattern
	f    float64
}

func (p *thinnedPattern) RateAt(t des.Time) float64 { return p.base.RateAt(t) * p.f }

// setupHybrid builds the fluid tier at Run time. Inert configurations
// (sample rate 1.0) leave the simulation untouched.
func (s *Sim) setupHybrid(warmupEnd des.Time) error {
	cfg := *s.hybridCfg
	if err := cfg.Validate(); err != nil {
		return err
	}
	if cfg.SampleRate >= 1 {
		return nil
	}
	if s.clientCfg.ClosedUsers > 0 {
		return fmt.Errorf("sim: hybrid fidelity needs an open-loop or session client (closed_users thins poorly; model the population as sessions instead)")
	}

	// Visit factors: how many times a request visits each service,
	// weighted by tree selection probabilities. Brancher-pruned subtrees
	// are counted as always taken — a documented upper bound.
	weights := s.fluidTreeWeights()
	visits := make(map[string]float64)
	for ti := range s.topo.Trees {
		w := weights[ti]
		if w <= 0 {
			continue
		}
		for i := range s.topo.Trees[ti].Nodes {
			visits[s.topo.Trees[ti].Nodes[i].Service] += w
		}
	}

	meanKB := 0.0
	if s.clientCfg.SizeKB != nil {
		meanKB = s.clientCfg.SizeKB.Mean()
	}
	callers := s.fluidCallers(weights)
	var svcs []hybrid.Service
	s.fluidIdx = make(map[string]int)
	for _, name := range s.depOrder {
		v := visits[name]
		if v <= 0 {
			continue // never visited: carries no background load
		}
		dep := s.deployments[name]
		ms, err := meanServiceSeconds(dep.BP, meanKB)
		if err != nil {
			return err
		}
		s.fluidIdx[name] = len(svcs)
		svcs = append(svcs, hybrid.Service{
			Name:         name,
			Visits:       v,
			MeanServiceS: ms,
			Servers: func() int {
				k := 0
				for _, in := range dep.Healthy() {
					k += in.Alloc.Cores
				}
				return k
			},
			Speed:  s.fluidSpeed(dep),
			Loss:   s.fluidLoss(dep, callers[name]),
			Policy: s.fluidPolicy(name),
		})
	}
	if len(svcs) == 0 {
		return fmt.Errorf("sim: hybrid fidelity found no visited services to model")
	}

	// The offered-rate envelope the fluid tier follows. Open-loop clients
	// report the unthinned pattern (including any fault-plan load scale);
	// session clients resolve the population envelope through the closed
	// multi-service fixed point — closed traffic self-limits, it never
	// sheds.
	var rate func(t des.Time) float64
	if s.clientCfg.Sessions != nil {
		cfg.Closed = true
		sc := s.clientCfg.Sessions
		think := sc.MeanThinkS()
		fpSvcs := svcs
		// The fixed point costs O(iterations × total cores) via ErlangC;
		// the envelope is piecewise-constant, so memoize on the population
		// and the deployment's live core counts (which faults can change).
		var memoPop, memoRate float64
		var memoSig uint64
		memoPop = -1
		rate = func(t des.Time) float64 {
			n := float64(sc.PopulationAt(t))
			sig := uint64(0)
			for _, sv := range fpSvcs {
				sig = sig*1000003 + uint64(sv.Servers())
				if sv.Speed != nil {
					sig = sig*1000003 + math.Float64bits(sv.Speed())
				}
			}
			if n != memoPop || sig != memoSig {
				memoPop, memoSig = n, sig
				memoRate = closedPopulationRate(n, think, fpSvcs)
			}
			return memoRate
		}
	} else {
		base := s.clientCfg.Pattern
		rate = func(t des.Time) float64 { return base.RateAt(t) }
		// The thinned pattern is run-local: mutating the stored client
		// config would compound the thinning (rate · sampleRate²) on a
		// subsequent Run of the same Sim.
		s.fgPattern = &thinnedPattern{base: base, f: cfg.SampleRate}
	}

	st, err := hybrid.New(cfg, svcs, rate, s.split)
	if err != nil {
		return err
	}
	s.fluid = st
	s.sampleRNG = s.split.Stream("hybrid", "sample")
	if s.hybridMon != nil {
		st.Attach(s.hybridMon)
	}
	st.Start(s.eng, 0, warmupEnd)
	return nil
}

// fluidCallers maps each service to the sorted set of services whose
// instances issue RPCs into it, across every tree the client can select.
// Root services (called straight from the client) have no entry: client
// hops enter from outside the fabric and are exempt from network faults,
// matching the foreground dispatch path.
func (s *Sim) fluidCallers(weights []float64) map[string][]string {
	seen := make(map[string]map[string]bool)
	for ti := range s.topo.Trees {
		if ti < len(weights) && weights[ti] <= 0 {
			continue
		}
		tr := &s.topo.Trees[ti]
		for i := range tr.Nodes {
			svc := tr.Nodes[i].Service
			for _, pid := range tr.Parents(i) {
				p := tr.Nodes[pid].Service
				if p == svc {
					continue
				}
				if seen[svc] == nil {
					seen[svc] = make(map[string]bool)
				}
				seen[svc][p] = true
			}
		}
	}
	out := make(map[string][]string, len(seen))
	for svc, set := range seen {
		names := make([]string, 0, len(set))
		for p := range set {
			names = append(names, p)
		}
		sort.Strings(names)
		out[svc] = names
	}
	return out
}

// fluidSpeed builds the DVFS coupling for one deployment: the healthy-
// core-weighted mean of 1/SpeedFactor, so a service with half its cores
// at half frequency serves at 75% nominal rate. No healthy cores means
// Servers() already reports zero capacity; speed 1 keeps µ well-defined.
func (s *Sim) fluidSpeed(dep *Deployment) func() float64 {
	return func() float64 {
		num, den := 0.0, 0.0
		for _, in := range dep.Healthy() {
			c := float64(in.Alloc.Cores)
			den += c
			num += c / in.Alloc.SpeedFactor()
		}
		if den <= 0 {
			return 1
		}
		return num / den
	}
}

// fluidLoss builds the network coupling for one deployment: the fraction
// of caller-instance → callee-instance machine pairs currently severed
// (partitions, region loss) and the mean gray-link drop probability over
// the still-reachable pairs. Callers is the sorted caller-service list
// from fluidCallers; services called only by the client see no network
// faults (client hops bypass the fabric in the foreground path too).
func (s *Sim) fluidLoss(dep *Deployment, callers []string) func() (float64, float64) {
	if len(callers) == 0 {
		return nil
	}
	return func() (float64, float64) {
		if s.net == nil {
			return 0, 0
		}
		pairs, cutN := 0, 0
		dropSum := 0.0
		for _, cs := range callers {
			cdep := s.deployments[cs]
			if cdep == nil {
				continue
			}
			for _, pin := range cdep.Healthy() {
				src := pin.Alloc.Machine.Name
				for _, in := range dep.Healthy() {
					dst := in.Alloc.Machine.Name
					pairs++
					if !s.net.Reachable(src, dst) {
						cutN++
						continue
					}
					if src != dst {
						if l, ok := s.net.LinkFor(src, dst); ok {
							dropSum += l.Drop
						}
					}
				}
			}
		}
		if pairs == 0 {
			// All caller or callee replicas down: capacity coupling
			// (Servers()==0) owns that failure mode, not reachability.
			return 0, 0
		}
		cut := float64(cutN) / float64(pairs)
		drop := 0.0
		if reach := pairs - cutN; reach > 0 {
			drop = dropSum / float64(reach)
		}
		return cut, drop
	}
}

// fluidPolicy maps a service-level resilience policy onto the mean-field
// retry model. Only the retry-relevant fields translate: an edge with a
// timeout and retries amplifies background load; a breaker threshold
// gates the amplification off once the equilibrium timeout probability
// trips it. Node-level overrides (SetNodePolicy) are a per-edge
// refinement the aggregate fluid tier cannot express; the service-wide
// policy is the documented approximation.
func (s *Sim) fluidPolicy(name string) *hybrid.Policy {
	pr := s.svcPolicies[name]
	if pr == nil {
		return nil
	}
	pol := pr.pol
	if pol.Timeout <= 0 || pol.MaxRetries <= 0 {
		return nil
	}
	hp := &hybrid.Policy{
		TimeoutS:   pol.Timeout.Seconds(),
		MaxRetries: pol.MaxRetries,
	}
	if pol.Breaker != nil {
		hp.BreakerThreshold = pol.Breaker.ErrorThreshold
	}
	return hp
}

// fluidTreeWeights resolves the probability each request targets each
// topology tree: the session journeys' step frequencies when sessions
// drive the client, else the client's tree-choice weights.
func (s *Sim) fluidTreeWeights() []float64 {
	n := len(s.topo.Trees)
	w := make([]float64, n)
	if s.clientCfg.Sessions != nil {
		for i, tw := range s.clientCfg.Sessions.TreeWeights() {
			if i < n {
				w[i] = tw
			}
		}
		return w
	}
	if s.treeChoice != nil && s.treeChoice.N() > 1 {
		for i := 0; i < n; i++ {
			w[i] = s.treeChoice.P(i)
		}
		return w
	}
	if n > 0 {
		w[0] = 1
	}
	return w
}

// meanServiceSeconds estimates one visit's mean busy time from the
// blueprint: path-probability-weighted sums of stage means plus the
// per-KB cost at the client's mean payload. Per-dispatch (batch) costs
// count in full — a deliberate upper bound, since batching amortizes
// them under load.
func meanServiceSeconds(bp *service.Blueprint, meanKB float64) (float64, error) {
	stageNs := func(idx int) float64 {
		st := &bp.Stages[idx]
		ns := st.PerKB * meanKB
		if st.Base != nil {
			ns += st.Base.Mean()
		}
		if st.PerJob != nil {
			ns += st.PerJob.Mean()
		}
		return ns
	}
	pathNs := func(p *service.PathSpec) float64 {
		ns := 0.0
		for _, idx := range p.Stages {
			ns += stageNs(idx)
		}
		return ns
	}
	var ns float64
	if len(bp.PathProbs) == len(bp.Paths) && len(bp.PathProbs) > 0 {
		var total float64
		for _, p := range bp.PathProbs {
			total += p
		}
		for i := range bp.Paths {
			ns += bp.PathProbs[i] / total * pathNs(&bp.Paths[i])
		}
	} else {
		ns = pathNs(&bp.Paths[0])
	}
	if math.IsNaN(ns) || math.IsInf(ns, 0) || ns <= 0 {
		return 0, fmt.Errorf("sim: hybrid fidelity needs a finite positive mean service time for %q (got %vns; heavy-tailed stages without a mean cannot be fluid-modeled)", bp.Name, ns)
	}
	return ns / 1e9, nil
}

// closedPopulationRate solves the closed-population fixed point over the
// full service chain: n users cycling through think time Z and every
// service's queue, λ = n / (Z + Σ visits·(E[S] + Wq)). Like
// analytic.ClosedMMkRate but multi-service; the returned rate never
// exceeds the bottleneck capacity.
func closedPopulationRate(n, thinkS float64, svcs []hybrid.Service) float64 {
	if n <= 0 {
		return 0
	}
	// Effective per-visit service times: DVFS degrades stretch E[S] by
	// 1/speed, shifting both the zero-contention base time and the
	// bottleneck capacity the fixed point clamps to.
	es := make([]float64, len(svcs))
	for i := range svcs {
		es[i] = svcs[i].MeanServiceS
		if svcs[i].Speed != nil {
			sp := svcs[i].Speed()
			if !(sp > 0) {
				return 0 // frozen service: closed users pile up behind it
			}
			es[i] = svcs[i].MeanServiceS / sp
		}
	}
	capacity := math.Inf(1)
	base := thinkS
	for i := range svcs {
		sv := &svcs[i]
		if sv.Visits <= 0 {
			continue
		}
		base += sv.Visits * es[i]
		k := sv.Servers()
		if k <= 0 {
			// Total outage of a required service (every replica down under
			// a fault plan): closed users pile up behind it and the system
			// delivers nothing until it recovers.
			return 0
		}
		if c := float64(k) / es[i] / sv.Visits; c < capacity {
			capacity = c
		}
	}
	if base <= 0 {
		return 0
	}
	lam := n / base
	if !math.IsInf(capacity, 1) && lam > 0.999*capacity {
		lam = 0.999 * capacity
	}
	for i := 0; i < 64; i++ {
		r := thinkS
		saturated := false
		for j := range svcs {
			sv := &svcs[j]
			r += sv.Visits * es[j]
			if sv.Visits <= 0 {
				continue
			}
			w := analytic.MMkMeanWait(lam*sv.Visits, 1/es[j], sv.Servers())
			if analytic.IsSaturated(w) {
				saturated = true
				break
			}
			r += sv.Visits * w
		}
		if saturated {
			if math.IsInf(capacity, 1) {
				// No finite bottleneck to clamp to (defensive: the zero-
				// server scan above should have caught this) — report zero
				// throughput rather than letting Inf leak into accrual.
				return 0
			}
			lam = 0.999 * capacity
			continue
		}
		next := n / r
		if !math.IsInf(capacity, 1) && next > 0.999*capacity {
			next = 0.999 * capacity
		}
		lam = 0.5*lam + 0.5*next
	}
	if math.IsNaN(lam) || math.IsInf(lam, 0) || lam < 0 {
		return 0
	}
	return lam
}
