package sim

import (
	"math"
	"testing"

	"uqsim/internal/cluster"
	"uqsim/internal/des"
	"uqsim/internal/dist"
	"uqsim/internal/fault"
	"uqsim/internal/graph"
	"uqsim/internal/job"
	"uqsim/internal/service"
	"uqsim/internal/workload"
)

// TestDeterminism: identical seeds must produce bit-identical reports —
// the reproducibility guarantee the whole validation relies on.
func TestDeterminism(t *testing.T) {
	run := func() *Report {
		s := buildSingle(t, dist.NewExponential(float64(100*des.Microsecond)), 2, 15000)
		rep, err := s.Run(100*des.Millisecond, des.Second)
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	a, b := run(), run()
	if a.Completions != b.Completions {
		t.Fatalf("completions differ: %d vs %d", a.Completions, b.Completions)
	}
	if a.Latency.Mean() != b.Latency.Mean() || a.Latency.P99() != b.Latency.P99() {
		t.Fatalf("latencies differ: %v/%v vs %v/%v",
			a.Latency.Mean(), a.Latency.P99(), b.Latency.Mean(), b.Latency.P99())
	}
}

// TestSeedSensitivity: different seeds must actually change the sample
// path (guards against accidentally ignoring the seed).
func TestSeedSensitivity(t *testing.T) {
	run := func(seed uint64) uint64 {
		s := New(Options{Seed: seed})
		s.AddMachine("m0", 16, cluster.FreqSpec{})
		if _, err := s.Deploy(service.SingleStage("svc", dist.NewExponential(float64(100*des.Microsecond))),
			RoundRobin, Placement{Machine: "m0", Cores: 1}); err != nil {
			t.Fatal(err)
		}
		if err := s.SetTopology(graph.Linear("main", "svc")); err != nil {
			t.Fatal(err)
		}
		s.SetClient(ClientConfig{Pattern: workload.ConstantRate(5000)})
		rep, err := s.Run(0, des.Second)
		if err != nil {
			t.Fatal(err)
		}
		return rep.Completions
	}
	if run(1) == run(2) {
		t.Fatal("different seeds gave identical completion counts (suspicious)")
	}
}

// TestConservation: arrivals = completions + in-flight, and every
// instance's arrived = completed + queued + in-service.
func TestConservation(t *testing.T) {
	s := buildSingle(t, dist.NewExponential(float64(100*des.Microsecond)), 1, 12000)
	rep, err := s.Run(0, 2*des.Second)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Arrivals != rep.Completions+uint64(rep.InFlight) {
		t.Fatalf("conservation violated: %d arrivals vs %d completed + %d in flight",
			rep.Arrivals, rep.Completions, rep.InFlight)
	}
}

// TestConservationUnderFaults: with resilience policies, load shedding,
// client timeouts, and a fault plan all active at once, every counted
// arrival lands in exactly one outcome bucket:
//
//	arrivals == completions + timeouts + shed + dropped (+ in-flight)
//
// both at the horizon (with in-flight) and after a full drain (without),
// and with a warmup window that requests straddle in both directions.
func TestConservationUnderFaults(t *testing.T) {
	for _, warmup := range []des.Time{0, 200 * des.Millisecond} {
		s := New(Options{Seed: 17})
		s.AddMachine("m0", 4, cluster.FreqSpec{})
		s.AddMachine("m1", 4, cluster.FreqSpec{})
		if _, err := s.Deploy(service.SingleStage("svc", dist.NewExponential(float64(des.Millisecond))),
			RoundRobin,
			Placement{Machine: "m0", Cores: 1},
			Placement{Machine: "m1", Cores: 1}); err != nil {
			t.Fatal(err)
		}
		if err := s.SetTopology(graph.Linear("main", "svc")); err != nil {
			t.Fatal(err)
		}
		// 1.25× overload on 2×1000 QPS capacity: queues pin at the shedding
		// bound (excess arrivals shed), requests deep in the queue outlive
		// the client's 60ms patience (timeouts), and a window where both
		// instances are down leaves arrivals nowhere to go but the dropped
		// bucket.
		s.SetClient(ClientConfig{
			Pattern: workload.ConstantRate(2500),
			Timeout: 60 * des.Millisecond,
		})
		if err := s.SetServicePolicy("svc", fault.Policy{
			Timeout: 80 * des.Millisecond, MaxRetries: 1,
			BackoffBase: 5 * des.Millisecond, BackoffJitter: 0.5,
		}); err != nil {
			t.Fatal(err)
		}
		if err := s.SetMaxQueue("svc", 100); err != nil {
			t.Fatal(err)
		}
		if err := s.InstallFaults(fault.Plan{Events: []fault.Event{
			{At: 300 * des.Millisecond, Kind: fault.KillInstance, Service: "svc", Instance: 0},
			{At: 500 * des.Millisecond, Kind: fault.RestartInstance, Service: "svc", Instance: 0},
			{At: 400 * des.Millisecond, Kind: fault.CrashMachine, Machine: "m1"},
			{At: 450 * des.Millisecond, Kind: fault.RecoverMachine, Machine: "m1"},
		}}); err != nil {
			t.Fatal(err)
		}
		rep, err := s.Run(warmup, des.Second)
		if err != nil {
			t.Fatal(err)
		}
		check := func(rep *Report, drained bool) {
			t.Helper()
			total := rep.Completions + rep.Timeouts + rep.Shed + rep.Dropped + uint64(rep.InFlight)
			if rep.Arrivals != total {
				t.Fatalf("warmup %v drained=%v: arrivals %d != %d (completions %d + timeouts %d + shed %d + dropped %d + in-flight %d)",
					warmup, drained, rep.Arrivals, total,
					rep.Completions, rep.Timeouts, rep.Shed, rep.Dropped, rep.InFlight)
			}
		}
		check(rep, false)
		// Every failure mode must actually have fired, or the invariant
		// checked nothing.
		if rep.Timeouts == 0 || rep.Shed == 0 || rep.Dropped == 0 {
			t.Fatalf("warmup %v: want all buckets exercised, got timeouts %d shed %d dropped %d",
				warmup, rep.Timeouts, rep.Shed, rep.Dropped)
		}
		// Drain: no arrivals after the horizon, so pending retries, backoff
		// timers, and client-timeout guards all resolve.
		s.Engine().Run()
		if n := len(s.inflight); n != 0 {
			t.Fatalf("warmup %v: %d requests stuck after drain", warmup, n)
		}
		drained := s.report(s.Engine().Now())
		if drained.InFlight != 0 {
			t.Fatalf("warmup %v: drained report claims %d in flight", warmup, drained.InFlight)
		}
		check(drained, true)
	}
}

// TestConservationUnderOverload extends the bucket invariant to the
// overload-control machinery: with deadlines, hedged requests, CoDel
// admission, shedding, client timeouts, and outages all active at once,
//
//	arrivals == completions + timeouts + shed + dropped +
//	            deadline-expired (+ in-flight)
//
// at the horizon and after a full drain, with every bucket — including
// the new deadline one — actually exercised, and a hedge never counted
// as an arrival.
func TestConservationUnderOverload(t *testing.T) {
	for _, warmup := range []des.Time{0, 200 * des.Millisecond} {
		s := New(Options{Seed: 17})
		s.AddMachine("m0", 4, cluster.FreqSpec{})
		s.AddMachine("m1", 4, cluster.FreqSpec{})
		if _, err := s.Deploy(service.SingleStage("svc", dist.NewExponential(float64(des.Millisecond))),
			RoundRobin,
			Placement{Machine: "m0", Cores: 1},
			Placement{Machine: "m1", Cores: 1}); err != nil {
			t.Fatal(err)
		}
		if err := s.SetTopology(graph.Linear("main", "svc")); err != nil {
			t.Fatal(err)
		}
		// 1.25× overload; budgets span the 60ms patience so some requests
		// expire (budget < queueing delay < patience) while others time
		// out first.
		s.SetClient(ClientConfig{
			Pattern: workload.ConstantRate(2500),
			Timeout: 60 * des.Millisecond,
			Budget:  dist.NewUniform(float64(10*des.Millisecond), float64(100*des.Millisecond)),
		})
		if err := s.SetServicePolicy("svc", fault.Policy{
			Timeout: 80 * des.Millisecond, MaxRetries: 1,
			BackoffBase: 5 * des.Millisecond, BackoffJitter: 0.5,
			Hedge: &fault.HedgeSpec{Delay: 10 * des.Millisecond},
		}); err != nil {
			t.Fatal(err)
		}
		if err := s.SetMaxQueue("svc", 100); err != nil {
			t.Fatal(err)
		}
		if err := s.SetQueueDiscipline("svc", fault.QueueDiscipline{
			Kind: fault.QueueCoDel, Target: 5 * des.Millisecond, Interval: 50 * des.Millisecond,
		}); err != nil {
			t.Fatal(err)
		}
		if err := s.InstallFaults(fault.Plan{Events: []fault.Event{
			{At: 300 * des.Millisecond, Kind: fault.KillInstance, Service: "svc", Instance: 0},
			{At: 500 * des.Millisecond, Kind: fault.RestartInstance, Service: "svc", Instance: 0},
			{At: 400 * des.Millisecond, Kind: fault.CrashMachine, Machine: "m1"},
			{At: 450 * des.Millisecond, Kind: fault.RecoverMachine, Machine: "m1"},
		}}); err != nil {
			t.Fatal(err)
		}
		rep, err := s.Run(warmup, des.Second)
		if err != nil {
			t.Fatal(err)
		}
		check := func(rep *Report, drained bool) {
			t.Helper()
			total := rep.Completions + rep.Timeouts + rep.Shed + rep.Dropped +
				rep.DeadlineExpired + uint64(rep.InFlight)
			if rep.Arrivals != total {
				t.Fatalf("warmup %v drained=%v: arrivals %d != %d (completions %d + timeouts %d + shed %d + dropped %d + deadline %d + in-flight %d)",
					warmup, drained, rep.Arrivals, total, rep.Completions,
					rep.Timeouts, rep.Shed, rep.Dropped, rep.DeadlineExpired, rep.InFlight)
			}
		}
		check(rep, false)
		if rep.Timeouts == 0 || rep.Shed == 0 || rep.Dropped == 0 || rep.DeadlineExpired == 0 {
			t.Fatalf("warmup %v: want all buckets exercised, got timeouts %d shed %d dropped %d deadline %d",
				warmup, rep.Timeouts, rep.Shed, rep.Dropped, rep.DeadlineExpired)
		}
		if rep.HedgesIssued == 0 {
			t.Fatalf("warmup %v: hedging never fired", warmup)
		}
		// Hedges are attempts, not arrivals: the client offered at most
		// 2500 QPS × 1s regardless of how many backups were raced.
		if rep.Arrivals > 2600 {
			t.Fatalf("warmup %v: arrivals %d inflated by hedges", warmup, rep.Arrivals)
		}
		// Cancelled and wasted work only ever shrink the served pie;
		// they are instance-side views, never new requests.
		if rep.CanceledWork+rep.WastedWork == 0 {
			t.Fatalf("warmup %v: overload run should cancel or waste some work", warmup)
		}
		s.Engine().Run()
		if n := len(s.inflight); n != 0 {
			t.Fatalf("warmup %v: %d requests stuck after drain", warmup, n)
		}
		drained := s.report(s.Engine().Now())
		if drained.InFlight != 0 {
			t.Fatalf("warmup %v: drained report claims %d in flight", warmup, drained.InFlight)
		}
		check(drained, true)
	}
}

// TestNoLostRequestsAcrossComplexTopology: with fanout, pools, and
// netproc, a drained system must complete every admitted request.
func TestNoLostRequestsAcrossComplexTopology(t *testing.T) {
	s := New(Options{Seed: 5})
	s.AddMachine("m0", 16, cluster.FreqSpec{})
	s.AddMachine("m1", 16, cluster.FreqSpec{})
	deploy := func(name, mach string, cores int) {
		t.Helper()
		if _, err := s.Deploy(service.SingleStage(name, dist.NewExponential(float64(50*des.Microsecond))),
			RoundRobin, Placement{Machine: mach, Cores: cores}); err != nil {
			t.Fatal(err)
		}
	}
	deploy("proxy", "m0", 2)
	deploy("a", "m1", 2)
	deploy("b", "m1", 2)
	if err := s.EnableNetwork(NetworkConfig{
		CoresPerMachine: 1,
		PerMsg:          dist.NewDeterministic(float64(5 * des.Microsecond)),
		ClientTx:        true,
	}); err != nil {
		t.Fatal(err)
	}
	topo := &graph.Topology{
		Trees: []graph.Tree{{
			Name: "fan", Weight: 1, Root: 0,
			Nodes: []graph.Node{
				{ID: 0, Service: "proxy", Instance: -1, Children: []int{1, 2},
					AcquireConn: []string{"cli"}},
				{ID: 1, Service: "a", Instance: -1, Children: []int{3}},
				{ID: 2, Service: "b", Instance: -1, Children: []int{3}},
				{ID: 3, Service: "proxy", Instance: -1, ReleaseConn: []string{"cli"}},
			},
		}},
		Pools: []graph.ConnPool{{Name: "cli", Capacity: 32}},
	}
	if err := s.SetTopology(topo); err != nil {
		t.Fatal(err)
	}
	s.SetClient(ClientConfig{Pattern: workload.ConstantRate(4000)})
	rep, err := s.Run(0, des.Second)
	if err != nil {
		t.Fatal(err)
	}
	// Let in-flight requests drain: no arrivals after horizon, so the
	// remaining events complete everything.
	s.Engine().Run()
	if len(s.inflight) != 0 {
		t.Fatalf("%d requests stuck after drain", len(s.inflight))
	}
	if len(s.pending) != 0 {
		t.Fatalf("%d jobs stuck in netproc", len(s.pending))
	}
	for _, p := range s.pools {
		if p.inUse() != 0 {
			t.Fatalf("pool %s leaked %d tokens", p.spec.Name, p.inUse())
		}
		if len(p.waiters) != 0 {
			t.Fatalf("pool %s has %d stranded waiters", p.spec.Name, len(p.waiters))
		}
	}
	_ = rep
}

// TestPathProbsSampledAtDispatch: a service-internal execution-path state
// machine (the paper's MongoDB example) splits traffic by the configured
// probabilities.
func TestPathProbsSampledAtDispatch(t *testing.T) {
	s := New(Options{Seed: 6})
	s.AddMachine("m0", 16, cluster.FreqSpec{})
	bp := &service.Blueprint{
		Name: "store",
		Stages: []service.StageSpec{
			{Name: "fast", PerJob: dist.NewDeterministic(float64(10 * des.Microsecond))},
			{Name: "slow", PerJob: dist.NewDeterministic(float64(1 * des.Millisecond))},
		},
		Paths: []service.PathSpec{
			{Name: "memory", Stages: []int{0}},
			{Name: "disk", Stages: []int{0, 1}},
		},
		PathProbs: []float64{0.8, 0.2},
	}
	if _, err := s.Deploy(bp, RoundRobin, Placement{Machine: "m0", Cores: 4}); err != nil {
		t.Fatal(err)
	}
	if err := s.SetTopology(graph.Linear("main", "store")); err != nil {
		t.Fatal(err)
	}
	s.SetClient(ClientConfig{Pattern: workload.ConstantRate(2000)})
	rep, err := s.Run(0, 2*des.Second)
	if err != nil {
		t.Fatal(err)
	}
	// ≈20% of requests take the 1ms path: detectable in the latency mix.
	slowShare := 0.0
	h := rep.Latency
	// p50 should be the fast path; p95 the slow one.
	if h.P50() > 100*des.Microsecond {
		t.Fatalf("p50 %v: fast path should dominate", h.P50())
	}
	if h.Quantile(0.9) < 900*des.Microsecond {
		t.Fatalf("p90 %v: slow path should appear by p90 (20%% share)", h.Quantile(0.9))
	}
	_ = slowShare
}

// TestOnJobDoneHook: the tracing hook fires once per node visit with the
// right service attribution.
func TestOnJobDoneHook(t *testing.T) {
	s := New(Options{Seed: 7})
	s.AddMachine("m0", 8, cluster.FreqSpec{})
	for _, name := range []string{"x", "y"} {
		if _, err := s.Deploy(service.SingleStage(name, dist.NewDeterministic(float64(10*des.Microsecond))),
			RoundRobin, Placement{Machine: "m0", Cores: 1}); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.SetTopology(graph.Linear("main", "x", "y")); err != nil {
		t.Fatal(err)
	}
	s.SetClient(ClientConfig{Pattern: workload.ConstantRate(100), Proc: workload.Uniform})
	counts := map[string]int{}
	s.OnJobDone = func(now des.Time, j *job.Job, svc string) {
		counts[svc]++
		if j.Instance == "" || j.Machine == "" {
			t.Error("job missing instance/machine attribution")
		}
	}
	rep, err := s.Run(0, des.Second)
	if err != nil {
		t.Fatal(err)
	}
	if uint64(counts["x"]) != rep.Completions || uint64(counts["y"]) != rep.Completions {
		t.Fatalf("hook counts %v vs completions %d", counts, rep.Completions)
	}
}

// TestLeastLoadedPolicyPrefersIdle: with one hot instance, least-loaded
// routing shifts traffic to the idle one.
func TestLeastLoadedPolicyPrefersIdle(t *testing.T) {
	s := New(Options{Seed: 8})
	s.AddMachine("m0", 16, cluster.FreqSpec{})
	// Instance 0 is slow (its machine runs everything at the same rate,
	// but we make it busy by service-time asymmetry via separate
	// deployments is complex; instead verify least-loaded balances as
	// well as round-robin under symmetric load).
	if _, err := s.Deploy(service.SingleStage("svc", dist.NewExponential(float64(200*des.Microsecond))),
		LeastLoaded,
		Placement{Machine: "m0", Cores: 1},
		Placement{Machine: "m0", Cores: 1},
	); err != nil {
		t.Fatal(err)
	}
	if err := s.SetTopology(graph.Linear("main", "svc")); err != nil {
		t.Fatal(err)
	}
	s.SetClient(ClientConfig{Pattern: workload.ConstantRate(8000)})
	rep, err := s.Run(100*des.Millisecond, des.Second)
	if err != nil {
		t.Fatal(err)
	}
	var counts []float64
	for _, ir := range rep.Instances {
		counts = append(counts, float64(ir.Completed))
	}
	if len(counts) != 2 {
		t.Fatalf("instances %d", len(counts))
	}
	imbalance := math.Abs(counts[0]-counts[1]) / (counts[0] + counts[1])
	if imbalance > 0.05 {
		t.Fatalf("least-loaded imbalance %v", imbalance)
	}
}

// TestRandomPolicy: random routing also spreads load roughly evenly.
func TestRandomPolicy(t *testing.T) {
	s := New(Options{Seed: 9})
	s.AddMachine("m0", 16, cluster.FreqSpec{})
	if _, err := s.Deploy(service.SingleStage("svc", dist.NewDeterministic(float64(50*des.Microsecond))),
		Random,
		Placement{Machine: "m0", Cores: 1},
		Placement{Machine: "m0", Cores: 1},
		Placement{Machine: "m0", Cores: 1},
	); err != nil {
		t.Fatal(err)
	}
	if err := s.SetTopology(graph.Linear("main", "svc")); err != nil {
		t.Fatal(err)
	}
	s.SetClient(ClientConfig{Pattern: workload.ConstantRate(9000)})
	rep, err := s.Run(0, des.Second)
	if err != nil {
		t.Fatal(err)
	}
	for _, ir := range rep.Instances {
		share := float64(ir.Completed) / float64(rep.Completions)
		if share < 0.25 || share > 0.42 {
			t.Fatalf("random share %v for %s", share, ir.Name)
		}
	}
}

// TestPoolTokensSetConnection: acquiring a pool token rebinds the job's
// connection id, classifying epoll subqueues by downstream connection.
func TestPoolTokensSetConnection(t *testing.T) {
	s := New(Options{Seed: 10})
	s.AddMachine("m0", 8, cluster.FreqSpec{})
	var conns []int
	bp := service.SingleStage("svc", dist.NewDeterministic(float64(10*des.Microsecond)))
	if _, err := s.Deploy(bp, RoundRobin, Placement{Machine: "m0", Cores: 1}); err != nil {
		t.Fatal(err)
	}
	topo := &graph.Topology{
		Trees: []graph.Tree{{
			Name: "main", Weight: 1, Root: 0,
			Nodes: []graph.Node{{
				ID: 0, Service: "svc", Instance: -1,
				AcquireConn: []string{"p"}, ReleaseConn: []string{"p"},
			}},
		}},
		Pools: []graph.ConnPool{{Name: "p", Capacity: 2}},
	}
	if err := s.SetTopology(topo); err != nil {
		t.Fatal(err)
	}
	s.SetClient(ClientConfig{Pattern: workload.ConstantRate(1000), Proc: workload.Uniform})
	s.OnJobDone = func(now des.Time, j *job.Job, svc string) {
		conns = append(conns, j.Conn)
	}
	if _, err := s.Run(0, 20*des.Millisecond); err != nil {
		t.Fatal(err)
	}
	if len(conns) == 0 {
		t.Fatal("no jobs observed")
	}
	for _, c := range conns {
		if c < 1<<20 {
			t.Fatalf("conn %d not from the pool token space", c)
		}
	}
}

// TestDynamicBranching: a runtime brancher routes requests down exactly
// one child subtree, and pruned leaves are accounted correctly.
func TestDynamicBranching(t *testing.T) {
	s := New(Options{Seed: 11})
	s.AddMachine("m0", 8, cluster.FreqSpec{})
	for _, svc := range []struct {
		name string
		cost float64
	}{
		{"front", float64(10 * des.Microsecond)},
		{"hitpath", float64(20 * des.Microsecond)},
		{"misspath", float64(2 * des.Millisecond)},
	} {
		if _, err := s.Deploy(service.SingleStage(svc.name, dist.NewDeterministic(svc.cost)),
			RoundRobin, Placement{Machine: "m0", Cores: 1}); err != nil {
			t.Fatal(err)
		}
	}
	topo := &graph.Topology{Trees: []graph.Tree{{
		Name: "main", Weight: 1, Root: 0,
		Nodes: []graph.Node{
			{ID: 0, Service: "front", Instance: -1, Children: []int{1, 2}, BranchKey: "cache"},
			{ID: 1, Service: "hitpath", Instance: -1},
			{ID: 2, Service: "misspath", Instance: -1},
		},
	}}}
	if err := s.SetTopology(topo); err != nil {
		t.Fatal(err)
	}
	// Alternate: even requests hit, odd requests miss.
	n := 0
	s.RegisterBrancher("cache", func(now des.Time, req *job.Request, children []int) []int {
		n++
		if n%2 == 0 {
			return children[:1]
		}
		return children[1:]
	})
	s.SetClient(ClientConfig{Pattern: workload.ConstantRate(1000), Proc: workload.Uniform})
	rep, err := s.Run(0, des.Second)
	if err != nil {
		t.Fatal(err)
	}
	if rep.InFlight > 2 {
		t.Fatalf("in flight %d: pruned-leaf accounting leak", rep.InFlight)
	}
	hit := rep.PerTier["hitpath"].Count()
	miss := rep.PerTier["misspath"].Count()
	if hit+miss != rep.Completions {
		t.Fatalf("hit %d + miss %d != completions %d", hit, miss, rep.Completions)
	}
	if hit == 0 || miss == 0 {
		t.Fatal("both branches should be exercised")
	}
	// Latency bimodal: p50 fast (~30µs), p99 slow (~2ms).
	if rep.Latency.P99() < des.Millisecond {
		t.Fatalf("p99 %v should reflect the miss path", rep.Latency.P99())
	}
}

// TestBranchingValidation: unregistered branchers and invalid selections
// panic loudly.
func TestBranchingValidation(t *testing.T) {
	build := func() *Sim {
		s := New(Options{Seed: 12})
		s.AddMachine("m0", 8, cluster.FreqSpec{})
		for _, name := range []string{"front", "a", "b"} {
			if _, err := s.Deploy(service.SingleStage(name, dist.NewDeterministic(100)),
				RoundRobin, Placement{Machine: "m0", Cores: 1}); err != nil {
				t.Fatal(err)
			}
		}
		topo := &graph.Topology{Trees: []graph.Tree{{
			Name: "main", Weight: 1, Root: 0,
			Nodes: []graph.Node{
				{ID: 0, Service: "front", Instance: -1, Children: []int{1, 2}, BranchKey: "k"},
				{ID: 1, Service: "a", Instance: -1},
				{ID: 2, Service: "b", Instance: -1},
			},
		}}}
		if err := s.SetTopology(topo); err != nil {
			t.Fatal(err)
		}
		s.SetClient(ClientConfig{Pattern: workload.ConstantRate(100), Proc: workload.Uniform})
		return s
	}
	// Unregistered brancher.
	func() {
		defer func() {
			if recover() == nil {
				t.Error("unregistered brancher should panic")
			}
		}()
		s := build()
		_, _ = s.Run(0, 20*des.Millisecond)
	}()
	// Empty selection.
	func() {
		defer func() {
			if recover() == nil {
				t.Error("empty selection should panic")
			}
		}()
		s := build()
		s.RegisterBrancher("k", func(des.Time, *job.Request, []int) []int { return nil })
		_, _ = s.Run(0, 20*des.Millisecond)
	}()
	// Non-child selection.
	func() {
		defer func() {
			if recover() == nil {
				t.Error("non-child selection should panic")
			}
		}()
		s := build()
		s.RegisterBrancher("k", func(des.Time, *job.Request, []int) []int { return []int{0} })
		_, _ = s.Run(0, 20*des.Millisecond)
	}()
}
