// Package sim is the µqSim core: it assembles a cluster, microservice
// deployments, an inter-service topology, and a workload generator into one
// discrete-event simulation, and produces throughput/latency reports.
//
// Request flow (paper Fig. 2): the client emits a request; the sim picks a
// weighted path tree and walks it. Entering a node acquires any declared
// connection tokens (blocking back-pressure), routes the job through the
// destination machine's network-processing service when it crosses
// machines, and enqueues it into an instance of the node's microservice
// (chosen by the deployment's load-balancing policy). When the node's job
// completes, tokens listed for release are returned, children receive
// copies (fan-out), join nodes wait for all parents (fan-in), and the
// request finishes when every leaf has completed.
package sim

import (
	"fmt"

	"uqsim/internal/cluster"
	"uqsim/internal/des"
	"uqsim/internal/dist"
	"uqsim/internal/graph"
	"uqsim/internal/job"
	"uqsim/internal/rng"
	"uqsim/internal/service"
	"uqsim/internal/stats"
	"uqsim/internal/workload"
)

// Policy selects how a deployment load-balances across instances.
type Policy int

// Load-balancing policies.
const (
	RoundRobin Policy = iota
	Random
	LeastLoaded
)

// Placement pins one instance of a deployment to a machine with a core
// budget.
type Placement struct {
	Machine string
	Cores   int
}

// NetworkConfig models per-machine network (interrupt) processing as a
// shared colocated service, per the paper: "each server is coupled with a
// network processing process as a standalone service, and all microservices
// deployed on the same server share the processes handling interrupts."
type NetworkConfig struct {
	// CoresPerMachine reserves this many cores on every machine for
	// interrupt processing.
	CoresPerMachine int
	// PerMsg is the processing cost of one message (nil: 0).
	PerMsg dist.Sampler
	// PerKB adds payload-proportional cost in ns/KB.
	PerKB float64
	// ClientTx also charges a transmit pass through the sending
	// machine's network service for responses leaving the cluster.
	ClientTx bool
}

// ClientConfig describes the workload source.
type ClientConfig struct {
	// Pattern sets the open-loop target rate over time.
	Pattern workload.Pattern
	// Proc selects the interarrival process.
	Proc workload.Process
	// ClosedUsers switches to a closed-loop client with this many users
	// when positive (Pattern is then ignored).
	ClosedUsers int
	// Think samples closed-loop think time in ns (nil: none).
	Think dist.Sampler
	// SizeKB samples request payload size (nil: 0).
	SizeKB dist.Sampler
	// Connections is the number of distinct client connections used to
	// classify requests into epoll subqueues when no connection pool is
	// declared at the root (default 64).
	Connections int
	// Timeout, when positive, makes the client give up on requests
	// older than this: the request is recorded at the timeout value
	// (what the client observed) and counted in Report.Timeouts, while
	// the server-side work still runs to completion. This models the
	// effect the paper notes its simulator lacks (§IV-C).
	Timeout des.Time
	// MaxRetries re-issues a timed-out request up to this many times
	// (requires Timeout > 0). Retries are fresh load: a saturated
	// system with retries degrades faster, the classic retry storm.
	MaxRetries int
	// Budget samples each request's end-to-end deadline budget in ns
	// (nil: no deadlines). The request carries the absolute deadline
	// through its whole subtree; expiry short-circuits remaining work —
	// queued-not-started jobs are cancelled, pending retry and hedge
	// timers removed from the event heap, and the request counted in
	// Report.DeadlineExpired. Unlike Timeout (client patience, server
	// work runs on abandoned), an expired budget actively reclaims
	// capacity. Samples are drawn from a dedicated RNG stream.
	Budget dist.Sampler
}

// Options configures a simulation run.
type Options struct {
	// Seed drives all random streams.
	Seed uint64
}

// Sim is one assembled simulation.
type Sim struct {
	eng     *des.Engine
	split   *rng.Splitter
	cluster *cluster.Cluster
	fac     *job.Factory

	deployments map[string]*Deployment
	depOrder    []string

	netCfg  *NetworkConfig
	netproc map[string]*service.Instance // machine name → interrupt service

	topo       *graph.Topology
	treeChoice *dist.Choice
	pathIDs    [][][]int // tree → node → resolved PathID (len 1 slice for alignment)
	pools      map[string]*connPool
	poolOrder  []string // deterministic iteration for releaseAll

	clientCfg  ClientConfig
	clientRNG  *rng.Source
	closedLoop *workload.ClosedLoop

	inflight map[job.ID]*reqState
	pending  map[job.ID]*delivery // jobs in transit through netproc

	branchers map[string]Brancher

	// Resilience: per-edge policies and their live attempt state.
	svcPolicies  map[string]*policyRuntime
	nodePolicies map[[2]int]*policyRuntime // [tree,node] override
	hasPolicies  bool
	calls        map[job.ID]*call
	edgeExtra    map[string]des.Time // injected per-delivery latency by service
	retryRNG     *rng.Source

	// Overload control: deadline budgets, hedged requests, adaptive
	// admission. overloadOn (resolved at Run) gates all per-request
	// tracking so runs without these features pay nothing.
	hasHedge      bool
	hasDiscipline bool
	overloadOn    bool
	hedgeRNG      *rng.Source
	budgetRNG     *rng.Source
	edgeLat       map[[2]int]*stats.P2Quantile // [tree,node] → latency estimator

	// Measurement. completions/timeouts/shedReqs/droppedReqs are the
	// arrival-gated outcome buckets of the conservation identity;
	// windowDone counts deliveries by completion time and feeds goodput.
	warmupEnd    des.Time
	arrivals     uint64
	completions  uint64
	windowDone   uint64
	timeouts     uint64
	shedReqs     uint64
	droppedReqs  uint64
	deadlineReqs uint64
	breakerFast  uint64
	retriesN     uint64
	hedgesN      uint64
	hedgeWins    uint64
	errCounts    map[string]*ErrorCounts
	latency      *stats.LatencyHist
	perTier      map[string]*stats.LatencyHist

	// OnRequestDone observes every completed request (after or during
	// warmup), e.g. for the power manager's windowed tail tracker.
	OnRequestDone func(now des.Time, req *job.Request)
	// OnJobDone observes every completed service-local job with the
	// service name of the node it executed — the hook the tracer uses
	// to build per-request waterfalls.
	OnJobDone func(now des.Time, j *job.Job, service string)
}

// reqState tracks one in-flight request's progress through its tree.
type reqState struct {
	tree     *graph.Tree
	treeIdx  int
	arrived  []int    // per-node parent-completion counts
	at       des.Time // the request's arrival instant
	timedOut bool     // client gave up; server work continues abandoned

	// Overload-control bookkeeping (only maintained when a budget,
	// hedge, or discipline is configured): everything cleanupRequest
	// must cancel when the request terminates.
	deadlineEv *des.Event
	clientTO   *des.Event
	retries    []*des.Event     // pending retry timers
	calls      map[job.ID]*call // live policy-guarded attempts
}

// delivery is a job waiting to exit the network service.
type delivery struct {
	instance *service.Instance // final destination (nil: response to client)
	pathID   int
}

// New creates an empty simulation.
func New(opts Options) *Sim {
	split := rng.NewSplitter(opts.Seed)
	return &Sim{
		eng:          des.New(),
		split:        split,
		cluster:      cluster.NewCluster(),
		fac:          job.NewFactory(),
		deployments:  make(map[string]*Deployment),
		netproc:      make(map[string]*service.Instance),
		pools:        make(map[string]*connPool),
		inflight:     make(map[job.ID]*reqState),
		pending:      make(map[job.ID]*delivery),
		branchers:    make(map[string]Brancher),
		svcPolicies:  make(map[string]*policyRuntime),
		nodePolicies: make(map[[2]int]*policyRuntime),
		calls:        make(map[job.ID]*call),
		edgeExtra:    make(map[string]des.Time),
		retryRNG:     split.Stream("retry"),
		hedgeRNG:     split.Stream("hedge"),
		budgetRNG:    split.Stream("budget"),
		edgeLat:      make(map[[2]int]*stats.P2Quantile),
		errCounts:    make(map[string]*ErrorCounts),
		latency:      stats.NewLatencyHist(),
		perTier:      make(map[string]*stats.LatencyHist),
	}
}

// Engine exposes the underlying event engine (read-mostly; used by the
// power manager to schedule decision epochs and by tests).
func (s *Sim) Engine() *des.Engine { return s.eng }

// Cluster exposes the machine registry.
func (s *Sim) Cluster() *cluster.Cluster { return s.cluster }

// AddMachine registers a machine.
func (s *Sim) AddMachine(name string, cores int, freq cluster.FreqSpec) *cluster.Machine {
	m := cluster.NewMachine(name, cores, freq)
	if err := s.cluster.Add(m); err != nil {
		panic(err)
	}
	return m
}

// Deployment is a named group of instances of one blueprint.
type Deployment struct {
	Name      string
	BP        *service.Blueprint
	Instances []*service.Instance
	LB        Policy

	rr         int
	rng        *rng.Source
	pathChoice *dist.Choice
	pathRNG    *rng.Source

	// down counts currently-killed instances; while zero, instance picking
	// takes the fault-oblivious fast path.
	down int
}

// Deploy creates instances of bp on the given placements under the
// service's name (used by graph nodes).
func (s *Sim) Deploy(bp *service.Blueprint, lb Policy, placements ...Placement) (*Deployment, error) {
	if len(placements) == 0 {
		return nil, fmt.Errorf("sim: deployment %s needs at least one placement", bp.Name)
	}
	if _, ok := s.deployments[bp.Name]; ok {
		return nil, fmt.Errorf("sim: duplicate deployment %s", bp.Name)
	}
	dep := &Deployment{
		Name: bp.Name, BP: bp, LB: lb,
		rng: s.split.Stream("lb", bp.Name),
	}
	if len(bp.PathProbs) > 0 {
		dep.pathChoice = dist.NewChoice(bp.PathProbs)
		dep.pathRNG = s.split.Stream("paths", bp.Name)
	}
	for i, p := range placements {
		m, ok := s.cluster.Machine(p.Machine)
		if !ok {
			return nil, fmt.Errorf("sim: deployment %s references unknown machine %q", bp.Name, p.Machine)
		}
		name := fmt.Sprintf("%s-%d", bp.Name, i)
		alloc, err := m.Allocate(name, p.Cores)
		if err != nil {
			return nil, err
		}
		in, err := service.NewInstance(s.eng, bp, name, alloc, s.split.Stream("instance", name))
		if err != nil {
			return nil, err
		}
		in.OnJobDone = s.handleJobDone
		in.OnJobDrop = s.handleJobDrop
		in.OnJobShed = s.handleJobShed
		dep.Instances = append(dep.Instances, in)
	}
	s.deployments[bp.Name] = dep
	s.depOrder = append(s.depOrder, bp.Name)
	return dep, nil
}

// Deployment looks up a deployment by service name.
func (s *Sim) Deployment(name string) (*Deployment, bool) {
	d, ok := s.deployments[name]
	return d, ok
}

// Deployments lists deployments in creation order.
func (s *Sim) Deployments() []*Deployment {
	out := make([]*Deployment, 0, len(s.depOrder))
	for _, n := range s.depOrder {
		out = append(out, s.deployments[n])
	}
	return out
}

// pick selects an instance according to the deployment's policy.
func (d *Deployment) pick() *service.Instance {
	switch d.LB {
	case Random:
		return d.Instances[d.rng.IntN(len(d.Instances))]
	case LeastLoaded:
		// Scan from a rotating start so ties spread across instances
		// instead of always landing on the first one.
		start := d.rr % len(d.Instances)
		d.rr++
		best := d.Instances[start]
		bestLoad := best.InFlight()
		for i := 1; i < len(d.Instances); i++ {
			in := d.Instances[(start+i)%len(d.Instances)]
			if l := in.InFlight(); l < bestLoad {
				best, bestLoad = in, l
			}
		}
		return best
	default:
		in := d.Instances[d.rr%len(d.Instances)]
		d.rr++
		return in
	}
}

// pickHealthy selects an instance skipping killed ones; nil when every
// instance is down. While nothing is down it is exactly pick(), so fault
// support costs healthy runs one integer comparison.
func (d *Deployment) pickHealthy() *service.Instance {
	if d.down == 0 {
		return d.pick()
	}
	healthy := make([]*service.Instance, 0, len(d.Instances))
	for _, in := range d.Instances {
		if !in.Down() {
			healthy = append(healthy, in)
		}
	}
	if len(healthy) == 0 {
		return nil
	}
	switch d.LB {
	case Random:
		return healthy[d.rng.IntN(len(healthy))]
	case LeastLoaded:
		start := d.rr % len(healthy)
		d.rr++
		best := healthy[start]
		bestLoad := best.InFlight()
		for i := 1; i < len(healthy); i++ {
			in := healthy[(start+i)%len(healthy)]
			if l := in.InFlight(); l < bestLoad {
				best, bestLoad = in, l
			}
		}
		return best
	default:
		in := healthy[d.rr%len(healthy)]
		d.rr++
		return in
	}
}

// EnableNetwork deploys one interrupt-processing instance per machine.
// Call after all machines exist and before Build.
func (s *Sim) EnableNetwork(cfg NetworkConfig) error {
	if cfg.CoresPerMachine < 1 {
		return fmt.Errorf("sim: network needs at least one core per machine")
	}
	if cfg.PerMsg == nil && cfg.PerKB == 0 {
		return fmt.Errorf("sim: network needs a message cost model")
	}
	s.netCfg = &cfg
	for _, m := range s.cluster.Machines() {
		bp := &service.Blueprint{
			Name: "netproc",
			Stages: []service.StageSpec{{
				Name:   "soft_irq",
				PerJob: cfg.PerMsg,
				PerKB:  cfg.PerKB,
			}},
			Paths: []service.PathSpec{{Name: "rx", Stages: []int{0}}},
		}
		name := "netproc@" + m.Name
		alloc, err := m.Allocate(name, cfg.CoresPerMachine)
		if err != nil {
			return fmt.Errorf("sim: reserving interrupt cores on %s: %w", m.Name, err)
		}
		in, err := service.NewInstance(s.eng, bp, name, alloc, s.split.Stream("netproc", m.Name))
		if err != nil {
			return err
		}
		in.OnJobDone = s.handleNetDone
		in.OnJobDrop = s.handleNetDrop
		s.netproc[m.Name] = in
	}
	return nil
}

// SetTopology installs the inter-service topology. All referenced services
// must already be deployed.
func (s *Sim) SetTopology(topo *graph.Topology) error {
	if err := topo.Validate(); err != nil {
		return err
	}
	s.pathIDs = make([][][]int, len(topo.Trees))
	for ti := range topo.Trees {
		t := &topo.Trees[ti]
		s.pathIDs[ti] = make([][]int, len(t.Nodes))
		for ni := range t.Nodes {
			n := &t.Nodes[ni]
			dep, ok := s.deployments[n.Service]
			if !ok {
				return fmt.Errorf("sim: tree %q node %d references undeployed service %q",
					t.Name, ni, n.Service)
			}
			if n.Instance >= len(dep.Instances) {
				return fmt.Errorf("sim: tree %q node %d pins instance %d of %d",
					t.Name, ni, n.Instance, len(dep.Instances))
			}
			pid := -1 // default: sample from PathProbs, else path 0
			if n.ServicePath != "" {
				pid = -1
				for i, p := range dep.BP.Paths {
					if p.Name == n.ServicePath {
						pid = i
						break
					}
				}
				if pid < 0 {
					return fmt.Errorf("sim: tree %q node %d references unknown path %q of %s",
						t.Name, ni, n.ServicePath, n.Service)
				}
			}
			s.pathIDs[ti][ni] = []int{pid}
		}
	}
	connBase := 1 << 20 // keep pool conn ids distinct from client conn ids
	for _, p := range topo.Pools {
		s.pools[p.Name] = newConnPool(p, connBase)
		s.poolOrder = append(s.poolOrder, p.Name)
		connBase += p.Capacity
	}
	s.topo = topo
	s.treeChoice = dist.NewChoice(topo.Weights())
	return nil
}

// Brancher decides at runtime which children of a branch node receive a
// request (selecting among node.Children by ID). A cache model, for
// example, returns the hit child or the miss chain depending on its state.
type Brancher func(now des.Time, req *job.Request, children []int) []int

// RegisterBrancher installs the decision function for all nodes whose
// BranchKey equals key. Must be called before Run for every key the
// topology references.
func (s *Sim) RegisterBrancher(key string, fn Brancher) {
	if key == "" || fn == nil {
		panic("sim: brancher needs a key and a function")
	}
	s.branchers[key] = fn
}

// SetClient installs the workload source.
func (s *Sim) SetClient(cfg ClientConfig) {
	if cfg.Connections <= 0 {
		cfg.Connections = 64
	}
	s.clientCfg = cfg
	s.clientRNG = s.split.Stream("client")
}

// Client reports the currently installed workload source.
func (s *Sim) Client() ClientConfig { return s.clientCfg }
