// Package sim is the µqSim core: it assembles a cluster, microservice
// deployments, an inter-service topology, and a workload generator into one
// discrete-event simulation, and produces throughput/latency reports.
//
// Request flow (paper Fig. 2): the client emits a request; the sim picks a
// weighted path tree and walks it. Entering a node acquires any declared
// connection tokens (blocking back-pressure), routes the job through the
// destination machine's network-processing service when it crosses
// machines, and enqueues it into an instance of the node's microservice
// (chosen by the deployment's load-balancing policy). When the node's job
// completes, tokens listed for release are returned, children receive
// copies (fan-out), join nodes wait for all parents (fan-in), and the
// request finishes when every leaf has completed.
package sim

import (
	"fmt"

	"uqsim/internal/cluster"
	"uqsim/internal/des"
	"uqsim/internal/dist"
	"uqsim/internal/fault"
	"uqsim/internal/graph"
	"uqsim/internal/hybrid"
	"uqsim/internal/job"
	"uqsim/internal/netfault"
	"uqsim/internal/rng"
	"uqsim/internal/service"
	"uqsim/internal/stats"
	"uqsim/internal/workload"
)

// Policy selects how a deployment load-balances across instances.
type Policy int

// Load-balancing policies.
const (
	RoundRobin Policy = iota
	Random
	LeastLoaded
)

// Placement pins one instance of a deployment to a machine with a core
// budget.
type Placement struct {
	Machine string
	Cores   int
}

// NetworkConfig models per-machine network (interrupt) processing as a
// shared colocated service, per the paper: "each server is coupled with a
// network processing process as a standalone service, and all microservices
// deployed on the same server share the processes handling interrupts."
type NetworkConfig struct {
	// CoresPerMachine reserves this many cores on every machine for
	// interrupt processing.
	CoresPerMachine int
	// PerMsg is the processing cost of one message (nil: 0).
	PerMsg dist.Sampler
	// PerKB adds payload-proportional cost in ns/KB.
	PerKB float64
	// ClientTx also charges a transmit pass through the sending
	// machine's network service for responses leaving the cluster.
	ClientTx bool
}

// ClientConfig describes the workload source.
type ClientConfig struct {
	// Pattern sets the open-loop target rate over time.
	Pattern workload.Pattern
	// Proc selects the interarrival process.
	Proc workload.Process
	// ClosedUsers switches to a closed-loop client with this many users
	// when positive (Pattern is then ignored).
	ClosedUsers int
	// Think samples closed-loop think time in ns (nil: none).
	Think dist.Sampler
	// SizeKB samples request payload size (nil: 0).
	SizeKB dist.Sampler
	// Connections is the number of distinct client connections used to
	// classify requests into epoll subqueues when no connection pool is
	// declared at the root (default 64).
	Connections int
	// Timeout, when positive, makes the client give up on requests
	// older than this: the request is recorded at the timeout value
	// (what the client observed) and counted in Report.Timeouts, while
	// the server-side work still runs to completion. This models the
	// effect the paper notes its simulator lacks (§IV-C).
	Timeout des.Time
	// MaxRetries re-issues a timed-out request up to this many times
	// (requires Timeout > 0). Retries are fresh load: a saturated
	// system with retries degrades faster, the classic retry storm.
	MaxRetries int
	// Budget samples each request's end-to-end deadline budget in ns
	// (nil: no deadlines). The request carries the absolute deadline
	// through its whole subtree; expiry short-circuits remaining work —
	// queued-not-started jobs are cancelled, pending retry and hedge
	// timers removed from the event heap, and the request counted in
	// Report.DeadlineExpired. Unlike Timeout (client patience, server
	// work runs on abandoned), an expired budget actively reclaims
	// capacity. Samples are drawn from a dedicated RNG stream.
	Budget dist.Sampler
	// Sessions switches to a session-based client: a population of
	// stateful users walking multi-step journeys across the topology's
	// trees, with think times, on/off cycles, population ramps, and flash
	// crowds. Takes effect when ClosedUsers is zero; Pattern is then
	// ignored. Each terminated request (completed, timed out with retries
	// exhausted, or failed) advances its user's journey.
	Sessions *workload.SessionConfig
	// Region homes the client in one of the geography's regions. Entry
	// hops then prefer that region's instances, pay WAN latency when the
	// nearest healthy replica lives elsewhere, and a served read of a
	// geo-replicated service outside this region counts as stale until
	// the serving region catches up (see SetReplication). Empty: the
	// client is region-blind.
	Region string
}

// Options configures a simulation run.
type Options struct {
	// Seed drives all random streams.
	Seed uint64
	// Engine, when non-nil, supplies the event engine the simulation
	// runs on (e.g. a pdes coordinator). Nil gets a fresh sequential
	// des.Engine. Any engine must execute events in the same
	// deterministic (time, seq) order — same-seed runs produce
	// identical results on every conforming engine.
	Engine des.Runner
}

// Sim is one assembled simulation.
type Sim struct {
	eng     des.Runner
	split   *rng.Splitter
	cluster *cluster.Cluster
	fac     *job.Factory

	deployments map[string]*Deployment
	depOrder    []string

	netCfg  *NetworkConfig
	netproc map[string]*service.Instance // machine name → interrupt service

	// Network fault model: nil until a partition, gray link, or domain
	// is installed — the perfect-fabric hot path pays one nil check.
	net     *netfault.State
	domains []netfault.Domain
	// crashedM counts overlapping crash causes per machine (a region
	// crash and a rack crash may both cover one machine); the machine is
	// up only while its count is zero, so overlapping correlated faults
	// heal independently — the same cut counting the partition model
	// uses, one level up.
	crashedM map[string]int
	linkRNG  map[[2]string]*rng.Source

	// Geography: nil until SetGeography installs the region layer. Every
	// region doubles as a failure domain (geoDomains) so correlated
	// fault events and per-domain gauges address regions by name.
	geo        *cluster.Geography
	geoDomains []netfault.Domain

	topo       *graph.Topology
	treeChoice *dist.Choice
	pathIDs    [][][]int // tree → node → resolved PathID (len 1 slice for alignment)
	pools      map[string]*connPool
	poolOrder  []string // deterministic iteration for releaseAll

	clientCfg  ClientConfig
	clientRNG  *rng.Source
	closedLoop *workload.ClosedLoop
	sessions   *workload.Sessions

	// Hybrid fidelity: nil until SetHybrid opts in. fluid is the live
	// background tier (built at Run, nil at sample rate 1.0); fluidIdx
	// maps service names to wait-injection indices; sampleRNG drives the
	// per-user Bernoulli sampling split.
	hybridCfg *hybrid.Config
	fluid     *hybrid.State
	fluidIdx  map[string]int
	sampleRNG *rng.Source
	hybridMon hybrid.GaugeRegistry
	// fgPattern is the run-local thinned arrival pattern the open-loop
	// generator uses under hybrid fidelity; the stored client config keeps
	// the unthinned pattern so it is never thinned twice.
	fgPattern workload.Pattern
	// loadScale multiplies the open-loop arrival rate; nil until the
	// first LoadStep fault wraps the client pattern. LoadStep events
	// write through it, so the generator sees rate changes live.
	loadScale *float64

	inflight map[job.ID]*reqState
	pending  map[job.ID]*delivery // jobs in transit through netproc

	branchers map[string]Brancher

	// Resilience: per-edge policies and their live attempt state.
	svcPolicies  map[string]*policyRuntime
	nodePolicies map[[2]int]*policyRuntime // [tree,node] override
	hasPolicies  bool
	calls        map[job.ID]*call
	edgeExtra    map[string]des.Time // injected per-delivery latency by service
	retryRNG     *rng.Source

	// Overload control: deadline budgets, hedged requests, adaptive
	// admission. overloadOn (resolved at Run) gates all per-request
	// tracking so runs without these features pay nothing.
	hasHedge      bool
	hasDiscipline bool
	overloadOn    bool
	isCanceledFn  func(j *job.Job) bool // installed on every instance while overloadOn
	hedgeRNG      *rng.Source
	budgetRNG     *rng.Source
	edgeLat       map[[2]int]*stats.P2Quantile // [tree,node] → latency estimator

	// Measurement. completions/timeouts/shedReqs/droppedReqs are the
	// arrival-gated outcome buckets of the conservation identity;
	// windowDone counts deliveries by completion time and feeds goodput.
	warmupEnd       des.Time
	arrivals        uint64
	completions     uint64
	windowDone      uint64
	timeouts        uint64
	shedReqs        uint64
	droppedReqs     uint64
	deadlineReqs    uint64
	unreachableReqs uint64
	breakerFast     uint64
	retriesN        uint64
	hedgesN         uint64
	hedgeWins       uint64
	regionHops      uint64 // deliveries where both endpoints have a region
	crossHops       uint64 // subset that crossed a region boundary
	staleReads      uint64 // cross-origin serves of a lagging replica
	errCounts       map[string]*ErrorCounts
	latency         *stats.LatencyHist
	perTier         map[string]*stats.LatencyHist

	// OnRequestDone observes every completed request (after or during
	// warmup), e.g. for the power manager's windowed tail tracker.
	OnRequestDone func(now des.Time, req *job.Request)
	// OnJobDone observes every completed service-local job with the
	// service name of the node it executed — the hook the tracer uses
	// to build per-request waterfalls.
	OnJobDone func(now des.Time, j *job.Job, service string)
	// OnCallResult observes the outcome of every dispatched call against
	// the instance that served (or lost) it: ok with the observed latency
	// on success, !ok for timeouts, sheds, and drops. Control planes feed
	// their per-instance success-rate and latency-quantile trackers from
	// it; nil costs the dispatch path nothing.
	OnCallResult func(now des.Time, instance string, ok bool, latency des.Time)
}

// observeCall reports one call outcome to an attached observer. Calls
// that never reached an instance (no healthy instance to pick) carry no
// instance name and are skipped — there is nobody to blame.
func (s *Sim) observeCall(now des.Time, instance string, ok bool, latency des.Time) {
	if s.OnCallResult != nil && instance != "" {
		s.OnCallResult(now, instance, ok, latency)
	}
}

// reqState tracks one in-flight request's progress through its tree.
type reqState struct {
	tree     *graph.Tree
	treeIdx  int
	arrived  []int    // per-node parent-completion counts
	at       des.Time // the request's arrival instant
	user     int      // owning session user (-1: no session client)
	timedOut bool     // client gave up; server work continues abandoned

	// Overload-control bookkeeping (only maintained when a budget,
	// hedge, or discipline is configured): everything cleanupRequest
	// must cancel when the request terminates.
	deadlineEv *des.Event
	clientTO   *des.Event
	retries    []*des.Event     // pending retry timers
	calls      map[job.ID]*call // live policy-guarded attempts
}

// delivery is a job waiting to exit the network service.
type delivery struct {
	instance *service.Instance // final destination (nil: response to client)
	pathID   int
}

// OnNew, when set, observes every simulation created by New. Command-line
// harnesses use it to keep a handle on whichever simulation is currently
// running so a signal handler or wall-clock watchdog can stop its engine.
// Set it once before any New call; it runs on the constructing goroutine.
var OnNew func(*Sim)

// New creates an empty simulation.
func New(opts Options) *Sim {
	split := rng.NewSplitter(opts.Seed)
	eng := opts.Engine
	if eng == nil {
		eng = des.New()
	}
	s := newSim(opts, split, eng)
	if OnNew != nil {
		OnNew(s)
	}
	return s
}

func newSim(opts Options, split *rng.Splitter, eng des.Runner) *Sim {
	return &Sim{
		eng:          eng,
		split:        split,
		cluster:      cluster.NewCluster(),
		fac:          job.NewFactory(),
		deployments:  make(map[string]*Deployment),
		netproc:      make(map[string]*service.Instance),
		pools:        make(map[string]*connPool),
		inflight:     make(map[job.ID]*reqState),
		pending:      make(map[job.ID]*delivery),
		branchers:    make(map[string]Brancher),
		svcPolicies:  make(map[string]*policyRuntime),
		nodePolicies: make(map[[2]int]*policyRuntime),
		calls:        make(map[job.ID]*call),
		edgeExtra:    make(map[string]des.Time),
		retryRNG:     split.Stream("retry"),
		hedgeRNG:     split.Stream("hedge"),
		budgetRNG:    split.Stream("budget"),
		edgeLat:      make(map[[2]int]*stats.P2Quantile),
		errCounts:    make(map[string]*ErrorCounts),
		latency:      stats.NewLatencyHist(),
		perTier:      make(map[string]*stats.LatencyHist),
	}
}

// Engine exposes the underlying event engine (read-mostly; used by the
// power manager to schedule decision epochs and by tests).
func (s *Sim) Engine() des.Runner { return s.eng }

// Cluster exposes the machine registry.
func (s *Sim) Cluster() *cluster.Cluster { return s.cluster }

// AddMachine registers a machine.
func (s *Sim) AddMachine(name string, cores int, freq cluster.FreqSpec) *cluster.Machine {
	m := cluster.NewMachine(name, cores, freq)
	if err := s.cluster.Add(m); err != nil {
		panic(err)
	}
	return m
}

// netState returns the network fault state, creating it on first use —
// installed by the fault plan (partitions, gray links) before the run.
func (s *Sim) netState() *netfault.State {
	if s.net == nil {
		s.net = netfault.New()
	}
	return s.net
}

// Net exposes the network fault state; nil when no network fault has
// been installed (a perfect fabric). Monitors feed their unreachable and
// link-loss series from it.
func (s *Sim) Net() *netfault.State { return s.net }

// Reachable reports whether a message from machine src currently reaches
// machine dst under the network fault model. With no network faults
// installed everything is reachable. Control planes consult this for
// their own vantage-restricted view of the cluster.
func (s *Sim) Reachable(src, dst string) bool {
	return s.net == nil || s.net.Reachable(src, dst)
}

// SetDomains declares the cluster's failure domains (racks, power
// feeds). Correlated fault events (CrashDomain, RecoverDomain) address
// machines through them, and monitors export per-domain up gauges.
func (s *Sim) SetDomains(domains []netfault.Domain) error {
	if err := netfault.ValidateDomains(domains, func(m string) bool {
		_, ok := s.cluster.Machine(m)
		return ok
	}); err != nil {
		return err
	}
	for _, d := range domains {
		for _, gd := range s.geoDomains {
			if d.Name == gd.Name {
				return fmt.Errorf("sim: domain %q collides with a declared region", d.Name)
			}
		}
	}
	s.domains = domains
	return nil
}

// Domains reports the declared failure domains, regions last.
func (s *Sim) Domains() []netfault.Domain {
	if len(s.geoDomains) == 0 {
		return s.domains
	}
	out := make([]netfault.Domain, 0, len(s.domains)+len(s.geoDomains))
	out = append(out, s.domains...)
	out = append(out, s.geoDomains...)
	return out
}

// domain resolves a declared failure domain (or region) by name.
func (s *Sim) domain(name string) (netfault.Domain, bool) {
	for _, d := range s.domains {
		if d.Name == name {
			return d, true
		}
	}
	for _, d := range s.geoDomains {
		if d.Name == name {
			return d, true
		}
	}
	return netfault.Domain{}, false
}

// DomainUp reports the fraction of the named domain's machines not
// currently crashed by the fault plan — the per-domain up gauge. Unknown
// domains report 0.
func (s *Sim) DomainUp(name string) float64 {
	d, ok := s.domain(name)
	if !ok || len(d.Machines) == 0 {
		return 0
	}
	up := 0
	for _, m := range d.Machines {
		if s.crashedM[m] == 0 {
			up++
		}
	}
	return float64(up) / float64(len(d.Machines))
}

// linkStream returns the dedicated RNG stream of one directed gray link,
// derived lazily — identical (seed, src, dst) always yield an identical
// stream regardless of derivation order, so determinism survives any
// link-creation order.
func (s *Sim) linkStream(src, dst string) *rng.Source {
	key := [2]string{src, dst}
	r := s.linkRNG[key]
	if r == nil {
		r = s.split.Stream("netfault", "link", src, dst)
		if s.linkRNG == nil {
			s.linkRNG = make(map[[2]string]*rng.Source)
		}
		s.linkRNG[key] = r
	}
	return r
}

// instanceState is a deployment's control-plane view of one instance.
// It is orthogonal to the instance's own fault state (Down): an instance
// can be up yet ejected (gray failure), or down yet still active (the
// fault has not been acted on).
type instanceState uint8

const (
	// instActive: in the load-balancing rotation whenever the instance
	// itself is up.
	instActive instanceState = iota
	// instEjected: removed from load balancing by outlier detection;
	// in-flight work still completes. Reinstatement restores instActive.
	instEjected
	// instRetired: permanently removed (replaced after failover, or
	// scaled down). A retired instance never rejoins the rotation, even
	// if a fault-plan restart brings the process back up.
	instRetired
)

// Deployment is a named group of instances of one blueprint.
type Deployment struct {
	Name      string
	BP        *service.Blueprint
	Instances []*service.Instance
	LB        Policy

	rr         int
	rng        *rng.Source
	pathChoice *dist.Choice
	pathRNG    *rng.Source

	// healthy is the live load-balancing set — instances that are up,
	// active, and not ejected/retired — kept in Instances order. It is
	// rebuilt only on the rare membership events (kill, restart, eject,
	// reinstate, retire, replica add), so the per-dispatch picking path
	// never allocates.
	healthy []*service.Instance
	state   []instanceState

	// Geography bookkeeping (only populated when the sim has one).
	// instRegion aligns with Instances; byRegion holds the per-region
	// healthy subsets rebuilt alongside healthy; regionRR keeps one
	// round-robin cursor per region so regional picks rotate like global
	// ones.
	instRegion []string
	byRegion   map[string][]*service.Instance
	regionRR   map[string]*int

	// Geo-replication (SetReplication): reads served outside the
	// request's origin region are stale until the serving region has
	// been promoted for at least lag.
	replicated  bool
	lag         des.Time
	replRegions []string
	promoted    map[string]des.Time
}

// refreshHealthy rebuilds the load-balancing set after a membership
// event. O(instances), but membership events are orders of magnitude
// rarer than dispatches.
func (d *Deployment) refreshHealthy() {
	d.healthy = d.healthy[:0]
	for r := range d.byRegion {
		d.byRegion[r] = d.byRegion[r][:0]
	}
	for i, in := range d.Instances {
		if d.state[i] == instActive && !in.Down() {
			d.healthy = append(d.healthy, in)
			if d.byRegion != nil {
				if r := d.instRegion[i]; r != "" {
					d.byRegion[r] = append(d.byRegion[r], in)
				}
			}
		}
	}
}

// Healthy reports the instances currently in the load-balancing
// rotation, in deployment order. The returned slice is live: callers
// must not mutate or retain it across events.
func (d *Deployment) Healthy() []*service.Instance { return d.healthy }

func (d *Deployment) indexOf(in *service.Instance) int {
	for i, have := range d.Instances {
		if have == in {
			return i
		}
	}
	return -1
}

// Eject removes an active instance from load balancing (outlier
// ejection). In-flight work on it still completes; only new picks skip
// it. Reports whether the state changed.
func (d *Deployment) Eject(in *service.Instance) bool {
	i := d.indexOf(in)
	if i < 0 || d.state[i] != instActive {
		return false
	}
	d.state[i] = instEjected
	d.refreshHealthy()
	return true
}

// Reinstate returns an ejected instance to load balancing (probation
// ended). Reports whether the state changed.
func (d *Deployment) Reinstate(in *service.Instance) bool {
	i := d.indexOf(in)
	if i < 0 || d.state[i] != instEjected {
		return false
	}
	d.state[i] = instActive
	d.refreshHealthy()
	return true
}

// Retire permanently removes an instance from load balancing (replaced
// after failover, or scaled down). Reports whether the state changed.
func (d *Deployment) Retire(in *service.Instance) bool {
	i := d.indexOf(in)
	if i < 0 || d.state[i] == instRetired {
		return false
	}
	d.state[i] = instRetired
	d.refreshHealthy()
	return true
}

// Retired reports whether the instance has been permanently removed.
func (d *Deployment) Retired(in *service.Instance) bool {
	i := d.indexOf(in)
	return i >= 0 && d.state[i] == instRetired
}

// EjectedCount reports instances currently ejected by outlier detection.
func (d *Deployment) EjectedCount() int {
	n := 0
	for _, st := range d.state {
		if st == instEjected {
			n++
		}
	}
	return n
}

// ReplicaCount reports non-retired instances — the deployment's current
// scale, regardless of momentary health.
func (d *Deployment) ReplicaCount() int {
	n := 0
	for _, st := range d.state {
		if st != instRetired {
			n++
		}
	}
	return n
}

// Deploy creates instances of bp on the given placements under the
// service's name (used by graph nodes).
func (s *Sim) Deploy(bp *service.Blueprint, lb Policy, placements ...Placement) (*Deployment, error) {
	if len(placements) == 0 {
		return nil, fmt.Errorf("sim: deployment %s needs at least one placement", bp.Name)
	}
	if _, ok := s.deployments[bp.Name]; ok {
		return nil, fmt.Errorf("sim: duplicate deployment %s", bp.Name)
	}
	dep := &Deployment{
		Name: bp.Name, BP: bp, LB: lb,
		rng: s.split.Stream("lb", bp.Name),
	}
	if len(bp.PathProbs) > 0 {
		dep.pathChoice = dist.NewChoice(bp.PathProbs)
		dep.pathRNG = s.split.Stream("paths", bp.Name)
	}
	for i, p := range placements {
		m, ok := s.cluster.Machine(p.Machine)
		if !ok {
			return nil, fmt.Errorf("sim: deployment %s references unknown machine %q", bp.Name, p.Machine)
		}
		name := fmt.Sprintf("%s-%d", bp.Name, i)
		alloc, err := m.Allocate(name, p.Cores)
		if err != nil {
			return nil, err
		}
		in, err := service.NewInstance(s.eng, bp, name, alloc, s.split.Stream("instance", name))
		if err != nil {
			return nil, err
		}
		in.OnJobDone = s.handleJobDone
		in.OnJobDrop = s.handleJobDrop
		in.OnJobShed = s.handleJobShed
		dep.Instances = append(dep.Instances, in)
		dep.state = append(dep.state, instActive)
		s.noteInstanceRegion(dep, p.Machine)
	}
	dep.refreshHealthy()
	s.deployments[bp.Name] = dep
	s.depOrder = append(s.depOrder, bp.Name)
	return dep, nil
}

// noteInstanceRegion records the home region of the instance just
// appended to dep and keeps the region index allocated. No-op without a
// geography.
func (s *Sim) noteInstanceRegion(dep *Deployment, machine string) {
	if s.geo == nil {
		return
	}
	dep.instRegion = append(dep.instRegion, s.geo.RegionOf(machine))
	if dep.byRegion == nil {
		dep.byRegion = make(map[string][]*service.Instance)
	}
}

// AddReplica deploys one more instance of an existing deployment onto the
// named machine — the act half of failover and scale-up. The replica
// inherits the deployment's shedding and admission configuration from its
// first sibling and joins the load-balancing rotation immediately.
func (s *Sim) AddReplica(svc, machine string, cores int) (*service.Instance, error) {
	dep, ok := s.deployments[svc]
	if !ok {
		return nil, fmt.Errorf("sim: replica of undeployed service %q", svc)
	}
	m, ok := s.cluster.Machine(machine)
	if !ok {
		return nil, fmt.Errorf("sim: replica of %s references unknown machine %q", svc, machine)
	}
	name := fmt.Sprintf("%s-%d", svc, len(dep.Instances))
	alloc, err := m.Allocate(name, cores)
	if err != nil {
		return nil, err
	}
	in, err := service.NewInstance(s.eng, dep.BP, name, alloc, s.split.Stream("instance", name))
	if err != nil {
		m.Release(alloc)
		return nil, err
	}
	in.OnJobDone = s.handleJobDone
	in.OnJobDrop = s.handleJobDrop
	in.OnJobShed = s.handleJobShed
	tmpl := dep.Instances[0]
	in.MaxQueue = tmpl.MaxQueue
	if d := tmpl.Discipline(); d.Kind != fault.QueueFIFO {
		if err := in.SetDiscipline(d); err != nil {
			m.Release(alloc)
			return nil, err
		}
	}
	if s.overloadOn {
		in.IsCanceled = s.isCanceledFn
	}
	dep.Instances = append(dep.Instances, in)
	dep.state = append(dep.state, instActive)
	s.noteInstanceRegion(dep, machine)
	dep.refreshHealthy()
	return in, nil
}

// RemoveReplica retires an instance and returns its cores to its machine.
// The instance must already be drained (no queued or in-flight work): the
// caller orchestrates the graceful drain, this performs the final
// accounting.
func (s *Sim) RemoveReplica(svc string, in *service.Instance) error {
	dep, ok := s.deployments[svc]
	if !ok {
		return fmt.Errorf("sim: remove replica of undeployed service %q", svc)
	}
	if dep.indexOf(in) < 0 {
		return fmt.Errorf("sim: %s has no instance %s", svc, in.Name)
	}
	if in.InFlight() != 0 || in.QueueLen() != 0 {
		return fmt.Errorf("sim: removing %s with %d in flight, %d queued",
			in.Name, in.InFlight(), in.QueueLen())
	}
	dep.Retire(in)
	in.Alloc.Machine.Release(in.Alloc)
	return nil
}

// Stream derives a labeled RNG stream from the simulation seed. Attached
// controllers draw their randomness (heartbeat jitter, probe placement)
// from dedicated streams so their presence never perturbs the service-time
// or load-balancing draws.
func (s *Sim) Stream(labels ...string) *rng.Source { return s.split.Stream(labels...) }

// Deployment looks up a deployment by service name.
func (s *Sim) Deployment(name string) (*Deployment, bool) {
	d, ok := s.deployments[name]
	return d, ok
}

// Deployments lists deployments in creation order.
func (s *Sim) Deployments() []*Deployment {
	out := make([]*Deployment, 0, len(s.depOrder))
	for _, n := range s.depOrder {
		out = append(out, s.deployments[n])
	}
	return out
}

// pickHealthy selects an instance from the maintained healthy set — up,
// not ejected, not retired — according to the deployment's policy; nil
// when the set is empty. The set is rebuilt on membership events (kill,
// restart, eject, reinstate, retire, replica add), so this path never
// allocates.
func (d *Deployment) pickHealthy() *service.Instance {
	return d.pickFrom(d.healthy, &d.rr)
}

// pickFrom applies the deployment's balancing policy to one healthy
// subset with its own rotation cursor — the whole set for region-blind
// picks, a per-region subset for geography-aware ones.
func (d *Deployment) pickFrom(healthy []*service.Instance, rr *int) *service.Instance {
	n := len(healthy)
	if n == 0 {
		return nil
	}
	switch d.LB {
	case Random:
		return healthy[d.rng.IntN(n)]
	case LeastLoaded:
		// Scan from a rotating start so ties spread across instances
		// instead of always landing on the first one.
		start := *rr % n
		*rr++
		best := healthy[start]
		bestLoad := best.InFlight()
		for i := 1; i < n; i++ {
			in := healthy[(start+i)%n]
			if l := in.InFlight(); l < bestLoad {
				best, bestLoad = in, l
			}
		}
		return best
	default:
		in := healthy[*rr%n]
		*rr++
		return in
	}
}

// EnableNetwork deploys one interrupt-processing instance per machine.
// Call after all machines exist and before Build.
func (s *Sim) EnableNetwork(cfg NetworkConfig) error {
	if cfg.CoresPerMachine < 1 {
		return fmt.Errorf("sim: network needs at least one core per machine")
	}
	if cfg.PerMsg == nil && cfg.PerKB == 0 {
		return fmt.Errorf("sim: network needs a message cost model")
	}
	s.netCfg = &cfg
	for _, m := range s.cluster.Machines() {
		bp := &service.Blueprint{
			Name: "netproc",
			Stages: []service.StageSpec{{
				Name:   "soft_irq",
				PerJob: cfg.PerMsg,
				PerKB:  cfg.PerKB,
			}},
			Paths: []service.PathSpec{{Name: "rx", Stages: []int{0}}},
		}
		name := "netproc@" + m.Name
		alloc, err := m.Allocate(name, cfg.CoresPerMachine)
		if err != nil {
			return fmt.Errorf("sim: reserving interrupt cores on %s: %w", m.Name, err)
		}
		in, err := service.NewInstance(s.eng, bp, name, alloc, s.split.Stream("netproc", m.Name))
		if err != nil {
			return err
		}
		in.OnJobDone = s.handleNetDone
		in.OnJobDrop = s.handleNetDrop
		s.netproc[m.Name] = in
	}
	return nil
}

// SetTopology installs the inter-service topology. All referenced services
// must already be deployed.
func (s *Sim) SetTopology(topo *graph.Topology) error {
	if err := topo.Validate(); err != nil {
		return err
	}
	s.pathIDs = make([][][]int, len(topo.Trees))
	for ti := range topo.Trees {
		t := &topo.Trees[ti]
		s.pathIDs[ti] = make([][]int, len(t.Nodes))
		for ni := range t.Nodes {
			n := &t.Nodes[ni]
			dep, ok := s.deployments[n.Service]
			if !ok {
				return fmt.Errorf("sim: tree %q node %d references undeployed service %q",
					t.Name, ni, n.Service)
			}
			if n.Instance >= len(dep.Instances) {
				return fmt.Errorf("sim: tree %q node %d pins instance %d of %d",
					t.Name, ni, n.Instance, len(dep.Instances))
			}
			pid := -1 // default: sample from PathProbs, else path 0
			if n.ServicePath != "" {
				pid = -1
				for i, p := range dep.BP.Paths {
					if p.Name == n.ServicePath {
						pid = i
						break
					}
				}
				if pid < 0 {
					return fmt.Errorf("sim: tree %q node %d references unknown path %q of %s",
						t.Name, ni, n.ServicePath, n.Service)
				}
			}
			s.pathIDs[ti][ni] = []int{pid}
		}
	}
	connBase := 1 << 20 // keep pool conn ids distinct from client conn ids
	for _, p := range topo.Pools {
		s.pools[p.Name] = newConnPool(p, connBase)
		s.poolOrder = append(s.poolOrder, p.Name)
		connBase += p.Capacity
	}
	s.topo = topo
	s.treeChoice = dist.NewChoice(topo.Weights())
	return nil
}

// Topology reports the installed inter-service topology (nil before
// SetTopology). Control planes consult it to refuse managing services the
// topology pins to specific instances.
func (s *Sim) Topology() *graph.Topology { return s.topo }

// Brancher decides at runtime which children of a branch node receive a
// request (selecting among node.Children by ID). A cache model, for
// example, returns the hit child or the miss chain depending on its state.
type Brancher func(now des.Time, req *job.Request, children []int) []int

// RegisterBrancher installs the decision function for all nodes whose
// BranchKey equals key. Must be called before Run for every key the
// topology references.
func (s *Sim) RegisterBrancher(key string, fn Brancher) {
	if key == "" || fn == nil {
		panic("sim: brancher needs a key and a function")
	}
	s.branchers[key] = fn
}

// SetClient installs the workload source.
func (s *Sim) SetClient(cfg ClientConfig) {
	if cfg.Connections <= 0 {
		cfg.Connections = 64
	}
	s.clientCfg = cfg
	s.clientRNG = s.split.Stream("client")
}

// Client reports the currently installed workload source.
func (s *Sim) Client() ClientConfig { return s.clientCfg }
