package sim

import (
	"testing"

	"uqsim/internal/cluster"
	"uqsim/internal/des"
	"uqsim/internal/dist"
	"uqsim/internal/fault"
	"uqsim/internal/graph"
	"uqsim/internal/service"
	"uqsim/internal/workload"
)

// TestDeadlineShortCircuitsOverload: at 2× saturation with a 5ms budget,
// requests that cannot start in time expire into the DeadlineExpired
// bucket and their queued jobs are cancelled unserved. FIFO order means
// the server keeps picking near-expired heads that then die mid-service
// (wasted work) — the pathology CoDel/LIFO exist to fix — but served
// latency and the backlog stay budget-bounded.
func TestDeadlineShortCircuitsOverload(t *testing.T) {
	s := buildSingle(t, dist.NewDeterministic(float64(des.Millisecond)), 1, 2000)
	cfg := s.Client()
	cfg.Budget = dist.NewDeterministic(float64(5 * des.Millisecond))
	s.SetClient(cfg)
	rep, err := s.Run(0, des.Second)
	if err != nil {
		t.Fatal(err)
	}
	conserve(t, rep)
	if rep.DeadlineExpired == 0 {
		t.Fatal("2× overload with a 5ms budget must expire requests")
	}
	// Expired requests' queued jobs are discarded before service…
	if rep.CanceledWork == 0 {
		t.Fatal("expired requests should cancel their queued jobs")
	}
	// …and the ones already on a core run to a useless completion.
	if rep.WastedWork == 0 {
		t.Fatal("FIFO under deadline overload should waste in-service work")
	}
	// Every delivered response met the 5ms budget.
	if max := rep.Latency.Max(); max > 5*des.Millisecond {
		t.Fatalf("served latency %v exceeds the budget", max)
	}
	// The backlog is bounded by the budget, not the run length.
	if rep.InFlight > 20 {
		t.Fatalf("in flight %d, want a budget-bounded backlog", rep.InFlight)
	}
}

// TestDeadlineGenerousBudgetIsInvisible: with a budget far above the
// system's latency, the deadline machinery must not perturb outcomes.
func TestDeadlineGenerousBudgetIsInvisible(t *testing.T) {
	s := buildSingle(t, dist.NewDeterministic(float64(des.Millisecond)), 1, 100)
	cfg := s.Client()
	cfg.Budget = dist.NewDeterministic(float64(100 * des.Millisecond))
	s.SetClient(cfg)
	rep, err := s.Run(0, des.Second)
	if err != nil {
		t.Fatal(err)
	}
	conserve(t, rep)
	if rep.DeadlineExpired != 0 || rep.CanceledWork != 0 || rep.WastedWork != 0 {
		t.Fatalf("deadline=%d canceled=%d wasted=%d under light load",
			rep.DeadlineExpired, rep.CanceledWork, rep.WastedWork)
	}
	if rep.Completions != rep.Arrivals-uint64(rep.InFlight) {
		t.Fatal("every arrival should complete")
	}
}

// TestDeadlineCancelsPendingRetry: a request whose budget expires during
// retry backoff terminates at the deadline, not at the next attempt.
func TestDeadlineCancelsPendingRetry(t *testing.T) {
	s := buildSingle(t, dist.NewDeterministic(float64(des.Millisecond)), 1, 100)
	cfg := s.Client()
	cfg.Budget = dist.NewDeterministic(float64(10 * des.Millisecond))
	s.SetClient(cfg)
	if err := s.SetServicePolicy("svc", fault.Policy{
		Timeout:     5 * des.Millisecond,
		MaxRetries:  5,
		BackoffBase: 50 * des.Millisecond, // far beyond the budget
	}); err != nil {
		t.Fatal(err)
	}
	// The only instance dies at 0.5s and never recovers: attempts fail
	// instantly, the retry backoff outlives the budget.
	if err := s.InstallFaults(fault.Plan{Events: []fault.Event{
		{At: 500 * des.Millisecond, Kind: fault.KillInstance, Service: "svc", Instance: 0},
	}}); err != nil {
		t.Fatal(err)
	}
	rep, err := s.Run(0, des.Second)
	if err != nil {
		t.Fatal(err)
	}
	conserve(t, rep)
	if rep.DeadlineExpired == 0 {
		t.Fatal("requests stuck in backoff should expire")
	}
	// Conservation would break here if expired requests later resumed
	// their retries; InFlight must not accumulate the dead half-run.
	if rep.InFlight > 20 {
		t.Fatalf("in flight %d, want ≈0", rep.InFlight)
	}
}

// hedgeTopology builds one service on two machines; m0 runs at half
// frequency, so its instance serves svcMS·2 while m1 serves svcMS.
func hedgeTopology(t *testing.T, svcMS float64, pol fault.Policy, qps float64) *Sim {
	t.Helper()
	s := New(Options{Seed: 42})
	s.AddMachine("m0", 8, cluster.DefaultFreqSpec)
	s.AddMachine("m1", 8, cluster.DefaultFreqSpec)
	if _, err := s.Deploy(
		service.SingleStage("svc", dist.NewDeterministic(svcMS*float64(des.Millisecond))),
		RoundRobin,
		Placement{Machine: "m0", Cores: 2},
		Placement{Machine: "m1", Cores: 2},
	); err != nil {
		t.Fatal(err)
	}
	if err := s.SetTopology(graph.Linear("main", "svc")); err != nil {
		t.Fatal(err)
	}
	if err := s.SetServicePolicy("svc", pol); err != nil {
		t.Fatal(err)
	}
	if err := s.InstallFaults(fault.Plan{Events: []fault.Event{
		{Kind: fault.DegradeFreq, Machine: "m0", FreqMHz: 1300},
	}}); err != nil {
		t.Fatal(err)
	}
	s.SetClient(ClientConfig{Pattern: workload.ConstantRate(qps), Proc: workload.Uniform})
	return s
}

// TestHedgeRescuesSlowInstance: requests routed to the degraded instance
// (8ms) are rescued by a backup on the healthy one (1ms delay + 4ms
// service = 5ms), pulling the tail in. Requests on the healthy instance
// win their own races, so hedges are issued on both sides but only the
// slow side's win.
func TestHedgeRescuesSlowInstance(t *testing.T) {
	s := hedgeTopology(t, 4, fault.Policy{
		Hedge: &fault.HedgeSpec{Delay: des.Millisecond},
	}, 100)
	rep, err := s.Run(0, des.Second)
	if err != nil {
		t.Fatal(err)
	}
	conserve(t, rep)
	if rep.HedgesIssued == 0 {
		t.Fatal("4ms/8ms service with a 1ms hedge delay must hedge")
	}
	if rep.HedgeWins == 0 {
		t.Fatal("hedges to the healthy instance must win against the degraded one")
	}
	// Slow-side requests finish at 5ms (hedged) instead of 8ms; the
	// fast side at 4ms. Unrescued the mean would be 6ms.
	if max := rep.Latency.Max(); max > 6*des.Millisecond {
		t.Fatalf("max latency %v; hedging should cap the slow side ≈5ms", max)
	}
	// Every rescued primary and beaten hedge is discarded work.
	if rep.CanceledWork+rep.WastedWork == 0 {
		t.Fatal("hedge losers must surface as canceled or wasted work")
	}
	if rep.Errors["svc"] == nil || rep.Errors["svc"].Hedges != rep.HedgesIssued {
		t.Fatal("per-service hedge counter should match the report")
	}
	// A hedge is an attempt, not an arrival.
	if rep.Arrivals > 110 {
		t.Fatalf("arrivals %d; hedges must not count as arrivals", rep.Arrivals)
	}
}

// TestHedgeQuantileDelayWarmsUp: with a quantile-based delay the edge
// hedges only after MinSamples observed latencies, then races only the
// tail of a heavy-tailed service (90% ≈1ms, 10% ≈20ms): a hedge fired at
// the observed p90 usually lands on a fast sample and wins.
func TestHedgeQuantileDelayWarmsUp(t *testing.T) {
	s := New(Options{Seed: 42})
	s.AddMachine("m0", 8, cluster.FreqSpec{})
	cost := dist.NewHyperExp(0.9, float64(des.Millisecond), float64(20*des.Millisecond))
	if _, err := s.Deploy(
		service.SingleStage("svc", cost),
		RoundRobin,
		Placement{Machine: "m0", Cores: 2},
		Placement{Machine: "m0", Cores: 2},
	); err != nil {
		t.Fatal(err)
	}
	if err := s.SetTopology(graph.Linear("main", "svc")); err != nil {
		t.Fatal(err)
	}
	if err := s.SetServicePolicy("svc", fault.Policy{
		Hedge: &fault.HedgeSpec{Quantile: 0.9, MinSamples: 32},
	}); err != nil {
		t.Fatal(err)
	}
	s.SetClient(ClientConfig{Pattern: workload.ConstantRate(200), Proc: workload.Uniform})
	rep, err := s.Run(0, des.Second)
	if err != nil {
		t.Fatal(err)
	}
	conserve(t, rep)
	if rep.HedgesIssued == 0 {
		t.Fatal("the estimator should warm up and start hedging")
	}
	// Only the tail hedges: a p90 trigger must not fire for most calls.
	if rep.HedgesIssued > rep.Arrivals/2 {
		t.Fatalf("hedged %d of %d requests; p90 trigger should be rare",
			rep.HedgesIssued, rep.Arrivals)
	}
	if rep.HedgeWins == 0 {
		t.Fatal("hedges against tail samples should win")
	}
}

// TestHedgePinnedEdgeNeverHedges: a node pinned to one instance has no
// "different instance" to race, so the policy must stay silent.
func TestHedgePinnedEdgeNeverHedges(t *testing.T) {
	s := New(Options{Seed: 7})
	s.AddMachine("m0", 8, cluster.FreqSpec{})
	if _, err := s.Deploy(
		service.SingleStage("svc", dist.NewDeterministic(float64(des.Millisecond))),
		RoundRobin,
		Placement{Machine: "m0", Cores: 1},
		Placement{Machine: "m0", Cores: 1},
	); err != nil {
		t.Fatal(err)
	}
	topo := graph.Linear("main", "svc")
	topo.Trees[0].Nodes[0].Instance = 0
	if err := s.SetTopology(topo); err != nil {
		t.Fatal(err)
	}
	if err := s.SetServicePolicy("svc", fault.Policy{
		Hedge: &fault.HedgeSpec{Delay: des.Microsecond},
	}); err != nil {
		t.Fatal(err)
	}
	s.SetClient(ClientConfig{Pattern: workload.ConstantRate(100), Proc: workload.Uniform})
	rep, err := s.Run(0, des.Second)
	if err != nil {
		t.Fatal(err)
	}
	conserve(t, rep)
	if rep.HedgesIssued != 0 {
		t.Fatalf("pinned edge issued %d hedges", rep.HedgesIssued)
	}
}

// TestCoDelDisciplineShedsUnderOverload: CoDel admission at sustained 2×
// saturation sheds stale work at dequeue into the Shed bucket while
// completions keep flowing at capacity.
func TestCoDelDisciplineShedsUnderOverload(t *testing.T) {
	s := buildSingle(t, dist.NewDeterministic(float64(des.Millisecond)), 1, 2000)
	if err := s.SetQueueDiscipline("svc", fault.QueueDiscipline{
		Kind:     fault.QueueCoDel,
		Target:   2 * des.Millisecond,
		Interval: 20 * des.Millisecond,
	}); err != nil {
		t.Fatal(err)
	}
	rep, err := s.Run(0, des.Second)
	if err != nil {
		t.Fatal(err)
	}
	conserve(t, rep)
	if rep.Shed == 0 {
		t.Fatal("CoDel must shed at sustained 2× overload")
	}
	// Shed jobs were admitted, then dropped at dequeue; the instance
	// reports them alongside MaxQueue sheds.
	if rep.Instances[0].Shed == 0 {
		t.Fatal("instance shed counter should record CoDel drops")
	}
	// Completions keep flowing at capacity.
	if rep.GoodputQPS < 900 {
		t.Fatalf("goodput %v, want ≈1000 (capacity)", rep.GoodputQPS)
	}
}

// TestGracefulDegradationUnderOverload is the tentpole end-to-end check:
// deadline propagation plus CoDel-governed adaptive LIFO at 2× saturation
// holds goodput at capacity with every served response inside the budget
// and almost no wasted service — where FIFO + deadline alone collapses
// into wasted work (TestDeadlineShortCircuitsOverload).
func TestGracefulDegradationUnderOverload(t *testing.T) {
	s := buildSingle(t, dist.NewDeterministic(float64(des.Millisecond)), 1, 2000)
	cfg := s.Client()
	cfg.Budget = dist.NewDeterministic(float64(5 * des.Millisecond))
	s.SetClient(cfg)
	if err := s.SetQueueDiscipline("svc", fault.QueueDiscipline{
		Kind:   fault.QueueCoDelLIFO,
		Target: 2 * des.Millisecond,
	}); err != nil {
		t.Fatal(err)
	}
	rep, err := s.Run(0, des.Second)
	if err != nil {
		t.Fatal(err)
	}
	conserve(t, rep)
	if rep.GoodputQPS < 900 {
		t.Fatalf("goodput %v, want ≈1000 (capacity)", rep.GoodputQPS)
	}
	if max := rep.Latency.Max(); max > 5*des.Millisecond {
		t.Fatalf("served latency %v exceeds the budget", max)
	}
	// The excess load expires cheaply (cancelled before service) instead
	// of burning cores.
	if rep.DeadlineExpired == 0 || rep.CanceledWork == 0 {
		t.Fatalf("deadline=%d canceled=%d; excess load should expire unserved",
			rep.DeadlineExpired, rep.CanceledWork)
	}
	if rep.WastedWork > 50 {
		t.Fatalf("wasted %d services; adaptive LIFO should serve live work", rep.WastedWork)
	}
}

// TestSetQueueDisciplineValidation covers wiring errors.
func TestSetQueueDisciplineValidation(t *testing.T) {
	s := buildSingle(t, dist.NewDeterministic(float64(des.Millisecond)), 1, 100)
	if err := s.SetQueueDiscipline("nope", fault.QueueDiscipline{Kind: fault.QueueCoDel}); err == nil {
		t.Fatal("unknown service must error")
	}
	if err := s.SetQueueDiscipline("svc", fault.QueueDiscipline{Target: -1}); err == nil {
		t.Fatal("invalid discipline must error")
	}
	if err := s.SetQueueDiscipline("svc", fault.QueueDiscipline{Kind: fault.QueueCoDelLIFO}); err != nil {
		t.Fatal(err)
	}
}

// TestAdaptiveLIFOUnderOverloadSim: with client timeouts, LIFO-under-
// overload serves fresh requests that can still meet their patience,
// sustaining goodput where FIFO serves requests that already timed out.
func TestAdaptiveLIFOUnderOverloadSim(t *testing.T) {
	run := func(kind fault.QueueKind) *Report {
		s := buildSingle(t, dist.NewDeterministic(float64(des.Millisecond)), 1, 2000)
		cfg := s.Client()
		cfg.Timeout = 10 * des.Millisecond
		s.SetClient(cfg)
		if kind != fault.QueueFIFO {
			if err := s.SetQueueDiscipline("svc", fault.QueueDiscipline{
				Kind:   kind,
				Target: 2 * des.Millisecond,
			}); err != nil {
				t.Fatal(err)
			}
		}
		rep, err := s.Run(0, des.Second)
		if err != nil {
			t.Fatal(err)
		}
		conserve(t, rep)
		return rep
	}
	fifo := run(fault.QueueFIFO)
	lifo := run(fault.QueueLIFO)
	// FIFO at 2× with 10ms patience: the queue outgrows the patience and
	// completions collapse — almost everything times out. LIFO keeps
	// serving fresh arrivals.
	if lifo.Completions < 2*fifo.Completions {
		t.Fatalf("adaptive LIFO completions %d vs FIFO %d; want a clear win",
			lifo.Completions, fifo.Completions)
	}
}
