package sim

import (
	"strings"
	"testing"

	"uqsim/internal/cluster"
	"uqsim/internal/des"
	"uqsim/internal/dist"
	"uqsim/internal/fault"
	"uqsim/internal/graph"
	"uqsim/internal/netfault"
	"uqsim/internal/service"
	"uqsim/internal/workload"
)

// twoRegionSim builds two single-machine regions (east: m0, west: m1)
// with a 5ms WAN, an east-homed client, and one "svc" instance per
// region, topology svc-only.
func twoRegionSim(t *testing.T, lag des.Time) *Sim {
	t.Helper()
	s := New(Options{Seed: 7})
	s.AddMachine("m0", 4, cluster.FreqSpec{})
	s.AddMachine("m1", 4, cluster.FreqSpec{})
	geo, err := s.SetGeography([]cluster.Region{
		{Name: "east", Machines: []string{"m0"}},
		{Name: "west", Machines: []string{"m1"}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := geo.SetDefaultWAN(cluster.WANLink{Latency: 5 * des.Millisecond}); err != nil {
		t.Fatal(err)
	}
	bp := service.SingleStage("svc", dist.NewDeterministic(float64(100*des.Microsecond)))
	if _, err := s.Deploy(bp, RoundRobin,
		Placement{Machine: "m0", Cores: 2}, Placement{Machine: "m1", Cores: 2}); err != nil {
		t.Fatal(err)
	}
	if err := s.SetReplication("svc", ReplicationSpec{Lag: lag}); err != nil {
		t.Fatal(err)
	}
	if err := s.SetTopology(&graph.Topology{Trees: []graph.Tree{{
		Name: "t", Weight: 1, Root: 0,
		Nodes: []graph.Node{{ID: 0, Service: "svc", Instance: -1}},
	}}}); err != nil {
		t.Fatal(err)
	}
	s.SetClient(ClientConfig{Pattern: workload.ConstantRate(500), Region: "east"})
	return s
}

// TestNearestRegionRouting: with both regions healthy, an east-homed
// client's traffic stays entirely in east — zero cross-region calls,
// zero WAN latency.
func TestNearestRegionRouting(t *testing.T) {
	s := twoRegionSim(t, 10*des.Millisecond)
	rep, err := s.Run(0, 200*des.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Completions == 0 {
		t.Fatal("no completions")
	}
	if rep.CrossRegionCalls != 0 || rep.StaleReads != 0 {
		t.Fatalf("healthy home region but %d cross-region calls, %d stale reads",
			rep.CrossRegionCalls, rep.StaleReads)
	}
	var east, west uint64
	for _, ir := range rep.Instances {
		switch ir.Machine {
		case "m0":
			east = ir.Completed
		case "m1":
			west = ir.Completed
		}
	}
	if east == 0 || west != 0 {
		t.Fatalf("east=%d west=%d completions; want all traffic in east", east, west)
	}
	if p99 := rep.Latency.P99(); p99 >= 5*des.Millisecond {
		t.Fatalf("intra-region p99 %v pays WAN latency", p99)
	}
}

// TestRegionLossFailsOverAndPaysWAN: crashing the client's home region
// shifts traffic to the other region's replicas; every redirected call
// crosses the WAN (and is stale while unpromoted), and recovery routes
// traffic home again.
func TestRegionLossFailsOverAndPaysWAN(t *testing.T) {
	s := twoRegionSim(t, 10*des.Millisecond)
	if err := s.InstallFaults(fault.Plan{Events: []fault.Event{
		{At: 50 * des.Millisecond, Kind: fault.CrashDomain, Domain: "east"},
		{At: 150 * des.Millisecond, Kind: fault.RecoverDomain, Domain: "east"},
	}}); err != nil {
		t.Fatal(err)
	}
	// Promote west mid-loss: reads become fresh one lag later.
	dep, _ := s.Deployment("svc")
	s.Engine().At(100*des.Millisecond, func(now des.Time) { dep.Promote(now, "west") })

	rep, err := s.Run(0, 250*des.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	var east, west uint64
	for _, ir := range rep.Instances {
		switch ir.Machine {
		case "m0":
			east = ir.Completed
		case "m1":
			west = ir.Completed
		}
	}
	if east == 0 || west == 0 {
		t.Fatalf("east=%d west=%d completions; want both regions serving", east, west)
	}
	if rep.CrossRegionCalls == 0 {
		t.Fatal("region loss produced no cross-region calls")
	}
	if rep.StaleReads == 0 {
		t.Fatal("unpromoted cross-region serves counted no stale reads")
	}
	// Stales stop once west is fresh (promotion at 100ms + 10ms lag),
	// so redirected-but-fresh traffic must exist: stale < cross.
	if rep.StaleReads >= rep.CrossRegionCalls {
		t.Fatalf("stale=%d cross=%d; promotion never made west fresh",
			rep.StaleReads, rep.CrossRegionCalls)
	}
	if p99 := rep.Latency.P99(); p99 < 5*des.Millisecond {
		t.Fatalf("failover p99 %v never paid the 5ms WAN", p99)
	}
	total := rep.Completions + rep.Timeouts + rep.Shed + rep.Dropped +
		rep.DeadlineExpired + rep.Unreachable + uint64(rep.InFlight)
	if rep.Arrivals != total {
		t.Fatalf("conservation: arrivals %d != outcomes %d", rep.Arrivals, total)
	}
}

func TestReplicationFreshness(t *testing.T) {
	s := twoRegionSim(t, 10*des.Millisecond)
	dep, _ := s.Deployment("svc")
	if !dep.Replicated() || dep.ReplicationLag() != 10*des.Millisecond {
		t.Fatal("replication spec not recorded")
	}
	if got := dep.Staleness(0, "west"); got != 10*des.Millisecond {
		t.Fatalf("unpromoted staleness = %v, want full lag", got)
	}
	dep.Promote(20*des.Millisecond, "west")
	if dep.FreshAt(25*des.Millisecond, "west") {
		t.Fatal("fresh before lag elapsed")
	}
	if got := dep.Staleness(25*des.Millisecond, "west"); got != 5*des.Millisecond {
		t.Fatalf("mid-catch-up staleness = %v, want 5ms", got)
	}
	if !dep.FreshAt(30*des.Millisecond, "west") {
		t.Fatal("stale after lag elapsed")
	}
	// Re-promotion keeps the earlier clock.
	dep.Promote(40*des.Millisecond, "west")
	if pt, _ := dep.PromotedAt("west"); pt != 20*des.Millisecond {
		t.Fatalf("re-promotion moved the clock to %v", pt)
	}
}

func TestGeographySetupErrors(t *testing.T) {
	s := New(Options{Seed: 1})
	s.AddMachine("m0", 4, cluster.FreqSpec{})
	s.AddMachine("m1", 4, cluster.FreqSpec{})
	if err := s.SetDomains([]netfault.Domain{{Name: "east", Machines: []string{"m0"}}}); err != nil {
		t.Fatal(err)
	}
	// A region may not shadow a declared failure domain.
	if _, err := s.SetGeography([]cluster.Region{
		{Name: "east", Machines: []string{"m0"}},
		{Name: "west", Machines: []string{"m1"}},
	}); err == nil || !strings.Contains(err.Error(), "collides") {
		t.Fatalf("region/domain collision accepted: %v", err)
	}

	s2 := New(Options{Seed: 1})
	s2.AddMachine("m0", 4, cluster.FreqSpec{})
	s2.AddMachine("m1", 4, cluster.FreqSpec{})
	regions := []cluster.Region{
		{Name: "east", Machines: []string{"m0"}},
		{Name: "west", Machines: []string{"m1"}},
	}
	if _, err := s2.SetGeography(regions); err != nil {
		t.Fatal(err)
	}
	if _, err := s2.SetGeography(regions); err == nil {
		t.Fatal("double SetGeography accepted")
	}
	// Nor may a later domain shadow a region.
	if err := s2.SetDomains([]netfault.Domain{{Name: "west", Machines: []string{"m1"}}}); err == nil {
		t.Fatal("domain shadowing a region accepted")
	}
	bp := service.SingleStage("svc", dist.NewDeterministic(1000))
	if _, err := s2.Deploy(bp, RoundRobin, Placement{Machine: "m0", Cores: 1}); err != nil {
		t.Fatal(err)
	}
	// Replication requires coverage of at least two regions.
	if err := s2.SetReplication("svc", ReplicationSpec{}); err == nil {
		t.Fatal("single-region replication accepted")
	}
	if err := s2.SetReplication("svc", ReplicationSpec{Regions: []string{"mars"}}); err == nil {
		t.Fatal("unknown replication region accepted")
	}
	if err := s2.SetReplication("svc", ReplicationSpec{Regions: []string{"west"}}); err == nil {
		t.Fatal("replication region without a replica accepted")
	}

	s3 := New(Options{Seed: 1})
	s3.AddMachine("m0", 4, cluster.FreqSpec{})
	if _, err := s3.Deploy(bp, RoundRobin, Placement{Machine: "m0", Cores: 1}); err != nil {
		t.Fatal(err)
	}
	if _, err := s3.SetGeography([]cluster.Region{{Name: "east", Machines: []string{"m0"}}}); err == nil {
		t.Fatal("SetGeography after Deploy accepted")
	}
}

// TestRegionCrashCascadesAndHealsIndependently: crash_domain on a region
// cascades to every machine in its racks, and an overlapping rack-level
// crash holds its machine down after the region heals — the overlapping
// partition-cut counting, one level up in the hierarchy.
func TestRegionCrashCascadesAndHealsIndependently(t *testing.T) {
	s := New(Options{Seed: 3})
	s.AddMachine("m0", 4, cluster.FreqSpec{})
	s.AddMachine("m1", 4, cluster.FreqSpec{})
	if err := s.SetDomains([]netfault.Domain{{Name: "rack1", Machines: []string{"m1"}}}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.SetGeography([]cluster.Region{
		{Name: "west", Machines: []string{"m0", "m1"}},
	}); err != nil {
		t.Fatal(err)
	}
	bp := service.SingleStage("svc", dist.NewDeterministic(1000))
	if _, err := s.Deploy(bp, RoundRobin,
		Placement{Machine: "m0", Cores: 1}, Placement{Machine: "m1", Cores: 1}); err != nil {
		t.Fatal(err)
	}
	dep, _ := s.Deployment("svc")
	ms := des.Millisecond
	if err := s.InstallFaults(fault.Plan{Events: []fault.Event{
		{At: 10 * ms, Kind: fault.CrashDomain, Domain: "west"},   // region down
		{At: 20 * ms, Kind: fault.CrashDomain, Domain: "rack1"},  // overlapping rack cut
		{At: 30 * ms, Kind: fault.RecoverDomain, Domain: "west"}, // region heals...
		{At: 40 * ms, Kind: fault.RecoverDomain, Domain: "rack1"},
	}}); err != nil {
		t.Fatal(err)
	}
	type probe struct {
		at           des.Time
		regionUp     float64
		rackUp       float64
		m0Up, m1Up   bool
		wantHealthyN int
	}
	probes := []probe{
		{at: 15 * ms, regionUp: 0, rackUp: 0, m0Up: false, m1Up: false, wantHealthyN: 0},
		{at: 25 * ms, regionUp: 0, rackUp: 0, m0Up: false, m1Up: false, wantHealthyN: 0},
		// Region healed, but the rack cut still holds m1 down.
		{at: 35 * ms, regionUp: 0.5, rackUp: 0, m0Up: true, m1Up: false, wantHealthyN: 1},
		{at: 45 * ms, regionUp: 1, rackUp: 1, m0Up: true, m1Up: true, wantHealthyN: 2},
	}
	for _, p := range probes {
		p := p
		s.Engine().At(p.at, func(now des.Time) {
			if got := s.DomainUp("west"); got != p.regionUp {
				t.Errorf("t=%v: DomainUp(west) = %v, want %v", now, got, p.regionUp)
			}
			if got := s.DomainUp("rack1"); got != p.rackUp {
				t.Errorf("t=%v: DomainUp(rack1) = %v, want %v", now, got, p.rackUp)
			}
			if up := !dep.Instances[0].Down(); up != p.m0Up {
				t.Errorf("t=%v: svc-0 up = %v, want %v", now, up, p.m0Up)
			}
			if up := !dep.Instances[1].Down(); up != p.m1Up {
				t.Errorf("t=%v: svc-1 up = %v, want %v", now, up, p.m1Up)
			}
			if got := len(dep.Healthy()); got != p.wantHealthyN {
				t.Errorf("t=%v: healthy = %d, want %d", now, got, p.wantHealthyN)
			}
		})
	}
	s.Engine().Run()
}
