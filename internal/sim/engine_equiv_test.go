package sim

import (
	"testing"

	"uqsim/internal/des"
	"uqsim/internal/pdes"
)

// engineVariants returns fresh engines the full simulation must behave
// identically on: the sequential engine and pdes coordinators with
// different worker settings. Sim's model is a single logical process,
// so it runs on LP 0 of the parallel engine; the guarantee under test
// is that the coordinator executes the exact same (time, seq) event
// order as des.Engine.
func engineVariants() map[string]func() des.Runner {
	return map[string]func() des.Runner{
		"des":           func() des.Runner { return des.New() },
		"pdes":          func() des.Runner { return pdes.New(pdes.Options{LPs: 1, Workers: 1}) },
		"pdes-workers2": func() des.Runner { return pdes.New(pdes.Options{LPs: 1, Workers: 2, Lookahead: des.Millisecond}) },
		"pdes-workers4": func() des.Runner { return pdes.New(pdes.Options{LPs: 1, Workers: 4, Lookahead: des.Millisecond}) },
	}
}

// TestCrossEngineFingerprintEquality: a same-seed run of a randomized
// topology — including fault injection, retries, hedges, and breakers —
// must produce an identical determinism fingerprint on every engine,
// drain completely, and conserve requests.
func TestCrossEngineFingerprintEquality(t *testing.T) {
	for seed := int64(1); seed <= 8; seed++ {
		var baseline string
		for _, name := range []string{"des", "pdes", "pdes-workers2", "pdes-workers4"} {
			mk := engineVariants()[name]
			s := buildRandomTopologyOn(t, seed, mk())
			withRandomFaults(t, s, seed)
			rep, err := s.Run(0, 250*des.Millisecond)
			if err != nil {
				t.Fatalf("seed %d on %s: %v", seed, name, err)
			}
			total := rep.Completions + rep.Timeouts + rep.Shed + rep.Dropped +
				rep.DeadlineExpired + rep.Unreachable + uint64(rep.InFlight)
			if rep.Arrivals != total {
				t.Fatalf("seed %d on %s: conservation: arrivals %d != outcomes %d",
					seed, name, rep.Arrivals, total)
			}
			fp := reportFingerprint(rep)
			if name == "des" {
				baseline = fp
				continue
			}
			if fp != baseline {
				t.Fatalf("seed %d: %s diverges from sequential engine\n des:  %s\n %s: %s",
					seed, name, baseline, name, fp)
			}
		}
	}
}

// TestCrossEngineDrain: after the horizon, a pdes-backed run must settle
// every request with zero leaked state, exactly like the sequential one.
func TestCrossEngineDrain(t *testing.T) {
	for seed := int64(20); seed <= 25; seed++ {
		s := buildRandomTopologyOn(t, seed, pdes.New(pdes.Options{LPs: 1, Workers: 2, Lookahead: des.Millisecond}))
		withRandomOverload(t, s, seed)
		rep, err := s.Run(0, 150*des.Millisecond)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		s.Engine().Run() // drain past the horizon; the generator is stopped
		if err := s.VerifyDrained(); err != nil {
			t.Fatalf("seed %d: leaked state on pdes engine: %v", seed, err)
		}
		if rep.Completions == 0 {
			t.Fatalf("seed %d: no completions", seed)
		}
	}
}
