package sim

import (
	"math"
	"testing"

	"uqsim/internal/des"
	"uqsim/internal/dist"
	"uqsim/internal/hybrid"
)

// TestClosedPopulationRateTotalOutage: when every replica of a modeled
// service is down (total outage under a fault plan) the closed fixed point
// must report zero throughput — not an unbounded capacity that leaks +Inf
// into the fluid tier's accrual and snapshot conversion.
func TestClosedPopulationRateTotalOutage(t *testing.T) {
	dead := []hybrid.Service{
		{Name: "web", Visits: 1, MeanServiceS: 0.010, Servers: func() int { return 0 }},
	}
	if got := closedPopulationRate(1000, 0.1, dead); got != 0 {
		t.Fatalf("total outage rate = %v, want 0", got)
	}
	mixed := []hybrid.Service{
		{Name: "web", Visits: 1, MeanServiceS: 0.010, Servers: func() int { return 4 }},
		{Name: "db", Visits: 2, MeanServiceS: 0.005, Servers: func() int { return 0 }},
	}
	if got := closedPopulationRate(1000, 0.1, mixed); got != 0 {
		t.Fatalf("required-service outage rate = %v, want 0", got)
	}
	healthy := []hybrid.Service{
		{Name: "web", Visits: 1, MeanServiceS: 0.010, Servers: func() int { return 4 }},
	}
	got := closedPopulationRate(1000, 0.1, healthy)
	if math.IsNaN(got) || math.IsInf(got, 0) || got <= 0 {
		t.Fatalf("healthy rate = %v, want finite positive", got)
	}
	if bottleneck := 4.0 / 0.010; got > bottleneck {
		t.Fatalf("healthy rate %v exceeds bottleneck capacity %v", got, bottleneck)
	}
}

// TestHybridRunLeavesClientPatternUnthinned: setupHybrid must install the
// thinned pattern on the run, not mutate the stored client config — a
// second hybrid run on the same Sim would otherwise thin the arrival rate
// twice (rate · sampleRate²).
func TestHybridRunLeavesClientPatternUnthinned(t *testing.T) {
	const qps = 200.0
	s := buildSingle(t, dist.NewDeterministic(float64(des.Millisecond)), 4, qps)
	s.SetHybrid(hybrid.Config{SampleRate: 0.25})
	r, err := s.Run(0, des.Second)
	if err != nil {
		t.Fatal(err)
	}
	if got := s.clientCfg.Pattern.RateAt(0); got != qps {
		t.Fatalf("stored client pattern rate = %v after hybrid run, want %v (must stay unthinned)", got, qps)
	}
	// The generator itself did run thinned: ~sampleRate·qps foreground
	// arrivals over the second, nowhere near the full rate.
	if r.Arrivals == 0 || float64(r.Arrivals) > 0.5*qps {
		t.Fatalf("foreground arrivals %d, want ~%v (thinned)", r.Arrivals, 0.25*qps)
	}
}
