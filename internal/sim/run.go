package sim

import (
	"fmt"

	"uqsim/internal/des"
	"uqsim/internal/graph"
	"uqsim/internal/job"
	"uqsim/internal/service"
	"uqsim/internal/stats"
	"uqsim/internal/workload"
)

// Run executes the simulation: warmup (not measured), then duration
// (measured), and returns the report. Run may be called once per Sim.
func (s *Sim) Run(warmup, duration des.Time) (*Report, error) {
	if s.topo == nil {
		return nil, fmt.Errorf("sim: no topology installed")
	}
	if s.clientCfg.Pattern == nil && s.clientCfg.ClosedUsers <= 0 && s.clientCfg.Sessions == nil {
		return nil, fmt.Errorf("sim: no client installed")
	}
	s.warmupEnd = warmup
	horizon := warmup + duration
	s.installOverload()
	s.fgPattern = nil
	if s.hybridCfg != nil {
		if err := s.setupHybrid(warmup); err != nil {
			return nil, err
		}
	}

	if s.clientCfg.ClosedUsers > 0 {
		s.closedLoop = workload.NewClosedLoop(s.eng, s.clientRNG, s.clientCfg.ClosedUsers, s.onArrival)
		if s.clientCfg.Think != nil {
			think := s.clientCfg.Think
			s.closedLoop.Think = think.Sample
		}
		s.closedLoop.Start(0)
	} else if s.clientCfg.Sessions != nil {
		for _, jn := range s.clientCfg.Sessions.Journeys {
			for _, step := range jn.Steps {
				if step.Tree < 0 || step.Tree >= len(s.topo.Trees) {
					return nil, fmt.Errorf("sim: session journey %q targets tree %d, topology has %d",
						jn.Name, step.Tree, len(s.topo.Trees))
				}
			}
		}
		sess, err := workload.NewSessions(s.eng, s.split.Child("sessions"), *s.clientCfg.Sessions,
			func(now des.Time, user, tree int) { s.admitAs(now, 0, tree, user) })
		if err != nil {
			return nil, err
		}
		if s.fluid != nil {
			// Hybrid fidelity samples whole users, not requests: an
			// unsampled user's entire journey belongs to the fluid tier,
			// so sampled journeys keep their step-to-step correlation.
			rate := s.fluid.SampleRate()
			sess.SampleUser = func(int) bool { return s.sampleRNG.Float64() < rate }
		}
		s.sessions = sess
		sess.Start(0)
		defer sess.Stop()
	} else {
		pat := s.clientCfg.Pattern
		if s.fgPattern != nil {
			pat = s.fgPattern // hybrid fidelity: sampled-foreground thinning
		}
		gen := workload.NewOpenLoop(s.eng, s.clientRNG, pat, s.onArrival)
		gen.Proc = s.clientCfg.Proc
		gen.Start(0)
		defer gen.Stop()
	}

	s.eng.RunUntil(horizon)
	// A Stop (signal handler, watchdog) freezes the clock short of the
	// horizon; the partial report covers what actually ran.
	end := horizon
	if s.eng.Stopped() {
		if now := s.eng.Now(); now < horizon {
			end = now
		}
	}
	if s.fluid != nil {
		s.fluid.Finish(end)
	}
	return s.report(end), nil
}

// onArrival admits one client request at virtual time now.
func (s *Sim) onArrival(now des.Time) {
	s.admit(now, 0)
}

// admit starts one request (attempt 0) or retry (attempt > 0).
func (s *Sim) admit(now des.Time, attempt int) {
	s.admitAs(now, attempt, -1, -1)
}

// admitAs is admit with session context: forceTree >= 0 pins the topology
// tree (session journey steps target specific trees; -1 samples the
// client's tree choice), and user >= 0 ties the request to the session
// user whose journey advances when it terminates.
func (s *Sim) admitAs(now des.Time, attempt, forceTree, user int) {
	treeIdx := forceTree
	if treeIdx < 0 {
		treeIdx = 0
		if s.treeChoice.N() > 1 {
			treeIdx = s.treeChoice.Pick(s.clientRNG)
		}
	}
	tree := &s.topo.Trees[treeIdx]

	req := s.fac.NewRequest(now)
	req.Class = treeIdx
	req.Attempt = attempt
	if s.clientCfg.SizeKB != nil {
		req.SizeKB = s.clientCfg.SizeKB.Sample(s.clientRNG)
	}
	req.Conn = int(req.ID) % s.clientCfg.Connections
	req.LeavesRemaining = len(tree.Leaves())

	st := &reqState{tree: tree, treeIdx: treeIdx, arrived: make([]int, len(tree.Nodes)), at: now, user: user}
	s.inflight[req.ID] = st
	if now >= s.warmupEnd {
		s.arrivals++
	}
	if s.clientCfg.Budget != nil {
		if b := s.clientCfg.Budget.Sample(s.budgetRNG); b > 0 {
			req.Deadline = now + des.FromNanos(b)
			st.deadlineEv = s.eng.At(req.Deadline, func(t des.Time) { s.onDeadline(t, req) })
		}
	}
	if s.clientCfg.Timeout > 0 {
		ev := s.eng.At(now+s.clientCfg.Timeout, func(t des.Time) { s.onTimeout(t, req) })
		if s.overloadOn {
			st.clientTO = ev
		}
	}
	s.enterNode(now, req, st, tree.Root, req.Conn, "")
}

// onTimeout fires when a request exceeds the client's patience: the client
// records the timeout as its observed latency and possibly retries, while
// the in-flight server work continues to completion.
func (s *Sim) onTimeout(now des.Time, req *job.Request) {
	if req.Done() || req.TimedOut || req.Failed {
		return
	}
	req.TimedOut = true
	user, userTree := -1, -1
	if st, ok := s.inflight[req.ID]; ok {
		st.timedOut = true
		user, userTree = st.user, st.treeIdx
	}
	// The latency sample belongs to the measurement window it lands in;
	// the outcome bucket is gated on the request's arrival instead, so
	// every counted arrival lands in exactly one bucket and
	// warmup-straddling requests never skew the conservation invariant.
	if now >= s.warmupEnd {
		s.latency.Record(s.clientCfg.Timeout)
	}
	if req.Arrival >= s.warmupEnd {
		s.timeouts++
	}
	if req.Attempt < s.clientCfg.MaxRetries {
		// A session user's retry stays on the same journey step (same
		// tree, same user); an anonymous client re-samples the tree.
		if user >= 0 {
			s.admitAs(now, req.Attempt+1, userTree, user)
		} else {
			s.admit(now, req.Attempt+1)
		}
	} else if s.closedLoop != nil {
		// The user gave up; in a closed loop they move on.
		s.closedLoop.RequestDone(now)
	} else if s.sessions != nil && user >= 0 {
		// The session user gives up on this step and moves on.
		s.sessions.Done(now, user)
	}
}

// enterNode walks the request into tree node nodeID: acquire declared
// connection tokens, then dispatch the node's job. srcMachine names the
// machine the triggering job ran on ("" for the external client).
func (s *Sim) enterNode(now des.Time, req *job.Request, st *reqState, nodeID, conn int, srcMachine string) {
	node := &st.tree.Nodes[nodeID]
	s.acquireConns(now, req, node.AcquireConn, conn, func(t des.Time, finalConn int) {
		s.dispatchNode(t, req, st, nodeID, finalConn, srcMachine)
	})
}

// acquireConns acquires each listed pool token in order, then calls done
// with the connection id implied by the last acquired token (or the
// inherited one when no pools are listed).
func (s *Sim) acquireConns(now des.Time, req *job.Request, names []string, conn int, done func(des.Time, int)) {
	if len(names) == 0 {
		done(now, conn)
		return
	}
	pool := s.pools[names[0]]
	pool.acquire(now, req, func(t des.Time, token int) {
		s.acquireConns(t, req, names[1:], token, done)
	})
}

// dispatchNode creates the node's job and routes it to an instance. Edges
// guarded by a resilience policy go through the attempt machinery; bare
// edges take the direct path, where a rejected or dropped job fails the
// whole request.
func (s *Sim) dispatchNode(now des.Time, req *job.Request, st *reqState, nodeID, conn int, srcMachine string) {
	if req.Failed || req.Done() {
		return // the request ended while this dispatch waited (conn pool)
	}
	if req.Expired(now) {
		// Defensive: a conn-pool grant resumed inside another event can
		// land exactly on the deadline instant, ahead of the deadline
		// event's own bookkeeping path.
		s.failRequest(now, req, job.OutcomeDeadline)
		return
	}
	node := &st.tree.Nodes[nodeID]
	if s.hasPolicies {
		if pr := s.edgePolicy(st.treeIdx, nodeID, node.Service); pr != nil {
			s.startAttempt(now, req, st, nodeID, conn, srcMachine, 0, pr)
			return
		}
	}
	dep := s.deployments[node.Service]
	in := s.pickFor(node, dep, srcMachine)
	if in == nil {
		// Every instance is down and no policy protects the edge.
		s.countError(node.Service, job.OutcomeDropped)
		s.failRequest(now, req, job.OutcomeDropped)
		return
	}
	j := s.newNodeJob(req, st, nodeID, conn, dep)
	s.deliver(now, j, in, srcMachine)
}

// pickFor selects the node's instance: its pinned one (nil when killed),
// the nearest-healthy-region choice under a geography (ordered outward
// from the hop's source region by WAN latency), or a healthy instance by
// the deployment's region-blind balancing policy.
func (s *Sim) pickFor(node *graph.Node, dep *Deployment, srcMachine string) *service.Instance {
	if node.Instance >= 0 {
		in := dep.Instances[node.Instance]
		if in.Down() {
			return nil
		}
		return in
	}
	if s.geo != nil {
		if in := s.pickRegional(dep, s.sourceRegion(srcMachine)); in != nil {
			return in
		}
	}
	return dep.pickHealthy()
}

// newNodeJob creates the job for one visit to tree node nodeID.
func (s *Sim) newNodeJob(req *job.Request, st *reqState, nodeID, conn int, dep *Deployment) *job.Job {
	j := s.fac.NewJob(req)
	j.NodeID = nodeID
	j.Conn = conn
	pid := s.pathIDs[st.treeIdx][nodeID][0]
	if pid < 0 {
		// Unpinned: sample the service's execution-path state machine
		// when it has one, else take the first path.
		if dep.pathChoice != nil {
			pid = dep.pathChoice.Pick(dep.pathRNG)
		} else {
			pid = 0
		}
	}
	j.PathID = pid
	return j
}

// deliver routes j to instance in, paying any injected edge latency first,
// passing through the destination machine's network service when the hop
// crosses machines. The client is external (srcMachine == ""), so requests
// entering the cluster always pay the receive pass; same-machine hops use
// loopback and skip it.
func (s *Sim) deliver(now des.Time, j *job.Job, in *service.Instance, srcMachine string) {
	var delay des.Time
	if len(s.edgeExtra) > 0 {
		delay += s.edgeExtra[in.BP.Name]
	}
	if s.fluid != nil {
		// Hybrid fidelity: the sampled request queues behind the fluid
		// tier's background traffic — an equilibrium wait draw at the
		// total (foreground + background) offered load.
		if idx, ok := s.fluidIdx[in.BP.Name]; ok {
			delay += s.fluid.WaitFor(idx)
		}
	}
	if delay > 0 {
		s.eng.At(now+delay, func(t des.Time) { s.deliverDirect(t, j, in, srcMachine) })
		return
	}
	s.deliverDirect(now, j, in, srcMachine)
}

func (s *Sim) deliverDirect(now des.Time, j *job.Job, in *service.Instance, srcMachine string) {
	dest := in.Alloc.Machine.Name
	j.Machine = dest
	j.Instance = in.Name
	// The network fault model sits at the cross-machine boundary: client
	// hops (srcMachine == "") enter the cluster from outside and are not
	// subject to intra-cluster partitions or gray links.
	if s.net != nil && srcMachine != "" && srcMachine != dest {
		if !s.net.Reachable(srcMachine, dest) {
			s.net.CountUnreachable()
			s.failAttemptOrRequest(now, j, job.OutcomeUnreachable)
			return
		}
		if s.net.Lossy() {
			if l, ok := s.net.LinkFor(srcMachine, dest); ok {
				r := s.linkStream(srcMachine, dest)
				if l.Drop > 0 && r.Float64() < l.Drop {
					s.net.CountDrop()
					s.failAttemptOrRequest(now, j, job.OutcomeUnreachable)
					return
				}
				if l.Dup > 0 && r.Float64() < l.Dup {
					s.net.CountDup()
					s.deliverDuplicate(now, j, in, dest)
				}
			}
		}
	}
	// The WAN boundary: a hop whose endpoints home in different regions
	// pays the geography's inter-region delay before admission. The
	// delay is a deterministic function of the region pair and payload
	// size — no RNG draw — so installing a geography never perturbs the
	// existing random streams.
	if s.geo != nil {
		if wan := s.wanHop(now, j, in, srcMachine); wan > 0 {
			s.eng.At(now+wan, func(t des.Time) { s.admitDelivery(t, j, in, srcMachine) })
			return
		}
	}
	s.admitDelivery(now, j, in, srcMachine)
}

// admitDelivery lands a routed job at its destination machine: directly
// into the instance, or through the machine's interrupt-processing
// service when the hop crossed machines and a network model is
// configured.
func (s *Sim) admitDelivery(now des.Time, j *job.Job, in *service.Instance, srcMachine string) {
	dest := in.Alloc.Machine.Name
	if s.netCfg == nil || srcMachine == dest {
		if res := in.Admit(now, j); res != service.Admitted {
			s.deliveryRejected(now, j, res)
		}
		return
	}
	np := s.netproc[dest]
	targetPath := j.PathID
	j.PathID = 0 // netproc's single path
	s.pending[j.ID] = &delivery{instance: in, pathID: targetPath}
	if res := np.Admit(now, j); res != service.Admitted {
		delete(s.pending, j.ID)
		j.PathID = targetPath
		s.deliveryRejected(now, j, res)
	}
}

// deliverDuplicate admits a gray-link duplicate of j: a fresh clone
// sharing the request, marked canceled up front so the receiver burns a
// queue slot — and, without dequeue-time vetting, real service time — on
// it while handleJobDone's abandoned-attempt path discards the result.
// A duplicate the receiver refuses (down, full) simply evaporates; the
// original attempt's fate is tracked separately.
func (s *Sim) deliverDuplicate(now des.Time, j *job.Job, in *service.Instance, dest string) {
	dup := s.fac.Clone(j)
	dup.NodeID = j.NodeID
	dup.PathID = j.PathID
	dup.Outcome = job.OutcomeCanceled
	dup.Machine = dest
	dup.Instance = in.Name
	if s.netCfg == nil {
		in.Admit(now, dup)
		return
	}
	np := s.netproc[dest]
	targetPath := dup.PathID
	dup.PathID = 0
	s.pending[dup.ID] = &delivery{instance: in, pathID: targetPath}
	if np.Admit(now, dup) != service.Admitted {
		delete(s.pending, dup.ID)
	}
}

// handleNetDone fires when the network service finishes processing a
// message: deliver the job to its real destination.
func (s *Sim) handleNetDone(now des.Time, j *job.Job) {
	d, ok := s.pending[j.ID]
	if !ok {
		panic(fmt.Sprintf("sim: netproc finished unknown job %d", j.ID))
	}
	delete(s.pending, j.ID)
	if d.instance == nil {
		// Transmit pass for a response leaving the cluster.
		s.finalizeLeaf(now, j)
		return
	}
	j.PathID = d.pathID
	if res := d.instance.Admit(now, j); res != service.Admitted {
		// The destination died or filled up while the message was in
		// transit through the network service.
		s.deliveryRejected(now, j, res)
	}
}

// handleJobDone fires when a microservice instance completes a job's
// service-local path: release tokens, fan out to children, finish leaves.
func (s *Sim) handleJobDone(now des.Time, j *job.Job) {
	settled := false
	if len(s.calls) > 0 {
		if c, ok := s.calls[j.ID]; ok {
			// A live policy-guarded attempt finished in time.
			s.settleCall(now, c, j.ID)
			settled = true
		}
	}
	if !settled && j.Outcome == job.OutcomeOK {
		// Bare-edge success: report the instance's residence time (a
		// settled call already reported its edge-level latency).
		s.observeCall(now, j.Instance, true, now-j.Enqueued)
	}
	st, ok := s.inflight[j.Req.ID]
	if !ok {
		if j.Req.Failed || j.Req.Done() {
			return // stray server-side work of a request that already ended
		}
		panic(fmt.Sprintf("sim: job %d of unknown request %d completed", j.ID, j.Req.ID))
	}
	node := &st.tree.Nodes[j.NodeID]
	if s.OnJobDone != nil {
		s.OnJobDone(now, j, node.Service)
	}
	if j.Outcome != job.OutcomeOK {
		// An abandoned attempt completed server-side: the edge timeout
		// already handed this hop to a retry, so the result is discarded
		// (and the conn tokens stay with the live attempt's completion).
		return
	}
	for _, name := range node.ReleaseConn {
		s.pools[name].release(now, j.Req)
	}
	if len(node.Children) == 0 {
		// Leaf: optionally pay the client-transmit network pass.
		if s.netCfg != nil && s.netCfg.ClientTx {
			np := s.netproc[j.Machine]
			s.pending[j.ID] = &delivery{instance: nil}
			j.PathID = 0
			np.Enqueue(now, j)
			return
		}
		s.finalizeLeaf(now, j)
		return
	}
	children := node.Children
	if node.BranchKey != "" {
		fn, ok := s.branchers[node.BranchKey]
		if !ok {
			panic(fmt.Sprintf("sim: node %d uses unregistered brancher %q", j.NodeID, node.BranchKey))
		}
		selected := fn(now, j.Req, node.Children)
		children = s.applyBranch(j, st, node, selected)
	}
	for _, child := range children {
		st.arrived[child]++
		if st.arrived[child] == st.tree.FanIn(child) {
			s.enterNode(now, j.Req, st, child, j.Conn, j.Machine)
		}
	}
}

// applyBranch validates a brancher's selection and prunes the leaves of
// the unselected subtrees from the request's completion accounting.
func (s *Sim) applyBranch(j *job.Job, st *reqState, node *graph.Node, selected []int) []int {
	if len(selected) == 0 {
		panic(fmt.Sprintf("sim: brancher %q selected no children", node.BranchKey))
	}
	valid := make(map[int]bool, len(node.Children))
	for _, c := range node.Children {
		valid[c] = true
	}
	chosen := make(map[int]bool, len(selected))
	for _, c := range selected {
		if !valid[c] {
			panic(fmt.Sprintf("sim: brancher %q selected non-child node %d", node.BranchKey, c))
		}
		chosen[c] = true
	}
	for _, c := range node.Children {
		if !chosen[c] {
			j.Req.LeavesRemaining -= len(st.tree.LeavesUnder(c))
		}
	}
	return selected
}

// finalizeLeaf accounts a completed leaf node and, when it is the last
// leaf, finishes the request.
func (s *Sim) finalizeLeaf(now des.Time, j *job.Job) {
	req := j.Req
	if req.Failed {
		return // the request already terminated with an error
	}
	req.LeavesRemaining--
	if req.LeavesRemaining > 0 {
		return
	}
	req.Finish = now
	st := s.inflight[req.ID]
	if s.overloadOn {
		// Disarm the completed request's deadline and timeout events.
		s.cleanupRequest(st)
	}
	user := -1
	if st != nil {
		user = st.user
	}
	delete(s.inflight, req.ID)
	if !req.TimedOut {
		// Delivered throughput and latency samples belong to the window
		// the completion lands in (warmup-backlog work the system serves
		// during the window is real delivered work)...
		if now >= s.warmupEnd {
			s.windowDone++
			s.latency.Record(req.Latency())
			for tier, d := range req.TierLatency {
				h, ok := s.perTier[tier]
				if !ok {
					h = stats.NewLatencyHist()
					s.perTier[tier] = h
				}
				h.Record(d)
			}
		}
		// ...while the outcome bucket is gated on the arrival, so every
		// counted arrival lands in exactly one bucket and the conservation
		// invariant holds for any warmup.
		if req.Arrival >= s.warmupEnd {
			s.completions++
		}
	}
	if s.OnRequestDone != nil {
		s.OnRequestDone(now, req)
	}
	// A timed-out request already released its closed-loop user (and its
	// client-visible latency) at the timeout instant; likewise a session
	// user already advanced past a timed-out step.
	if req.TimedOut {
		return
	}
	if s.closedLoop != nil {
		s.closedLoop.RequestDone(now)
	} else if s.sessions != nil && user >= 0 {
		s.sessions.Done(now, user)
	}
}

// InstanceReport summarizes one instance at the end of a run.
type InstanceReport struct {
	Name        string
	Service     string
	Machine     string
	Cores       int
	Utilization float64
	Completed   uint64
	// Shed counts arrivals this instance rejected via MaxQueue plus jobs
	// its CoDel discipline shed at dequeue; Dropped counts jobs it lost
	// to kills.
	Shed    uint64
	Dropped uint64
	// Canceled counts entry jobs discarded unserved because their request
	// had already terminated; Wasted counts jobs served to completion
	// whose result was discarded (the caller had stopped waiting). High
	// Wasted with low Canceled means cancellation arrives too late to
	// save work.
	Canceled  uint64
	Wasted    uint64
	QueueLen  int
	Residence *stats.LatencyHist
}

// Report is the outcome of a run.
type Report struct {
	Warmup   des.Time
	Horizon  des.Time
	Arrivals uint64
	// Completions counts measured arrivals that finished within the
	// client's patience (timed-out requests are excluded). Like all four
	// outcome buckets it is gated on the request's arrival time, so the
	// conservation identity below holds for any warmup.
	Completions uint64
	// Timeouts counts requests the client gave up on during the
	// measured window (recorded into Latency at the timeout value).
	Timeouts uint64
	// Shed counts requests rejected with an immediate error: queue-length
	// load shedding with retries exhausted, plus circuit-breaker fast
	// fails (the BreakerFastFails subset).
	Shed uint64
	// Dropped counts requests that lost work to a crashed machine or
	// killed instance with nothing left to retry. Together the five
	// outcome buckets conserve requests:
	// Arrivals == Completions + Timeouts + Shed + Dropped +
	// DeadlineExpired (+ InFlight).
	Dropped uint64
	// DeadlineExpired counts requests whose end-to-end budget ran out
	// before completion; their remaining subtree was short-circuited.
	DeadlineExpired uint64
	// Unreachable counts requests failed by the network fault model with
	// nothing left to retry — a partition severed the machine pair or a
	// gray link dropped the message. It is the sixth error bucket of the
	// conservation identity.
	Unreachable uint64
	// LinkDrops and LinkDups count gray-link message losses and
	// duplications at the dispatch boundary (attempt-level, like
	// Retries — duplicates never enter the conservation identity).
	LinkDrops uint64
	LinkDups  uint64
	// CrossRegionCalls counts deliveries that crossed a region boundary
	// under the installed geography (attempt-level, like LinkDrops);
	// StaleReads is the subset that served a geo-replicated deployment
	// outside the request's origin region before the serving region
	// caught up (replication lag).
	CrossRegionCalls uint64
	StaleReads       uint64
	// BreakerFastFails is the subset of Shed failed by open breakers.
	BreakerFastFails uint64
	// Retries counts resilience-policy attempt re-issues across all edges
	// (not client retries, which appear as fresh Arrivals).
	Retries uint64
	// HedgesIssued counts backup attempts issued by per-edge hedging
	// policies; HedgeWins is the subset that beat their primary. Hedges
	// are attempts, not arrivals — they never enter the conservation
	// identity.
	HedgesIssued uint64
	HedgeWins    uint64
	// CanceledWork and WastedWork aggregate the per-instance Canceled and
	// Wasted counters: jobs discarded unserved vs. jobs whose completed
	// service was thrown away.
	CanceledWork uint64
	WastedWork   uint64
	// Errors breaks down failed call attempts by target service.
	Errors map[string]*ErrorCounts
	// OfferedQPS and GoodputQPS are arrival/delivery rates over the
	// measured window. Goodput counts deliveries by completion time —
	// backlog from the warmup window served during measurement is real
	// delivered throughput — so at overload GoodputQPS·window can exceed
	// Completions (which is arrival-gated).
	OfferedQPS float64
	GoodputQPS float64
	// Latency is the end-to-end request latency histogram.
	Latency *stats.LatencyHist
	// PerTier holds per-service residence-latency histograms keyed by
	// service name, accumulated over completed requests.
	PerTier map[string]*stats.LatencyHist
	// Instances summarizes every deployed instance (plus network
	// services).
	Instances []InstanceReport
	// InFlight reports requests the client still awaits at the horizon —
	// large values indicate operation beyond saturation. Abandoned server
	// work of client-timed-out requests is excluded: those requests are
	// already counted in Timeouts.
	InFlight int
	// SampleRate is the hybrid-fidelity foreground fraction (1 for a
	// full-DES run). The Arrivals/Completions/... buckets above cover
	// only the sampled foreground; the fluid tier's unsimulated traffic
	// is accounted separately below with its own conservation identity:
	// BackgroundArrivals == BackgroundCompletions + BackgroundShed +
	// BackgroundUnreachable.
	SampleRate            float64
	BackgroundArrivals    uint64
	BackgroundCompletions uint64
	// BackgroundShed counts background flow beyond the bottleneck
	// capacity during saturated epochs (open-loop only; session
	// populations self-limit and never shed).
	BackgroundShed uint64
	// BackgroundUnreachable counts background flow lost to severed or
	// lossy machine pairs (partitions, region loss, gray links) — the
	// fluid tier's analogue of the foreground Unreachable bucket.
	BackgroundUnreachable uint64
	// BackgroundShedByCause attributes BackgroundShed +
	// BackgroundUnreachable to the fault class that caused each loss
	// (hybrid.CauseOverload, CauseDegradeFreq, CauseCapacity,
	// CauseRetryStorm, CausePartition, CauseGrayLink). Values sum
	// exactly to BackgroundShed + BackgroundUnreachable; nil when both
	// are zero.
	BackgroundShedByCause map[string]uint64
	// SaturatedEpochs counts fluid-tier epochs with at least one
	// saturated service.
	SaturatedEpochs int
}

func (s *Sim) report(horizon des.Time) *Report {
	window := (horizon - s.warmupEnd).Seconds()
	r := &Report{
		Warmup:      s.warmupEnd,
		Horizon:     horizon,
		Arrivals:    s.arrivals,
		Completions: s.completions,
		Timeouts:    s.timeouts,
		Shed:        s.shedReqs,
		Dropped:     s.droppedReqs,

		DeadlineExpired:  s.deadlineReqs,
		Unreachable:      s.unreachableReqs,
		CrossRegionCalls: s.crossHops,
		StaleReads:       s.staleReads,
		BreakerFastFails: s.breakerFast,
		Retries:          s.retriesN,
		HedgesIssued:     s.hedgesN,
		HedgeWins:        s.hedgeWins,
		Errors:           s.errCounts,

		Latency: s.latency,
		PerTier: s.perTier,

		SampleRate: 1,
	}
	if s.fluid != nil {
		r.SampleRate = s.fluid.SampleRate()
		snap := s.fluid.Snapshot()
		r.BackgroundArrivals = uint64(snap.Arrivals)
		r.BackgroundCompletions = uint64(snap.Completions)
		r.BackgroundShed = uint64(snap.Shed)
		r.BackgroundUnreachable = uint64(snap.Unreachable)
		r.SaturatedEpochs = snap.SaturatedEpochs
		if by := s.fluid.ByCause(); len(by) > 0 {
			r.BackgroundShedByCause = make(map[string]uint64, len(by))
			for cause, n := range by {
				r.BackgroundShedByCause[cause] = uint64(n)
			}
		}
	}
	if s.net != nil {
		r.LinkDrops = s.net.LinkDrops()
		r.LinkDups = s.net.LinkDups()
	}
	// Only measured arrivals count: a request still draining from the
	// warmup window belongs to no bucket, and a timed-out request already
	// landed in Timeouts even though its abandoned work is still running.
	for _, st := range s.inflight {
		if st.at >= s.warmupEnd && !st.timedOut {
			r.InFlight++
		}
	}
	if window > 0 {
		r.OfferedQPS = float64(s.arrivals) / window
		r.GoodputQPS = float64(s.windowDone) / window
	}
	for _, dep := range s.Deployments() {
		for _, in := range dep.Instances {
			r.Instances = append(r.Instances, instanceReport(in, dep.Name, horizon))
			r.CanceledWork += in.CanceledEarly()
			r.WastedWork += in.WastedWork()
		}
	}
	for _, m := range s.cluster.Machines() {
		if np, ok := s.netproc[m.Name]; ok {
			r.Instances = append(r.Instances, instanceReport(np, "netproc", horizon))
		}
	}
	return r
}

func instanceReport(in *service.Instance, svc string, horizon des.Time) InstanceReport {
	return InstanceReport{
		Name:        in.Name,
		Service:     svc,
		Machine:     in.Alloc.Machine.Name,
		Cores:       in.Alloc.Cores,
		Utilization: in.Utilization(horizon),
		Completed:   in.Completed(),
		Shed:        in.Shed(),
		Dropped:     in.Dropped(),
		Canceled:    in.CanceledEarly(),
		Wasted:      in.WastedWork(),
		QueueLen:    in.QueueLen(),
		Residence:   in.Residence().Snapshot(),
	}
}

// VerifyDrained reports an error when live request state remains after the
// engine has fully drained: in-flight requests, pending network
// deliveries, live call attempts, held connection-pool tokens, or queued
// instance work. Conservation tests run the engine dry and then assert
// nothing leaked.
func (s *Sim) VerifyDrained() error {
	if n := len(s.inflight); n > 0 {
		return fmt.Errorf("sim: %d requests still in flight after drain", n)
	}
	if n := len(s.pending); n > 0 {
		return fmt.Errorf("sim: %d deliveries still pending after drain", n)
	}
	if n := len(s.calls); n > 0 {
		return fmt.Errorf("sim: %d live call attempts after drain", n)
	}
	for _, name := range s.poolOrder {
		if n := s.pools[name].inUse(); n > 0 {
			return fmt.Errorf("sim: pool %q still holds %d tokens after drain", name, n)
		}
	}
	for _, dep := range s.Deployments() {
		for _, in := range dep.Instances {
			if got := in.InFlight(); got != 0 {
				return fmt.Errorf("sim: instance %s reports %d in flight after drain", in.Name, got)
			}
			if got := in.QueueLen(); got != 0 {
				return fmt.Errorf("sim: instance %s still queues %d jobs after drain", in.Name, got)
			}
		}
	}
	return nil
}

// connPool is the runtime of a graph.ConnPool: a FIFO token dispenser whose
// tokens double as connection IDs.
type connPool struct {
	spec    graph.ConnPool
	free    []int
	waiters []waiter
	held    map[job.ID][]int
}

type waiter struct {
	req  *job.Request
	cont func(des.Time, int)
}

func newConnPool(spec graph.ConnPool, base int) *connPool {
	p := &connPool{spec: spec, held: make(map[job.ID][]int)}
	for i := 0; i < spec.Capacity; i++ {
		p.free = append(p.free, base+i)
	}
	return p
}

// acquire grants a token now if available, else queues the continuation.
func (p *connPool) acquire(now des.Time, req *job.Request, cont func(des.Time, int)) {
	if len(p.free) > 0 {
		token := p.free[0]
		p.free = p.free[1:]
		p.held[req.ID] = append(p.held[req.ID], token)
		cont(now, token)
		return
	}
	p.waiters = append(p.waiters, waiter{req: req, cont: cont})
}

// release returns one of req's tokens, granting it to the oldest waiter if
// any.
func (p *connPool) release(now des.Time, req *job.Request) {
	tokens := p.held[req.ID]
	if len(tokens) == 0 {
		panic(fmt.Sprintf("sim: request %d releases pool %q it does not hold", req.ID, p.spec.Name))
	}
	token := tokens[len(tokens)-1]
	if len(tokens) == 1 {
		delete(p.held, req.ID)
	} else {
		p.held[req.ID] = tokens[:len(tokens)-1]
	}
	for len(p.waiters) > 0 {
		w := p.waiters[0]
		p.waiters = p.waiters[1:]
		if w.req.Failed {
			continue // abandoned while queued; the token passes it by
		}
		p.held[w.req.ID] = append(p.held[w.req.ID], token)
		w.cont(now, token)
		return
	}
	p.free = append(p.free, token)
}

// releaseAll returns every token req holds (a failed request exits the
// system in one step, wherever it was in its acquire chain).
func (p *connPool) releaseAll(now des.Time, req *job.Request) {
	for len(p.held[req.ID]) > 0 {
		p.release(now, req)
	}
}

// inUse reports granted tokens.
func (p *connPool) inUse() int { return p.spec.Capacity - len(p.free) }
