package sim

import (
	"testing"

	"uqsim/internal/cluster"
	"uqsim/internal/des"
	"uqsim/internal/dist"
	"uqsim/internal/fault"
	"uqsim/internal/graph"
	"uqsim/internal/job"
	"uqsim/internal/service"
	"uqsim/internal/workload"
)

// TestBreakerRecloses: a breaker driven open by a partition must always
// re-close under sustained post-heal success — the half-open probe cannot
// starve. The trap this regression-tests: under CoDel-LIFO with deadline
// budgets, the admitted half-open probe can be buried at the bottom of
// the LIFO by competing traffic and torn down without an outcome when its
// request's budget expires. Before CancelProbe was wired into the
// teardown paths, that left the probe slot held forever — Allow refused
// every future call, Record was never reached again, and the edge stayed
// dark permanently despite a perfectly healthy backend.
//
// The topology makes the burial deterministic: two weighted paths share
// one backend instance. The raw path (no policy) saturates the backend so
// its LIFO always has fresher jobs than a waiting probe; the guarded
// path's edge carries the breaker. The edge attempt timeout (100ms)
// exceeds the client budget (60ms), so a buried probe dies only through
// budget-expiry cleanup — exactly the outcome-less teardown path.
func TestBreakerRecloses(t *testing.T) {
	s := New(Options{Seed: 11})
	s.AddMachine("m0", 4, cluster.FreqSpec{})
	s.AddMachine("m1", 2, cluster.FreqSpec{})
	if _, err := s.Deploy(service.SingleStage("front", dist.NewDeterministic(float64(100*des.Microsecond))),
		RoundRobin, Placement{Machine: "m0", Cores: 2}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Deploy(service.SingleStage("backend", dist.NewExponential(float64(des.Millisecond))),
		RoundRobin, Placement{Machine: "m1", Cores: 1}); err != nil {
		t.Fatal(err)
	}
	chain := func(name string, weight float64) graph.Tree {
		return graph.Tree{Name: name, Weight: weight, Root: 0, Nodes: []graph.Node{
			{ID: 0, Service: "front", Instance: -1, Children: []int{1}},
			{ID: 1, Service: "backend", Instance: -1},
		}}
	}
	// Tree order fixes req.Class: class 0 = guarded, class 1 = raw.
	if err := s.SetTopology(&graph.Topology{Trees: []graph.Tree{
		chain("guarded", 0.3), chain("raw", 0.7),
	}}); err != nil {
		t.Fatal(err)
	}
	// The raw path alone oversubscribes the backend (0.7·3000 ≈ 2100 QPS
	// against ~1000 QPS of capacity), so post-heal the LIFO never runs
	// out of jobs fresher than a waiting probe.
	s.SetClient(ClientConfig{
		Pattern: workload.ConstantRate(3000),
		Timeout: 200 * des.Millisecond,
		Budget:  dist.NewDeterministic(float64(60 * des.Millisecond)),
	})
	if err := s.SetNodePolicy("guarded", 1, fault.Policy{
		Timeout: 100 * des.Millisecond,
		Breaker: &fault.BreakerSpec{ErrorThreshold: 0.5, Window: 10, Cooldown: 50 * des.Millisecond},
	}); err != nil {
		t.Fatal(err)
	}
	if err := s.SetQueueDiscipline("backend", fault.QueueDiscipline{
		Kind: fault.QueueCoDelLIFO,
	}); err != nil {
		t.Fatal(err)
	}
	if err := s.InstallFaults(fault.Plan{Events: []fault.Event{{
		At: 200 * des.Millisecond, Kind: fault.PartitionStart, Until: 400 * des.Millisecond,
		GroupA: []string{"m0"}, GroupB: []string{"m1"},
	}}}); err != nil {
		t.Fatal(err)
	}
	var lastGuardedOK des.Time
	s.OnRequestDone = func(now des.Time, req *job.Request) {
		if req.Class == 0 && req.Outcome == job.OutcomeOK {
			lastGuardedOK = now
		}
	}
	rep, err := s.Run(0, 2*des.Second)
	if err != nil {
		t.Fatal(err)
	}
	conserve(t, rep)
	if rep.BreakerFastFails == 0 {
		t.Fatal("the partition should have tripped the breaker")
	}
	// The probe-starvation symptom: guarded-path completions stop for good
	// once a buried probe is torn down. Healthy behaviour re-closes the
	// breaker and keeps completing until the end of the run.
	if lastGuardedOK < 1900*des.Millisecond {
		t.Fatalf("guarded-path completions stopped at %v — breaker never re-admitted traffic after the heal", lastGuardedOK)
	}
	// Drain and inspect the breakers directly: no probe slot may remain
	// held once no call is live.
	s.Engine().RunUntil(10 * des.Second)
	if err := s.VerifyDrained(); err != nil {
		t.Fatal(err)
	}
	for _, b := range s.Breakers() {
		if b.Probing {
			t.Fatalf("breaker %s still holds its half-open probe slot after full drain (state %v)", b.Edge, b.State)
		}
	}
}
