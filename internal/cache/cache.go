// Package cache implements an LRU cache with Zipf-distributed key
// popularity — the substrate behind µqSim's emergent-hit-ratio mode. The
// paper treats cache hit probability as a model input ("the probability
// for each path is a function of MongoDB's working set size and allocated
// memory"); this package derives that probability from first principles
// instead: a key universe with Zipfian popularity, a bounded LRU, and
// write-allocate on miss, wired into the dependency graph as a runtime
// branch decision.
package cache

import (
	"container/list"
	"math"
	"sort"

	"uqsim/internal/rng"
)

// LRU is a bounded least-recently-used set of keys.
type LRU struct {
	capacity int
	items    map[uint64]*list.Element
	order    *list.List // front = most recent

	hits, misses uint64
}

// NewLRU creates an LRU holding up to capacity keys.
func NewLRU(capacity int) *LRU {
	if capacity < 1 {
		panic("cache: capacity must be positive")
	}
	return &LRU{
		capacity: capacity,
		items:    make(map[uint64]*list.Element),
		order:    list.New(),
	}
}

// Lookup reports whether key is cached, refreshing its recency on a hit.
func (c *LRU) Lookup(key uint64) bool {
	if el, ok := c.items[key]; ok {
		c.order.MoveToFront(el)
		c.hits++
		return true
	}
	c.misses++
	return false
}

// Insert adds key (write-allocate), evicting the least-recently-used entry
// when full. Inserting a present key refreshes it.
func (c *LRU) Insert(key uint64) {
	if el, ok := c.items[key]; ok {
		c.order.MoveToFront(el)
		return
	}
	if c.order.Len() >= c.capacity {
		oldest := c.order.Back()
		c.order.Remove(oldest)
		delete(c.items, oldest.Value.(uint64))
	}
	c.items[key] = c.order.PushFront(key)
}

// Len reports the number of cached keys.
func (c *LRU) Len() int { return c.order.Len() }

// HitRatio reports hits / (hits+misses) over the cache's lifetime.
func (c *LRU) HitRatio() float64 {
	total := c.hits + c.misses
	if total == 0 {
		return 0
	}
	return float64(c.hits) / float64(total)
}

// Hits and Misses report the raw lookup counters.
func (c *LRU) Hits() uint64   { return c.hits }
func (c *LRU) Misses() uint64 { return c.misses }

// Zipf samples keys 0..N-1 with P(k) ∝ 1/(k+1)^S via a precomputed CDF
// (exact inverse-transform sampling; O(log N) per draw).
type Zipf struct {
	cdf []float64
}

// NewZipf builds a sampler over n keys with exponent s (s=0: uniform;
// s≈0.99: the classic web/memcached popularity skew).
func NewZipf(n int, s float64) *Zipf {
	if n < 1 {
		panic("cache: zipf needs at least one key")
	}
	if s < 0 {
		panic("cache: zipf exponent must be non-negative")
	}
	cdf := make([]float64, n)
	acc := 0.0
	for k := 0; k < n; k++ {
		acc += 1 / math.Pow(float64(k+1), s)
		cdf[k] = acc
	}
	for k := range cdf {
		cdf[k] /= acc
	}
	cdf[n-1] = 1
	return &Zipf{cdf: cdf}
}

// Sample draws one key.
func (z *Zipf) Sample(r *rng.Source) uint64 {
	u := r.Float64()
	return uint64(sort.SearchFloat64s(z.cdf, u))
}

// N reports the key-universe size.
func (z *Zipf) N() int { return len(z.cdf) }

// PopularMass reports the probability mass of the k most popular keys —
// the analytic ceiling for the hit ratio of a size-k cache under pure-LFU.
func (z *Zipf) PopularMass(k int) float64 {
	if k <= 0 {
		return 0
	}
	if k >= len(z.cdf) {
		return 1
	}
	return z.cdf[k-1]
}
