package cache

import (
	"math"
	"testing"
	"testing/quick"

	"uqsim/internal/rng"
)

func TestLRUBasics(t *testing.T) {
	c := NewLRU(2)
	if c.Lookup(1) {
		t.Fatal("empty cache hit")
	}
	c.Insert(1)
	c.Insert(2)
	if !c.Lookup(1) || !c.Lookup(2) {
		t.Fatal("inserted keys must hit")
	}
	c.Insert(3) // evicts LRU — key 1 was refreshed before 2? order: lookups refreshed 1 then 2 → evict 1
	if c.Lookup(1) {
		t.Fatal("evicted key hit")
	}
	if !c.Lookup(3) || !c.Lookup(2) {
		t.Fatal("resident keys must hit")
	}
	if c.Len() != 2 {
		t.Fatalf("len = %d", c.Len())
	}
}

func TestLRURecencyOrder(t *testing.T) {
	c := NewLRU(2)
	c.Insert(1)
	c.Insert(2)
	c.Lookup(1) // 1 becomes most recent
	c.Insert(3) // evict 2
	if c.Lookup(2) {
		t.Fatal("2 should be evicted")
	}
	if !c.Lookup(1) {
		t.Fatal("1 should survive")
	}
}

func TestLRUReinsertRefreshes(t *testing.T) {
	c := NewLRU(2)
	c.Insert(1)
	c.Insert(2)
	c.Insert(1) // refresh, no growth
	if c.Len() != 2 {
		t.Fatalf("len = %d", c.Len())
	}
	c.Insert(3) // evict 2 (1 refreshed)
	if c.Lookup(2) {
		t.Fatal("2 should be evicted")
	}
}

func TestLRUStats(t *testing.T) {
	c := NewLRU(4)
	c.Insert(1)
	c.Lookup(1) // hit
	c.Lookup(2) // miss
	if c.Hits() != 1 || c.Misses() != 1 {
		t.Fatalf("hits=%d misses=%d, want 1/1", c.Hits(), c.Misses())
	}
	if got := c.HitRatio(); got != 0.5 {
		t.Fatalf("hit ratio %v, want 0.5", got)
	}
	if NewLRU(1).HitRatio() != 0 {
		t.Fatal("empty ratio")
	}
}

func TestLRUCapacityPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("want panic")
		}
	}()
	NewLRU(0)
}

// Property: the cache never exceeds capacity and most-recent insertions
// always hit immediately.
func TestLRUBoundedProperty(t *testing.T) {
	prop := func(seed uint64, capRaw uint8, ops uint8) bool {
		capacity := int(capRaw%16) + 1
		c := NewLRU(capacity)
		r := rng.New(seed)
		for i := 0; i < int(ops); i++ {
			k := r.Uint64() % 64
			c.Insert(k)
			if c.Len() > capacity {
				return false
			}
			if !c.Lookup(k) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestZipfDistribution(t *testing.T) {
	z := NewZipf(1000, 0.99)
	r := rng.New(5)
	counts := make([]int, 1000)
	const n = 200000
	for i := 0; i < n; i++ {
		counts[z.Sample(r)]++
	}
	// Key 0 should be the most popular; frequency ≈ 1/H where H is the
	// generalized harmonic number.
	if counts[0] < counts[1] || counts[1] < counts[10] {
		t.Fatalf("popularity not decreasing: %d, %d, %d", counts[0], counts[1], counts[10])
	}
	// Analytic mass of top-10 vs empirical.
	top10 := 0
	for i := 0; i < 10; i++ {
		top10 += counts[i]
	}
	got := float64(top10) / n
	want := z.PopularMass(10)
	if math.Abs(got-want) > 0.01 {
		t.Fatalf("top-10 mass %v vs analytic %v", got, want)
	}
}

func TestZipfUniformCase(t *testing.T) {
	z := NewZipf(100, 0)
	r := rng.New(6)
	counts := make([]int, 100)
	const n = 100000
	for i := 0; i < n; i++ {
		counts[z.Sample(r)]++
	}
	for k, c := range counts {
		if math.Abs(float64(c)/n-0.01) > 0.005 {
			t.Fatalf("uniform zipf key %d frequency %v", k, float64(c)/n)
		}
	}
}

func TestZipfEdges(t *testing.T) {
	if NewZipf(5, 1).N() != 5 {
		t.Fatal("N")
	}
	z := NewZipf(5, 1)
	if z.PopularMass(0) != 0 || z.PopularMass(5) != 1 || z.PopularMass(99) != 1 {
		t.Fatal("popular mass edges")
	}
	for _, fn := range []func(){
		func() { NewZipf(0, 1) },
		func() { NewZipf(5, -1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("want panic")
				}
			}()
			fn()
		}()
	}
}

// Property: LRU hit ratio under Zipf grows with cache size and stays in
// [0, popular-mass ceiling + slack].
func TestLRUZipfHitRatioMonotone(t *testing.T) {
	run := func(capacity int) float64 {
		z := NewZipf(10000, 0.99)
		c := NewLRU(capacity)
		r := rng.New(7)
		for i := 0; i < 100000; i++ {
			k := z.Sample(r)
			if !c.Lookup(k) {
				c.Insert(k)
			}
		}
		return c.HitRatio()
	}
	small, mid, big := run(100), run(1000), run(5000)
	if !(small < mid && mid < big) {
		t.Fatalf("hit ratios not monotone: %v, %v, %v", small, mid, big)
	}
	if small < 0.2 || big > 0.99 {
		t.Fatalf("implausible hit ratios: %v … %v", small, big)
	}
}
