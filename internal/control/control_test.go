package control

import (
	"fmt"
	"math/rand"
	"testing"

	"uqsim/internal/cluster"
	"uqsim/internal/des"
	"uqsim/internal/dist"
	"uqsim/internal/fault"
	"uqsim/internal/graph"
	"uqsim/internal/service"
	"uqsim/internal/sim"
	"uqsim/internal/workload"
)

// singleService builds a one-node topology: one service with the given
// placements, deterministic service time, and an open-loop client.
func singleService(t *testing.T, seed uint64, lb sim.Policy, svcUs float64,
	rate float64, freq cluster.FreqSpec, placements ...sim.Placement) *sim.Sim {
	t.Helper()
	s := sim.New(sim.Options{Seed: seed})
	machines := map[string]bool{}
	for _, p := range placements {
		if !machines[p.Machine] {
			machines[p.Machine] = true
			s.AddMachine(p.Machine, 8, freq)
		}
	}
	if _, err := s.Deploy(service.SingleStage("s", dist.NewDeterministic(svcUs*1000)), lb, placements...); err != nil {
		t.Fatal(err)
	}
	topo := &graph.Topology{Trees: []graph.Tree{{
		Name: "t", Weight: 1, Root: 0,
		Nodes: []graph.Node{{ID: 0, Service: "s", Instance: -1}},
	}}}
	if err := s.SetTopology(topo); err != nil {
		t.Fatal(err)
	}
	s.SetClient(sim.ClientConfig{Pattern: workload.ConstantRate(rate)})
	return s
}

func leaked(rep *sim.Report) uint64 {
	return rep.Arrivals - (rep.Completions + rep.Timeouts + rep.Shed +
		rep.Dropped + rep.DeadlineExpired + uint64(rep.InFlight))
}

// TestDetectionAndFailover: a killed instance is declared dead with
// bounded lag and replaced on a machine with free cores, restoring the
// healthy replica count; the dead instance's cores are reclaimed.
func TestDetectionAndFailover(t *testing.T) {
	s := singleService(t, 7, sim.RoundRobin, 200, 2000, cluster.FreqSpec{},
		sim.Placement{Machine: "m0", Cores: 2},
		sim.Placement{Machine: "m1", Cores: 2})
	if err := s.InstallFaults(fault.Plan{Events: []fault.Event{
		{At: 200 * des.Millisecond, Kind: fault.KillInstance, Service: "s", Instance: 0},
	}}); err != nil {
		t.Fatal(err)
	}
	plane, err := Attach(s, Config{
		Detector: &DetectorConfig{Period: 10 * des.Millisecond},
		Failover: &FailoverConfig{RestartDelay: 50 * des.Millisecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := s.Run(0, des.Second)
	if err != nil {
		t.Fatal(err)
	}
	st := plane.Stats()
	if st.Detections != 1 || st.Failovers != 1 || st.Recoveries != 0 {
		t.Fatalf("want 1 detection + 1 failover, got %s", st.Fingerprint())
	}
	if lag := st.MeanDetectionLag(); lag <= 0 || lag > 100*des.Millisecond {
		t.Fatalf("detection lag %v outside (0, 100ms]", lag)
	}
	dep, _ := s.Deployment("s")
	if n := len(dep.Healthy()); n != 2 {
		t.Fatalf("healthy replicas after failover = %d, want 2", n)
	}
	if n := dep.ReplicaCount(); n != 2 {
		t.Fatalf("replica count after failover = %d, want 2", n)
	}
	// The dead instance's allocation was released.
	m0, _ := s.Cluster().Machine("m0")
	if m0.FreeCores() != 8 {
		t.Fatalf("m0 free cores = %d, want 8 after reclaim", m0.FreeCores())
	}
	if l := leaked(rep); l != 0 {
		t.Fatalf("leaked %d requests", l)
	}
	plane.Stop()
	s.Engine().Run()
	if err := s.VerifyDrained(); err != nil {
		t.Fatal(err)
	}
}

// TestRecoveryWithdrawsDeclaration: an instance that comes back (fault-plan
// restart) after being declared dead but before its replacement goes up is
// kept — the declaration is withdrawn and no failover happens.
func TestRecoveryWithdrawsDeclaration(t *testing.T) {
	s := singleService(t, 11, sim.RoundRobin, 200, 2000, cluster.FreqSpec{},
		sim.Placement{Machine: "m0", Cores: 2},
		sim.Placement{Machine: "m1", Cores: 2})
	if err := s.InstallFaults(fault.Plan{Events: []fault.Event{
		{At: 200 * des.Millisecond, Kind: fault.KillInstance, Service: "s", Instance: 0},
		{At: 260 * des.Millisecond, Kind: fault.RestartInstance, Service: "s", Instance: 0},
	}}); err != nil {
		t.Fatal(err)
	}
	plane, err := Attach(s, Config{
		Detector: &DetectorConfig{Period: 10 * des.Millisecond},
		Failover: &FailoverConfig{RestartDelay: 150 * des.Millisecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run(0, des.Second); err != nil {
		t.Fatal(err)
	}
	st := plane.Stats()
	if st.Detections != 1 || st.Recoveries != 1 || st.Failovers != 0 {
		t.Fatalf("want detection withdrawn by recovery, got %s", st.Fingerprint())
	}
	dep, _ := s.Deployment("s")
	if n := len(dep.Healthy()); n != 2 {
		t.Fatalf("healthy replicas after recovery = %d, want 2", n)
	}
	plane.Stop()
	s.Engine().Run()
	if err := s.VerifyDrained(); err != nil {
		t.Fatal(err)
	}
}

// grayFailureRun runs the gray-failure scenario — two replicas, one on a
// DVFS-degraded machine — and reports the degraded replica's share of
// completions plus the end-to-end p99.
func grayFailureRun(t *testing.T, eject bool) (share float64, p99 des.Time, ejections uint64) {
	t.Helper()
	s := singleService(t, 23, sim.RoundRobin, 200, 2000, cluster.DefaultFreqSpec,
		sim.Placement{Machine: "m0", Cores: 1},
		sim.Placement{Machine: "m1", Cores: 1})
	if err := s.InstallFaults(fault.Plan{Events: []fault.Event{
		{At: 0, Kind: fault.DegradeFreq, Machine: "m1", FreqMHz: 1200},
	}}); err != nil {
		t.Fatal(err)
	}
	var plane *Plane
	if eject {
		var err error
		plane, err = Attach(s, Config{
			Ejection: &EjectionConfig{Interval: 50 * des.Millisecond, Probation: 300 * des.Millisecond},
		})
		if err != nil {
			t.Fatal(err)
		}
		s.OnCallResult = plane.ObserveCall
	}
	rep, err := s.Run(0, 2*des.Second)
	if err != nil {
		t.Fatal(err)
	}
	if l := leaked(rep); l != 0 {
		t.Fatalf("leaked %d requests", l)
	}
	var total, degraded uint64
	for _, ir := range rep.Instances {
		total += ir.Completed
		if ir.Name == "s-1" {
			degraded = ir.Completed
		}
	}
	if total == 0 {
		t.Fatal("no completions")
	}
	if plane != nil {
		ejections = plane.Stats().Ejections
		plane.Stop()
	}
	s.Engine().Run()
	if err := s.VerifyDrained(); err != nil {
		t.Fatal(err)
	}
	return float64(degraded) / float64(total), rep.Latency.P99(), ejections
}

// TestGrayFailureRegression pins the failure mode the ejector exists for:
// without control, a round-robin balancer keeps sending a full traffic
// share to a frequency-degraded (up but slow) instance; with outlier
// ejection the degraded instance loses most of its share and the
// end-to-end p99 drops.
func TestGrayFailureRegression(t *testing.T) {
	baseShare, baseP99, _ := grayFailureRun(t, false)
	if baseShare < 0.4 || baseShare > 0.6 {
		t.Fatalf("without control, degraded share = %.2f, want ~0.5 (the regression pin)", baseShare)
	}
	ejShare, ejP99, ejections := grayFailureRun(t, true)
	if ejections == 0 {
		t.Fatal("ejector never fired on a gray-failed instance")
	}
	if ejShare >= 0.35 {
		t.Fatalf("with ejection, degraded share = %.2f, want < 0.35 (baseline %.2f)", ejShare, baseShare)
	}
	if ejP99 >= baseP99 {
		t.Fatalf("ejection did not improve p99: %v (ejected) vs %v (baseline)", ejP99, baseP99)
	}
}

// TestEjectionBoundedByMinHealthy: when every replica looks bad at once,
// eviction stops at the min-healthy floor, and probation brings the
// ejected replicas back with a clean slate.
func TestEjectionBoundedByMinHealthy(t *testing.T) {
	s := sim.New(sim.Options{Seed: 3})
	s.AddMachine("m0", 8, cluster.FreqSpec{})
	if _, err := s.Deploy(service.SingleStage("s", dist.NewDeterministic(1000)), sim.RoundRobin,
		sim.Placement{Machine: "m0", Cores: 1},
		sim.Placement{Machine: "m0", Cores: 1},
		sim.Placement{Machine: "m0", Cores: 1},
		sim.Placement{Machine: "m0", Cores: 1}); err != nil {
		t.Fatal(err)
	}
	plane, err := Attach(s, Config{Ejection: &EjectionConfig{
		Interval:  10 * des.Millisecond,
		Probation: 50 * des.Millisecond,
	}})
	if err != nil {
		t.Fatal(err)
	}
	// Every replica reports a 100% windowed failure rate.
	for i := 0; i < 4; i++ {
		for k := 0; k < 25; k++ {
			plane.ObserveCall(0, fmt.Sprintf("s-%d", i), false, 0)
		}
	}
	s.Engine().RunUntil(15 * des.Millisecond)
	dep, _ := s.Deployment("s")
	if got := plane.Stats().Ejections; got != 2 {
		t.Fatalf("ejections = %d, want 2 (min-healthy floor of 4 replicas)", got)
	}
	if n := len(dep.Healthy()); n != 2 {
		t.Fatalf("healthy after bounded eviction = %d, want 2", n)
	}
	// Probation ends: both come back with clean windows and stay back.
	s.Engine().RunUntil(90 * des.Millisecond)
	if got := plane.Stats().Reinstatements; got != 2 {
		t.Fatalf("reinstatements = %d, want 2", got)
	}
	if n := len(dep.Healthy()); n != 4 {
		t.Fatalf("healthy after probation = %d, want 4", n)
	}
	plane.Stop()
}

// stepRate is a one-step load pattern: High until the step time, Low after.
type stepRate struct {
	high, low float64
	at        des.Time
}

func (p stepRate) RateAt(t des.Time) float64 {
	if t < p.at {
		return p.high
	}
	return p.low
}

// TestAutoscaleFollowsLoad: a load step up pushes windowed utilization over
// target and adds replicas; the step back down drains them away, bounded
// by Min, with cooldowns spacing the actions.
func TestAutoscaleFollowsLoad(t *testing.T) {
	s := sim.New(sim.Options{Seed: 5})
	s.AddMachine("m0", 16, cluster.FreqSpec{})
	if _, err := s.Deploy(service.SingleStage("s", dist.NewDeterministic(400*1000)), sim.RoundRobin,
		sim.Placement{Machine: "m0", Cores: 1}); err != nil {
		t.Fatal(err)
	}
	topo := &graph.Topology{Trees: []graph.Tree{{
		Name: "t", Weight: 1, Root: 0,
		Nodes: []graph.Node{{ID: 0, Service: "s", Instance: -1}},
	}}}
	if err := s.SetTopology(topo); err != nil {
		t.Fatal(err)
	}
	s.SetClient(sim.ClientConfig{Pattern: stepRate{high: 2500, low: 200, at: des.Second}})
	plane, err := Attach(s, Config{Autoscale: []AutoscaleConfig{{
		Service: "s", Min: 1, Max: 4,
		TargetUtilization: 0.5,
		Interval:          50 * des.Millisecond,
	}}})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := s.Run(0, 2*des.Second)
	if err != nil {
		t.Fatal(err)
	}
	st := plane.Stats()
	if st.ScaleUps == 0 {
		t.Fatalf("no scale-ups under 2.5x overload: %s", st.Fingerprint())
	}
	if st.ScaleDowns == 0 {
		t.Fatalf("no scale-downs after the load dropped: %s", st.Fingerprint())
	}
	dep, _ := s.Deployment("s")
	if n := dep.ReplicaCount(); n != 1 {
		t.Fatalf("replicas at end of quiet phase = %d, want Min=1", n)
	}
	if l := leaked(rep); l != 0 {
		t.Fatalf("leaked %d requests", l)
	}
	plane.Stop()
	s.Engine().Run()
	if err := s.VerifyDrained(); err != nil {
		t.Fatal(err)
	}
}

// TestAttachValidation: configuration mistakes fail eagerly.
func TestAttachValidation(t *testing.T) {
	build := func() *sim.Sim {
		s := sim.New(sim.Options{Seed: 1})
		s.AddMachine("m0", 8, cluster.FreqSpec{})
		if _, err := s.Deploy(service.SingleStage("s", dist.NewDeterministic(1000)), sim.RoundRobin,
			sim.Placement{Machine: "m0", Cores: 1}); err != nil {
			t.Fatal(err)
		}
		return s
	}
	cases := []struct {
		name string
		cfg  Config
	}{
		{"empty", Config{}},
		{"failover without detector", Config{Failover: &FailoverConfig{}}},
		{"unknown service", Config{Services: []string{"nope"}, Detector: &DetectorConfig{}}},
		{"unknown failover machine", Config{Detector: &DetectorConfig{},
			Failover: &FailoverConfig{Machines: []string{"mX"}}}},
		{"bad quantile", Config{Ejection: &EjectionConfig{Quantile: 1.5}}},
		{"autoscale both targets", Config{Autoscale: []AutoscaleConfig{{
			Service: "s", Max: 2, TargetUtilization: 0.5, TargetQueue: 4}}}},
		{"autoscale no target", Config{Autoscale: []AutoscaleConfig{{Service: "s", Max: 2}}}},
		{"autoscale max below min", Config{Autoscale: []AutoscaleConfig{{
			Service: "s", Min: 3, Max: 2, TargetUtilization: 0.5}}}},
		{"autoscale unknown machine", Config{Autoscale: []AutoscaleConfig{{
			Service: "s", Max: 2, TargetUtilization: 0.5, Machines: []string{"mX"}}}}},
		{"duplicate autoscale", Config{Autoscale: []AutoscaleConfig{
			{Service: "s", Max: 2, TargetUtilization: 0.5},
			{Service: "s", Max: 2, TargetUtilization: 0.5}}}},
	}
	for _, tc := range cases {
		if _, err := Attach(build(), tc.cfg); err == nil {
			t.Errorf("%s: Attach accepted a bad config", tc.name)
		}
	}
}

// buildControlledScenario assembles a random fan-out topology with faults
// and a full control plane (detector, ejection, failover, autoscale) on
// top — the integration surface for the conservation and determinism
// sweeps below.
func buildControlledScenario(t *testing.T, seed int64) (*sim.Sim, *Plane) {
	t.Helper()
	r := rand.New(rand.NewSource(seed))
	s := sim.New(sim.Options{Seed: uint64(seed)})
	s.AddMachine("m0", 16, cluster.FreqSpec{})
	s.AddMachine("m1", 16, cluster.FreqSpec{})
	mach := func() string { return fmt.Sprintf("m%d", r.Intn(2)) }

	deploy := func(name string, meanUs float64) {
		t.Helper()
		var sampler dist.Sampler
		if r.Intn(2) == 0 {
			sampler = dist.NewDeterministic(meanUs * 1000)
		} else {
			sampler = dist.NewExponential(meanUs * 1000)
		}
		n := 1 + r.Intn(3)
		placements := make([]sim.Placement, n)
		for i := range placements {
			placements[i] = sim.Placement{Machine: mach(), Cores: 1}
		}
		if _, err := s.Deploy(service.SingleStage(name, sampler), sim.Policy(r.Intn(3)), placements...); err != nil {
			t.Fatal(err)
		}
	}
	deploy("root", 20)
	mids := 1 + r.Intn(2)
	for i := 0; i < mids; i++ {
		deploy(fmt.Sprintf("mid%d", i), 10+float64(r.Intn(60)))
	}
	deploy("join", 15)

	nodes := []graph.Node{{ID: 0, Service: "root", Instance: -1}}
	joinID := mids + 1
	for i := 0; i < mids; i++ {
		nodes[0].Children = append(nodes[0].Children, i+1)
		nodes = append(nodes, graph.Node{
			ID: i + 1, Service: fmt.Sprintf("mid%d", i), Instance: -1,
			Children: []int{joinID},
		})
	}
	nodes = append(nodes, graph.Node{ID: joinID, Service: "join", Instance: -1})
	topo := &graph.Topology{Trees: []graph.Tree{{Name: "t", Weight: 1, Root: 0, Nodes: nodes}}}
	if err := s.SetTopology(topo); err != nil {
		t.Fatal(err)
	}
	s.SetClient(sim.ClientConfig{Pattern: workload.ConstantRate(float64(300 + r.Intn(1200)))})

	victim := fmt.Sprintf("mid%d", r.Intn(mids))
	events := []fault.Event{
		{At: des.Time(50+r.Intn(100)) * des.Millisecond, Kind: fault.KillInstance, Service: victim, Instance: 0},
	}
	if r.Intn(2) == 0 {
		events = append(events, fault.Event{
			At: events[0].At + 40*des.Millisecond, Kind: fault.RestartInstance, Service: victim, Instance: 0,
		})
	}
	if r.Intn(2) == 0 {
		crash := des.Time(120+r.Intn(80)) * des.Millisecond
		events = append(events,
			fault.Event{At: crash, Kind: fault.CrashMachine, Machine: "m1"},
			fault.Event{At: crash + 30*des.Millisecond, Kind: fault.RecoverMachine, Machine: "m1"})
	}
	if err := s.InstallFaults(fault.Plan{Events: events}); err != nil {
		t.Fatal(err)
	}

	plane, err := Attach(s, Config{
		Detector: &DetectorConfig{Period: 10 * des.Millisecond},
		Ejection: &EjectionConfig{Interval: 50 * des.Millisecond, Probation: 100 * des.Millisecond},
		Failover: &FailoverConfig{RestartDelay: 30 * des.Millisecond},
		Autoscale: []AutoscaleConfig{{
			Service: "mid0", Min: 1, Max: 3,
			TargetUtilization: 0.6,
			Interval:          50 * des.Millisecond,
		}},
	})
	if err != nil {
		t.Fatal(err)
	}
	s.OnCallResult = plane.ObserveCall
	return s, plane
}

// TestControlledTopologiesConserveAndDrain: with the whole control plane
// acting on random faulted topologies — membership churn from failover
// and autoscaling included — request conservation must hold exactly and
// draining the engine after Stop must leak nothing.
func TestControlledTopologiesConserveAndDrain(t *testing.T) {
	for seed := int64(1); seed <= 12; seed++ {
		s, plane := buildControlledScenario(t, seed)
		rep, err := s.Run(0, 400*des.Millisecond)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if rep.Completions == 0 {
			t.Fatalf("seed %d: no completions", seed)
		}
		if l := leaked(rep); l != 0 {
			t.Fatalf("seed %d: leaked %d requests", seed, l)
		}
		plane.Stop()
		s.Engine().Run()
		if err := s.VerifyDrained(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
	}
}

// TestControlPlaneDeterministic: the reproducibility guarantee extends
// over the control plane — same seed, same faults, same config yields an
// identical report and identical action counters, replica churn and all.
func TestControlPlaneDeterministic(t *testing.T) {
	for seed := int64(1); seed <= 8; seed++ {
		run := func() string {
			s, plane := buildControlledScenario(t, seed)
			rep, err := s.Run(0, 400*des.Millisecond)
			if err != nil {
				t.Fatalf("seed %d: %v", seed, err)
			}
			fp := fmt.Sprintf("arr=%d comp=%d to=%d shed=%d drop=%d ddl=%d inflight=%d p50=%v p99=%v | %s",
				rep.Arrivals, rep.Completions, rep.Timeouts, rep.Shed, rep.Dropped,
				rep.DeadlineExpired, rep.InFlight, rep.Latency.P50(), rep.Latency.P99(),
				plane.Stats().Fingerprint())
			for _, ir := range rep.Instances {
				fp += fmt.Sprintf(" %s:%d", ir.Name, ir.Completed)
			}
			plane.Stop()
			return fp
		}
		if a, b := run(), run(); a != b {
			t.Fatalf("seed %d: runs differ\n a: %s\n b: %s", seed, a, b)
		}
	}
}

// TestPartitionFalseSuspicion is the vantage regression: an instance that
// is alive and serving but unreachable from the plane's vantage machine is
// suspected and pulled from rotation, is NOT failed over (it is not down,
// so replacing it would double-place the service), and is reinstated once
// the partition heals and its heartbeats resume.
func TestPartitionFalseSuspicion(t *testing.T) {
	s := singleService(t, 11, sim.RoundRobin, 200, 2000, cluster.FreqSpec{},
		sim.Placement{Machine: "m1", Cores: 2},
		sim.Placement{Machine: "m2", Cores: 2})
	s.AddMachine("m0", 2, cluster.FreqSpec{}) // the plane's vantage
	if err := s.InstallFaults(fault.Plan{Events: []fault.Event{{
		At: 300 * des.Millisecond, Kind: fault.PartitionStart, Until: 600 * des.Millisecond,
		GroupA: []string{"m0"}, GroupB: []string{"m1"},
	}}}); err != nil {
		t.Fatal(err)
	}
	plane, err := Attach(s, Config{
		Vantage:  "m0",
		Detector: &DetectorConfig{Period: 10 * des.Millisecond},
		Failover: &FailoverConfig{RestartDelay: 50 * des.Millisecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	dep, _ := s.Deployment("s")
	var healthyDuring int
	s.Engine().At(500*des.Millisecond, func(des.Time) { healthyDuring = len(dep.Healthy()) })
	rep, err := s.Run(0, des.Second)
	if err != nil {
		t.Fatal(err)
	}
	st := plane.Stats()
	plane.Stop()
	if st.Detections == 0 {
		t.Fatalf("partition-silenced instance never suspected: %s", st.Fingerprint())
	}
	if st.Failovers != 0 {
		t.Fatalf("live-but-unreachable instance was failed over (double-place): %s", st.Fingerprint())
	}
	if st.Recoveries == 0 {
		t.Fatalf("resumed heartbeats never withdrew the suspicion: %s", st.Fingerprint())
	}
	if healthyDuring != 1 {
		t.Fatalf("healthy replicas during partition = %d, want 1 (suspect ejected)", healthyDuring)
	}
	if n := len(dep.Healthy()); n != 2 {
		t.Fatalf("healthy replicas after heal = %d, want 2 (suspect reinstated)", n)
	}
	if n := dep.ReplicaCount(); n != 2 {
		t.Fatalf("replica count = %d, want 2 (no replacement placed)", n)
	}
	if l := leaked(rep); l != 0 {
		t.Fatalf("leaked %d requests", l)
	}
	// The instance served traffic the whole time: the partition cut only
	// the control plane's view, not the client's data path.
	for _, ir := range rep.Instances {
		if ir.Completed == 0 {
			t.Fatalf("instance %s completed nothing", ir.Name)
		}
	}
}
