// Package control is a discrete-event self-healing control plane for a
// simulation: it closes the detect→decide→act loop that the data-plane
// resilience machinery (retries, breakers, deadlines, hedges) deliberately
// leaves open. Four cooperating controllers run as ordinary DES events:
//
//   - a failure detector driving per-instance heartbeats through a
//     phi-accrual suspicion score, so crash detection has realistic lag
//     instead of instant omniscience;
//   - an outlier ejector tracking per-instance success rates and latency
//     quantiles (streaming P² estimators), removing gray-failed instances
//     from load balancing with bounded eviction and probation-based
//     reinstatement;
//   - a failover orchestrator replacing detected-dead instances with fresh
//     replicas on machines with free cores after a restart delay;
//   - a reactive autoscaler following a target-utilization or queue-depth
//     control law with scale-up/down cooldowns, bounded by cluster
//     capacity.
//
// Every decision is deterministic under the simulation seed: the plane's
// only randomness (heartbeat jitter) comes from dedicated RNG streams, so
// attaching it never perturbs service-time or load-balancing draws.
package control

import (
	"fmt"
	"math"
	"sort"

	"uqsim/internal/des"
	"uqsim/internal/monitor"
	"uqsim/internal/rng"
	"uqsim/internal/service"
	"uqsim/internal/sim"
	"uqsim/internal/stats"
)

// DetectorConfig tunes the heartbeat failure detector.
type DetectorConfig struct {
	// Period is the heartbeat emission period (default 20ms).
	Period des.Time
	// Jitter spreads each interval uniformly by ±Jitter·Period (default
	// 0.1), drawn from a dedicated per-instance RNG stream.
	Jitter float64
	// CheckInterval is the suspicion-evaluation cadence (default Period).
	CheckInterval des.Time
	// PhiThreshold is the phi-accrual suspicion level that declares an
	// instance dead (default 8 — the classic "one in 10⁸" operating
	// point).
	PhiThreshold float64
	// MinSamples is how many observed intervals the detector wants before
	// trusting its own mean over the configured period (default 3).
	MinSamples int
}

func (c *DetectorConfig) withDefaults() *DetectorConfig {
	out := *c
	if out.Period <= 0 {
		out.Period = 20 * des.Millisecond
	}
	if out.Jitter <= 0 {
		out.Jitter = 0.1
	}
	if out.CheckInterval <= 0 {
		out.CheckInterval = out.Period
	}
	if out.PhiThreshold <= 0 {
		out.PhiThreshold = 8
	}
	if out.MinSamples <= 0 {
		out.MinSamples = 3
	}
	return &out
}

// EjectionConfig tunes the outlier ejector.
type EjectionConfig struct {
	// Interval is the evaluation window: per-instance success/failure
	// counts and latency quantiles are evaluated and reset on this cadence
	// (default 100ms).
	Interval des.Time
	// FailureRatio ejects an instance whose windowed failure fraction
	// reaches it (default 0.5).
	FailureRatio float64
	// LatencyFactor ejects an instance whose windowed latency quantile
	// exceeds this multiple of the deployment's (lower) median quantile
	// (default 1.5).
	LatencyFactor float64
	// Quantile is the tracked latency quantile (default 0.9).
	Quantile float64
	// MinRequests is the minimum windowed observation count before either
	// rule applies to an instance (default 20).
	MinRequests int
	// MinHealthyFraction bounds eviction: ejection never shrinks the
	// healthy set below ceil(fraction · replicas), and never below one
	// instance (default 0.5).
	MinHealthyFraction float64
	// Probation is how long an ejected instance sits out before
	// reinstatement with a clean slate (default 500ms). A still-degraded
	// instance is re-ejected one window later.
	Probation des.Time
}

func (c *EjectionConfig) withDefaults() *EjectionConfig {
	out := *c
	if out.Interval <= 0 {
		out.Interval = 100 * des.Millisecond
	}
	if out.FailureRatio <= 0 {
		out.FailureRatio = 0.5
	}
	if out.LatencyFactor <= 0 {
		out.LatencyFactor = 1.5
	}
	if out.Quantile <= 0 {
		out.Quantile = 0.9
	}
	if out.MinRequests <= 0 {
		out.MinRequests = 20
	}
	if out.MinHealthyFraction <= 0 {
		out.MinHealthyFraction = 0.5
	}
	if out.Probation <= 0 {
		out.Probation = 500 * des.Millisecond
	}
	return &out
}

// FailoverConfig tunes dead-instance replacement. Requires a Detector.
type FailoverConfig struct {
	// RestartDelay is the lag between declaring an instance dead and its
	// replacement admitting traffic — scheduling plus cold start (default
	// 100ms). While no machine has capacity the attempt repeats on this
	// cadence.
	RestartDelay des.Time
	// Machines optionally restricts replacement placement to this
	// allowlist (default: any machine in the cluster).
	Machines []string
}

func (c *FailoverConfig) withDefaults() *FailoverConfig {
	out := *c
	if out.RestartDelay <= 0 {
		out.RestartDelay = 100 * des.Millisecond
	}
	return &out
}

// AutoscaleConfig is one service's reactive scaling law. Exactly one of
// TargetUtilization and TargetQueue must be set.
type AutoscaleConfig struct {
	// Service names the scaled deployment.
	Service string
	// Min and Max bound the replica count (Min ≥ 1, Max ≥ Min).
	Min, Max int
	// TargetUtilization drives replicas toward this windowed mean core
	// occupancy in (0,1) — the HPA law desired = ceil(current·observed/target).
	TargetUtilization float64
	// TargetQueue drives replicas toward this mean queue depth per
	// replica (> 0).
	TargetQueue float64
	// Interval is the decision cadence (default 100ms).
	Interval des.Time
	// UpCooldown and DownCooldown suppress repeat actions after a scale-up
	// (default 2·Interval) and scale-down (default 4·Interval).
	UpCooldown   des.Time
	DownCooldown des.Time
	// Tolerance is the deadband around the target inside which no action
	// is taken (default 0.2, i.e. ±20%).
	Tolerance float64
	// Cores per added replica (default: same as the first instance).
	Cores int
	// Machines optionally restricts placement of new replicas.
	Machines []string
}

func (c *AutoscaleConfig) withDefaults() *AutoscaleConfig {
	out := *c
	if out.Min <= 0 {
		out.Min = 1
	}
	if out.Interval <= 0 {
		out.Interval = 100 * des.Millisecond
	}
	if out.UpCooldown <= 0 {
		out.UpCooldown = 2 * out.Interval
	}
	if out.DownCooldown <= 0 {
		out.DownCooldown = 4 * out.Interval
	}
	if out.Tolerance <= 0 {
		out.Tolerance = 0.2
	}
	return &out
}

// Config assembles the control plane. Nil sections disable the
// corresponding controller.
type Config struct {
	// Services restricts the plane to these deployments (default: every
	// deployment in the simulation).
	Services  []string
	Detector  *DetectorConfig
	Ejection  *EjectionConfig
	Failover  *FailoverConfig
	Autoscale []AutoscaleConfig
	// RegionFailover arms region-loss detection and geo-replica
	// promotion. Requires a Detector and a simulation with an installed
	// geography (sim.SetGeography).
	RegionFailover *RegionFailoverConfig
	// Vantage names the machine the plane observes the cluster from.
	// With the network fault model active, heartbeats from machines
	// unreachable toward the vantage are lost — live instances behind a
	// partition are falsely suspected — and the plane neither places
	// replicas on machines it cannot reach nor autoscales a deployment
	// it only partially sees. Empty: an omniscient plane (prior
	// behaviour, and the right model when no partitions are injected).
	Vantage string
}

// Stats counts control-plane actions; it extends the determinism
// fingerprint over the plane's behaviour.
type Stats struct {
	// Detections counts instances declared dead by the phi detector;
	// Recoveries counts declared-dead instances whose heartbeats resumed
	// before (or without) replacement.
	Detections uint64
	Recoveries uint64
	// DetectionLagTotal accumulates (detection time − actual kill time)
	// across detections.
	DetectionLagTotal des.Time
	// Failovers counts replacement replicas brought up; FailoverStalls
	// counts placement attempts deferred for lack of free cores.
	Failovers      uint64
	FailoverStalls uint64
	// Ejections and Reinstatements count outlier-ejector actions.
	Ejections      uint64
	Reinstatements uint64
	// ScaleUps/ScaleDowns count autoscaler replica additions and
	// retirements; ScaleBlocked counts scale-ups skipped for lack of
	// cluster capacity.
	ScaleUps     uint64
	ScaleDowns   uint64
	ScaleBlocked uint64
	// ScaleFrozen counts autoscaler decisions skipped because a live
	// instance was unreachable from the vantage: scaling on a partial
	// view would double-place capacity that is still serving.
	ScaleFrozen uint64
	// RegionLosses counts regions declared lost (every tracked instance
	// homed there dead); RegionFailovers counts geo-replica promotions
	// performed in response; RegionRestores counts lost regions whose
	// instances resumed beating.
	RegionLosses    uint64
	RegionFailovers uint64
	RegionRestores  uint64
}

// MeanDetectionLag reports the average gap between an instance dying and
// the detector noticing.
func (st *Stats) MeanDetectionLag() des.Time {
	if st.Detections == 0 {
		return 0
	}
	return st.DetectionLagTotal / des.Time(st.Detections)
}

// Fingerprint flattens the counters into a comparable string for
// determinism tests.
func (st *Stats) Fingerprint() string {
	return fmt.Sprintf("det=%d rec=%d lag=%d fo=%d stall=%d ej=%d rein=%d up=%d down=%d blocked=%d frozen=%d rloss=%d rfo=%d rrest=%d",
		st.Detections, st.Recoveries, st.DetectionLagTotal, st.Failovers, st.FailoverStalls,
		st.Ejections, st.Reinstatements, st.ScaleUps, st.ScaleDowns, st.ScaleBlocked, st.ScaleFrozen,
		st.RegionLosses, st.RegionFailovers, st.RegionRestores)
}

// Plane is one attached control plane.
type Plane struct {
	s   *sim.Sim
	eng des.Scheduler
	cfg Config

	managed    []*managedDeployment
	byInstance map[string]*instanceTrack
	// lostRegions holds the regions currently declared lost, for
	// edge-triggered loss/restore accounting.
	lostRegions map[string]bool
	stats       Stats
	stopped     bool
}

// managedDeployment is the plane's view of one deployment.
type managedDeployment struct {
	dep    *sim.Deployment
	tracks []*instanceTrack
	scale  *autoscaleState // nil unless autoscaled
}

// instanceTrack is the plane's per-instance state: detector history,
// ejection window, and autoscaler busy-time cursor.
type instanceTrack struct {
	md *managedDeployment
	in *service.Instance
	hb *rng.Source

	// Failure detector (Welford over observed heartbeat intervals).
	lastBeat des.Time
	beats    uint64
	meanInt  float64
	m2       float64
	dead     bool
	replaced bool // a failover replica superseded this instance
	// suspectEject marks an instance the detector pulled from the
	// rotation while it was alive but silent (partitioned from the
	// vantage); resumed beats reinstate it.
	suspectEject bool

	// Ejection window, reset every evaluation interval.
	succ uint64
	fail uint64
	lat  *stats.P2Quantile

	// Autoscaler busy-time cursor and last windowed delta.
	prevBusy   des.Time
	windowBusy des.Time
}

// Attach wires a control plane into the simulation and schedules its
// event loops. Call after deployments and topology exist and before Run.
// The plane keeps acting until the engine stops or Stop is called;
// conservation tests draining the engine after a run must call Stop first,
// or the periodic loops keep the event heap occupied forever.
func Attach(s *sim.Sim, cfg Config) (*Plane, error) {
	if cfg.Failover != nil && cfg.Detector == nil {
		return nil, fmt.Errorf("control: failover requires a detector")
	}
	if cfg.Detector == nil && cfg.Ejection == nil && len(cfg.Autoscale) == 0 {
		return nil, fmt.Errorf("control: empty config — enable a detector, ejection, or autoscaling")
	}
	if cfg.Detector != nil {
		cfg.Detector = cfg.Detector.withDefaults()
	}
	if cfg.Ejection != nil {
		e := cfg.Ejection.withDefaults()
		if e.FailureRatio > 1 {
			return nil, fmt.Errorf("control: ejection failure ratio %.2f > 1", e.FailureRatio)
		}
		if e.MinHealthyFraction > 1 {
			return nil, fmt.Errorf("control: min healthy fraction %.2f > 1", e.MinHealthyFraction)
		}
		if e.Quantile >= 1 {
			return nil, fmt.Errorf("control: ejection quantile %.2f must be in (0,1)", e.Quantile)
		}
		cfg.Ejection = e
	}
	if cfg.Failover != nil {
		f := cfg.Failover.withDefaults()
		for _, m := range f.Machines {
			if _, ok := s.Cluster().Machine(m); !ok {
				return nil, fmt.Errorf("control: failover references unknown machine %q", m)
			}
		}
		cfg.Failover = f
	}
	if cfg.Vantage != "" {
		if _, ok := s.Cluster().Machine(cfg.Vantage); !ok {
			return nil, fmt.Errorf("control: vantage references unknown machine %q", cfg.Vantage)
		}
	}
	if cfg.RegionFailover != nil {
		if cfg.Detector == nil {
			return nil, fmt.Errorf("control: region failover requires a detector")
		}
		if s.Geography() == nil {
			return nil, fmt.Errorf("control: region failover requires a geography — call sim.SetGeography first")
		}
		cfg.RegionFailover = cfg.RegionFailover.withDefaults(cfg.Detector)
	}

	p := &Plane{s: s, eng: s.Engine(), cfg: cfg, byInstance: make(map[string]*instanceTrack),
		lostRegions: make(map[string]bool)}

	// Resolve the managed deployments in deterministic order.
	deps := s.Deployments()
	if len(cfg.Services) > 0 {
		deps = deps[:0:0]
		for _, name := range cfg.Services {
			dep, ok := s.Deployment(name)
			if !ok {
				return nil, fmt.Errorf("control: unknown service %q", name)
			}
			deps = append(deps, dep)
		}
	}
	byName := make(map[string]*managedDeployment, len(deps))
	for _, dep := range deps {
		md := &managedDeployment{dep: dep}
		for _, in := range dep.Instances {
			p.registerInstance(md, in)
		}
		p.managed = append(p.managed, md)
		byName[dep.Name] = md
	}

	// Validate and arm the autoscalers.
	pinned := pinnedServices(s)
	seen := make(map[string]bool, len(cfg.Autoscale))
	for i := range cfg.Autoscale {
		ac := cfg.Autoscale[i].withDefaults()
		md, ok := byName[ac.Service]
		if !ok {
			return nil, fmt.Errorf("control: autoscale references unmanaged service %q", ac.Service)
		}
		if seen[ac.Service] {
			return nil, fmt.Errorf("control: duplicate autoscale entry for %q", ac.Service)
		}
		seen[ac.Service] = true
		if pinned[ac.Service] {
			return nil, fmt.Errorf("control: cannot autoscale %q — the topology pins it to specific instances", ac.Service)
		}
		if (ac.TargetUtilization > 0) == (ac.TargetQueue > 0) {
			return nil, fmt.Errorf("control: autoscale %q needs exactly one of target utilization and target queue", ac.Service)
		}
		if ac.TargetUtilization < 0 || ac.TargetUtilization >= 1 {
			return nil, fmt.Errorf("control: autoscale %q target utilization %.2f must be in (0,1)", ac.Service, ac.TargetUtilization)
		}
		if ac.Max < ac.Min {
			return nil, fmt.Errorf("control: autoscale %q max %d below min %d", ac.Service, ac.Max, ac.Min)
		}
		for _, m := range ac.Machines {
			if _, ok := s.Cluster().Machine(m); !ok {
				return nil, fmt.Errorf("control: autoscale %q references unknown machine %q", ac.Service, m)
			}
		}
		md.scale = &autoscaleState{cfg: ac}
	}

	// Arm the loops. Order is deterministic: heartbeats were armed in
	// registerInstance; then one detector check loop, one ejector loop per
	// deployment, one autoscale loop per scaled deployment.
	if cfg.Detector != nil {
		p.eng.After(cfg.Detector.CheckInterval, p.checkSuspicions)
	}
	if cfg.RegionFailover != nil {
		p.eng.After(cfg.RegionFailover.CheckInterval, p.checkRegions)
	}
	if cfg.Ejection != nil {
		for _, md := range p.managed {
			md := md
			p.eng.After(cfg.Ejection.Interval, func(now des.Time) { p.evaluateEjections(now, md) })
		}
	}
	for _, md := range p.managed {
		if md.scale != nil {
			md := md
			p.eng.After(md.scale.cfg.Interval, func(now des.Time) { p.evaluateScale(now, md) })
		}
	}
	return p, nil
}

// pinnedServices lists services some topology node pins to a fixed
// instance — membership changes would invalidate the pin.
func pinnedServices(s *sim.Sim) map[string]bool {
	out := make(map[string]bool)
	topo := s.Topology()
	if topo == nil {
		return out
	}
	for ti := range topo.Trees {
		for ni := range topo.Trees[ti].Nodes {
			n := &topo.Trees[ti].Nodes[ni]
			if n.Instance >= 0 {
				out[n.Service] = true
			}
		}
	}
	return out
}

// registerInstance starts tracking one instance: detector state, ejection
// window, and — when a detector is configured — its heartbeat emitter.
func (p *Plane) registerInstance(md *managedDeployment, in *service.Instance) *instanceTrack {
	tr := &instanceTrack{md: md, in: in}
	if p.cfg.Ejection != nil {
		tr.lat = stats.NewP2Quantile(p.cfg.Ejection.Quantile)
	}
	md.tracks = append(md.tracks, tr)
	p.byInstance[in.Name] = tr
	if p.cfg.Detector != nil {
		tr.hb = p.s.Stream("control", "hb", in.Name)
		tr.lastBeat = p.eng.Now()
		p.scheduleBeat(tr)
	}
	return tr
}

// Stop freezes the plane: every periodic loop exits at its next firing and
// no further actions are taken. Call before draining the engine in tests.
func (p *Plane) Stop() { p.stopped = true }

// Stats exposes the action counters.
func (p *Plane) Stats() *Stats { return &p.stats }

// LostRegions reports the regions currently declared lost, sorted by name.
// After every injected fault has healed the list must drain — a region
// still listed is stuck unrestored, which the chaos invariants flag.
func (p *Plane) LostRegions() []string {
	out := make([]string, 0, len(p.lostRegions))
	for name := range p.lostRegions {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// ObserveCall feeds one data-plane call outcome into the ejection window
// of the serving instance. Wire it as sim.Sim.OnCallResult — Attach does
// not install it implicitly so callers can compose observers.
func (p *Plane) ObserveCall(now des.Time, instance string, ok bool, latency des.Time) {
	tr, found := p.byInstance[instance]
	if !found {
		return
	}
	if ok {
		tr.succ++
		if tr.lat != nil {
			tr.lat.Add(float64(latency))
		}
	} else {
		tr.fail++
	}
}

// RegisterGauges surfaces per-deployment health state on a monitor:
// <service>.replicas (non-retired instances), <service>.healthy (in the
// load-balancing rotation), and <service>.ejected. Call before the
// monitor starts.
func (p *Plane) RegisterGauges(m *monitor.Monitor) {
	for _, md := range p.managed {
		dep := md.dep
		m.WatchGauge(dep.Name+".replicas", func(des.Time) float64 { return float64(dep.ReplicaCount()) })
		m.WatchGauge(dep.Name+".healthy", func(des.Time) float64 { return float64(len(dep.Healthy())) })
		m.WatchGauge(dep.Name+".ejected", func(des.Time) float64 { return float64(dep.EjectedCount()) })
	}
	p.registerRegionGauges(m)
}

// placeReplica picks the machine for a new replica: among the allowed
// machines (default all) that are not suspect (hosting a known-down
// instance) and have the cores free, the one with the most free cores,
// ties broken by registration order. Nil when none fits.
func (p *Plane) placeReplica(allowed []string, cores int, exclude string) (string, bool) {
	var bestName string
	bestFree := -1
	consider := func(name string) {
		if name == exclude {
			return
		}
		m, ok := p.s.Cluster().Machine(name)
		if !ok || m.FreeCores() < cores || p.machineSuspect(name) || !p.vantageReaches(name) {
			return
		}
		if m.FreeCores() > bestFree {
			bestName, bestFree = name, m.FreeCores()
		}
	}
	if len(allowed) > 0 {
		for _, name := range allowed {
			consider(name)
		}
	} else {
		for _, m := range p.s.Cluster().Machines() {
			consider(m.Name)
		}
	}
	return bestName, bestFree >= 0
}

// machineSuspect reports whether every live tracked instance on the
// machine is down — the plane's proxy for a crashed node (a machine crash
// takes all its instances with it; a single instance kill does not damn a
// machine whose other instances still beat). Replacements never land on a
// suspect machine.
func (p *Plane) machineSuspect(machine string) bool {
	seen := false
	for _, md := range p.managed {
		for _, tr := range md.tracks {
			if tr.replaced || md.dep.Retired(tr.in) || tr.in.Alloc.Machine.Name != machine {
				continue
			}
			seen = true
			if !tr.in.Down() {
				return false
			}
		}
	}
	return seen
}

// vantageReaches reports whether the plane can currently reach machine
// from its vantage — replicas are never placed through an open
// partition. Omniscient planes (no vantage) reach everything.
func (p *Plane) vantageReaches(machine string) bool {
	if p.cfg.Vantage == "" || machine == p.cfg.Vantage {
		return true
	}
	return p.s.Reachable(p.cfg.Vantage, machine)
}

// beatVisible reports whether tr's heartbeat currently reaches the
// plane's vantage: a partition between the instance's machine and the
// vantage silences a live instance — the false-suspicion case the
// phi-accrual detector must weather.
func (p *Plane) beatVisible(tr *instanceTrack) bool {
	if p.cfg.Vantage == "" {
		return true
	}
	m := tr.in.Alloc.Machine.Name
	if m == p.cfg.Vantage {
		return true
	}
	return p.s.Reachable(m, p.cfg.Vantage)
}

// partitionBlind reports whether the plane's view of md is currently
// missing a live instance (up, but unreachable from the vantage).
func (p *Plane) partitionBlind(md *managedDeployment) bool {
	if p.cfg.Vantage == "" {
		return false
	}
	for _, tr := range md.tracks {
		if tr.replaced || md.dep.Retired(tr.in) || tr.in.Down() {
			continue
		}
		if !p.beatVisible(tr) {
			return true
		}
	}
	return false
}

// ceilFrac is ceil(f·n) clamped to ≥ 1.
func ceilFrac(f float64, n int) int {
	c := int(math.Ceil(f * float64(n)))
	if c < 1 {
		c = 1
	}
	return c
}
