package control

import (
	"math"

	"uqsim/internal/des"
)

// This file is the failure detector and failover orchestrator. Each
// managed instance emits heartbeats on a jittered period; a killed
// instance simply stops emitting. The detector keeps a running mean and
// variance of observed inter-arrival times (Welford) and converts the gap
// since the last beat into a phi-accrual suspicion score: phi(t) =
// −log10 P(interval > t) under a normal model of the observed intervals.
// Crossing the threshold declares the instance dead — with a lag of a few
// periods, which is the point: real detection is never instant. A
// configured failover then brings up a replacement replica on a machine
// with free cores after the restart delay, and the dead instance is
// retired for good.

// scheduleBeat arms the next heartbeat of tr, jittered from the
// instance's dedicated control stream.
func (p *Plane) scheduleBeat(tr *instanceTrack) {
	d := p.cfg.Detector.Period
	if j := p.cfg.Detector.Jitter; j > 0 {
		d = des.Time(float64(d) * (1 + j*(2*tr.hb.Float64()-1)))
	}
	p.eng.After(d, func(now des.Time) {
		if p.stopped || tr.replaced || tr.md.dep.Retired(tr.in) {
			return // emitter dies with its instance's tenure
		}
		// A beat is only heard when the instance is up AND its machine
		// can reach the plane's vantage: a partition silences a live
		// instance exactly like a crash does, which is the whole
		// ambiguity failure detection lives with.
		if !tr.in.Down() && p.beatVisible(tr) {
			p.recordBeat(now, tr)
		}
		p.scheduleBeat(tr)
	})
}

// recordBeat folds one received heartbeat into the detector state. A beat
// from a declared-dead instance means the process came back (a fault-plan
// restart) before any replacement — the declaration is withdrawn.
func (p *Plane) recordBeat(now des.Time, tr *instanceTrack) {
	if tr.dead {
		tr.dead = false
		p.stats.Recoveries++
		if tr.suspectEject {
			// The instance was alive all along (partitioned, not
			// crashed): resumed beats put it straight back in rotation.
			tr.suspectEject = false
			tr.md.dep.Reinstate(tr.in)
		}
	}
	if iv := now - tr.lastBeat; iv > 0 {
		tr.beats++
		delta := float64(iv) - tr.meanInt
		tr.meanInt += delta / float64(tr.beats)
		tr.m2 += delta * (float64(iv) - tr.meanInt)
	}
	tr.lastBeat = now
}

// phi is the suspicion score for tr at virtual time now: the negative
// log10 of the probability that a healthy instance would stay silent this
// long, under a normal model of its observed heartbeat intervals. The
// standard deviation is floored at 10% of the mean so a nearly-perfect
// clock does not fire on the first late beat.
func (p *Plane) phi(now des.Time, tr *instanceTrack) float64 {
	d := p.cfg.Detector
	mean := tr.meanInt
	if tr.beats < uint64(d.MinSamples) || mean <= 0 {
		mean = float64(d.Period)
	}
	std := 0.0
	if tr.beats > 1 {
		std = math.Sqrt(tr.m2 / float64(tr.beats))
	}
	if floor := 0.1 * mean; std < floor {
		std = floor
	}
	elapsed := float64(now - tr.lastBeat)
	z := (elapsed - mean) / std
	tail := 0.5 * math.Erfc(z/math.Sqrt2)
	if tail <= 0 {
		return math.Inf(1)
	}
	return -math.Log10(tail)
}

// checkSuspicions is the detector's periodic evaluation loop.
func (p *Plane) checkSuspicions(now des.Time) {
	if p.stopped {
		return
	}
	for _, md := range p.managed {
		for _, tr := range md.tracks {
			if tr.dead || tr.replaced || md.dep.Retired(tr.in) {
				continue
			}
			if p.phi(now, tr) >= p.cfg.Detector.PhiThreshold {
				p.declareDead(now, tr)
			}
		}
	}
	p.eng.After(p.cfg.Detector.CheckInterval, p.checkSuspicions)
}

// declareDead marks an instance failed and, when failover is configured,
// schedules its replacement.
func (p *Plane) declareDead(now des.Time, tr *instanceTrack) {
	tr.dead = true
	p.stats.Detections++
	if tr.in.Down() {
		p.stats.DetectionLagTotal += now - tr.in.DownSince()
	} else if tr.md.dep.Eject(tr.in) {
		// Alive but silent — from the vantage it is indistinguishable
		// from dead, so it leaves the rotation. Unlike a failover it is
		// not replaced (the Down() guard there holds the double-place
		// back); resumed beats reinstate it.
		tr.suspectEject = true
	}
	if p.cfg.Failover != nil {
		p.eng.After(p.cfg.Failover.RestartDelay, func(t des.Time) { p.failover(t, tr) })
	}
}

// failover replaces a declared-dead instance with a fresh replica. If the
// instance recovered in the meantime the replacement is cancelled; if no
// machine currently has the cores free, the attempt repeats after another
// restart delay.
func (p *Plane) failover(now des.Time, tr *instanceTrack) {
	if p.stopped || tr.replaced || !tr.dead {
		return
	}
	if !tr.in.Down() {
		// Recovered before the replacement went up (recordBeat will also
		// withdraw the declaration at the next beat).
		return
	}
	dep := tr.md.dep
	machine, ok := p.placeReplica(p.cfg.Failover.Machines, tr.in.Alloc.Cores, "")
	if !ok {
		p.stats.FailoverStalls++
		p.eng.After(p.cfg.Failover.RestartDelay, func(t des.Time) { p.failover(t, tr) })
		return
	}
	in, err := p.s.AddReplica(dep.Name, machine, tr.in.Alloc.Cores)
	if err != nil {
		// Raced with another allocation; try again next delay.
		p.stats.FailoverStalls++
		p.eng.After(p.cfg.Failover.RestartDelay, func(t des.Time) { p.failover(t, tr) })
		return
	}
	tr.replaced = true
	dep.Retire(tr.in)
	// Reclaim the dead instance's cores: its machine can host future
	// replicas once it stops looking suspect.
	tr.in.Alloc.Machine.Release(tr.in.Alloc)
	p.stats.Failovers++
	p.registerInstance(tr.md, in)
}
