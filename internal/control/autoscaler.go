package control

import (
	"math"

	"uqsim/internal/des"
)

// This file is the reactive autoscaler: the HPA-style control law
// desired = ceil(current · observed/target), evaluated on a fixed cadence
// against windowed observations — busy-core-time deltas for the
// utilization law, instantaneous queue depth for the queue law. A
// deadband (Tolerance) around the target suppresses flapping, cooldowns
// suppress oscillation after each action, and the replica count stays
// inside [Min, Max] and the cluster's free cores. Scale-down is gradual
// (one replica per decision) and graceful: the victim leaves the
// load-balancing rotation immediately but its cores are only released
// once in-flight and queued work has drained.

// autoscaleState is one scaled deployment's controller state.
type autoscaleState struct {
	cfg      *AutoscaleConfig
	lastUp   des.Time
	lastDown des.Time
	acted    bool // distinguishes t=0 from a cooldown anchor
}

// evaluateScale is one scaled deployment's periodic decision.
func (p *Plane) evaluateScale(now des.Time, md *managedDeployment) {
	if p.stopped {
		return
	}
	as := md.scale
	ac := as.cfg
	defer p.eng.After(ac.Interval, func(t des.Time) { p.evaluateScale(t, md) })

	// Serving replicas: up, not retired. Ejected instances still burn
	// cores, so they count for capacity even while out of the rotation.
	var serving []*instanceTrack
	cores := 0
	for _, tr := range md.tracks {
		if tr.replaced || md.dep.Retired(tr.in) {
			continue
		}
		// Advance every live cursor so a down instance's window restarts
		// cleanly after recovery.
		busy := tr.in.BusyTime(now)
		delta := busy - tr.prevBusy
		tr.prevBusy = busy
		if tr.in.Down() {
			continue
		}
		serving = append(serving, tr)
		cores += tr.in.Alloc.Cores
		tr.windowBusy = delta
	}
	current := len(serving)
	if current == 0 {
		return // nothing observable; failover's job, not the scaler's
	}
	if p.partitionBlind(md) {
		// A live replica is unreachable from the vantage: its load is
		// invisible, so any decision would be made against a partial
		// view — and a scale-up would double-place capacity that is
		// still serving behind the partition. Freeze until it heals.
		p.stats.ScaleFrozen++
		return
	}

	var observed, target float64
	if ac.TargetUtilization > 0 {
		target = ac.TargetUtilization
		sum := des.Time(0)
		for _, tr := range serving {
			sum += tr.windowBusy
		}
		observed = float64(sum) / (float64(cores) * float64(ac.Interval))
	} else {
		target = ac.TargetQueue
		sum := 0
		for _, tr := range serving {
			sum += tr.in.QueueLen()
		}
		observed = float64(sum) / float64(current)
	}

	switch {
	case observed > target*(1+ac.Tolerance) && current < ac.Max:
		if as.acted && now-as.lastUp < ac.UpCooldown {
			return
		}
		desired := int(math.Ceil(float64(current) * observed / target))
		if desired > ac.Max {
			desired = ac.Max
		}
		added := false
		for i := current; i < desired; i++ {
			if !p.scaleUp(md) {
				p.stats.ScaleBlocked++
				break
			}
			added = true
		}
		if added {
			as.lastUp, as.acted = now, true
		}
	case observed < target*(1-ac.Tolerance) && current > ac.Min:
		if as.acted && (now-as.lastDown < ac.DownCooldown || now-as.lastUp < ac.DownCooldown) {
			return
		}
		p.scaleDown(now, md, serving)
		as.lastDown, as.acted = now, true
	}
}

// scaleUp adds one replica, reporting success.
func (p *Plane) scaleUp(md *managedDeployment) bool {
	ac := md.scale.cfg
	cores := ac.Cores
	if cores <= 0 {
		cores = md.dep.Instances[0].Alloc.Cores
	}
	machine, ok := p.placeReplica(ac.Machines, cores, "")
	if !ok {
		return false
	}
	in, err := p.s.AddReplica(md.dep.Name, machine, cores)
	if err != nil {
		return false
	}
	p.stats.ScaleUps++
	p.registerInstance(md, in)
	return true
}

// scaleDown retires the newest serving replica (LIFO keeps the original
// placement stable) and releases its cores once drained.
func (p *Plane) scaleDown(now des.Time, md *managedDeployment, serving []*instanceTrack) {
	victim := serving[len(serving)-1]
	md.dep.Retire(victim.in)
	p.stats.ScaleDowns++
	p.drainAndRelease(now, md, victim)
}

// drainAndRelease polls a retired replica until its queue and in-flight
// work hit zero, then returns its cores to the machine.
func (p *Plane) drainAndRelease(now des.Time, md *managedDeployment, tr *instanceTrack) {
	if p.stopped {
		return // keep the cores allocated; the run is over
	}
	if tr.in.InFlight() == 0 && tr.in.QueueLen() == 0 {
		if err := p.s.RemoveReplica(md.dep.Name, tr.in); err == nil {
			return
		}
	}
	p.eng.After(md.scale.cfg.Interval/4+1, func(t des.Time) { p.drainAndRelease(t, md, tr) })
}
