package control

import (
	"sort"

	"uqsim/internal/des"
	"uqsim/internal/stats"
)

// This file is the outlier ejector — the defense against gray failure,
// where an instance is up (it answers heartbeats) but degraded (slow
// cores, creeping error rate) and a health-oblivious balancer keeps
// feeding it a full traffic share. Per instance the plane windows call
// outcomes from the data plane (sim.OnCallResult → Plane.ObserveCall):
// success/failure counts plus a streaming P² latency quantile. Every
// interval, instances breaching the failure-ratio rule or whose latency
// quantile exceeds LatencyFactor × the deployment's median quantile are
// ejected from load balancing, worst first, bounded so the healthy set
// never shrinks below the min-healthy fraction. Ejection is reversible:
// after probation the instance is reinstated with a clean window, and a
// still-degraded instance is simply re-ejected one window later.

// outlier is one ejection candidate with its badness score.
type outlier struct {
	tr    *instanceTrack
	score float64
	order int // deployment index, for deterministic ties
}

// evaluateEjections is one deployment's periodic ejection decision.
func (p *Plane) evaluateEjections(now des.Time, md *managedDeployment) {
	if p.stopped {
		return
	}
	e := p.cfg.Ejection

	// Candidates: instances currently in the rotation with enough
	// windowed observations to judge.
	var cands []*instanceTrack
	var quantiles []float64
	for _, tr := range md.tracks {
		if tr.replaced || tr.dead || tr.in.Down() || md.dep.Retired(tr.in) {
			continue
		}
		if !inRotation(md, tr) {
			continue
		}
		cands = append(cands, tr)
		if tr.lat.Count() >= uint64(e.MinRequests) {
			quantiles = append(quantiles, tr.lat.Value())
		}
	}
	med := lowerMedian(quantiles)

	var outliers []outlier
	for i, tr := range cands {
		total := tr.succ + tr.fail
		if total >= uint64(e.MinRequests) {
			if ratio := float64(tr.fail) / float64(total); ratio >= e.FailureRatio {
				outliers = append(outliers, outlier{tr: tr, score: 1 + ratio, order: i})
				continue
			}
		}
		if med > 0 && tr.lat.Count() >= uint64(e.MinRequests) {
			if q := tr.lat.Value(); q > e.LatencyFactor*med {
				outliers = append(outliers, outlier{tr: tr, score: q / med, order: i})
			}
		}
	}
	// Worst first; deployment order breaks score ties deterministically.
	sort.Slice(outliers, func(a, b int) bool {
		if outliers[a].score != outliers[b].score {
			return outliers[a].score > outliers[b].score
		}
		return outliers[a].order < outliers[b].order
	})

	// Bounded eviction: never shrink the rotation below the min-healthy
	// floor of the current replica count.
	floor := ceilFrac(e.MinHealthyFraction, md.dep.ReplicaCount())
	for _, o := range outliers {
		if len(md.dep.Healthy())-1 < floor {
			break
		}
		if md.dep.Eject(o.tr.in) {
			p.stats.Ejections++
			tr := o.tr
			p.eng.After(e.Probation, func(t des.Time) { p.reinstate(t, tr) })
		}
	}

	// Fresh windows for the next interval.
	for _, tr := range md.tracks {
		tr.succ, tr.fail = 0, 0
		if tr.lat != nil && tr.lat.Count() > 0 {
			tr.lat = stats.NewP2Quantile(e.Quantile)
		}
	}
	p.eng.After(e.Interval, func(t des.Time) { p.evaluateEjections(t, md) })
}

// reinstate ends an instance's probation: back into the rotation with a
// clean slate (unless it died or was replaced in the meantime).
func (p *Plane) reinstate(now des.Time, tr *instanceTrack) {
	if p.stopped || tr.replaced {
		return
	}
	if tr.md.dep.Reinstate(tr.in) {
		p.stats.Reinstatements++
		tr.succ, tr.fail = 0, 0
		if tr.lat != nil {
			tr.lat = stats.NewP2Quantile(p.cfg.Ejection.Quantile)
		}
	}
}

// inRotation reports whether the instance is currently in the healthy set.
func inRotation(md *managedDeployment, tr *instanceTrack) bool {
	for _, in := range md.dep.Healthy() {
		if in == tr.in {
			return true
		}
	}
	return false
}

// lowerMedian is the lower median of vs (0 when empty): with two
// instances, one degraded, the lower median is the healthy one's
// quantile, so the degraded instance still stands out — an upper or mean
// median would let one bad instance drag the baseline toward itself.
func lowerMedian(vs []float64) float64 {
	if len(vs) == 0 {
		return 0
	}
	sorted := append([]float64(nil), vs...)
	sort.Float64s(sorted)
	return sorted[(len(sorted)-1)/2]
}
