package control

import (
	"uqsim/internal/des"
	"uqsim/internal/monitor"
)

// This file is the region-failover orchestrator: the control plane's
// answer to losing an entire region. The per-instance phi detector
// already declares each silenced instance dead one by one; this layer
// aggregates those verdicts per region under the installed geography.
// When every tracked instance homed in a region is declared dead the
// region itself is declared lost, in-flight work is given a drain
// grace, and the nearest healthy replica region of each geo-replicated
// deployment is promoted so cross-region reads stop being stale once
// the replication lag has elapsed. Routing itself needs no push: the
// data plane's nearest-healthy-region picker shifts traffic away the
// moment the lost region's replicas leave the rotation, and shifts it
// back when they return — the plane only moves the freshness clock and
// keeps score.

// RegionFailoverConfig tunes region-loss detection and failover.
// Requires a Detector (region loss is inferred from per-instance
// suspicion) and an installed geography (sim.SetGeography).
type RegionFailoverConfig struct {
	// CheckInterval is the region-loss evaluation cadence (default:
	// the detector's check interval).
	CheckInterval des.Time
	// DrainDelay is the grace between declaring a region lost and
	// promoting replacement regions (default 50ms) — time for
	// in-flight work to drain and for detector flapping to settle; a
	// region that heals within the grace is never failed over.
	DrainDelay des.Time
}

func (c *RegionFailoverConfig) withDefaults(det *DetectorConfig) *RegionFailoverConfig {
	out := *c
	if out.CheckInterval <= 0 {
		out.CheckInterval = det.CheckInterval
	}
	if out.DrainDelay <= 0 {
		out.DrainDelay = 50 * des.Millisecond
	}
	return &out
}

// regionLost reports whether the plane currently believes region is
// gone: at least one live-tenure tracked instance is homed there and
// every such instance is declared dead. Regions hosting nothing the
// plane manages are never lost — there is nothing to fail over.
func (p *Plane) regionLost(region string) bool {
	seen := false
	for _, md := range p.managed {
		for _, tr := range md.tracks {
			if tr.replaced || md.dep.Retired(tr.in) {
				continue
			}
			if p.s.RegionOf(tr.in.Alloc.Machine.Name) != region {
				continue
			}
			seen = true
			if !tr.dead {
				return false
			}
		}
	}
	return seen
}

// checkRegions is the periodic region-loss evaluation loop. Loss and
// restoration are edge-triggered: a region transitions lost exactly
// once per outage (scheduling one drained failover) and restored
// exactly once per heal.
func (p *Plane) checkRegions(now des.Time) {
	if p.stopped {
		return
	}
	for _, r := range p.s.Geography().Regions() {
		name := r.Name
		lost := p.regionLost(name)
		switch {
		case lost && !p.lostRegions[name]:
			p.lostRegions[name] = true
			p.stats.RegionLosses++
			p.eng.After(p.cfg.RegionFailover.DrainDelay, func(t des.Time) { p.promoteAway(t, name) })
		case !lost && p.lostRegions[name]:
			delete(p.lostRegions, name)
			p.stats.RegionRestores++
			// Promotions persist — the healed region's replicas rejoin
			// the rotation via the data plane, and regions promoted
			// during the outage stay fresh for the traffic they absorbed.
		}
	}
	p.eng.After(p.cfg.RegionFailover.CheckInterval, p.checkRegions)
}

// promoteAway fails the lost region's traffic over: for every managed
// geo-replicated deployment serving from the lost region, the nearest
// replica region (by WAN latency from the lost one) that still has
// healthy replicas is promoted. A region that healed during the drain
// grace is left alone.
func (p *Plane) promoteAway(now des.Time, lost string) {
	if p.stopped || !p.lostRegions[lost] {
		return
	}
	geo := p.s.Geography()
	for _, md := range p.managed {
		dep := md.dep
		if !dep.Replicated() || !regionListed(dep.ReplicaRegions(), lost) {
			continue
		}
		for _, r := range geo.Nearest(lost) {
			if r == lost || !regionListed(dep.ReplicaRegions(), r) || dep.RegionHealthy(r) == 0 {
				continue
			}
			if _, already := dep.PromotedAt(r); !already {
				dep.Promote(now, r)
				p.stats.RegionFailovers++
			}
			break
		}
	}
}

func regionListed(regions []string, name string) bool {
	for _, r := range regions {
		if r == name {
			return true
		}
	}
	return false
}

// registerRegionGauges surfaces the geography on a monitor:
// region.<name>.up (fraction of the region's machines up),
// net.xregion_fraction (fraction of regioned traffic crossing a
// boundary), and per replicated deployment <service>.<region>.healthy
// and <service>.<region>.staleness_ms for each replica region.
func (p *Plane) registerRegionGauges(m *monitor.Monitor) {
	geo := p.s.Geography()
	if geo == nil {
		return
	}
	s := p.s
	for _, r := range geo.Regions() {
		name := r.Name
		m.WatchGauge("region."+name+".up", func(des.Time) float64 { return s.DomainUp(name) })
	}
	m.WatchGauge("net.xregion_fraction", func(des.Time) float64 { return s.CrossRegionFraction() })
	for _, md := range p.managed {
		dep := md.dep
		if !dep.Replicated() {
			continue
		}
		for _, r := range dep.ReplicaRegions() {
			region := r
			m.WatchGauge(dep.Name+"."+region+".healthy", func(des.Time) float64 {
				return float64(dep.RegionHealthy(region))
			})
			m.WatchGauge(dep.Name+"."+region+".staleness_ms", func(now des.Time) float64 {
				return dep.Staleness(now, region).Seconds() * 1000
			})
		}
	}
}
