package control

import (
	"fmt"
	"testing"

	"uqsim/internal/cluster"
	"uqsim/internal/des"
	"uqsim/internal/dist"
	"uqsim/internal/fault"
	"uqsim/internal/graph"
	"uqsim/internal/monitor"
	"uqsim/internal/pdes"
	"uqsim/internal/service"
	"uqsim/internal/sim"
	"uqsim/internal/stats"
	"uqsim/internal/workload"
)

// geoScenario builds the canonical region-loss drill: a geo-replicated
// store with one replica per region (east/west, 5ms WAN apart), an
// east-homed client, a full crash of the east region at 100ms healed at
// 300ms, and a control plane with the detector plus region failover.
func geoScenario(t *testing.T, seed uint64, eng des.Runner) (*sim.Sim, *Plane) {
	t.Helper()
	s := sim.New(sim.Options{Seed: seed, Engine: eng})
	s.AddMachine("e0", 4, cluster.FreqSpec{})
	s.AddMachine("w0", 4, cluster.FreqSpec{})
	geo, err := s.SetGeography([]cluster.Region{
		{Name: "east", Machines: []string{"e0"}},
		{Name: "west", Machines: []string{"w0"}},
	})
	if err != nil {
		t.Fatal(err)
	}
	geo.SetDefaultWAN(cluster.WANLink{Latency: 5 * des.Millisecond})
	if _, err := s.Deploy(service.SingleStage("store", dist.NewDeterministic(200*1000)), sim.RoundRobin,
		sim.Placement{Machine: "e0", Cores: 2},
		sim.Placement{Machine: "w0", Cores: 2}); err != nil {
		t.Fatal(err)
	}
	if err := s.SetReplication("store", sim.ReplicationSpec{Lag: 20 * des.Millisecond}); err != nil {
		t.Fatal(err)
	}
	topo := &graph.Topology{Trees: []graph.Tree{{
		Name: "t", Weight: 1, Root: 0,
		Nodes: []graph.Node{{ID: 0, Service: "store", Instance: -1}},
	}}}
	if err := s.SetTopology(topo); err != nil {
		t.Fatal(err)
	}
	s.SetClient(sim.ClientConfig{Pattern: workload.ConstantRate(1000), Region: "east"})
	if err := s.InstallFaults(fault.Plan{Events: []fault.Event{
		{At: 100 * des.Millisecond, Kind: fault.CrashDomain, Domain: "east"},
		{At: 300 * des.Millisecond, Kind: fault.RecoverDomain, Domain: "east"},
	}}); err != nil {
		t.Fatal(err)
	}
	plane, err := Attach(s, Config{
		Detector: &DetectorConfig{Period: 10 * des.Millisecond},
		RegionFailover: &RegionFailoverConfig{
			CheckInterval: 10 * des.Millisecond,
			DrainDelay:    20 * des.Millisecond,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	return s, plane
}

// TestRegionFailoverPromotesAndRestores: losing every instance in the
// east region declares the region lost, and after the drain grace the
// nearest healthy replica region (west) is promoted — so the stale
// window on the failed-over traffic is bounded by the replication lag.
// Healing east restores the region without undoing the promotion.
func TestRegionFailoverPromotesAndRestores(t *testing.T) {
	s, plane := geoScenario(t, 42, nil)
	rep, err := s.Run(0, 600*des.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	st := plane.Stats()
	if st.RegionLosses == 0 {
		t.Fatalf("east loss never declared: %s", st.Fingerprint())
	}
	if st.RegionFailovers != 1 {
		t.Fatalf("region failovers = %d, want exactly 1 (west promoted once): %s",
			st.RegionFailovers, st.Fingerprint())
	}
	if st.RegionRestores == 0 {
		t.Fatalf("east heal never restored the region: %s", st.Fingerprint())
	}
	dep, _ := s.Deployment("store")
	when, ok := dep.PromotedAt("west")
	if !ok {
		t.Fatal("west was never promoted")
	}
	if when < 120*des.Millisecond || when > 300*des.Millisecond {
		t.Fatalf("west promoted at %v, want within the outage after detection+drain", when)
	}
	if !dep.FreshAt(600*des.Millisecond, "west") {
		t.Fatal("west still stale long after promotion + lag")
	}
	// Failover traffic crossed the WAN and was stale only until the
	// promoted region caught up.
	if rep.CrossRegionCalls == 0 {
		t.Fatal("no cross-region calls during the east outage")
	}
	if rep.StaleReads == 0 || rep.StaleReads >= rep.CrossRegionCalls {
		t.Fatalf("stale reads = %d of %d cross-region calls, want a strict non-zero subset",
			rep.StaleReads, rep.CrossRegionCalls)
	}
	if l := leaked(rep); l != 0 {
		t.Fatalf("leaked %d requests", l)
	}
	plane.Stop()
	s.Engine().Run()
	if err := s.VerifyDrained(); err != nil {
		t.Fatal(err)
	}
}

// TestRegionDrainGraceSkipsTransientLoss: a region that heals within the
// drain grace is never failed over — the loss is declared and restored,
// but no promotion happens.
func TestRegionDrainGraceSkipsTransientLoss(t *testing.T) {
	s := sim.New(sim.Options{Seed: 9})
	s.AddMachine("e0", 4, cluster.FreqSpec{})
	s.AddMachine("w0", 4, cluster.FreqSpec{})
	if _, err := s.SetGeography([]cluster.Region{
		{Name: "east", Machines: []string{"e0"}},
		{Name: "west", Machines: []string{"w0"}},
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Deploy(service.SingleStage("store", dist.NewDeterministic(200*1000)), sim.RoundRobin,
		sim.Placement{Machine: "e0", Cores: 2},
		sim.Placement{Machine: "w0", Cores: 2}); err != nil {
		t.Fatal(err)
	}
	if err := s.SetReplication("store", sim.ReplicationSpec{Lag: 20 * des.Millisecond}); err != nil {
		t.Fatal(err)
	}
	// Crash east just long enough for the detector to fire, then heal it
	// inside the long drain grace.
	if err := s.InstallFaults(fault.Plan{Events: []fault.Event{
		{At: 100 * des.Millisecond, Kind: fault.CrashDomain, Domain: "east"},
		{At: 180 * des.Millisecond, Kind: fault.RecoverDomain, Domain: "east"},
	}}); err != nil {
		t.Fatal(err)
	}
	plane, err := Attach(s, Config{
		Detector: &DetectorConfig{Period: 10 * des.Millisecond},
		RegionFailover: &RegionFailoverConfig{
			CheckInterval: 10 * des.Millisecond,
			DrainDelay:    200 * des.Millisecond,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	s.Engine().RunUntil(600 * des.Millisecond)
	st := plane.Stats()
	if st.RegionLosses == 0 || st.RegionRestores == 0 {
		t.Fatalf("transient loss not observed: %s", st.Fingerprint())
	}
	if st.RegionFailovers != 0 {
		t.Fatalf("transient loss was failed over despite healing inside the drain grace: %s", st.Fingerprint())
	}
	dep, _ := s.Deployment("store")
	if _, promoted := dep.PromotedAt("west"); promoted {
		t.Fatal("west promoted for a loss that healed during the drain")
	}
	plane.Stop()
}

// TestRegionFailoverValidation: region failover without a detector or
// without a geography is rejected eagerly.
func TestRegionFailoverValidation(t *testing.T) {
	flat := sim.New(sim.Options{Seed: 1})
	flat.AddMachine("m0", 4, cluster.FreqSpec{})
	if _, err := flat.Deploy(service.SingleStage("s", dist.NewDeterministic(1000)), sim.RoundRobin,
		sim.Placement{Machine: "m0", Cores: 1}); err != nil {
		t.Fatal(err)
	}
	if _, err := Attach(flat, Config{
		Detector:       &DetectorConfig{},
		RegionFailover: &RegionFailoverConfig{},
	}); err == nil {
		t.Fatal("region failover accepted without a geography")
	}
	geo := sim.New(sim.Options{Seed: 1})
	geo.AddMachine("m0", 4, cluster.FreqSpec{})
	if _, err := geo.SetGeography([]cluster.Region{{Name: "solo", Machines: []string{"m0"}}}); err != nil {
		t.Fatal(err)
	}
	if _, err := geo.Deploy(service.SingleStage("s", dist.NewDeterministic(1000)), sim.RoundRobin,
		sim.Placement{Machine: "m0", Cores: 1}); err != nil {
		t.Fatal(err)
	}
	if _, err := Attach(geo, Config{
		RegionFailover: &RegionFailoverConfig{},
	}); err == nil {
		t.Fatal("region failover accepted without a detector")
	}
}

func findGauge(m *monitor.Monitor, name string) *stats.TimeSeries {
	for _, g := range m.Gauges() {
		if g.Name == name {
			return g
		}
	}
	return nil
}

// TestRegionGaugesSurviveCrashRecover: the per-region monitor series —
// region up-fraction, per-region healthy replicas, replication
// staleness, cross-region traffic fraction — stay registered and
// sensible through a full region crash and recovery: east's series dip
// to zero during the outage and return after the heal, and west's
// staleness decays to zero once promoted.
func TestRegionGaugesSurviveCrashRecover(t *testing.T) {
	s, plane := geoScenario(t, 17, nil)
	m := monitor.New(s.Engine(), 10*des.Millisecond)
	plane.RegisterGauges(m)
	m.Start()
	if _, err := s.Run(0, 600*des.Millisecond); err != nil {
		t.Fatal(err)
	}
	plane.Stop()
	for _, name := range []string{
		"region.east.up", "region.west.up", "net.xregion_fraction",
		"store.east.healthy", "store.east.staleness_ms",
		"store.west.healthy", "store.west.staleness_ms",
	} {
		g := findGauge(m, name)
		if g == nil {
			t.Fatalf("gauge %s not registered", name)
		}
		if g.Len() == 0 {
			t.Fatalf("gauge %s never sampled", name)
		}
	}
	minMaxLast := func(name string) (min, max, last float64) {
		pts := findGauge(m, name).Points()
		min, max = pts[0].V, pts[0].V
		for _, p := range pts {
			if p.V < min {
				min = p.V
			}
			if p.V > max {
				max = p.V
			}
		}
		return min, max, pts[len(pts)-1].V
	}
	if min, max, last := minMaxLast("region.east.up"); min != 0 || max != 1 || last != 1 {
		t.Fatalf("region.east.up min/max/last = %v/%v/%v, want 0/1/1 (down during outage, back after heal)", min, max, last)
	}
	if min, _, _ := minMaxLast("region.west.up"); min != 1 {
		t.Fatalf("region.west.up dipped to %v, want steady 1", min)
	}
	if min, max, last := minMaxLast("store.east.healthy"); min != 0 || max != 1 || last != 1 {
		t.Fatalf("store.east.healthy min/max/last = %v/%v/%v, want 0/1/1", min, max, last)
	}
	if min, _, _ := minMaxLast("store.west.healthy"); min != 1 {
		t.Fatalf("store.west.healthy dipped to %v, want steady 1", min)
	}
	// West starts a full replication lag behind (20ms) and catches up
	// after the failover promotes it.
	if _, max, last := minMaxLast("store.west.staleness_ms"); max != 20 || last != 0 {
		t.Fatalf("store.west.staleness_ms max/last = %v/%v, want 20/0", max, last)
	}
	if _, max, last := minMaxLast("net.xregion_fraction"); max <= 0 || last <= 0 {
		t.Fatalf("net.xregion_fraction max/last = %v/%v, want > 0 after failover traffic", max, last)
	}
}

// TestRegionFailoverCrossEngine: the determinism guarantee covers the
// whole region-failover loop — the same scenario on the sequential
// engine and on parallel coordinators with 1, 2, and 4 workers yields
// bit-identical report and control-plane fingerprints.
func TestRegionFailoverCrossEngine(t *testing.T) {
	engines := []struct {
		name string
		mk   func() des.Runner
	}{
		{"des", func() des.Runner { return des.New() }},
		{"pdes", func() des.Runner { return pdes.New(pdes.Options{LPs: 1, Workers: 1}) }},
		{"pdes-workers2", func() des.Runner { return pdes.New(pdes.Options{LPs: 1, Workers: 2, Lookahead: des.Millisecond}) }},
		{"pdes-workers4", func() des.Runner { return pdes.New(pdes.Options{LPs: 1, Workers: 4, Lookahead: des.Millisecond}) }},
	}
	for seed := uint64(1); seed <= 4; seed++ {
		var baseline string
		for _, eng := range engines {
			s, plane := geoScenario(t, seed, eng.mk())
			rep, err := s.Run(0, 600*des.Millisecond)
			if err != nil {
				t.Fatalf("seed %d on %s: %v", seed, eng.name, err)
			}
			fp := fmt.Sprintf("arr=%d comp=%d to=%d xr=%d stale=%d p50=%v p99=%v | %s",
				rep.Arrivals, rep.Completions, rep.Timeouts, rep.CrossRegionCalls, rep.StaleReads,
				rep.Latency.P50(), rep.Latency.P99(), plane.Stats().Fingerprint())
			plane.Stop()
			s.Engine().Run()
			if err := s.VerifyDrained(); err != nil {
				t.Fatalf("seed %d on %s: %v", seed, eng.name, err)
			}
			if eng.name == "des" {
				baseline = fp
				continue
			}
			if fp != baseline {
				t.Fatalf("seed %d: %s diverges with region failover active\n des: %s\n %s: %s",
					seed, eng.name, baseline, eng.name, fp)
			}
		}
	}
}
