package stats

import (
	"math"
	"math/rand"
	"sort"
	"testing"
)

// TestP2AgainstExact: on iid samples the P² estimate must land close to
// the exact empirical quantile for several distributions and quantiles.
func TestP2AgainstExact(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	draws := map[string]func() float64{
		"uniform":     r.Float64,
		"exponential": r.ExpFloat64,
		"normal":      func() float64 { return 50 + 10*r.NormFloat64() },
	}
	for name, draw := range draws {
		for _, q := range []float64{0.5, 0.9, 0.95, 0.99} {
			p := NewP2Quantile(q)
			samples := make([]float64, 0, 20000)
			for i := 0; i < 20000; i++ {
				x := draw()
				p.Add(x)
				samples = append(samples, x)
			}
			sort.Float64s(samples)
			exact := samples[int(q*float64(len(samples)))]
			got := p.Value()
			// Tolerate 10% relative error plus a small absolute slack for
			// near-zero exact quantiles.
			if math.Abs(got-exact) > 0.1*math.Abs(exact)+0.05 {
				t.Errorf("%s q=%v: P2 %.4f vs exact %.4f", name, q, got, exact)
			}
		}
	}
}

// TestP2SmallSamples: before five observations the estimator must degrade
// to a sensible order statistic instead of garbage.
func TestP2SmallSamples(t *testing.T) {
	p := NewP2Quantile(0.95)
	if p.Value() != 0 {
		t.Fatal("empty estimator should report 0")
	}
	p.Add(3)
	if p.Value() != 3 {
		t.Fatalf("single sample: got %v", p.Value())
	}
	p.Add(1)
	p.Add(2)
	if v := p.Value(); v != 3 {
		t.Fatalf("p95 of {1,2,3} should be the max, got %v", v)
	}
	if p.Count() != 3 {
		t.Fatalf("count = %d", p.Count())
	}
}

// TestP2Deterministic: identical observation sequences must produce
// identical estimates (the hedging policy's determinism depends on it).
func TestP2Deterministic(t *testing.T) {
	run := func() float64 {
		r := rand.New(rand.NewSource(7))
		p := NewP2Quantile(0.95)
		for i := 0; i < 5000; i++ {
			p.Add(r.ExpFloat64() * 1e6)
		}
		return p.Value()
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("estimates differ: %v vs %v", a, b)
	}
}

// TestP2Monotone: the estimate stays within the observed range.
func TestP2Monotone(t *testing.T) {
	p := NewP2Quantile(0.9)
	for i := 0; i < 1000; i++ {
		p.Add(float64(i % 100))
	}
	if v := p.Value(); v < 0 || v > 99 {
		t.Fatalf("estimate %v outside observed range [0,99]", v)
	}
}

func TestP2PanicsOnBadQuantile(t *testing.T) {
	for _, q := range []float64{0, 1, -0.5, 1.5} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("q=%v: want panic", q)
				}
			}()
			NewP2Quantile(q)
		}()
	}
}
