package stats

import (
	"math"
	"sort"

	"uqsim/internal/des"
)

// Percentile computes the exact q-quantile (nearest-rank) of the samples.
// It sorts a copy; intended for test assertions and small result sets, not
// hot paths (use LatencyHist there).
func Percentile(samples []float64, q float64) float64 {
	if len(samples) == 0 {
		return math.NaN()
	}
	s := append([]float64(nil), samples...)
	sort.Float64s(s)
	if q <= 0 {
		return s[0]
	}
	if q >= 1 {
		return s[len(s)-1]
	}
	rank := int(math.Ceil(q*float64(len(s)))) - 1
	if rank < 0 {
		rank = 0
	}
	if rank >= len(s) {
		rank = len(s) - 1
	}
	return s[rank]
}

// Welford tracks streaming mean and variance without storing samples.
type Welford struct {
	n    uint64
	mean float64
	m2   float64
}

// Add records one observation.
func (w *Welford) Add(x float64) {
	w.n++
	d := x - w.mean
	w.mean += d / float64(w.n)
	w.m2 += d * (x - w.mean)
}

// Count reports the number of observations.
func (w *Welford) Count() uint64 { return w.n }

// Mean reports the running mean (0 when empty).
func (w *Welford) Mean() float64 { return w.mean }

// Variance reports the population variance (0 with <2 observations).
func (w *Welford) Variance() float64 {
	if w.n < 2 {
		return 0
	}
	return w.m2 / float64(w.n)
}

// Stddev reports the population standard deviation.
func (w *Welford) Stddev() float64 { return math.Sqrt(w.Variance()) }

// Reset clears the accumulator.
func (w *Welford) Reset() { *w = Welford{} }

// Counter counts events over virtual time and converts to rates.
type Counter struct {
	n     uint64
	since des.Time
}

// NewCounter returns a counter whose window starts at start.
func NewCounter(start des.Time) *Counter { return &Counter{since: start} }

// Inc adds one event.
func (c *Counter) Inc() { c.n++ }

// Add adds n events.
func (c *Counter) Add(n uint64) { c.n += n }

// Count reports the number of events since the window start.
func (c *Counter) Count() uint64 { return c.n }

// Rate reports events per second of virtual time from the window start to
// now. Zero-length windows report 0.
func (c *Counter) Rate(now des.Time) float64 {
	dt := (now - c.since).Seconds()
	if dt <= 0 {
		return 0
	}
	return float64(c.n) / dt
}

// ResetAt restarts the window at now.
func (c *Counter) ResetAt(now des.Time) {
	c.n = 0
	c.since = now
}

// Point is one (virtual time, value) observation in a TimeSeries.
type Point struct {
	T des.Time
	V float64
}

// TimeSeries records (time, value) pairs, e.g. the power manager's
// frequency trace or instantaneous tail latency (Fig. 16).
type TimeSeries struct {
	Name   string
	points []Point
}

// NewTimeSeries returns an empty named series.
func NewTimeSeries(name string) *TimeSeries { return &TimeSeries{Name: name} }

// Record appends a point. Timestamps should be nondecreasing.
func (ts *TimeSeries) Record(t des.Time, v float64) {
	ts.points = append(ts.points, Point{T: t, V: v})
}

// Points returns the recorded points (shared slice; treat as read-only).
func (ts *TimeSeries) Points() []Point { return ts.points }

// Len reports the number of points.
func (ts *TimeSeries) Len() int { return len(ts.points) }

// Mean reports the unweighted mean of the recorded values.
func (ts *TimeSeries) Mean() float64 {
	if len(ts.points) == 0 {
		return 0
	}
	sum := 0.0
	for _, p := range ts.points {
		sum += p.V
	}
	return sum / float64(len(ts.points))
}

// FractionAbove reports the fraction of points with value > threshold —
// used for QoS-violation rates (Table III).
func (ts *TimeSeries) FractionAbove(threshold float64) float64 {
	if len(ts.points) == 0 {
		return 0
	}
	n := 0
	for _, p := range ts.points {
		if p.V > threshold {
			n++
		}
	}
	return float64(n) / float64(len(ts.points))
}
