package stats

import (
	"math"
	"testing"
	"testing/quick"

	"uqsim/internal/des"
	"uqsim/internal/rng"
)

func TestLatencyHistEmpty(t *testing.T) {
	h := NewLatencyHist()
	if h.Count() != 0 || h.Mean() != 0 || h.Quantile(0.99) != 0 || h.Min() != 0 {
		t.Fatal("empty histogram should report zeros")
	}
}

func TestLatencyHistSingle(t *testing.T) {
	h := NewLatencyHist()
	h.Record(5 * des.Millisecond)
	if h.Count() != 1 {
		t.Fatal("count")
	}
	if h.Mean() != 5*des.Millisecond {
		t.Fatalf("mean = %v", h.Mean())
	}
	for _, q := range []float64{0, 0.5, 0.99, 1} {
		got := h.Quantile(q)
		if got != 5*des.Millisecond {
			t.Fatalf("q=%v → %v, want 5ms (single sample clamps to min/max)", q, got)
		}
	}
}

func TestLatencyHistQuantileAccuracy(t *testing.T) {
	// Exponential samples: histogram p99 should match exact p99 within
	// the bucket resolution (~4%) plus sampling noise.
	r := rng.New(1)
	h := NewLatencyHist()
	var raw []float64
	for i := 0; i < 200000; i++ {
		v := r.ExpFloat64() * 1e6 // mean 1ms in ns
		h.Record(des.FromNanos(v))
		raw = append(raw, v)
	}
	for _, q := range []float64{0.5, 0.9, 0.99, 0.999} {
		exact := Percentile(raw, q)
		got := float64(h.Quantile(q))
		if math.Abs(got-exact)/exact > 0.05 {
			t.Errorf("q=%v: hist %v vs exact %v", q, got, exact)
		}
	}
	if math.Abs(float64(h.Mean())-1e6)/1e6 > 0.01 {
		t.Errorf("mean = %v, want ≈1ms", h.Mean())
	}
}

func TestLatencyHistNegativeClamps(t *testing.T) {
	h := NewLatencyHist()
	h.Record(-5)
	if h.Min() != 0 || h.Max() != 0 {
		t.Fatal("negative observation should clamp to 0")
	}
}

func TestLatencyHistMergeEqualsCombined(t *testing.T) {
	r := rng.New(2)
	a, b, all := NewLatencyHist(), NewLatencyHist(), NewLatencyHist()
	for i := 0; i < 10000; i++ {
		v := des.FromNanos(r.ExpFloat64() * 5e5)
		if i%2 == 0 {
			a.Record(v)
		} else {
			b.Record(v)
		}
		all.Record(v)
	}
	a.Merge(b)
	if a.Count() != all.Count() {
		t.Fatal("merged count mismatch")
	}
	if a.Quantile(0.99) != all.Quantile(0.99) {
		t.Fatalf("merged p99 %v vs combined %v", a.Quantile(0.99), all.Quantile(0.99))
	}
	if a.Min() != all.Min() || a.Max() != all.Max() {
		t.Fatal("merged min/max mismatch")
	}
}

func TestLatencyHistResetAndSnapshot(t *testing.T) {
	h := NewLatencyHist()
	h.Record(100)
	snap := h.Snapshot()
	h.Reset()
	if h.Count() != 0 {
		t.Fatal("reset did not clear")
	}
	if snap.Count() != 1 {
		t.Fatal("snapshot should be independent")
	}
}

// Property: histogram quantiles are monotone in q and bounded by [min,max].
func TestLatencyHistQuantileMonotoneProperty(t *testing.T) {
	prop := func(seed uint64, n uint16) bool {
		r := rng.New(seed)
		h := NewLatencyHist()
		count := int(n%500) + 1
		for i := 0; i < count; i++ {
			h.Record(des.FromNanos(r.Float64() * 1e8))
		}
		prev := des.Time(-1)
		for _, q := range []float64{0, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1} {
			v := h.Quantile(q)
			if v < prev || v < h.Min() || v > h.Max() {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestPercentileExact(t *testing.T) {
	s := []float64{5, 1, 4, 2, 3}
	cases := map[float64]float64{0: 1, 0.2: 1, 0.4: 2, 0.5: 3, 0.8: 4, 1: 5, 0.99: 5}
	for q, want := range cases {
		if got := Percentile(s, q); got != want {
			t.Errorf("P%v = %v, want %v", q, got, want)
		}
	}
	if !math.IsNaN(Percentile(nil, 0.5)) {
		t.Error("empty percentile should be NaN")
	}
}

func TestWelford(t *testing.T) {
	var w Welford
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		w.Add(x)
	}
	if w.Count() != 8 {
		t.Fatal("count")
	}
	if math.Abs(w.Mean()-5) > 1e-12 {
		t.Fatalf("mean = %v", w.Mean())
	}
	if math.Abs(w.Variance()-4) > 1e-12 {
		t.Fatalf("variance = %v", w.Variance())
	}
	if math.Abs(w.Stddev()-2) > 1e-12 {
		t.Fatalf("stddev = %v", w.Stddev())
	}
	w.Reset()
	if w.Count() != 0 || w.Mean() != 0 || w.Variance() != 0 {
		t.Fatal("reset")
	}
}

func TestCounterRate(t *testing.T) {
	c := NewCounter(0)
	c.Add(500)
	c.Inc()
	if c.Count() != 501 {
		t.Fatal("count")
	}
	if got := c.Rate(des.Second); math.Abs(got-501) > 1e-9 {
		t.Fatalf("rate = %v", got)
	}
	if c.Rate(0) != 0 {
		t.Fatal("zero-window rate should be 0")
	}
	c.ResetAt(des.Second)
	if c.Count() != 0 {
		t.Fatal("reset")
	}
	c.Inc()
	if got := c.Rate(des.Second + des.Second/2); math.Abs(got-2) > 1e-9 {
		t.Fatalf("rate after reset = %v", got)
	}
}

func TestTimeSeries(t *testing.T) {
	ts := NewTimeSeries("p99")
	ts.Record(0, 1)
	ts.Record(des.Second, 3)
	ts.Record(2*des.Second, 8)
	if ts.Len() != 3 {
		t.Fatal("len")
	}
	if ts.Mean() != 4 {
		t.Fatalf("mean = %v", ts.Mean())
	}
	if got := ts.FractionAbove(2.5); math.Abs(got-2.0/3) > 1e-12 {
		t.Fatalf("fraction above = %v", got)
	}
	if NewTimeSeries("x").FractionAbove(1) != 0 {
		t.Fatal("empty fraction should be 0")
	}
}

func TestWindowedTailEviction(t *testing.T) {
	w := NewWindowedTail(des.Second)
	w.Record(0, 10*des.Millisecond)
	w.Record(500*des.Millisecond, 20*des.Millisecond)
	w.Record(1500*des.Millisecond, 30*des.Millisecond)
	// At t=1.6s the window [0.6s,1.6s] holds only the 30ms observation.
	if n := w.Count(1600 * des.Millisecond); n != 1 {
		t.Fatalf("count = %d, want 1", n)
	}
	q, ok := w.Quantile(1600*des.Millisecond, 0.99)
	if !ok || q != 30*des.Millisecond {
		t.Fatalf("q = %v,%v", q, ok)
	}
}

func TestWindowedTailQuantileAndMean(t *testing.T) {
	w := NewWindowedTail(10 * des.Second)
	for i := 1; i <= 100; i++ {
		w.Record(des.Time(i)*des.Millisecond, des.Time(i)*des.Microsecond)
	}
	now := des.Time(200) * des.Millisecond
	q, ok := w.Quantile(now, 0.99)
	if !ok || q != 99*des.Microsecond {
		t.Fatalf("p99 = %v,%v want 99us", q, ok)
	}
	m, ok := w.Mean(now)
	if !ok || m != des.FromNanos(50.5*1000) {
		t.Fatalf("mean = %v,%v", m, ok)
	}
}

func TestWindowedTailEmpty(t *testing.T) {
	w := NewWindowedTail(des.Second)
	if _, ok := w.Quantile(0, 0.5); ok {
		t.Fatal("empty window should report !ok")
	}
	if _, ok := w.Mean(0); ok {
		t.Fatal("empty window mean should report !ok")
	}
	w.Record(0, 1)
	w.Reset()
	if w.Count(0) != 0 {
		t.Fatal("reset")
	}
}

// Property: Welford mean matches the arithmetic mean.
func TestWelfordMeanProperty(t *testing.T) {
	prop := func(xs []float64) bool {
		var w Welford
		sum := 0.0
		n := 0
		for _, x := range xs {
			if math.IsNaN(x) || math.IsInf(x, 0) || math.Abs(x) > 1e12 {
				continue
			}
			w.Add(x)
			sum += x
			n++
		}
		if n == 0 {
			return w.Count() == 0
		}
		want := sum / float64(n)
		scale := math.Max(1, math.Abs(want))
		return math.Abs(w.Mean()-want)/scale < 1e-6
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestCumulativeAtAndCDF(t *testing.T) {
	h := NewLatencyHist()
	for i := 1; i <= 100; i++ {
		h.Record(des.Time(i) * des.Millisecond)
	}
	if got := h.CumulativeAt(des.Microsecond); got != 0 {
		t.Fatalf("CDF below min = %v", got)
	}
	if got := h.CumulativeAt(200 * des.Millisecond); got != 1 {
		t.Fatalf("CDF above max = %v", got)
	}
	mid := h.CumulativeAt(50 * des.Millisecond)
	if mid < 0.45 || mid > 0.55 {
		t.Fatalf("CDF(50ms) = %v, want ≈0.5", mid)
	}
	pts := h.CDF()
	if len(pts) == 0 {
		t.Fatal("no CDF points")
	}
	prevF, prevL := -1.0, des.Time(-1)
	for _, p := range pts {
		if p.Frac < prevF || p.Latency < prevL {
			t.Fatalf("CDF not monotone at %v", p)
		}
		prevF, prevL = p.Frac, p.Latency
	}
	if pts[len(pts)-1].Frac != 1 {
		t.Fatalf("CDF must end at 1, got %v", pts[len(pts)-1].Frac)
	}
	if NewLatencyHist().CDF() != nil {
		t.Fatal("empty CDF should be nil")
	}
	if NewLatencyHist().CumulativeAt(5) != 0 {
		t.Fatal("empty CumulativeAt should be 0")
	}
}
