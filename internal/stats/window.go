package stats

import (
	"uqsim/internal/des"
)

// WindowedTail tracks latency observations within a sliding virtual-time
// window and answers quantile queries over only the recent window. The
// power manager uses it to measure "tail latency over the last decision
// interval" (Algorithm 1's stats input).
type WindowedTail struct {
	window des.Time
	obs    []obsEntry // ring-ish buffer ordered by time
}

type obsEntry struct {
	t des.Time
	v des.Time
}

// NewWindowedTail returns a tracker keeping observations from the last
// window of virtual time.
func NewWindowedTail(window des.Time) *WindowedTail {
	if window <= 0 {
		panic("stats: window must be positive")
	}
	return &WindowedTail{window: window}
}

// Record adds an observation at virtual time now.
func (w *WindowedTail) Record(now, v des.Time) {
	w.evict(now)
	w.obs = append(w.obs, obsEntry{t: now, v: v})
}

func (w *WindowedTail) evict(now des.Time) {
	cutoff := now - w.window
	i := 0
	for i < len(w.obs) && w.obs[i].t < cutoff {
		i++
	}
	if i > 0 {
		w.obs = append(w.obs[:0], w.obs[i:]...)
	}
}

// Count reports the number of live observations at virtual time now.
func (w *WindowedTail) Count(now des.Time) int {
	w.evict(now)
	return len(w.obs)
}

// Quantile reports the q-quantile of observations within the window ending
// at now. Returns (0, false) when the window holds no observations.
func (w *WindowedTail) Quantile(now des.Time, q float64) (des.Time, bool) {
	w.evict(now)
	if len(w.obs) == 0 {
		return 0, false
	}
	vals := make([]float64, len(w.obs))
	for i, o := range w.obs {
		vals[i] = float64(o.v)
	}
	return des.FromNanos(Percentile(vals, q)), true
}

// Mean reports the mean of observations within the window ending at now.
func (w *WindowedTail) Mean(now des.Time) (des.Time, bool) {
	w.evict(now)
	if len(w.obs) == 0 {
		return 0, false
	}
	sum := 0.0
	for _, o := range w.obs {
		sum += float64(o.v)
	}
	return des.FromNanos(sum / float64(len(w.obs))), true
}

// Reset drops all observations.
func (w *WindowedTail) Reset() { w.obs = w.obs[:0] }
