package stats

import (
	"testing"

	"uqsim/internal/des"
	"uqsim/internal/rng"
)

func BenchmarkLatencyHistRecord(b *testing.B) {
	h := NewLatencyHist()
	r := rng.New(1)
	vals := make([]des.Time, 4096)
	for i := range vals {
		vals[i] = des.FromNanos(r.ExpFloat64() * 1e6)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Record(vals[i%len(vals)])
	}
}

func BenchmarkLatencyHistQuantile(b *testing.B) {
	h := NewLatencyHist()
	r := rng.New(2)
	for i := 0; i < 100000; i++ {
		h.Record(des.FromNanos(r.ExpFloat64() * 1e6))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = h.Quantile(0.99)
	}
}

func BenchmarkWindowedTailRecordQuery(b *testing.B) {
	w := NewWindowedTail(100 * des.Millisecond)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		now := des.Time(i) * des.Microsecond
		w.Record(now, des.Time(i%1000)*des.Microsecond)
		if i%1000 == 999 {
			w.Quantile(now, 0.99)
		}
	}
}
