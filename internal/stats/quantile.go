package stats

// P2Quantile is a streaming quantile estimator using the P² algorithm
// (Jain & Chlamtac 1985): five markers track the running q-quantile in O(1)
// memory and O(1) per observation, with no sampling and no randomness —
// the estimate is a deterministic function of the observation sequence,
// which the simulator's reproducibility guarantee relies on. The hedging
// policy uses one per edge to track e.g. the p95 of observed RPC latency.
type P2Quantile struct {
	q       float64
	n       uint64
	heights [5]float64 // marker heights (estimates)
	pos     [5]float64 // actual marker positions (1-based)
	want    [5]float64 // desired marker positions
	incr    [5]float64 // desired position increments per observation
}

// NewP2Quantile returns an estimator for the q-quantile, q in (0,1).
func NewP2Quantile(q float64) *P2Quantile {
	if q <= 0 || q >= 1 {
		panic("stats: P2 quantile must be in (0,1)")
	}
	p := &P2Quantile{q: q}
	p.pos = [5]float64{1, 2, 3, 4, 5}
	p.want = [5]float64{1, 1 + 2*q, 1 + 4*q, 3 + 2*q, 5}
	p.incr = [5]float64{0, q / 2, q, (1 + q) / 2, 1}
	return p
}

// Count reports the number of observations recorded.
func (p *P2Quantile) Count() uint64 { return p.n }

// Add records one observation.
func (p *P2Quantile) Add(x float64) {
	if p.n < 5 {
		// Insertion sort into the initial marker set.
		i := int(p.n)
		p.heights[i] = x
		for i > 0 && p.heights[i-1] > p.heights[i] {
			p.heights[i-1], p.heights[i] = p.heights[i], p.heights[i-1]
			i--
		}
		p.n++
		return
	}
	// Find the cell k with heights[k] <= x < heights[k+1], clamping x into
	// the observed range.
	var k int
	switch {
	case x < p.heights[0]:
		p.heights[0] = x
		k = 0
	case x >= p.heights[4]:
		p.heights[4] = x
		k = 3
	default:
		for k = 0; k < 3; k++ {
			if x < p.heights[k+1] {
				break
			}
		}
	}
	for i := k + 1; i < 5; i++ {
		p.pos[i]++
	}
	for i := range p.want {
		p.want[i] += p.incr[i]
	}
	p.n++
	// Adjust the three interior markers toward their desired positions.
	for i := 1; i <= 3; i++ {
		d := p.want[i] - p.pos[i]
		if (d >= 1 && p.pos[i+1]-p.pos[i] > 1) || (d <= -1 && p.pos[i-1]-p.pos[i] < -1) {
			sign := 1.0
			if d < 0 {
				sign = -1
			}
			h := p.parabolic(i, sign)
			if p.heights[i-1] < h && h < p.heights[i+1] {
				p.heights[i] = h
			} else {
				p.heights[i] = p.linear(i, sign)
			}
			p.pos[i] += sign
		}
	}
}

// parabolic is the P² piecewise-parabolic height prediction for marker i
// moved by d (±1).
func (p *P2Quantile) parabolic(i int, d float64) float64 {
	return p.heights[i] + d/(p.pos[i+1]-p.pos[i-1])*
		((p.pos[i]-p.pos[i-1]+d)*(p.heights[i+1]-p.heights[i])/(p.pos[i+1]-p.pos[i])+
			(p.pos[i+1]-p.pos[i]-d)*(p.heights[i]-p.heights[i-1])/(p.pos[i]-p.pos[i-1]))
}

// linear is the fallback height prediction when the parabola overshoots a
// neighbouring marker.
func (p *P2Quantile) linear(i int, d float64) float64 {
	j := i + int(d)
	return p.heights[i] + d*(p.heights[j]-p.heights[i])/(p.pos[j]-p.pos[i])
}

// Value reports the current quantile estimate. Before five observations it
// falls back to the nearest-rank quantile of what has been seen (0 with no
// observations).
func (p *P2Quantile) Value() float64 {
	if p.n == 0 {
		return 0
	}
	if p.n < 5 {
		idx := int(p.q * float64(p.n))
		if idx >= int(p.n) {
			idx = int(p.n) - 1
		}
		return p.heights[idx]
	}
	return p.heights[2]
}
