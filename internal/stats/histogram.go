// Package stats provides the measurement side of the simulator: latency
// histograms with quantile queries, streaming moments, windowed tail
// trackers for the power manager, throughput counters, and time series.
package stats

import (
	"fmt"
	"math"

	"uqsim/internal/des"
)

// LatencyHist is a log-binned latency histogram in the spirit of HDR
// histograms: values from 1ns to ~4.6h are bucketed with ≤ ~2% relative
// error per bucket, giving O(1) record and O(buckets) quantile queries
// regardless of sample count.
type LatencyHist struct {
	counts []uint64
	total  uint64
	sum    float64
	min    des.Time
	max    des.Time
}

// Geometric bucket layout: bucket i covers [base^i, base^(i+1)) ns.
const (
	histBase    = 1.02 // ~2% bucket width → ≤1% mid-point error
	histBuckets = 1600 // covers 1ns … ~1.8h
)

var histLogBase = math.Log(histBase)

func bucketOf(v des.Time) int {
	if v <= 1 {
		return 0
	}
	b := int(math.Log(float64(v)) / histLogBase)
	if b < 0 {
		b = 0
	}
	if b >= histBuckets {
		b = histBuckets - 1
	}
	return b
}

func bucketMid(i int) des.Time {
	lo := math.Pow(histBase, float64(i))
	hi := lo * histBase
	return des.FromNanos((lo + hi) / 2)
}

// NewLatencyHist returns an empty histogram.
func NewLatencyHist() *LatencyHist {
	return &LatencyHist{
		counts: make([]uint64, histBuckets),
		min:    des.MaxTime,
	}
}

// Record adds one latency observation. Negative values are clamped to zero.
func (h *LatencyHist) Record(v des.Time) {
	if v < 0 {
		v = 0
	}
	h.counts[bucketOf(v)]++
	h.total++
	h.sum += float64(v)
	if v < h.min {
		h.min = v
	}
	if v > h.max {
		h.max = v
	}
}

// Count reports the number of recorded observations.
func (h *LatencyHist) Count() uint64 { return h.total }

// Mean reports the exact mean of recorded observations (0 when empty).
func (h *LatencyHist) Mean() des.Time {
	if h.total == 0 {
		return 0
	}
	return des.FromNanos(h.sum / float64(h.total))
}

// Min reports the smallest recorded observation (0 when empty).
func (h *LatencyHist) Min() des.Time {
	if h.total == 0 {
		return 0
	}
	return h.min
}

// Max reports the largest recorded observation.
func (h *LatencyHist) Max() des.Time { return h.max }

// Quantile reports the latency at quantile q in [0,1] with the histogram's
// bucket resolution. Exact extremes: q=0 returns Min, q=1 returns Max.
func (h *LatencyHist) Quantile(q float64) des.Time {
	if h.total == 0 {
		return 0
	}
	if q <= 0 {
		return h.Min()
	}
	if q >= 1 {
		return h.max
	}
	rank := uint64(math.Ceil(q * float64(h.total)))
	if rank == 0 {
		rank = 1
	}
	var seen uint64
	for i, c := range h.counts {
		seen += c
		if seen >= rank {
			mid := bucketMid(i)
			// Clamp the estimate into the observed range so coarse
			// buckets never report impossible values.
			if mid < h.min {
				mid = h.min
			}
			if mid > h.max {
				mid = h.max
			}
			return mid
		}
	}
	return h.max
}

// P50, P95, P99, P999 are convenience quantile accessors.
func (h *LatencyHist) P50() des.Time  { return h.Quantile(0.50) }
func (h *LatencyHist) P95() des.Time  { return h.Quantile(0.95) }
func (h *LatencyHist) P99() des.Time  { return h.Quantile(0.99) }
func (h *LatencyHist) P999() des.Time { return h.Quantile(0.999) }

// Merge adds all observations of other into h.
func (h *LatencyHist) Merge(other *LatencyHist) {
	for i, c := range other.counts {
		h.counts[i] += c
	}
	h.total += other.total
	h.sum += other.sum
	if other.total > 0 {
		if other.min < h.min {
			h.min = other.min
		}
		if other.max > h.max {
			h.max = other.max
		}
	}
}

// Reset clears the histogram.
func (h *LatencyHist) Reset() {
	for i := range h.counts {
		h.counts[i] = 0
	}
	h.total = 0
	h.sum = 0
	h.min = des.MaxTime
	h.max = 0
}

// Snapshot returns an independent copy.
func (h *LatencyHist) Snapshot() *LatencyHist {
	c := NewLatencyHist()
	c.Merge(h)
	return c
}

// String summarizes the histogram for logs.
func (h *LatencyHist) String() string {
	return fmt.Sprintf("n=%d mean=%v p50=%v p99=%v max=%v",
		h.total, h.Mean(), h.P50(), h.P99(), h.max)
}

// CumulativeAt reports the fraction of observations ≤ v (the empirical
// CDF evaluated at v, with bucket resolution).
func (h *LatencyHist) CumulativeAt(v des.Time) float64 {
	if h.total == 0 {
		return 0
	}
	if v < h.min {
		return 0
	}
	if v >= h.max {
		return 1
	}
	b := bucketOf(v)
	var seen uint64
	for i := 0; i <= b && i < len(h.counts); i++ {
		seen += h.counts[i]
	}
	f := float64(seen) / float64(h.total)
	if f > 1 {
		f = 1
	}
	return f
}

// CDFPoint is one (latency, cumulative fraction) sample of the empirical
// distribution.
type CDFPoint struct {
	Latency des.Time
	Frac    float64
}

// CDF returns the empirical distribution as (bucket midpoint, cumulative
// fraction) points over the occupied buckets — ready for plotting or CSV.
func (h *LatencyHist) CDF() []CDFPoint {
	if h.total == 0 {
		return nil
	}
	var out []CDFPoint
	var seen uint64
	for i, c := range h.counts {
		if c == 0 {
			continue
		}
		seen += c
		out = append(out, CDFPoint{
			Latency: bucketMid(i),
			Frac:    float64(seen) / float64(h.total),
		})
	}
	return out
}
