package netfault

import "testing"

func TestSymmetricPartition(t *testing.T) {
	st := New()
	if !st.Reachable("a", "b") || st.Partitioned() {
		t.Fatal("fresh state must be fully connected")
	}
	st.StartPartition([]string{"a"}, []string{"b", "c"}, false)
	if st.Reachable("a", "b") || st.Reachable("b", "a") || st.Reachable("a", "c") {
		t.Fatal("partition must sever both directions")
	}
	if !st.Reachable("b", "c") {
		t.Fatal("pairs outside the cut must stay connected")
	}
	if !st.Reachable("a", "a") {
		t.Fatal("a machine always reaches itself")
	}
	if !st.Partitioned() {
		t.Fatal("Partitioned must report the open cut")
	}
	st.HealPartition([]string{"a"}, []string{"b", "c"}, false)
	if !st.Reachable("a", "b") || !st.Reachable("b", "a") || st.Partitioned() {
		t.Fatal("heal must restore connectivity")
	}
}

func TestOneWayPartition(t *testing.T) {
	st := New()
	st.StartPartition([]string{"a"}, []string{"b"}, true)
	if st.Reachable("a", "b") {
		t.Fatal("a→b must be cut")
	}
	if !st.Reachable("b", "a") {
		t.Fatal("one-way cut must leave b→a intact")
	}
	st.HealPartition([]string{"a"}, []string{"b"}, true)
	if !st.Reachable("a", "b") {
		t.Fatal("heal must restore a→b")
	}
}

func TestOverlappingPartitionsStack(t *testing.T) {
	st := New()
	st.StartPartition([]string{"a"}, []string{"b"}, false)
	st.StartPartition([]string{"a"}, []string{"b", "c"}, false)
	st.HealPartition([]string{"a"}, []string{"b"}, false)
	if st.Reachable("a", "b") {
		t.Fatal("a↔b is still cut by the second partition")
	}
	if st.Reachable("a", "c") {
		t.Fatal("a↔c is cut by the second partition")
	}
	st.HealPartition([]string{"a"}, []string{"b", "c"}, false)
	if !st.Reachable("a", "b") || !st.Reachable("a", "c") {
		t.Fatal("all cuts healed — connectivity must be restored")
	}
}

func TestHealWithoutStartPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("heal without a start must panic")
		}
	}()
	New().HealPartition([]string{"a"}, []string{"b"}, false)
}

func TestLinks(t *testing.T) {
	st := New()
	if st.Lossy() {
		t.Fatal("fresh state has no lossy links")
	}
	st.SetLink("a", "b", Link{Drop: 0.5})
	if l, ok := st.LinkFor("a", "b"); !ok || l.Drop != 0.5 {
		t.Fatalf("LinkFor(a,b) = %v, %v", l, ok)
	}
	if _, ok := st.LinkFor("b", "a"); ok {
		t.Fatal("links are directed; b→a has no spec")
	}
	st.SetLink("", "", Link{Dup: 0.1})
	if l, ok := st.LinkFor("b", "a"); !ok || l.Dup != 0.1 {
		t.Fatal("default link must cover unspecified pairs")
	}
	if l, _ := st.LinkFor("a", "b"); l.Drop != 0.5 {
		t.Fatal("specific link must shadow the default")
	}
	if _, ok := st.LinkFor("a", "a"); ok {
		t.Fatal("default link must not apply to self-pairs")
	}
	st.ClearLink("a", "b")
	if l, ok := st.LinkFor("a", "b"); !ok || l.Dup != 0.1 {
		t.Fatal("cleared pair falls back to the default")
	}
	st.ClearLink("", "")
	if st.Lossy() {
		t.Fatal("all links cleared")
	}
}

func TestLinkValidate(t *testing.T) {
	if err := (Link{Drop: 0.2, Dup: 0.1}).Validate(); err != nil {
		t.Fatal(err)
	}
	if err := (Link{Drop: 1.5}).Validate(); err == nil {
		t.Fatal("drop > 1 must fail validation")
	}
	if err := (Link{Dup: -0.1}).Validate(); err == nil {
		t.Fatal("negative dup must fail validation")
	}
}

func TestValidateDomains(t *testing.T) {
	known := func(m string) bool { return m == "m0" || m == "m1" || m == "m2" }
	ok := []Domain{
		{Name: "rack0", Machines: []string{"m0", "m1"}},
		{Name: "power", Machines: []string{"m0", "m2"}}, // overlap allowed
	}
	if err := ValidateDomains(ok, known); err != nil {
		t.Fatal(err)
	}
	bad := [][]Domain{
		{{Name: "", Machines: []string{"m0"}}},
		{{Name: "r", Machines: nil}},
		{{Name: "r", Machines: []string{"m0", "m0"}}},
		{{Name: "r", Machines: []string{"nope"}}},
		{{Name: "r", Machines: []string{"m0"}}, {Name: "r", Machines: []string{"m1"}}},
	}
	for i, ds := range bad {
		if err := ValidateDomains(ds, known); err == nil {
			t.Fatalf("case %d: want error", i)
		}
	}
}
