// Package netfault models correlated network failures layered on the
// cluster topology: failure domains (racks or power domains whose machines
// crash and recover together), time-varying network partitions (symmetric
// splits and asymmetric one-way cuts of the machine-pair reachability
// matrix), and gray links (per-link probabilistic message drop and
// duplication on cross-machine RPC edges).
//
// The package holds pure state — who can currently reach whom, and how
// lossy each directed link is. Scheduling (when a partition opens or
// heals) stays with the fault plan in internal/fault, and the
// consequences (failing an attempt unreachable, cloning a duplicate
// message) stay with the dispatch layer in internal/sim; both consult
// this state at event time, so the model is deterministic under any
// conforming engine.
package netfault

import "fmt"

// Domain is a failure domain: a named group of machines that fail
// together (a rack behind one switch, a power feed). Correlated fault
// events address the group by name and expand to its machines in order.
type Domain struct {
	Name     string
	Machines []string
}

// ValidateDomains checks a domain list: nonempty unique names, at least
// one machine each, every machine known to the cluster, and no machine
// repeated within a domain. A machine may belong to several domains (a
// rack and a power feed overlap).
func ValidateDomains(domains []Domain, known func(string) bool) error {
	names := make(map[string]bool, len(domains))
	for _, d := range domains {
		if d.Name == "" {
			return fmt.Errorf("netfault: domain with empty name")
		}
		if names[d.Name] {
			return fmt.Errorf("netfault: duplicate domain %q", d.Name)
		}
		names[d.Name] = true
		if len(d.Machines) == 0 {
			return fmt.Errorf("netfault: domain %q has no machines", d.Name)
		}
		seen := make(map[string]bool, len(d.Machines))
		for _, m := range d.Machines {
			if seen[m] {
				return fmt.Errorf("netfault: domain %q lists machine %q twice", d.Name, m)
			}
			seen[m] = true
			if known != nil && !known(m) {
				return fmt.Errorf("netfault: domain %q references unknown machine %q", d.Name, m)
			}
		}
	}
	return nil
}

// Link is a gray-link quality spec: per-message drop and duplication
// probabilities on one directed machine pair.
type Link struct {
	Drop float64
	Dup  float64
}

// Validate checks probability ranges.
func (l Link) Validate() error {
	if l.Drop < 0 || l.Drop > 1 {
		return fmt.Errorf("netfault: link drop %v outside [0,1]", l.Drop)
	}
	if l.Dup < 0 || l.Dup > 1 {
		return fmt.Errorf("netfault: link dup %v outside [0,1]", l.Dup)
	}
	return nil
}

type pair [2]string

// State is the time-varying network fault state consulted at the
// dispatch boundary. The zero value is not usable; construct with New.
type State struct {
	// cuts counts, per directed machine pair, how many open partitions
	// sever it — counting (rather than a set) lets overlapping
	// partitions heal independently.
	cuts map[pair]int
	open int // open partition events (Start minus Heal)

	links       map[pair]Link
	defaultLink Link
	hasDefault  bool

	unreachable uint64
	drops       uint64
	dups        uint64
}

// New returns a fully-connected, loss-free network state.
func New() *State {
	return &State{cuts: make(map[pair]int), links: make(map[pair]Link)}
}

// Reachable reports whether a message from src can currently reach dst.
// A machine always reaches itself.
func (st *State) Reachable(src, dst string) bool {
	if src == dst {
		return true
	}
	return st.cuts[pair{src, dst}] == 0
}

// Partitioned reports whether any partition is currently open.
func (st *State) Partitioned() bool { return st.open > 0 }

// StartPartition severs connectivity between the two machine groups:
// a→b for every a in groupA, b in groupB, and — unless oneWay — the
// reverse direction too. Overlapping partitions stack; each must be
// healed with a matching HealPartition.
func (st *State) StartPartition(groupA, groupB []string, oneWay bool) {
	st.open++
	st.eachPair(groupA, groupB, oneWay, func(p pair) { st.cuts[p]++ })
}

// HealPartition reverses a StartPartition with identical arguments.
// Healing a partition that was never started panics: it indicates a
// fault-plan accounting bug, never a recoverable condition.
func (st *State) HealPartition(groupA, groupB []string, oneWay bool) {
	st.open--
	if st.open < 0 {
		panic("netfault: heal without a matching partition")
	}
	st.eachPair(groupA, groupB, oneWay, func(p pair) {
		n := st.cuts[p] - 1
		if n < 0 {
			panic(fmt.Sprintf("netfault: heal of uncut pair %v", p))
		}
		if n == 0 {
			delete(st.cuts, p)
		} else {
			st.cuts[p] = n
		}
	})
}

func (st *State) eachPair(groupA, groupB []string, oneWay bool, fn func(pair)) {
	for _, a := range groupA {
		for _, b := range groupB {
			if a == b {
				continue
			}
			fn(pair{a, b})
			if !oneWay {
				fn(pair{b, a})
			}
		}
	}
}

// SetLink installs a gray-link spec on the directed src→dst pair. Empty
// src and dst install the default spec applied to every cross-machine
// pair without a specific one.
func (st *State) SetLink(src, dst string, l Link) {
	if src == "" && dst == "" {
		st.defaultLink, st.hasDefault = l, true
		return
	}
	st.links[pair{src, dst}] = l
}

// ClearLink removes a gray-link spec installed by SetLink.
func (st *State) ClearLink(src, dst string) {
	if src == "" && dst == "" {
		st.defaultLink, st.hasDefault = Link{}, false
		return
	}
	delete(st.links, pair{src, dst})
}

// LinkFor reports the gray-link spec in force on src→dst, if any.
func (st *State) LinkFor(src, dst string) (Link, bool) {
	if l, ok := st.links[pair{src, dst}]; ok {
		return l, true
	}
	if st.hasDefault && src != dst {
		return st.defaultLink, true
	}
	return Link{}, false
}

// Lossy reports whether any gray-link spec is installed — the dispatch
// layer's cheap gate before per-message RNG draws.
func (st *State) Lossy() bool { return st.hasDefault || len(st.links) > 0 }

// CountUnreachable records one attempt failed fast on a severed pair.
func (st *State) CountUnreachable() { st.unreachable++ }

// CountDrop records one message lost to a gray link.
func (st *State) CountDrop() { st.drops++ }

// CountDup records one message duplicated by a gray link.
func (st *State) CountDup() { st.dups++ }

// Unreachable reports attempts failed fast on severed pairs. The read
// accessors are nil-safe — a simulation that never installed a network
// fault has a nil State and reports zeros — so monitors and reports can
// consume Sim.Net unconditionally.
func (st *State) Unreachable() uint64 {
	if st == nil {
		return 0
	}
	return st.unreachable
}

// LinkDrops reports messages lost to gray links.
func (st *State) LinkDrops() uint64 {
	if st == nil {
		return 0
	}
	return st.drops
}

// LinkDups reports messages duplicated by gray links.
func (st *State) LinkDups() uint64 {
	if st == nil {
		return 0
	}
	return st.dups
}
