package apps

import (
	"uqsim/internal/cache"
	"uqsim/internal/des"
	"uqsim/internal/dist"
	"uqsim/internal/graph"
	"uqsim/internal/job"
	"uqsim/internal/rng"
	"uqsim/internal/sim"
	"uqsim/internal/workload"
)

// CachedTwoTierConfig parameterizes the emergent-cache variant of the
// three-tier application: instead of a fixed cache-hit probability (the
// paper's model input), the hit/miss decision comes from a real LRU cache
// over a Zipf-popular key universe, wired into the dependency graph as a
// runtime branch. The observed hit ratio — and therefore the whole
// load–latency curve — emerges from cache size and key skew.
type CachedTwoTierConfig struct {
	Seed uint64
	QPS  float64
	// Keys is the key-universe size (default 100k).
	Keys int
	// CacheItems is the LRU capacity in keys (default 10k).
	CacheItems int
	// ZipfS is the popularity skew (default 0.99).
	ZipfS float64

	NginxCores  int
	Connections int
	Network     bool
}

// CachedTwoTier assembles the scenario and returns the simulation plus the
// live cache (whose HitRatio can be read after the run).
func CachedTwoTier(cfg CachedTwoTierConfig) (*sim.Sim, *cache.LRU, error) {
	if cfg.Keys <= 0 {
		cfg.Keys = 100000
	}
	if cfg.CacheItems <= 0 {
		cfg.CacheItems = 10000
	}
	if cfg.ZipfS == 0 {
		cfg.ZipfS = 0.99
	}
	if cfg.NginxCores <= 0 {
		cfg.NginxCores = 8
	}
	if cfg.Connections <= 0 {
		cfg.Connections = 320
	}
	s := sim.New(sim.Options{Seed: cfg.Seed})
	s.AddMachine("frontend", 20, paperFreq())
	s.AddMachine("cache", 20, paperFreq())
	db := s.AddMachine("db", 20, paperFreq())
	db.AddPool(DiskPool, 2)
	if _, err := s.Deploy(Nginx(), sim.RoundRobin,
		sim.Placement{Machine: "frontend", Cores: cfg.NginxCores}); err != nil {
		return nil, nil, err
	}
	if _, err := s.Deploy(Memcached(), sim.RoundRobin,
		sim.Placement{Machine: "cache", Cores: 4}); err != nil {
		return nil, nil, err
	}
	if _, err := s.Deploy(MongoDB(0.3, 16), sim.RoundRobin,
		sim.Placement{Machine: "db", Cores: 4}); err != nil {
		return nil, nil, err
	}
	if cfg.Network {
		if err := s.EnableNetwork(DefaultNetwork()); err != nil {
			return nil, nil, err
		}
	}
	// One tree; the memcached node branches at runtime:
	//   hit  → nginx tx
	//   miss → MongoDB → memcached write (allocate) → nginx tx
	topo := &graph.Topology{
		Trees: []graph.Tree{{
			Name: "get", Weight: 1, Root: 0,
			Nodes: []graph.Node{
				{ID: 0, Service: "nginx", ServicePath: "rx", Instance: -1,
					Children: []int{1}, AcquireConn: []string{"client:nginx"}},
				{ID: 1, Service: "memcached", ServicePath: "memcached_read", Instance: -1,
					Children: []int{2, 3}, BranchKey: "lru",
					AcquireConn: []string{"nginx:memcached"},
					ReleaseConn: []string{"nginx:memcached"}},
				// Hit branch.
				{ID: 2, Service: "nginx", ServicePath: "tx", Instance: -1,
					ReleaseConn: []string{"client:nginx"}},
				// Miss branch.
				{ID: 3, Service: "mongodb", Instance: -1, Children: []int{4}},
				{ID: 4, Service: "memcached", ServicePath: "memcached_write", Instance: -1,
					Children: []int{5}},
				{ID: 5, Service: "nginx", ServicePath: "tx", Instance: -1,
					ReleaseConn: []string{"client:nginx"}},
			},
		}},
		Pools: []graph.ConnPool{
			{Name: "client:nginx", Capacity: cfg.Connections},
			{Name: "nginx:memcached", Capacity: 64},
		},
	}
	if err := s.SetTopology(topo); err != nil {
		return nil, nil, err
	}
	lru := cache.NewLRU(cfg.CacheItems)
	zipf := cache.NewZipf(cfg.Keys, cfg.ZipfS)
	keys := rng.NewSplitter(cfg.Seed).Stream("keys")
	// Prewarm with the most popular keys (the steady-state working set),
	// so measured hit ratios reflect capacity rather than cold-start.
	for k := cfg.CacheItems - 1; k >= 0; k-- {
		if k < cfg.Keys {
			lru.Insert(uint64(k))
		}
	}
	s.RegisterBrancher("lru", func(now des.Time, req *job.Request, children []int) []int {
		key := zipf.Sample(keys)
		if lru.Lookup(key) {
			return children[:1] // hit → nginx tx
		}
		// Write-allocate: the miss chain will populate the cache; the
		// insert is applied here so subsequent requests see it.
		lru.Insert(key)
		return children[1:2] // miss → MongoDB chain
	})
	s.SetClient(sim.ClientConfig{
		Pattern:     workload.ConstantRate(cfg.QPS),
		SizeKB:      dist.NewExponential(1),
		Connections: cfg.Connections,
	})
	return s, lru, nil
}
