package apps

import (
	"math"
	"testing"

	"uqsim/internal/analytic"
	"uqsim/internal/des"
	"uqsim/internal/sim"
)

// capacity measures sustained goodput under 2× overload — the saturation
// throughput of the configuration.
func capacity(t *testing.T, build func(qps float64) (*sim.Sim, error), overload float64) float64 {
	t.Helper()
	s, err := build(overload)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := s.Run(200*des.Millisecond, des.Second)
	if err != nil {
		t.Fatal(err)
	}
	return rep.GoodputQPS
}

// runAt returns the report of one run at the given load.
func runAt(t *testing.T, build func(qps float64) (*sim.Sim, error), qps float64, warm, dur des.Time) *sim.Report {
	t.Helper()
	s, err := build(qps)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := s.Run(warm, dur)
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

func TestBlueprintsValidate(t *testing.T) {
	for _, bp := range []interface{ Validate() error }{
		Memcached(), Nginx(), NginxProxy(4), MongoDB(0.3, 8),
		ThriftServer("t", 15), SimpleServer("s", 1000),
	} {
		if err := bp.Validate(); err != nil {
			t.Errorf("blueprint invalid: %v", err)
		}
	}
}

func twoTierBuilder(nginxCores, mcThreads int) func(qps float64) (*sim.Sim, error) {
	return func(qps float64) (*sim.Sim, error) {
		return TwoTier(TwoTierConfig{
			Seed: 7, QPS: qps,
			NginxCores: nginxCores, MemcachedThreads: mcThreads,
			Network: true,
		})
	}
}

func TestTwoTierLowLoadLatency(t *testing.T) {
	rep := runAt(t, twoTierBuilder(8, 4), 1000, 200*des.Millisecond, des.Second)
	if rep.Completions == 0 {
		t.Fatal("no completions")
	}
	mean := rep.Latency.Mean()
	if mean < 50*des.Microsecond || mean > des.Millisecond {
		t.Fatalf("2-tier low-load mean latency %v, want O(100µs)", mean)
	}
	p99 := rep.Latency.P99()
	if p99 < mean || p99 > 5*des.Millisecond {
		t.Fatalf("2-tier low-load p99 %v", p99)
	}
	// Both tiers contribute.
	if rep.PerTier["nginx"] == nil || rep.PerTier["memcached"] == nil {
		t.Fatal("per-tier histograms missing")
	}
	if rep.PerTier["nginx"].Mean() < rep.PerTier["memcached"].Mean() {
		t.Fatal("NGINX should dominate per-request time (paper: NGINX is the bottleneck)")
	}
}

func TestTwoTierNginxScalingSetsCapacity(t *testing.T) {
	cap8 := capacity(t, twoTierBuilder(8, 4), 150000)
	cap4 := capacity(t, twoTierBuilder(4, 2), 150000)
	if cap8 < 1.6*cap4 || cap8 > 2.4*cap4 {
		t.Fatalf("8-proc capacity %v vs 4-proc %v: want ≈2×", cap8, cap4)
	}
	// Paper Fig. 5: more memcached threads do NOT raise throughput —
	// NGINX is the limiting tier.
	cap8mc2 := capacity(t, twoTierBuilder(8, 2), 150000)
	if math.Abs(cap8-cap8mc2)/cap8 > 0.1 {
		t.Fatalf("memcached threads changed capacity: %v vs %v", cap8, cap8mc2)
	}
}

func TestTwoTierSaturationKnee(t *testing.T) {
	cap8 := capacity(t, twoTierBuilder(8, 4), 150000)
	// Below the knee: latency modest; beyond: latency explodes.
	below := runAt(t, twoTierBuilder(8, 4), cap8*0.7, 200*des.Millisecond, des.Second)
	above := runAt(t, twoTierBuilder(8, 4), cap8*1.2, 200*des.Millisecond, des.Second)
	if below.Latency.P99() > 20*des.Millisecond {
		t.Fatalf("p99 below knee %v, too high", below.Latency.P99())
	}
	if above.Latency.P99() < 10*below.Latency.P99() {
		t.Fatalf("p99 above knee %v vs below %v: want explosion",
			above.Latency.P99(), below.Latency.P99())
	}
}

func threeTierBuilder() func(qps float64) (*sim.Sim, error) {
	return func(qps float64) (*sim.Sim, error) {
		return ThreeTier(ThreeTierConfig{Seed: 7, QPS: qps, Network: true})
	}
}

func TestThreeTierDiskBound(t *testing.T) {
	rep := runAt(t, threeTierBuilder(), 500, 200*des.Millisecond, des.Second)
	// Mean latency is millisecond-scale (30% of requests hit disk).
	mean := rep.Latency.Mean()
	if mean < 500*des.Microsecond || mean > 20*des.Millisecond {
		t.Fatalf("3-tier mean %v, want ms-scale", mean)
	}
	if rep.PerTier["mongodb"] == nil {
		t.Fatal("mongodb tier missing")
	}
	// Disk path dominates mongo residence.
	if rep.PerTier["mongodb"].Mean() < 500*des.Microsecond {
		t.Fatalf("mongo residence %v, want ms-scale", rep.PerTier["mongodb"].Mean())
	}
	// Capacity is far below the 2-tier app's (disk IOPS bound).
	capacity3 := capacity(t, threeTierBuilder(), 20000)
	if capacity3 > 10000 {
		t.Fatalf("3-tier capacity %v, want disk-bound (≲10k)", capacity3)
	}
}

func TestThreeTierMissesSlower(t *testing.T) {
	// With hit prob 0.7, p99 should reflect the slow (disk) path while
	// p50 reflects cache hits.
	rep := runAt(t, threeTierBuilder(), 500, 200*des.Millisecond, 2*des.Second)
	p50, p99 := rep.Latency.P50(), rep.Latency.P99()
	if p99 < 4*p50 {
		t.Fatalf("p99 %v vs p50 %v: miss path should stretch the tail", p99, p50)
	}
}

func lbBuilder(n int) func(qps float64) (*sim.Sim, error) {
	return func(qps float64) (*sim.Sim, error) {
		return LoadBalanced(ScaleOutConfig{Seed: 7, QPS: qps, Servers: n})
	}
}

func TestLoadBalancingScaling(t *testing.T) {
	cap4 := capacity(t, lbBuilder(4), 80000)
	cap8 := capacity(t, lbBuilder(8), 160000)
	cap16 := capacity(t, lbBuilder(16), 250000)
	// Fig. 8: 4→8 scales linearly (35k→70k), 8→16 sub-linearly (→~120k,
	// interrupt cores saturate).
	if cap8 < 1.8*cap4 || cap8 > 2.2*cap4 {
		t.Fatalf("scale-out 4→8: %v → %v, want ≈2×", cap4, cap8)
	}
	if cap16 > 1.9*cap8 {
		t.Fatalf("scale-out 8→16: %v → %v, want sub-linear", cap8, cap16)
	}
	if cap16 < 1.2*cap8 {
		t.Fatalf("scale-out 8→16: %v → %v, collapsed instead of sub-linear", cap8, cap16)
	}
	// Magnitudes in the paper's ballpark.
	if cap4 < 25000 || cap4 > 45000 {
		t.Fatalf("cap4 = %v, want ≈35k", cap4)
	}
	if cap16 < 95000 || cap16 > 145000 {
		t.Fatalf("cap16 = %v, want ≈120k", cap16)
	}
}

func fanoutBuilder(n int) func(qps float64) (*sim.Sim, error) {
	return func(qps float64) (*sim.Sim, error) {
		return Fanout(ScaleOutConfig{Seed: 7, QPS: qps, Servers: n})
	}
}

func TestFanoutTailGrowsWithWidth(t *testing.T) {
	var prev des.Time
	for _, n := range []int{4, 8, 16} {
		rep := runAt(t, fanoutBuilder(n), 3000, 200*des.Millisecond, des.Second)
		p99 := rep.Latency.P99()
		if p99 <= prev {
			t.Fatalf("fanout %d p99 %v not greater than previous %v", n, p99, prev)
		}
		prev = p99
	}
}

func TestFanoutSaturationDecreasesSlightly(t *testing.T) {
	cap4 := capacity(t, fanoutBuilder(4), 20000)
	cap16 := capacity(t, fanoutBuilder(16), 20000)
	if cap16 > cap4 {
		t.Fatalf("fanout capacity should not grow with width: %v vs %v", cap4, cap16)
	}
	if cap16 < 0.5*cap4 {
		t.Fatalf("fanout capacity collapsed: %v vs %v", cap4, cap16)
	}
	// Every request touches every leaf, so leaf capacity (~8.8k) bounds.
	if cap4 < 5000 || cap4 > 11000 {
		t.Fatalf("fanout-4 capacity %v, want ≈8–9k", cap4)
	}
}

func thriftBuilder() func(qps float64) (*sim.Sim, error) {
	return func(qps float64) (*sim.Sim, error) {
		return ThriftHello(ThriftHelloConfig{Seed: 7, QPS: qps, Network: true})
	}
}

func TestThriftHelloLowLoadUnder100us(t *testing.T) {
	rep := runAt(t, thriftBuilder(), 5000, 200*des.Millisecond, des.Second)
	if rep.Latency.P99() >= 100*des.Microsecond {
		t.Fatalf("Thrift low-load p99 %v, want <100µs (Fig. 12a)", rep.Latency.P99())
	}
}

func TestThriftHelloSaturatesNear50k(t *testing.T) {
	got := capacity(t, thriftBuilder(), 120000)
	if got < 40000 || got > 70000 {
		t.Fatalf("Thrift capacity %v, want ≈50k (Fig. 12a)", got)
	}
}

func snBuilderFn() func(qps float64) (*sim.Sim, error) {
	return func(qps float64) (*sim.Sim, error) {
		return SocialNetwork(SocialNetworkConfig{Seed: 7, QPS: qps, Network: true})
	}
}

func TestSocialNetworkRuns(t *testing.T) {
	rep := runAt(t, snBuilderFn(), 1000, 200*des.Millisecond, des.Second)
	if rep.Completions == 0 {
		t.Fatal("no completions")
	}
	// Every tier appears.
	for _, tier := range []string{"frontend", "user", "post", "usermc", "postmc"} {
		if rep.PerTier[tier] == nil {
			t.Fatalf("tier %s missing", tier)
		}
	}
	// Media is optional (≈50% of requests).
	mediaShare := float64(rep.PerTier["media"].Count()) / float64(rep.Completions)
	if mediaShare < 0.4 || mediaShare > 0.6 {
		t.Fatalf("media share %v, want ≈0.5", mediaShare)
	}
	// Mongo tiers only on cache misses (≈15%).
	mongoShare := float64(rep.PerTier["usermongo"].Count()) / float64(rep.Completions)
	if mongoShare < 0.08 || mongoShare > 0.22 {
		t.Fatalf("usermongo share %v, want ≈0.15", mongoShare)
	}
	// Low-load latency sub-5ms at p50 (cache-hit path).
	if rep.Latency.P50() > 5*des.Millisecond {
		t.Fatalf("social network p50 %v", rep.Latency.P50())
	}
}

func TestSocialNetworkSaturates(t *testing.T) {
	got := capacity(t, snBuilderFn(), 15000)
	if got < 2000 || got > 12000 {
		t.Fatalf("social network capacity %v, want few-kQPS (disk/frontend bound)", got)
	}
}

func tasBuilder(n int, slow float64) func(qps float64) (*sim.Sim, error) {
	return func(qps float64) (*sim.Sim, error) {
		return TailAtScale(TailAtScaleConfig{
			Seed: 7, QPS: qps, Servers: n, SlowFraction: slow,
		})
	}
}

func TestTailAtScaleMatchesAnalyticAtLightLoad(t *testing.T) {
	// No slow servers, light load: p99 of the fan-out should track the
	// closed-form p99 of max of n exponentials (plus small queueing).
	for _, n := range []int{5, 20} {
		rep := runAt(t, tasBuilder(n, 0), 20, 0, 20*des.Second)
		got := rep.Latency.P99().Seconds() * 1000                // ms
		want := analytic.MaxOfExponentialsQuantile(n, 1.0, 0.99) // ms (mean 1ms)
		if got < want*0.9 || got > want*1.6 {
			t.Fatalf("n=%d: p99 %vms vs analytic %vms", n, got, want)
		}
	}
}

func TestTailAtScaleSlowServersDominate(t *testing.T) {
	// Fig. 14: with 1% slow servers, large clusters' p99 is set by the
	// slow machines (≥ slow mean 10ms), while small clusters often miss
	// them.
	repSmall := runAt(t, tasBuilder(5, 0.01), 20, 0, 10*des.Second) // 0 slow (rounds to 0)
	repBig := runAt(t, tasBuilder(200, 0.01), 20, 0, 5*des.Second)
	if repBig.Latency.P99() < 10*des.Millisecond {
		t.Fatalf("200-server 1%%-slow p99 %v, want ≥10ms", repBig.Latency.P99())
	}
	if repSmall.Latency.P99() > repBig.Latency.P99() {
		t.Fatalf("small cluster p99 %v should undercut big cluster %v",
			repSmall.Latency.P99(), repBig.Latency.P99())
	}
}

func TestTailAtScaleMoreSlowIsWorse(t *testing.T) {
	p99 := func(slow float64) des.Time {
		rep := runAt(t, tasBuilder(100, slow), 20, 0, 5*des.Second)
		return rep.Latency.P99()
	}
	none, one, ten := p99(0), p99(0.01), p99(0.10)
	if !(none < one && one <= ten) {
		t.Fatalf("p99 progression %v, %v, %v not monotone in slow fraction", none, one, ten)
	}
}

func TestCachedTwoTierEmergentHitRatio(t *testing.T) {
	run := func(items int) (float64, *sim.Report) {
		t.Helper()
		s, lru, err := CachedTwoTier(CachedTwoTierConfig{
			Seed: 7, QPS: 1000, Keys: 50000, CacheItems: items, Network: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		rep, err := s.Run(200*des.Millisecond, 2*des.Second)
		if err != nil {
			t.Fatal(err)
		}
		return lru.HitRatio(), rep
	}
	smallRatio, smallRep := run(500)
	bigRatio, bigRep := run(20000)
	if !(smallRatio < bigRatio) {
		t.Fatalf("hit ratio should grow with cache size: %v vs %v", smallRatio, bigRatio)
	}
	if bigRatio < 0.4 {
		t.Fatalf("big cache hit ratio %v implausibly low", bigRatio)
	}
	// A better hit ratio must show up as lower mean latency (fewer disk
	// trips).
	if bigRep.Latency.Mean() >= smallRep.Latency.Mean() {
		t.Fatalf("bigger cache should lower latency: %v vs %v",
			bigRep.Latency.Mean(), smallRep.Latency.Mean())
	}
	// Mongo traffic share equals the miss ratio.
	missShare := float64(bigRep.PerTier["mongodb"].Count()) / float64(bigRep.Completions)
	if math.Abs(missShare-(1-bigRatio)) > 0.05 {
		t.Fatalf("mongo share %v vs miss ratio %v", missShare, 1-bigRatio)
	}
}

func TestSocialNetworkWithWrites(t *testing.T) {
	s, err := SocialNetwork(SocialNetworkConfig{
		Seed: 7, QPS: 1000, Network: true, WithWrites: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := s.Run(200*des.Millisecond, 2*des.Second)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Completions == 0 {
		t.Fatal("no completions")
	}
	total := float64(rep.Completions)
	// Timeline appears on timeline reads (0.2) and compose updates
	// (0.15 via timelinemc): check both tiers exist with sane shares.
	tlSvc := float64(rep.PerTier["timeline"].Count()) / total
	if tlSvc < 0.14 || tlSvc > 0.26 {
		t.Fatalf("timeline service share %v, want ≈0.2", tlSvc)
	}
	tlMc := float64(rep.PerTier["timelinemc"].Count()) / total
	if tlMc < 0.25 || tlMc > 0.45 {
		t.Fatalf("timelinemc share %v, want ≈0.35 (reads + compose updates)", tlMc)
	}
	// Compose writes hit postmongo unconditionally (0.15) on top of
	// read-miss traffic.
	pmShare := float64(rep.PerTier["postmongo"].Count()) / total
	if pmShare < 0.15 || pmShare > 0.35 {
		t.Fatalf("postmongo share %v, want ≳0.15 (compose) + misses", pmShare)
	}
	// Follow writes hit usermongo on top of read misses.
	umShare := float64(rep.PerTier["usermongo"].Count()) / total
	if umShare < 0.05 || umShare > 0.25 {
		t.Fatalf("usermongo share %v", umShare)
	}
	// Default read-only build must not deploy the timeline tier.
	s2, err := SocialNetwork(SocialNetworkConfig{Seed: 7, QPS: 100})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := s2.Deployment("timeline"); ok {
		t.Fatal("read-only social network should not deploy timeline")
	}
}
