// Package apps is µqSim's model library: calibrated stage-level models of
// the applications the paper evaluates (memcached, NGINX, MongoDB, Apache
// Thrift, a Social Network), and scenario builders that assemble each of
// the paper's experiments into a ready-to-run simulation.
//
// Calibration note: the paper parameterizes stages with processing-time
// histograms profiled on a real Xeon E5-2660 v3 testbed. Those profiles are
// not available here, so stages are parameterized with distributions of the
// same magnitude as the paper's plots (e.g. an NGINX webserver worth
// ~115 µs of CPU per request, saturating one core near 8.7 kQPS so four
// load-balanced webservers saturate near the paper's 35 kQPS). The shapes
// of the load–latency curves — who saturates first, how scaling shifts the
// knee — come from the queueing structure, not from these constants.
package apps

import (
	"uqsim/internal/des"
	"uqsim/internal/dist"
	"uqsim/internal/queueing"
	"uqsim/internal/service"
	"uqsim/internal/sim"
)

const us = 1000.0 // nanoseconds per microsecond, for sampler literals

// Memcached models the paper's Listing 1: epoll → socket_read →
// memcached_processing → socket_send, with per-connection batching in the
// first two stages and identical read/write paths (distinct so their
// processing-time distributions may differ).
func Memcached() *service.Blueprint {
	return &service.Blueprint{
		Name: "memcached",
		Stages: []service.StageSpec{
			{
				Name: "epoll", Queue: queueing.KindEpoll, PerConn: 4,
				Batching: true,
				Base:     dist.NewDeterministic(2 * us),
				PerJob:   dist.NewDeterministic(0.5 * us),
			},
			{
				Name: "socket_read", Queue: queueing.KindSocket, PerConn: 4,
				Batching: true,
				PerJob:   dist.NewDeterministic(1 * us),
				PerKB:    0.2 * us,
			},
			{
				Name: "memcached_processing", Queue: queueing.KindSingle,
				PerJob: dist.NewErlang(4, 2*us),
			},
			{
				Name: "socket_send", Queue: queueing.KindSingle,
				PerJob: dist.NewDeterministic(1 * us),
				PerKB:  0.1 * us,
			},
		},
		Paths: []service.PathSpec{
			{Name: "memcached_read", Stages: []int{0, 1, 2, 3}},
			{Name: "memcached_write", Stages: []int{0, 1, 2, 3}},
		},
	}
}

// Nginx models an NGINX worker: epoll → socket_read → nginx_proc →
// socket_send, with three execution paths:
//
//   - "rx": receive a client request, run request processing (the
//     expensive pass) — used when NGINX proxies to a downstream tier;
//   - "tx": receive the downstream response and send it to the client;
//   - "serve": full static-page service in one visit (webserver leaves of
//     the load-balancing and fanout experiments).
func Nginx() *service.Blueprint {
	return &service.Blueprint{
		Name: "nginx",
		Stages: []service.StageSpec{
			{
				Name: "epoll", Queue: queueing.KindEpoll, PerConn: 4,
				Batching: true,
				Base:     dist.NewDeterministic(5 * us),
				PerJob:   dist.NewDeterministic(1 * us),
			},
			{
				Name: "socket_read", Queue: queueing.KindSocket, PerConn: 4,
				Batching: true,
				PerJob:   dist.NewDeterministic(2 * us),
				PerKB:    0.3 * us,
			},
			{
				Name: "nginx_proc", Queue: queueing.KindSingle,
				PerJob: dist.NewErlang(4, 75*us),
			},
			{
				Name: "socket_send", Queue: queueing.KindSingle,
				PerJob: dist.NewDeterministic(25 * us),
				PerKB:  0.3 * us,
			},
			{
				Name: "serve_proc", Queue: queueing.KindSingle,
				PerJob: dist.NewErlang(4, 85*us),
			},
		},
		Paths: []service.PathSpec{
			{Name: "rx", Stages: []int{0, 1, 2}},
			{Name: "tx", Stages: []int{0, 1, 3}},
			{Name: "serve", Stages: []int{0, 1, 4, 3}},
		},
	}
}

// NginxProxy models the lightweight proxy configuration used in the
// load-balancing and fanout studies: forwarding is cheap (~8 µs), and the
// "join" path's cost grows with the number of fanout responses the proxy
// must read and merge.
func NginxProxy(fanout int) *service.Blueprint {
	if fanout < 1 {
		fanout = 1
	}
	return &service.Blueprint{
		Name: "nginx_proxy",
		Stages: []service.StageSpec{
			{
				Name: "epoll", Queue: queueing.KindEpoll, PerConn: 8,
				Batching: true,
				Base:     dist.NewDeterministic(3 * us),
				PerJob:   dist.NewDeterministic(0.5 * us),
			},
			{
				Name: "forward", Queue: queueing.KindSingle,
				PerJob: dist.NewErlang(2, 8*us),
			},
			{
				Name: "merge", Queue: queueing.KindSingle,
				PerJob: dist.NewErlang(2, float64(2+3*fanout)*us),
			},
		},
		Paths: []service.PathSpec{
			{Name: "rx", Stages: []int{0, 1}},
			{Name: "join", Stages: []int{0, 2}},
		},
	}
}

// MongoDB models the persistent back-end with the paper's multi-threaded
// execution model: a worker thread parses the query, blocks on disk I/O
// (releasing its core but holding the thread and one of the machine's disk
// spindles), then builds the reply. The "memory" path models a query whose
// working set is resident (no disk access); the probability split between
// paths is the paper's MongoDB example of a per-service execution-path
// state machine.
func MongoDB(memoryHitProb float64, threads int) *service.Blueprint {
	if threads < 1 {
		threads = 16
	}
	return &service.Blueprint{
		Name:      "mongodb",
		Model:     service.ModelThreaded,
		Threads:   threads,
		CtxSwitch: 3 * des.Microsecond,
		Stages: []service.StageSpec{
			{
				Name: "query_parse", Queue: queueing.KindSingle,
				PerJob: dist.NewErlang(3, 40*us),
			},
			{
				Name: "disk_read", Queue: queueing.KindSingle,
				PerJob:   dist.NewExponential(4000 * us),
				PoolName: DiskPool,
			},
			{
				Name: "reply", Queue: queueing.KindSingle,
				PerJob: dist.NewErlang(3, 40*us),
			},
		},
		Paths: []service.PathSpec{
			{Name: "memory", Stages: []int{0, 2}},
			{Name: "disk", Stages: []int{0, 1, 2}},
		},
		PathProbs: []float64{memoryHitProb, 1 - memoryHitProb},
	}
}

// DiskPool is the auxiliary machine pool name MongoDB's disk stage uses.
const DiskPool = "disk"

// ThriftServer models an Apache Thrift RPC server with the given name and
// mean application-processing cost. With procMeanUs ≈ 15 the server
// saturates just above 50 kQPS on one core, matching the paper's
// hello-world validation (Fig. 12a).
func ThriftServer(name string, procMeanUs float64) *service.Blueprint {
	return &service.Blueprint{
		Name: name,
		Stages: []service.StageSpec{
			{
				Name: "epoll", Queue: queueing.KindEpoll, PerConn: 4,
				Batching: true,
				Base:     dist.NewDeterministic(3 * us),
				PerJob:   dist.NewDeterministic(0.5 * us),
			},
			{
				Name: "thrift_proc", Queue: queueing.KindSingle,
				PerJob: dist.NewErlang(8, procMeanUs*us),
			},
			{
				Name: "socket_send", Queue: queueing.KindSingle,
				PerJob: dist.NewDeterministic(2 * us),
			},
		},
		Paths: []service.PathSpec{
			{Name: "call", Stages: []int{0, 1, 2}},
		},
	}
}

// SimpleServer is a one-stage exponential server, the paper's tail-at-scale
// leaf model ("a simple one-stage queueing system with exponentially
// distributed processing time, around a 1ms mean").
func SimpleServer(name string, meanUs float64) *service.Blueprint {
	return service.SingleStage(name, dist.NewExponential(meanUs*us))
}

// DefaultNetwork is the interrupt-processing model shared by experiments:
// four dedicated cores per machine (as in the paper's fanout experiment)
// with ~11 µs of soft_irq work per message plus a per-KB copy cost. The
// per-message constant is calibrated so the 16-way load-balancing scenario
// saturates its proxy machine's interrupt cores near 120 kQPS (Fig. 8).
func DefaultNetwork() sim.NetworkConfig {
	return sim.NetworkConfig{
		CoresPerMachine: 4,
		PerMsg:          dist.NewErlang(4, 11*us),
		PerKB:           0.2 * us,
		ClientTx:        true,
	}
}

// PaperMachine builds a machine matching the validation platform of Table
// II: 2×10 physical cores and DVFS from 1.2 to 2.6 GHz.
func PaperMachineSpec() (cores int, freq float64) { return 20, 2600 }

// CollapsedSamplers extracts the stage cost samplers along one execution
// path of a blueprint — the BigHouse-style single-stage collapse, where
// every per-dispatch base cost (epoll) is charged in full to every request
// instead of being amortized across a batch. meanSizeKB folds the per-KB
// stage costs in as deterministic components.
func CollapsedSamplers(bp *service.Blueprint, pathIdx int, meanSizeKB float64) []dist.Sampler {
	var out []dist.Sampler
	for _, si := range bp.Paths[pathIdx].Stages {
		st := bp.Stages[si]
		if st.Base != nil {
			out = append(out, st.Base)
		}
		if st.PerJob != nil {
			out = append(out, st.PerJob)
		}
		if st.PerKB > 0 && meanSizeKB > 0 {
			out = append(out, dist.NewDeterministic(st.PerKB*meanSizeKB))
		}
	}
	return out
}
